examples/aliasing.ml: Analysis Dfg Dflow Fmt Imp List Machine
