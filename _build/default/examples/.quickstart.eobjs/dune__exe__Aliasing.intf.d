examples/aliasing.mli:
