examples/array_pipeline.ml: Cfg Dfg Dflow Fmt Imp List Machine
