examples/array_pipeline.mli:
