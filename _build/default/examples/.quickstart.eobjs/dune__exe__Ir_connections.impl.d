examples/ir_connections.ml: Analysis Array Cfg Dflow Fmt Imp List Machine Ssa
