examples/ir_connections.mli:
