examples/machine_tour.ml: Dfg Dflow Fmt Imp Machine
