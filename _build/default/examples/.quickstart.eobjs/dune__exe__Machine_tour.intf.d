examples/machine_tour.mli:
