examples/quickstart.ml: Dfg Dflow Fmt Imp Machine
