examples/quickstart.mli:
