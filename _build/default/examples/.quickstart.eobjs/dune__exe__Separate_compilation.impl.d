examples/separate_compilation.ml: Dfg Dflow Fmt Imp List Machine String
