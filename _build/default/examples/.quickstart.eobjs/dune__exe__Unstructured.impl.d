examples/unstructured.ml: Analysis Array Cfg Dfg Dflow Fmt Imp List Machine
