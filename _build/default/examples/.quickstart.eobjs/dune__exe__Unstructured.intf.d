examples/unstructured.mli:
