(* Aliasing and covers (paper, Section 5, Figures 12-13).

   Run with:  dune exec examples/aliasing.exe

   Models the paper's FORTRAN example: SUBROUTINE F(X,Y,Z) called as
   F(A,B,A) and F(C,D,D), so X may alias Z and Y may alias Z, but X and Y
   never alias each other.  Schema 3 is parameterised by a cover of this
   alias structure; we execute the subroutine body under the three
   standard covers and show the parallelism/synchronisation tradeoff. *)

let source =
  {|
  # the body of F(X, Y, Z), with real sharing between x and z
  mayalias x z
  mayalias y z
  equiv x z
  x := 1
  y := 2
  z := z + x + y
  x := y + z
  w := x * y       # w is private: never serialized against anything
|}

let () =
  let program = Imp.Parser.program_of_string source in
  let reference = Imp.Eval.run_program program in
  Fmt.pr "=== program ===@.%a@.@." Imp.Pretty.pp_program program;

  let alias = Analysis.Alias.of_program program in
  Fmt.pr "=== alias classes (note: x ~ z, y ~ z, but x !~ y) ===@.";
  Fmt.pr "@[<v>%a@]@." Analysis.Alias.pp alias;

  let covers =
    [
      ("singleton (max parallelism)", Analysis.Cover.singleton alias);
      ("alias classes", Analysis.Cover.classes alias);
      ("components (min synchronisation)", Analysis.Cover.components alias);
    ]
  in
  let vars = Imp.Ast.program_vars program in
  Fmt.pr "@.%-34s %-34s %9s %9s@." "cover" "elements" "sync-cost" "spurious";
  List.iter
    (fun (name, c) ->
      Fmt.pr "%-34s %-34s %9d %9d@." name
        (Fmt.str "%a" Analysis.Cover.pp c)
        (Analysis.Cover.synchronization_cost alias c vars)
        (Analysis.Cover.spurious_serialization alias c))
    covers;

  (* Execute Schema 3 under each cover: all produce the reference store;
     they differ in how much synchronisation hardware they imply and how
     much overlap the machine finds. *)
  Fmt.pr "@.%-34s %8s %8s %10s@." "schema" "cycles" "ops" "synch-ins";
  List.iter
    (fun (choice, name) ->
      let compiled =
        Dflow.Driver.compile
          (Dflow.Driver.Schema3 (choice, Dflow.Engine.Barrier))
          program
      in
      let result =
        Machine.Interp.run_exn
          {
            Machine.Interp.graph = compiled.Dflow.Driver.graph;
            layout = compiled.Dflow.Driver.layout;
          }
      in
      assert (Imp.Memory.equal reference result.Machine.Interp.memory);
      let st = Dfg.Stats.of_graph compiled.Dflow.Driver.graph in
      Fmt.pr "%-34s %8d %8d %10d@." name result.Machine.Interp.cycles
        result.Machine.Interp.firings st.Dfg.Stats.synch_inputs)
    [
      (Dflow.Driver.Singleton, "schema3 / singleton");
      (Dflow.Driver.Classes, "schema3 / classes");
      (Dflow.Driver.Components, "schema3 / components");
    ];

  (* Schema 2 would be unsound here and the driver refuses to build it. *)
  (match
     Dflow.Driver.compile (Dflow.Driver.Schema2 Dflow.Engine.Barrier) program
   with
  | _ -> assert false
  | exception Dflow.Driver.Aliasing_unsupported msg ->
      Fmt.pr "@.schema2 refused, as it must be: %s@." msg);
  Fmt.pr "all covers reproduce the sequential store: ok@."
