(* Array store parallelization (paper, Section 6.3 / Figure 14) and
   I-structures.

   Run with:  dune exec examples/array_pipeline.exe

   The kernel initialises an array inside a loop and then reduces it.
   Name-based analysis serializes every store to x (they all need
   access_x); subscript analysis proves the stores hit distinct elements,
   so Figure 14's token-duplication schema lets them overlap across
   iterations.  Placing the write-once array in I-structure memory goes
   further: the reduction loop's reads issue concurrently with the
   producer loop's writes and defer in memory until data arrives. *)

let n = 16

let source =
  Fmt.str
    {|
  array x[%d]
  i := 0
  while i < %d do
    x[i] := i * i
    i := i + 1
  end
  j := 0
  s := 0
  while j < %d do
    s := s + x[j]
    j := j + 1
  end
|}
    n n n

let slow_memory =
  {
    Machine.Config.default with
    Machine.Config.latencies = { alu = 1; memory = 24; routing = 1 };
  }

let run transforms spec program =
  let compiled = Dflow.Driver.compile ~transforms spec program in
  Dfg.Check.check compiled.Dflow.Driver.graph;
  Machine.Interp.run_exn ~config:slow_memory
    {
      Machine.Interp.graph = compiled.Dflow.Driver.graph;
      layout = compiled.Dflow.Driver.layout;
    }

let () =
  let program = Imp.Parser.program_of_string source in
  let reference = Imp.Eval.run_program program in
  Fmt.pr "=== kernel (n = %d, memory latency = 24 cycles) ===@.%a@.@." n
    Imp.Pretty.pp_program program;

  (* What the analyses see. *)
  let lp = Cfg.Loopify.transform (Cfg.Builder.of_program program) in
  List.iter
    (fun (l, x) ->
      Fmt.pr "fig14: stores to %s in loop %d are independent across iterations@." x l)
    (Dflow.Transforms.async_candidates program lp);
  List.iter
    (fun x -> Fmt.pr "I-structure eligible (write-once): %s@." x)
    (Dflow.Transforms.istructure_candidates program lp);
  Fmt.pr "@.";

  let base =
    { Dflow.Driver.no_transforms with Dflow.Driver.value_passing = true;
      parallel_reads = true }
  in
  let variants =
    [
      ("schema2 (name-based, serial stores)", Dflow.Driver.no_transforms);
      ("  + value passing + parallel reads", base);
      ( "  + fig14 store overlap",
        { base with Dflow.Driver.array_parallel = true } );
      ( "  + I-structure memory",
        { base with Dflow.Driver.istructure = true } );
    ]
  in
  Fmt.pr "%-40s %8s %8s %9s@." "configuration" "cycles" "mem-ops" "avg-par";
  let baseline = ref 0 in
  List.iter
    (fun (name, transforms) ->
      let r =
        run transforms (Dflow.Driver.Schema2 Dflow.Engine.Pipelined) program
      in
      assert (Imp.Memory.equal reference r.Machine.Interp.memory);
      if !baseline = 0 then baseline := r.Machine.Interp.cycles;
      Fmt.pr "%-40s %8d %8d %9.2f   (%.2fx)@." name r.Machine.Interp.cycles
        r.Machine.Interp.memory_ops
        (Machine.Interp.avg_parallelism r)
        (float_of_int !baseline /. float_of_int r.Machine.Interp.cycles))
    variants;
  Fmt.pr "@.all variants reproduce the sequential store (s = %d): ok@."
    (Imp.Memory.read reference "s" 0)
