(* The intermediate-representation connections (paper, Sections 1, 4, 6.1
   and 7).

   Run with:  dune exec examples/ir_connections.exe

   The paper's closing argument is that dataflow graphs subsume the
   standard compiler IRs: control dependence decides switch placement
   (Theorem 1), SSA's φ-functions reappear as token merges, and the PDG's
   edges reappear as token routes.  This example computes all three
   representations for one program and prints the correspondences. *)

let source =
  {|
  a := 7
  c := 2
  if a < 10 then
    b := a + 1
  else
    b := a - 1
    c := 5
  end
  d := b * 2
  while d > 0 do
    d := d - c
  end
|}

let () =
  let program = Imp.Parser.program_of_string source in
  let g = Cfg.Builder.of_program program in
  let vars = Imp.Ast.program_vars program in
  Fmt.pr "=== program ===@.%a@.@." Imp.Pretty.pp_program program;

  (* 1. Control dependence and switch placement. *)
  let cd = Analysis.Control_dep.compute g in
  Fmt.pr "=== control dependence (fork -> dependents) ===@.";
  List.iter
    (fun f ->
      if Cfg.Core.is_fork g f && f <> g.Cfg.Core.start then
        Fmt.pr "  %d (%s): %a@." f
          (Cfg.Core.kind_to_string (Cfg.Core.kind g f))
          Fmt.(list ~sep:comma int)
          (Analysis.Control_dep.dependents cd f))
    (Cfg.Core.nodes g);
  let lp = Cfg.Loopify.transform g in
  let sp = Analysis.Switch_place.compute lp.Cfg.Loopify.graph ~vars in
  Fmt.pr "@.=== switch placement (theorem 1) ===@.";
  List.iter
    (fun f ->
      if
        Cfg.Core.is_fork lp.Cfg.Loopify.graph f
        && f <> lp.Cfg.Loopify.graph.Cfg.Core.start
      then
        Fmt.pr "  fork %d switches: {%a}@." f
          Fmt.(list ~sep:comma string)
          (List.filter (fun x -> Analysis.Switch_place.needs_switch sp f x) vars))
    (Cfg.Core.nodes lp.Cfg.Loopify.graph);

  (* 2. SSA: φ placement vs token merges. *)
  let ssa = Ssa.Construct.construct g in
  Ssa.Construct.verify ssa;
  Fmt.pr "@.=== SSA phis ===@.@[<v>%a@]@." Ssa.Construct.pp ssa;
  let report = ref [] in
  let _ = Dflow.Optimized.translate ~merge_report:report lp ~vars in
  Fmt.pr "=== token merges in the optimized translation ===@.";
  List.iter (fun (j, x) -> Fmt.pr "  merge for access_%s at join %d@." x j) !report;
  List.iter
    (fun x ->
      List.iter
        (fun j ->
          if j <> g.Cfg.Core.stop then begin
            let covered =
              List.mem (j, x) !report
              || Array.exists
                   (fun (l : Cfg.Loopify.loop_info) ->
                     l.Cfg.Loopify.header = j && List.mem x l.Cfg.Loopify.vars)
                   lp.Cfg.Loopify.loops
            in
            Fmt.pr "  phi for %s at %d  ->  %s@." x j
              (if covered then "token merge / loop gateway (as the paper's \
                                6.1 discussion predicts)"
               else "MISSING (bug!)");
            assert covered
          end)
        (Ssa.Construct.phi_joins ssa x))
    vars;

  (* 3. PDG flow edges vs dataflow execution. *)
  let pdg = Ssa.Pdg.build g in
  Fmt.pr "@.=== PDG ===@.@[<v>%a@]@." Ssa.Pdg.pp pdg;
  Fmt.pr "control edges: %d, flow edges: %d@."
    (List.length (Ssa.Pdg.control_edges pdg))
    (List.length (Ssa.Pdg.flow_edges pdg));

  (* 4. And the executable semantics agree, of course. *)
  let compiled =
    Dflow.Driver.compile (Dflow.Driver.Schema2_opt Dflow.Engine.Barrier) program
  in
  let r =
    Machine.Interp.run_exn
      {
        Machine.Interp.graph = compiled.Dflow.Driver.graph;
        layout = compiled.Dflow.Driver.layout;
      }
  in
  assert (Imp.Memory.equal (Imp.Eval.run_program program) r.Machine.Interp.memory);
  Fmt.pr "@.dataflow execution matches the sequential semantics: ok@."
