(* A tour of the explicit-token-store machine (paper, Section 2.2).

   Run with:  dune exec examples/machine_tour.exe

   Builds small dataflow graphs by hand with the Dfg builder and executes
   them, demonstrating the operator vocabulary of Figure 2 (switch, merge,
   synch), iteration contexts at loop gateways, the Figure 8 pathology,
   and processing-element scaling. *)

module B = Dfg.Graph.Builder
module N = Dfg.Node

let layout =
  Imp.Layout.of_program (Imp.Parser.program_of_string "r := 0")

let run ?config g = Machine.Interp.run ?config { Machine.Interp.graph = g; layout }

(* r := (if 7 < 10 then 100 else 200) -- a switch picks the value *)
let conditional_graph () =
  let b = B.create () in
  let start = B.add b (N.Start 1) in
  let c7 = B.add b (N.Const (Imp.Value.Int 7)) in
  let c10 = B.add b (N.Const (Imp.Value.Int 10)) in
  let lt = B.add b (N.Binop Imp.Ast.Lt) in
  let data = B.add b (N.Const (Imp.Value.Int 100)) in
  let sw = B.add b N.Switch in
  let c200 = B.add b (N.Const (Imp.Value.Int 200)) in
  let sink200 = B.add b N.Sink in
  let m = B.add b N.Merge in
  let st = B.add b (N.Store { var = "r"; indexed = false; mem = N.Plain }) in
  let stop = B.add b (N.End 1) in
  B.connect b ~dummy:true (start, 0) (c7, 0);
  B.connect b ~dummy:true (start, 0) (c10, 0);
  B.connect b ~dummy:true (start, 0) (data, 0);
  B.connect b ~dummy:true (start, 0) (c200, 0);
  B.connect b (c7, 0) (lt, 0);
  B.connect b (c10, 0) (lt, 1);
  B.connect b (data, 0) (sw, 0);
  B.connect b (lt, 0) (sw, 1);
  (* true: value flows to the store through the merge; the untaken 200 is
     discarded *)
  B.connect b (sw, 0) (m, 0);
  B.connect b (sw, 1) (m, 0);
  B.connect b (c200, 0) (sink200, 0);
  B.connect b ~dummy:true (m, 0) (st, 0);
  B.connect b (m, 0) (st, 1);
  B.connect b ~dummy:true (st, 0) (stop, 0);
  B.finish b

(* Sum 0..k-1 with a loop-gate-managed value token. *)
let loop_graph k =
  let b = B.create () in
  let start = B.add b (N.Start 1) in
  let entry = B.add b (N.Loop_entry { loop = 0; arity = 1 }) in
  let zero = B.add b (N.Const (Imp.Value.Int 0)) in
  let one = B.add b (N.Const (Imp.Value.Int 1)) in
  let add = B.add b (N.Binop Imp.Ast.Add) in
  let lim = B.add b (N.Const (Imp.Value.Int k)) in
  let cmp = B.add b (N.Binop Imp.Ast.Lt) in
  let sw = B.add b N.Switch in
  let exit_ = B.add b (N.Loop_exit { loop = 0; arity = 1 }) in
  let st = B.add b (N.Store { var = "r"; indexed = false; mem = N.Plain }) in
  let stop = B.add b (N.End 1) in
  B.connect b ~dummy:true (start, 0) (zero, 0);
  B.connect b (zero, 0) (entry, 0);
  B.connect b ~dummy:true (entry, 0) (one, 0);
  B.connect b ~dummy:true (entry, 0) (lim, 0);
  B.connect b (entry, 0) (add, 0);
  B.connect b (one, 0) (add, 1);
  B.connect b (add, 0) (cmp, 0);
  B.connect b (lim, 0) (cmp, 1);
  B.connect b (add, 0) (sw, 0);
  B.connect b (cmp, 0) (sw, 1);
  B.connect b (sw, 0) (entry, 1);
  B.connect b (sw, 1) (exit_, 0);
  B.connect b ~dummy:true (exit_, 0) (st, 0);
  B.connect b (exit_, 0) (st, 1);
  B.connect b ~dummy:true (st, 0) (stop, 0);
  B.finish b

let () =
  (* 1. Conditional via switch + merge. *)
  let r = run (conditional_graph ()) in
  Fmt.pr "switch/merge conditional: r = %d (completed: %b)@."
    (Imp.Memory.read r.Machine.Interp.memory "r" 0)
    r.Machine.Interp.completed;

  (* 2. Loop gateways retag iteration contexts. *)
  let r = run (loop_graph 10) in
  Fmt.pr "loop gateways count to: r = %d in %d cycles, %d firings@."
    (Imp.Memory.read r.Machine.Interp.memory "r" 0)
    r.Machine.Interp.cycles r.Machine.Interp.firings;

  (* 3. The same loop squeezed through 1 PE: same work, more cycles. *)
  let r1 = run ~config:(Machine.Config.bounded 1) (loop_graph 10) in
  Fmt.pr "with a single processing element: %d cycles (same %d firings)@."
    r1.Machine.Interp.cycles r1.Machine.Interp.firings;

  (* 4. The Figure 8 pathology, straight from the paper: translate the
     running example under Schema 2 but skip loop control; the machine
     detects the token pile-up. *)
  let fig8 =
    Imp.Parser.program_of_string
      {|
      l:
      y := ((((x + 1) * 3 + x) * 3 + x) * 3 + x) * 3 + x
      x := x + 1
      if x < 5 goto l
    |}
  in
  let c =
    Dflow.Driver.compile Dflow.Driver.Schema2_unsafe_no_loop_control fig8
  in
  let slow_alu =
    {
      Machine.Config.default with
      Machine.Config.latencies = { alu = 8; memory = 1; routing = 1 };
    }
  in
  (match
     Machine.Interp.run ~config:slow_alu
       {
         Machine.Interp.graph = c.Dflow.Driver.graph;
         layout = c.Dflow.Driver.layout;
       }
   with
  | _ -> Fmt.pr "figure 8: unexpectedly clean?!@."
  | exception Machine.Interp.Token_collision where ->
      Fmt.pr "figure 8 without loop control: token collision at %s@." where);

  (* 5. With loop control, same program, same latencies: clean run. *)
  let c' = Dflow.Driver.compile (Dflow.Driver.Schema2 Dflow.Engine.Pipelined) fig8 in
  let r' =
    Machine.Interp.run_exn ~config:slow_alu
      {
        Machine.Interp.graph = c'.Dflow.Driver.graph;
        layout = c'.Dflow.Driver.layout;
      }
  in
  Fmt.pr "figure 8 with loop control: clean, x = %d y = %d@."
    (Imp.Memory.read r'.Machine.Interp.memory "x" 0)
    (Imp.Memory.read r'.Machine.Interp.memory "y" 0)
