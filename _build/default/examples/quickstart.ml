(* Quickstart: the whole pipeline in one file.

   Run with:  dune exec examples/quickstart.exe

   Parses a small imperative program, translates it to a dataflow graph
   under the optimized Schema 2 construction (paper, Section 4), executes
   it on the simulated explicit-token-store machine, and compares the
   final store against the sequential reference interpreter. *)

let source =
  {|
  # sum of squares below 10, imperative style
  i := 0
  total := 0
  while i < 10 do
    total := total + i * i
    i := i + 1
  end
|}

let () =
  (* 1. Parse (and type check). *)
  let program = Imp.Parser.program_of_string source in
  Fmt.pr "=== source ===@.%a@.@." Imp.Pretty.pp_program program;

  (* 2. Reference semantics: the ordinary sequential interpreter. *)
  let reference = Imp.Eval.run_program program in
  Fmt.pr "=== reference (von Neumann) final store ===@.%a@.@." Imp.Memory.pp
    reference;

  (* 3. Translate to a dataflow graph.  Driver.compile bundles: CFG
     construction, interval analysis + loop-control insertion, switch
     placement, and the source-vector wiring. *)
  let compiled =
    Dflow.Driver.compile
      (Dflow.Driver.Schema2_opt Dflow.Engine.Barrier)
      program
  in
  Dfg.Check.check compiled.Dflow.Driver.graph;
  Fmt.pr "=== dataflow graph ===@.%a@.@." Dfg.Stats.pp
    (Dfg.Stats.of_graph compiled.Dflow.Driver.graph);

  (* 4. Execute on the dataflow machine: unbounded processing elements,
     default latencies (memory is split-phase, 4 cycles). *)
  let result =
    Machine.Interp.run_exn
      {
        Machine.Interp.graph = compiled.Dflow.Driver.graph;
        layout = compiled.Dflow.Driver.layout;
      }
  in
  Fmt.pr "=== dataflow execution ===@.";
  Fmt.pr "cycles            %d@." result.Machine.Interp.cycles;
  Fmt.pr "operations fired  %d@." result.Machine.Interp.firings;
  Fmt.pr "avg parallelism   %.2f@."
    (Machine.Interp.avg_parallelism result);
  Fmt.pr "final store:@.%a@.@." Imp.Memory.pp result.Machine.Interp.memory;

  (* 5. The library's central invariant. *)
  assert (Imp.Memory.equal reference result.Machine.Interp.memory);
  Fmt.pr "dataflow store = reference store: ok@.";

  (* 6. Bonus: Section 6.1's memory elimination.  Scalars ride on their
     tokens; the only remaining memory traffic is the final write-back. *)
  let valued =
    Dflow.Driver.compile
      ~transforms:
        { Dflow.Driver.no_transforms with Dflow.Driver.value_passing = true }
      (Dflow.Driver.Schema2_opt Dflow.Engine.Pipelined)
      program
  in
  let result' =
    Machine.Interp.run_exn
      {
        Machine.Interp.graph = valued.Dflow.Driver.graph;
        layout = valued.Dflow.Driver.layout;
      }
  in
  assert (Imp.Memory.equal reference result'.Machine.Interp.memory);
  Fmt.pr
    "with Section 6.1 memory elimination: %d cycles (was %d), %d memory ops \
     (was %d)@."
    result'.Machine.Interp.cycles result.Machine.Interp.cycles
    result'.Machine.Interp.memory_ops result.Machine.Interp.memory_ops
