(* Separate compilation of procedures under aliasing (paper, Section 5).

   Run with:  dune exec examples/separate_compilation.exe

   The paper's alias structures come from FORTRAN reference parameters:
   SUBROUTINE F(X,Y,Z) called as F(A,B,A) and F(C,D,D) makes X~Z and
   Y~Z possible, never X~Y.  This example:

   1. derives that alias structure automatically from the call sites;
   2. compiles the procedure body ONCE under Schema 3 with the derived
      structure;
   3. executes the single dataflow graph against each call site's
      actual memory layout and checks it against the sequential
      semantics of the inlined call;
   4. shows that Schema 2 (which assumes no aliasing) compiles a graph
      that really does go wrong at an aliased call site. *)

let source =
  {|
  proc f(fx, fy, fz)
    fx := 1
    fy := 2
    fz := fz + fx + fy
    fx := fy + fz
  end
  call f(a, b, a)
  call f(c, d, d)
  call f(u, v, w)
|}

let () =
  let program = Imp.Parser.program_of_string source in
  Fmt.pr "=== program ===@.%a@.@." Imp.Pretty.pp_program program;

  (* 1. Derived alias structure. *)
  let pairs = Imp.Proc.param_aliases program "f" in
  Fmt.pr "derived may-alias pairs of f: %a@."
    Fmt.(list ~sep:comma (pair ~sep:(any " ~ ") string string))
    pairs;

  (* 2. Compile the body once, against the derived structure. *)
  let once = Imp.Proc.standalone program "f" in
  let compiled =
    Dflow.Driver.compile
      (Dflow.Driver.Schema3 (Dflow.Driver.Singleton, Dflow.Engine.Barrier))
      once
  in
  Dfg.Check.check compiled.Dflow.Driver.graph;
  Fmt.pr "compiled once: %a@.@." Dfg.Stats.pp
    (Dfg.Stats.of_graph compiled.Dflow.Driver.graph);

  (* 3. One graph, three call sites, three layouts. *)
  List.iter
    (fun args ->
      let inst = Imp.Proc.instantiate program "f" args in
      let layout = Imp.Layout.of_program inst in
      let expected = Imp.Eval.run_program inst in
      let r =
        Machine.Interp.run_exn
          { Machine.Interp.graph = compiled.Dflow.Driver.graph; layout }
      in
      assert (Imp.Memory.equal expected r.Machine.Interp.memory);
      Fmt.pr "call f(%s): ok in %d cycles -- %s@." (String.concat ", " args)
        r.Machine.Interp.cycles
        (String.concat ", "
           (List.map
              (fun (x, _, v) -> Fmt.str "%s=%d" x v)
              (List.filter
                 (fun (_, i, _) -> i = 0)
                 (Imp.Memory.dump_vars r.Machine.Interp.memory)))))
    (Imp.Proc.call_sites program "f");

  (* 4. The cautionary tale: Schema 2 on the same body, pretending the
     parameters never alias. *)
  let once_na = { once with Imp.Ast.may_alias = [] } in
  let wrong =
    Dflow.Driver.compile (Dflow.Driver.Schema2 Dflow.Engine.Barrier) once_na
  in
  let inst = Imp.Proc.instantiate program "f" [ "a"; "b"; "a" ] in
  let layout = Imp.Layout.of_program inst in
  let expected = Imp.Eval.run_program inst in
  (match
     Machine.Interp.run
       { Machine.Interp.graph = wrong.Dflow.Driver.graph; layout }
   with
  | r ->
      if
        r.Machine.Interp.completed
        && Imp.Memory.equal expected r.Machine.Interp.memory
      then Fmt.pr "@.schema 2 got lucky on this schedule (still unsound!)@."
      else
        Fmt.pr
          "@.schema 2 without the alias structure computes the wrong store \
           at f(a, b, a), as expected:@.  reference: %a@.  schema 2:  %a@."
          Imp.Memory.pp expected Imp.Memory.pp r.Machine.Interp.memory
  | exception Machine.Interp.Token_collision w ->
      Fmt.pr "@.schema 2 without the alias structure collides: %s@." w)
