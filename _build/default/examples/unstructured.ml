(* Unstructured control flow (paper, Section 4).

   Run with:  dune exec examples/unstructured.exe

   The whole point of the switch-placement theory (Theorem 1) is that it
   handles goto-spaghetti, not just structured if/while programs, where a
   syntactic analysis would suffice.  This example runs a multi-exit loop
   written with gotos through interval analysis, loop-control insertion,
   switch placement, and both translations, and shows the bypass effect:
   the variable `untouched` is live across the loop but never referenced
   inside it, so its access token skips the entire region. *)

let source =
  {|
  untouched := 42
  head:
  i := i + 1
  if i > 8 goto out
  y := y + i
  if y > 20 goto out
  goto head
  out:
  z := y + i + untouched
|}

let () =
  let program = Imp.Parser.program_of_string source in
  let reference = Imp.Eval.run_program program in
  Fmt.pr "=== program ===@.%a@.@." Imp.Pretty.pp_program program;

  (* Interval analysis discovers the loop; loopify fences it. *)
  let g = Cfg.Builder.of_program program in
  let lp = Cfg.Loopify.transform g in
  Array.iter
    (fun (l : Cfg.Loopify.loop_info) ->
      Fmt.pr "loop %d: header %d, %d exits, manages {%a}@." l.Cfg.Loopify.id
        l.Cfg.Loopify.header
        (List.length l.Cfg.Loopify.exits)
        Fmt.(list ~sep:comma string)
        l.Cfg.Loopify.vars)
    lp.Cfg.Loopify.loops;

  (* Switch placement: which forks need a switch for which token? *)
  let vars = Imp.Ast.program_vars program in
  let sp = Analysis.Switch_place.compute lp.Cfg.Loopify.graph ~vars in
  Fmt.pr "@.switch placement on the loopified graph:@.";
  List.iter
    (fun f ->
      if
        Cfg.Core.is_fork lp.Cfg.Loopify.graph f
        && f <> lp.Cfg.Loopify.graph.Cfg.Core.start
      then
        Fmt.pr "  fork %d needs switches for {%a}@." f
          Fmt.(list ~sep:comma string)
          (List.filter
             (fun x -> Analysis.Switch_place.needs_switch sp f x)
             vars))
    (Cfg.Core.nodes lp.Cfg.Loopify.graph);
  Fmt.pr "  (note: no fork needs a switch for `untouched` -- its token \
          bypasses the loop)@.@.";

  (* Both constructions agree with the reference; the optimized one uses
     fewer switches. *)
  List.iter
    (fun (name, spec) ->
      let compiled = Dflow.Driver.compile spec program in
      Dfg.Check.check compiled.Dflow.Driver.graph;
      let r =
        Machine.Interp.run_exn
          {
            Machine.Interp.graph = compiled.Dflow.Driver.graph;
            layout = compiled.Dflow.Driver.layout;
          }
      in
      assert (Imp.Memory.equal reference r.Machine.Interp.memory);
      let st = Dfg.Stats.of_graph compiled.Dflow.Driver.graph in
      Fmt.pr "%-24s cycles %5d   switches %3d   merges %3d@." name
        r.Machine.Interp.cycles st.Dfg.Stats.switches st.Dfg.Stats.merges)
    [
      ("schema2", Dflow.Driver.Schema2 Dflow.Engine.Barrier);
      ("schema2-opt", Dflow.Driver.Schema2_opt Dflow.Engine.Barrier);
    ];

  (* An irreducible graph is detected and reported. *)
  let irreducible = Imp.Factory.irreducible_example () in
  (match Dflow.Driver.compile (Dflow.Driver.Schema2 Dflow.Engine.Barrier) irreducible with
  | _ -> assert false
  | exception Cfg.Intervals.Irreducible msg ->
      Fmt.pr "@.irreducible example rejected by interval analysis: %s@." msg);
  (* ... but Schema 1 still executes it (no loop control needed). *)
  let c1 = Dflow.Driver.compile Dflow.Driver.Schema1 irreducible in
  let r1 =
    Machine.Interp.run_exn
      { Machine.Interp.graph = c1.Dflow.Driver.graph; layout = c1.Dflow.Driver.layout }
  in
  assert
    (Imp.Memory.equal (Imp.Eval.run_program irreducible) r1.Machine.Interp.memory);
  Fmt.pr "schema1 executes the irreducible graph correctly: ok@."
