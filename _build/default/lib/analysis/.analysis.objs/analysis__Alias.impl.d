lib/analysis/alias.ml: Array Fmt Fun Hashtbl Imp List
