lib/analysis/alias.mli: Format Hashtbl Imp
