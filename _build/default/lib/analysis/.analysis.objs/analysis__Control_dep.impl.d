lib/analysis/control_dep.ml: Array Cfg Dom Fun List Queue
