lib/analysis/control_dep.mli: Cfg Dom
