lib/analysis/cover.ml: Alias Array Fmt Hashtbl List
