lib/analysis/cover.mli: Alias Format
