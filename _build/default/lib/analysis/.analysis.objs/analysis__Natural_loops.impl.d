lib/analysis/natural_loops.ml: Array Cfg Dom Hashtbl List
