lib/analysis/natural_loops.mli: Cfg
