lib/analysis/order.ml: Array List
