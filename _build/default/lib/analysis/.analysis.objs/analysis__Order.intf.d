lib/analysis/order.mli:
