lib/analysis/subscript.ml: Alias Cfg Hashtbl Imp List
