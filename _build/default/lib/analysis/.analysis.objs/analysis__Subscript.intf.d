lib/analysis/subscript.mli: Alias Cfg Imp
