lib/analysis/switch_place.ml: Array Cfg Control_dep Fun Hashtbl List Queue
