lib/analysis/switch_place.mli: Cfg Control_dep Hashtbl
