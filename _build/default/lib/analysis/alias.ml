(** Alias structures (paper, Section 5, Definition 6).

    An alias structure over a variable set [V] is a reflexive, symmetric
    (not necessarily transitive) relation [~]; [x ~ y] means the two names
    {e may} denote the same location.  The structure is derived from the
    program's declarations: [equiv] pairs (actual storage sharing, closed
    transitively because sharing of storage is transitive) and [mayalias]
    pairs (closed symmetrically only -- the paper's FORTRAN example has
    X~Z and Y~Z without X~Y). *)

type t = {
  vars : string array;  (** sorted *)
  index : (string, int) Hashtbl.t;
  rel : bool array array;  (** symmetric, reflexive *)
}

let num_vars (t : t) : int = Array.length t.vars

let index_of (t : t) (x : string) : int =
  match Hashtbl.find_opt t.index x with
  | Some i -> i
  | None -> invalid_arg ("Alias.index_of: unknown variable " ^ x)

(** [related t x y] holds iff [x ~ y]. *)
let related (t : t) (x : string) (y : string) : bool =
  t.rel.(index_of t x).(index_of t y)

(** [class_of t x] is the alias class [\[x\]] = all variables related to
    [x], including [x] itself; sorted. *)
let class_of (t : t) (x : string) : string list =
  let i = index_of t x in
  Array.to_list t.vars |> List.filter (fun y -> t.rel.(i).(index_of t y))

(** [identity vars] is the alias structure where nothing aliases. *)
let identity (vars : string list) : t =
  let vars = Array.of_list (List.sort_uniq compare vars) in
  let n = Array.length vars in
  let index = Hashtbl.create n in
  Array.iteri (fun i x -> Hashtbl.replace index x i) vars;
  let rel = Array.init n (fun i -> Array.init n (fun j -> i = j)) in
  { vars; index; rel }

(** [of_pairs vars ~equiv ~may_alias] builds the structure: the reflexive
    closure, plus symmetric [may_alias] pairs, plus the full relation on
    each transitive [equiv] class.  Pairs naming variables outside [vars]
    are ignored. *)
let of_pairs (vars : string list) ~(equiv : (string * string) list)
    ~(may_alias : (string * string) list) : t =
  let t = identity vars in
  let n = num_vars t in
  let relate x y =
    match (Hashtbl.find_opt t.index x, Hashtbl.find_opt t.index y) with
    | Some i, Some j ->
        t.rel.(i).(j) <- true;
        t.rel.(j).(i) <- true
    | _ -> ()
  in
  List.iter (fun (x, y) -> relate x y) may_alias;
  (* equiv: transitive closure via union-find, then relate full classes *)
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  List.iter
    (fun (x, y) ->
      match (Hashtbl.find_opt t.index x, Hashtbl.find_opt t.index y) with
      | Some i, Some j ->
          let ri = find i and rj = find j in
          if ri <> rj then parent.(ri) <- rj
      | _ -> ())
    equiv;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if find i = find j then begin
        t.rel.(i).(j) <- true;
        t.rel.(j).(i) <- true
      end
    done
  done;
  t

(** [of_program p] is the alias structure declared by program [p] over
    all of its variables -- taken from the flattened program, so
    procedure locals and lowering temporaries participate (as unaliased
    names). *)
let of_program (p : Imp.Ast.program) : t =
  of_pairs
    (Imp.Flat.vars (Imp.Flat.flatten p))
    ~equiv:p.Imp.Ast.equiv ~may_alias:p.Imp.Ast.may_alias

(** [of_flat f] likewise for flat programs. *)
let of_flat (f : Imp.Flat.t) : t =
  of_pairs (Imp.Flat.vars f) ~equiv:f.Imp.Flat.equiv
    ~may_alias:f.Imp.Flat.may_alias

(** [consistent_with_layout t layout] checks soundness of the structure
    against an actual memory layout: names that share storage must be
    related.  Every layout built from the same program satisfies this. *)
let consistent_with_layout (t : t) (layout : Imp.Layout.t) : bool =
  Array.for_all
    (fun x ->
      Array.for_all
        (fun y ->
          (not (Imp.Layout.shares_storage layout x y)) || related t x y)
        t.vars)
    t.vars

(** [has_aliasing t] holds iff some two distinct variables are related. *)
let has_aliasing (t : t) : bool =
  let n = num_vars t in
  let found = ref false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if t.rel.(i).(j) then found := true
    done
  done;
  !found

let pp ppf (t : t) =
  Array.iter
    (fun x ->
      Fmt.pf ppf "[%s] = {%a}@ " x
        (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
        (class_of t x))
    t.vars
