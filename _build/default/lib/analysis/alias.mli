(** Alias structures (paper, Section 5, Definition 6): a reflexive,
    symmetric — not necessarily transitive — relation on variable names.
    Derived from [equiv] declarations (actual sharing; closed
    transitively) and [mayalias] declarations (closed symmetrically
    only: the paper's FORTRAN example has X~Z, Y~Z without X~Y). *)

type t = {
  vars : string array;  (** sorted *)
  index : (string, int) Hashtbl.t;
  rel : bool array array;  (** symmetric, reflexive *)
}

val num_vars : t -> int
val index_of : t -> string -> int

(** [related t x y] — x ~ y. *)
val related : t -> string -> string -> bool

(** [class_of t x] — the alias class [x], sorted, containing [x]. *)
val class_of : t -> string -> string list

(** The structure where nothing aliases. *)
val identity : string list -> t

(** [of_pairs vars ~equiv ~may_alias] — reflexive closure + symmetric
    may-alias pairs + full relation on each transitive equiv class. *)
val of_pairs :
  string list ->
  equiv:(string * string) list ->
  may_alias:(string * string) list ->
  t

val of_program : Imp.Ast.program -> t
val of_flat : Imp.Flat.t -> t

(** Soundness against an actual layout: names sharing storage must be
    related. *)
val consistent_with_layout : t -> Imp.Layout.t -> bool

val has_aliasing : t -> bool
val pp : Format.formatter -> t -> unit
