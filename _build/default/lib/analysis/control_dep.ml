(** Control dependence and iterated control dependence (paper, Section 4.1,
    Definitions 4–5 and Theorem 1).

    [N] is control dependent on [F] iff some path from [F] to [N] consists
    of nodes (after [F]) all postdominated by [N], and [N] does not
    strictly postdominate [F].  Computed the standard way: for every CFG
    edge [F -> S], the nodes control dependent on [F] are exactly those on
    the postdominator-tree path from [S] up to (excluding) the immediate
    postdominator of [F]. *)

type t = {
  cd : int list array;  (** [cd.(n)] = forks that [n] is control dependent on *)
  dependents : int list array;
      (** inverse map: [dependents.(f)] = nodes control dependent on [f] *)
  pdom : Dom.t;
}

(** [compute g] computes control dependences of every node of [g]. *)
let compute (g : Cfg.Core.t) : t =
  let pdom = Dom.postdominators_of g in
  let n = Cfg.Core.num_nodes g in
  let cd = Array.make n [] in
  let dependents = Array.make n [] in
  let add f v =
    if not (List.mem f cd.(v)) then begin
      cd.(v) <- f :: cd.(v);
      dependents.(f) <- v :: dependents.(f)
    end
  in
  for f = 0 to n - 1 do
    let stop_at = Dom.idom pdom f in
    List.iter
      (fun e ->
        let rec walk t =
          if t <> stop_at then begin
            add f t;
            if t <> pdom.Dom.root then walk (Dom.idom pdom t)
          end
        in
        walk e.Cfg.Core.dst)
      (Cfg.Core.succ g f)
  done;
  { cd; dependents; pdom }

(** [cd t n] is the set of nodes [n] is control dependent on. *)
let cd (t : t) (n : int) : int list = t.cd.(n)

(** [dependents t f] is the set of nodes control dependent on [f]. *)
let dependents (t : t) (f : int) : int list = t.dependents.(f)

(** [iterated t seeds] is CD⁺ of a set of nodes: the least set containing
    [CD(seeds)] and closed under [CD] (Definition 5), computed with the
    worklist strategy of Figure 10. *)
let iterated (t : t) (seeds : int list) : int list =
  let n = Array.length t.cd in
  let in_result = Array.make n false in
  let on_worklist = Array.make n false in
  let worklist = Queue.create () in
  List.iter
    (fun s ->
      if not on_worklist.(s) then begin
        on_worklist.(s) <- true;
        Queue.add s worklist
      end)
    seeds;
  while not (Queue.is_empty worklist) do
    let v = Queue.pop worklist in
    List.iter
      (fun f ->
        in_result.(f) <- true;
        if not on_worklist.(f) then begin
          on_worklist.(f) <- true;
          Queue.add f worklist
        end)
      t.cd.(v)
  done;
  List.filter (fun v -> in_result.(v)) (List.init n Fun.id)

(** [between g pdom f] flags every node [N] that lies {e between} [f] and
    its immediate postdominator [P] (Definition 1): there is a non-null
    path from [f] to [N] avoiding [P].  Brute-force graph search; this is
    the definitional form that Theorem 1 equates with CD⁺, used to
    cross-check {!iterated} in tests and to explain switch placement. *)
let between (g : Cfg.Core.t) (pdom : Dom.t) (f : int) : bool array =
  let n = Cfg.Core.num_nodes g in
  let p = Dom.idom pdom f in
  let seen = Array.make n false in
  let rec dfs v =
    if (not seen.(v)) && v <> p then begin
      seen.(v) <- true;
      List.iter dfs (Cfg.Core.succ_nodes g v)
    end
  in
  (* non-null paths: start from f's successors, never expand through P *)
  List.iter (fun s -> dfs s) (Cfg.Core.succ_nodes g f);
  seen

(** Definitional control dependence by path enumeration (Definition 4),
    for cross-checking [compute] in tests. *)
let control_dependent_bruteforce (g : Cfg.Core.t) (pdom : Dom.t) (f : int)
    (nde : int) : bool =
  (* N must not strictly postdominate F *)
  if nde <> f && Dom.dominates pdom nde f then false
  else
    (* exists successor S of F with N postdominating S *)
    List.exists
      (fun s -> Dom.dominates pdom nde s)
      (Cfg.Core.succ_nodes g f)
