(** Control dependence and iterated control dependence (paper,
    Section 4.1, Definitions 4–5 and Theorem 1), computed the standard
    way: for every edge [F -> S], the nodes control dependent on [F] are
    those on the postdominator-tree path from [S] up to (excluding)
    ipostdom(F). *)

type t = {
  cd : int list array;  (** [cd.(n)] — forks [n] is control dependent on *)
  dependents : int list array;  (** inverse map *)
  pdom : Dom.t;
}

val compute : Cfg.Core.t -> t

(** [cd t n] — the nodes [n] is control dependent on. *)
val cd : t -> int -> int list

(** [dependents t f] — the nodes control dependent on [f]. *)
val dependents : t -> int -> int list

(** [iterated t seeds] — CD⁺ of a node set (Definition 5), computed with
    the worklist strategy of Figure 10. *)
val iterated : t -> int list -> int list

(** [between g pdom f] flags every node lying {e between} [f] and its
    immediate postdominator (Definition 1: a non-null path from [f]
    avoiding it).  The definitional form Theorem 1 equates with CD⁺;
    used for cross-checks. *)
val between : Cfg.Core.t -> Dom.t -> int -> bool array

(** Definitional control dependence (Definition 4) by direct
    quantification, for cross-checking [compute]. *)
val control_dependent_bruteforce : Cfg.Core.t -> Dom.t -> int -> int -> bool
