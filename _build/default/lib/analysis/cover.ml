(** Covers of an alias structure (paper, Section 5, Definition 7).

    Schema 3 is parameterised by a cover [C]: a collection of variable
    subsets whose union is the whole variable set.  One access token
    circulates per cover element; a memory operation on [x] must collect
    every token whose element intersects the alias class [\[x\]] (the
    {e access set} [C\[x\]]).

    Any cover is sound (two operations on possibly-aliased names always
    share at least one token -- the element containing the common alias);
    different covers trade parallelism against synchronisation:

    - {!singleton}: one element per variable; maximal parallelism (only
      genuinely may-aliased operations share tokens) but an operation on a
      heavily aliased variable collects many tokens;
    - {!classes}: the set of alias classes; the paper's running choice;
    - {!components}: connected components of [~]; every access set is a
      single element, so synchronisation is minimal (one token per
      operation), at the cost of serializing all operations within a
      component. *)

type t = string list list
(** The cover: a list of cover elements (each a sorted variable list). *)

exception Invalid_cover of string

(** [validate alias c] checks that [c] covers all variables.
    @raise Invalid_cover otherwise. *)
let validate (alias : Alias.t) (c : t) : unit =
  let covered = Hashtbl.create 16 in
  List.iter
    (fun element ->
      if element = [] then raise (Invalid_cover "empty cover element");
      List.iter
        (fun x ->
          ignore (Alias.index_of alias x);
          Hashtbl.replace covered x ())
        element)
    c;
  Array.iter
    (fun x ->
      if not (Hashtbl.mem covered x) then
        raise (Invalid_cover ("variable not covered: " ^ x)))
    alias.Alias.vars

(** The singleton cover: {% {{x} | x ∈ V} %}. *)
let singleton (alias : Alias.t) : t =
  Array.to_list alias.Alias.vars |> List.map (fun x -> [ x ])

(** The alias-class cover: {% {[x] | x ∈ V} %}, duplicates removed. *)
let classes (alias : Alias.t) : t =
  Array.to_list alias.Alias.vars
  |> List.map (fun x -> Alias.class_of alias x)
  |> List.sort_uniq compare

(** The connected-components cover of the alias relation. *)
let components (alias : Alias.t) : t =
  let n = Alias.num_vars alias in
  let comp = Array.make n (-1) in
  let rec dfs c i =
    if comp.(i) = -1 then begin
      comp.(i) <- c;
      for j = 0 to n - 1 do
        if alias.Alias.rel.(i).(j) then dfs c j
      done
    end
  in
  let c = ref 0 in
  for i = 0 to n - 1 do
    if comp.(i) = -1 then begin
      dfs !c i;
      incr c
    end
  done;
  List.init !c (fun k ->
      Array.to_list alias.Alias.vars
      |> List.filteri (fun i _ -> comp.(i) = k))

(** [access_set alias c x] is [C\[x\]]: indices (into [c]) of the cover
    elements intersecting the alias class of [x].  Always non-empty for a
    valid cover. *)
let access_set (alias : Alias.t) (c : t) (x : string) : int list =
  let klass = Alias.class_of alias x in
  List.mapi (fun i element -> (i, element)) c
  |> List.filter_map (fun (i, element) ->
         if List.exists (fun v -> List.mem v klass) element then Some i
         else None)

(** Static synchronisation cost: the number of tokens an operation on each
    variable must collect, summed over [vars] (each occurrence counts).
    The paper's "considerable synchronisation devoted to collecting access
    tokens" is this quantity. *)
let synchronization_cost (alias : Alias.t) (c : t) (vars : string list) : int =
  List.fold_left (fun acc x -> acc + List.length (access_set alias c x)) 0 vars

(** Static serialization measure: the number of unordered pairs of
    distinct variables whose operations share a token even though the two
    variables do not alias -- spurious ordering introduced by a coarse
    cover.  Zero for {!singleton}. *)
let spurious_serialization (alias : Alias.t) (c : t) : int =
  let n = Alias.num_vars alias in
  let shares x y =
    let sx = access_set alias c x and sy = access_set alias c y in
    List.exists (fun i -> List.mem i sy) sx
  in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let x = alias.Alias.vars.(i) and y = alias.Alias.vars.(j) in
      if (not (Alias.related alias x y)) && shares x y then incr count
    done
  done;
  !count

let pp ppf (c : t) =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any "; ") (fun ppf e ->
         Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ",") Fmt.string) e))
    c
