(** Covers of an alias structure (paper, Section 5, Definition 7).
    Schema 3 circulates one access token per cover element; an operation
    on [x] collects every token whose element meets the alias class
    [\[x\]] (the access set [C\[x\]]).  Any cover is sound; they trade
    parallelism against synchronisation. *)

type t = string list list
(** A list of cover elements (each a variable list). *)

exception Invalid_cover of string

(** @raise Invalid_cover if some variable is uncovered or an element is
    empty. *)
val validate : Alias.t -> t -> unit

(** One element per variable: maximal parallelism. *)
val singleton : Alias.t -> t

(** The set of alias classes, duplicates removed. *)
val classes : Alias.t -> t

(** Connected components of ~: one token per operation, minimal
    synchronisation, maximal serialization. *)
val components : Alias.t -> t

(** [access_set alias c x] — indices into [c] of the elements meeting
    [\[x\]]; non-empty for a valid cover. *)
val access_set : Alias.t -> t -> string -> int list

(** Static synchronisation cost: tokens collected per operation, summed
    over [vars]. *)
val synchronization_cost : Alias.t -> t -> string list -> int

(** Unordered pairs of non-aliased variables whose operations still
    share a token: spurious ordering introduced by the cover. *)
val spurious_serialization : Alias.t -> t -> int

val pp : Format.formatter -> t -> unit
