(** Dominator and postdominator trees.

    Implementation: the Cooper–Harvey–Kennedy iterative algorithm over
    reverse postorder.  Postdominators (the relation the paper's Section
    4.1 is built on) are dominators of the reverse graph rooted at [end];
    they are total because CFG construction guarantees every node reaches
    [end].  [dominates] queries are O(1) via Euler-tour intervals of the
    tree. *)

type t = {
  root : int;
  idom : int array;  (** immediate dominator; [root] maps to itself *)
  children : int list array;
  tin : int array;  (** Euler tour entry time *)
  tout : int array;  (** Euler tour exit time *)
  depth : int array;
  reach : bool array;  (** node participates (reachable from root) *)
}

(** [compute ~nn ~succ ~pred ~entry] is the dominator tree of the graph
    rooted at [entry].  Nodes unreachable from [entry] have
    [reach = false] and undefined tree fields. *)
let compute ~(nn : int) ~(succ : int -> int list) ~(pred : int -> int list)
    ~(entry : int) : t =
  let rpo = Order.reverse_postorder ~nn ~succ ~entry in
  let rpo_num = Array.make nn (-1) in
  List.iteri (fun i v -> rpo_num.(v) <- i) rpo;
  let idom = Array.make nn (-1) in
  idom.(entry) <- entry;
  let intersect a b =
    (* walk up by RPO number until the fingers meet *)
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_num.(!a) > rpo_num.(!b) do
        a := idom.(!a)
      done;
      while rpo_num.(!b) > rpo_num.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        if v <> entry then begin
          let preds = List.filter (fun p -> rpo_num.(p) >= 0) (pred v) in
          let processed = List.filter (fun p -> idom.(p) <> -1) preds in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(v) <> new_idom then begin
                idom.(v) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  let children = Array.make nn [] in
  let reach = Array.make nn false in
  List.iter (fun v -> reach.(v) <- true) rpo;
  List.iter
    (fun v ->
      if v <> entry && idom.(v) >= 0 then
        children.(idom.(v)) <- v :: children.(idom.(v)))
    rpo;
  let tin = Array.make nn 0 and tout = Array.make nn 0 in
  let depth = Array.make nn 0 in
  let clock = ref 0 in
  let rec tour v d =
    depth.(v) <- d;
    tin.(v) <- !clock;
    incr clock;
    List.iter (fun c -> tour c (d + 1)) children.(v);
    tout.(v) <- !clock;
    incr clock
  in
  tour entry 0;
  { root = entry; idom; children; tin; tout; depth; reach }

(** [dominates t a b] holds iff [a] dominates [b] (reflexive). *)
let dominates (t : t) (a : int) (b : int) : bool =
  t.reach.(a) && t.reach.(b) && t.tin.(a) <= t.tin.(b) && t.tout.(b) <= t.tout.(a)

(** [strictly_dominates t a b] holds iff [a] dominates [b] and [a <> b]. *)
let strictly_dominates (t : t) (a : int) (b : int) : bool =
  a <> b && dominates t a b

(** [idom t v] is the immediate dominator of [v]; the root maps to itself. *)
let idom (t : t) (v : int) : int = t.idom.(v)

(** [dominators_of g] is the dominator tree of CFG [g], rooted at start. *)
let dominators_of (g : Cfg.Core.t) : t =
  compute ~nn:(Cfg.Core.num_nodes g)
    ~succ:(Cfg.Core.succ_nodes g)
    ~pred:(Cfg.Core.pred_nodes g)
    ~entry:g.Cfg.Core.start

(** [postdominators_of g] is the postdominator tree of CFG [g]: dominators
    of the edge-reversed graph rooted at [end].  [idom] then gives the
    {e immediate postdominator} of Section 4.1. *)
let postdominators_of (g : Cfg.Core.t) : t =
  compute ~nn:(Cfg.Core.num_nodes g)
    ~succ:(Cfg.Core.pred_nodes g)
    ~pred:(Cfg.Core.succ_nodes g)
    ~entry:g.Cfg.Core.stop

(** Brute-force postdominance by path enumeration, for cross-checking in
    tests: [a] postdominates [b] iff every path [b -> end] passes through
    [a]; checked as unreachability of [end] from [b] when [a] is removed. *)
let postdominates_bruteforce (g : Cfg.Core.t) (a : int) (b : int) : bool =
  if a = b then true
  else begin
    let seen = Array.make (Cfg.Core.num_nodes g) false in
    let rec dfs v =
      if (not seen.(v)) && v <> a then begin
        seen.(v) <- true;
        List.iter dfs (Cfg.Core.succ_nodes g v)
      end
    in
    dfs b;
    not seen.(g.Cfg.Core.stop)
  end
