(** Dominator and postdominator trees (Cooper–Harvey–Kennedy iterative
    algorithm over reverse postorder).  Postdominators — the relation
    Section 4.1 is built on — are dominators of the reverse graph rooted
    at [end]; they are total because CFG construction guarantees every
    node reaches [end].  [dominates] queries are O(1) via Euler-tour
    intervals. *)

type t = {
  root : int;
  idom : int array;  (** immediate dominator; the root maps to itself *)
  children : int list array;
  tin : int array;
  tout : int array;
  depth : int array;
  reach : bool array;  (** node participates (reachable from root) *)
}

(** [compute ~nn ~succ ~pred ~entry] — the dominator tree of the graph
    rooted at [entry]. *)
val compute :
  nn:int ->
  succ:(int -> int list) ->
  pred:(int -> int list) ->
  entry:int ->
  t

(** [dominates t a b] — [a] dominates [b] (reflexive). *)
val dominates : t -> int -> int -> bool

val strictly_dominates : t -> int -> int -> bool

(** [idom t v] — immediate dominator of [v]; the root maps to itself. *)
val idom : t -> int -> int

(** Dominators of a CFG, rooted at start. *)
val dominators_of : Cfg.Core.t -> t

(** Postdominators of a CFG: dominators of the edge-reversed graph
    rooted at [end]; [idom] then gives the {e immediate postdominator}
    of Section 4.1. *)
val postdominators_of : Cfg.Core.t -> t

(** Brute-force postdominance by path enumeration, for cross-checking:
    [a] postdominates [b] iff removing [a] disconnects [b] from [end]. *)
val postdominates_bruteforce : Cfg.Core.t -> int -> int -> bool
