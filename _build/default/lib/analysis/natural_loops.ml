(** Natural loops from dominator back edges.

    An independent characterisation of the cycles that {!Cfg.Intervals}
    finds through the derived sequence: an edge [n -> h] is a {e back
    edge} iff [h] dominates [n]; the natural loop of [h] is [h] plus all
    nodes that reach a latch without passing through [h].  For reducible
    graphs the two constructions agree (same headers, same bodies), which
    the property tests exploit to cross-validate the interval machinery
    the paper's Section 3 relies on. *)

type loop = {
  header : Cfg.Core.node;
  latches : Cfg.Core.node list;  (** sources of back edges *)
  body : Cfg.Core.node list;  (** sorted, header included *)
}

(** [back_edges g] -- [(latch, header)] pairs with [header] dominating
    [latch]. *)
let back_edges (g : Cfg.Core.t) : (Cfg.Core.node * Cfg.Core.node) list =
  let dom = Dom.dominators_of g in
  List.concat_map
    (fun n ->
      List.filter_map
        (fun s -> if Dom.dominates dom s n then Some (n, s) else None)
        (Cfg.Core.succ_nodes g n))
    (Cfg.Core.nodes g)

(** [compute g] -- natural loops, back edges with a common header merged,
    sorted by body size (innermost-ish first). *)
let compute (g : Cfg.Core.t) : loop list =
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, h) ->
      Hashtbl.replace by_header h
        (latch :: (try Hashtbl.find by_header h with Not_found -> [])))
    (back_edges g);
  Hashtbl.fold
    (fun header latches acc ->
      let in_body = Array.make (Cfg.Core.num_nodes g) false in
      in_body.(header) <- true;
      let rec up v =
        if not in_body.(v) then begin
          in_body.(v) <- true;
          List.iter up (Cfg.Core.pred_nodes g v)
        end
      in
      List.iter up latches;
      let body =
        List.filter (fun v -> in_body.(v)) (Cfg.Core.nodes g)
      in
      { header; latches = List.sort compare latches; body } :: acc)
    by_header []
  |> List.sort (fun a b ->
         match compare (List.length a.body) (List.length b.body) with
         | 0 -> compare a.header b.header
         | c -> c)

(** [detects_irreducibility g] -- a retreating edge whose target does not
    dominate its source witnesses irreducibility (the converse check to
    the derived-sequence stall). *)
let has_non_back_retreating_edge (g : Cfg.Core.t) : bool =
  let dom = Dom.dominators_of g in
  (* DFS to classify retreating edges *)
  let n = Cfg.Core.num_nodes g in
  let color = Array.make n 0 in
  let retreating = ref [] in
  let rec dfs v =
    color.(v) <- 1;
    List.iter
      (fun s ->
        if color.(s) = 0 then dfs s
        else if color.(s) = 1 then retreating := (v, s) :: !retreating)
      (Cfg.Core.succ_nodes g v);
    color.(v) <- 2
  in
  dfs g.Cfg.Core.start;
  List.exists (fun (v, s) -> not (Dom.dominates dom s v)) !retreating
