(** Natural loops from dominator back edges — an independent
    characterisation of the cycles {!Cfg.Intervals} finds through the
    derived sequence; on reducible graphs the two agree (tested), which
    cross-validates the interval machinery of Section 3. *)

type loop = {
  header : Cfg.Core.node;
  latches : Cfg.Core.node list;  (** sources of back edges *)
  body : Cfg.Core.node list;  (** sorted, header included *)
}

(** [(latch, header)] pairs with [header] dominating [latch]. *)
val back_edges : Cfg.Core.t -> (Cfg.Core.node * Cfg.Core.node) list

(** Natural loops, same-header back edges merged, smallest body first. *)
val compute : Cfg.Core.t -> loop list

(** A retreating DFS edge whose target does not dominate its source
    witnesses irreducibility. *)
val has_non_back_retreating_edge : Cfg.Core.t -> bool
