(** Graph traversal orders over dense integer graphs.

    The dominator and dataflow fixpoints below iterate in reverse postorder
    for fast convergence; both forward and reverse (w.r.t. edge direction)
    traversals are needed, so the functions are parameterised by a
    successor function rather than taking a {!Cfg.Core.t}. *)

(** [postorder ~nn ~succ ~entry] is the DFS postorder of the nodes
    reachable from [entry] (children fully processed before their parent).
    Unreachable nodes are absent. *)
let postorder ~(nn : int) ~(succ : int -> int list) ~(entry : int) : int list =
  let seen = Array.make nn false in
  let out = ref [] in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter dfs (succ v);
      out := v :: !out
    end
  in
  dfs entry;
  List.rev !out

(** [reverse_postorder ~nn ~succ ~entry] is the reverse of {!postorder}:
    every node appears before its successors on acyclic paths. *)
let reverse_postorder ~nn ~succ ~entry : int list =
  List.rev (postorder ~nn ~succ ~entry)

(** [rpo_numbers ~nn ~succ ~entry] maps each node to its reverse-postorder
    index ([-1] for unreachable nodes). *)
let rpo_numbers ~nn ~succ ~entry : int array =
  let num = Array.make nn (-1) in
  List.iteri (fun i v -> num.(v) <- i) (reverse_postorder ~nn ~succ ~entry);
  num

(** [reachable ~nn ~succ ~entry] flags nodes reachable from [entry]. *)
let reachable ~(nn : int) ~(succ : int -> int list) ~(entry : int) : bool array =
  let seen = Array.make nn false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter dfs (succ v)
    end
  in
  dfs entry;
  seen

(** [topological_sort ~nn ~succ ~entry] returns nodes in an order where
    every node precedes its successors; [None] if a cycle is reachable.
    Used by acyclic-graph passes (e.g. source vectors ignore back edges). *)
let topological_sort ~(nn : int) ~(succ : int -> int list) ~(entry : int) :
    int list option =
  let color = Array.make nn 0 in
  (* 0 white, 1 grey, 2 black *)
  let out = ref [] in
  let exception Cycle in
  let rec dfs v =
    match color.(v) with
    | 1 -> raise Cycle
    | 2 -> ()
    | _ ->
        color.(v) <- 1;
        List.iter dfs (succ v);
        color.(v) <- 2;
        out := v :: !out
  in
  match dfs entry with
  | () -> Some !out
  | exception Cycle -> None
