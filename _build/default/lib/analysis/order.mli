(** Graph traversal orders over dense integer graphs, parameterised by a
    successor function so both forward and reverse traversals share the
    code. *)

(** [postorder ~nn ~succ ~entry] — DFS postorder of the reachable nodes. *)
val postorder : nn:int -> succ:(int -> int list) -> entry:int -> int list

(** Reverse of {!postorder}: nodes precede their successors on acyclic
    paths. *)
val reverse_postorder :
  nn:int -> succ:(int -> int list) -> entry:int -> int list

(** [rpo_numbers ~nn ~succ ~entry] maps each node to its reverse
    postorder index ([-1] for unreachable nodes). *)
val rpo_numbers : nn:int -> succ:(int -> int list) -> entry:int -> int array

(** Flags nodes reachable from [entry]. *)
val reachable : nn:int -> succ:(int -> int list) -> entry:int -> bool array

(** [topological_sort ~nn ~succ ~entry] — a topological order, or [None]
    if a cycle is reachable. *)
val topological_sort :
  nn:int -> succ:(int -> int list) -> entry:int -> int list option
