(** Array subscript analysis (paper, Section 6.3).

    The paper's Figure 14 relies on knowing that stores to [x[i]] in
    successive iterations hit distinct elements.  We implement the simple
    disambiguation that justifies it: inside a loop, find {e basic
    induction variables} (exactly one definition in the loop body, of the
    form [i := i + c] or [i := i - c] with constant [c <> 0]), then mark
    an array store independent across iterations when its subscript is
    [i + k] (or [i - k], or plain [i]) for an induction variable [i], and
    no other store in the loop body touches the same array or the same
    [equiv]-related storage.

    Also classifies {e write-once} arrays (Section 6.3's I-structure
    case): every store target subscript is induction-based and the array
    is not read-modified, so all writes hit distinct cells. *)

type induction = {
  ivar : string;
  step : int;  (** net change per iteration; non-zero *)
  def_node : Cfg.Core.node;
}

(* Recognize e = i + k / i - k / i as (i, offset). *)
let rec affine_of_expr (e : Imp.Ast.expr) : (string * int) option =
  match e with
  | Imp.Ast.Var i -> Some (i, 0)
  | Imp.Ast.Binop (Imp.Ast.Add, Imp.Ast.Var i, Imp.Ast.Int k)
  | Imp.Ast.Binop (Imp.Ast.Add, Imp.Ast.Int k, Imp.Ast.Var i) ->
      Some (i, k)
  | Imp.Ast.Binop (Imp.Ast.Sub, Imp.Ast.Var i, Imp.Ast.Int k) -> Some (i, -k)
  | Imp.Ast.Binop (Imp.Ast.Add, inner, Imp.Ast.Int k) -> (
      match affine_of_expr inner with
      | Some (i, k0) -> Some (i, k0 + k)
      | None -> None)
  | _ -> None

(** [inductions g body] finds the basic induction variables of a loop
    body (node list): scalars with exactly one body definition of the
    form [i := i ± c], [c <> 0]. *)
let inductions (g : Cfg.Core.t) (body : Cfg.Core.node list) : induction list =
  (* defs per scalar in the body *)
  let defs = Hashtbl.create 8 in
  List.iter
    (fun n ->
      match Cfg.Core.kind g n with
      | Cfg.Core.Assign (Imp.Ast.Lvar x, rhs) ->
          Hashtbl.replace defs x ((n, rhs) :: (try Hashtbl.find defs x with Not_found -> []))
      | _ -> ())
    body;
  Hashtbl.fold
    (fun x ds acc ->
      match ds with
      | [ (n, rhs) ] -> (
          match affine_of_expr rhs with
          | Some (i, k) when i = x && k <> 0 ->
              { ivar = x; step = k; def_node = n } :: acc
          | Some _ | None -> acc)
      | _ -> acc)
    defs []
  |> List.sort (fun a b -> compare a.ivar b.ivar)

type store_class =
  | Independent of induction
      (** distinct elements across iterations: parallelizable à la Fig. 14 *)
  | Serial  (** must stay ordered by the access token *)

(** [classify_store g alias ~body n] classifies an array store node [n]
    within loop [body].  [Independent] requires: subscript affine in a
    body induction variable, that induction variable has no other body
    definition, and no {e other} store in the body writes the same array
    or any may-aliased name. *)
let classify_store (g : Cfg.Core.t) (alias : Alias.t)
    ~(body : Cfg.Core.node list) (n : Cfg.Core.node) : store_class =
  match Cfg.Core.kind g n with
  | Cfg.Core.Assign (Imp.Ast.Lindex (arr, idx), _) -> (
      let inds = inductions g body in
      match affine_of_expr idx with
      | Some (i, _) -> (
          match List.find_opt (fun ind -> ind.ivar = i) inds with
          | None -> Serial
          | Some ind ->
              let other_store_conflicts =
                List.exists
                  (fun m ->
                    m <> n
                    &&
                    match Cfg.Core.kind g m with
                    | Cfg.Core.Assign (Imp.Ast.Lindex (arr', _), _) ->
                        Alias.related alias arr arr'
                    | Cfg.Core.Assign (Imp.Ast.Lvar y, _) ->
                        Alias.related alias arr y
                    | _ -> false)
                  body
              in
              if other_store_conflicts then Serial else Independent ind)
      | None -> Serial)
  | _ -> Serial

(** [independent_stores g alias loop_body] lists the array-store nodes of
    the body classified [Independent], with their induction variables. *)
let independent_stores (g : Cfg.Core.t) (alias : Alias.t)
    (body : Cfg.Core.node list) : (Cfg.Core.node * induction) list =
  List.filter_map
    (fun n ->
      match classify_store g alias ~body n with
      | Independent ind -> Some (n, ind)
      | Serial -> None)
    body

(** [write_once g alias ~body arr] holds iff every body store to [arr] (or
    an alias of it) is [Independent] and [arr] is never both read and
    written at the same subscript pattern -- the precondition for placing
    the array in I-structure memory. *)
let write_once (g : Cfg.Core.t) (alias : Alias.t) ~(body : Cfg.Core.node list)
    (arr : string) : bool =
  let stores =
    List.filter
      (fun n ->
        match Cfg.Core.kind g n with
        | Cfg.Core.Assign (Imp.Ast.Lindex (a, _), _) ->
            Alias.related alias a arr
        | _ -> false)
      body
  in
  stores <> []
  && List.for_all
       (fun n ->
         match classify_store g alias ~body n with
         | Independent _ -> true
         | Serial -> false)
       stores
