(** Array subscript analysis (paper, Section 6.3): the disambiguation
    justifying Figure 14 — stores through an induction variable hit
    distinct elements across iterations. *)

type induction = {
  ivar : string;
  step : int;  (** net change per iteration; non-zero *)
  def_node : Cfg.Core.node;
}

(** Recognise [i], [i + k], [i - k] (nested constant offsets allowed) as
    (variable, offset). *)
val affine_of_expr : Imp.Ast.expr -> (string * int) option

(** Basic induction variables of a loop body: scalars with exactly one
    body definition of the form [i := i ± c], [c <> 0]. *)
val inductions : Cfg.Core.t -> Cfg.Core.node list -> induction list

type store_class =
  | Independent of induction
      (** distinct elements across iterations: Figure 14 applies *)
  | Serial  (** must stay ordered by the access token *)

(** Classify an array store node within a loop body. *)
val classify_store :
  Cfg.Core.t -> Alias.t -> body:Cfg.Core.node list -> Cfg.Core.node ->
  store_class

(** The body's array stores classified [Independent]. *)
val independent_stores :
  Cfg.Core.t -> Alias.t -> Cfg.Core.node list ->
  (Cfg.Core.node * induction) list

(** Is every body store to [arr] independent (the I-structure
    precondition)? *)
val write_once :
  Cfg.Core.t -> Alias.t -> body:Cfg.Core.node list -> string -> bool
