(** Switch placement (paper, Section 4.1, Figure 10).

    A fork [F] needs a switch for [access_x] iff some node referencing [x]
    lies between [F] and its immediate postdominator (Definitions 1–3);
    by Theorem 1 this is exactly [F ∈ CD⁺(N)] for such a node [N].  The
    worklist algorithm of Figure 10 computes, for every variable, the set
    of forks needing a switch for its access token. *)

type t = {
  vars : string list;
  needs : (string, bool array) Hashtbl.t;
      (** per variable: flags over nodes; [true] at forks needing a switch *)
  cdeps : Control_dep.t;
}

(** [refs_default g n] is the reference set used for placement: statement
    and predicate references ({!Cfg.Core.referenced_vars}).  Translation
    schemas override this to make loop-control nodes reference the
    variables their loop manages. *)
let refs_default (g : Cfg.Core.t) (n : int) : string list =
  Cfg.Core.referenced_vars g n

(** [compute ?refs g ~vars] runs Figure 10 for each variable in [vars].
    [refs] defaults to {!refs_default}. *)
let compute ?(refs : (int -> string list) option) (g : Cfg.Core.t)
    ~(vars : string list) : t =
  let refs = match refs with Some f -> f | None -> refs_default g in
  let cdeps = Control_dep.compute g in
  let n = Cfg.Core.num_nodes g in
  (* Per-node reference sets, computed once. *)
  let node_refs = Array.init n refs in
  let needs = Hashtbl.create 16 in
  List.iter
    (fun x ->
      let flags = Array.make n false in
      let seeds =
        List.filter (fun v -> List.mem x node_refs.(v)) (List.init n Fun.id)
      in
      (* CD⁺ of the seed set, marking every fork reached. *)
      let on_worklist = Array.make n false in
      let worklist = Queue.create () in
      List.iter
        (fun s ->
          on_worklist.(s) <- true;
          Queue.add s worklist)
        seeds;
      while not (Queue.is_empty worklist) do
        let v = Queue.pop worklist in
        List.iter
          (fun f ->
            flags.(f) <- true;
            if not on_worklist.(f) then begin
              on_worklist.(f) <- true;
              Queue.add f worklist
            end)
          (Control_dep.cd cdeps v)
      done;
      Hashtbl.replace needs x flags)
    vars;
  { vars; needs; cdeps }

(** [needs_switch t f x] holds iff fork [f] needs a switch for
    [access_x]. *)
let needs_switch (t : t) (f : int) (x : string) : bool =
  match Hashtbl.find_opt t.needs x with
  | Some flags -> flags.(f)
  | None -> invalid_arg ("Switch_place.needs_switch: unknown variable " ^ x)

(** [switch_count t] is the total number of (fork, variable) switches the
    optimized construction will create; the headline static metric of the
    Section 4 optimization. *)
let switch_count (t : t) : int =
  List.fold_left
    (fun acc x ->
      let flags = Hashtbl.find t.needs x in
      Array.fold_left (fun a b -> if b then a + 1 else a) acc flags)
    0 t.vars

(** [compute_bruteforce ?refs g ~vars] is the definitional version: for
    each fork [F] and variable [x], search for a node referencing [x]
    between [F] and its immediate postdominator (Definition 3).  Used to
    validate {!compute} (Theorem 1) in property tests. *)
let compute_bruteforce ?(refs : (int -> string list) option) (g : Cfg.Core.t)
    ~(vars : string list) : t =
  let refs = match refs with Some f -> f | None -> refs_default g in
  let cdeps = Control_dep.compute g in
  let pdom = cdeps.Control_dep.pdom in
  let n = Cfg.Core.num_nodes g in
  let node_refs = Array.init n refs in
  let needs = Hashtbl.create 16 in
  let forks =
    List.filter (fun f -> Cfg.Core.is_fork g f) (List.init n Fun.id)
  in
  List.iter
    (fun x ->
      let flags = Array.make n false in
      List.iter
        (fun f ->
          let betw = Control_dep.between g pdom f in
          flags.(f) <-
            List.exists
              (fun v -> betw.(v) && List.mem x node_refs.(v))
              (List.init n Fun.id))
        forks;
      Hashtbl.replace needs x flags)
    vars;
  { vars; needs; cdeps }
