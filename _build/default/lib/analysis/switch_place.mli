(** Switch placement (paper, Section 4.1, Figure 10): a fork [F] needs a
    switch for [access_x] iff some node referencing [x] lies between [F]
    and its immediate postdominator — by Theorem 1, iff
    [F ∈ CD⁺(that node)]. *)

type t = {
  vars : string list;
  needs : (string, bool array) Hashtbl.t;
      (** per variable: flags over nodes; [true] at forks needing a
          switch *)
  cdeps : Control_dep.t;
}

(** Default reference map: {!Cfg.Core.referenced_vars}.  Translations
    override it so loop-control nodes reference their managed sets. *)
val refs_default : Cfg.Core.t -> int -> string list

(** [compute ?refs g ~vars] runs Figure 10 for each variable. *)
val compute : ?refs:(int -> string list) -> Cfg.Core.t -> vars:string list -> t

(** [needs_switch t f x] — does fork [f] need a switch for [access_x]? *)
val needs_switch : t -> int -> string -> bool

(** Total (fork, variable) switch count: the headline static metric of
    the Section 4 optimization. *)
val switch_count : t -> int

(** The definitional version (Definition 3 via path search), used to
    validate {!compute} — Theorem 1 — in property tests. *)
val compute_bruteforce :
  ?refs:(int -> string list) -> Cfg.Core.t -> vars:string list -> t
