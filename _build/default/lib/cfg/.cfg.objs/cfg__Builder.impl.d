lib/cfg/builder.ml: Array Core Fmt Fun Hashtbl Imp List
