lib/cfg/builder.mli: Core Imp
