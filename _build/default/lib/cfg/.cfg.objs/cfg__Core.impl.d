lib/cfg/core.ml: Array Fmt Fun Imp List
