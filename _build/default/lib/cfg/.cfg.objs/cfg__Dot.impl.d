lib/cfg/dot.ml: Array Core Fmt Fun List String
