lib/cfg/dot.mli: Core Format
