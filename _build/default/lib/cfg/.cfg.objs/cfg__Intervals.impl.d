lib/cfg/intervals.ml: Array Core Fmt Fun Hashtbl List Queue
