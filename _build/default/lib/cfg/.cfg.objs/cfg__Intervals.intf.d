lib/cfg/intervals.mli: Core
