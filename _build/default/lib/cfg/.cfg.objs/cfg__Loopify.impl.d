lib/cfg/loopify.ml: Array Core Fun Hashtbl Intervals List
