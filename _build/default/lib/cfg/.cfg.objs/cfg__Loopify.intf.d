lib/cfg/loopify.mli: Core
