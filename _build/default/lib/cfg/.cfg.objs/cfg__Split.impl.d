lib/cfg/split.ml: Array Core Fmt Intervals List
