lib/cfg/split.mli: Core
