lib/cfg/validate.ml: Array Core Fmt List
