lib/cfg/validate.mli: Core
