(** Construction of control-flow graphs from flat programs.

    Every [Assign] and [Branch] instruction becomes a node; every [Label]
    becomes a join node; [Goto] contributes only an edge.  The paper's
    conventions are enforced: unique start and end nodes, the extra
    [start -> end] edge (out-direction [false]; the real entry is the
    [true] edge), unreachable code pruned, and every remaining node lies on
    a path from start to end. *)

exception Unreachable_end of string
(** Raised when some reachable node cannot reach [end] (e.g. a program
    that can only loop forever): postdominance, and hence the whole
    translation theory, is undefined for such graphs. *)

(** [of_flat f] builds the CFG of flat program [f].
    @raise Flat.Invalid on undefined/duplicate labels.
    @raise Unreachable_end, see above. *)
let rec of_flat (f : Imp.Flat.t) : Core.t =
  Imp.Flat.validate f;
  let labels = Imp.Flat.label_table f in
  let code = f.Imp.Flat.code in
  let n = Array.length code in
  (* Instruction index -> prospective node id (instructions only; start and
     end are added afterwards). *)
  let node_of_instr = Array.make n (-1) in
  let count = ref 0 in
  Array.iteri
    (fun i instr ->
      match instr with
      | Imp.Flat.Assign _ | Imp.Flat.Branch _ | Imp.Flat.Label _ ->
          node_of_instr.(i) <- !count;
          incr count
      | Imp.Flat.Goto _ -> ())
    code;
  let num_real = !count in
  let start_id = num_real and end_id = num_real + 1 in
  (* [target i] resolves instruction index [i] to the node control reaches
     next: skips over gotos, runs off the end to [end]. *)
  let rec target i =
    if i >= n then end_id
    else
      match code.(i) with
      | Imp.Flat.Goto l -> target (Hashtbl.find labels l)
      | Imp.Flat.Assign _ | Imp.Flat.Branch _ | Imp.Flat.Label _ ->
          node_of_instr.(i)
  in
  let kinds = Array.make (num_real + 2) Core.Start in
  kinds.(start_id) <- Core.Start;
  kinds.(end_id) <- Core.End;
  let edges = ref [] in
  let add_edge s d t = edges := (s, d, t) :: !edges in
  Array.iteri
    (fun i instr ->
      match instr with
      | Imp.Flat.Goto _ -> ()
      | Imp.Flat.Assign (lv, e) ->
          kinds.(node_of_instr.(i)) <- Core.Assign (lv, e);
          add_edge node_of_instr.(i) true (target (i + 1))
      | Imp.Flat.Label _ ->
          kinds.(node_of_instr.(i)) <- Core.Join;
          add_edge node_of_instr.(i) true (target (i + 1))
      | Imp.Flat.Branch (p, lt, lf) ->
          kinds.(node_of_instr.(i)) <- Core.Fork p;
          add_edge node_of_instr.(i) true (target (Hashtbl.find labels lt));
          add_edge node_of_instr.(i) false (target (Hashtbl.find labels lf)))
    code;
  (* Start: true edge to the program entry, false edge to end (paper
     convention: start is a fork). *)
  add_edge start_id true (target 0);
  add_edge start_id false end_id;
  let g = Core.build ~kinds ~edges:(List.rev !edges) in
  prune (simplify_joins (prune g))

(* A join with a single predecessor represents no merge of control; splice
   it out (lowering of [Cond_goto] and [If] leaves such joins behind).
   Joins that are their own predecessor are kept (degenerate self-loops are
   rejected later by end-reachability anyway). *)
and simplify_joins (g : Core.t) : Core.t =
  let n = Core.num_nodes g in
  let removable v =
    Core.kind g v = Core.Join
    && (match Core.pred g v with [ (p, _) ] -> p <> v | _ -> false)
  in
  if not (List.exists removable (Core.nodes g)) then g
  else begin
    (* [resolve v] follows chains of removable joins to the surviving
       target. *)
    let rec resolve v seen =
      if removable v && not (List.mem v seen) then
        resolve (Core.the_succ g v) (v :: seen)
      else v
    in
    let keep = Array.init n (fun v -> not (removable v)) in
    let remap = Array.make n (-1) in
    let next = ref 0 in
    Array.iteri
      (fun i k ->
        if k then begin
          remap.(i) <- !next;
          incr next
        end)
      keep;
    let kinds = Array.make !next Core.Start in
    Array.iteri (fun i k -> if k then kinds.(remap.(i)) <- g.Core.kind.(i)) keep;
    let edges = ref [] in
    Array.iteri
      (fun i k ->
        if k then
          List.iter
            (fun e ->
              let t = resolve e.Core.dst [] in
              edges := (remap.(i), e.Core.dir, remap.(t)) :: !edges)
            (Core.succ g i))
      keep;
    Core.build ~kinds ~edges:(List.rev !edges)
  end

(* Drop nodes unreachable from start, then verify end-reachability. *)
and prune (g : Core.t) : Core.t =
  let n = Core.num_nodes g in
  let reach = Array.make n false in
  let rec dfs v =
    if not reach.(v) then begin
      reach.(v) <- true;
      List.iter dfs (Core.succ_nodes g v)
    end
  in
  dfs g.Core.start;
  let live = Array.to_list reach |> List.filter Fun.id |> List.length in
  let g =
    if live = n then g
    else begin
      let remap = Array.make n (-1) in
      let next = ref 0 in
      Array.iteri
        (fun i r ->
          if r then begin
            remap.(i) <- !next;
            incr next
          end)
        reach;
      let kinds = Array.make live Core.Start in
      Array.iteri (fun i r -> if r then kinds.(remap.(i)) <- g.Core.kind.(i)) reach;
      let edges = ref [] in
      Array.iteri
        (fun i r ->
          if r then
            List.iter
              (fun e ->
                edges := (remap.(i), e.Core.dir, remap.(e.Core.dst)) :: !edges)
              (Core.succ g i))
        reach;
      Core.build ~kinds ~edges:(List.rev !edges)
    end
  in
  (* Every node must reach end (postdominance must be defined). *)
  let n = Core.num_nodes g in
  let back = Array.make n false in
  let rec rdfs v =
    if not back.(v) then begin
      back.(v) <- true;
      List.iter rdfs (Core.pred_nodes g v)
    end
  in
  rdfs g.Core.stop;
  Array.iteri
    (fun i b ->
      if not b then
        raise
          (Unreachable_end
             (Fmt.str "node %d (%s) cannot reach end" i
                (Core.kind_to_string (Core.kind g i)))))
    back;
  g

(** [of_program p] lowers [p] to flat form and builds its CFG. *)
let of_program (p : Imp.Ast.program) : Core.t = of_flat (Imp.Flat.flatten p)

(** [of_string src] parses, lowers and builds in one step. *)
let of_string (src : string) : Core.t =
  of_program (Imp.Parser.program_of_string src)
