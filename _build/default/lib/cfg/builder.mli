(** Construction of control-flow graphs from flat programs.

    Every [Assign] and [Branch] instruction becomes a node; every
    [Label] a join; [Goto] contributes only an edge.  The paper's
    conventions are enforced: unique start and end, the extra
    [start -> end] edge (start's false direction), unreachable code
    pruned, single-predecessor joins spliced out, and every remaining
    node on a path from start to end. *)

exception Unreachable_end of string
(** Some reachable node cannot reach [end] (e.g. the program can only
    loop forever): postdominance, and hence the whole translation
    theory, is undefined for such graphs. *)

(** [of_flat f] builds the CFG of flat program [f].
    @raise Imp.Flat.Invalid on undefined or duplicate labels.
    @raise Unreachable_end, see above. *)
val of_flat : Imp.Flat.t -> Core.t

(** [of_program p] lowers [p] to flat form and builds its CFG. *)
val of_program : Imp.Ast.program -> Core.t

(** [of_string src] parses, lowers and builds in one step. *)
val of_string : string -> Core.t
