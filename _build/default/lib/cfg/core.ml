(** Statement-level control-flow graphs (paper, Section 2.1).

    Nodes are statements of five kinds: the unique [Start] and [End],
    assignments, binary forks, and labelled joins.  Edges carry an
    {e out-direction}: forks have a [true] and a [false] out-edge; all
    other nodes have a single out-edge whose direction is [true] by
    convention.  Following the paper, an extra edge [Start -> End] is
    always present, making [Start] a fork; this convention is what makes
    control dependence well defined for nodes not dominated by any real
    fork.

    After loop-control insertion (see {!Loopify}) two more node kinds
    appear, [Loop_entry] and [Loop_exit], indexed by loop id. *)

type node = int
(** Node identifier; dense, [0 .. num_nodes-1]. *)

type kind =
  | Start
  | End
  | Assign of Imp.Ast.lvalue * Imp.Ast.expr
  | Fork of Imp.Ast.expr  (** binary branch on a boolean predicate *)
  | Join  (** labelled join; no computation *)
  | Loop_entry of int  (** inserted by {!Loopify}; payload is the loop id *)
  | Loop_exit of int

type edge = { dst : node; dir : bool }
(** A control-flow edge: target node and out-direction at the source. *)

type t = {
  kind : kind array;
  succ : edge list array;  (** out-edges, in out-direction order *)
  pred : (node * bool) list array;
      (** in-edges as [(source, out-direction at source)] *)
  start : node;
  stop : node;
}

exception Malformed of string

let num_nodes (g : t) : int = Array.length g.kind
let kind (g : t) (n : node) : kind = g.kind.(n)
let succ (g : t) (n : node) : edge list = g.succ.(n)
let pred (g : t) (n : node) : (node * bool) list = g.pred.(n)

(** [succ_nodes g n] is the successor node list (directions dropped). *)
let succ_nodes (g : t) (n : node) : node list =
  List.map (fun e -> e.dst) g.succ.(n)

let pred_nodes (g : t) (n : node) : node list = List.map fst g.pred.(n)

(** [succ_on g n dir] is the successor of [n] along out-direction [dir].
    @raise Malformed if there is none. *)
let succ_on (g : t) (n : node) (dir : bool) : node =
  match List.find_opt (fun e -> e.dir = dir) g.succ.(n) with
  | Some e -> e.dst
  | None -> raise (Malformed (Fmt.str "node %d has no %b out-edge" n dir))

(** [the_succ g n] is the unique successor of a non-fork node.
    @raise Malformed if [n] has zero or several successors. *)
let the_succ (g : t) (n : node) : node =
  match g.succ.(n) with
  | [ e ] -> e.dst
  | es -> raise (Malformed (Fmt.str "node %d has %d successors" n (List.length es)))

let is_fork (g : t) (n : node) : bool =
  match g.kind.(n) with Start | Fork _ -> true | _ -> false

let num_edges (g : t) : int =
  Array.fold_left (fun acc es -> acc + List.length es) 0 g.succ

(** [nodes g] is the list of all node ids. *)
let nodes (g : t) : node list = List.init (num_nodes g) Fun.id

(** [referenced_vars g n] is the sorted list of variables referenced by
    node [n]: for an assignment, the target and every variable in the
    right-hand side and subscript; for a fork, the predicate's variables.
    [Start]/[End]/[Join] reference nothing.  [Loop_entry]/[Loop_exit]
    reference nothing {e intrinsically} -- translation schemas decide which
    access tokens they manage (all of them in Schema 2; only loop-used ones
    under the optimization of Section 4). *)
let referenced_vars (g : t) (n : node) : string list =
  match g.kind.(n) with
  | Assign (lv, e) ->
      List.sort_uniq compare Imp.Ast.(vars_lvalue lv (vars_expr e []))
  | Fork p -> Imp.Ast.expr_vars p
  | Start | End | Join | Loop_entry _ | Loop_exit _ -> []

(** [build ~kinds ~edges] constructs a graph from a kind array and an edge
    list [(src, dir, dst)]; computes predecessor lists.  [start]/[stop] are
    located by kind.
    @raise Malformed if there is not exactly one [Start] and one [End]. *)
let build ~(kinds : kind array) ~(edges : (node * bool * node) list) : t =
  let n = Array.length kinds in
  let succ = Array.make n [] and pred = Array.make n [] in
  List.iter
    (fun (s, d, t) ->
      if s < 0 || s >= n || t < 0 || t >= n then
        raise (Malformed (Fmt.str "edge (%d,%d) out of range" s t));
      succ.(s) <- { dst = t; dir = d } :: succ.(s);
      pred.(t) <- (s, d) :: pred.(t))
    (List.rev edges);
  let find_unique k what =
    match
      List.filter (fun i -> kinds.(i) = k) (List.init n Fun.id)
    with
    | [ i ] -> i
    | l -> raise (Malformed (Fmt.str "%d %s nodes" (List.length l) what))
  in
  {
    kind = kinds;
    succ;
    pred;
    start = find_unique Start "start";
    stop = find_unique End "end";
  }

let kind_to_string = function
  | Start -> "start"
  | End -> "end"
  | Assign (lv, e) ->
      Fmt.str "%a := %a" Imp.Pretty.pp_lvalue lv Imp.Pretty.pp_expr e
  | Fork p -> Fmt.str "if %a" Imp.Pretty.pp_expr p
  | Join -> "join"
  | Loop_entry l -> Fmt.str "loop-entry %d" l
  | Loop_exit l -> Fmt.str "loop-exit %d" l

let pp ppf (g : t) =
  Fmt.pf ppf "@[<v>";
  Array.iteri
    (fun i k ->
      Fmt.pf ppf "%d: %s -> %a@ " i (kind_to_string k)
        (Fmt.list ~sep:Fmt.comma (fun ppf e ->
             Fmt.pf ppf "%d(%b)" e.dst e.dir))
        g.succ.(i))
    g.kind;
  Fmt.pf ppf "@]"
