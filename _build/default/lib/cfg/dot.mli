(** Graphviz (DOT) rendering of control-flow graphs. *)

(** [pp ppf g] prints [g] in DOT syntax: forks as diamonds with T/F edge
    labels, the conventional start->end edge dashed. *)
val pp : Format.formatter -> Core.t -> unit

val to_string : Core.t -> string

(** [write path g] writes the rendering to a file. *)
val write : string -> Core.t -> unit
