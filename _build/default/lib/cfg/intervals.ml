(** Interval analysis (Allen–Cocke) and loop discovery.

    The paper (Section 3) identifies cycles by decomposing the control-flow
    graph hierarchically into nested intervals: an interval is a maximal
    single-entry subgraph whose every cyclic path passes through its header.
    Collapsing first-order intervals and repeating yields the derived
    sequence; the graph is {e reducible} iff the sequence ends in a single
    node.  Each {e cyclic} interval found along the way is a loop; the
    cyclic part of the interval (members from which the header is
    reachable inside the interval) is the loop body, which is exactly the
    region the paper's loop-entry/loop-exit nodes must fence. *)

exception Irreducible of string
(** The derived sequence stopped shrinking before reaching a single node.
    The paper handles such graphs by code copying; see {!Split}. *)

(** A generic rooted directed graph over dense integer nodes; the interval
    machinery runs on these so it can be applied to each derived graph. *)
type graph = {
  nn : int;
  gsucc : int list array;
  gpred : int list array;
  entry : int;
}

let graph_of_cfg (g : Core.t) : graph =
  {
    nn = Core.num_nodes g;
    gsucc = Array.init (Core.num_nodes g) (fun i -> Core.succ_nodes g i);
    gpred = Array.init (Core.num_nodes g) (fun i -> Core.pred_nodes g i);
    entry = g.Core.start;
  }

type interval = {
  header : int;
  members : int list;  (** in addition order; header first *)
}

(** [partition g] computes the first-order interval partition of [g]
    (headers in discovery order).  Every node reachable from the entry is
    in exactly one interval. *)
let partition (g : graph) : interval list =
  let in_interval = Array.make g.nn (-1) in
  let is_header = Array.make g.nn false in
  let header_queue = Queue.create () in
  let enqueue_header h =
    if (not is_header.(h)) && in_interval.(h) = -1 then begin
      is_header.(h) <- true;
      Queue.add h header_queue
    end
  in
  enqueue_header g.entry;
  let intervals = ref [] in
  while not (Queue.is_empty header_queue) do
    let h = Queue.pop header_queue in
    if in_interval.(h) = -1 then begin
      in_interval.(h) <- h;
      let members = ref [ h ] in
      (* Grow: add any node all of whose predecessors are inside. *)
      let changed = ref true in
      while !changed do
        changed := false;
        for v = 0 to g.nn - 1 do
          if v <> g.entry && in_interval.(v) = -1 && g.gpred.(v) <> [] then
            if List.for_all (fun p -> in_interval.(p) = h) g.gpred.(v) then begin
              in_interval.(v) <- h;
              members := v :: !members;
              changed := true
            end
        done
      done;
      (* Frontier nodes (a predecessor inside, themselves outside) become
         candidate headers. *)
      List.iter
        (fun m ->
          List.iter
            (fun s -> if in_interval.(s) = -1 then enqueue_header s)
            g.gsucc.(m))
        !members;
      intervals := { header = h; members = List.rev !members } :: !intervals
    end
  done;
  List.rev !intervals

(** [derive g ivs] collapses each interval of [ivs] to one node.  Returns
    the derived graph and the map from [g]-nodes to derived nodes.
    Intra-interval edges (including loop back edges) disappear; duplicate
    inter-interval edges are merged. *)
let derive (g : graph) (ivs : interval list) : graph * int array =
  let idx_of_header = Hashtbl.create 16 in
  List.iteri (fun i iv -> Hashtbl.replace idx_of_header iv.header i) ivs;
  let node_map = Array.make g.nn (-1) in
  List.iteri
    (fun i iv -> List.iter (fun m -> node_map.(m) <- i) iv.members)
    ivs;
  let dn = List.length ivs in
  let succ_sets = Array.make dn [] in
  let pred_sets = Array.make dn [] in
  for v = 0 to g.nn - 1 do
    if node_map.(v) >= 0 then
      List.iter
        (fun s ->
          let a = node_map.(v) and b = node_map.(s) in
          if a <> b && not (List.mem b succ_sets.(a)) then begin
            succ_sets.(a) <- b :: succ_sets.(a);
            pred_sets.(b) <- a :: pred_sets.(b)
          end)
        g.gsucc.(v)
  done;
  ( { nn = dn; gsucc = succ_sets; gpred = pred_sets; entry = node_map.(g.entry) },
    node_map )

(** One discovered loop. *)
type loop = {
  id : int;  (** dense id, innermost-first discovery order *)
  level : int;  (** derived-sequence level at which it was found *)
  lheader : Core.node;  (** CFG header node *)
  body : bool array;  (** CFG nodes in the cyclic part, header included *)
  body_list : Core.node list;
  back_edges : (Core.node * bool) list;
      (** CFG edges [src, out-direction] returning to the header *)
}

(** [body_vars cfg l] is the sorted list of variables referenced by any
    node in the loop body (or its fork predicates); this is the token set a
    loop's control nodes manage under the bypass optimization. *)
let body_vars (cfg : Core.t) (l : loop) : string list =
  List.concat_map (Core.referenced_vars cfg) l.body_list
  |> List.sort_uniq compare

(** [loops cfg] discovers all loops of [cfg] via the derived sequence,
    innermost first.
    @raise Irreducible if the derived sequence stalls before one node. *)
let loops (cfg : Core.t) : loop list =
  let base = graph_of_cfg cfg in
  (* members_of.(gnode) = CFG nodes this (derived) node stands for *)
  let g = ref base in
  let members_of = ref (Array.init base.nn (fun i -> [ i ])) in
  let rep_of = ref (Array.init base.nn Fun.id) in
  let found = ref [] in
  let level = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let ivs = partition !g in
    (* Record cyclic intervals as loops. *)
    List.iter
      (fun iv ->
        let in_iv = Array.make !g.nn false in
        List.iter (fun m -> in_iv.(m) <- true) iv.members;
        let cyclic =
          List.exists
            (fun m -> List.mem iv.header !g.gsucc.(m))
            iv.members
        in
        if cyclic then begin
          let header_cfg = !rep_of.(iv.header) in
          (* CFG-level member set of the interval *)
          let cfg_members = Array.make (Core.num_nodes cfg) false in
          List.iter
            (fun m -> List.iter (fun c -> cfg_members.(c) <- true) !members_of.(m))
            iv.members;
          (* Cyclic part: CFG members that reach the header inside the
             member set (reverse DFS from the header along member preds). *)
          let body = Array.make (Core.num_nodes cfg) false in
          let rec rdfs v =
            if cfg_members.(v) && not body.(v) then begin
              body.(v) <- true;
              List.iter rdfs (Core.pred_nodes cfg v)
            end
          in
          rdfs header_cfg;
          let body_list =
            List.filter (fun v -> body.(v)) (Core.nodes cfg)
          in
          let back_edges =
            List.filter (fun (p, _) -> body.(p)) (Core.pred cfg header_cfg)
          in
          found :=
            {
              id = 0 (* assigned below *);
              level = !level;
              lheader = header_cfg;
              body;
              body_list;
              back_edges;
            }
            :: !found
        end)
      ivs;
    let g', node_map = derive !g ivs in
    (* Carry member/representative maps to the derived graph. *)
    let members' = Array.make g'.nn [] in
    let rep' = Array.make g'.nn (-1) in
    List.iteri
      (fun i iv ->
        rep'.(i) <- !rep_of.(iv.header);
        members'.(i) <-
          List.concat_map (fun m -> !members_of.(m)) iv.members)
      ivs;
    ignore node_map;
    if g'.nn = 1 then continue_ := false
    else if g'.nn = !g.nn then
      raise
        (Irreducible
           (Fmt.str "derived sequence stalled at %d nodes (level %d)" g'.nn
              !level))
    else begin
      g := g';
      members_of := members';
      rep_of := rep';
      incr level
    end
  done;
  (* Innermost-first order: discovery order is already inner levels first;
     within a level, smaller bodies first for determinism. *)
  let ls =
    List.rev !found
    |> List.stable_sort (fun a b ->
           match compare a.level b.level with
           | 0 ->
               compare
                 (List.length a.body_list)
                 (List.length b.body_list)
           | c -> c)
  in
  let ls = List.mapi (fun i l -> { l with id = i }) ls in
  (* Sanity: headers must be pairwise distinct (holds for reducible
     graphs; defensive check since Loopify relies on it). *)
  let headers = List.map (fun l -> l.lheader) ls in
  if List.length (List.sort_uniq compare headers) <> List.length headers then
    raise (Irreducible "two loops share a header");
  ls

(** [reducible cfg] is [true] iff the derived sequence of [cfg] converges
    to a single node. *)
let reducible (cfg : Core.t) : bool =
  match loops cfg with _ -> true | exception Irreducible _ -> false

(* Tarjan SCC over a {!graph}; returns components as node lists. *)
let sccs (g : graph) : int list list =
  let index = Array.make g.nn (-1) in
  let low = Array.make g.nn 0 in
  let on_stack = Array.make g.nn false in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      g.gsucc.(v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> assert false
      in
      out := pop [] :: !out
    end
  in
  for v = 0 to g.nn - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  !out

(** [irreducible_region cfg] -- when [cfg] is irreducible, the CFG nodes
    standing for a multi-node strongly connected component of the limit
    graph (the region whose cycles have several entries), together with
    its {e entry} nodes (members with a predecessor outside the region).
    [None] when [cfg] is reducible.  This is what {!Split} duplicates. *)
let irreducible_region (cfg : Core.t) :
    (Core.node list * Core.node list) option =
  let base = graph_of_cfg cfg in
  let g = ref base in
  let members_of = ref (Array.init base.nn (fun i -> [ i ])) in
  let rep_of = ref (Array.init base.nn Fun.id) in
  let result = ref None in
  let continue_ = ref true in
  while !continue_ do
    let ivs = partition !g in
    let g', _ = derive !g ivs in
    if g'.nn = 1 then continue_ := false
    else if g'.nn = !g.nn then begin
      (* stalled: every multi-node SCC of the limit graph is an
         irreducible region; report the smallest *)
      let multi =
        List.filter (fun c -> List.length c > 1) (sccs !g)
        |> List.sort (fun a b -> compare (List.length a) (List.length b))
      in
      (match multi with
      | [] ->
          (* cannot happen: a stalled graph has a multi-entry cycle *)
          result := None
      | comp :: _ ->
          let in_comp = Array.make !g.nn false in
          List.iter (fun v -> in_comp.(v) <- true) comp;
          let entries =
            List.filter
              (fun v -> List.exists (fun p -> not in_comp.(p)) !g.gpred.(v))
              comp
          in
          result :=
            Some
              ( List.map (fun v -> !rep_of.(v)) comp,
                List.map (fun v -> !rep_of.(v)) entries ));
      continue_ := false
    end
    else begin
      let members' = Array.make g'.nn [] in
      let rep' = Array.make g'.nn (-1) in
      List.iteri
        (fun i iv ->
          rep'.(i) <- !rep_of.(iv.header);
          members'.(i) <- List.concat_map (fun m -> !members_of.(m)) iv.members)
        ivs;
      g := g';
      members_of := members';
      rep_of := rep'
    end
  done;
  !result
