(** Interval analysis (Allen–Cocke) and loop discovery (paper,
    Section 3).

    An interval is a maximal single-entry subgraph whose every cyclic
    path passes through its header; collapsing first-order intervals and
    repeating yields the derived sequence, and the graph is {e reducible}
    iff the sequence converges to one node.  Each cyclic interval found
    along the way is a loop; the cyclic part of the interval is the loop
    body — the region the loop-entry/exit nodes of {!Loopify} fence. *)

exception Irreducible of string
(** The derived sequence stalled before reaching a single node.  The
    paper's recourse is code copying; see {!Split}. *)

(** A generic rooted directed graph over dense integer nodes (the
    interval machinery is applied to each derived graph in turn). *)
type graph = {
  nn : int;
  gsucc : int list array;
  gpred : int list array;
  entry : int;
}

val graph_of_cfg : Core.t -> graph

type interval = {
  header : int;
  members : int list;  (** in addition order; header first *)
}

(** [partition g] — the first-order interval partition (headers in
    discovery order); every node reachable from the entry is in exactly
    one interval. *)
val partition : graph -> interval list

(** [derive g ivs] collapses each interval to a node; returns the derived
    graph and the node map.  Intra-interval edges (including back edges)
    disappear. *)
val derive : graph -> interval list -> graph * int array

type loop = {
  id : int;  (** dense id, innermost-first discovery order *)
  level : int;  (** derived-sequence level at which it was found *)
  lheader : Core.node;  (** CFG header node *)
  body : bool array;  (** CFG nodes in the cyclic part, header included *)
  body_list : Core.node list;
  back_edges : (Core.node * bool) list;
      (** CFG edges (source, out-direction) returning to the header *)
}

(** [body_vars cfg l] — variables referenced by any body node; the token
    set the loop's control nodes manage under the Section 4 bypass. *)
val body_vars : Core.t -> loop -> string list

(** [loops cfg] — all loops via the derived sequence, innermost first.
    @raise Irreducible when the sequence stalls. *)
val loops : Core.t -> loop list

(** [reducible cfg] — does the derived sequence converge? *)
val reducible : Core.t -> bool

(** [sccs g] — Tarjan's strongly connected components of a {!graph}. *)
val sccs : graph -> int list list

(** [irreducible_region cfg] — when [cfg] is irreducible: the CFG nodes
    standing for a multi-node SCC of the limit graph, with its entry
    nodes (members with an outside predecessor); [None] when reducible.
    This is the region {!Split} duplicates. *)
val irreducible_region : Core.t -> (Core.node list * Core.node list) option
