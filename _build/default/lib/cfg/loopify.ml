(** Loop-control insertion (paper, Section 3).

    For every cyclic interval we introduce a {e loop entry} node and
    {e loop exit} nodes: all arcs leading to the header -- from outside the
    interval and back edges alike -- are redirected to the loop entry,
    which then leads to the header; a loop exit is placed on every edge
    [A -> B] where [A] is in the cyclic part of the interval and [B] is
    not.  The translation schemas later turn these nodes into the dataflow
    loop-control operators that re-tag tokens per iteration, which is what
    makes Schema 2 a meaningful dataflow computation on cyclic graphs
    (Figure 8's pile-up problem). *)

type loop_info = {
  id : int;
  header : Core.node;  (** header node in the transformed graph *)
  entry : Core.node;  (** the inserted [Loop_entry] node *)
  exits : Core.node list;  (** the inserted [Loop_exit] nodes *)
  body : Core.node list;
      (** cyclic part in the transformed graph, including [entry] and the
          header, excluding exit nodes *)
  vars : string list;  (** variables referenced by body nodes *)
  parent : int option;  (** immediately enclosing loop, if any *)
}

type t = {
  graph : Core.t;  (** the transformed CFG *)
  loops : loop_info array;  (** indexed by loop id, innermost-first *)
  in_body : bool array array;
      (** [in_body.(l).(n)] iff node [n] of the transformed graph is in
          the body of loop [l] *)
}

(** [loop_entry_of t n] is [Some l] iff node [n] is the entry of loop [l]. *)
let loop_entry_of (t : t) (n : Core.node) : int option =
  match Core.kind t.graph n with Core.Loop_entry l -> Some l | _ -> None

(** [transform cfg] inserts loop-control nodes for every loop of [cfg].
    @raise Intervals.Irreducible on irreducible graphs. *)
let transform (cfg : Core.t) : t =
  let ls = Intervals.loops cfg in
  let n0 = Core.num_nodes cfg in
  let nloops = List.length ls in
  (* Growable graph state. *)
  let next = ref n0 in
  let kinds : (int, Core.kind) Hashtbl.t = Hashtbl.create 16 in
  for i = 0 to n0 - 1 do
    Hashtbl.replace kinds i (Core.kind cfg i)
  done;
  let succ : (int, (bool * int) list) Hashtbl.t = Hashtbl.create 16 in
  let pred : (int, (int * bool) list) Hashtbl.t = Hashtbl.create 16 in
  for i = 0 to n0 - 1 do
    Hashtbl.replace succ i
      (List.map (fun e -> (e.Core.dir, e.Core.dst)) (Core.succ cfg i));
    Hashtbl.replace pred i (Core.pred cfg i)
  done;
  let get tbl k = try Hashtbl.find tbl k with Not_found -> [] in
  let fresh kind =
    let id = !next in
    incr next;
    Hashtbl.replace kinds id kind;
    Hashtbl.replace succ id [];
    Hashtbl.replace pred id [];
    id
  in
  let add_edge s d t_ =
    Hashtbl.replace succ s (get succ s @ [ (d, t_) ]);
    Hashtbl.replace pred t_ (get pred t_ @ [ (s, d) ])
  in
  let redirect_edge s d old_t new_t =
    Hashtbl.replace succ s
      (List.map
         (fun (d', t') -> if d' = d && t' = old_t then (d, new_t) else (d', t'))
         (get succ s));
    (* remove one matching pred entry at old_t *)
    let removed = ref false in
    Hashtbl.replace pred old_t
      (List.filter
         (fun (s', d') ->
           if (not !removed) && s' = s && d' = d then begin
             removed := true;
             false
           end
           else true)
         (get pred old_t));
    Hashtbl.replace pred new_t (get pred new_t @ [ (s, d) ])
  in
  (* Body membership per loop, growable via hashtables keyed by node. *)
  let body_tbl = Array.init nloops (fun _ -> Hashtbl.create 16) in
  List.iter
    (fun (l : Intervals.loop) ->
      List.iter (fun n -> Hashtbl.replace body_tbl.(l.Intervals.id) n ()) l.Intervals.body_list)
    ls;
  let in_body l n = Hashtbl.mem body_tbl.(l) n in
  (* Containment on original bodies: [encloses a b] iff body a strictly
     contains body b (checked via b's header plus size). *)
  let orig_size = Array.make nloops 0 in
  List.iter
    (fun (l : Intervals.loop) ->
      orig_size.(l.Intervals.id) <- List.length l.Intervals.body_list)
    ls;
  let encloses a (b : Intervals.loop) =
    a <> b.Intervals.id
    && in_body a b.Intervals.lheader
    && orig_size.(a) >= orig_size.(b.Intervals.id)
  in
  let entries = Array.make nloops (-1) in
  let exit_lists = Array.make nloops [] in
  (* Innermost first (Intervals.loops guarantees the order). *)
  List.iter
    (fun (l : Intervals.loop) ->
      let lid = l.Intervals.id in
      let h = l.Intervals.lheader in
      (* 1. Loop entry: all edges into the header now go through it. *)
      let e = fresh (Core.Loop_entry lid) in
      List.iter
        (fun (p, d) -> redirect_edge p d h e)
        (get pred h);
      add_edge e true h;
      entries.(lid) <- e;
      (* The entry is part of this loop's cyclic region and of every
         enclosing loop's. *)
      Hashtbl.replace body_tbl.(lid) e ();
      List.iter
        (fun (o : Intervals.loop) ->
          if encloses o.Intervals.id l then
            Hashtbl.replace body_tbl.(o.Intervals.id) e ())
        ls;
      (* 2. Loop exits on every edge leaving the cyclic region. *)
      let body_nodes = Hashtbl.fold (fun n () acc -> n :: acc) body_tbl.(lid) [] in
      List.iter
        (fun a ->
          List.iter
            (fun (d, b) ->
              if not (in_body lid b) then begin
                let x = fresh (Core.Loop_exit lid) in
                redirect_edge a d b x;
                add_edge x true b;
                exit_lists.(lid) <- x :: exit_lists.(lid);
                (* The exit node lives inside every strictly enclosing
                   loop (its source does), but not inside this loop. *)
                List.iter
                  (fun (o : Intervals.loop) ->
                    if encloses o.Intervals.id l then
                      Hashtbl.replace body_tbl.(o.Intervals.id) x ())
                  ls
              end)
            (get succ a))
        (List.sort compare body_nodes))
    ls;
  (* Rebuild an immutable CFG. *)
  let n = !next in
  let kind_arr = Array.init n (fun i -> Hashtbl.find kinds i) in
  let edges = ref [] in
  for i = n - 1 downto 0 do
    List.iter (fun (d, t_) -> edges := (i, d, t_) :: !edges) (get succ i)
  done;
  let graph = Core.build ~kinds:kind_arr ~edges:!edges in
  let in_body_arr =
    Array.init nloops (fun l ->
        Array.init n (fun i -> Hashtbl.mem body_tbl.(l) i))
  in
  let loop_arr =
    Array.of_list
      (List.map
         (fun (l : Intervals.loop) ->
           let lid = l.Intervals.id in
           let body =
             List.filter (fun i -> in_body_arr.(lid).(i)) (List.init n Fun.id)
           in
           let vars =
             List.concat_map (Core.referenced_vars graph) body
             |> List.sort_uniq compare
           in
           let parent =
             (* innermost strictly-enclosing loop *)
             List.filter (fun (o : Intervals.loop) -> encloses o.Intervals.id l) ls
             |> List.sort (fun a b ->
                    compare orig_size.(a.Intervals.id) orig_size.(b.Intervals.id))
             |> function
             | [] -> None
             | o :: _ -> Some o.Intervals.id
           in
           {
             id = lid;
             header = l.Intervals.lheader;
             entry = entries.(lid);
             exits = List.rev exit_lists.(lid);
             body;
             vars;
             parent;
           })
         ls)
  in
  { graph; loops = loop_arr; in_body = in_body_arr }

(** [loop_of_entry t n]/[loop_of_exit t n] recover loop ids from node
    kinds in the transformed graph. *)
let loop_of_exit (t : t) (n : Core.node) : int option =
  match Core.kind t.graph n with Core.Loop_exit l -> Some l | _ -> None

(** [is_back_edge_source t l n] holds iff node [n] is inside loop [l]'s
    body -- i.e. an edge [n -> entry l] is a back edge rather than an
    initial entry. *)
let is_back_edge_source (t : t) (l : int) (n : Core.node) : bool =
  t.in_body.(l).(n)
