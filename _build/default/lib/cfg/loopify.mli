(** Loop-control insertion (paper, Section 3).

    For every cyclic interval: all arcs leading to the header — outer
    entries and back edges alike — are redirected through a fresh
    {e loop entry} node, and a {e loop exit} node is placed on every
    edge from the cyclic part to the outside.  The translation schemas
    turn these nodes into the dataflow loop-control operators that
    re-tag tokens per iteration (the fix for Figure 8's pile-up). *)

type loop_info = {
  id : int;
  header : Core.node;  (** header in the transformed graph *)
  entry : Core.node;  (** the inserted [Loop_entry] node *)
  exits : Core.node list;  (** the inserted [Loop_exit] nodes *)
  body : Core.node list;
      (** cyclic part in the transformed graph, including [entry] and
          the header, excluding exit nodes *)
  vars : string list;  (** variables referenced by body nodes *)
  parent : int option;  (** immediately enclosing loop, if any *)
}

type t = {
  graph : Core.t;  (** the transformed CFG *)
  loops : loop_info array;  (** indexed by loop id, innermost-first *)
  in_body : bool array array;
      (** [in_body.(l).(n)] iff node [n] of the transformed graph is in
          the body of loop [l] *)
}

(** [loop_entry_of t n] is [Some l] iff node [n] is the entry of loop
    [l]; [loop_of_exit] likewise for exits. *)
val loop_entry_of : t -> Core.node -> int option

val loop_of_exit : t -> Core.node -> int option

(** [transform cfg] inserts loop-control nodes for every loop.
    @raise Intervals.Irreducible on irreducible graphs. *)
val transform : Core.t -> t

(** [is_back_edge_source t l n] — is an edge from [n] into loop [l]'s
    entry a back edge (as opposed to an initial entry)? *)
val is_back_edge_source : t -> int -> Core.node -> bool
