(** Node splitting (code copying) for irreducible control flow.

    The paper (Section 3, footnote 5): "if we allow code copying, then
    any control-flow graph can be decomposed into such nested intervals".
    This module performs the copying: while the graph is irreducible, it
    locates an irreducible region (a multi-entry cycle of the limit
    graph), picks one of its entry nodes, and splits that node --
    duplicating it so that each predecessor reaches a private copy.
    Copies carry the same statement and the same out-edges, so the
    transformation trivially preserves the sequential semantics; it can
    enlarge the graph (node splitting is worst-case exponential), so a
    split budget bounds the work.

    After splitting, interval analysis succeeds and Schemas 2/3 apply to
    the previously irreducible program. *)

exception Split_budget_exceeded of string

(* Split node [v]: predecessor 1 keeps [v]; every further predecessor
   gets a fresh copy with the same kind and the same out-edges. *)
let split_node (g : Core.t) (v : Core.node) : Core.t =
  let preds = Core.pred g v in
  assert (List.length preds >= 2);
  let n = Core.num_nodes g in
  let extra = List.length preds - 1 in
  let kinds =
    Array.init (n + extra) (fun i ->
        if i < n then Core.kind g i else Core.kind g v)
  in
  (* copy index for predecessor number j (j = 0 keeps v) *)
  let copy_of j = if j = 0 then v else n + j - 1 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    if u = v then
      (* v's out-edges are replicated on every copy *)
      List.iter
        (fun e ->
          for j = 0 to extra do
            edges := (copy_of j, e.Core.dir, e.Core.dst) :: !edges
          done)
        (Core.succ g u)
    else
      List.iter
        (fun e ->
          if e.Core.dst = v then begin
            (* this edge is predecessor number j of v *)
            let j =
              let rec find k = function
                | (p, d) :: rest ->
                    if p = u && d = e.Core.dir then k else find (k + 1) rest
                | [] -> assert false
              in
              find 0 preds
            in
            (* NOTE: if u has two parallel edges to v with distinct
               directions, each matches its own predecessor entry. *)
            edges := (u, e.Core.dir, copy_of j) :: !edges
          end
          else edges := (u, e.Core.dir, e.Core.dst) :: !edges)
        (Core.succ g u)
  done;
  Core.build ~kinds ~edges:(List.rev !edges)

(** [make_reducible ?max_splits g] returns a semantically equivalent,
    reducible CFG, splitting entry nodes of irreducible regions until the
    derived sequence converges.  Returns [g] unchanged when it is already
    reducible.
    @raise Split_budget_exceeded after [max_splits] splits. *)
let make_reducible ?(max_splits = 64) (g : Core.t) : Core.t =
  let rec go g splits =
    match Intervals.irreducible_region g with
    | None -> g
    | Some (_region, entries) ->
        if splits >= max_splits then
          raise
            (Split_budget_exceeded
               (Fmt.str "still irreducible after %d node splits" splits));
        (* split the entry with the fewest predecessors (least copying) *)
        let v =
          match
            List.sort
              (fun a b ->
                compare
                  (List.length (Core.pred g a))
                  (List.length (Core.pred g b)))
              (List.filter (fun e -> List.length (Core.pred g e) >= 2) entries)
          with
          | v :: _ -> v
          | [] ->
              (* entries with a single predecessor cannot be the problem;
                 split any multi-pred member of the region instead *)
              (match
                 List.filter
                   (fun m -> List.length (Core.pred g m) >= 2)
                   _region
               with
              | v :: _ -> v
              | [] -> raise (Split_budget_exceeded "no splittable node"))
        in
        go (split_node g v) (splits + 1)
  in
  go g 0

(** [split_count before after] -- how many nodes the copying added. *)
let split_count (before : Core.t) (after : Core.t) : int =
  Core.num_nodes after - Core.num_nodes before
