(** Node splitting (code copying) for irreducible control flow — the
    paper's footnote-5 recourse: "if we allow code copying, then any
    control-flow graph can be decomposed into such nested intervals".

    While the graph is irreducible, an entry node of an irreducible
    region is duplicated so that each predecessor reaches a private
    copy; copies carry the same statement and out-edges, so sequential
    semantics is preserved trivially.  Worst case exponential, hence a
    split budget. *)

exception Split_budget_exceeded of string

(** [make_reducible ?max_splits g] — a semantically equivalent reducible
    CFG; [g] itself when already reducible.
    @raise Split_budget_exceeded after [max_splits] splits. *)
val make_reducible : ?max_splits:int -> Core.t -> Core.t

(** [split_count before after] — how many nodes the copying added. *)
val split_count : Core.t -> Core.t -> int
