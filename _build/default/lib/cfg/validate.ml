(** Structural validation of control-flow graphs.

    Checks the well-formedness conditions of Section 2.1: arities per node
    kind, the start/end conventions, and that every node lies on a path
    from start to end.  Run by tests after every CFG transformation. *)

exception Invalid of string

let fail fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

(** [check g] validates [g].
    @raise Invalid with a description of the first violation. *)
let check (g : Core.t) : unit =
  let n = Core.num_nodes g in
  (* start/end uniqueness is enforced by Core.build; check conventions. *)
  if Core.kind g g.Core.start <> Core.Start then fail "start node mislabelled";
  if Core.kind g g.Core.stop <> Core.End then fail "end node mislabelled";
  if Core.pred g g.Core.start <> [] then fail "start has predecessors";
  if Core.succ g g.Core.stop <> [] then fail "end has successors";
  (* Start must be a fork (the start->end convention edge). *)
  (match Core.succ g g.Core.start with
  | [ a; b ] ->
      if a.Core.dir = b.Core.dir then fail "start out-directions not distinct";
      if
        not
          (List.exists
             (fun e -> e.Core.dst = g.Core.stop && e.Core.dir = false)
             (Core.succ g g.Core.start))
      then fail "missing start->end convention edge"
  | es -> fail "start has %d out-edges, expected 2" (List.length es));
  (* Per-kind arity. *)
  for v = 0 to n - 1 do
    let out = Core.succ g v in
    (match Core.kind g v with
    | Core.Start | Core.End -> ()
    | Core.Assign _ | Core.Join | Core.Loop_entry _ | Core.Loop_exit _ -> (
        match out with
        | [ e ] ->
            if not e.Core.dir then fail "node %d: single out-edge must be true" v
        | _ -> fail "node %d: expected one out-edge, got %d" v (List.length out))
    | Core.Fork _ -> (
        match out with
        | [ a; b ] ->
            if a.Core.dir = b.Core.dir then
              fail "fork %d: out-directions not distinct" v
        | _ -> fail "fork %d: expected two out-edges, got %d" v (List.length out)));
    if v <> g.Core.start && Core.pred g v = [] then
      fail "node %d unreachable (no predecessors)" v
  done;
  (* pred/succ consistency *)
  for v = 0 to n - 1 do
    List.iter
      (fun e ->
        if not (List.mem (v, e.Core.dir) (Core.pred g e.Core.dst)) then
          fail "edge %d->%d missing from pred list" v e.Core.dst)
      (Core.succ g v);
    List.iter
      (fun (p, d) ->
        if
          not
            (List.exists
               (fun e -> e.Core.dst = v && e.Core.dir = d)
               (Core.succ g p))
        then fail "pred entry %d->%d missing from succ list" p v)
      (Core.pred g v)
  done;
  (* Reachability: forward from start, backward from end. *)
  let seen = Array.make n false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter dfs (Core.succ_nodes g v)
    end
  in
  dfs g.Core.start;
  Array.iteri (fun i s -> if not s then fail "node %d unreachable from start" i) seen;
  let seen = Array.make n false in
  let rec rdfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter rdfs (Core.pred_nodes g v)
    end
  in
  rdfs g.Core.stop;
  Array.iteri (fun i s -> if not s then fail "node %d cannot reach end" i) seen
