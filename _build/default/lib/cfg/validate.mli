(** Structural validation of control-flow graphs: arities per node kind,
    the start/end conventions, predecessor/successor consistency, and
    start-to-end path coverage (paper, Section 2.1).  Run by tests after
    every CFG transformation. *)

exception Invalid of string

(** [check g] validates [g].
    @raise Invalid with a description of the first violation. *)
val check : Core.t -> unit
