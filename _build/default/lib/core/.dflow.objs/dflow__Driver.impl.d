lib/core/driver.ml: Analysis Cfg Dfg Engine Imp List Optimized Statement Token_map Transforms
