lib/core/driver.mli: Analysis Cfg Dfg Engine Imp
