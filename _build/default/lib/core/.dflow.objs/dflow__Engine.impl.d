lib/core/engine.ml: Analysis Array Cfg Dfg Fmt Imp List Statement Token_map
