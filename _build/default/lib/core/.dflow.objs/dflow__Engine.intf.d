lib/core/engine.mli: Analysis Cfg Dfg Statement Token_map
