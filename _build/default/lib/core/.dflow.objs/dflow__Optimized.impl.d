lib/core/optimized.ml: Analysis Array Cfg Dfg Engine Fmt Hashtbl Imp List Queue Statement Token_map
