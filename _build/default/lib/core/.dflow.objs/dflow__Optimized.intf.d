lib/core/optimized.mli: Analysis Cfg Dfg Engine Statement
