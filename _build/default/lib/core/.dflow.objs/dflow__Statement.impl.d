lib/core/statement.ml: Array Dfg Fmt Imp List Token_map
