lib/core/statement.mli: Dfg Imp Token_map
