lib/core/token_map.ml: Analysis Array Fmt Fun Hashtbl List String
