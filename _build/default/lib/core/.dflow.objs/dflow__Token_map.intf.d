lib/core/token_map.mli: Analysis
