lib/core/transforms.ml: Analysis Array Cfg Imp List
