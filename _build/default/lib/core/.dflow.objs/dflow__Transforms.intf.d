lib/core/transforms.mli: Cfg Imp
