(** The track-everything translation engine: Schemas 1, 2 and 3
    (Figures 3–8 and 12–13), plus the Section 6 transformation hooks.

    Under these schemas every access token follows the full control
    path: forks switch all tokens, joins merge all tokens, loop entries
    and exits manage all tokens.  The schemas differ only in the token
    universe ({!Token_map}).  Cyclic graphs must be loop-controlled
    first ({!Cfg.Loopify}); translating a cyclic graph without loop
    information yields the Figure 8 pathology, which the machine then
    detects as a token collision. *)

(** How loop-control CFG nodes become dataflow operators. *)
type loop_control =
  | Barrier
      (** one arity-k gateway per loop: the paper's black-box contract
          (the complete token set enters and leaves together) *)
  | Pipelined
      (** k arity-1 gateways: each token advances to the next iteration
          as soon as its own operations and the predicate allow *)

exception Unsupported of string
(** Raised when the graph contains loop-control CFG nodes but no
    {!Cfg.Loopify.t} was supplied, or an async array lacks a private
    token. *)

(** [translate ?loop_control ?mode ?value_tokens ?async_arrays ~tokens
    ?loops g] translates CFG [g] (which must be [loops.graph] when
    [loops] is given).

    - [mode] is threaded to the statement compiler;
    - [value_tokens] lists (token, variable) pairs whose token carries
      the variable's value: a [Const 0] prologue (IMP zero-initialises)
      and a write-back store epilogue keep the final memory observable;
    - [async_arrays] lists (loop, array) pairs proven store-independent
      (Figure 14): the store detaches from the array's token and a fresh
      completion token per pair circulates with the loop, synchronised
      with each iteration's store; the array's token leaves the loop
      exits only once all stores completed. *)
val translate :
  ?loop_control:loop_control ->
  ?mode:Statement.mode ->
  ?value_tokens:(int * string) list ->
  ?async_arrays:(int * string) list ->
  tokens:Token_map.t ->
  ?loops:Cfg.Loopify.t ->
  Cfg.Core.t ->
  Dfg.Graph.t

(** [schema1 g] — Figure 3: one access token sequencing everything;
    works on the plain (non-loopified) CFG, reducible or not. *)
val schema1 : ?mode:Statement.mode -> Cfg.Core.t -> Dfg.Graph.t

(** [schema2 lp ~vars] — Figure 6 over a loopified CFG, one token per
    variable.  Assumes no aliasing (Section 3); use {!schema3}
    otherwise. *)
val schema2 :
  ?loop_control:loop_control ->
  ?mode:Statement.mode ->
  ?value_tokens:(int * string) list ->
  ?async_arrays:(int * string) list ->
  Cfg.Loopify.t ->
  vars:string list ->
  Dfg.Graph.t

(** [schema3 lp ~alias ~cover] — Figure 12: one token per cover element;
    operations collect their access sets through synch operators. *)
val schema3 :
  ?loop_control:loop_control ->
  ?mode:Statement.mode ->
  Cfg.Loopify.t ->
  alias:Analysis.Alias.t ->
  cover:Analysis.Cover.t ->
  Dfg.Graph.t
