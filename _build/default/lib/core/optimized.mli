(** The optimized direct construction (paper, Section 4.2): a dataflow
    graph with no redundant switches, built from switch placement
    (Figure 10) and source vectors (Figure 11).

    Compared with {!Engine}: a fork switches [access_x] only when some
    node referencing [x] lies between the fork and its immediate
    postdominator (Theorem 1); joins merge a token only when its source
    vector has several elements; tokens bypass loops and conditionals
    that do not need them. *)

type source = int * bool
(** CFG-level token source: (node, out-direction). *)

(** [loop_var_sets lp ~vars] — the per-loop managed-variable least
    fixpoint: body references (with nested loop entries/exits counted at
    their managed sets) closed under "switched at an in-body fork".
    Returns the sets and the switch placement computed against them.
    See DESIGN.md, implementation notes. *)
val loop_var_sets :
  Cfg.Loopify.t ->
  vars:string list ->
  string list array * Analysis.Switch_place.t

(** [forward_topo lp] — topological order of the loopified CFG ignoring
    back edges (edges from a loop body into its entry); the order
    Figure 11's algorithm processes nodes in. *)
val forward_topo : Cfg.Loopify.t -> int list

(** [translate ?loop_control ?mode ?value_vars ?merge_report lp ~vars]
    builds the optimized graph with one access token per variable.

    [value_vars] enables Section 6.1 value passing for the listed
    (unaliased scalar) variables, with prologue/epilogue as in
    {!Engine.translate}.  [merge_report], when supplied, accumulates the
    (join node, variable) pairs where a token merge was materialised —
    used by the SSA correspondence tests (φ ⟹ merge). *)
val translate :
  ?loop_control:Engine.loop_control ->
  ?mode:Statement.mode ->
  ?value_vars:string list ->
  ?merge_report:(int * string) list ref ->
  Cfg.Loopify.t ->
  vars:string list ->
  Dfg.Graph.t
