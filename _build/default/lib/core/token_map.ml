(** Token universes: what the circulating access tokens stand for.

    The three schemas differ first of all in this choice (paper,
    Sections 2.3, 3, 5):

    - Schema 1: a single token -- the dataflow program counter;
    - Schema 2: one token per variable name;
    - Schema 3: one token per {e cover element} of the alias structure.

    A memory operation on variable [x] must collect the tokens of every
    element intersecting the alias class [\[x\]] -- the access set
    [C\[x\]].  For Schema 2 that set is the singleton [{x}]; for Schema 1
    it is always the unique token. *)

type t = {
  names : string array;  (** token names, for labels and debugging *)
  access_set : string -> int list;
      (** token indices a memory operation on the given variable collects;
          never empty *)
}

let arity (t : t) : int = Array.length t.names
let name (t : t) (i : int) : string = t.names.(i)

(** Indices of all tokens. *)
let all (t : t) : int list = List.init (arity t) Fun.id

(** Schema 1: the single access token. *)
let single : t = { names = [| "access" |]; access_set = (fun _ -> [ 0 ]) }

(** Schema 2: one access token per variable (no aliasing assumed; the
    access set of [x] is [{x}]). *)
let per_variable (vars : string list) : t =
  if vars = [] then single  (* degenerate variable-free program *)
  else
  let names = Array.of_list (List.sort_uniq compare vars) in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i x -> Hashtbl.replace index x i) names;
  {
    names = Array.map (fun x -> "access_" ^ x) names;
    access_set =
      (fun x ->
        match Hashtbl.find_opt index x with
        | Some i -> [ i ]
        | None -> invalid_arg ("Token_map.per_variable: unknown variable " ^ x));
  }

(** Schema 3: one access token per element of cover [c] of [alias]; the
    access set of [x] is [C\[x\]] (Definition 7 and Figure 12). *)
let of_cover (alias : Analysis.Alias.t) (c : Analysis.Cover.t) : t =
  Analysis.Cover.validate alias c;
  if c = [] then single  (* degenerate variable-free program *)
  else
  let elements = Array.of_list c in
  let names =
    Array.map
      (fun e -> Fmt.str "access_{%s}" (String.concat "," e))
      elements
  in
  let cache = Hashtbl.create 16 in
  {
    names;
    access_set =
      (fun x ->
        match Hashtbl.find_opt cache x with
        | Some s -> s
        | None ->
            let s = Analysis.Cover.access_set alias c x in
            assert (s <> []);
            Hashtbl.replace cache x s;
            s);
  }

(** [vars_to_tokens t vars] is the union of the access sets of [vars],
    sorted: the tokens a region referencing [vars] interacts with. *)
let vars_to_tokens (t : t) (vars : string list) : int list =
  List.concat_map t.access_set vars |> List.sort_uniq compare
