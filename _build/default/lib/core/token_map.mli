(** Token universes: what the circulating access tokens stand for.

    The three schemas differ first of all in this choice (paper,
    Sections 2.3, 3, 5): Schema 1 uses a single token (the dataflow
    program counter); Schema 2 one token per variable name; Schema 3 one
    token per cover element of the alias structure.  A memory operation
    on [x] must collect the tokens of every element intersecting the
    alias class [\[x\]] — the access set [C\[x\]]. *)

type t = {
  names : string array;  (** token names, for labels and debugging *)
  access_set : string -> int list;
      (** token indices a memory operation on the given variable
          collects; never empty *)
}

val arity : t -> int
val name : t -> int -> string

(** Indices of all tokens. *)
val all : t -> int list

(** Schema 1: the single access token. *)
val single : t

(** Schema 2: one access token per variable (no aliasing assumed; the
    access set of [x] is [{x}]).  An empty variable list degenerates to
    {!single}. *)
val per_variable : string list -> t

(** Schema 3: one access token per element of the cover; the access set
    of [x] is [C\[x\]] (Definition 7 and Figure 12).
    @raise Analysis.Cover.Invalid_cover on a non-covering collection. *)
val of_cover : Analysis.Alias.t -> Analysis.Cover.t -> t

(** [vars_to_tokens t vars] is the union of the access sets of [vars],
    sorted: the tokens a region referencing [vars] interacts with. *)
val vars_to_tokens : t -> string list -> int list
