(** Eligibility analyses for the Section 6 parallelizing transformations.

    Each function answers: where may a transformation be applied without
    changing observable behaviour?  The transformations themselves live in
    {!Statement}/{!Engine}; the driver consults these analyses to turn
    user-requested transforms into concrete parameter lists. *)

(** [value_eligible p] -- variables whose memory cells can be eliminated
    entirely, their values riding on the access tokens (Section 6.1):
    scalars whose alias class is trivial ("for variables that are not
    aliased, this is very easy"). *)
let value_eligible (p : Imp.Ast.program) : string list =
  let alias = Analysis.Alias.of_program p in
  Imp.Flat.vars (Imp.Flat.flatten p)
  |> List.filter (fun x ->
         (not (Imp.Ast.is_array p x))
         && Analysis.Alias.class_of alias x = [ x ])

(* The single body node referencing [x], if it is an independent array
   store with no self-reference. *)
let sole_independent_store (g : Cfg.Core.t) (alias : Analysis.Alias.t)
    (body : Cfg.Core.node list) (x : string) : Cfg.Core.node option =
  let referencing =
    List.filter (fun n -> List.mem x (Cfg.Core.referenced_vars g n)) body
  in
  match referencing with
  | [ n ] -> (
      match Cfg.Core.kind g n with
      | Cfg.Core.Assign (Imp.Ast.Lindex (a, idx), rhs)
        when a = x
             && (not (List.mem x (Imp.Ast.expr_vars idx)))
             && not (List.mem x (Imp.Ast.expr_vars rhs)) -> (
          match Analysis.Subscript.classify_store g alias ~body n with
          | Analysis.Subscript.Independent _ -> Some n
          | Analysis.Subscript.Serial -> None)
      | _ -> None)
  | _ -> None

(** [async_candidates p lp] -- (loop, array) pairs where Figure 14's
    store parallelization applies: inside the loop the array is touched
    by exactly one statement, an induction-subscripted store proven
    independent across iterations, and the array is unaliased.  Only the
    innermost such loop is reported per store. *)
let async_candidates (p : Imp.Ast.program) (lp : Cfg.Loopify.t) :
    (int * string) list =
  let g = lp.Cfg.Loopify.graph in
  let alias = Analysis.Alias.of_program p in
  let arrays =
    List.map fst p.Imp.Ast.arrays
    |> List.filter (fun x -> Analysis.Alias.class_of alias x = [ x ])
  in
  let loops = Array.to_list lp.Cfg.Loopify.loops in
  List.concat_map
    (fun (l : Cfg.Loopify.loop_info) ->
      List.filter_map
        (fun x ->
          match
            sole_independent_store g alias l.Cfg.Loopify.body x
          with
          | Some n ->
              (* innermost: no other loop nested in l also contains n *)
              let innermost =
                List.for_all
                  (fun (l' : Cfg.Loopify.loop_info) ->
                    l'.Cfg.Loopify.id = l.Cfg.Loopify.id
                    || (not lp.Cfg.Loopify.in_body.(l'.Cfg.Loopify.id).(n))
                    || not
                         (List.for_all
                            (fun m -> lp.Cfg.Loopify.in_body.(l.Cfg.Loopify.id).(m))
                            l'.Cfg.Loopify.body))
                  loops
              in
              if innermost then Some (l.Cfg.Loopify.id, x) else None
          | None -> None)
        arrays)
    loops

(** [istructure_candidates p lp] -- arrays that are provably write-once
    over the whole execution and can live in I-structure memory
    (Section 6.3): unaliased, every store an independent
    induction-subscripted store inside a {e top-level} loop (a nested
    loop would restart the induction and rewrite cells).

    Caveat, documented in DESIGN.md: I-structure reads of never-written
    cells defer forever.  IMP's zero-initialised semantics makes such
    reads legal, so this transformation is opt-in and should be applied
    only when every read cell is known to be written (e.g. the
    initialise-then-reduce kernels of the evaluation). *)
let istructure_candidates (p : Imp.Ast.program) (lp : Cfg.Loopify.t) :
    string list =
  let g = lp.Cfg.Loopify.graph in
  let alias = Analysis.Alias.of_program p in
  let loops = Array.to_list lp.Cfg.Loopify.loops in
  let arrays =
    List.map fst p.Imp.Ast.arrays
    |> List.filter (fun x -> Analysis.Alias.class_of alias x = [ x ])
  in
  let store_nodes x =
    List.filter
      (fun n ->
        match Cfg.Core.kind g n with
        | Cfg.Core.Assign (Imp.Ast.Lindex (a, _), _) -> a = x
        | _ -> false)
      (Cfg.Core.nodes g)
  in
  List.filter
    (fun x ->
      let stores = store_nodes x in
      stores <> []
      && List.for_all
           (fun n ->
             (* the innermost loop containing the store must be top-level
                and prove independence *)
             let containing =
               List.filter
                 (fun (l : Cfg.Loopify.loop_info) ->
                   lp.Cfg.Loopify.in_body.(l.Cfg.Loopify.id).(n))
                 loops
             in
             match
               List.sort
                 (fun a b ->
                   compare
                     (List.length a.Cfg.Loopify.body)
                     (List.length b.Cfg.Loopify.body))
                 containing
             with
             | [] -> false (* store outside any loop: executed once, but
                              conservatively reject to keep the analysis
                              simple and safe for re-executed paths *)
             | innermost :: _ ->
                 innermost.Cfg.Loopify.parent = None
                 && List.length containing = 1
                 &&
                 (match
                    Analysis.Subscript.classify_store g alias
                      ~body:innermost.Cfg.Loopify.body n
                  with
                 | Analysis.Subscript.Independent _ -> true
                 | Analysis.Subscript.Serial -> false))
           stores)
    arrays
