(** Eligibility analyses for the Section 6 parallelizing transformations:
    where may each transformation be applied without changing observable
    behaviour?  The driver consults these to turn requested transforms
    into concrete parameter lists. *)

(** [value_eligible p] — variables whose memory cells can be eliminated
    entirely, their values riding on the access tokens (Section 6.1):
    scalars whose alias class is trivial. *)
val value_eligible : Imp.Ast.program -> string list

(** [async_candidates p lp] — (loop, array) pairs where Figure 14's
    store parallelization applies: inside the loop the array is touched
    by exactly one statement, an induction-subscripted store proven
    independent across iterations, and the array is unaliased.  Only the
    innermost such loop is reported per store. *)
val async_candidates :
  Imp.Ast.program -> Cfg.Loopify.t -> (int * string) list

(** [istructure_candidates p lp] — arrays provably write-once over the
    whole execution (unaliased; every store an independent
    induction-subscripted store inside a top-level loop), eligible for
    I-structure memory.  Opt-in caveat: reads of never-written cells
    defer forever (see DESIGN.md). *)
val istructure_candidates : Imp.Ast.program -> Cfg.Loopify.t -> string list
