lib/dfg/check.ml: Array Fmt Graph List Node
