lib/dfg/check.mli: Graph
