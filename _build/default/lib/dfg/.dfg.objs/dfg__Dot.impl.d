lib/dfg/dot.ml: Array Fmt Fun Graph Node String
