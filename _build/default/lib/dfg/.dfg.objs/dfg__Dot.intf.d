lib/dfg/dot.mli: Format Graph
