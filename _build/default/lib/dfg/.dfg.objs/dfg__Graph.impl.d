lib/dfg/graph.ml: Array Fmt List Node
