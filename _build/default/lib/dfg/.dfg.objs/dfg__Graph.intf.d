lib/dfg/graph.mli: Node
