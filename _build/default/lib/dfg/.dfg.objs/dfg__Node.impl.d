lib/dfg/node.ml: Fmt Imp
