lib/dfg/opt.ml: Array Fmt Fun Graph Hashtbl Imp List Node String
