lib/dfg/opt.mli: Graph
