lib/dfg/simplify.ml: Array Fun Graph List Node
