lib/dfg/simplify.mli: Graph
