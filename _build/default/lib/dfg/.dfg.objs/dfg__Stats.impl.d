lib/dfg/stats.ml: Array Fmt Graph Node
