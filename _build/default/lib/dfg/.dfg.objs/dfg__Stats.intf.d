lib/dfg/stats.mli: Format Graph
