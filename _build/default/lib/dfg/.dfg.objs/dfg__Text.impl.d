lib/dfg/text.ml: Array Buffer Fmt Fun Graph Imp List Node String
