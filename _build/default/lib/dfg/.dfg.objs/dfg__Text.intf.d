lib/dfg/text.mli: Graph Node
