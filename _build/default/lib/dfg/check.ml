(** Deeper well-formedness checks on dataflow graphs, beyond the arity
    checks {!Graph.Builder.finish} already performs.  Run by tests on the
    output of every translation schema. *)

exception Invalid of string

let fail fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

(** [check g] validates:
    - every output port of every node feeds at least one arc, except
      [Switch] outputs (an unused branch direction is legal: tokens sent
      there would be dropped -- translations never do this, but a switch
      with one dead output is structurally fine) and [Load] value outputs
      (a load performed only for its sequencing effect);
    - no node other than [Start] is sourceless and no node other than
      [End] is sinkless;
    - [Start] reaches every node along arcs (no orphan islands);
    - dummy arcs form the access-token subgraph: every memory operation's
      access input is fed by a dummy arc. *)
let check (g : Graph.t) : unit =
  let nn = Graph.num_nodes g in
  for i = 0 to nn - 1 do
    let n = Graph.node g i in
    let out_ar = Node.out_arity n.Node.kind in
    for p = 0 to out_ar - 1 do
      if Graph.outgoing g i p = [] then begin
        match n.Node.kind with
        | Node.Switch -> ()
        | Node.Load _ when p = 0 -> ()
        (* I-structure operations are detached from token ordering:
           their completion outputs may be deliberately dropped *)
        | Node.Load { mem = Node.I_structure; _ } when p = 1 -> ()
        | Node.Store { mem = Node.I_structure; _ } when p = 0 -> ()
        | _ ->
            fail "output port %d of node %d (%s) is unconnected" p i
              n.Node.label
      end
    done
  done;
  (* reachability from start treating arcs as directed edges *)
  let seen = Array.make nn false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      let out_ar = Node.out_arity (Graph.kind g v) in
      for p = 0 to out_ar - 1 do
        List.iter (fun a -> dfs a.Graph.dst.Graph.node) (Graph.outgoing g v p)
      done
    end
  in
  dfs g.Graph.start;
  Array.iteri
    (fun i s ->
      if not s then
        fail "node %d (%s) unreachable from start" i (Graph.node g i).Node.label)
    seen;
  (* access inputs of memory ops must be dummy-fed *)
  for i = 0 to nn - 1 do
    match Graph.kind g i with
    | Node.Load _ | Node.Store _ -> (
        match Graph.incoming g i 0 with
        | [ a ] ->
            if not a.Graph.dummy then
              fail "access input of memory op %d is fed by a value arc" i
        | _ -> fail "memory op %d access input arc count" i)
    | _ -> ()
  done
