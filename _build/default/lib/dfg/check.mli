(** Deeper well-formedness checks on dataflow graphs beyond the arity
    and wiring checks {!Graph.Builder.finish} performs: connected output
    ports (with the documented exceptions: switch branches, load value
    outputs, detached I-structure completions), reachability from Start,
    and dummy-fed access inputs on memory operations. *)

exception Invalid of string

(** @raise Invalid with a description of the first violation. *)
val check : Graph.t -> unit
