(** Graphviz rendering of dataflow graphs.  Dummy (access-token) arcs are
    drawn dashed, matching the paper's dotted-line convention. *)

let escape (s : string) : string =
  String.concat "\\\"" (String.split_on_char '"' s)

let node_attrs : Node.kind -> string = function
  | Node.Start _ | Node.End _ -> "shape=oval"
  | Node.Switch -> "shape=trapezium"
  | Node.Merge -> "shape=invtrapezium"
  | Node.Synch _ -> "shape=triangle"
  | Node.Loop_entry _ | Node.Loop_exit _ -> "shape=hexagon"
  | Node.Load _ | Node.Store _ -> "shape=box, style=rounded"
  | Node.Const _ | Node.Binop _ | Node.Unop _ | Node.Id | Node.Sink -> "shape=box"

let pp ppf (g : Graph.t) =
  Fmt.pf ppf "digraph dfg {@\n  node [fontname=\"monospace\"];@\n";
  Graph.iter_nodes g (fun n ->
      Fmt.pf ppf "  n%d [label=\"%d: %s\", %s];@\n" n.Node.id n.Node.id
        (escape n.Node.label)
        (node_attrs n.Node.kind));
  Array.iter
    (fun a ->
      Fmt.pf ppf "  n%d -> n%d [taillabel=\"%d\", headlabel=\"%d\"%s];@\n"
        a.Graph.src.Graph.node a.Graph.dst.Graph.node a.Graph.src.Graph.index
        a.Graph.dst.Graph.index
        (if a.Graph.dummy then ", style=dashed" else ""))
    g.Graph.arcs;
  Fmt.pf ppf "}@\n"

let to_string (g : Graph.t) : string = Fmt.str "%a" pp g

(** [write path g] writes the DOT rendering of [g] to [path]. *)
let write (path : string) (g : Graph.t) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))
