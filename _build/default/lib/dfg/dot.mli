(** Graphviz rendering of dataflow graphs; dummy (access-token) arcs are
    dashed, matching the paper's dotted-line convention. *)

val pp : Format.formatter -> Graph.t -> unit
val to_string : Graph.t -> string
val write : string -> Graph.t -> unit
