(** Dataflow operator vocabulary (paper, Section 2.2 and Figure 2).

    Operators fire when tokens are present on the required inputs; tokens
    carry values (expression operands and predicates) or are {e dummies}
    used purely to sequence memory operations -- the access tokens of
    Schemas 1–3.  Fan-out is expressed by several arcs leaving the same
    output port: the token is duplicated onto each arc.

    Port conventions (input, output indices) are fixed per kind and
    documented on each constructor; {!in_arity}/{!out_arity} are the single
    source of truth the checker and the machine rely on. *)

type mem_kind =
  | Plain  (** ordinary multiply-writable memory *)
  | I_structure
      (** write-once cells with deferred reads (paper, Sections 2.2/6.3) *)

type kind =
  | Start of int
      (** program entry: no inputs; output port [i] (of [k]) emits the
          [i]-th initial token (one per managed access token) when
          execution begins *)
  | End of int
      (** program exit: [k] inputs collect every circulating token;
          firing [End] is program completion.  No outputs. *)
  | Const of Imp.Value.t
      (** in: trigger(0); out: the constant(0).  The trigger is the
          statement-activation token (an access-token duplicate): a
          constant must fire once per execution of its statement. *)
  | Binop of Imp.Ast.binop  (** in: left(0), right(1); out: result(0) *)
  | Unop of Imp.Ast.unop  (** in: operand(0); out: result(0) *)
  | Id  (** in: value(0); out: the same value(0); wiring helper *)
  | Sink
      (** in: value(0); no outputs.  Consumes and discards a token; used
          by the memory-elimination transform to absorb a dead old-value
          token (Section 6.1). *)
  | Load of { var : string; indexed : bool; mem : mem_kind }
      (** split-phase read of [var].
          in: access(0), index(1) when [indexed];
          out: value(0), access-out(1) *)
  | Store of { var : string; indexed : bool; mem : mem_kind }
      (** split-phase write of [var].
          in: access(0), value(1), index(2) when [indexed];
          out: access-out(0) *)
  | Switch
      (** in: data(0), predicate(1); out: true(0), false(1).  The data
          token is forwarded to the output selected by the predicate
          (Figure 2). *)
  | Merge
      (** single input port accepting any number of arcs; a token arriving
          on any of them is forwarded to out(0).  Determinate in our
          graphs because only one control path delivers per context. *)
  | Synch of int
      (** in: 0..n-1; out: dummy(0) once all inputs have arrived
          (Figure 2's synch tree, collapsed to one operator). *)
  | Loop_entry of { loop : int; arity : int }
      (** loop-control gateway for [arity] managed tokens.
          in: initial(0..k-1) from outside the loop, back(k..2k-1) from
          the back edge; out: 0..k-1 into the loop body.  Firing on the
          initial group opens iteration 0 of a fresh loop context; firing
          on the back group advances the iteration tag.  The paper leaves
          these as black boxes; this is the Monsoon-style frame
          reallocation made explicit.  Pipelined loop control uses one
          arity-1 gateway per variable; barrier loop control uses a
          single arity-k gateway (the complete token set, as Section 3
          requires). *)
  | Loop_exit of { loop : int; arity : int }
      (** in: 0..k-1; out: 0..k-1.  Restores the enclosing context
          (pops the iteration tag). *)

type t = {
  id : int;
  kind : kind;
  label : string;  (** for rendering and error messages *)
}

(** [in_arity k] is the number of input ports of kind [k]. *)
let in_arity : kind -> int = function
  | Start _ -> 0
  | End k -> k
  | Const _ -> 1
  | Binop _ -> 2
  | Unop _ -> 1
  | Id -> 1
  | Sink -> 1
  | Load { indexed; _ } -> if indexed then 2 else 1
  | Store { indexed; _ } -> if indexed then 3 else 2
  | Switch -> 2
  | Merge -> 1
  | Synch n -> n
  | Loop_entry { arity; _ } -> 2 * arity
  | Loop_exit { arity; _ } -> arity

(** [out_arity k] is the number of output ports of kind [k]. *)
let out_arity : kind -> int = function
  | Start k -> k
  | End _ -> 0
  | Const _ | Binop _ | Unop _ | Id -> 1
  | Sink -> 0
  | Load _ -> 2
  | Store _ -> 1
  | Switch -> 2
  | Merge -> 1
  | Synch _ -> 1
  | Loop_entry { arity; _ } -> arity
  | Loop_exit { arity; _ } -> arity

(** [is_memory_op k] holds for loads and stores; these are the operations
    whose ordering the access tokens exist to enforce. *)
let is_memory_op = function Load _ | Store _ -> true | _ -> false

let kind_to_string : kind -> string = function
  | Start k -> Fmt.str "start/%d" k
  | End k -> Fmt.str "end/%d" k
  | Const v -> Fmt.str "const %s" (Imp.Value.to_string v)
  | Binop op -> Imp.Pretty.binop_string op
  | Unop Imp.Ast.Neg -> "neg"
  | Unop Imp.Ast.Not -> "not"
  | Id -> "id"
  | Sink -> "sink"
  | Load { var; indexed; mem } ->
      Fmt.str "load%s %s%s"
        (match mem with Plain -> "" | I_structure -> "-i")
        var
        (if indexed then "[]" else "")
  | Store { var; indexed; mem } ->
      Fmt.str "store%s %s%s"
        (match mem with Plain -> "" | I_structure -> "-i")
        var
        (if indexed then "[]" else "")
  | Switch -> "switch"
  | Merge -> "merge"
  | Synch n -> Fmt.str "synch/%d" n
  | Loop_entry { loop; arity } -> Fmt.str "loop-entry %d/%d" loop arity
  | Loop_exit { loop; arity } -> Fmt.str "loop-exit %d/%d" loop arity
