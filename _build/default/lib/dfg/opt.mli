(** Optimization passes over dataflow graphs — the paper's "IR for
    optimizing compilers" claim in action: constant folding, common
    subexpression elimination, and dead pure-node elimination performed
    directly on the graph.  Memory operations, switches, merges, synchs
    and loop gateways are structural and never touched; the passes are
    semantics-preserving on translated graphs (differentially tested). *)

(** [run g] applies folding, CSE and dead-node elimination to a fixpoint
    and rebuilds the graph. *)
val run : Graph.t -> Graph.t
