(** Peephole simplification: splice [Id] fan-out points and single-input
    merges.  Semantics-preserving and idempotent; saves one routing cycle
    per spliced node. *)

val run : Graph.t -> Graph.t
