(** Static statistics of dataflow graphs: the quantities the paper's
    qualitative claims are about (graph size O(E·V), switch counts before
    and after the Section 4 optimization, synchronisation inputs under
    covers). *)

type t = {
  nodes : int;
  arcs : int;
  switches : int;
  merges : int;
  synchs : int;
  synch_inputs : int;  (** total synchronisation fan-in *)
  loads : int;
  stores : int;
  alu : int;  (** binops + unops + consts + ids *)
  loop_controls : int;
  dummy_arcs : int;
}

let of_graph (g : Graph.t) : t =
  let count p = Graph.count g p in
  let synch_inputs =
    Array.fold_left
      (fun acc n ->
        match n.Node.kind with Node.Synch k -> acc + k | _ -> acc)
      0 g.Graph.nodes
  in
  {
    nodes = Graph.num_nodes g;
    arcs = Graph.num_arcs g;
    switches = count (function Node.Switch -> true | _ -> false);
    merges = count (function Node.Merge -> true | _ -> false);
    synchs = count (function Node.Synch _ -> true | _ -> false);
    synch_inputs;
    loads = count (function Node.Load _ -> true | _ -> false);
    stores = count (function Node.Store _ -> true | _ -> false);
    alu =
      count (function
        | Node.Binop _ | Node.Unop _ | Node.Const _ | Node.Id | Node.Sink -> true
        | _ -> false);
    loop_controls =
      count (function Node.Loop_entry _ | Node.Loop_exit _ -> true | _ -> false);
    dummy_arcs =
      Array.fold_left
        (fun acc a -> if a.Graph.dummy then acc + 1 else acc)
        0 g.Graph.arcs;
  }

let pp ppf (s : t) =
  Fmt.pf ppf
    "nodes=%d arcs=%d switches=%d merges=%d synchs=%d(synch-in=%d) loads=%d \
     stores=%d alu=%d loop-ctl=%d dummy-arcs=%d"
    s.nodes s.arcs s.switches s.merges s.synchs s.synch_inputs s.loads
    s.stores s.alu s.loop_controls s.dummy_arcs

let to_string (s : t) = Fmt.str "%a" pp s
