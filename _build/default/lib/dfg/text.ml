(** A textual, assembly-like format for dataflow graphs.

    The paper positions dataflow graphs as an {e executable intermediate
    representation}; this module gives that representation a concrete,
    diffable, storable syntax.  One line per node, then one line per arc:

    {v
    node 0 start/2
    node 1 const 5
    node 2 store x
    node 3 end/1
    arc 0.0 -> 1.0 dummy
    arc 0.0 -> 2.0 dummy
    arc 1.0 -> 2.1
    arc 2.0 -> 3.0 dummy
    v}

    [print] and [parse] round-trip exactly (tested); the parser rebuilds
    through {!Graph.Builder}, so ill-formed text is rejected with the
    same errors as ill-formed construction. *)

exception Parse_error of string

let kind_to_text : Node.kind -> string = function
  | Node.Start k -> Fmt.str "start/%d" k
  | Node.End k -> Fmt.str "end/%d" k
  | Node.Const (Imp.Value.Int n) -> Fmt.str "const %d" n
  | Node.Const (Imp.Value.Bool b) -> Fmt.str "const %b" b
  | Node.Binop op -> Fmt.str "binop %s" (Imp.Pretty.binop_string op)
  | Node.Unop Imp.Ast.Neg -> "unop neg"
  | Node.Unop Imp.Ast.Not -> "unop not"
  | Node.Id -> "id"
  | Node.Sink -> "sink"
  | Node.Load { var; indexed; mem } ->
      Fmt.str "load%s%s %s"
        (if indexed then "-idx" else "")
        (match mem with Node.Plain -> "" | Node.I_structure -> "-istruct")
        var
  | Node.Store { var; indexed; mem } ->
      Fmt.str "store%s%s %s"
        (if indexed then "-idx" else "")
        (match mem with Node.Plain -> "" | Node.I_structure -> "-istruct")
        var
  | Node.Switch -> "switch"
  | Node.Merge -> "merge"
  | Node.Synch n -> Fmt.str "synch/%d" n
  | Node.Loop_entry { loop; arity } -> Fmt.str "loop-entry %d/%d" loop arity
  | Node.Loop_exit { loop; arity } -> Fmt.str "loop-exit %d/%d" loop arity

let binop_of_text s =
  let table =
    Imp.Ast.[ Add; Sub; Mul; Div; Mod; Lt; Le; Gt; Ge; Eq; Ne; And; Or ]
  in
  match List.find_opt (fun op -> Imp.Pretty.binop_string op = s) table with
  | Some op -> op
  | None -> raise (Parse_error ("unknown operator " ^ s))

let kind_of_text (s : string) : Node.kind =
  let words =
    String.split_on_char ' ' s |> List.filter (fun w -> w <> "")
  in
  let slash w =
    match String.split_on_char '/' w with
    | [ a; b ] -> (a, int_of_string b)
    | _ -> raise (Parse_error ("expected name/arity: " ^ w))
  in
  match words with
  | [ w ] when String.contains w '/' -> (
      match slash w with
      | "start", k -> Node.Start k
      | "end", k -> Node.End k
      | "synch", k -> Node.Synch k
      | other, _ -> raise (Parse_error ("unknown node kind " ^ other)))
  | [ "id" ] -> Node.Id
  | [ "sink" ] -> Node.Sink
  | [ "switch" ] -> Node.Switch
  | [ "merge" ] -> Node.Merge
  | [ "const"; "true" ] -> Node.Const (Imp.Value.Bool true)
  | [ "const"; "false" ] -> Node.Const (Imp.Value.Bool false)
  | [ "const"; n ] -> (
      match int_of_string_opt n with
      | Some n -> Node.Const (Imp.Value.Int n)
      | None -> raise (Parse_error ("bad constant " ^ n)))
  | [ "binop"; op ] -> Node.Binop (binop_of_text op)
  | [ "unop"; "neg" ] -> Node.Unop Imp.Ast.Neg
  | [ "unop"; "not" ] -> Node.Unop Imp.Ast.Not
  | [ "loop-entry"; la ] ->
      let loop, arity = slash la in
      Node.Loop_entry { loop = int_of_string loop; arity }
  | [ "loop-exit"; la ] ->
      let loop, arity = slash la in
      Node.Loop_exit { loop = int_of_string loop; arity }
  | [ mem_word; var ] -> (
      let parse_mem prefix =
        if mem_word = prefix then Some (false, Node.Plain)
        else if mem_word = prefix ^ "-idx" then Some (true, Node.Plain)
        else if mem_word = prefix ^ "-istruct" then Some (false, Node.I_structure)
        else if mem_word = prefix ^ "-idx-istruct" then
          Some (true, Node.I_structure)
        else None
      in
      match (parse_mem "load", parse_mem "store") with
      | Some (indexed, mem), _ -> Node.Load { var; indexed; mem }
      | None, Some (indexed, mem) -> Node.Store { var; indexed; mem }
      | None, None -> raise (Parse_error ("unknown node kind: " ^ s)))
  | _ -> raise (Parse_error ("unknown node kind: " ^ s))

(** [print g] renders [g] in the textual format. *)
let print (g : Graph.t) : string =
  let buf = Buffer.create 1024 in
  Graph.iter_nodes g (fun n ->
      Buffer.add_string buf
        (Fmt.str "node %d %s\n" n.Node.id (kind_to_text n.Node.kind)));
  Array.iter
    (fun a ->
      Buffer.add_string buf
        (Fmt.str "arc %d.%d -> %d.%d%s\n" a.Graph.src.Graph.node
           a.Graph.src.Graph.index a.Graph.dst.Graph.node
           a.Graph.dst.Graph.index
           (if a.Graph.dummy then " dummy" else "")))
    g.Graph.arcs;
  Buffer.contents buf

(** [parse s] rebuilds a graph from the textual format.
    @raise Parse_error on malformed text.
    @raise Graph.Builder.Ill_formed on structurally invalid graphs. *)
let parse (s : string) : Graph.t =
  let b = Graph.Builder.create () in
  let expected_id = ref 0 in
  let port w =
    match String.split_on_char '.' w with
    | [ n; p ] -> (
        match (int_of_string_opt n, int_of_string_opt p) with
        | Some n, Some p -> (n, p)
        | _ -> raise (Parse_error ("bad port " ^ w)))
    | _ -> raise (Parse_error ("bad port " ^ w))
  in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then ()
         else
           match String.index_opt line ' ' with
           | None -> raise (Parse_error ("bad line: " ^ line))
           | Some i -> (
               let head = String.sub line 0 i in
               let rest =
                 String.sub line (i + 1) (String.length line - i - 1)
               in
               match head with
               | "node" -> (
                   match String.index_opt rest ' ' with
                   | None -> raise (Parse_error ("bad node line: " ^ line))
                   | Some j ->
                       let id = int_of_string (String.sub rest 0 j) in
                       if id <> !expected_id then
                         raise
                           (Parse_error
                              (Fmt.str "node ids must be dense; expected %d"
                                 !expected_id));
                       incr expected_id;
                       let kind =
                         kind_of_text
                           (String.sub rest (j + 1)
                              (String.length rest - j - 1))
                       in
                       ignore (Graph.Builder.add b kind))
               | "arc" -> (
                   let words =
                     String.split_on_char ' ' rest
                     |> List.filter (fun w -> w <> "")
                   in
                   match words with
                   | [ src; "->"; dst ] ->
                       Graph.Builder.connect b (port src) (port dst)
                   | [ src; "->"; dst; "dummy" ] ->
                       Graph.Builder.connect b ~dummy:true (port src)
                         (port dst)
                   | _ -> raise (Parse_error ("bad arc line: " ^ line)))
               | _ -> raise (Parse_error ("bad line: " ^ line))));
  Graph.Builder.finish b

(** [write path g] / [read path] — file convenience wrappers. *)
let write (path : string) (g : Graph.t) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (print g))

let read (path : string) : Graph.t =
  (* read to EOF rather than by length so pipes and process
     substitutions work too *)
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let buf = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel buf ic 1
         done
       with End_of_file -> ());
      parse (Buffer.contents buf))
