(** A textual, assembly-like format for dataflow graphs — the concrete
    syntax of the paper's "executable intermediate representation".
    One [node <id> <kind>] line per node, one [arc s.p -> d.q [dummy]]
    line per arc.  {!print} and {!parse} round-trip exactly. *)

exception Parse_error of string

val kind_to_text : Node.kind -> string

(** @raise Parse_error on unknown kinds. *)
val kind_of_text : string -> Node.kind

val print : Graph.t -> string

(** @raise Parse_error on malformed text.
    @raise Graph.Builder.Ill_formed on structurally invalid graphs. *)
val parse : string -> Graph.t

val write : string -> Graph.t -> unit
val read : string -> Graph.t
