lib/imp/ast.ml: List
