lib/imp/eval.ml: Array Ast Flat Hashtbl Layout List Memory Value
