lib/imp/eval.mli: Ast Flat Memory Value
