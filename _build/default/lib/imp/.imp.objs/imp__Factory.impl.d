lib/imp/factory.ml: Ast Fmt List Parser String
