lib/imp/factory.mli: Ast
