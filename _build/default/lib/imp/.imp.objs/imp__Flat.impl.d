lib/imp/flat.ml: Array Ast Fmt Hashtbl List Pretty
