lib/imp/flat.mli: Ast Format Hashtbl
