lib/imp/layout.ml: Array Ast Flat Fmt Hashtbl List
