lib/imp/layout.mli: Ast Hashtbl
