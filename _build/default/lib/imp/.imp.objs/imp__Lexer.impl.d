lib/imp/lexer.ml: Fmt List String
