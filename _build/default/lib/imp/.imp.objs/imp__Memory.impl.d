lib/imp/memory.ml: Array Fmt Layout List String
