lib/imp/memory.mli: Format Layout
