lib/imp/parser.ml: Ast Flat Fmt Lexer List String Typecheck
