lib/imp/parser.mli: Ast Flat
