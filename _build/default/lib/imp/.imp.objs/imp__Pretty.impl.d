lib/imp/pretty.ml: Ast Fmt List
