lib/imp/pretty.mli: Ast Format
