lib/imp/proc.ml: Ast Hashtbl Layout List
