lib/imp/proc.mli: Ast
