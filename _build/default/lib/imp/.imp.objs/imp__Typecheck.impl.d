lib/imp/typecheck.ml: Array Ast Flat Fmt List Pretty
