lib/imp/typecheck.mli: Ast Flat
