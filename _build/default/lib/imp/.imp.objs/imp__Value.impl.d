lib/imp/value.ml: Ast Fmt
