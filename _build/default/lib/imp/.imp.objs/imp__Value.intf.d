lib/imp/value.mli: Ast Format
