(** Abstract syntax of IMP, the small imperative source language of the
    translation framework (paper, Section 2.1).

    IMP is deliberately close to the statement language of the paper: scalar
    and array assignments, structured conditionals and loops, and -- because
    the paper insists on handling {e unstructured} control flow -- labels,
    [goto] and conditional [goto].  Aliasing enters the language through two
    kinds of declarations: [equiv x y] makes [x] and [y] name the same
    storage at run time (FORTRAN reference-parameter style), while
    [mayalias x y] only informs the compiler that the two names {e may}
    coincide (the alias structure of Section 5) without actually sharing
    storage.  The compile-time alias structure is always a conservative
    superset of the run-time equivalences. *)

(** Variable names.  Scalars need no declaration; arrays are declared with
    their extent. *)
type var = string

(** Statement labels, targets of [goto]. *)
type label = string

(** Binary operators.  Comparison operators yield booleans; arithmetic
    operators yield integers; [And]/[Or] operate on booleans. *)
type binop =
  | Add
  | Sub
  | Mul
  | Div  (** total: division by zero yields 0 (language definition) *)
  | Mod  (** total: modulo zero yields 0 *)
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

(** Unary operators. *)
type unop =
  | Neg  (** integer negation *)
  | Not  (** boolean negation *)

(** Expressions.  Array reads index a declared array; indices are reduced
    modulo the array extent so that evaluation is total (this mirrors the
    reference interpreter and keeps differential testing meaningful). *)
type expr =
  | Int of int
  | Bool of bool
  | Var of var
  | Index of var * expr  (** array read [x[e]] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr

(** Assignment targets. *)
type lvalue =
  | Lvar of var
  | Lindex of var * expr  (** array write [x[e] := ...] *)

(** Statements.  [Label]/[Goto]/[Cond_goto] give unstructured control flow;
    they are only meaningful after flattening (see {!Flat}). *)
type stmt =
  | Skip
  | Assign of lvalue * expr
  | Seq of stmt * stmt
  | If of expr * stmt * stmt
  | While of expr * stmt
  | Label of label
  | Goto of label
  | Cond_goto of expr * label  (** [if e goto l], fallthrough otherwise *)
  | Call of string * var list
      (** procedure call with by-reference arguments (variable names),
          FORTRAN style; expanded by inlining at lowering time *)
  | Case of expr * (int * stmt) list * stmt
      (** multi-way branch on an integer scrutinee (paper, footnote 3):
          lowered to a fresh temporary plus a chain of binary forks *)

(** A parameterised procedure; parameters are scalar names bound by
    reference at each call site -- the paper's Section 5 source of
    aliasing. *)
type proc = {
  pname : string;
  params : var list;
  pbody : stmt;
}

(** A complete program: storage declarations, procedures, and a body. *)
type program = {
  arrays : (var * int) list;  (** declared arrays with extents (>= 1) *)
  equiv : (var * var) list;
      (** run-time storage equivalences: both names denote the same
          location(s); closed transitively by the memory layout *)
  may_alias : (var * var) list;
      (** additional compile-time may-alias pairs (symmetric, not
          necessarily transitive), as in the paper's alias structure *)
  procs : proc list;
  body : stmt;
}

(** [program body] is a program with no arrays, no aliasing and no
    procedures. *)
let program body = { arrays = []; equiv = []; may_alias = []; procs = []; body }

(** [seq ss] chains a statement list into nested {!Seq} (right-associated);
    [seq []] is {!Skip}. *)
let rec seq = function
  | [] -> Skip
  | [ s ] -> s
  | s :: ss -> Seq (s, seq ss)

(** Convenience constructors for building programs in OCaml source (tests,
    examples, workload generators).  Kept in a submodule so that opening it
    is an explicit choice: it shadows arithmetic operators. *)
module Dsl = struct
  let ( := ) x e = Assign (Lvar x, e)
  let v x = Var x
  let i n = Int n
  let ( + ) a b = Binop (Add, a, b)
  let ( - ) a b = Binop (Sub, a, b)
  let ( * ) a b = Binop (Mul, a, b)
  let ( < ) a b = Binop (Lt, a, b)
  let ( <= ) a b = Binop (Le, a, b)
  let ( = ) a b = Binop (Eq, a, b)
  let ( <> ) a b = Binop (Ne, a, b)
  let ( && ) a b = Binop (And, a, b)
  let ( || ) a b = Binop (Or, a, b)
  let idx x e = Index (x, e)
  let set_idx x e1 e2 = Assign (Lindex (x, e1), e2)
end

(** [vars_expr e] is the set of variable names referenced by [e], including
    array names in {!Index} nodes. *)
let rec vars_expr (e : expr) (acc : string list) : string list =
  match e with
  | Int _ | Bool _ -> acc
  | Var x -> x :: acc
  | Index (x, e1) -> vars_expr e1 (x :: acc)
  | Binop (_, e1, e2) -> vars_expr e1 (vars_expr e2 acc)
  | Unop (_, e1) -> vars_expr e1 acc

(** [vars_lvalue lv] is the list of variables referenced by an assignment
    target: the assigned variable itself plus any index variables. *)
let vars_lvalue (lv : lvalue) (acc : string list) : string list =
  match lv with
  | Lvar x -> x :: acc
  | Lindex (x, e) -> vars_expr e (x :: acc)

(** Sorted, deduplicated variable list of an expression. *)
let expr_vars e = List.sort_uniq compare (vars_expr e [])

(** All variables of a statement (reads and writes). *)
let rec stmt_vars_acc s acc =
  match s with
  | Skip | Label _ | Goto _ -> acc
  | Assign (lv, e) -> vars_lvalue lv (vars_expr e acc)
  | Seq (a, b) -> stmt_vars_acc a (stmt_vars_acc b acc)
  | If (e, a, b) -> vars_expr e (stmt_vars_acc a (stmt_vars_acc b acc))
  | While (e, a) -> vars_expr e (stmt_vars_acc a acc)
  | Cond_goto (e, _) -> vars_expr e acc
  | Call (_, args) -> args @ acc
  | Case (e, arms, default) ->
      vars_expr e
        (List.fold_left
           (fun acc (_, s') -> stmt_vars_acc s' acc)
           (stmt_vars_acc default acc)
           arms)

(** Sorted, deduplicated variable list of a whole program, including array
    names and variables mentioned only in declarations. *)
let program_vars (p : program) : var list =
  let decls =
    List.map fst p.arrays
    @ List.concat_map (fun (a, b) -> [ a; b ]) p.equiv
    @ List.concat_map (fun (a, b) -> [ a; b ]) p.may_alias
  in
  (* procedure locals survive inlining under their own names; parameters
     are substituted away by the call's arguments *)
  let proc_locals =
    List.concat_map
      (fun pr ->
        List.filter
          (fun x -> not (List.mem x pr.params))
          (stmt_vars_acc pr.pbody []))
      p.procs
  in
  List.sort_uniq compare (stmt_vars_acc p.body (proc_locals @ decls))

(** [is_array p x] holds iff [x] is declared as an array in [p]. *)
let is_array (p : program) (x : var) : bool = List.mem_assoc x p.arrays

(** [array_size p x] is the declared extent of array [x].
    @raise Not_found if [x] is not an array. *)
let array_size (p : program) (x : var) : int = List.assoc x p.arrays

(** Structural size of an expression (number of AST nodes); used by
    workload generators and statistics. *)
let rec expr_size = function
  | Int _ | Bool _ | Var _ -> 1
  | Index (_, e) -> 1 + expr_size e
  | Binop (_, a, b) -> 1 + expr_size a + expr_size b
  | Unop (_, e) -> 1 + expr_size e

(** Structural size of a statement. *)
let rec stmt_size = function
  | Skip | Label _ | Goto _ -> 1
  | Call (_, args) -> 1 + List.length args
  | Case (e, arms, default) ->
      1 + expr_size e
      + List.fold_left (fun acc (_, s') -> acc + stmt_size s') 0 arms
      + stmt_size default
  | Assign (lv, e) ->
      let lv_sz = match lv with Lvar _ -> 1 | Lindex (_, e') -> expr_size e' in
      1 + lv_sz + expr_size e
  | Seq (a, b) -> stmt_size a + stmt_size b
  | If (e, a, b) -> 1 + expr_size e + stmt_size a + stmt_size b
  | While (e, a) -> 1 + expr_size e + stmt_size a
  | Cond_goto (e, _) -> 1 + expr_size e
