(** Reference sequential interpreters.

    These implement the standard operational semantics of imperative
    programs -- the semantics every translation schema must preserve.  Two
    interpreters are provided: one over the structured AST and one over the
    flat (goto) form; they are cross-checked against each other in the test
    suite, and both serve as the oracle for the dataflow machine. *)

exception Out_of_fuel
(** Raised when a program exceeds its step budget; used to bound
    randomly-generated loops. *)

exception Unstructured
(** Raised by {!run_stmt} on [Label]/[Goto]: structured evaluation cannot
    interpret unstructured control flow; use {!run_flat}. *)

(** [eval_expr mem e] evaluates [e] against memory [mem]. *)
let rec eval_expr (mem : Memory.t) (e : Ast.expr) : Value.t =
  match e with
  | Ast.Int n -> Value.Int n
  | Ast.Bool b -> Value.Bool b
  | Ast.Var x -> Value.Int (Memory.read mem x 0)
  | Ast.Index (x, e1) ->
      let i = Value.to_int (eval_expr mem e1) in
      Value.Int (Memory.read mem x i)
  | Ast.Binop (op, a, b) -> Value.binop op (eval_expr mem a) (eval_expr mem b)
  | Ast.Unop (op, a) -> Value.unop op (eval_expr mem a)

(** [assign mem lv e] performs one assignment.  Right-hand side is
    evaluated before the target index, matching the dataflow translation's
    read-then-write order for a single statement. *)
let assign (mem : Memory.t) (lv : Ast.lvalue) (e : Ast.expr) : unit =
  let v = Value.to_int (eval_expr mem e) in
  match lv with
  | Ast.Lvar x -> Memory.write mem x 0 v
  | Ast.Lindex (x, e1) ->
      let i = Value.to_int (eval_expr mem e1) in
      Memory.write mem x i v

(** [run_stmt ~fuel mem s] executes structured statement [s] in place.
    Every assignment and predicate evaluation consumes one unit of fuel.
    @raise Out_of_fuel when the budget runs out.
    @raise Unstructured on [Label]/[Goto]/[Cond_goto]. *)
let run_stmt ?(fuel = max_int) (mem : Memory.t) (s : Ast.stmt) : unit =
  let fuel = ref fuel in
  let tick () =
    decr fuel;
    if !fuel < 0 then raise Out_of_fuel
  in
  let rec go = function
    | Ast.Skip -> ()
    | Ast.Assign (lv, e) ->
        tick ();
        assign mem lv e
    | Ast.Seq (a, b) ->
        go a;
        go b
    | Ast.If (e, a, b) ->
        tick ();
        if Value.to_bool (eval_expr mem e) then go a else go b
    | Ast.While (e, a) ->
        tick ();
        if Value.to_bool (eval_expr mem e) then begin
          go a;
          go (Ast.While (e, a))
        end
    | Ast.Case (e, arms, default) -> (
        tick ();
        let v = Value.to_int (eval_expr mem e) in
        match List.assoc_opt v arms with
        | Some s' -> go s'
        | None -> go default)
    | Ast.Label _ | Ast.Goto _ | Ast.Cond_goto _ | Ast.Call _ ->
        raise Unstructured
  in
  go s

(** [run_flat ~fuel mem f] executes a flat program in place with a program
    counter, the textbook von Neumann semantics of Section 1.
    @raise Out_of_fuel when the budget runs out. *)
let run_flat ?(fuel = max_int) (mem : Memory.t) (f : Flat.t) : unit =
  let labels = Flat.label_table f in
  let n = Array.length f.Flat.code in
  let fuel = ref fuel in
  let rec step pc =
    if pc < n then begin
      decr fuel;
      if !fuel < 0 then raise Out_of_fuel;
      match f.Flat.code.(pc) with
      | Flat.Label _ -> step (pc + 1)
      | Flat.Assign (lv, e) ->
          assign mem lv e;
          step (pc + 1)
      | Flat.Goto l -> step (Hashtbl.find labels l)
      | Flat.Branch (p, lt, lf) ->
          let target = if Value.to_bool (eval_expr mem p) then lt else lf in
          step (Hashtbl.find labels target)
    end
  in
  step 0

(** [run_program ?fuel p] builds a fresh zeroed memory for [p], lowers to
    flat form and executes; returns the final memory. *)
let run_program ?fuel (p : Ast.program) : Memory.t =
  let f = Flat.flatten p in
  let mem = Memory.create (Layout.of_program p) in
  run_flat ?fuel mem f;
  mem

(** [run_flat_program ?fuel f] like {!run_program} but starting from flat
    form (layout derived from the re-embedded program). *)
let run_flat_program ?fuel (f : Flat.t) : Memory.t =
  let mem = Memory.create (Layout.of_program (Flat.to_program f)) in
  run_flat ?fuel mem f;
  mem
