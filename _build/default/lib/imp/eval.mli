(** Reference sequential interpreters — the standard operational
    semantics every translation schema must preserve.  One interpreter
    over the structured AST and one over the flat (goto) form; they are
    cross-checked against each other and serve as the oracle for the
    dataflow machine. *)

exception Out_of_fuel
(** The step budget was exceeded (used to bound generated loops). *)

exception Unstructured
(** Structured evaluation met a [Label]/[Goto]; use {!run_flat}. *)

(** Evaluate an expression against a memory. *)
val eval_expr : Memory.t -> Ast.expr -> Value.t

(** One assignment, in place. *)
val assign : Memory.t -> Ast.lvalue -> Ast.expr -> unit

(** Execute a structured statement in place; each assignment or
    predicate evaluation costs one unit of fuel.
    @raise Out_of_fuel / Unstructured as documented. *)
val run_stmt : ?fuel:int -> Memory.t -> Ast.stmt -> unit

(** Execute a flat program with a program counter — the textbook von
    Neumann semantics of the paper's introduction.
    @raise Out_of_fuel when the budget runs out. *)
val run_flat : ?fuel:int -> Memory.t -> Flat.t -> unit

(** Fresh zeroed memory, lower to flat form, execute; the final store. *)
val run_program : ?fuel:int -> Ast.program -> Memory.t

(** Like {!run_program} from flat form. *)
val run_flat_program : ?fuel:int -> Flat.t -> Memory.t
