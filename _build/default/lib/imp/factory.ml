(** The paper's example programs plus a few classic kernels, as parsed
    programs.  Each experiment in the benchmark harness references these by
    name (see DESIGN.md, experiment index). *)

let parse = Parser.program_of_string

(** Figure 1: the paper's running example.
    {v
    l: join
       y := x + 1
       x := x + 1
       if x < 5 then goto l else goto end
    v} *)
let running_example () =
  parse {|
    l:
    y := x + 1
    x := x + 1
    if x < 5 goto l
  |}

(** The same loop in structured form (used to cross-check structured and
    unstructured paths through the pipeline). *)
let running_example_structured () =
  parse {|
    y := x + 1
    x := x + 1
    while x < 5 do
      y := x + 1
      x := x + 1
    end
  |}

(** Figure 9(a): a conditional that does not reference [x]; the [access_x]
    token should bypass the whole construct under the optimized schema.
    {v
    x := x + 1
    if w == 0 then y := 1 else z := 2 end
    x := 0   -- second assignment, orderable independently of the test
    v} *)
let bypass_example () =
  parse {|
    x := x + 1
    w := w + 1
    if w == 0 then
      y := 1
    else
      z := 2
    end
    x := x * 3
  |}

(** Nested conditionals neither of which references [x]: after the inner
    redundant switch is eliminated the outer one becomes redundant too
    (Section 4 discussion). *)
let nested_bypass_example () =
  parse {|
    x := x + 1
    if w == 0 then
      if u == 0 then
        y := 1
      else
        y := 2
      end
    else
      z := 3
    end
    x := x * 3
  |}

(** Section 5's FORTRAN aliasing example: SUBROUTINE F(X,Y,Z) called as
    F(A,B,A) and F(C,D,D); X~Z and Y~Z may alias but X and Y never do.
    We model one instantiation where the aliasing is real ([equiv x z]).  *)
let fortran_alias_example () =
  parse {|
    mayalias x z
    mayalias y z
    equiv x z
    x := 1
    y := 2
    z := z + x + y
    x := y + z
  |}

(** Same alias structure, no actual sharing: the translation must still be
    correct (schemas only rely on the may-alias structure). *)
let fortran_alias_example_disjoint () =
  parse {|
    mayalias x z
    mayalias y z
    x := 1
    y := 2
    z := z + x + y
    x := y + z
  |}

(** Section 6.3 / Figure 14: stores to distinct array elements in a loop,
    sequentialized by the naive name-based analysis.
    {v
    start: join
      i := i + 1; x[i] := 1
      if i < 10 then goto start else goto end
    v} *)
let array_store_loop ?(n = 10) () =
  parse
    (Fmt.str {|
      array x[%d]
      s:
      i := i + 1
      x[i] := 1
      if i < %d goto s
    |} (n + 1) n)

(** Straight-line program over many independent variables: the Schema 2
    showcase (all statements overlap). *)
let independent_straightline ?(k = 8) () =
  let stmts =
    List.init k (fun j -> Fmt.str "v%d := v%d + %d" j j (j + 1))
    |> String.concat "\n"
  in
  parse stmts

(** A chain of dependent statements: no schema can parallelize this; used
    to check that speedups are not inflated. *)
let dependent_chain ?(k = 8) () =
  let stmts =
    List.init k (fun j -> Fmt.str "x := x + %d" (j + 1)) |> String.concat "\n"
  in
  parse stmts

(** Unstructured, reducible flow graph with a loop entered only at its
    header but exited from two places.  Exercises interval analysis beyond
    structured loops. *)
let unstructured_example () =
  parse {|
    head:
    i := i + 1
    if i > 8 goto out
    y := y + i
    if y > 20 goto out
    goto head
    out:
    z := y + i
  |}

(** An irreducible flow graph (two-entry cycle).  Interval analysis must
    detect and reject it (the paper handles such graphs by code copying,
    which {!Cfg.Split} implements). *)
let irreducible_example () =
  parse {|
    if x == 0 goto b
    a:
    y := y + 1
    goto c
    b:
    y := y + 2
    c:
    x := x + 1
    if x < 4 goto a
    if x < 6 goto b
  |}

(** Sum of first [n] integers: classic scalar loop kernel. *)
let sum_kernel ?(n = 10) () =
  parse (Fmt.str {|
    i := 0
    s := 0
    while i < %d do
      s := s + i
      i := i + 1
    end
  |} n)

(** Fibonacci-style two-variable recurrence: a tight dependence cycle. *)
let fib_kernel ?(n = 10) () =
  parse
    (Fmt.str {|
      a := 0
      b := 1
      i := 0
      while i < %d do
        t := a + b
        a := b
        b := t
        i := i + 1
      end
    |} n)

(** Array reduction: reads are parallelizable (Section 6.2). *)
let array_sum_kernel ?(n = 8) () =
  parse
    (Fmt.str {|
      array x[%d]
      i := 0
      while i < %d do
        x[i] := i * 2
        i := i + 1
      end
      j := 0
      s := 0
      while j < %d do
        s := s + x[j]
        j := j + 1
      end
    |} n n n)

(** GCD by subtraction: loop with a conditional body. *)
let gcd_kernel ?(a = 30) ?(b = 42) () =
  parse
    (Fmt.str {|
      x := %d
      y := %d
      while x != y do
        if x > y then
          x := x - y
        else
          y := y - x
        end
      end
    |} a b)

(** Matrix multiply (n x n, flattened row-major): nested loops, affine
    subscripts with multiplication -- beyond the simple subscript test,
    so the stores stay serial, but the kernel exercises deep loop nests
    under every schema. *)
let matmul_kernel ?(n = 3) () =
  parse
    (Fmt.str
       {|
      array a[%d]
      array b[%d]
      array c[%d]
      i := 0
      while i < %d do
        j := 0
        while j < %d do
          a[i * %d + j] := i + j
          b[i * %d + j] := i - j
          j := j + 1
        end
        i := i + 1
      end
      i := 0
      while i < %d do
        j := 0
        while j < %d do
          k := 0
          acc := 0
          while k < %d do
            acc := acc + a[i * %d + k] * b[k * %d + j]
            k := k + 1
          end
          c[i * %d + j] := acc
          j := j + 1
        end
        i := i + 1
      end
    |}
       (n * n) (n * n) (n * n) n n n n n n n n n n)

(** Bubble sort: data-dependent swaps inside nested loops. *)
let bubble_sort_kernel ?(n = 5) () =
  parse
    (Fmt.str
       {|
      array a[%d]
      i := 0
      while i < %d do
        a[i] := (%d - i) * 3 %% 7
        i := i + 1
      end
      i := 0
      while i < %d do
        j := 0
        while j < %d - 1 do
          if a[j] > a[j + 1] then
            t := a[j]
            a[j] := a[j + 1]
            a[j + 1] := t
          end
          j := j + 1
        end
        i := i + 1
      end
    |}
       n n n n n)

(** Sieve of Eratosthenes (array of flags). *)
let sieve_kernel ?(n = 12) () =
  parse
    (Fmt.str
       {|
      array flag[%d]
      i := 2
      while i < %d do
        if flag[i] == 0 then
          j := i + i
          while j < %d do
            flag[j] := 1
            j := j + i
          end
          primes := primes + 1
        end
        i := i + 1
      end
    |}
       n n n)

(** Prefix sums: a loop-carried chain through an array. *)
let prefix_sum_kernel ?(n = 8) () =
  parse
    (Fmt.str
       {|
      array a[%d]
      i := 0
      while i < %d do
        a[i] := i * 2 + 1
        i := i + 1
      end
      i := 1
      while i < %d do
        a[i] := a[i] + a[i - 1]
        i := i + 1
      end
    |}
       n n n)

(** A small state machine driven by a multi-way branch (paper,
    footnote 3): token-style parser counting digit runs. *)
let state_machine_kernel ?(n = 12) () =
  parse
    (Fmt.str
       {|
      array input[%d]
      i := 0
      while i < %d do
        input[i] := (i * 7) %% 3
        i := i + 1
      end
      state := 0
      i := 0
      while i < %d do
        sym := input[i]
        case state * 3 + sym
        when 0 then state := 0 zeros := zeros + 1
        when 1 then state := 1
        when 2 then state := 2
        when 3 then state := 0 runs := runs + 1
        when 4 then state := 1 ones := ones + 1
        when 5 then state := 2
        when 6 then state := 0 runs := runs + 1
        when 7 then state := 1
        else state := 2 twos := twos + 1
        end
        i := i + 1
      end
    |}
       n n n)

(** Procedures with by-reference parameters, inlined at lowering time;
    rotates three variables through a swap helper. *)
let procedures_example () =
  parse
    {|
    proc swap(p, q)
      t := p
      p := q
      q := t
    end
    proc rot3(p, q, r)
      call swap(p, q)
      call swap(q, r)
    end
    x := 1 y := 2 z := 3
    call rot3(x, y, z)
    call rot3(x, y, z)
  |}

(** The paper's SUBROUTINE F, written as a procedure; call sites induce
    the Section 5 alias structure (see {!Proc.param_aliases}). *)
let subroutine_f_example () =
  parse
    {|
    proc f(fx, fy, fz)
      fx := 1
      fy := 2
      fz := fz + fx + fy
      fx := fy + fz
    end
    call f(a, b, a)
    call f(c, d, d)
  |}

(** All named examples, for table-driven tests. *)
let all : (string * (unit -> Ast.program)) list =
  [
    ("running_example", running_example);
    ("running_example_structured", running_example_structured);
    ("bypass_example", bypass_example);
    ("nested_bypass_example", nested_bypass_example);
    ("fortran_alias_example", fortran_alias_example);
    ("fortran_alias_disjoint", fortran_alias_example_disjoint);
    ("array_store_loop", fun () -> array_store_loop ());
    ("independent_straightline", fun () -> independent_straightline ());
    ("dependent_chain", fun () -> dependent_chain ());
    ("unstructured_example", unstructured_example);
    ("sum_kernel", fun () -> sum_kernel ());
    ("fib_kernel", fun () -> fib_kernel ());
    ("array_sum_kernel", fun () -> array_sum_kernel ());
    ("gcd_kernel", fun () -> gcd_kernel ());
    ("matmul_kernel", fun () -> matmul_kernel ());
    ("bubble_sort_kernel", fun () -> bubble_sort_kernel ());
    ("sieve_kernel", fun () -> sieve_kernel ());
    ("prefix_sum_kernel", fun () -> prefix_sum_kernel ());
    ("state_machine_kernel", fun () -> state_machine_kernel ());
    ("procedures_example", procedures_example);
    ("subroutine_f_example", subroutine_f_example);
  ]
