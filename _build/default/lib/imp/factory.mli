(** The paper's example programs plus classic kernels, as parsed
    programs.  Each experiment in the benchmark harness references these
    by name (DESIGN.md, experiment index), and {!all} drives the
    table-driven differential tests. *)

(** Figure 1: the paper's running example ([l: y:=x+1; x:=x+1;
    if x<5 goto l]). *)
val running_example : unit -> Ast.program

(** The same loop in structured form (cross-checks both lowering
    paths). *)
val running_example_structured : unit -> Ast.program

(** Figure 9(a): a conditional that never references [x]; [access_x]
    should bypass it under the optimized schema. *)
val bypass_example : unit -> Ast.program

(** Nested conditionals neither referencing [x]: switch elimination must
    cascade (Section 4). *)
val nested_bypass_example : unit -> Ast.program

(** Section 5's FORTRAN example with real sharing ([equiv x z]). *)
val fortran_alias_example : unit -> Ast.program

(** Same may-alias structure, no actual sharing. *)
val fortran_alias_example_disjoint : unit -> Ast.program

(** Section 6.3 / Figure 14: induction-subscripted stores in a loop. *)
val array_store_loop : ?n:int -> unit -> Ast.program

(** [k] independent statements: the Schema 2 showcase. *)
val independent_straightline : ?k:int -> unit -> Ast.program

(** A [k]-deep dependence chain: no schema can parallelize it. *)
val dependent_chain : ?k:int -> unit -> Ast.program

(** A multi-exit goto loop (reducible but unstructured). *)
val unstructured_example : unit -> Ast.program

(** A two-entry cycle: irreducible; interval analysis rejects it and
    {!Cfg.Split} copies it reducible. *)
val irreducible_example : unit -> Ast.program

(** Kernels: sum, Fibonacci recurrence, array init+reduce, GCD, matrix
    multiply (flattened), bubble sort, sieve, prefix sums. *)
val sum_kernel : ?n:int -> unit -> Ast.program

val fib_kernel : ?n:int -> unit -> Ast.program
val array_sum_kernel : ?n:int -> unit -> Ast.program
val gcd_kernel : ?a:int -> ?b:int -> unit -> Ast.program
val matmul_kernel : ?n:int -> unit -> Ast.program
val bubble_sort_kernel : ?n:int -> unit -> Ast.program
val sieve_kernel : ?n:int -> unit -> Ast.program
val prefix_sum_kernel : ?n:int -> unit -> Ast.program

(** A state machine driven by a multi-way [case] (footnote 3). *)
val state_machine_kernel : ?n:int -> unit -> Ast.program

(** Procedures rotated through a swap helper (inlining, by-reference
    parameters). *)
val procedures_example : unit -> Ast.program

(** The paper's SUBROUTINE F as a procedure with its two aliasing call
    sites. *)
val subroutine_f_example : unit -> Ast.program

(** All named examples, for table-driven tests. *)
val all : (string * (unit -> Ast.program)) list
