(** Flattened (unstructured) program form.

    The paper's translation starts from a statement-level control-flow
    graph whose only control constructs are binary forks and labelled joins
    (Section 2.1).  [Flat.t] is the textual counterpart: a sequence of
    instructions with explicit labels and branches.  Structured programs
    are lowered here first; programs written with [goto] pass through
    as-is.  The CFG builder consumes this form. *)

type instr =
  | Assign of Ast.lvalue * Ast.expr
  | Goto of Ast.label
  | Branch of Ast.expr * Ast.label * Ast.label
      (** [Branch (p, lt, lf)]: if [p] then goto [lt] else goto [lf] *)
  | Label of Ast.label  (** a join point; no computation *)

type t = {
  arrays : (Ast.var * int) list;
  equiv : (Ast.var * Ast.var) list;
  may_alias : (Ast.var * Ast.var) list;
  code : instr array;
}

exception Invalid of string

exception Recursive_call of string
(** Procedures are expanded by inlining; recursion cannot be expanded. *)

let pp_instr ppf = function
  | Assign (lv, e) -> Fmt.pf ppf "%a := %a" Pretty.pp_lvalue lv Pretty.pp_expr e
  | Goto l -> Fmt.pf ppf "goto %s" l
  | Branch (p, lt, lf) ->
      Fmt.pf ppf "if %a then goto %s else goto %s" Pretty.pp_expr p lt lf
  | Label l -> Fmt.pf ppf "%s:" l

let pp ppf (t : t) =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.array ~sep:Fmt.cut pp_instr) t.code

(* Fresh label supply.  User labels may not contain '$', which the lexer
   guarantees, so generated labels never collide. *)
let fresh_label =
  let counter = ref 0 in
  fun hint ->
    incr counter;
    Fmt.str "$%s%d" hint !counter

(* Variable substitution for by-reference parameter binding. *)
let rec subst_expr (sub : Ast.var -> Ast.var) (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Int _ | Ast.Bool _ -> e
  | Ast.Var x -> Ast.Var (sub x)
  | Ast.Index (x, e1) -> Ast.Index (sub x, subst_expr sub e1)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, subst_expr sub a, subst_expr sub b)
  | Ast.Unop (op, a) -> Ast.Unop (op, subst_expr sub a)

let subst_lvalue sub = function
  | Ast.Lvar x -> Ast.Lvar (sub x)
  | Ast.Lindex (x, e) -> Ast.Lindex (sub x, subst_expr sub e)

(* Substitute variables and freshen labels (one renaming per inlined
   body, so an inlined procedure's internal control flow cannot collide
   with the caller's or with another expansion's). *)
let rec subst_stmt (sub : Ast.var -> Ast.var) (lbl : Ast.label -> Ast.label)
    (s : Ast.stmt) : Ast.stmt =
  match s with
  | Ast.Skip -> Ast.Skip
  | Ast.Assign (lv, e) -> Ast.Assign (subst_lvalue sub lv, subst_expr sub e)
  | Ast.Seq (a, b) -> Ast.Seq (subst_stmt sub lbl a, subst_stmt sub lbl b)
  | Ast.If (e, a, b) ->
      Ast.If (subst_expr sub e, subst_stmt sub lbl a, subst_stmt sub lbl b)
  | Ast.While (e, a) -> Ast.While (subst_expr sub e, subst_stmt sub lbl a)
  | Ast.Label l -> Ast.Label (lbl l)
  | Ast.Goto l -> Ast.Goto (lbl l)
  | Ast.Cond_goto (e, l) -> Ast.Cond_goto (subst_expr sub e, lbl l)
  | Ast.Call (f, args) -> Ast.Call (f, List.map sub args)
  | Ast.Case (e, arms, default) ->
      Ast.Case
        ( subst_expr sub e,
          List.map (fun (k, s') -> (k, subst_stmt sub lbl s')) arms,
          subst_stmt sub lbl default )

(* Multi-way branches (paper, footnote 3) lower to a fresh temporary and
   a chain of binary forks; the temporary name contains '$' so it cannot
   collide with source variables.  Temporaries are numbered locally per
   [flatten] call, so repeated flattening of the same program yields the
   same names (layout and token universes depend on this). *)
let desugar_case (t : Ast.var) (e : Ast.expr) (arms : (int * Ast.stmt) list)
    (default : Ast.stmt) : Ast.stmt =
  let chain =
    List.fold_right
      (fun (k, s') rest ->
        Ast.If (Ast.Binop (Ast.Eq, Ast.Var t, Ast.Int k), s', rest))
      arms default
  in
  Ast.Seq (Ast.Assign (Ast.Lvar t, e), chain)

(** [flatten p] lowers a structured program to flat form.  [If] and
    [While] become branches and labels; [Label]/[Goto]/[Cond_goto] pass
    through.  The result always ends with a fallthrough to the implicit
    program end. *)
let flatten (p : Ast.program) : t =
  let buf = ref [] in
  let emit instr = buf := instr :: !buf in
  let counter = ref 0 in
  let case_counter = ref 0 in
  let rec go (active : string list) (s : Ast.stmt) : unit =
    let go = go active in
    match s with
    | Ast.Call (f, args) ->
        if List.mem f active then raise (Recursive_call f);
        let proc =
          match List.find_opt (fun pr -> pr.Ast.pname = f) p.Ast.procs with
          | Some pr -> pr
          | None -> raise (Invalid ("undefined procedure " ^ f))
        in
        if List.length args <> List.length proc.Ast.params then
          raise (Invalid ("arity mismatch calling " ^ f));
        incr counter;
        let n = !counter in
        let binding = List.combine proc.Ast.params args in
        let sub x =
          match List.assoc_opt x binding with Some a -> a | None -> x
        in
        let lbl l = Fmt.str "%s$%s%d" l f n in
        go_in (f :: active) (subst_stmt sub lbl proc.Ast.pbody)
    | Ast.Skip -> ()
    | Ast.Assign (lv, e) -> emit (Assign (lv, e))
    | Ast.Seq (a, b) ->
        go a;
        go b
    | Ast.If (e, a, b) ->
        let lt = fresh_label "then"
        and lf = fresh_label "else"
        and lj = fresh_label "fi" in
        emit (Branch (e, lt, lf));
        emit (Label lt);
        go a;
        emit (Goto lj);
        emit (Label lf);
        go b;
        emit (Label lj)
    | Ast.While (e, a) ->
        let lh = fresh_label "head"
        and lb = fresh_label "body"
        and lx = fresh_label "done" in
        emit (Label lh);
        emit (Branch (e, lb, lx));
        emit (Label lb);
        go a;
        emit (Goto lh);
        emit (Label lx)
    | Ast.Label l -> emit (Label l)
    | Ast.Goto l -> emit (Goto l)
    | Ast.Cond_goto (e, l) ->
        let lnext = fresh_label "next" in
        emit (Branch (e, l, lnext));
        emit (Label lnext)
    | Ast.Case (e, arms, default) ->
        incr case_counter;
        go (desugar_case (Fmt.str "case$%d" !case_counter) e arms default)
  and go_in active s = go active s in
  go [] p.Ast.body;
  {
    arrays = p.Ast.arrays;
    equiv = p.Ast.equiv;
    may_alias = p.Ast.may_alias;
    code = Array.of_list (List.rev !buf);
  }

(** [label_table t] maps each label to its instruction index.
    @raise Invalid on duplicate labels. *)
let label_table (t : t) : (Ast.label, int) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun i instr ->
      match instr with
      | Label l ->
          if Hashtbl.mem tbl l then raise (Invalid ("duplicate label " ^ l));
          Hashtbl.replace tbl l i
      | Assign _ | Goto _ | Branch _ -> ())
    t.code;
  tbl

(** [validate t] checks that every branch target is a defined label.
    @raise Invalid otherwise. *)
let validate (t : t) : unit =
  let tbl = label_table t in
  let check l =
    if not (Hashtbl.mem tbl l) then raise (Invalid ("undefined label " ^ l))
  in
  Array.iter
    (function
      | Goto l -> check l
      | Branch (_, lt, lf) ->
          check lt;
          check lf
      | Assign _ | Label _ -> ())
    t.code

(** All variables mentioned anywhere in the flat program, sorted. *)
let vars (t : t) : Ast.var list =
  let acc = ref [] in
  let add_list l = acc := l @ !acc in
  add_list (List.map fst t.arrays);
  List.iter (fun (a, b) -> add_list [ a; b ]) t.equiv;
  List.iter (fun (a, b) -> add_list [ a; b ]) t.may_alias;
  Array.iter
    (function
      | Assign (lv, e) -> acc := Ast.vars_lvalue lv (Ast.vars_expr e !acc)
      | Branch (p, _, _) -> acc := Ast.vars_expr p !acc
      | Goto _ | Label _ -> ())
    t.code;
  List.sort_uniq compare !acc

(** [to_program t] re-embeds a flat program as a structured-AST program
    whose body is a sequence of flat statements (labels, gotos and
    conditional gotos).  Useful for pretty-printing and layout. *)
let to_program (t : t) : Ast.program =
  let stmt_of = function
    | Assign (lv, e) -> Ast.Assign (lv, e)
    | Goto l -> Ast.Goto l
    | Branch (p, lt, lf) ->
        Ast.Seq (Ast.Cond_goto (p, lt), Ast.Goto lf)
    | Label l -> Ast.Label l
  in
  {
    Ast.arrays = t.arrays;
    Ast.equiv = t.equiv;
    Ast.may_alias = t.may_alias;
    Ast.procs = [];
    Ast.body = Ast.seq (Array.to_list (Array.map stmt_of t.code));
  }
