(** Flattened (unstructured) program form — the textual counterpart of
    the paper's statement-level CFG: assignments, labels (join points),
    binary branches and gotos.  Structured programs lower here (with
    procedure calls expanded by inlining); goto programs pass through. *)

type instr =
  | Assign of Ast.lvalue * Ast.expr
  | Goto of Ast.label
  | Branch of Ast.expr * Ast.label * Ast.label
      (** if predicate then goto first else goto second *)
  | Label of Ast.label  (** a join point; no computation *)

type t = {
  arrays : (Ast.var * int) list;
  equiv : (Ast.var * Ast.var) list;
  may_alias : (Ast.var * Ast.var) list;
  code : instr array;
}

exception Invalid of string

exception Recursive_call of string
(** Procedures are expanded by inlining; recursion cannot be expanded
    (also rejected statically by {!Typecheck.check_program}). *)

val pp_instr : Format.formatter -> instr -> unit
val pp : Format.formatter -> t -> unit

(** [desugar_case t e arms default] — the footnote-3 lowering: bind the
    scrutinee to temporary [t] and chain binary equality forks.
    [flatten] names the temporaries [case$1], [case$2], ... locally per
    call, so repeated flattening is deterministic. *)
val desugar_case :
  Ast.var -> Ast.expr -> (int * Ast.stmt) list -> Ast.stmt -> Ast.stmt

(** [flatten p] lowers a structured program, inlining every procedure
    call with by-reference parameter substitution and per-expansion
    label freshening.
    @raise Invalid on undefined procedures or arity mismatches.
    @raise Recursive_call on (mutually) recursive calls. *)
val flatten : Ast.program -> t

(** Label -> instruction index. @raise Invalid on duplicates. *)
val label_table : t -> (Ast.label, int) Hashtbl.t

(** Check that every branch target is defined. @raise Invalid. *)
val validate : t -> unit

(** All variables mentioned anywhere, sorted. *)
val vars : t -> Ast.var list

(** Re-embed as a structured-AST program (labels/gotos as statements). *)
val to_program : t -> Ast.program
