(** Memory layout: mapping variable names to addresses.

    Run-time aliasing ([equiv] declarations) is realised here, FORTRAN
    EQUIVALENCE-style: equivalent names are unioned and share a base
    address; the shared block is as large as the largest member.  The
    compile-time alias structure (see {!Alias} in the analysis library) is a
    conservative over-approximation of this layout; translation schemas are
    correct for {e any} layout consistent with the declared structure. *)

type t = {
  vars : string array;  (** all program variables, sorted *)
  base : (string, int) Hashtbl.t;  (** name -> base address *)
  extent : (string, int) Hashtbl.t;  (** name -> declared extent (1 = scalar) *)
  words : int;  (** total number of memory cells *)
}

(* Union-find over variable names, used to group equivalent names. *)
let rec find parent x =
  let p = Hashtbl.find parent x in
  if p = x then x
  else begin
    let r = find parent p in
    Hashtbl.replace parent x r;
    r
  end

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then Hashtbl.replace parent ra rb

(** [of_vars ~vars p] computes the layout over an explicit variable set
    (callers pass the flattened program's variables so lowering
    temporaries get cells too). *)
let of_vars ~(vars : string list) (p : Ast.program) : t =
  let vars = Array.of_list (List.sort_uniq compare vars) in
  let parent = Hashtbl.create 16 in
  Array.iter (fun x -> Hashtbl.replace parent x x) vars;
  List.iter
    (fun (a, b) ->
      if Hashtbl.mem parent a && Hashtbl.mem parent b then union parent a b)
    p.equiv;
  let extent = Hashtbl.create 16 in
  Array.iter
    (fun x ->
      let e = if Ast.is_array p x then Ast.array_size p x else 1 in
      if e < 1 then invalid_arg (Fmt.str "array %s has extent %d" x e);
      Hashtbl.replace extent x e)
    vars;
  (* Block extent of a class = max extent of its members. *)
  let class_extent = Hashtbl.create 16 in
  Array.iter
    (fun x ->
      let r = find parent x in
      let cur = try Hashtbl.find class_extent r with Not_found -> 0 in
      Hashtbl.replace class_extent r (max cur (Hashtbl.find extent x)))
    vars;
  let base = Hashtbl.create 16 in
  let next = ref 0 in
  let class_base = Hashtbl.create 16 in
  Array.iter
    (fun x ->
      let r = find parent x in
      let b =
        match Hashtbl.find_opt class_base r with
        | Some b -> b
        | None ->
            let b = !next in
            next := b + Hashtbl.find class_extent r;
            Hashtbl.replace class_base r b;
            b
      in
      Hashtbl.replace base x b)
    vars;
  { vars; base; extent; words = !next }

(** [of_program p] computes the layout of [p]: every equivalence class of
    [p.equiv] is assigned one block of cells, all other variables get
    private cells; the variable set is taken from the {e flattened}
    program, so procedure locals and case-lowering temporaries are
    included.  All cells start at 0. *)
let of_program (p : Ast.program) : t =
  of_vars ~vars:(Flat.vars (Flat.flatten p)) p

(** [base_of t x] is the address of the first cell of [x]. *)
let base_of (t : t) (x : string) : int =
  match Hashtbl.find_opt t.base x with
  | Some b -> b
  | None -> invalid_arg ("Layout.base_of: unknown variable " ^ x)

(** [extent_of t x] is the number of cells of [x] (1 for scalars). *)
let extent_of (t : t) (x : string) : int =
  match Hashtbl.find_opt t.extent x with
  | Some e -> e
  | None -> invalid_arg ("Layout.extent_of: unknown variable " ^ x)

(** [addr t x i] is the address of element [i] of [x].  Indices are reduced
    into range by a non-negative modulo of the extent, the language's total
    indexing rule. *)
let addr (t : t) (x : string) (i : int) : int =
  let e = extent_of t x in
  let i = ((i mod e) + e) mod e in
  base_of t x + i

(** [shares_storage t x y] holds iff [x] and [y] overlap in memory. *)
let shares_storage (t : t) (x : string) (y : string) : bool =
  let bx = base_of t x and by = base_of t y in
  let ex = extent_of t x and ey = extent_of t y in
  bx < by + ey && by < bx + ex
