(** Memory layout: variable names to addresses.  Run-time aliasing
    ([equiv] declarations) is realised FORTRAN-EQUIVALENCE-style:
    equivalent names are unioned onto one block as large as the largest
    member.  The compile-time alias structure over-approximates this;
    translation schemas are correct for any layout consistent with it. *)

type t = {
  vars : string array;  (** all program variables, sorted *)
  base : (string, int) Hashtbl.t;
  extent : (string, int) Hashtbl.t;  (** 1 = scalar *)
  words : int;  (** total number of memory cells *)
}

(** Layout of a program: one block per equivalence class, private cells
    otherwise. *)
val of_program : Ast.program -> t

(** Address of the first cell of a variable. *)
val base_of : t -> string -> int

(** Number of cells (1 for scalars). *)
val extent_of : t -> string -> int

(** [addr t x i] — address of element [i]; indices reduce modulo the
    extent (the language's total indexing rule). *)
val addr : t -> string -> int -> int

(** Do two names overlap in memory? *)
val shares_storage : t -> string -> string -> bool
