(** Hand-written lexer for IMP concrete syntax. *)

type token =
  | IDENT of string
  | INT of int
  | ARRAY
  | EQUIV
  | MAYALIAS
  | SKIP
  | IF
  | THEN
  | ELSE
  | END
  | WHILE
  | DO
  | GOTO
  | PROC
  | CALL
  | CASE
  | WHEN
  | COMMA
  | TRUE
  | FALSE
  | NOT
  | AND
  | OR
  | ASSIGN  (** [:=] *)
  | COLON
  | SEMI
  | LBRACK
  | RBRACK
  | LPAREN
  | RPAREN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | EOF

exception Error of string * int  (** message, character offset *)

let token_to_string = function
  | IDENT s -> Fmt.str "identifier %S" s
  | INT n -> Fmt.str "integer %d" n
  | ARRAY -> "'array'"
  | EQUIV -> "'equiv'"
  | MAYALIAS -> "'mayalias'"
  | SKIP -> "'skip'"
  | IF -> "'if'"
  | THEN -> "'then'"
  | ELSE -> "'else'"
  | END -> "'end'"
  | WHILE -> "'while'"
  | DO -> "'do'"
  | GOTO -> "'goto'"
  | PROC -> "'proc'"
  | CALL -> "'call'"
  | CASE -> "'case'"
  | WHEN -> "'when'"
  | COMMA -> "','"
  | TRUE -> "'true'"
  | FALSE -> "'false'"
  | NOT -> "'not'"
  | AND -> "'and'"
  | OR -> "'or'"
  | ASSIGN -> "':='"
  | COLON -> "':'"
  | SEMI -> "';'"
  | LBRACK -> "'['"
  | RBRACK -> "']'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EQEQ -> "'=='"
  | NE -> "'!='"
  | EOF -> "end of input"

let keyword_of_string = function
  | "array" -> Some ARRAY
  | "equiv" -> Some EQUIV
  | "mayalias" -> Some MAYALIAS
  | "skip" -> Some SKIP
  | "if" -> Some IF
  | "then" -> Some THEN
  | "else" -> Some ELSE
  | "end" -> Some END
  | "while" -> Some WHILE
  | "do" -> Some DO
  | "goto" -> Some GOTO
  | "proc" -> Some PROC
  | "call" -> Some CALL
  | "case" -> Some CASE
  | "when" -> Some WHEN
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | "not" -> Some NOT
  | "and" -> Some AND
  | "or" -> Some OR
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** [tokenize s] lexes the whole input, producing tokens paired with their
    start offsets; the list always ends with [EOF].  Comments run from ['#']
    to end of line.
    @raise Error on an unexpected character. *)
let tokenize (s : string) : (token * int) list =
  let n = String.length s in
  let out = ref [] in
  let emit pos tok = out := (tok, pos) :: !out in
  let rec go i =
    if i >= n then emit i EOF
    else
      let c = s.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1)
      else if c = '#' then
        let rec skip j = if j < n && s.[j] <> '\n' then skip (j + 1) else j in
        go (skip i)
      else if is_ident_start c then begin
        let rec scan j = if j < n && is_ident_char s.[j] then scan (j + 1) else j in
        let j = scan i in
        let word = String.sub s i (j - i) in
        (match keyword_of_string word with
        | Some kw -> emit i kw
        | None -> emit i (IDENT word));
        go j
      end
      else if is_digit c then begin
        let rec scan j = if j < n && is_digit s.[j] then scan (j + 1) else j in
        let j = scan i in
        emit i (INT (int_of_string (String.sub s i (j - i))));
        go j
      end
      else
        let two = if i + 1 < n then String.sub s i 2 else "" in
        match two with
        | ":=" ->
            emit i ASSIGN;
            go (i + 2)
        | "<=" ->
            emit i LE;
            go (i + 2)
        | ">=" ->
            emit i GE;
            go (i + 2)
        | "==" ->
            emit i EQEQ;
            go (i + 2)
        | "!=" ->
            emit i NE;
            go (i + 2)
        | _ -> (
            let one tok =
              emit i tok;
              go (i + 1)
            in
            match c with
            | ':' -> one COLON
            | ';' -> one SEMI
            | ',' -> one COMMA
            | '[' -> one LBRACK
            | ']' -> one RBRACK
            | '(' -> one LPAREN
            | ')' -> one RPAREN
            | '+' -> one PLUS
            | '-' -> one MINUS
            | '*' -> one STAR
            | '/' -> one SLASH
            | '%' -> one PERCENT
            | '<' -> one LT
            | '>' -> one GT
            | _ -> raise (Error (Fmt.str "unexpected character %C" c, i)))
  in
  go 0;
  List.rev !out
