(** A flat, multiply-writable store of integer cells.

    This is the {e imperative} memory the paper insists dataflow execution
    must support (Section 2.2): locations can be written any number of
    times, so the result of a read depends on operation order.  Both the
    reference interpreters and the dataflow machine operate on this exact
    structure (the machine adds latency and split-phase access on top), so
    final stores are directly comparable in differential tests. *)

type t = {
  layout : Layout.t;
  cells : int array;
}

(** [create layout] is a zero-initialised memory for [layout]. *)
let create (layout : Layout.t) : t =
  { layout; cells = Array.make (max 1 layout.Layout.words) 0 }

let copy (t : t) : t = { t with cells = Array.copy t.cells }

(** [read_addr t a] reads cell [a] directly. *)
let read_addr (t : t) (a : int) : int = t.cells.(a)

(** [write_addr t a v] writes cell [a] directly. *)
let write_addr (t : t) (a : int) (v : int) : unit = t.cells.(a) <- v

(** [read t x i] reads element [i] of variable [x] (scalars: [i = 0]). *)
let read (t : t) (x : string) (i : int) : int =
  t.cells.(Layout.addr t.layout x i)

(** [write t x i v] writes element [i] of variable [x]. *)
let write (t : t) (x : string) (i : int) (v : int) : unit =
  t.cells.(Layout.addr t.layout x i) <- v

(** [equal a b] compares cell contents (layouts must match in shape). *)
let equal (a : t) (b : t) : bool = a.cells = b.cells

(** [equal_observable a b] compares only source-level variables --
    compiler-introduced temporaries (names containing ['$'], e.g. the
    case-lowering scrutinee bindings) are ignored.  Used when comparing
    interpreters that lower differently. *)
let equal_observable (a : t) (b : t) : bool =
  Array.for_all
    (fun x ->
      String.contains x '$'
      ||
      let e = Layout.extent_of a.layout x in
      let rec eq i = i >= e || (read a x i = read b x i && eq (i + 1)) in
      eq 0)
    a.layout.Layout.vars

(** [dump t] lists every cell as [(address, value)]; for error messages. *)
let dump (t : t) : (int * int) list =
  Array.to_list (Array.mapi (fun i v -> (i, v)) t.cells)

(** [dump_vars t] lists [(variable, index, value)] for every element of
    every variable, the human-readable view of the final store. *)
let dump_vars (t : t) : (string * int * int) list =
  Array.to_list t.layout.Layout.vars
  |> List.concat_map (fun x ->
         List.init (Layout.extent_of t.layout x) (fun i -> (x, i, read t x i)))

let pp ppf (t : t) =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list (fun ppf (x, i, v) ->
         if Layout.extent_of t.layout x = 1 then Fmt.pf ppf "%s = %d" x v
         else Fmt.pf ppf "%s[%d] = %d" x i v))
    (dump_vars t)
