(** A flat, multiply-writable store of integer cells — the imperative
    memory the paper insists dataflow execution must support (Section
    2.2).  The reference interpreters and the dataflow machine operate
    on this same structure, so final stores are directly comparable. *)

type t = {
  layout : Layout.t;
  cells : int array;
}

(** Zero-initialised memory for a layout. *)
val create : Layout.t -> t

val copy : t -> t
val read_addr : t -> int -> int
val write_addr : t -> int -> int -> unit

(** [read t x i] — element [i] of variable [x] (scalars: [i = 0]). *)
val read : t -> string -> int -> int

val write : t -> string -> int -> int -> unit

(** Cell-content equality. *)
val equal : t -> t -> bool

(** Equality over source-level variables only: compiler temporaries
    (names containing ['$']) are ignored.  For comparing interpreters
    that lower differently. *)
val equal_observable : t -> t -> bool

val dump : t -> (int * int) list
val dump_vars : t -> (string * int * int) list
val pp : Format.formatter -> t -> unit
