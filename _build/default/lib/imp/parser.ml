(** Recursive-descent parser for IMP concrete syntax.

    Grammar (semicolons between statements are optional; ['#'] starts a
    line comment):
    {v
    program  ::= decl* stmts EOF
    decl     ::= "array" ident "[" int "]" [";"]
               | "equiv" ident ident [";"]
               | "mayalias" ident ident [";"]
    stmts    ::= (stmt [";"])*
    stmt     ::= "skip"
               | ident ":=" expr
               | ident "[" expr "]" ":=" expr
               | ident ":"                      (label definition)
               | "goto" ident
               | "if" expr "goto" ident
               | "if" expr "then" stmts ["else" stmts] "end"
               | "while" expr "do" stmts "end"
    expr     ::= or-expr with usual precedence:
                 or < and < comparisons < +,- < *,/,% < unary
    atom     ::= int | "true" | "false" | ident | ident "[" expr "]"
               | "(" expr ")"
    v} *)

exception Error of string

type state = {
  mutable toks : (Lexer.token * int) list;
  input : string;
}

let line_of (input : string) (pos : int) : int =
  let line = ref 1 in
  String.iteri (fun i c -> if i < pos && c = '\n' then incr line) input;
  !line

let fail st msg =
  let pos = match st.toks with (_, p) :: _ -> p | [] -> 0 in
  raise (Error (Fmt.str "line %d: %s" (line_of st.input pos) msg))

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Lexer.EOF

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Fmt.str "expected %s, found %s"
         (Lexer.token_to_string tok)
         (Lexer.token_to_string (peek st)))

let ident st =
  match peek st with
  | Lexer.IDENT x ->
      advance st;
      x
  | t -> fail st (Fmt.str "expected identifier, found %s" (Lexer.token_to_string t))

let integer st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      n
  | t -> fail st (Fmt.str "expected integer, found %s" (Lexer.token_to_string t))

(* --- expressions --------------------------------------------------- *)

let rec expr st : Ast.expr = or_expr st

and or_expr st =
  let rec loop acc =
    if peek st = Lexer.OR then begin
      advance st;
      loop (Ast.Binop (Ast.Or, acc, and_expr st))
    end
    else acc
  in
  loop (and_expr st)

and and_expr st =
  let rec loop acc =
    if peek st = Lexer.AND then begin
      advance st;
      loop (Ast.Binop (Ast.And, acc, cmp_expr st))
    end
    else acc
  in
  loop (cmp_expr st)

and cmp_expr st =
  let lhs = add_expr st in
  let op =
    match peek st with
    | Lexer.LT -> Some Ast.Lt
    | Lexer.LE -> Some Ast.Le
    | Lexer.GT -> Some Ast.Gt
    | Lexer.GE -> Some Ast.Ge
    | Lexer.EQEQ -> Some Ast.Eq
    | Lexer.NE -> Some Ast.Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Ast.Binop (op, lhs, add_expr st)

and add_expr st =
  let rec loop acc =
    match peek st with
    | Lexer.PLUS ->
        advance st;
        loop (Ast.Binop (Ast.Add, acc, mul_expr st))
    | Lexer.MINUS ->
        advance st;
        loop (Ast.Binop (Ast.Sub, acc, mul_expr st))
    | _ -> acc
  in
  loop (mul_expr st)

and mul_expr st =
  let rec loop acc =
    match peek st with
    | Lexer.STAR ->
        advance st;
        loop (Ast.Binop (Ast.Mul, acc, unary_expr st))
    | Lexer.SLASH ->
        advance st;
        loop (Ast.Binop (Ast.Div, acc, unary_expr st))
    | Lexer.PERCENT ->
        advance st;
        loop (Ast.Binop (Ast.Mod, acc, unary_expr st))
    | _ -> acc
  in
  loop (unary_expr st)

and unary_expr st =
  match peek st with
  | Lexer.MINUS ->
      advance st;
      Ast.Unop (Ast.Neg, unary_expr st)
  | Lexer.NOT ->
      advance st;
      Ast.Unop (Ast.Not, unary_expr st)
  | _ -> atom st

and atom st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      Ast.Int n
  | Lexer.TRUE ->
      advance st;
      Ast.Bool true
  | Lexer.FALSE ->
      advance st;
      Ast.Bool false
  | Lexer.LPAREN ->
      advance st;
      let e = expr st in
      expect st Lexer.RPAREN;
      e
  | Lexer.IDENT x ->
      advance st;
      if peek st = Lexer.LBRACK then begin
        advance st;
        let e = expr st in
        expect st Lexer.RBRACK;
        Ast.Index (x, e)
      end
      else Ast.Var x
  | t -> fail st (Fmt.str "expected expression, found %s" (Lexer.token_to_string t))

(* --- statements ---------------------------------------------------- *)

let rec stmt st : Ast.stmt =
  match peek st with
  | Lexer.SKIP ->
      advance st;
      Ast.Skip
  | Lexer.GOTO ->
      advance st;
      Ast.Goto (ident st)
  | Lexer.IF ->
      advance st;
      let p = expr st in
      (match peek st with
      | Lexer.GOTO ->
          advance st;
          Ast.Cond_goto (p, ident st)
      | Lexer.THEN ->
          advance st;
          let then_branch = stmts st in
          let else_branch =
            if peek st = Lexer.ELSE then begin
              advance st;
              stmts st
            end
            else Ast.Skip
          in
          expect st Lexer.END;
          Ast.If (p, then_branch, else_branch)
      | t ->
          fail st
            (Fmt.str "expected 'then' or 'goto' after condition, found %s"
               (Lexer.token_to_string t)))
  | Lexer.WHILE ->
      advance st;
      let p = expr st in
      expect st Lexer.DO;
      let body = stmts st in
      expect st Lexer.END;
      Ast.While (p, body)
  | Lexer.CASE ->
      advance st;
      let scrutinee = expr st in
      let rec arms acc =
        if peek st = Lexer.WHEN then begin
          advance st;
          let k =
            match peek st with
            | Lexer.MINUS ->
                advance st;
                -integer st
            | _ -> integer st
          in
          expect st Lexer.THEN;
          let s = stmts st in
          arms ((k, s) :: acc)
        end
        else List.rev acc
      in
      let arms = arms [] in
      let default =
        if peek st = Lexer.ELSE then begin
          advance st;
          stmts st
        end
        else Ast.Skip
      in
      expect st Lexer.END;
      Ast.Case (scrutinee, arms, default)
  | Lexer.CALL ->
      advance st;
      let f = ident st in
      expect st Lexer.LPAREN;
      let rec args acc =
        if peek st = Lexer.RPAREN then List.rev acc
        else begin
          let a = ident st in
          if peek st = Lexer.COMMA then advance st;
          args (a :: acc)
        end
      in
      let a = args [] in
      expect st Lexer.RPAREN;
      Ast.Call (f, a)
  | Lexer.IDENT x -> (
      advance st;
      match peek st with
      | Lexer.COLON ->
          advance st;
          Ast.Label x
      | Lexer.ASSIGN ->
          advance st;
          Ast.Assign (Ast.Lvar x, expr st)
      | Lexer.LBRACK ->
          advance st;
          let idx = expr st in
          expect st Lexer.RBRACK;
          expect st Lexer.ASSIGN;
          Ast.Assign (Ast.Lindex (x, idx), expr st)
      | t ->
          fail st
            (Fmt.str "expected ':=', '[' or ':' after %s, found %s" x
               (Lexer.token_to_string t)))
  | t -> fail st (Fmt.str "expected statement, found %s" (Lexer.token_to_string t))

(* A statement list runs until ELSE/END/EOF; semicolons are skipped. *)
and stmts st : Ast.stmt =
  let rec loop acc =
    while peek st = Lexer.SEMI do
      advance st
    done;
    match peek st with
    | Lexer.ELSE | Lexer.END | Lexer.EOF | Lexer.WHEN -> Ast.seq (List.rev acc)
    | _ -> loop (stmt st :: acc)
  in
  loop []

let rec parse_proc st : Ast.proc =
  expect st Lexer.PROC;
  let pname = ident st in
  expect st Lexer.LPAREN;
  let rec params acc =
    if peek st = Lexer.RPAREN then List.rev acc
    else begin
      let x = ident st in
      if peek st = Lexer.COMMA then advance st;
      params (x :: acc)
    end
  in
  let params = params [] in
  expect st Lexer.RPAREN;
  let pbody = stmts st in
  expect st Lexer.END;
  { Ast.pname; params; pbody }

and decls st =
  let arrays = ref [] and equiv = ref [] and may_alias = ref [] in
  let procs = ref [] in
  let rec loop () =
    (match peek st with
    | Lexer.PROC ->
        procs := parse_proc st :: !procs;
        continue ()
    | Lexer.ARRAY ->
        advance st;
        let x = ident st in
        expect st Lexer.LBRACK;
        let n = integer st in
        expect st Lexer.RBRACK;
        arrays := (x, n) :: !arrays;
        continue ()
    | Lexer.EQUIV ->
        advance st;
        let a = ident st in
        let b = ident st in
        equiv := (a, b) :: !equiv;
        continue ()
    | Lexer.MAYALIAS ->
        advance st;
        let a = ident st in
        let b = ident st in
        may_alias := (a, b) :: !may_alias;
        continue ()
    | _ -> ())
  and continue () =
    while peek st = Lexer.SEMI do
      advance st
    done;
    loop ()
  in
  while peek st = Lexer.SEMI do
    advance st
  done;
  loop ();
  (List.rev !arrays, List.rev !equiv, List.rev !may_alias, List.rev !procs)

(** [program_of_string src] parses and type-checks a complete program.
    @raise Error on a syntax error.
    @raise Typecheck.Error on a type error. *)
let program_of_string (src : string) : Ast.program =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error (msg, pos) ->
      raise (Error (Fmt.str "line %d: %s" (line_of src pos) msg))
  in
  let st = { toks; input = src } in
  let arrays, equiv, may_alias, procs = decls st in
  let body = stmts st in
  expect st Lexer.EOF;
  let p = { Ast.arrays; equiv; may_alias; procs; body } in
  Typecheck.check_program p;
  p

(** [expr_of_string src] parses a single expression (for tests and the
    CLI). *)
let expr_of_string (src : string) : Ast.expr =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error (msg, pos) ->
      raise (Error (Fmt.str "line %d: %s" (line_of src pos) msg))
  in
  let st = { toks; input = src } in
  let e = expr st in
  expect st Lexer.EOF;
  e

(** [flat_of_string src] parses a program and lowers it to flat form,
    validating labels. *)
let flat_of_string (src : string) : Flat.t =
  let p = program_of_string src in
  let f = Flat.flatten p in
  Flat.validate f;
  f
