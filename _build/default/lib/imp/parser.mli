(** Recursive-descent parser for IMP concrete syntax.

    Grammar sketch (semicolons optional; ['#'] starts a line comment):
    {v
    program  ::= decl* stmts
    decl     ::= "array" id "[" int "]" | "equiv" id id | "mayalias" id id
    stmt     ::= "skip" | id ":=" expr | id "[" expr "]" ":=" expr
               | id ":" | "goto" id | "if" expr "goto" id
               | "if" expr "then" stmts ["else" stmts] "end"
               | "while" expr "do" stmts "end"
    expr     ::= usual precedence: or < and < comparisons < +,- < *,/,%
    v} *)

exception Error of string

(** Parse and type-check a complete program.
    @raise Error on a syntax error.
    @raise Typecheck.Error on a type error. *)
val program_of_string : string -> Ast.program

(** Parse a single expression. *)
val expr_of_string : string -> Ast.expr

(** Parse, lower to flat form, validate labels. *)
val flat_of_string : string -> Flat.t
