(** Pretty-printing of IMP programs.

    The output is valid concrete syntax: [Parser.program_of_string] parses
    everything this module prints (round-trip tested). *)

let binop_string : Ast.binop -> string = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.And -> "and"
  | Ast.Or -> "or"

(* Operator precedence, mirroring the parser: higher binds tighter. *)
let binop_prec : Ast.binop -> int = function
  | Ast.Or -> 1
  | Ast.And -> 2
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> 3
  | Ast.Add | Ast.Sub -> 4
  | Ast.Mul | Ast.Div | Ast.Mod -> 5

let rec pp_expr_prec (prec : int) ppf (e : Ast.expr) =
  match e with
  | Ast.Int n -> if n < 0 then Fmt.pf ppf "(%d)" n else Fmt.int ppf n
  | Ast.Bool b -> Fmt.bool ppf b
  | Ast.Var x -> Fmt.string ppf x
  | Ast.Index (x, e1) -> Fmt.pf ppf "%s[%a]" x (pp_expr_prec 0) e1
  | Ast.Binop (op, a, b) ->
      let p = binop_prec op in
      let body ppf () =
        (* left-associative: right child needs strictly higher precedence *)
        Fmt.pf ppf "%a %s %a" (pp_expr_prec p) a (binop_string op)
          (pp_expr_prec (p + 1)) b
      in
      if p < prec then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Ast.Unop (Ast.Neg, a) -> Fmt.pf ppf "(-%a)" (pp_expr_prec 6) a
  | Ast.Unop (Ast.Not, a) -> Fmt.pf ppf "(not %a)" (pp_expr_prec 6) a

(** Print an expression with minimal parentheses. *)
let pp_expr ppf e = pp_expr_prec 0 ppf e

let pp_lvalue ppf = function
  | Ast.Lvar x -> Fmt.string ppf x
  | Ast.Lindex (x, e) -> Fmt.pf ppf "%s[%a]" x pp_expr e

let rec pp_stmt ppf (s : Ast.stmt) =
  match s with
  | Ast.Skip -> Fmt.string ppf "skip"
  | Ast.Assign (lv, e) -> Fmt.pf ppf "%a := %a" pp_lvalue lv pp_expr e
  | Ast.Seq (a, b) -> Fmt.pf ppf "%a;@ %a" pp_stmt a pp_stmt b
  | Ast.If (e, a, Ast.Skip) ->
      Fmt.pf ppf "@[<v 2>if %a then@ %a@]@ end" pp_expr e pp_stmt a
  | Ast.If (e, a, b) ->
      Fmt.pf ppf "@[<v 2>if %a then@ %a@]@ @[<v 2>else@ %a@]@ end" pp_expr e
        pp_stmt a pp_stmt b
  | Ast.While (e, a) ->
      Fmt.pf ppf "@[<v 2>while %a do@ %a@]@ end" pp_expr e pp_stmt a
  | Ast.Label l -> Fmt.pf ppf "%s:" l
  | Ast.Goto l -> Fmt.pf ppf "goto %s" l
  | Ast.Cond_goto (e, l) -> Fmt.pf ppf "if %a goto %s" pp_expr e l
  | Ast.Call (f, args) ->
      Fmt.pf ppf "call %s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) args
  | Ast.Case (e, arms, default) ->
      Fmt.pf ppf "@[<v 2>case %a@ %a@ @[<v 2>else@ %a@]@]@ end" pp_expr e
        (Fmt.list ~sep:Fmt.cut (fun ppf (k, s) ->
             Fmt.pf ppf "@[<v 2>when %d then@ %a@]" k pp_stmt s))
        arms pp_stmt default

let pp_decls ppf (p : Ast.program) =
  List.iter (fun (x, n) -> Fmt.pf ppf "array %s[%d];@ " x n) p.Ast.arrays;
  List.iter (fun (a, b) -> Fmt.pf ppf "equiv %s %s;@ " a b) p.Ast.equiv;
  List.iter (fun (a, b) -> Fmt.pf ppf "mayalias %s %s;@ " a b) p.Ast.may_alias;
  List.iter
    (fun (pr : Ast.proc) ->
      Fmt.pf ppf "@[<v 2>proc %s(%a)@ %a@]@ end@ " pr.Ast.pname
        (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
        pr.Ast.params pp_stmt pr.Ast.pbody)
    p.Ast.procs

(** Print a complete program (declarations then body). *)
let pp_program ppf (p : Ast.program) =
  Fmt.pf ppf "@[<v>%a%a@]" pp_decls p pp_stmt p.Ast.body

let expr_to_string e = Fmt.str "%a" pp_expr e
let stmt_to_string s = Fmt.str "@[<v>%a@]" pp_stmt s
let program_to_string p = Fmt.str "%a" pp_program p
