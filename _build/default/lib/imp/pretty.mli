(** Pretty-printing of IMP programs.  The output is valid concrete
    syntax: {!Parser.program_of_string} parses everything printed here
    (round-trip tested). *)

val binop_string : Ast.binop -> string
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_lvalue : Format.formatter -> Ast.lvalue -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val program_to_string : Ast.program -> string
