(** Procedure-level aliasing analysis (paper, Section 5).

    The paper's alias structures originate in FORTRAN reference
    parameters: SUBROUTINE F(X,Y,Z) called as F(A,B,A) and F(C,D,D)
    makes X~Z and Y~Z possible but never X~Y.  This module derives that
    structure from a procedure's call sites, and can also
    {e instantiate} a procedure at one call site as a standalone program
    whose [equiv] declarations realise exactly that call's actual
    sharing.

    Together these support the separate-compilation scenario the paper
    is about: compile the procedure body {e once} against the derived
    may-alias structure (Schema 3), then execute that single dataflow
    graph against each call site's memory layout.  The test suite checks
    that the one graph reproduces the reference semantics at every call
    site. *)

(** [find p f] — the procedure named [f].
    @raise Not_found if undefined. *)
let find (p : Ast.program) (f : string) : Ast.proc =
  match List.find_opt (fun pr -> pr.Ast.pname = f) p.Ast.procs with
  | Some pr -> pr
  | None -> raise Not_found

(** [call_sites p f] — the argument vectors of every (transitively
    reachable) call of [f] in the program body and procedure bodies. *)
let call_sites (p : Ast.program) (f : string) : Ast.var list list =
  let rec of_stmt acc = function
    | Ast.Call (g, args) when g = f -> args :: acc
    | Ast.Call _ | Ast.Skip | Ast.Assign _ | Ast.Label _ | Ast.Goto _
    | Ast.Cond_goto _ ->
        acc
    | Ast.Seq (a, b) -> of_stmt (of_stmt acc a) b
    | Ast.If (_, a, b) -> of_stmt (of_stmt acc a) b
    | Ast.While (_, a) -> of_stmt acc a
    | Ast.Case (_, arms, default) ->
        List.fold_left
          (fun acc (_, s') -> of_stmt acc s')
          (of_stmt acc default) arms
  in
  let in_body = of_stmt [] p.Ast.body in
  List.fold_left
    (fun acc pr -> of_stmt acc pr.Ast.pbody)
    in_body p.Ast.procs
  |> List.rev

(** [param_aliases p f] — may-alias pairs among [f]'s parameters, derived
    from its call sites: parameters [i] and [j] may alias iff some call
    passes the same variable (or two [equiv]-related variables) for
    both.  This is precisely how the paper's Section 5 example obtains
    [X]~[Z] and [Y]~[Z] without [X]~[Y]. *)
let param_aliases (p : Ast.program) (f : string) : (string * string) list =
  let proc = find p f in
  let layout = Layout.of_program p in
  let related a b =
    (* actual sharing between argument names: equality or transitive
       equiv (arguments that the program never otherwise references have
       no cells yet; only name equality can relate them) *)
    a = b
    || Hashtbl.mem layout.Layout.base a
       && Hashtbl.mem layout.Layout.base b
       && Layout.shares_storage layout a b
  in
  let pairs = ref [] in
  List.iter
    (fun args ->
      if List.length args = List.length proc.Ast.params then
        List.iteri
          (fun i xi ->
            List.iteri
              (fun j xj ->
                if i < j && related (List.nth args i) (List.nth args j) then begin
                  let pair = (xi, xj) in
                  if not (List.mem pair !pairs) then pairs := pair :: !pairs
                end
                else ignore xj)
              proc.Ast.params)
          proc.Ast.params)
    (call_sites p f);
  List.rev !pairs

(** [standalone p f] — the procedure body as a compilable program: the
    parameters become free variables carrying the derived may-alias
    structure.  This is the "compile once" artefact of separate
    compilation; its dataflow graph must be correct for {e every} call
    site. *)
let standalone (p : Ast.program) (f : string) : Ast.program =
  let proc = find p f in
  {
    Ast.arrays = p.Ast.arrays;
    equiv = [];
    may_alias = p.Ast.may_alias @ param_aliases p f;
    procs = [];
    body = proc.Ast.pbody;
  }

(** [instantiate p f args] — the procedure body as a program whose
    [equiv] declarations bind each parameter to its argument by
    reference (repeated arguments thus really share storage), matching
    what executing [call f(args)] does.
    @raise Invalid_argument on arity mismatch. *)
let instantiate (p : Ast.program) (f : string) (args : Ast.var list) :
    Ast.program =
  let proc = find p f in
  if List.length args <> List.length proc.Ast.params then
    invalid_arg "Proc.instantiate: arity mismatch";
  {
    Ast.arrays = p.Ast.arrays;
    equiv = p.Ast.equiv @ List.combine proc.Ast.params args;
    may_alias = [];
    procs = [];
    body = proc.Ast.pbody;
  }
