(** Procedure-level aliasing (paper, Section 5's origin story).

    Alias structures come from FORTRAN reference parameters: SUBROUTINE
    F(X,Y,Z) called as F(A,B,A) and F(C,D,D) makes X~Z and Y~Z possible
    but never X~Y.  This module derives such structures from call sites
    and instantiates procedures at individual sites, supporting the
    separate-compilation scenario: compile the body once (Schema 3, the
    derived structure), execute the one graph against each call site's
    memory layout. *)

(** [find p f] — the procedure named [f]. @raise Not_found. *)
val find : Ast.program -> string -> Ast.proc

(** Argument vectors of every call of [f] in the program. *)
val call_sites : Ast.program -> string -> Ast.var list list

(** May-alias pairs among [f]'s parameters, derived from its call sites:
    parameters may alias iff some call passes the same (or storage-
    sharing) variable for both. *)
val param_aliases : Ast.program -> string -> (string * string) list

(** The body as a compilable program: parameters become free variables
    carrying the derived may-alias structure — the compile-once
    artefact. *)
val standalone : Ast.program -> string -> Ast.program

(** The body as a program whose [equiv] declarations bind each parameter
    to its argument by reference, matching what [call f(args)] does.
    @raise Invalid_argument on arity mismatch. *)
val instantiate : Ast.program -> string -> Ast.var list -> Ast.program
