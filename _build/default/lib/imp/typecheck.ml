(** A lightweight type checker for IMP.

    The discipline is minimal but load-bearing: every variable and array
    cell holds an integer; booleans arise only from comparisons and logical
    operators and may only be consumed by predicates ([if]/[while]/branch
    conditions) and logical operators.  Checking this up front means every
    interpreter -- reference and dataflow alike -- can run without dynamic
    type failures, which differential testing relies on. *)

type ty = Tint | Tbool

exception Error of string

let err fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let ty_to_string = function Tint -> "int" | Tbool -> "bool"

(** [infer_expr arrays e] is the type of [e].
    @raise Error on ill-typed expressions or misused array names. *)
let rec infer_expr (arrays : (string * int) list) (e : Ast.expr) : ty =
  match e with
  | Ast.Int _ -> Tint
  | Ast.Bool _ -> Tbool
  | Ast.Var x ->
      if List.mem_assoc x arrays then
        err "array %s used without a subscript" x
      else Tint
  | Ast.Index (x, e1) ->
      if not (List.mem_assoc x arrays) then
        err "scalar %s used with a subscript" x;
      expect arrays e1 Tint;
      Tint
  | Ast.Binop (op, a, b) -> (
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
          expect arrays a Tint;
          expect arrays b Tint;
          Tint
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
          expect arrays a Tint;
          expect arrays b Tint;
          Tbool
      | Ast.And | Ast.Or ->
          expect arrays a Tbool;
          expect arrays b Tbool;
          Tbool)
  | Ast.Unop (Ast.Neg, a) ->
      expect arrays a Tint;
      Tint
  | Ast.Unop (Ast.Not, a) ->
      expect arrays a Tbool;
      Tbool

and expect arrays e ty =
  let t = infer_expr arrays e in
  if t <> ty then
    err "expression %s has type %s, expected %s" (Pretty.expr_to_string e)
      (ty_to_string t) (ty_to_string ty)

let check_lvalue arrays (lv : Ast.lvalue) =
  match lv with
  | Ast.Lvar x ->
      if List.mem_assoc x arrays then err "assignment to whole array %s" x
  | Ast.Lindex (x, e) ->
      if not (List.mem_assoc x arrays) then
        err "subscripted assignment to scalar %s" x;
      expect arrays e Tint

let rec check_stmt ?(procs : Ast.proc list = []) arrays (s : Ast.stmt) =
  let check_stmt = check_stmt ~procs in
  match s with
  | Ast.Skip | Ast.Label _ | Ast.Goto _ -> ()
  | Ast.Call (f, args) -> (
      match List.find_opt (fun pr -> pr.Ast.pname = f) procs with
      | None -> err "call to undefined procedure %s" f
      | Some pr ->
          if List.length args <> List.length pr.Ast.params then
            err "procedure %s expects %d arguments, got %d" f
              (List.length pr.Ast.params) (List.length args);
          List.iter
            (fun a ->
              if List.mem_assoc a arrays then
                err "array %s passed to scalar parameter of %s" a f)
            args)
  | Ast.Assign (lv, e) ->
      check_lvalue arrays lv;
      expect arrays e Tint
  | Ast.Seq (a, b) ->
      check_stmt arrays a;
      check_stmt arrays b
  | Ast.If (e, a, b) ->
      expect arrays e Tbool;
      check_stmt arrays a;
      check_stmt arrays b
  | Ast.While (e, a) ->
      expect arrays e Tbool;
      check_stmt arrays a
  | Ast.Cond_goto (e, _) -> expect arrays e Tbool
  | Ast.Case (e, arms, default) ->
      expect arrays e Tint;
      let keys = List.map fst arms in
      if List.length (List.sort_uniq compare keys) <> List.length keys then
        err "duplicate case label";
      List.iter (fun (_, s') -> check_stmt arrays s') arms;
      check_stmt arrays default

(** [check_program p] checks [p] whole.  Also rejects [equiv]/[mayalias]
    declarations naming undeclared arrays inconsistently (an array may be
    equivalenced to a scalar; the scalar then denotes the first cell).
    @raise Error on the first violation found. *)
let check_program (p : Ast.program) : unit =
  let dup =
    List.sort compare (List.map fst p.Ast.arrays)
    |> fun l ->
    let rec first_dup = function
      | a :: (b :: _ as r) -> if a = b then Some a else first_dup r
      | _ -> None
    in
    first_dup l
  in
  (match dup with Some x -> err "array %s declared twice" x | None -> ());
  (* procedures: distinct names, distinct scalar parameters, well-typed
     bodies, and an acyclic call graph (inlining cannot expand
     recursion) *)
  let pnames = List.map (fun pr -> pr.Ast.pname) p.Ast.procs in
  if List.length (List.sort_uniq compare pnames) <> List.length pnames then
    err "a procedure is defined twice";
  List.iter
    (fun (pr : Ast.proc) ->
      if
        List.length (List.sort_uniq compare pr.Ast.params)
        <> List.length pr.Ast.params
      then err "procedure %s has duplicate parameters" pr.Ast.pname;
      List.iter
        (fun x ->
          if List.mem_assoc x p.Ast.arrays then
            err "procedure %s parameter %s collides with an array" pr.Ast.pname
              x)
        pr.Ast.params;
      check_stmt ~procs:p.Ast.procs p.Ast.arrays pr.Ast.pbody)
    p.Ast.procs;
  (* acyclic call graph *)
  let rec calls_of acc = function
    | Ast.Call (f, _) -> f :: acc
    | Ast.Seq (a, b) -> calls_of (calls_of acc a) b
    | Ast.If (_, a, b) -> calls_of (calls_of acc a) b
    | Ast.While (_, a) -> calls_of acc a
    | Ast.Case (_, arms, default) ->
        List.fold_left
          (fun acc (_, s') -> calls_of acc s')
          (calls_of acc default) arms
    | Ast.Skip | Ast.Assign _ | Ast.Label _ | Ast.Goto _ | Ast.Cond_goto _ ->
        acc
  in
  let callees f =
    match List.find_opt (fun pr -> pr.Ast.pname = f) p.Ast.procs with
    | Some pr -> calls_of [] pr.Ast.pbody
    | None -> []
  in
  let rec dfs path f =
    if List.mem f path then err "recursive procedure %s (inlining cannot expand recursion)" f;
    List.iter (dfs (f :: path)) (callees f)
  in
  List.iter (fun (pr : Ast.proc) -> dfs [] pr.Ast.pname) p.Ast.procs;
  check_stmt ~procs:p.Ast.procs p.Ast.arrays p.Ast.body

(** [check_flat f] checks a flat program: labels resolve and every
    instruction is well-typed. *)
let check_flat (f : Flat.t) : unit =
  Flat.validate f;
  let arrays = f.Flat.arrays in
  Array.iter
    (function
      | Flat.Assign (lv, e) ->
          check_lvalue arrays lv;
          expect arrays e Tint
      | Flat.Branch (e, _, _) -> expect arrays e Tbool
      | Flat.Goto _ | Flat.Label _ -> ())
    f.Flat.code
