(** A lightweight type checker: every variable and array cell holds an
    integer; booleans arise from comparisons/logic and are consumed only
    by predicates.  Checking up front lets every interpreter run without
    dynamic type failures — a prerequisite for differential testing. *)

type ty = Tint | Tbool

exception Error of string

(** @raise Error on ill-typed expressions or misused array names. *)
val infer_expr : (string * int) list -> Ast.expr -> ty

(** Check a whole program: statement typing, array declarations,
    procedure definitions (distinct names and parameters, well-typed
    bodies, acyclic call graph — inlining cannot expand recursion).
    @raise Error on the first violation. *)
val check_program : Ast.program -> unit

(** Validate labels and types of a flat program. *)
val check_flat : Flat.t -> unit
