(** Run-time values.

    IMP memory cells always hold integers (the type checker enforces that
    only integer expressions are stored); boolean values exist transiently,
    on dataflow tokens and in predicate evaluation.  Division and modulo are
    total by language definition: a zero divisor yields 0.  This totality is
    what lets the differential tests run arbitrary generated programs
    through every interpreter and compare final stores. *)

type t =
  | Int of int
  | Bool of bool

exception Type_error of string

(** [to_int v] extracts an integer. @raise Type_error on a boolean. *)
let to_int = function
  | Int n -> n
  | Bool _ -> raise (Type_error "expected int, got bool")

(** [to_bool v] extracts a boolean. @raise Type_error on an integer. *)
let to_bool = function
  | Bool b -> b
  | Int _ -> raise (Type_error "expected bool, got int")

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | Int _, Bool _ | Bool _, Int _ -> false

let pp ppf = function
  | Int n -> Fmt.int ppf n
  | Bool b -> Fmt.bool ppf b

let to_string v = Fmt.str "%a" pp v

(** [binop op a b] applies a binary operator, with total division.
    @raise Type_error when operand kinds do not match the operator. *)
let binop (op : Ast.binop) (a : t) (b : t) : t =
  let ii f = Int (f (to_int a) (to_int b)) in
  let ib f = Bool (f (to_int a) (to_int b)) in
  let bb f = Bool (f (to_bool a) (to_bool b)) in
  match op with
  | Ast.Add -> ii ( + )
  | Ast.Sub -> ii ( - )
  | Ast.Mul -> ii ( * )
  | Ast.Div -> ii (fun x y -> if y = 0 then 0 else x / y)
  | Ast.Mod -> ii (fun x y -> if y = 0 then 0 else x mod y)
  | Ast.Lt -> ib ( < )
  | Ast.Le -> ib ( <= )
  | Ast.Gt -> ib ( > )
  | Ast.Ge -> ib ( >= )
  | Ast.Eq -> ib ( = )
  | Ast.Ne -> ib ( <> )
  | Ast.And -> bb ( && )
  | Ast.Or -> bb ( || )

(** [unop op a] applies a unary operator.
    @raise Type_error when the operand kind does not match. *)
let unop (op : Ast.unop) (a : t) : t =
  match op with
  | Ast.Neg -> Int (-to_int a)
  | Ast.Not -> Bool (not (to_bool a))
