(** Run-time values.  IMP memory cells always hold integers (enforced by
    the type checker); booleans exist transiently on tokens and in
    predicates.  Division and modulo are total by language definition (a
    zero divisor yields 0), which lets differential tests run arbitrary
    generated programs through every interpreter. *)

type t =
  | Int of int
  | Bool of bool

exception Type_error of string

(** @raise Type_error on a boolean. *)
val to_int : t -> int

(** @raise Type_error on an integer. *)
val to_bool : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [binop op a b] with total division.
    @raise Type_error when operand kinds do not match the operator. *)
val binop : Ast.binop -> t -> t -> t

(** @raise Type_error when the operand kind does not match. *)
val unop : Ast.unop -> t -> t
