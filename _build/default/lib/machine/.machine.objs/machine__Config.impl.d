lib/machine/config.ml: Dfg
