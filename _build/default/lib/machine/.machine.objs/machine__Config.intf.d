lib/machine/config.mli: Dfg
