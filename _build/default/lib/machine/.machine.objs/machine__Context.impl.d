lib/machine/context.ml: Fmt List
