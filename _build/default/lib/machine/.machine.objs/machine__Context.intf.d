lib/machine/context.mli: Format
