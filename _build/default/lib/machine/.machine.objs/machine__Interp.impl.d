lib/machine/interp.ml: Array Config Context Dfg Fmt Hashtbl Imp List Option Queue Stack
