lib/machine/interp.mli: Config Context Dfg Imp
