lib/machine/trace.ml: Array Context Dfg Fmt Hashtbl List
