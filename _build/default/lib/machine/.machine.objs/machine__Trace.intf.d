lib/machine/trace.mli: Context Dfg Format
