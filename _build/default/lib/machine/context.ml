(** Iteration contexts (tags).

    In an explicit token store machine every loop iteration gets its own
    activation frame; tokens of different iterations rendezvous in
    different frames.  We model a frame identifier as the stack of loop
    iteration indices enclosing the token, innermost first: the top-level
    context is [[]]; entering a loop pushes [0]; taking the back edge
    increments the top; leaving the loop pops it.  Two tokens match at an
    operator iff their contexts are equal -- the waiting-matching rule. *)

type t = int list

let toplevel : t = []

(** [enter c] opens iteration 0 of a fresh loop activation under [c]. *)
let enter (c : t) : t = 0 :: c

(** [next c] advances to the following iteration.
    @raise Invalid_argument at top level. *)
let next (c : t) : t =
  match c with
  | i :: rest -> (i + 1) :: rest
  | [] -> invalid_arg "Context.next: top-level context"

(** [leave c] restores the enclosing context.
    @raise Invalid_argument at top level. *)
let leave (c : t) : t =
  match c with
  | _ :: rest -> rest
  | [] -> invalid_arg "Context.leave: top-level context"

let depth (c : t) : int = List.length c
let equal (a : t) (b : t) : bool = a = b
let compare (a : t) (b : t) : int = compare a b

let pp ppf (c : t) =
  Fmt.pf ppf "<%a>" (Fmt.list ~sep:(Fmt.any ".") Fmt.int) (List.rev c)

let to_string c = Fmt.str "%a" pp c
