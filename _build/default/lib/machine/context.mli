(** Iteration contexts (tags).

    In an explicit token store machine every loop iteration gets its own
    activation frame; tokens of different iterations rendezvous in
    different frames.  A context is the stack of loop iteration indices
    enclosing the token, innermost first: the top-level context is [[]];
    entering a loop pushes [0]; taking the back edge increments the top;
    leaving the loop pops it.  Two tokens match at an operator iff their
    contexts are equal — the waiting-matching rule. *)

type t = int list

val toplevel : t

(** [enter c] opens iteration 0 of a fresh loop activation under [c]. *)
val enter : t -> t

(** [next c] advances to the following iteration.
    @raise Invalid_argument at top level. *)
val next : t -> t

(** [leave c] restores the enclosing context.
    @raise Invalid_argument at top level. *)
val leave : t -> t

(** [depth c] is the loop-nesting depth of the context. *)
val depth : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
