lib/ssa/construct.ml: Analysis Array Cfg Fmt Frontier Hashtbl Imp List
