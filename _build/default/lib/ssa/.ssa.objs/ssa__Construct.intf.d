lib/ssa/construct.mli: Analysis Cfg Format Hashtbl
