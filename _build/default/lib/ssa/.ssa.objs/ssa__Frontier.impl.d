lib/ssa/frontier.ml: Analysis Array Cfg Fun List Queue
