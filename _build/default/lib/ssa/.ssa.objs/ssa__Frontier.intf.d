lib/ssa/frontier.mli: Analysis Cfg
