lib/ssa/pdg.ml: Analysis Array Buffer Cfg Construct Fmt Hashtbl List
