lib/ssa/pdg.mli: Cfg Format
