(** Static single assignment construction over the statement-level CFG.

    The paper (Sections 1, 4, 6.1) situates its translation among SSA and
    the PDG: the joining of values "implicit in the dataflow model" is what
    φ-functions make explicit, and the memory-elimination transform of
    Section 6.1 "is similar in effect to conversion to static single
    assignment form".  This module builds classical pruned-ish SSA (Cytron
    et al.: φs at the iterated dominance frontier of the definition sites)
    so the test suite can check the correspondences:

    - merges for [access_x] in the optimized translation appear at every
      join where SSA places a φ for [x] (and possibly more: switches also
      multiply token sources);
    - versions are in single-assignment form and every use is dominated by
      its definition.

    Arrays are treated as whole-name scalars (an element store is a def
    {e and} a use of the array), exactly as the token translation treats
    them (Section 6.3's opening remark). *)

type version = { base : string; idx : int }

let version_to_string v = Fmt.str "%s_%d" v.base v.idx

type phi = {
  dest : version;
  args : (Cfg.Core.node * version) list;  (** per predecessor *)
}

type t = {
  cfg : Cfg.Core.t;
  dom : Analysis.Dom.t;
  phis : (Cfg.Core.node * phi list) list;  (** joins with their φs *)
  defs : (Cfg.Core.node * version) list;  (** renamed definition per node *)
  uses : (Cfg.Core.node * version list) list;  (** renamed uses per node *)
  max_version : (string, int) Hashtbl.t;
}

(* Definition and use sets at the CFG-node level (whole-name arrays). *)
let def_of (g : Cfg.Core.t) (n : Cfg.Core.node) : string option =
  match Cfg.Core.kind g n with
  | Cfg.Core.Assign (Imp.Ast.Lvar x, _) -> Some x
  | Cfg.Core.Assign (Imp.Ast.Lindex (x, _), _) -> Some x
  | _ -> None

let uses_of (g : Cfg.Core.t) (n : Cfg.Core.node) : string list =
  match Cfg.Core.kind g n with
  | Cfg.Core.Assign (Imp.Ast.Lvar _, e) -> Imp.Ast.expr_vars e
  | Cfg.Core.Assign (Imp.Ast.Lindex (x, i), e) ->
      (* an element store reads the rest of the array *)
      List.sort_uniq compare (x :: Imp.Ast.(vars_expr i (vars_expr e [])))
  | Cfg.Core.Fork p -> Imp.Ast.expr_vars p
  | _ -> []

(** [phi_sites g ~vars] -- per variable, the joins needing a φ: the
    iterated dominance frontier of its definition sites (the start node
    counts as defining every variable to its initial value). *)
let phi_sites (g : Cfg.Core.t) ~(vars : string list) :
    (string * Cfg.Core.node list) list =
  let dom = Analysis.Dom.dominators_of g in
  let df = Frontier.compute dom g in
  List.map
    (fun x ->
      let sites =
        g.Cfg.Core.start
        :: List.filter (fun n -> def_of g n = Some x) (Cfg.Core.nodes g)
      in
      (x, Frontier.iterated df sites))
    vars

(** [construct g] builds SSA form for [g]. *)
let construct (g : Cfg.Core.t) : t =
  let dom = Analysis.Dom.dominators_of g in
  let vars =
    List.sort_uniq compare
      (List.concat_map (Cfg.Core.referenced_vars g) (Cfg.Core.nodes g))
  in
  let sites = phi_sites g ~vars in
  (* φ skeletons per join *)
  let phi_at : (Cfg.Core.node, (string, phi ref) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (x, joins) ->
      List.iter
        (fun j ->
          let tbl =
            match Hashtbl.find_opt phi_at j with
            | Some tbl -> tbl
            | None ->
                let tbl = Hashtbl.create 4 in
                Hashtbl.replace phi_at j tbl;
                tbl
          in
          Hashtbl.replace tbl x
            (ref { dest = { base = x; idx = -1 }; args = [] }))
        joins)
    sites;
  (* renaming walk over the dominator tree *)
  let counters = Hashtbl.create 16 in
  let stacks : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun x ->
      Hashtbl.replace counters x 0;
      Hashtbl.replace stacks x [ 0 ] (* version 0: initial value *))
    vars;
  let top x =
    match Hashtbl.find stacks x with
    | v :: _ -> { base = x; idx = v }
    | [] -> assert false
  in
  let push x =
    let c = Hashtbl.find counters x + 1 in
    Hashtbl.replace counters x c;
    Hashtbl.replace stacks x (c :: Hashtbl.find stacks x);
    { base = x; idx = c }
  in
  let pop x =
    match Hashtbl.find stacks x with
    | _ :: rest -> Hashtbl.replace stacks x rest
    | [] -> assert false
  in
  let defs = ref [] and uses = ref [] in
  let rec walk n =
    let pushed = ref [] in
    (* φ defs first *)
    (match Hashtbl.find_opt phi_at n with
    | Some tbl ->
        Hashtbl.iter
          (fun x cell ->
            let v = push x in
            pushed := x :: !pushed;
            cell := { !cell with dest = v })
          tbl
    | None -> ());
    (* uses then def *)
    let node_uses = List.map top (uses_of g n) in
    if node_uses <> [] then uses := (n, node_uses) :: !uses;
    (match def_of g n with
    | Some x ->
        let v = push x in
        pushed := x :: !pushed;
        defs := (n, v) :: !defs
    | None -> ());
    (* fill φ args of successors *)
    List.iter
      (fun s ->
        match Hashtbl.find_opt phi_at s with
        | Some tbl ->
            Hashtbl.iter
              (fun x cell -> cell := { !cell with args = (n, top x) :: !cell.args })
              tbl
        | None -> ())
      (Cfg.Core.succ_nodes g n);
    (* recurse over dominator-tree children *)
    List.iter walk dom.Analysis.Dom.children.(n);
    List.iter pop !pushed
  in
  walk g.Cfg.Core.start;
  let phis =
    Hashtbl.fold
      (fun j tbl acc ->
        ( j,
          Hashtbl.fold (fun _ cell acc -> !cell :: acc) tbl []
          |> List.sort (fun a b -> compare a.dest b.dest) )
        :: acc)
      phi_at []
    |> List.sort compare
  in
  { cfg = g; dom; phis; defs = !defs; uses = !uses; max_version = counters }

(** [phi_joins t x] -- joins holding a φ for [x]. *)
let phi_joins (t : t) (x : string) : Cfg.Core.node list =
  List.filter_map
    (fun (j, phis) ->
      if List.exists (fun p -> p.dest.base = x) phis then Some j else None)
    t.phis

(** [verify t] checks the SSA invariants:
    - every version is defined at most once (φs included);
    - every use is dominated by its definition;
    - every φ argument's definition dominates the corresponding
      predecessor.
    @raise Failure on a violation. *)
let verify (t : t) : unit =
  let g = t.cfg in
  let def_site : (version, [ `Node of int | `Phi of int | `Initial ]) Hashtbl.t
      =
    Hashtbl.create 64
  in
  let add_def v site =
    if Hashtbl.mem def_site v then
      failwith (Fmt.str "version %s defined twice" (version_to_string v));
    Hashtbl.replace def_site v site
  in
  List.iter (fun (n, v) -> add_def v (`Node n)) t.defs;
  List.iter
    (fun (j, phis) -> List.iter (fun p -> add_def p.dest (`Phi j)) phis)
    t.phis;
  let dominates_def v n =
    match Hashtbl.find_opt def_site v with
    | None ->
        if v.idx <> 0 then
          failwith (Fmt.str "version %s used but never defined" (version_to_string v))
    | Some (`Node d) | Some (`Phi d) ->
        if not (Analysis.Dom.dominates t.dom d n) then
          failwith
            (Fmt.str "definition of %s does not dominate its use at %d"
               (version_to_string v) n)
    | Some `Initial -> ()
  in
  List.iter (fun (n, vs) -> List.iter (fun v -> dominates_def v n) vs) t.uses;
  List.iter
    (fun (j, phis) ->
      List.iter
        (fun p ->
          List.iter (fun (pred, v) -> dominates_def v pred) p.args;
          (* one argument per predecessor *)
          if
            List.length p.args <> List.length (Cfg.Core.pred g j)
          then
            failwith
              (Fmt.str "phi for %s at %d has %d args for %d preds"
                 p.dest.base j (List.length p.args)
                 (List.length (Cfg.Core.pred g j))))
        phis)
    t.phis

let pp ppf (t : t) =
  List.iter
    (fun (j, phis) ->
      List.iter
        (fun p ->
          Fmt.pf ppf "%d: %s = phi(%a)@ " j
            (version_to_string p.dest)
            (Fmt.list ~sep:Fmt.comma (fun ppf (pred, v) ->
                 Fmt.pf ppf "%d:%s" pred (version_to_string v)))
            p.args)
        phis)
    t.phis
