(** Static single assignment over the statement-level CFG (Cytron et
    al.: φs at the iterated dominance frontier of definition sites),
    built to make the paper's correspondences testable: merges for
    [access_x] in the optimized translation appear wherever SSA places a
    φ for [x]; versions are single-assignment; uses are dominated by
    their definitions.  Arrays are whole-name scalars (an element store
    defs and uses the array), as in the token translation. *)

type version = { base : string; idx : int }

val version_to_string : version -> string

type phi = {
  dest : version;
  args : (Cfg.Core.node * version) list;  (** per predecessor *)
}

type t = {
  cfg : Cfg.Core.t;
  dom : Analysis.Dom.t;
  phis : (Cfg.Core.node * phi list) list;  (** joins with their φs *)
  defs : (Cfg.Core.node * version) list;
  uses : (Cfg.Core.node * version list) list;
  max_version : (string, int) Hashtbl.t;
}

(** Definition / use sets at CFG-node level (whole-name arrays). *)
val def_of : Cfg.Core.t -> Cfg.Core.node -> string option

val uses_of : Cfg.Core.t -> Cfg.Core.node -> string list

(** Per variable, the joins needing a φ: the iterated dominance frontier
    of its definition sites (start defines every variable's initial
    value). *)
val phi_sites :
  Cfg.Core.t -> vars:string list -> (string * Cfg.Core.node list) list

val construct : Cfg.Core.t -> t

(** Joins holding a φ for [x]. *)
val phi_joins : t -> string -> Cfg.Core.node list

(** Check the SSA invariants (single assignment; defs dominate uses; φ
    argument availability and arity).
    @raise Failure on a violation. *)
val verify : t -> unit

val pp : Format.formatter -> t -> unit
