(** Dominance frontiers and iterated dominance frontiers.

    The paper's Section 4 ties switch placement to control dependence
    (computed from the {e postdominator} tree); the dual construction over
    the {e dominator} tree is the dominance frontier, which drives
    φ-placement in static single assignment form -- the representation the
    paper's Section 6.1 memory-elimination transform effectively computes.
    Both are provided here to make the correspondence testable. *)

(** [compute dom g] -- dominance frontiers over the forward CFG:
    [DF(n) = { m | n dominates a predecessor of m, n does not strictly
    dominate m }]. *)
let compute (dom : Analysis.Dom.t) (g : Cfg.Core.t) : int list array =
  let n = Cfg.Core.num_nodes g in
  let df = Array.make n [] in
  let add x m = if not (List.mem m df.(x)) then df.(x) <- m :: df.(x) in
  for m = 0 to n - 1 do
    let preds = Cfg.Core.pred_nodes g m in
    if List.length preds >= 2 && dom.Analysis.Dom.reach.(m) then begin
      (* idom(m) dominates every predecessor of m, so the upward walk
         from each predecessor terminates there (Cytron et al.) *)
      let stop = Analysis.Dom.idom dom m in
      List.iter
        (fun p ->
          if dom.Analysis.Dom.reach.(p) then begin
            let runner = ref p in
            while !runner <> stop do
              add !runner m;
              runner := Analysis.Dom.idom dom !runner
            done
          end)
        preds
    end
  done;
  df

(** [compute_definitional dom g] -- the same set straight from the
    definition, by quantifier enumeration; used to cross-check
    {!compute} in tests. *)
let compute_definitional (dom : Analysis.Dom.t) (g : Cfg.Core.t) :
    int list array =
  let n = Cfg.Core.num_nodes g in
  Array.init n (fun x ->
      List.filter
        (fun m ->
          List.exists
            (fun p -> Analysis.Dom.dominates dom x p)
            (Cfg.Core.pred_nodes g m)
          && not (Analysis.Dom.strictly_dominates dom x m))
        (List.init n Fun.id))

(** [iterated df seeds] -- the iterated dominance frontier DF⁺ of a node
    set: the φ-placement set of a variable defined at [seeds]. *)
let iterated (df : int list array) (seeds : int list) : int list =
  let n = Array.length df in
  let in_result = Array.make n false in
  let queued = Array.make n false in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if not queued.(s) then begin
        queued.(s) <- true;
        Queue.add s q
      end)
    seeds;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun m ->
        in_result.(m) <- true;
        if not queued.(m) then begin
          queued.(m) <- true;
          Queue.add m q
        end)
      df.(v)
  done;
  List.filter (fun v -> in_result.(v)) (List.init n Fun.id)
