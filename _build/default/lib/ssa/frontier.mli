(** Dominance frontiers and iterated dominance frontiers — the
    dominator-tree dual of the paper's postdominator-based switch
    placement, driving φ-placement in SSA (the representation Section
    6.1's memory elimination effectively computes). *)

(** [compute dom g] — DF(n) = { m | n dominates a predecessor of m, n
    does not strictly dominate m } (Cytron et al.'s walk). *)
val compute : Analysis.Dom.t -> Cfg.Core.t -> int list array

(** The same set straight from the definition, by enumeration; used to
    cross-check {!compute}. *)
val compute_definitional : Analysis.Dom.t -> Cfg.Core.t -> int list array

(** [iterated df seeds] — DF⁺ of a node set: the φ-placement set of a
    variable defined at [seeds]. *)
val iterated : int list array -> int list -> int list
