(** Program dependence graphs (Ferrante–Ottenstein–Warren), assembled from
    the control-dependence analysis and SSA def-use chains.

    The paper positions its dataflow graphs against the PDG (Sections 1
    and 7, the Ballance–Maccabe–Ottenstein comparison): arcs of the
    translated dataflow graph encode the same information the PDG splits
    into control- and data-dependence edges.  This module makes the
    comparison concrete and testable: every PDG flow edge between two
    memory-touching statements corresponds to a (possibly transitive)
    token path in the Schema 2 graph. *)

type edge_kind =
  | Control of bool  (** control dependence, labelled by branch direction *)
  | Flow of string  (** def-use dependence on a variable *)

type edge = { src : Cfg.Core.node; dst : Cfg.Core.node; kind : edge_kind }

type t = {
  cfg : Cfg.Core.t;
  edges : edge list;
}

(** [build g] constructs the PDG of [g]. *)
let build (g : Cfg.Core.t) : t =
  let cd = Analysis.Control_dep.compute g in
  let ssa = Construct.construct g in
  let control_edges =
    List.concat_map
      (fun n ->
        List.filter_map
          (fun f ->
            (* recover the branch direction: the direction d of f such
               that n is reached/postdominated along it; for simplicity
               label with [true] when n is control dependent via the true
               successor *)
            let dir =
              List.exists
                (fun e ->
                  e.Cfg.Core.dir
                  && Analysis.Dom.dominates cd.Analysis.Control_dep.pdom n
                       e.Cfg.Core.dst)
                (Cfg.Core.succ g f)
            in
            Some { src = f; dst = n; kind = Control dir })
          (Analysis.Control_dep.cd cd n))
      (Cfg.Core.nodes g)
  in
  (* def-use edges via SSA: a use of version v at node n depends on the
     node defining v; φs act as pass-through joins, so flow edges are
     traced through them to actual statements. *)
  let def_site : (Construct.version, [ `Node of int | `Phi of int ]) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter (fun (n, v) -> Hashtbl.replace def_site v (`Node n)) ssa.Construct.defs;
  List.iter
    (fun (j, phis) ->
      List.iter
        (fun (p : Construct.phi) -> Hashtbl.replace def_site p.Construct.dest (`Phi j))
        phis)
    ssa.Construct.phis;
  let phi_args : (int * string, Construct.version list) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (j, phis) ->
      List.iter
        (fun (p : Construct.phi) ->
          Hashtbl.replace phi_args
            (j, p.Construct.dest.Construct.base)
            (List.map snd p.Construct.args))
        phis)
    ssa.Construct.phis;
  (* sources of a version, tracing through φs *)
  let rec sources (v : Construct.version) (seen : Construct.version list) :
      int list =
    if List.mem v seen then []
    else
      match Hashtbl.find_opt def_site v with
      | None -> [] (* initial value: no producing statement *)
      | Some (`Node n) -> [ n ]
      | Some (`Phi j) ->
          let args =
            try Hashtbl.find phi_args (j, v.Construct.base) with Not_found -> []
          in
          List.concat_map (fun a -> sources a (v :: seen)) args
  in
  let flow_edges =
    List.concat_map
      (fun (n, vs) ->
        List.concat_map
          (fun (v : Construct.version) ->
            List.map
              (fun src -> { src; dst = n; kind = Flow v.Construct.base })
              (List.sort_uniq compare (sources v [])))
          vs)
      ssa.Construct.uses
    |> List.sort_uniq compare
  in
  { cfg = g; edges = control_edges @ flow_edges }

(** [control_edges t] / [flow_edges t] -- edge subsets. *)
let control_edges (t : t) : edge list =
  List.filter (fun e -> match e.kind with Control _ -> true | _ -> false) t.edges

let flow_edges (t : t) : edge list =
  List.filter (fun e -> match e.kind with Flow _ -> true | _ -> false) t.edges

(** [flow_deps_of t n] -- statements whose values node [n] consumes. *)
let flow_deps_of (t : t) (n : Cfg.Core.node) : (Cfg.Core.node * string) list =
  List.filter_map
    (fun e ->
      match e.kind with
      | Flow x when e.dst = n -> Some (e.src, x)
      | _ -> None)
    t.edges

let pp ppf (t : t) =
  List.iter
    (fun e ->
      match e.kind with
      | Control d -> Fmt.pf ppf "%d -[ctl %b]-> %d@ " e.src d e.dst
      | Flow x -> Fmt.pf ppf "%d -[%s]-> %d@ " e.src x e.dst)
    t.edges

(** DOT rendering: control edges dashed, flow edges solid. *)
let to_dot (t : t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph pdg {\n  node [shape=box];\n";
  List.iteri
    (fun i k ->
      Buffer.add_string buf
        (Fmt.str "  n%d [label=\"%d: %s\"];\n" i i (Cfg.Core.kind_to_string k)))
    (Array.to_list t.cfg.Cfg.Core.kind);
  List.iter
    (fun e ->
      match e.kind with
      | Control d ->
          Buffer.add_string buf
            (Fmt.str "  n%d -> n%d [style=dashed, label=\"%b\"];\n" e.src e.dst d)
      | Flow x ->
          Buffer.add_string buf
            (Fmt.str "  n%d -> n%d [label=\"%s\"];\n" e.src e.dst x))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
