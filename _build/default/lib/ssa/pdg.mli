(** Program dependence graphs (Ferrante–Ottenstein–Warren): control
    dependence edges plus SSA-derived def-use flow edges, with φs traced
    through to producing statements.  Makes the paper's Sections 1/7
    comparison with PDG-based translation concrete and testable. *)

type edge_kind =
  | Control of bool  (** control dependence, labelled by direction *)
  | Flow of string  (** def-use dependence on a variable *)

type edge = { src : Cfg.Core.node; dst : Cfg.Core.node; kind : edge_kind }

type t = {
  cfg : Cfg.Core.t;
  edges : edge list;
}

val build : Cfg.Core.t -> t
val control_edges : t -> edge list
val flow_edges : t -> edge list

(** Statements whose values node [n] consumes, with the variable. *)
val flow_deps_of : t -> Cfg.Core.node -> (Cfg.Core.node * string) list

val pp : Format.formatter -> t -> unit
val to_dot : t -> string
