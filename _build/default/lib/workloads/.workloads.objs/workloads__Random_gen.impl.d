lib/workloads/random_gen.ml: Array Cfg Fmt Imp List Random
