lib/workloads/random_gen.mli: Cfg Imp Random
