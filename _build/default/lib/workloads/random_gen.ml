(** Random program and CFG generators.

    Two families:

    - {!structured}: well-typed, {e terminating} programs (loops are
      bounded by dedicated counter variables never assigned in their
      bodies).  These drive the differential semantics tests: every
      translation schema executed on the dataflow machine must produce the
      reference interpreter's final store.

    - {!flat}: arbitrary goto-spaghetti flat programs; their CFGs exercise
      the analyses (postdominators, control dependence, switch placement,
      interval analysis) on genuinely unstructured -- occasionally
      irreducible -- shapes.  Execution may diverge; analysis does not
      care.

    All generation is driven by an explicit [Random.State.t] so failures
    reproduce from a seed. *)

type config = {
  num_vars : int;  (** scalar pool size *)
  num_arrays : int;  (** array pool size (0 = scalar-only programs) *)
  array_extent : int;
  max_depth : int;  (** statement nesting depth *)
  max_len : int;  (** statements per block *)
  expr_depth : int;
  loop_bound : int;  (** max iterations per generated loop *)
  allow_alias : bool;  (** emit [equiv]/[mayalias] declarations *)
}

let default_config =
  {
    num_vars = 5;
    num_arrays = 1;
    array_extent = 6;
    max_depth = 3;
    max_len = 4;
    expr_depth = 3;
    loop_bound = 4;
    allow_alias = false;
  }

let scalar i = Fmt.str "v%d" i
let array_name i = Fmt.str "a%d" i
let counter i = Fmt.str "c%d" i

let pick rand l = List.nth l (Random.State.int rand (List.length l))

(* --- expressions ---------------------------------------------------- *)

let rec int_expr (cfg : config) rand depth : Imp.Ast.expr =
  if depth <= 0 || Random.State.int rand 3 = 0 then
    if Random.State.bool rand then
      Imp.Ast.Int (Random.State.int rand 21 - 10)
    else leaf_var cfg rand
  else
    match Random.State.int rand 8 with
    | 0 -> Imp.Ast.Unop (Imp.Ast.Neg, int_expr cfg rand (depth - 1))
    | 1 when cfg.num_arrays > 0 ->
        Imp.Ast.Index
          ( array_name (Random.State.int rand cfg.num_arrays),
            int_expr cfg rand (depth - 1) )
    | _ ->
        let op =
          pick rand Imp.Ast.[ Add; Sub; Mul; Div; Mod; Add; Sub ]
        in
        Imp.Ast.Binop (op, int_expr cfg rand (depth - 1), int_expr cfg rand (depth - 1))

and leaf_var cfg rand =
  if cfg.num_arrays > 0 && Random.State.int rand 5 = 0 then
    Imp.Ast.Index
      ( array_name (Random.State.int rand cfg.num_arrays),
        Imp.Ast.Int (Random.State.int rand cfg.array_extent) )
  else Imp.Ast.Var (scalar (Random.State.int rand cfg.num_vars))

let bool_expr (cfg : config) rand depth : Imp.Ast.expr =
  let cmp () =
    let op = pick rand Imp.Ast.[ Lt; Le; Gt; Ge; Eq; Ne ] in
    Imp.Ast.Binop (op, int_expr cfg rand (depth - 1), int_expr cfg rand (depth - 1))
  in
  match Random.State.int rand 5 with
  | 0 ->
      Imp.Ast.Binop
        ( (if Random.State.bool rand then Imp.Ast.And else Imp.Ast.Or),
          cmp (),
          cmp () )
  | 1 -> Imp.Ast.Unop (Imp.Ast.Not, cmp ())
  | _ -> cmp ()

(* --- structured programs -------------------------------------------- *)

(* Generate a statement block; [next_counter] supplies fresh loop
   counters (never assigned inside their loop bodies, so every loop
   terminates). *)
let structured_block (config : config) (next_counter : int ref)
    (rand : Random.State.t) : Imp.Ast.stmt =
  let assign_target rand =
    if config.num_arrays > 0 && Random.State.int rand 4 = 0 then
      Imp.Ast.Lindex
        ( array_name (Random.State.int rand config.num_arrays),
          int_expr config rand (config.expr_depth - 1) )
    else Imp.Ast.Lvar (scalar (Random.State.int rand config.num_vars))
  in
  let rec block depth rand : Imp.Ast.stmt =
    let len = 1 + Random.State.int rand config.max_len in
    Imp.Ast.seq (List.init len (fun _ -> stmt depth rand))
  and stmt depth rand : Imp.Ast.stmt =
    let choice = Random.State.int rand (if depth <= 0 then 4 else 9) in
    match choice with
    | 0 | 1 | 2 | 3 ->
        Imp.Ast.Assign (assign_target rand, int_expr config rand config.expr_depth)
    | 8 ->
        (* multi-way branch *)
        let n_arms = 1 + Random.State.int rand 3 in
        Imp.Ast.Case
          ( int_expr config rand config.expr_depth,
            List.init n_arms (fun k -> (k - 1, block (depth - 1) rand)),
            if Random.State.bool rand then block (depth - 1) rand
            else Imp.Ast.Skip )
    | 4 | 5 ->
        Imp.Ast.If
          ( bool_expr config rand config.expr_depth,
            block (depth - 1) rand,
            if Random.State.bool rand then block (depth - 1) rand
            else Imp.Ast.Skip )
    | _ ->
        (* Bounded loop: a dedicated counter not assigned in the body. *)
        let c = counter !next_counter in
        incr next_counter;
        let bound = 1 + Random.State.int rand config.loop_bound in
        Imp.Ast.seq
          [
            Imp.Ast.Assign (Imp.Ast.Lvar c, Imp.Ast.Int 0);
            Imp.Ast.While
              ( Imp.Ast.Binop (Imp.Ast.Lt, Imp.Ast.Var c, Imp.Ast.Int bound),
                Imp.Ast.Seq
                  ( block (depth - 1) rand,
                    Imp.Ast.Assign
                      ( Imp.Ast.Lvar c,
                        Imp.Ast.Binop (Imp.Ast.Add, Imp.Ast.Var c, Imp.Ast.Int 1)
                      ) ) );
          ]
  in
  block config.max_depth rand

(* Generate just a statement block (used for procedure bodies too). *)
let structured_body (config : config) (rand : Random.State.t) : Imp.Ast.stmt =
  structured_block config (ref 1000) rand

let structured ?(config = default_config) (rand : Random.State.t) :
    Imp.Ast.program =
  let next_counter = ref 0 in
  let body = structured_block config next_counter rand in
  let arrays =
    List.init config.num_arrays (fun i -> (array_name i, config.array_extent))
  in
  let equiv, may_alias =
    if not config.allow_alias then ([], [])
    else begin
      (* A few random pairs among the scalars.  equiv pairs really share
         storage; may_alias pairs only claim they might. *)
      let rnd_scalar () = scalar (Random.State.int rand config.num_vars) in
      let pairs k =
        List.init k (fun _ -> (rnd_scalar (), rnd_scalar ()))
        |> List.filter (fun (a, b) -> a <> b)
      in
      (pairs (Random.State.int rand 2), pairs (Random.State.int rand 3))
    end
  in
  (* Occasionally wrap part of the workload in procedures called with
     random by-reference arguments, exercising the inliner (and, with
     repeated arguments, genuine parameter aliasing). *)
  let procs, body =
    if Random.State.int rand 3 <> 0 then ([], body)
    else begin
      let params = [ "p0"; "p1" ] in
      let pconfig = { config with num_vars = 2; num_arrays = 0; max_depth = 1 } in
      let rename s =
        (* a body over v0/v1 becomes a body over the parameters *)
        let sub = function "v0" -> "p0" | "v1" -> "p1" | x -> x in
        let rec expr = function
          | Imp.Ast.Int _ | Imp.Ast.Bool _ as e -> e
          | Imp.Ast.Var x -> Imp.Ast.Var (sub x)
          | Imp.Ast.Index (x, e) -> Imp.Ast.Index (sub x, expr e)
          | Imp.Ast.Binop (op, a, b) -> Imp.Ast.Binop (op, expr a, expr b)
          | Imp.Ast.Unop (op, a) -> Imp.Ast.Unop (op, expr a)
        in
        let rec stmt = function
          | Imp.Ast.Skip -> Imp.Ast.Skip
          | Imp.Ast.Assign (Imp.Ast.Lvar x, e) ->
              Imp.Ast.Assign (Imp.Ast.Lvar (sub x), expr e)
          | Imp.Ast.Assign (Imp.Ast.Lindex (x, i), e) ->
              Imp.Ast.Assign (Imp.Ast.Lindex (sub x, expr i), expr e)
          | Imp.Ast.Seq (a, b) -> Imp.Ast.Seq (stmt a, stmt b)
          | Imp.Ast.If (e, a, b) -> Imp.Ast.If (expr e, stmt a, stmt b)
          | Imp.Ast.While (e, a) -> Imp.Ast.While (expr e, stmt a)
          | s -> s
        in
        stmt s
      in
      let pbody =
        rename ((structured_body [@warning "-26"]) pconfig rand)
      in
      let proc = { Imp.Ast.pname = "helper"; params; pbody } in
      let arg () = scalar (Random.State.int rand config.num_vars) in
      let calls =
        List.init
          (1 + Random.State.int rand 2)
          (fun _ ->
            let a = arg () in
            (* sometimes pass the same variable twice: parameter aliasing *)
            let b = if Random.State.bool rand then a else arg () in
            Imp.Ast.Call ("helper", [ a; b ]))
      in
      ([ proc ], Imp.Ast.Seq (body, Imp.Ast.seq calls))
    end
  in
  let p = { Imp.Ast.arrays; equiv; may_alias; procs; body } in
  Imp.Typecheck.check_program p;
  p

(* --- flat (unstructured) programs ----------------------------------- *)

(** [flat ?config rand] generates a random goto program: a sequence of
    assignments, labels, conditional branches and gotos over [k] labels.
    Forward-biased targets keep most programs end-reachable; no
    termination guarantee. *)
let flat ?(config = default_config) (rand : Random.State.t) : Imp.Flat.t =
  (* flat programs declare no arrays, so expressions must be scalar-only *)
  let config = { config with num_arrays = 0 } in
  let k = 2 + Random.State.int rand 5 in
  let label i = Fmt.str "L%d" i in
  let len = 4 + Random.State.int rand (4 * config.max_len) in
  (* Place k labels at random distinct positions. *)
  let buf = ref [] in
  let emit i = buf := i :: !buf in
  let label_positions =
    List.init k (fun i -> (Random.State.int rand len, i))
    |> List.sort_uniq compare
  in
  let target_label pos =
    (* bias forward: 2/3 of the time pick a label at or after pos *)
    let forward =
      List.filter (fun (p, _) -> p >= pos) label_positions |> List.map snd
    in
    if forward <> [] && Random.State.int rand 3 < 2 then pick rand forward
    else snd (pick rand label_positions)
  in
  for pos = 0 to len - 1 do
    List.iter
      (fun (p, i) -> if p = pos then emit (Imp.Flat.Label (label i)))
      label_positions;
    match Random.State.int rand 6 with
    | 0 ->
        emit
          (Imp.Flat.Branch
             ( bool_expr config rand config.expr_depth,
               label (target_label pos),
               label (target_label pos) ))
    | 1 -> emit (Imp.Flat.Goto (label (target_label pos)))
    | _ ->
        emit
          (Imp.Flat.Assign
             ( Imp.Ast.Lvar (scalar (Random.State.int rand config.num_vars)),
               int_expr config rand config.expr_depth ))
  done;
  {
    Imp.Flat.arrays = [];
    equiv = [];
    may_alias = [];
    code = Array.of_list (List.rev !buf);
  }

(** [random_cfg ?config ?max_tries rand] draws random flat programs until
    one yields a valid CFG (all nodes reach [end]); raises [Failure] after
    [max_tries].  Roughly one draw in three survives. *)
let random_cfg ?(config = default_config) ?(max_tries = 100)
    (rand : Random.State.t) : Cfg.Core.t =
  let rec go tries =
    if tries = 0 then failwith "random_cfg: no valid draw"
    else
      let f = flat ~config rand in
      match Cfg.Builder.of_flat f with
      | g -> g
      | exception Cfg.Builder.Unreachable_end _ -> go (tries - 1)
  in
  go max_tries

(** [random_structured_cfg ?config rand] is the CFG of a random structured
    program: always reducible, always terminating. *)
let random_structured_cfg ?(config = default_config) (rand : Random.State.t) :
    Cfg.Core.t =
  Cfg.Builder.of_program (structured ~config rand)
