(** Random program and CFG generators, driven by an explicit
    [Random.State.t] so failures reproduce from a seed.

    {!structured} programs are well-typed and terminating (loops bounded
    by dedicated counters), occasionally wrapping work in procedures
    called with by-reference arguments: they drive the differential
    semantics tests.  {!flat} programs are goto spaghetti — possibly
    divergent, occasionally irreducible — for the analysis property
    tests and, filtered for termination, for node-splitting differential
    tests. *)

type config = {
  num_vars : int;  (** scalar pool size *)
  num_arrays : int;  (** array pool size (0 = scalar-only programs) *)
  array_extent : int;
  max_depth : int;  (** statement nesting depth *)
  max_len : int;  (** statements per block *)
  expr_depth : int;
  loop_bound : int;  (** max iterations per generated loop *)
  allow_alias : bool;  (** emit [equiv]/[mayalias] declarations *)
}

val default_config : config

(** A random integer expression / boolean predicate over the pool. *)
val int_expr : config -> Random.State.t -> int -> Imp.Ast.expr

val bool_expr : config -> Random.State.t -> int -> Imp.Ast.expr

(** A random statement block (used for procedure bodies too). *)
val structured_body : config -> Random.State.t -> Imp.Ast.stmt

(** A random well-typed terminating program. *)
val structured : ?config:config -> Random.State.t -> Imp.Ast.program

(** A random goto program (scalar-only; no termination guarantee). *)
val flat : ?config:config -> Random.State.t -> Imp.Flat.t

(** Draw {!flat} programs until one yields a valid CFG (all nodes reach
    end). @raise Failure after [max_tries]. *)
val random_cfg : ?config:config -> ?max_tries:int -> Random.State.t -> Cfg.Core.t

(** The CFG of a random structured program: reducible, terminating. *)
val random_structured_cfg : ?config:config -> Random.State.t -> Cfg.Core.t
