test/test_analysis.ml: Alcotest Analysis Array Cfg Fmt Hashtbl Imp List QCheck QCheck_alcotest Random Workloads
