test/test_api.ml: Alcotest Analysis Dfg Dflow Fmt Imp List Machine String
