test/test_cfg.ml: Alcotest Array Cfg Imp List Random String Workloads
