test/test_cli.ml: Alcotest Filename Fmt List Option String Sys
