test/test_dfg.ml: Alcotest Analysis Cfg Dfg Dflow Fmt Imp List Machine Printexc Random String Workloads
