test/test_dflow.ml: Alcotest Analysis Cfg Dfg Dflow Imp List Machine Printexc QCheck QCheck_alcotest Random String Workloads
