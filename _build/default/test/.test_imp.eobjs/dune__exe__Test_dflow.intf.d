test/test_dflow.mli:
