test/test_imp.ml: Alcotest Array Fmt Gen Imp List Printexc QCheck QCheck_alcotest Random Workloads
