test/test_imp.mli:
