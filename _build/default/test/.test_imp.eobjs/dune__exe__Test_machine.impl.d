test/test_machine.ml: Alcotest Analysis Array Dfg Dflow Fmt Imp List Machine Random String Workloads
