test/test_ssa.ml: Alcotest Analysis Array Cfg Dflow Imp List QCheck QCheck_alcotest Random Ssa String Workloads
