test/test_transforms.ml: Alcotest Analysis Cfg Dfg Dflow Fmt Imp List Machine QCheck QCheck_alcotest Random Workloads
