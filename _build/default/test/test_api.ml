(* Direct unit tests for small public-API surfaces that the integration
   suites exercise only indirectly: token universes, pretty-printers,
   statistics strings, spec names. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Token universes                                                    *)

let test_token_single () =
  let t = Dflow.Token_map.single in
  checki "arity" 1 (Dflow.Token_map.arity t);
  Alcotest.(check (list int)) "access set" [ 0 ] (t.Dflow.Token_map.access_set "anything");
  Alcotest.(check (list int)) "all" [ 0 ] (Dflow.Token_map.all t)

let test_token_per_variable () =
  let t = Dflow.Token_map.per_variable [ "b"; "a"; "b" ] in
  checki "dedup + sort" 2 (Dflow.Token_map.arity t);
  checks "name" "access_a" (Dflow.Token_map.name t 0);
  Alcotest.(check (list int)) "a" [ 0 ] (t.Dflow.Token_map.access_set "a");
  Alcotest.(check (list int)) "b" [ 1 ] (t.Dflow.Token_map.access_set "b");
  (match t.Dflow.Token_map.access_set "zz" with
  | _ -> Alcotest.fail "expected invalid_arg"
  | exception Invalid_argument _ -> ());
  (* degenerate: empty pool falls back to the single token *)
  checki "empty pool" 1 (Dflow.Token_map.arity (Dflow.Token_map.per_variable []))

let test_token_of_cover () =
  let alias =
    Analysis.Alias.of_pairs [ "x"; "y"; "z" ] ~equiv:[]
      ~may_alias:[ ("x", "z"); ("y", "z") ]
  in
  let t = Dflow.Token_map.of_cover alias (Analysis.Cover.singleton alias) in
  checki "arity = |V|" 3 (Dflow.Token_map.arity t);
  (* ops on z collect all three singleton tokens *)
  checki "z collects 3" 3 (List.length (t.Dflow.Token_map.access_set "z"));
  checki "x collects 2" 2 (List.length (t.Dflow.Token_map.access_set "x"));
  Alcotest.(check (list int))
    "union over x,y" [ 0; 1; 2 ]
    (Dflow.Token_map.vars_to_tokens t [ "x"; "y" ])

(* ------------------------------------------------------------------ *)
(* Printers and names                                                 *)

let test_context_to_string () =
  let c = Machine.Context.enter (Machine.Context.enter Machine.Context.toplevel) in
  let c = Machine.Context.next c in
  checks "nested" "<0.1>" (Machine.Context.to_string c);
  checks "toplevel" "<>" (Machine.Context.to_string Machine.Context.toplevel)

let test_value_printing () =
  checks "int" "-3" (Imp.Value.to_string (Imp.Value.Int (-3)));
  checks "bool" "true" (Imp.Value.to_string (Imp.Value.Bool true));
  checkb "equal" true (Imp.Value.equal (Imp.Value.Int 5) (Imp.Value.Int 5));
  checkb "kind mismatch" false
    (Imp.Value.equal (Imp.Value.Int 1) (Imp.Value.Bool true))

let test_spec_names_distinct () =
  let specs =
    Dflow.Driver.
      [
        Schema1;
        Schema2 Dflow.Engine.Barrier;
        Schema2 Dflow.Engine.Pipelined;
        Schema2_unsafe_no_loop_control;
        Schema3 (Singleton, Dflow.Engine.Barrier);
        Schema3 (Classes, Dflow.Engine.Barrier);
        Schema3 (Components, Dflow.Engine.Barrier);
        Schema2_opt Dflow.Engine.Barrier;
        Schema2_opt Dflow.Engine.Pipelined;
      ]
  in
  let names = List.map Dflow.Driver.spec_to_string specs in
  checki "all distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_stats_to_string () =
  let c =
    Dflow.Driver.compile (Dflow.Driver.Schema2 Dflow.Engine.Barrier)
      (Imp.Factory.running_example ())
  in
  let s = Dfg.Stats.to_string (Dfg.Stats.of_graph c.Dflow.Driver.graph) in
  checkb "mentions switches" true
    (let rec has i =
       i + 8 <= String.length s && (String.sub s i 8 = "switches" || has (i + 1))
     in
     has 0)

let test_cover_pp () =
  let alias = Analysis.Alias.identity [ "a"; "b" ] in
  checks "singleton render" "{{a}; {b}}"
    (Fmt.str "%a" Analysis.Cover.pp (Analysis.Cover.singleton alias))

let test_kind_to_string_total () =
  (* every node kind renders without raising *)
  List.iter
    (fun k -> checkb "nonempty" true (String.length (Dfg.Node.kind_to_string k) > 0))
    [
      Dfg.Node.Start 1;
      Dfg.Node.End 1;
      Dfg.Node.Const (Imp.Value.Int 0);
      Dfg.Node.Binop Imp.Ast.And;
      Dfg.Node.Unop Imp.Ast.Neg;
      Dfg.Node.Id;
      Dfg.Node.Sink;
      Dfg.Node.Load { var = "v"; indexed = false; mem = Dfg.Node.I_structure };
      Dfg.Node.Store { var = "v"; indexed = true; mem = Dfg.Node.Plain };
      Dfg.Node.Switch;
      Dfg.Node.Merge;
      Dfg.Node.Synch 2;
      Dfg.Node.Loop_entry { loop = 0; arity = 1 };
      Dfg.Node.Loop_exit { loop = 0; arity = 1 };
    ]

let test_avg_parallelism () =
  let c =
    Dflow.Driver.compile (Dflow.Driver.Schema2 Dflow.Engine.Barrier)
      (Imp.Factory.independent_straightline ~k:4 ())
  in
  let r =
    Machine.Interp.run_exn ~config:Machine.Config.ideal
      { Machine.Interp.graph = c.Dflow.Driver.graph; layout = c.Dflow.Driver.layout }
  in
  let avg = Machine.Interp.avg_parallelism r in
  checkb "avg = firings / cycles" true
    (abs_float
       (avg
       -. float_of_int r.Machine.Interp.firings
          /. float_of_int r.Machine.Interp.cycles)
    < 1e-9);
  (* firings by kind sums to total *)
  checki "kind sum" r.Machine.Interp.firings
    (List.fold_left (fun a (_, n) -> a + n) 0 r.Machine.Interp.firings_by_kind)

let () =
  Alcotest.run "api"
    [
      ( "token universes",
        [
          Alcotest.test_case "single" `Quick test_token_single;
          Alcotest.test_case "per variable" `Quick test_token_per_variable;
          Alcotest.test_case "of cover" `Quick test_token_of_cover;
        ] );
      ( "printers",
        [
          Alcotest.test_case "context" `Quick test_context_to_string;
          Alcotest.test_case "values" `Quick test_value_printing;
          Alcotest.test_case "spec names distinct" `Quick test_spec_names_distinct;
          Alcotest.test_case "stats string" `Quick test_stats_to_string;
          Alcotest.test_case "cover render" `Quick test_cover_pp;
          Alcotest.test_case "node kinds render" `Quick test_kind_to_string_total;
        ] );
      ( "metrics",
        [ Alcotest.test_case "average parallelism" `Quick test_avg_parallelism ] );
    ]
