(* Tests for CFG construction, validation, interval analysis and
   loop-control insertion. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let cfg_of src = Cfg.Builder.of_string src

let count_kind g p =
  List.length (List.filter (fun n -> p (Cfg.Core.kind g n)) (Cfg.Core.nodes g))

let num_assigns g =
  count_kind g (function Cfg.Core.Assign _ -> true | _ -> false)

let num_forks g = count_kind g (function Cfg.Core.Fork _ -> true | _ -> false)
let num_joins g = count_kind g (function Cfg.Core.Join -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Builder                                                            *)

let test_straightline () =
  let g = cfg_of "x := 1 y := 2" in
  Cfg.Validate.check g;
  checki "assigns" 2 (num_assigns g);
  checki "forks" 0 (num_forks g);
  (* start, end, 2 assigns *)
  checki "nodes" 4 (Cfg.Core.num_nodes g)

let test_start_is_fork () =
  let g = cfg_of "x := 1" in
  checkb "start is fork" true (Cfg.Core.is_fork g g.Cfg.Core.start);
  let e_false = Cfg.Core.succ_on g g.Cfg.Core.start false in
  checki "false edge to end" g.Cfg.Core.stop e_false

let test_running_example_shape () =
  (* Figure 1: join, two assignments, one fork, plus start/end. *)
  let g = Cfg.Builder.of_program (Imp.Factory.running_example ()) in
  Cfg.Validate.check g;
  checki "assigns" 2 (num_assigns g);
  checki "forks (incl. start)" 1 (num_forks g);
  checki "joins" 1 (num_joins g);
  checki "nodes" 6 (Cfg.Core.num_nodes g)

let test_if_shape () =
  let g = cfg_of "if x < 1 then y := 1 else y := 2 end" in
  Cfg.Validate.check g;
  checki "forks" 1 (num_forks g);
  checki "assigns" 2 (num_assigns g);
  (* fork successors are distinct *)
  let f =
    List.find
      (fun n -> match Cfg.Core.kind g n with Cfg.Core.Fork _ -> true | _ -> false)
      (Cfg.Core.nodes g)
  in
  let t = Cfg.Core.succ_on g f true and e = Cfg.Core.succ_on g f false in
  checkb "distinct branches" true (t <> e)

let test_dead_code_pruned () =
  let g = cfg_of "goto l x := 99 l: y := 1" in
  Cfg.Validate.check g;
  checki "dead assign pruned" 1 (num_assigns g)

let test_goto_chain () =
  let g = cfg_of "goto a a: goto b b: x := 1" in
  Cfg.Validate.check g;
  checki "assigns" 1 (num_assigns g)

let test_infinite_loop_rejected () =
  match cfg_of "l: x := x + 1 goto l" with
  | _ -> Alcotest.fail "expected Unreachable_end"
  | exception Cfg.Builder.Unreachable_end _ -> ()

let test_referenced_vars () =
  let g = cfg_of "array a[3]; a[i] := x + y" in
  let n =
    List.find
      (fun n ->
        match Cfg.Core.kind g n with Cfg.Core.Assign _ -> true | _ -> false)
      (Cfg.Core.nodes g)
  in
  Alcotest.(check (list string))
    "vars" [ "a"; "i"; "x"; "y" ]
    (Cfg.Core.referenced_vars g n)

let test_all_examples_validate () =
  List.iter
    (fun (name, mk) ->
      match Cfg.Builder.of_program (mk ()) with
      | g -> (
          try Cfg.Validate.check g
          with Cfg.Validate.Invalid m -> Alcotest.failf "%s: %s" name m)
      | exception Cfg.Builder.Unreachable_end _ ->
          Alcotest.failf "%s: unreachable end" name)
    Imp.Factory.all

let test_dot_output () =
  let g = Cfg.Builder.of_program (Imp.Factory.running_example ()) in
  let s = Cfg.Dot.to_string g in
  checkb "digraph" true (String.length s > 20 && String.sub s 0 7 = "digraph")

(* ------------------------------------------------------------------ *)
(* Intervals                                                          *)

let test_intervals_acyclic () =
  let g = cfg_of "x := 1 if x < 2 then y := 1 else y := 2 end z := 3" in
  let ls = Cfg.Intervals.loops g in
  checki "no loops" 0 (List.length ls)

let test_intervals_single_loop () =
  let g = Cfg.Builder.of_program (Imp.Factory.running_example ()) in
  let ls = Cfg.Intervals.loops g in
  checki "one loop" 1 (List.length ls);
  let l = List.hd ls in
  checkb "header is the join" true
    (Cfg.Core.kind g l.Cfg.Intervals.lheader = Cfg.Core.Join);
  (* Body: join, two assigns, fork. *)
  checki "body size" 4 (List.length l.Cfg.Intervals.body_list);
  checki "one back edge" 1 (List.length l.Cfg.Intervals.back_edges)

let test_intervals_nested () =
  let g =
    cfg_of
      {|
      i := 0
      while i < 3 do
        j := 0
        while j < 3 do
          s := s + 1
          j := j + 1
        end
        i := i + 1
      end
    |}
  in
  let ls = Cfg.Intervals.loops g in
  checki "two loops" 2 (List.length ls);
  let inner = List.nth ls 0 and outer = List.nth ls 1 in
  checkb "inner first" true
    (List.length inner.Cfg.Intervals.body_list
    < List.length outer.Cfg.Intervals.body_list);
  (* inner body contained in outer body *)
  List.iter
    (fun n -> checkb "containment" true outer.Cfg.Intervals.body.(n))
    inner.Cfg.Intervals.body_list

let test_intervals_sequential_loops () =
  let g = cfg_of "while x < 3 do x := x + 1 end while y < 3 do y := y + 1 end" in
  let ls = Cfg.Intervals.loops g in
  checki "two loops" 2 (List.length ls);
  let a = List.nth ls 0 and b = List.nth ls 1 in
  (* disjoint bodies *)
  List.iter
    (fun n -> checkb "disjoint" false b.Cfg.Intervals.body.(n))
    a.Cfg.Intervals.body_list

let test_intervals_unstructured_loop () =
  let g = Cfg.Builder.of_program (Imp.Factory.unstructured_example ()) in
  let ls = Cfg.Intervals.loops g in
  checki "one loop" 1 (List.length ls)

let test_irreducible_detected () =
  let g = Cfg.Builder.of_program (Imp.Factory.irreducible_example ()) in
  match Cfg.Intervals.loops g with
  | _ -> Alcotest.fail "expected Irreducible"
  | exception Cfg.Intervals.Irreducible _ -> ()

let test_reducible_predicate () =
  checkb "structured reducible" true
    (Cfg.Intervals.reducible (Cfg.Builder.of_program (Imp.Factory.sum_kernel ())));
  checkb "irreducible" false
    (Cfg.Intervals.reducible
       (Cfg.Builder.of_program (Imp.Factory.irreducible_example ())))

let test_body_vars () =
  let g = Cfg.Builder.of_program (Imp.Factory.running_example ()) in
  let l = List.hd (Cfg.Intervals.loops g) in
  Alcotest.(check (list string))
    "loop vars" [ "x"; "y" ]
    (Cfg.Intervals.body_vars g l)

(* ------------------------------------------------------------------ *)
(* Loopify                                                            *)

let test_loopify_acyclic_identity () =
  let g = cfg_of "x := 1 if x < 2 then y := 1 end" in
  let t = Cfg.Loopify.transform g in
  Cfg.Validate.check t.Cfg.Loopify.graph;
  checki "no loops" 0 (Array.length t.Cfg.Loopify.loops);
  checki "same node count" (Cfg.Core.num_nodes g)
    (Cfg.Core.num_nodes t.Cfg.Loopify.graph)

let test_loopify_single_loop () =
  let g = Cfg.Builder.of_program (Imp.Factory.running_example ()) in
  let t = Cfg.Loopify.transform g in
  Cfg.Validate.check t.Cfg.Loopify.graph;
  checki "one loop" 1 (Array.length t.Cfg.Loopify.loops);
  let l = t.Cfg.Loopify.loops.(0) in
  (* Entry feeds the header. *)
  checki "entry -> header" l.Cfg.Loopify.header
    (Cfg.Core.the_succ t.Cfg.Loopify.graph l.Cfg.Loopify.entry);
  (* All header preds are the entry now. *)
  List.iter
    (fun (p, _) -> checki "header pred is entry" l.Cfg.Loopify.entry p)
    (Cfg.Core.pred t.Cfg.Loopify.graph l.Cfg.Loopify.header);
  checki "one exit" 1 (List.length l.Cfg.Loopify.exits);
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] l.Cfg.Loopify.vars

let test_loopify_entry_pred_classes () =
  let g = Cfg.Builder.of_program (Imp.Factory.running_example ()) in
  let t = Cfg.Loopify.transform g in
  let l = t.Cfg.Loopify.loops.(0) in
  let preds = Cfg.Core.pred_nodes t.Cfg.Loopify.graph l.Cfg.Loopify.entry in
  checki "two entry preds" 2 (List.length preds);
  let back =
    List.filter (fun p -> Cfg.Loopify.is_back_edge_source t 0 p) preds
  in
  checki "one back edge" 1 (List.length back)

let test_loopify_nested () =
  let g =
    cfg_of
      {|
      i := 0
      while i < 3 do
        j := 0
        while j < 3 do
          s := s + j
          j := j + 1
        end
        i := i + 1
      end
    |}
  in
  let t = Cfg.Loopify.transform g in
  Cfg.Validate.check t.Cfg.Loopify.graph;
  checki "two loops" 2 (Array.length t.Cfg.Loopify.loops);
  let inner = t.Cfg.Loopify.loops.(0) and outer = t.Cfg.Loopify.loops.(1) in
  Alcotest.(check (option int)) "inner parent" (Some 1) inner.Cfg.Loopify.parent;
  Alcotest.(check (option int)) "outer parent" None outer.Cfg.Loopify.parent;
  (* Inner entry and exits are inside outer body. *)
  checkb "inner entry in outer" true
    t.Cfg.Loopify.in_body.(1).(inner.Cfg.Loopify.entry);
  List.iter
    (fun x -> checkb "inner exit in outer" true t.Cfg.Loopify.in_body.(1).(x))
    inner.Cfg.Loopify.exits;
  (* Exiting the inner loop towards the outer's increment shouldn't have
     created an outer exit on that edge: outer has exactly one exit. *)
  checki "outer exits" 1 (List.length outer.Cfg.Loopify.exits)

let test_loopify_two_exits () =
  let g = Cfg.Builder.of_program (Imp.Factory.unstructured_example ()) in
  let t = Cfg.Loopify.transform g in
  Cfg.Validate.check t.Cfg.Loopify.graph;
  checki "one loop" 1 (Array.length t.Cfg.Loopify.loops);
  checki "two exits" 2 (List.length t.Cfg.Loopify.loops.(0).Cfg.Loopify.exits)

let test_loopify_all_examples () =
  List.iter
    (fun (name, mk) ->
      match Cfg.Builder.of_program (mk ()) with
      | g -> (
          match Cfg.Loopify.transform g with
          | t -> (
              try Cfg.Validate.check t.Cfg.Loopify.graph
              with Cfg.Validate.Invalid m -> Alcotest.failf "%s: %s" name m)
          | exception Cfg.Intervals.Irreducible _ ->
              if name <> "irreducible_example" then
                Alcotest.failf "%s: unexpectedly irreducible" name)
      | exception Cfg.Builder.Unreachable_end _ ->
          Alcotest.failf "%s: unreachable end" name)
    Imp.Factory.all

(* ------------------------------------------------------------------ *)
(* Validate: manually constructed invalid graphs                      *)

let expect_invalid build =
  match Cfg.Validate.check (build ()) with
  | () -> Alcotest.fail "expected Invalid"
  | exception Cfg.Validate.Invalid _ -> ()
  | exception Cfg.Core.Malformed _ -> ()

let test_validate_fork_one_edge () =
  expect_invalid (fun () ->
      (* a fork with a single out-edge *)
      Cfg.Core.build
        ~kinds:
          [| Cfg.Core.Start; Cfg.Core.Fork (Imp.Ast.Bool true); Cfg.Core.End |]
        ~edges:[ (0, true, 1); (0, false, 2); (1, true, 2) ])

let test_validate_assign_false_edge () =
  expect_invalid (fun () ->
      (* an assignment whose single out-edge has the false direction *)
      Cfg.Core.build
        ~kinds:
          [|
            Cfg.Core.Start;
            Cfg.Core.Assign (Imp.Ast.Lvar "x", Imp.Ast.Int 1);
            Cfg.Core.End;
          |]
        ~edges:[ (0, true, 1); (0, false, 2); (1, false, 2) ])

let test_validate_missing_convention_edge () =
  expect_invalid (fun () ->
      (* start's false edge must go to end *)
      Cfg.Core.build
        ~kinds:
          [|
            Cfg.Core.Start;
            Cfg.Core.Assign (Imp.Ast.Lvar "x", Imp.Ast.Int 1);
            Cfg.Core.End;
          |]
        ~edges:[ (0, true, 1); (0, false, 1); (1, true, 2) ])

let test_core_accessors () =
  let g = cfg_of "x := 1 if x < 2 then y := 1 end" in
  let f =
    List.find
      (fun n -> match Cfg.Core.kind g n with Cfg.Core.Fork _ -> true | _ -> false)
      (Cfg.Core.nodes g)
  in
  checkb "succ_on true/false differ" true
    (Cfg.Core.succ_on g f true <> Cfg.Core.succ_on g f false);
  (match Cfg.Core.the_succ g f with
  | _ -> Alcotest.fail "the_succ on a fork must raise"
  | exception Cfg.Core.Malformed _ -> ());
  checki "edges = sum of succ lists" (Cfg.Core.num_edges g)
    (List.fold_left
       (fun acc n -> acc + List.length (Cfg.Core.succ g n))
       0 (Cfg.Core.nodes g))

(* ------------------------------------------------------------------ *)
(* Intervals: partition-level unit checks                             *)

let test_partition_covers_nodes () =
  let g = Cfg.Builder.of_program (Imp.Factory.gcd_kernel ()) in
  let ig = Cfg.Intervals.graph_of_cfg g in
  let ivs = Cfg.Intervals.partition ig in
  let covered = List.concat_map (fun iv -> iv.Cfg.Intervals.members) ivs in
  checki "every node in exactly one interval" (Cfg.Core.num_nodes g)
    (List.length (List.sort_uniq compare covered));
  (* headers are members of their own intervals, listed first *)
  List.iter
    (fun iv ->
      checki "header first" iv.Cfg.Intervals.header
        (List.hd iv.Cfg.Intervals.members))
    ivs

let test_derive_shrinks () =
  let g = Cfg.Builder.of_program (Imp.Factory.sum_kernel ()) in
  let ig = Cfg.Intervals.graph_of_cfg g in
  let ivs = Cfg.Intervals.partition ig in
  let g', _ = Cfg.Intervals.derive ig ivs in
  checkb "derived graph is smaller" true (g'.Cfg.Intervals.nn < ig.Cfg.Intervals.nn)

let test_three_deep_nest () =
  let g =
    cfg_of
      {| i := 0
         while i < 2 do
           j := 0
           while j < 2 do
             k := 0
             while k < 2 do s := s + 1 k := k + 1 end
             j := j + 1
           end
           i := i + 1
         end |}
  in
  let t = Cfg.Loopify.transform g in
  Cfg.Validate.check t.Cfg.Loopify.graph;
  checki "three loops" 3 (Array.length t.Cfg.Loopify.loops);
  (* parent chain: innermost -> middle -> outer -> None *)
  let l0 = t.Cfg.Loopify.loops.(0) in
  let l1 = t.Cfg.Loopify.loops.(1) in
  let l2 = t.Cfg.Loopify.loops.(2) in
  Alcotest.(check (option int)) "innermost parent" (Some 1) l0.Cfg.Loopify.parent;
  Alcotest.(check (option int)) "middle parent" (Some 2) l1.Cfg.Loopify.parent;
  Alcotest.(check (option int)) "outer parent" None l2.Cfg.Loopify.parent

(* ------------------------------------------------------------------ *)
(* Node splitting                                                     *)

let test_split_irreducible_example () =
  let g = Cfg.Builder.of_program (Imp.Factory.irreducible_example ()) in
  checkb "irreducible before" false (Cfg.Intervals.reducible g);
  let g' = Cfg.Split.make_reducible g in
  Cfg.Validate.check g';
  checkb "reducible after" true (Cfg.Intervals.reducible g');
  checkb "copies added" true (Cfg.Split.split_count g g' > 0)

let test_split_reducible_identity () =
  let g = Cfg.Builder.of_program (Imp.Factory.sum_kernel ()) in
  let g' = Cfg.Split.make_reducible g in
  checki "no copies" 0 (Cfg.Split.split_count g g')

let test_irreducible_region () =
  let g = Cfg.Builder.of_program (Imp.Factory.irreducible_example ()) in
  (match Cfg.Intervals.irreducible_region g with
  | Some (region, entries) ->
      checkb "region has >= 2 nodes" true (List.length region >= 2);
      checkb "multiple entries" true (List.length entries >= 2)
  | None -> Alcotest.fail "expected an irreducible region");
  let r = Cfg.Builder.of_program (Imp.Factory.sum_kernel ()) in
  checkb "reducible graph has no region" true
    (Cfg.Intervals.irreducible_region r = None)

let test_split_random_flat () =
  (* every random goto program becomes reducible within the budget *)
  let rand = Random.State.make [| 77 |] in
  for _ = 1 to 60 do
    let g = Workloads.Random_gen.random_cfg rand in
    let g' = Cfg.Split.make_reducible g in
    Cfg.Validate.check g';
    checkb "reducible" true (Cfg.Intervals.reducible g')
  done

let () =
  Alcotest.run "cfg"
    [
      ( "builder",
        [
          Alcotest.test_case "straight line" `Quick test_straightline;
          Alcotest.test_case "start is a fork" `Quick test_start_is_fork;
          Alcotest.test_case "running example (fig 1)" `Quick
            test_running_example_shape;
          Alcotest.test_case "if shape" `Quick test_if_shape;
          Alcotest.test_case "dead code pruned" `Quick test_dead_code_pruned;
          Alcotest.test_case "goto chain" `Quick test_goto_chain;
          Alcotest.test_case "infinite loop rejected" `Quick
            test_infinite_loop_rejected;
          Alcotest.test_case "referenced vars" `Quick test_referenced_vars;
          Alcotest.test_case "all examples validate" `Quick
            test_all_examples_validate;
          Alcotest.test_case "dot output" `Quick test_dot_output;
        ] );
      ( "intervals",
        [
          Alcotest.test_case "acyclic" `Quick test_intervals_acyclic;
          Alcotest.test_case "single loop" `Quick test_intervals_single_loop;
          Alcotest.test_case "nested loops" `Quick test_intervals_nested;
          Alcotest.test_case "sequential loops" `Quick
            test_intervals_sequential_loops;
          Alcotest.test_case "unstructured loop" `Quick
            test_intervals_unstructured_loop;
          Alcotest.test_case "irreducible detected" `Quick
            test_irreducible_detected;
          Alcotest.test_case "reducible predicate" `Quick
            test_reducible_predicate;
          Alcotest.test_case "body vars" `Quick test_body_vars;
        ] );
      ( "validate",
        [
          Alcotest.test_case "fork with one edge" `Quick
            test_validate_fork_one_edge;
          Alcotest.test_case "assign with false edge" `Quick
            test_validate_assign_false_edge;
          Alcotest.test_case "missing convention edge" `Quick
            test_validate_missing_convention_edge;
          Alcotest.test_case "core accessors" `Quick test_core_accessors;
        ] );
      ( "interval internals",
        [
          Alcotest.test_case "partition covers nodes" `Quick
            test_partition_covers_nodes;
          Alcotest.test_case "derive shrinks" `Quick test_derive_shrinks;
          Alcotest.test_case "three-deep nest" `Quick test_three_deep_nest;
        ] );
      ( "split",
        [
          Alcotest.test_case "irreducible example" `Quick
            test_split_irreducible_example;
          Alcotest.test_case "reducible identity" `Quick
            test_split_reducible_identity;
          Alcotest.test_case "irreducible region" `Quick test_irreducible_region;
          Alcotest.test_case "random flat programs" `Quick test_split_random_flat;
        ] );
      ( "loopify",
        [
          Alcotest.test_case "acyclic identity" `Quick
            test_loopify_acyclic_identity;
          Alcotest.test_case "single loop" `Quick test_loopify_single_loop;
          Alcotest.test_case "entry pred classes" `Quick
            test_loopify_entry_pred_classes;
          Alcotest.test_case "nested loops" `Quick test_loopify_nested;
          Alcotest.test_case "two exits" `Quick test_loopify_two_exits;
          Alcotest.test_case "all examples" `Quick test_loopify_all_examples;
        ] );
    ]
