(* Tests for the dataflow-graph IR: builder validation, well-formedness
   checking, statistics, DOT rendering, and the execution tracer. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

module B = Dfg.Graph.Builder
module N = Dfg.Node

let tiny_graph () =
  (* start -> const -> store x -> end *)
  let b = B.create () in
  let start = B.add b (N.Start 1) in
  let c = B.add b (N.Const (Imp.Value.Int 5)) in
  let st = B.add b (N.Store { var = "x"; indexed = false; mem = N.Plain }) in
  let stop = B.add b (N.End 1) in
  B.connect b ~dummy:true (start, 0) (c, 0);
  B.connect b ~dummy:true (start, 0) (st, 0);
  B.connect b (c, 0) (st, 1);
  B.connect b ~dummy:true (st, 0) (stop, 0);
  B.finish b

(* ------------------------------------------------------------------ *)
(* Builder                                                            *)

let test_builder_roundtrip () =
  let g = tiny_graph () in
  checki "nodes" 4 (Dfg.Graph.num_nodes g);
  checki "arcs" 4 (Dfg.Graph.num_arcs g);
  checki "start" 0 g.Dfg.Graph.start;
  checki "stop" 3 g.Dfg.Graph.stop

let expect_ill_formed build =
  match build () with
  | _ -> Alcotest.fail "expected Ill_formed"
  | exception B.Ill_formed _ -> ()

let test_builder_unfed_input () =
  expect_ill_formed (fun () ->
      let b = B.create () in
      let _start = B.add b (N.Start 1) in
      let _stop = B.add b (N.End 1) in
      (* End's input port is never fed *)
      B.finish b)

let test_builder_double_fed_input () =
  expect_ill_formed (fun () ->
      let b = B.create () in
      let start = B.add b (N.Start 2) in
      let stop = B.add b (N.End 1) in
      B.connect b (start, 0) (stop, 0);
      B.connect b (start, 1) (stop, 0);
      (* two arcs into a non-merge input *)
      B.finish b)

let test_builder_port_out_of_range () =
  expect_ill_formed (fun () ->
      let b = B.create () in
      let start = B.add b (N.Start 1) in
      let stop = B.add b (N.End 1) in
      B.connect b (start, 5) (stop, 0);
      B.finish b)

let test_builder_two_starts () =
  expect_ill_formed (fun () ->
      let b = B.create () in
      let s1 = B.add b (N.Start 1) in
      let s2 = B.add b (N.Start 1) in
      let stop = B.add b (N.End 2) in
      B.connect b (s1, 0) (stop, 0);
      B.connect b (s2, 0) (stop, 1);
      B.finish b)

let test_merge_accepts_many () =
  let b = B.create () in
  let start = B.add b (N.Start 3) in
  let m = B.add b N.Merge in
  let stop = B.add b (N.End 1) in
  B.connect b (start, 0) (m, 0);
  B.connect b (start, 1) (m, 0);
  B.connect b (start, 2) (m, 0);
  B.connect b (m, 0) (stop, 0);
  let g = B.finish b in
  checki "three arcs into the merge" 3
    (List.length (Dfg.Graph.incoming g m 0))

(* ------------------------------------------------------------------ *)
(* Check                                                              *)

let test_check_accepts_tiny () = Dfg.Check.check (tiny_graph ())

let test_check_unconnected_output () =
  (* a const whose output goes nowhere *)
  let b = B.create () in
  let start = B.add b (N.Start 2) in
  let c = B.add b (N.Const (Imp.Value.Int 1)) in
  let stop = B.add b (N.End 1) in
  B.connect b ~dummy:true (start, 0) (c, 0);
  B.connect b ~dummy:true (start, 1) (stop, 0);
  let g = B.finish b in
  (match Dfg.Check.check g with
  | _ -> Alcotest.fail "expected Invalid"
  | exception Dfg.Check.Invalid _ -> ())

let test_check_value_fed_access () =
  (* memory op whose access input is fed by a value arc *)
  let b = B.create () in
  let start = B.add b (N.Start 1) in
  let ld = B.add b (N.Load { var = "x"; indexed = false; mem = N.Plain }) in
  let stop = B.add b (N.End 2) in
  B.connect b (start, 0) (ld, 0);
  (* not dummy! *)
  B.connect b (ld, 0) (stop, 0);
  B.connect b ~dummy:true (ld, 1) (stop, 1);
  let g = B.finish b in
  (match Dfg.Check.check g with
  | _ -> Alcotest.fail "expected Invalid"
  | exception Dfg.Check.Invalid _ -> ())

let test_check_switch_dead_branch_ok () =
  (* a switch with an unconnected false output is legal *)
  let b = B.create () in
  let start = B.add b (N.Start 2) in
  let sw = B.add b N.Switch in
  let stop = B.add b (N.End 1) in
  B.connect b ~dummy:true (start, 0) (sw, 0);
  B.connect b (start, 1) (sw, 1);
  B.connect b ~dummy:true (sw, 0) (stop, 0);
  Dfg.Check.check (B.finish b)

(* ------------------------------------------------------------------ *)
(* Stats and arities                                                  *)

let test_stats_tiny () =
  let st = Dfg.Stats.of_graph (tiny_graph ()) in
  checki "stores" 1 st.Dfg.Stats.stores;
  checki "alu (const)" 1 st.Dfg.Stats.alu;
  checki "dummy arcs" 3 st.Dfg.Stats.dummy_arcs

let test_arities () =
  checki "load plain" 1 (N.in_arity (N.Load { var = "x"; indexed = false; mem = N.Plain }));
  checki "load indexed" 2 (N.in_arity (N.Load { var = "x"; indexed = true; mem = N.Plain }));
  checki "store indexed" 3 (N.in_arity (N.Store { var = "x"; indexed = true; mem = N.Plain }));
  checki "switch in" 2 (N.in_arity N.Switch);
  checki "switch out" 2 (N.out_arity N.Switch);
  checki "entry in" 6 (N.in_arity (N.Loop_entry { loop = 0; arity = 3 }));
  checki "entry out" 3 (N.out_arity (N.Loop_entry { loop = 0; arity = 3 }));
  checki "sink out" 0 (N.out_arity N.Sink);
  checki "synch in" 4 (N.in_arity (N.Synch 4))

(* tiny substring helper to avoid extra deps *)
let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let test_dot () =
  let s = Dfg.Dot.to_string (tiny_graph ()) in
  checkb "digraph" true (String.sub s 0 7 = "digraph");
  checkb "has dashed dummy arcs" true (contains_sub s "style=dashed")

(* ------------------------------------------------------------------ *)
(* Textual format                                                     *)

let test_text_roundtrip_tiny () =
  let g = tiny_graph () in
  let s = Dfg.Text.print g in
  let g' = Dfg.Text.parse s in
  Alcotest.(check string) "round trip" s (Dfg.Text.print g')

let test_text_roundtrip_compiled () =
  (* every node kind the translator emits survives the round trip, and
     the reloaded graph executes identically *)
  List.iter
    (fun (name, mk) ->
      let p = mk () in
      if not (Analysis.Alias.has_aliasing (Analysis.Alias.of_program p)) then
        match
          Dflow.Driver.compile
            ~transforms:Dflow.Driver.all_transforms
            (Dflow.Driver.Schema2 Dflow.Engine.Pipelined)
            p
        with
        | c -> (
            let s = Dfg.Text.print c.Dflow.Driver.graph in
            match Dfg.Text.parse s with
            | g' ->
                Alcotest.(check string) (name ^ " text round trip") s
                  (Dfg.Text.print g');
                let r =
                  Machine.Interp.run_exn
                    { Machine.Interp.graph = g'; layout = c.Dflow.Driver.layout }
                in
                checkb (name ^ " reloaded graph runs") true
                  (Imp.Memory.equal
                     (Imp.Eval.run_program ~fuel:1_000_000 p)
                     r.Machine.Interp.memory)
            | exception exn ->
                Alcotest.failf "%s failed to reparse: %s" name
                  (Printexc.to_string exn))
        | exception Cfg.Intervals.Irreducible _ -> ())
    Imp.Factory.all

let test_text_random_roundtrip () =
  let rand = Random.State.make [| 808 |] in
  for _ = 1 to 20 do
    let p = Workloads.Random_gen.structured rand in
    if not (Analysis.Alias.has_aliasing (Analysis.Alias.of_program p)) then begin
      let c =
        Dflow.Driver.compile (Dflow.Driver.Schema2_opt Dflow.Engine.Pipelined) p
      in
      let s = Dfg.Text.print c.Dflow.Driver.graph in
      Alcotest.(check string) "round trip" s (Dfg.Text.print (Dfg.Text.parse s))
    end
  done

let test_text_rejects_garbage () =
  let bad s =
    match Dfg.Text.parse s with
    | _ -> Alcotest.failf "expected rejection of %S" s
    | exception Dfg.Text.Parse_error _ -> ()
    | exception B.Ill_formed _ -> ()
  in
  bad "node 0 frobnicate";
  bad "node 1 start/1";
  (* non-dense ids *)
  bad "arc 0.0 -> 1.0";
  (* arcs without nodes *)
  bad "node 0 start/1\nnode 1 end/1\narc 0.0 => 1.0"

let test_text_kind_table () =
  (* every kind round-trips through its textual form *)
  List.iter
    (fun k ->
      Alcotest.(check string)
        (Dfg.Text.kind_to_text k)
        (Dfg.Text.kind_to_text k)
        (Dfg.Text.kind_to_text (Dfg.Text.kind_of_text (Dfg.Text.kind_to_text k))))
    [
      N.Start 3;
      N.End 2;
      N.Const (Imp.Value.Int (-4));
      N.Const (Imp.Value.Bool true);
      N.Binop Imp.Ast.Mod;
      N.Unop Imp.Ast.Not;
      N.Id;
      N.Sink;
      N.Load { var = "x"; indexed = true; mem = N.Plain };
      N.Store { var = "a"; indexed = true; mem = N.I_structure };
      N.Switch;
      N.Merge;
      N.Synch 5;
      N.Loop_entry { loop = 2; arity = 3 };
      N.Loop_exit { loop = 2; arity = 3 };
    ]

(* ------------------------------------------------------------------ *)
(* Simplify                                                           *)

let test_simplify_splices_ids () =
  (* value passing introduces Id fan-out points; simplify removes them
     without changing results *)
  let p = Imp.Factory.fib_kernel ~n:8 () in
  let c =
    Dflow.Driver.compile
      ~transforms:{ Dflow.Driver.no_transforms with Dflow.Driver.value_passing = true }
      (Dflow.Driver.Schema2 Dflow.Engine.Pipelined)
      p
  in
  let ids g = Dfg.Graph.count g (function N.Id -> true | _ -> false) in
  checkb "ids present before" true (ids c.Dflow.Driver.graph > 0);
  let g' = Dfg.Simplify.run c.Dflow.Driver.graph in
  Dfg.Check.check g';
  checki "no ids after" 0 (ids g');
  let run g =
    Machine.Interp.run_exn
      { Machine.Interp.graph = g; layout = c.Dflow.Driver.layout }
  in
  let r = run c.Dflow.Driver.graph and r' = run g' in
  checkb "same store" true
    (Imp.Memory.equal r.Machine.Interp.memory r'.Machine.Interp.memory);
  checkb "not slower" true (r'.Machine.Interp.cycles <= r.Machine.Interp.cycles)

let test_simplify_idempotent () =
  let p = Imp.Factory.sum_kernel ~n:5 () in
  let c =
    Dflow.Driver.compile
      ~transforms:Dflow.Driver.all_transforms
      (Dflow.Driver.Schema2 Dflow.Engine.Barrier)
      p
  in
  let g1 = Dfg.Simplify.run c.Dflow.Driver.graph in
  let g2 = Dfg.Simplify.run g1 in
  checki "stable node count" (Dfg.Graph.num_nodes g1) (Dfg.Graph.num_nodes g2);
  checki "stable arc count" (Dfg.Graph.num_arcs g1) (Dfg.Graph.num_arcs g2)

let test_simplify_random_differential () =
  let rand = Random.State.make [| 5150 |] in
  for _ = 1 to 20 do
    let p = Workloads.Random_gen.structured rand in
    if not (Analysis.Alias.has_aliasing (Analysis.Alias.of_program p)) then begin
      let c =
        Dflow.Driver.compile
          ~transforms:Dflow.Driver.all_transforms
          (Dflow.Driver.Schema2 Dflow.Engine.Pipelined)
          p
      in
      let g' = Dfg.Simplify.run c.Dflow.Driver.graph in
      Dfg.Check.check g';
      let r' =
        Machine.Interp.run_exn
          { Machine.Interp.graph = g'; layout = c.Dflow.Driver.layout }
      in
      let expected = Imp.Eval.run_program ~fuel:1_000_000 p in
      checkb "simplified graph matches reference" true
        (Imp.Memory.equal expected r'.Machine.Interp.memory)
    end
  done

(* ------------------------------------------------------------------ *)
(* Optimizer                                                          *)

let alu g = (Dfg.Stats.of_graph g).Dfg.Stats.alu

let opt_differential ?(transforms = Dflow.Driver.no_transforms) spec p =
  let c = Dflow.Driver.compile ~transforms spec p in
  let g' = Dfg.Opt.run c.Dflow.Driver.graph in
  Dfg.Check.check g';
  let r =
    Machine.Interp.run_exn
      { Machine.Interp.graph = g'; layout = c.Dflow.Driver.layout }
  in
  (c.Dflow.Driver.graph, g', r)

let test_opt_constant_folding () =
  let p = Imp.Parser.program_of_string "x := 2 + 3 * 4 y := x" in
  let g0, g1, r =
    opt_differential (Dflow.Driver.Schema2 Dflow.Engine.Barrier) p
  in
  checkb "fewer ALU ops" true (alu g1 < alu g0);
  checki "x" 14 (Imp.Memory.read r.Machine.Interp.memory "x" 0);
  checki "y" 14 (Imp.Memory.read r.Machine.Interp.memory "y" 0)

let test_opt_cse () =
  (* a + b computed twice from the same loads *)
  let p = Imp.Parser.program_of_string "c := (a + b) * (a + b)" in
  let g0, g1, r =
    opt_differential (Dflow.Driver.Schema2 Dflow.Engine.Barrier) p
  in
  checkb "one add eliminated" true (alu g1 < alu g0);
  checki "c" 0 (Imp.Memory.read r.Machine.Interp.memory "c" 0)

let test_opt_idempotent () =
  let p = Imp.Factory.gcd_kernel () in
  let c = Dflow.Driver.compile (Dflow.Driver.Schema2 Dflow.Engine.Barrier) p in
  let g1 = Dfg.Opt.run c.Dflow.Driver.graph in
  let g2 = Dfg.Opt.run g1 in
  checki "fixpoint" (Dfg.Graph.num_nodes g1) (Dfg.Graph.num_nodes g2)

let test_opt_random_differential () =
  let rand = Random.State.make [| 60702 |] in
  for _ = 1 to 25 do
    let p = Workloads.Random_gen.structured rand in
    if not (Analysis.Alias.has_aliasing (Analysis.Alias.of_program p)) then begin
      let expected = Imp.Eval.run_program ~fuel:1_000_000 p in
      List.iter
        (fun (spec, transforms) ->
          let _, _, r = opt_differential ~transforms spec p in
          checkb "optimized graph preserves semantics" true
            (Imp.Memory.equal expected r.Machine.Interp.memory))
        [
          (Dflow.Driver.Schema2 Dflow.Engine.Pipelined, Dflow.Driver.no_transforms);
          (Dflow.Driver.Schema2_opt Dflow.Engine.Barrier, Dflow.Driver.no_transforms);
          (Dflow.Driver.Schema2 Dflow.Engine.Pipelined, Dflow.Driver.all_transforms);
        ]
    end
  done

let test_opt_composes_with_simplify () =
  let p = Imp.Factory.fib_kernel ~n:6 () in
  let c =
    Dflow.Driver.compile
      ~transforms:{ Dflow.Driver.no_transforms with Dflow.Driver.value_passing = true }
      (Dflow.Driver.Schema2 Dflow.Engine.Pipelined)
      p
  in
  let g' = Dfg.Opt.run (Dfg.Simplify.run c.Dflow.Driver.graph) in
  Dfg.Check.check g';
  let r =
    Machine.Interp.run_exn
      { Machine.Interp.graph = g'; layout = c.Dflow.Driver.layout }
  in
  checkb "matches reference" true
    (Imp.Memory.equal (Imp.Eval.run_program p) r.Machine.Interp.memory)

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)

let test_trace_records () =
  let p = Imp.Factory.sum_kernel ~n:4 () in
  let c = Dflow.Driver.compile (Dflow.Driver.Schema2 Dflow.Engine.Pipelined) p in
  let t = Machine.Trace.create () in
  let _ =
    Machine.Interp.run ~on_fire:(Machine.Trace.on_fire t)
      { Machine.Interp.graph = c.Dflow.Driver.graph; layout = c.Dflow.Driver.layout }
  in
  checkb "events recorded" true (Machine.Trace.total t > 20);
  let per_ctx = Machine.Trace.per_context t in
  (* 4 loop iterations + top level: at least 5 contexts *)
  checkb "several contexts" true (List.length per_ctx >= 5)

let test_trace_overlap_pipelined_vs_barrier () =
  (* pipelined loop control lets iteration contexts overlap in time;
     barrier control keeps at most adjacent boundary overlap *)
  let p =
    Imp.Parser.program_of_string
      {| i := 0
         while i < 8 do
           a := a + i * i * i
           i := i + 1
         end |}
  in
  let overlap spec =
    let c = Dflow.Driver.compile spec p in
    let t = Machine.Trace.create () in
    let _ =
      Machine.Interp.run ~on_fire:(Machine.Trace.on_fire t)
        { Machine.Interp.graph = c.Dflow.Driver.graph; layout = c.Dflow.Driver.layout }
    in
    Machine.Trace.max_context_overlap t
  in
  let b = overlap (Dflow.Driver.Schema2 Dflow.Engine.Barrier) in
  let pl = overlap (Dflow.Driver.Schema2 Dflow.Engine.Pipelined) in
  checkb
    (Fmt.str "pipelined overlap (%d) >= barrier overlap (%d)" pl b)
    true (pl >= b)

let test_trace_timeline_renders () =
  let p = Imp.Factory.sum_kernel ~n:3 () in
  let c = Dflow.Driver.compile Dflow.Driver.Schema1 p in
  let t = Machine.Trace.create () in
  let _ =
    Machine.Interp.run ~on_fire:(Machine.Trace.on_fire t)
      { Machine.Interp.graph = c.Dflow.Driver.graph; layout = c.Dflow.Driver.layout }
  in
  let s = Fmt.str "%a" (Machine.Trace.pp_timeline ~max_cycles:10) t in
  checkb "nonempty" true (String.length s > 50)

let () =
  Alcotest.run "dfg"
    [
      ( "builder",
        [
          Alcotest.test_case "round trip" `Quick test_builder_roundtrip;
          Alcotest.test_case "unfed input" `Quick test_builder_unfed_input;
          Alcotest.test_case "double-fed input" `Quick test_builder_double_fed_input;
          Alcotest.test_case "port out of range" `Quick test_builder_port_out_of_range;
          Alcotest.test_case "two starts" `Quick test_builder_two_starts;
          Alcotest.test_case "merge accepts many" `Quick test_merge_accepts_many;
        ] );
      ( "check",
        [
          Alcotest.test_case "accepts well-formed" `Quick test_check_accepts_tiny;
          Alcotest.test_case "unconnected output" `Quick test_check_unconnected_output;
          Alcotest.test_case "value-fed access input" `Quick test_check_value_fed_access;
          Alcotest.test_case "switch dead branch ok" `Quick
            test_check_switch_dead_branch_ok;
        ] );
      ( "stats",
        [
          Alcotest.test_case "tiny graph" `Quick test_stats_tiny;
          Alcotest.test_case "arities" `Quick test_arities;
          Alcotest.test_case "dot rendering" `Quick test_dot;
        ] );
      ( "text",
        [
          Alcotest.test_case "tiny round trip" `Quick test_text_roundtrip_tiny;
          Alcotest.test_case "compiled graphs round trip" `Quick
            test_text_roundtrip_compiled;
          Alcotest.test_case "rejects garbage" `Quick test_text_rejects_garbage;
          Alcotest.test_case "random graphs round trip" `Quick
            test_text_random_roundtrip;
          Alcotest.test_case "kind table" `Quick test_text_kind_table;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "splices ids" `Quick test_simplify_splices_ids;
          Alcotest.test_case "idempotent" `Quick test_simplify_idempotent;
          Alcotest.test_case "random differential" `Quick
            test_simplify_random_differential;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "constant folding" `Quick test_opt_constant_folding;
          Alcotest.test_case "cse" `Quick test_opt_cse;
          Alcotest.test_case "idempotent" `Quick test_opt_idempotent;
          Alcotest.test_case "random differential" `Quick
            test_opt_random_differential;
          Alcotest.test_case "composes with simplify" `Quick
            test_opt_composes_with_simplify;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records firings" `Quick test_trace_records;
          Alcotest.test_case "context overlap" `Quick
            test_trace_overlap_pipelined_vs_barrier;
          Alcotest.test_case "timeline renders" `Quick test_trace_timeline_renders;
        ] );
    ]
