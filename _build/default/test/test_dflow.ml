(* End-to-end tests of the translation schemas: every schema executed on
   the dataflow machine must reproduce the reference interpreter's final
   store -- the library's central invariant -- plus structural properties
   (well-formedness, switch counts, the Figure 8 pathology). *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let machine_of (c : Dflow.Driver.compiled) : Machine.Interp.program =
  { Machine.Interp.graph = c.Dflow.Driver.graph; layout = c.Dflow.Driver.layout }

let run_spec ?config spec p =
  let c = Dflow.Driver.compile spec p in
  Dfg.Check.check c.Dflow.Driver.graph;
  Machine.Interp.run_exn ?config (machine_of c)

(* All specs that must preserve sequential semantics, with the program
   classes they are sound for. *)
let specs_no_alias =
  Dflow.Driver.
    [
      Schema1;
      Schema2 Dflow.Engine.Barrier;
      Schema2 Dflow.Engine.Pipelined;
      Schema2_opt Dflow.Engine.Barrier;
      Schema2_opt Dflow.Engine.Pipelined;
    ]

let specs_alias_ok =
  Dflow.Driver.
    [
      Schema1;
      Schema3 (Singleton, Dflow.Engine.Barrier);
      Schema3 (Singleton, Dflow.Engine.Pipelined);
      Schema3 (Classes, Dflow.Engine.Barrier);
      Schema3 (Components, Dflow.Engine.Barrier);
      Schema3 (Components, Dflow.Engine.Pipelined);
    ]

let has_aliasing p =
  Analysis.Alias.has_aliasing (Analysis.Alias.of_program p)

let differential_one spec p name =
  match Dflow.Driver.compile spec p with
  | c -> (
      Dfg.Check.check c.Dflow.Driver.graph;
      let expected = Imp.Eval.run_program ~fuel:1_000_000 p in
      match Machine.Interp.run_exn (machine_of c) with
      | r ->
          if not (Imp.Memory.equal expected r.Machine.Interp.memory) then
            Alcotest.failf "%s under %s: stores differ@.reference:@.%a@.machine:@.%a"
              name
              (Dflow.Driver.spec_to_string spec)
              Imp.Memory.pp expected Imp.Memory.pp r.Machine.Interp.memory
      | exception exn ->
          Alcotest.failf "%s under %s: %s" name
            (Dflow.Driver.spec_to_string spec)
            (Printexc.to_string exn))
  | exception Cfg.Intervals.Irreducible _ -> () (* schema 2/3 limitation *)

let test_differential_examples () =
  List.iter
    (fun (name, mk) ->
      let p = mk () in
      let specs = if has_aliasing p then specs_alias_ok else specs_no_alias @ specs_alias_ok in
      List.iter (fun spec -> differential_one spec p name) specs)
    Imp.Factory.all

(* ------------------------------------------------------------------ *)
(* Targeted semantics checks                                          *)

let read_var r x = Imp.Memory.read r.Machine.Interp.memory x 0

let test_straightline_all_schemas () =
  let p = Imp.Parser.program_of_string "x := 2 y := x * 3 z := y - x" in
  List.iter
    (fun spec ->
      let r = run_spec spec p in
      checki "z" 4 (read_var r "z"))
    specs_no_alias

let test_loop_all_schemas () =
  let p = Imp.Factory.sum_kernel ~n:10 () in
  List.iter
    (fun spec ->
      let r = run_spec spec p in
      checki "s" 45 (read_var r "s"))
    specs_no_alias

let test_alias_example_all_covers () =
  let p = Imp.Factory.fortran_alias_example () in
  (* reference: x and z share storage.
     x:=1; y:=2; z:=z+x+y -> z=x=3... with equiv x z: writes interleave. *)
  let expected = Imp.Eval.run_program p in
  List.iter
    (fun spec ->
      let r = run_spec spec p in
      checkb
        (Dflow.Driver.spec_to_string spec)
        true
        (Imp.Memory.equal expected r.Machine.Interp.memory))
    specs_alias_ok

let test_schema2_rejects_aliasing () =
  let p = Imp.Factory.fortran_alias_example () in
  match Dflow.Driver.compile (Dflow.Driver.Schema2 Dflow.Engine.Barrier) p with
  | _ -> Alcotest.fail "expected Aliasing_unsupported"
  | exception Dflow.Driver.Aliasing_unsupported _ -> ()

(* A loop in which the y-statement is slow (deep expression) while the
   x-statement and the loop predicate are fast: without loop control the
   predicate for iteration i+1 reaches y's switch while iteration i's
   predicate is still waiting there -- two same-tag tokens on one arc,
   the Figure 8 pile-up. *)
let figure8_program () =
  Imp.Parser.program_of_string
    {|
      l:
      y := ((((x + 1) * 3 + x) * 3 + x) * 3 + x) * 3 + x
      x := x + 1
      if x < 5 goto l
    |}

let slow_alu =
  {
    Machine.Config.default with
    Machine.Config.latencies = { alu = 8; memory = 1; routing = 1 };
  }

let test_figure8_collision () =
  let p = figure8_program () in
  let c = Dflow.Driver.compile Dflow.Driver.Schema2_unsafe_no_loop_control p in
  match Machine.Interp.run ~config:slow_alu (machine_of c) with
  | _ -> Alcotest.fail "expected Token_collision"
  | exception Machine.Interp.Token_collision _ -> ()

let test_figure8_fixed_by_loop_control () =
  (* The same program and latencies with loop control: iterations carry
     distinct tags and execution is clean (and correct). *)
  let p = figure8_program () in
  let expected = Imp.Eval.run_program p in
  List.iter
    (fun lc ->
      let r = run_spec ~config:slow_alu (Dflow.Driver.Schema2 lc) p in
      checkb "store matches" true
        (Imp.Memory.equal expected r.Machine.Interp.memory))
    [ Dflow.Engine.Barrier; Dflow.Engine.Pipelined ]

let test_figure8_acyclic_ok () =
  (* Without cycles, Schema 2 needs no loop control at all. *)
  let p = Imp.Parser.program_of_string "x := 1 if x < 2 then y := 1 end z := 2" in
  let r = run_spec Dflow.Driver.Schema2_unsafe_no_loop_control p in
  checki "y" 1 (read_var r "y")

(* ------------------------------------------------------------------ *)
(* Structural properties                                              *)

let switches g = Dfg.Graph.count g (function Dfg.Node.Switch -> true | _ -> false)

let test_opt_fewer_switches () =
  (* Figure 9: the optimized construction eliminates the x-switch. *)
  let p = Imp.Factory.bypass_example () in
  let c2 = Dflow.Driver.compile (Dflow.Driver.Schema2 Dflow.Engine.Barrier) p in
  let copt = Dflow.Driver.compile (Dflow.Driver.Schema2_opt Dflow.Engine.Barrier) p in
  checkb "strictly fewer switches" true
    (switches copt.Dflow.Driver.graph < switches c2.Dflow.Driver.graph)

let test_opt_bypass_no_x_switch () =
  (* In the optimized graph of the Figure 9 program, no switch carries
     access_x: verify by counting switches; vars w,y,z each need one at
     the conditional, x none, plus none at start. *)
  let p = Imp.Factory.bypass_example () in
  let copt = Dflow.Driver.compile (Dflow.Driver.Schema2_opt Dflow.Engine.Barrier) p in
  (* 5 variables u?,w,x,y,z -> schema2 would put 5 switches at the fork *)
  let c2 = Dflow.Driver.compile (Dflow.Driver.Schema2 Dflow.Engine.Barrier) p in
  checki "schema2 switches = vars" 4 (switches c2.Dflow.Driver.graph);
  (* only y and z are referenced between the fork and its postdominator *)
  checki "optimized switches" 2 (switches copt.Dflow.Driver.graph)

let test_size_bound_schema2 () =
  (* |DFG| = O(E * V) for Schema 2 (Section 3). *)
  List.iter
    (fun (_, mk) ->
      let p = mk () in
      if not (has_aliasing p) then
        match Dflow.Driver.compile (Dflow.Driver.Schema2 Dflow.Engine.Barrier) p with
        | c ->
            let g = c.Dflow.Driver.cfg in
            let e = Cfg.Core.num_edges g in
            let v = max 1 (List.length (Imp.Ast.program_vars p)) in
            let stmt_cost =
              (* per-statement expression graphs are program-size, not
                 E*V; account them separately *)
              Imp.Ast.stmt_size p.Imp.Ast.body * 4
            in
            checkb "size bound" true
              (Dfg.Graph.num_arcs c.Dflow.Driver.graph <= (12 * e * v) + (8 * stmt_cost))
        | exception Cfg.Intervals.Irreducible _ -> ())
    Imp.Factory.all

let test_dot_renders () =
  let c =
    Dflow.Driver.compile (Dflow.Driver.Schema2 Dflow.Engine.Barrier)
      (Imp.Factory.running_example ())
  in
  let s = Dfg.Dot.to_string c.Dflow.Driver.graph in
  checkb "digraph" true (String.sub s 0 7 = "digraph")

let test_stats () =
  let c =
    Dflow.Driver.compile (Dflow.Driver.Schema2 Dflow.Engine.Barrier)
      (Imp.Factory.running_example ())
  in
  let st = Dfg.Stats.of_graph c.Dflow.Driver.graph in
  checkb "has switches" true (st.Dfg.Stats.switches > 0);
  checkb "has loop controls" true (st.Dfg.Stats.loop_controls > 0);
  checkb "has loads and stores" true (st.Dfg.Stats.loads > 0 && st.Dfg.Stats.stores > 0)

(* ------------------------------------------------------------------ *)
(* Parallelism sanity (cycle counts under the ideal machine)          *)

let ideal = Machine.Config.ideal

let test_schema2_faster_on_independent () =
  let p = Imp.Factory.independent_straightline ~k:8 () in
  let r1 = run_spec ~config:ideal Dflow.Driver.Schema1 p in
  let r2 = run_spec ~config:ideal (Dflow.Driver.Schema2 Dflow.Engine.Barrier) p in
  checkb "schema2 shortens the critical path" true
    (r2.Machine.Interp.cycles < r1.Machine.Interp.cycles)

let test_no_speedup_on_chain () =
  (* Fully dependent chain: schema 2 cannot beat schema 1 by much. *)
  let p = Imp.Factory.dependent_chain ~k:8 () in
  let r1 = run_spec ~config:ideal Dflow.Driver.Schema1 p in
  let r2 = run_spec ~config:ideal (Dflow.Driver.Schema2 Dflow.Engine.Barrier) p in
  checkb "chain stays serial" true
    (r2.Machine.Interp.cycles * 2 > r1.Machine.Interp.cycles)

let test_opt_not_slower () =
  let p = Imp.Factory.bypass_example () in
  let r2 = run_spec ~config:ideal (Dflow.Driver.Schema2 Dflow.Engine.Barrier) p in
  let ro = run_spec ~config:ideal (Dflow.Driver.Schema2_opt Dflow.Engine.Barrier) p in
  checkb "optimized not slower" true
    (ro.Machine.Interp.cycles <= r2.Machine.Interp.cycles)

let test_bounded_pes_slower () =
  let p = Imp.Factory.independent_straightline ~k:8 () in
  let r_inf = run_spec ~config:ideal (Dflow.Driver.Schema2 Dflow.Engine.Barrier) p in
  let r_1 =
    run_spec
      ~config:{ ideal with Machine.Config.pes = Some 1 }
      (Dflow.Driver.Schema2 Dflow.Engine.Barrier)
      p
  in
  checkb "1 PE is slower than unbounded" true
    (r_1.Machine.Interp.cycles > r_inf.Machine.Interp.cycles);
  checki "same work" r_inf.Machine.Interp.firings r_1.Machine.Interp.firings

(* ------------------------------------------------------------------ *)
(* Edge cases                                                         *)

let edge_cases =
  [
    ("empty program", "skip");
    ("single assignment", "x := 42");
    ("read-only variable", "y := x + x");
    ("while false", "x := 1 while x < 0 do x := x + 99 end y := x");
    ("loop body once", "x := 4 while x < 5 do x := x + 1 end");
    ( "four-deep nest",
      {| a := 0 i := 0
         while i < 2 do
           j := 0
           while j < 2 do
             k := 0
             while k < 2 do
               m := 0
               while m < 2 do
                 a := a + 1
                 m := m + 1
               end
               k := k + 1
             end
             j := j + 1
           end
           i := i + 1
         end |} );
    ( "if inside loop, both arms write arrays",
      {| array u[4] array v[4]
         i := 0
         while i < 4 do
           if i % 2 == 0 then u[i] := i else v[i] := i end
           i := i + 1
         end
         s := u[0] + u[2] + v[1] + v[3] |} );
    ( "branch to same target",
      "l: x := x + 1 if x < 3 goto l if x > 100 goto m m: y := x" );
    ("self-referential index", "array a[4]; a[a[0]] := 7 r := a[0]");
    ( "negative constants and unary ops",
      "x := -5 y := -x * -2 if not (x > 0) then z := -1 end" );
  ]

let test_edge_cases () =
  List.iter
    (fun (name, src) ->
      let p = Imp.Parser.program_of_string src in
      List.iter
        (fun spec ->
          match differential_one spec p name with
          | () -> ()
          | exception exn ->
              Alcotest.failf "%s / %s: %s" name
                (Dflow.Driver.spec_to_string spec)
                (Printexc.to_string exn))
        (specs_no_alias @ specs_alias_ok))
    edge_cases

let test_edge_aliasing () =
  (* scalar equivalenced onto an array cell, observed through schema 3 *)
  let p =
    Imp.Parser.program_of_string
      {| array a[4]
         equiv s a
         a[0] := 7
         t := s
         s := t + 1
         r := a[0] |}
  in
  List.iter (fun spec -> differential_one spec p "scalar/array equiv") specs_alias_ok

(* ------------------------------------------------------------------ *)
(* Separate compilation of procedures (the Section 5 scenario)        *)

let test_separate_compilation () =
  (* SUBROUTINE F compiled ONCE against the alias structure derived
     from its call sites; the single dataflow graph must execute
     correctly under every call site's actual storage binding --
     the paper's motivating scenario for Schema 3. *)
  let src = {|
    proc f(fx, fy, fz)
      fx := 1
      fy := 2
      fz := fz + fx + fy
      fx := fy + fz
      w := w + fx      # a global, private to no call site
    end
    call f(a, b, a)
    call f(c, d, d)
    call f(e, g, h)    # no aliasing at this site
  |} in
  let p = Imp.Parser.program_of_string src in
  let once = Imp.Proc.standalone p "f" in
  List.iter
    (fun (choice, lc) ->
      (* compile once *)
      let compiled = Dflow.Driver.compile (Dflow.Driver.Schema3 (choice, lc)) once in
      Dfg.Check.check compiled.Dflow.Driver.graph;
      (* run the same graph against each call site's layout *)
      List.iter
        (fun args ->
          let inst = Imp.Proc.instantiate p "f" args in
          let layout = Imp.Layout.of_program inst in
          let expected = Imp.Eval.run_program inst in
          let r =
            Machine.Interp.run_exn
              { Machine.Interp.graph = compiled.Dflow.Driver.graph; layout }
          in
          if not (Imp.Memory.equal expected r.Machine.Interp.memory) then
            Alcotest.failf
              "separate compilation broke at call site f(%s) under %s"
              (String.concat "," args)
              (Dflow.Driver.spec_to_string
                 (Dflow.Driver.Schema3 (choice, lc))))
        (Imp.Proc.call_sites p "f"))
    [
      (Dflow.Driver.Singleton, Dflow.Engine.Barrier);
      (Dflow.Driver.Singleton, Dflow.Engine.Pipelined);
      (Dflow.Driver.Classes, Dflow.Engine.Barrier);
      (Dflow.Driver.Components, Dflow.Engine.Barrier);
    ]

let test_separate_compilation_schema2_would_break () =
  (* Without the derived alias structure, Schema 2 compiles the body
     assuming no aliasing; at the f(a,b,a) site its graph executes with
     fx and fz on independent tokens, and the result diverges from the
     reference (which is why the paper needs Schema 3). *)
  let src = {|
    proc f(fx, fz)
      fx := ((((7 * 3) + 2) * 5) + 1) * 9   # slow write to fx
      b := fz                               # fast read of the alias
    end
    call f(a, a)
  |} in
  let p = Imp.Parser.program_of_string src in
  let once = Imp.Proc.standalone p "f" in
  (* strip the derived may-alias info: pretend no aliasing *)
  let once_na = { once with Imp.Ast.may_alias = [] } in
  let compiled =
    Dflow.Driver.compile (Dflow.Driver.Schema2 Dflow.Engine.Barrier) once_na
  in
  let inst = Imp.Proc.instantiate p "f" [ "a"; "a" ] in
  let layout = Imp.Layout.of_program inst in
  let expected = Imp.Eval.run_program inst in
  (* Reference: the write to fx lands first, so b sees it through fz.
     Schema 2 puts fx and fz on independent tokens: the read of fz
     issues immediately while the write is still computing, so b reads
     the stale 0 -- unordered aliased access, exactly what Schema 3's
     access sets forbid. *)
  (match
     Machine.Interp.run { Machine.Interp.graph = compiled.Dflow.Driver.graph; layout }
   with
  | r ->
      checkb "schema2 without alias info is wrong here" false
        (r.Machine.Interp.completed
        && r.Machine.Interp.leftover_tokens = 0
        && Imp.Memory.equal expected r.Machine.Interp.memory)
  | exception Machine.Interp.Token_collision _ -> ())

let prop_separate_compilation_random =
  (* randomized E16: a random two-parameter procedure body, compiled once
     under Schema 3 with the alias structure derived from random call
     sites (some with repeated arguments), must reproduce the inlined
     reference at every call site's layout *)
  QCheck.Test.make ~name:"separate compilation on random procedures" ~count:40
    (QCheck.make (fun st ->
         let rand = Random.State.make [| QCheck.Gen.int st |] in
         let config =
           { Workloads.Random_gen.default_config with
             num_vars = 2; num_arrays = 0; max_depth = 2; max_len = 3 }
         in
         let rename s =
           let sub = function "v0" -> "p0" | "v1" -> "p1" | x -> x in
           let rec expr = function
             | (Imp.Ast.Int _ | Imp.Ast.Bool _) as e -> e
             | Imp.Ast.Var x -> Imp.Ast.Var (sub x)
             | Imp.Ast.Index (x, e) -> Imp.Ast.Index (sub x, expr e)
             | Imp.Ast.Binop (op, a, b) -> Imp.Ast.Binop (op, expr a, expr b)
             | Imp.Ast.Unop (op, a) -> Imp.Ast.Unop (op, expr a)
           in
           let rec stmt = function
             | Imp.Ast.Skip -> Imp.Ast.Skip
             | Imp.Ast.Assign (Imp.Ast.Lvar x, e) ->
                 Imp.Ast.Assign (Imp.Ast.Lvar (sub x), expr e)
             | Imp.Ast.Assign (Imp.Ast.Lindex (x, i), e) ->
                 Imp.Ast.Assign (Imp.Ast.Lindex (sub x, expr i), expr e)
             | Imp.Ast.Seq (a, b) -> Imp.Ast.Seq (stmt a, stmt b)
             | Imp.Ast.If (e, a, b) -> Imp.Ast.If (expr e, stmt a, stmt b)
             | Imp.Ast.While (e, a) -> Imp.Ast.While (expr e, stmt a)
             | Imp.Ast.Case (e, arms, d) ->
                 Imp.Ast.Case
                   (expr e, List.map (fun (k, s') -> (k, stmt s')) arms, stmt d)
             | s -> s
           in
           stmt s
         in
         let pbody = rename (Workloads.Random_gen.structured_body config rand) in
         let proc = { Imp.Ast.pname = "f"; params = [ "p0"; "p1" ]; pbody } in
         let globals = [ "g0"; "g1"; "g2" ] in
         let arg () = List.nth globals (Random.State.int rand 3) in
         let sites =
           List.init
             (1 + Random.State.int rand 3)
             (fun _ ->
               let a = arg () in
               let b = if Random.State.bool rand then a else arg () in
               [ a; b ])
         in
         let body =
           Imp.Ast.seq (List.map (fun args -> Imp.Ast.Call ("f", args)) sites)
         in
         { Imp.Ast.arrays = []; equiv = []; may_alias = []; procs = [ proc ];
           body }))
    (fun program ->
      let once = Imp.Proc.standalone program "f" in
      let compiled =
        Dflow.Driver.compile
          (Dflow.Driver.Schema3 (Dflow.Driver.Singleton, Dflow.Engine.Barrier))
          once
      in
      Dfg.Check.check compiled.Dflow.Driver.graph;
      List.for_all
        (fun args ->
          let inst = Imp.Proc.instantiate program "f" args in
          let layout = Imp.Layout.of_program inst in
          let expected = Imp.Eval.run_program ~fuel:1_000_000 inst in
          let r =
            Machine.Interp.run_exn
              { Machine.Interp.graph = compiled.Dflow.Driver.graph; layout }
          in
          Imp.Memory.equal expected r.Machine.Interp.memory)
        (Imp.Proc.call_sites program "f"))

(* ------------------------------------------------------------------ *)
(* Irreducible programs via node splitting                            *)

let test_split_differential () =
  let p = Imp.Factory.irreducible_example () in
  let expected = Imp.Eval.run_program p in
  List.iter
    (fun spec ->
      let c = Dflow.Driver.compile ~split_irreducible:true spec p in
      Dfg.Check.check c.Dflow.Driver.graph;
      let r = Machine.Interp.run_exn (machine_of c) in
      checkb
        (Dflow.Driver.spec_to_string spec ^ " on split graph")
        true
        (Imp.Memory.equal expected r.Machine.Interp.memory))
    (specs_no_alias @ specs_alias_ok)

let test_split_terminating_flat_differential () =
  (* Random goto programs that happen to terminate: after node splitting
     every schema must reproduce the reference store.  This is the
     strongest unstructured-control-flow test in the suite. *)
  let rand = Random.State.make [| 90210 |] in
  let checked = ref 0 in
  let attempts = ref 0 in
  while !checked < 25 && !attempts < 500 do
    incr attempts;
    let f = Workloads.Random_gen.flat rand in
    match Cfg.Builder.of_flat f with
    | exception Cfg.Builder.Unreachable_end _ -> ()
    | _g -> (
        let p = Imp.Flat.to_program f in
        match Imp.Eval.run_program ~fuel:20_000 p with
        | exception Imp.Eval.Out_of_fuel -> ()
        | expected ->
            incr checked;
            List.iter
              (fun spec ->
                let c = Dflow.Driver.compile ~split_irreducible:true spec p in
                let r = Machine.Interp.run_exn (machine_of c) in
                if not (Imp.Memory.equal expected r.Machine.Interp.memory)
                then
                  Alcotest.failf "flat program differs under %s:@.%a"
                    (Dflow.Driver.spec_to_string spec)
                    Imp.Pretty.pp_program p)
              Dflow.Driver.
                [
                  Schema1;
                  Schema2 Dflow.Engine.Barrier;
                  Schema2 Dflow.Engine.Pipelined;
                  Schema2_opt Dflow.Engine.Barrier;
                ])
  done;
  checkb "found enough terminating programs" true (!checked >= 15)

(* ------------------------------------------------------------------ *)
(* Random differential testing                                        *)

let arb_structured ~alias =
  QCheck.make
    ~print:(fun p -> Imp.Pretty.program_to_string p)
    (fun st ->
      let rand = Random.State.make [| QCheck.Gen.int st |] in
      let config =
        { Workloads.Random_gen.default_config with allow_alias = alias }
      in
      Workloads.Random_gen.structured ~config rand)

let differential_prop spec p =
  let expected = Imp.Eval.run_program ~fuel:1_000_000 p in
  let c = Dflow.Driver.compile spec p in
  Dfg.Check.check c.Dflow.Driver.graph;
  let r = Machine.Interp.run_exn (machine_of c) in
  Imp.Memory.equal expected r.Machine.Interp.memory

let prop_random_no_alias =
  QCheck.Test.make ~name:"random programs: all schemas match reference"
    ~count:60 (arb_structured ~alias:false) (fun p ->
      List.for_all (fun spec -> differential_prop spec p) specs_no_alias)

let prop_random_alias =
  QCheck.Test.make ~name:"random aliased programs: schema 1/3 match reference"
    ~count:60 (arb_structured ~alias:true) (fun p ->
      List.for_all (fun spec -> differential_prop spec p) specs_alias_ok)

let prop_random_deterministic_firings =
  QCheck.Test.make ~name:"PE count changes time, not work or results"
    ~count:30 (arb_structured ~alias:false) (fun p ->
      let c = Dflow.Driver.compile (Dflow.Driver.Schema2 Dflow.Engine.Barrier) p in
      let r_inf = Machine.Interp.run_exn (machine_of c) in
      let r_2 =
        Machine.Interp.run_exn
          ~config:(Machine.Config.bounded 2)
          (machine_of c)
      in
      r_inf.Machine.Interp.firings = r_2.Machine.Interp.firings
      && Imp.Memory.equal r_inf.Machine.Interp.memory r_2.Machine.Interp.memory)

let prop_optimized_dominates_statically =
  QCheck.Test.make
    ~name:"optimized construction never adds switches or merges" ~count:60
    (arb_structured ~alias:false) (fun p ->
      let c2 = Dflow.Driver.compile (Dflow.Driver.Schema2 Dflow.Engine.Barrier) p in
      let co = Dflow.Driver.compile (Dflow.Driver.Schema2_opt Dflow.Engine.Barrier) p in
      let s2 = Dfg.Stats.of_graph c2.Dflow.Driver.graph in
      let so = Dfg.Stats.of_graph co.Dflow.Driver.graph in
      so.Dfg.Stats.switches <= s2.Dfg.Stats.switches
      && so.Dfg.Stats.merges <= s2.Dfg.Stats.merges)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_random_no_alias;
      prop_random_alias;
      prop_random_deterministic_firings;
      prop_optimized_dominates_statically;
      prop_separate_compilation_random;
    ]

let () =
  Alcotest.run "dflow"
    [
      ( "differential",
        [
          Alcotest.test_case "all factory examples, all schemas" `Quick
            test_differential_examples;
          Alcotest.test_case "straight line" `Quick test_straightline_all_schemas;
          Alcotest.test_case "loop" `Quick test_loop_all_schemas;
          Alcotest.test_case "aliasing, all covers" `Quick
            test_alias_example_all_covers;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "degenerate and nested programs" `Quick
            test_edge_cases;
          Alcotest.test_case "scalar/array equivalence" `Quick
            test_edge_aliasing;
        ] );
      ( "schema contracts",
        [
          Alcotest.test_case "schema2 rejects aliasing" `Quick
            test_schema2_rejects_aliasing;
          Alcotest.test_case "figure 8: collision without loop control" `Quick
            test_figure8_collision;
          Alcotest.test_case "figure 8: acyclic is fine" `Quick
            test_figure8_acyclic_ok;
          Alcotest.test_case "figure 8: fixed by loop control" `Quick
            test_figure8_fixed_by_loop_control;
          Alcotest.test_case "separate compilation (schema 3)" `Quick
            test_separate_compilation;
          Alcotest.test_case "schema 2 unsound under hidden aliasing" `Quick
            test_separate_compilation_schema2_would_break;
          Alcotest.test_case "node splitting: irreducible example" `Quick
            test_split_differential;
          Alcotest.test_case "node splitting: random goto programs" `Quick
            test_split_terminating_flat_differential;
        ] );
      ( "structure",
        [
          Alcotest.test_case "optimized has fewer switches" `Quick
            test_opt_fewer_switches;
          Alcotest.test_case "figure 9 switch counts" `Quick
            test_opt_bypass_no_x_switch;
          Alcotest.test_case "schema2 size bound" `Quick test_size_bound_schema2;
          Alcotest.test_case "dot rendering" `Quick test_dot_renders;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "parallelism",
        [
          Alcotest.test_case "schema2 beats schema1 on independent code" `Quick
            test_schema2_faster_on_independent;
          Alcotest.test_case "no speedup on dependence chain" `Quick
            test_no_speedup_on_chain;
          Alcotest.test_case "optimized not slower" `Quick test_opt_not_slower;
          Alcotest.test_case "bounded PEs" `Quick test_bounded_pes_slower;
        ] );
      ("properties", qcheck_cases);
    ]
