(* Tests for the IMP front end: lexer, parser, pretty-printer round trips,
   type checker, layout/aliasing, and the two reference interpreters. *)

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let parse = Imp.Parser.program_of_string

let run_src ?fuel src =
  let p = parse src in
  Imp.Eval.run_program ?fuel p

let read_var mem x = Imp.Memory.read mem x 0

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)

let test_lex_simple () =
  let toks = Imp.Lexer.tokenize "x := 1 + 2" |> List.map fst in
  check
    (Alcotest.list Alcotest.string)
    "tokens"
    [ "identifier \"x\""; "':='"; "integer 1"; "'+'"; "integer 2"; "end of input" ]
    (List.map Imp.Lexer.token_to_string toks)

let test_lex_comment () =
  let toks = Imp.Lexer.tokenize "# a comment\nx := 1" |> List.map fst in
  checki "token count" 4 (List.length toks)

let test_lex_two_char_ops () =
  let toks = Imp.Lexer.tokenize "<= >= == != :=" |> List.map fst in
  check
    (Alcotest.list Alcotest.string)
    "ops"
    [ "'<='"; "'>='"; "'=='"; "'!='"; "':='"; "end of input" ]
    (List.map Imp.Lexer.token_to_string toks)

let test_lex_error () =
  (match Imp.Lexer.tokenize "x := @" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Imp.Lexer.Error (_, pos) -> checki "error offset" 5 pos)

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)

let test_parse_precedence () =
  let e = Imp.Parser.expr_of_string "1 + 2 * 3 < 4 and true or false" in
  check Alcotest.string "pretty"
    "1 + 2 * 3 < 4 and true or false"
    (Imp.Pretty.expr_to_string e)

let test_parse_assoc () =
  let e = Imp.Parser.expr_of_string "10 - 3 - 2" in
  let mem = Imp.Memory.create (Imp.Layout.of_program (Imp.Ast.program Imp.Ast.Skip)) in
  checki "left assoc" 5 (Imp.Value.to_int (Imp.Eval.eval_expr mem e))

let test_parse_paren () =
  let e = Imp.Parser.expr_of_string "2 * (3 + 4)" in
  let mem = Imp.Memory.create (Imp.Layout.of_program (Imp.Ast.program Imp.Ast.Skip)) in
  checki "paren" 14 (Imp.Value.to_int (Imp.Eval.eval_expr mem e))

let test_parse_if_else () =
  match (parse "if x < 1 then y := 1 else y := 2 end").Imp.Ast.body with
  | Imp.Ast.If (_, Imp.Ast.Assign _, Imp.Ast.Assign _) -> ()
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_if_no_else () =
  match (parse "if x < 1 then y := 1 end").Imp.Ast.body with
  | Imp.Ast.If (_, Imp.Ast.Assign _, Imp.Ast.Skip) -> ()
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_label_goto () =
  match (parse "l: goto l").Imp.Ast.body with
  | Imp.Ast.Seq (Imp.Ast.Label "l", Imp.Ast.Goto "l") -> ()
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_cond_goto () =
  match (parse "l: if x < 5 goto l").Imp.Ast.body with
  | Imp.Ast.Seq (Imp.Ast.Label "l", Imp.Ast.Cond_goto (_, "l")) -> ()
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_decls () =
  let p = parse "array a[4]; equiv x y; mayalias y z; a[0] := 1" in
  checki "arrays" 1 (List.length p.Imp.Ast.arrays);
  checki "equiv" 1 (List.length p.Imp.Ast.equiv);
  checki "mayalias" 1 (List.length p.Imp.Ast.may_alias)

let test_parse_error_messages () =
  let expect_err src =
    match parse src with
    | _ -> Alcotest.failf "expected parse error for %S" src
    | exception Imp.Parser.Error _ -> ()
    | exception Imp.Typecheck.Error _ -> ()
  in
  expect_err "x :=";
  expect_err "if x then y := 1";
  expect_err "while x do y := 1";
  expect_err "x + 1";
  expect_err "array a[2]; a := 1";
  expect_err "x := y[1]"

let test_roundtrip_examples () =
  List.iter
    (fun (name, mk) ->
      let p = mk () in
      let printed = Imp.Pretty.program_to_string p in
      match parse printed with
      | p2 ->
          check Alcotest.string
            (name ^ " round trip")
            printed
            (Imp.Pretty.program_to_string p2)
      | exception exn ->
          Alcotest.failf "%s failed to re-parse: %s\n%s" name
            (Printexc.to_string exn) printed)
    Imp.Factory.all

(* ------------------------------------------------------------------ *)
(* Typechecker                                                        *)

let test_typecheck_rejects () =
  let expect_err src =
    match parse src with
    | _ -> Alcotest.failf "expected type error for %S" src
    | exception Imp.Typecheck.Error _ -> ()
  in
  expect_err "x := 1 < 2";
  expect_err "if x then y := 1 end";
  expect_err "while 3 do y := 1 end";
  expect_err "x := true";
  expect_err "x := 1 + (2 < 3)";
  expect_err "x := not 1";
  expect_err "array a[2]; array a[3]; x := 1"

let test_typecheck_accepts () =
  List.iter
    (fun (name, mk) ->
      match Imp.Typecheck.check_program (mk ()) with
      | () -> ()
      | exception Imp.Typecheck.Error m -> Alcotest.failf "%s: %s" name m)
    Imp.Factory.all

(* ------------------------------------------------------------------ *)
(* Layout / aliasing                                                  *)

let test_layout_disjoint () =
  let p = parse "x := 1 y := 2" in
  let l = Imp.Layout.of_program p in
  checkb "no sharing" false (Imp.Layout.shares_storage l "x" "y");
  checki "words" 2 l.Imp.Layout.words

let test_layout_equiv () =
  let p = parse "equiv x y; x := 1 y := 2" in
  let l = Imp.Layout.of_program p in
  checkb "sharing" true (Imp.Layout.shares_storage l "x" "y");
  checki "words" 1 l.Imp.Layout.words

let test_layout_equiv_transitive () =
  let p = parse "equiv x y; equiv y z; x := 1 z := 2" in
  let l = Imp.Layout.of_program p in
  checkb "x~z via y" true (Imp.Layout.shares_storage l "x" "z")

let test_layout_mayalias_no_storage () =
  let p = parse "mayalias x y; x := 1 y := 2" in
  let l = Imp.Layout.of_program p in
  checkb "mayalias does not share" false (Imp.Layout.shares_storage l "x" "y")

let test_layout_array_equiv_scalar () =
  let p = parse "array a[5]; equiv s a; a[3] := 7 s := 1" in
  let l = Imp.Layout.of_program p in
  checki "block extent" 5 l.Imp.Layout.words;
  checki "s at base of a" (Imp.Layout.base_of l "a") (Imp.Layout.base_of l "s")

let test_index_modulo () =
  let mem = run_src "array a[3]; a[5] := 9; x := a[2]" in
  checki "a[5] wraps to a[2]" 9 (read_var mem "x")

let test_index_negative_modulo () =
  let mem = run_src "array a[3]; a[0-1] := 4; x := a[2]" in
  checki "a[-1] wraps to a[2]" 4 (read_var mem "x")

(* ------------------------------------------------------------------ *)
(* Evaluation                                                         *)

let test_eval_straightline () =
  let mem = run_src "x := 2 y := x * 3 z := y - x" in
  checki "x" 2 (read_var mem "x");
  checki "y" 6 (read_var mem "y");
  checki "z" 4 (read_var mem "z")

let test_eval_if () =
  let mem = run_src "x := 3 if x > 2 then y := 1 else y := 2 end" in
  checki "y" 1 (read_var mem "y")

let test_eval_while () =
  let mem = Imp.Eval.run_program (Imp.Factory.sum_kernel ~n:10 ()) in
  checki "sum 0..9" 45 (read_var mem "s")

let test_eval_gcd () =
  let mem = Imp.Eval.run_program (Imp.Factory.gcd_kernel ~a:30 ~b:42 ()) in
  checki "gcd" 6 (read_var mem "x")

let test_eval_fib () =
  let mem = Imp.Eval.run_program (Imp.Factory.fib_kernel ~n:10 ()) in
  checki "fib" 55 (read_var mem "a")

let test_eval_running_example () =
  let mem = Imp.Eval.run_program (Imp.Factory.running_example ()) in
  checki "x" 5 (read_var mem "x");
  checki "y" 5 (read_var mem "y")

let test_eval_unstructured () =
  let mem = Imp.Eval.run_program (Imp.Factory.unstructured_example ()) in
  checki "y" 21 (read_var mem "y");
  checki "z" 27 (read_var mem "z")

let test_eval_total_division () =
  let mem = run_src "x := 7 / 0 y := 7 % 0" in
  checki "div by zero" 0 (read_var mem "x");
  checki "mod by zero" 0 (read_var mem "y")

let test_eval_equiv_semantics () =
  let mem = run_src "equiv x y; x := 5 y := y + 1 z := x" in
  checki "write through alias" 6 (read_var mem "z")

let test_eval_fuel () =
  match run_src ~fuel:100 "l: x := x + 1 goto l" with
  | _ -> Alcotest.fail "expected Out_of_fuel"
  | exception Imp.Eval.Out_of_fuel -> ()

let test_eval_structured_vs_flat () =
  List.iter
    (fun (name, mk) ->
      let p = mk () in
      let flat_mem = Imp.Eval.run_program ~fuel:100_000 p in
      let layout = Imp.Layout.of_program p in
      let struct_mem = Imp.Memory.create layout in
      match Imp.Eval.run_stmt ~fuel:100_000 struct_mem p.Imp.Ast.body with
      | () ->
          (* compare observables only: the flat lowering writes case
             temporaries that structured evaluation never materialises *)
          checkb (name ^ " structured = flat") true
            (Imp.Memory.equal_observable flat_mem struct_mem)
      | exception Imp.Eval.Unstructured -> () (* goto programs: skip *))
    Imp.Factory.all

let test_array_store_loop () =
  let mem = Imp.Eval.run_program (Imp.Factory.array_store_loop ~n:10 ()) in
  checki "i" 10 (read_var mem "i");
  checki "x[10]" 1 (Imp.Memory.read mem "x" 10);
  checki "x[1]" 1 (Imp.Memory.read mem "x" 1);
  checki "x[0]" 0 (Imp.Memory.read mem "x" 0)

let test_matmul () =
  let mem = Imp.Eval.run_program ~fuel:1_000_000 (Imp.Factory.matmul_kernel ~n:3 ()) in
  (* a[i][j] = i+j, b[i][j] = i-j; c = a*b; check c[1][1]:
     sum_k a[1][k] * b[k][1] = 1*(-1) + 2*0 + 3*1 = 2 *)
  checki "c[1][1]" 2 (Imp.Memory.read mem "c" 4);
  (* c[0][0] = 0*0 + 1*1 + 2*2 = 5 *)
  checki "c[0][0]" 5 (Imp.Memory.read mem "c" 0)

let test_bubble_sort () =
  let mem = Imp.Eval.run_program ~fuel:1_000_000 (Imp.Factory.bubble_sort_kernel ~n:5 ()) in
  let values = List.init 5 (fun i -> Imp.Memory.read mem "a" i) in
  checkb "sorted" true (values = List.sort compare values)

let test_sieve () =
  let mem = Imp.Eval.run_program ~fuel:1_000_000 (Imp.Factory.sieve_kernel ~n:12 ()) in
  (* primes below 12: 2 3 5 7 11 *)
  checki "primes" 5 (Imp.Memory.read mem "primes" 0);
  checki "flag[9] composite" 1 (Imp.Memory.read mem "flag" 9);
  checki "flag[7] prime" 0 (Imp.Memory.read mem "flag" 7)

let test_prefix_sum () =
  let mem = Imp.Eval.run_program ~fuel:1_000_000 (Imp.Factory.prefix_sum_kernel ~n:8 ()) in
  (* a[i] initially 2i+1; prefix sums of odds: a[i] = (i+1)^2 *)
  List.iteri
    (fun i expected -> checki (Fmt.str "a[%d]" i) expected (Imp.Memory.read mem "a" i))
    [ 1; 4; 9; 16; 25; 36; 49; 64 ]

let test_array_sum () =
  let mem = Imp.Eval.run_program (Imp.Factory.array_sum_kernel ~n:8 ()) in
  checki "s" 56 (read_var mem "s")

(* ------------------------------------------------------------------ *)
(* Flat form                                                          *)

let test_flatten_shapes () =
  let f = Imp.Flat.flatten (parse "if x < 1 then y := 1 else y := 2 end") in
  let branches =
    Array.to_list f.Imp.Flat.code
    |> List.filter (function Imp.Flat.Branch _ -> true | _ -> false)
  in
  checki "one branch" 1 (List.length branches)

let test_flatten_while () =
  let f = Imp.Flat.flatten (parse "while x < 3 do x := x + 1 end") in
  Imp.Flat.validate f;
  let gotos =
    Array.to_list f.Imp.Flat.code
    |> List.filter (function Imp.Flat.Goto _ -> true | _ -> false)
  in
  checki "backedge goto" 1 (List.length gotos)

let test_flat_validate_undefined () =
  let p = parse "goto nowhere" in
  let f = Imp.Flat.flatten p in
  match Imp.Flat.validate f with
  | () -> Alcotest.fail "expected Invalid"
  | exception Imp.Flat.Invalid _ -> ()

let test_flat_duplicate_label () =
  let p = parse "l: x := 1 l: x := 2" in
  let f = Imp.Flat.flatten p in
  match Imp.Flat.label_table f with
  | _ -> Alcotest.fail "expected Invalid"
  | exception Imp.Flat.Invalid _ -> ()

let test_flat_vars () =
  let f = Imp.Flat.flatten (parse "array a[2]; a[i] := x + y if x < 1 goto l l:") in
  check
    (Alcotest.list Alcotest.string)
    "vars" [ "a"; "i"; "x"; "y" ] (Imp.Flat.vars f)

(* ------------------------------------------------------------------ *)
(* Procedures                                                         *)

let proc_src = {|
  proc swap(p, q)
    t := p
    p := q
    q := t
  end
  proc rot3(p, q, r)
    call swap(p, q)
    call swap(q, r)
  end
  x := 1 y := 2 z := 3
  call rot3(x, y, z)
|}

let test_proc_parse () =
  let p = parse proc_src in
  checki "two procs" 2 (List.length p.Imp.Ast.procs);
  let swap = List.find (fun pr -> pr.Imp.Ast.pname = "swap") p.Imp.Ast.procs in
  Alcotest.(check (list string)) "params" [ "p"; "q" ] swap.Imp.Ast.params

let test_proc_inline_eval () =
  let mem = run_src proc_src in
  (* rot3 rotates: x<-y<-z<-x : x=2 y=3 z=1 *)
  checki "x" 2 (read_var mem "x");
  checki "y" 3 (read_var mem "y");
  checki "z" 1 (read_var mem "z")

let test_proc_aliased_call () =
  (* passing the same variable twice: the by-reference semantics *)
  let mem = run_src {|
    proc addinto(a, b)
      a := a + b
    end
    x := 5
    call addinto(x, x)
  |} in
  checki "x doubled" 10 (read_var mem "x")

let test_proc_label_freshening () =
  (* a loop inside a procedure called twice: labels must not collide *)
  let mem = run_src {|
    proc count(n)
      k := 0
      again:
      k := k + 1
      if k < n goto again
      total := total + k
    end
    a := 3 b := 4
    call count(a)
    call count(b)
  |} in
  checki "total" 7 (read_var mem "total")

let test_proc_recursion_rejected () =
  match parse "proc f(x) call f(x) end call f(y)" with
  | _ -> Alcotest.fail "expected type error"
  | exception Imp.Typecheck.Error _ -> ()

let test_proc_mutual_recursion_rejected () =
  match parse "proc f(x) call g(x) end proc g(x) call f(x) end call f(y)" with
  | _ -> Alcotest.fail "expected type error"
  | exception Imp.Typecheck.Error _ -> ()

let test_proc_arity_mismatch () =
  match parse "proc f(x, y) x := y end call f(a)" with
  | _ -> Alcotest.fail "expected type error"
  | exception Imp.Typecheck.Error _ -> ()

let test_proc_undefined () =
  match parse "call nothing(x)" with
  | _ -> Alcotest.fail "expected type error"
  | exception Imp.Typecheck.Error _ -> ()

let fortran_f = {|
  proc f(fx, fy, fz)
    fx := 1
    fy := 2
    fz := fz + fx + fy
    fx := fy + fz
  end
  call f(a, b, a)
  call f(c, d, d)
|}

let test_proc_derived_aliases () =
  (* the paper's SUBROUTINE F example: X~Z and Y~Z, never X~Y *)
  let p = parse fortran_f in
  let pairs = Imp.Proc.param_aliases p "f" in
  checkb "fx ~ fz (from f(a,b,a))" true (List.mem ("fx", "fz") pairs);
  checkb "fy ~ fz (from f(c,d,d))" true (List.mem ("fy", "fz") pairs);
  checkb "fx !~ fy" false (List.mem ("fx", "fy") pairs)

let test_proc_call_sites () =
  let p = parse fortran_f in
  checki "two call sites" 2 (List.length (Imp.Proc.call_sites p "f"))

let test_proc_instantiate () =
  let p = parse fortran_f in
  let inst = Imp.Proc.instantiate p "f" [ "a"; "b"; "a" ] in
  let mem = Imp.Eval.run_program inst in
  (* fx and fz share storage with a: fx:=1; fy:=2; fz:=fz+fx+fy -> a=1+..
     trace: a(fx,fz)=1, b(fy)=2, fz:=1+1+2=4 -> a=4, fx:=2+4=6 -> a=6 *)
  checki "a" 6 (Imp.Memory.read mem "a" 0);
  checki "b" 2 (Imp.Memory.read mem "b" 0)

(* ------------------------------------------------------------------ *)
(* Case statements (multi-way branches, paper footnote 3)             *)

let test_case_eval () =
  let mem = run_src {|
    x := 2
    case x * 2
    when 0 then r := 100
    when 4 then r := 200
    when 9 then r := 300
    else r := 400
    end
  |} in
  checki "matched arm" 200 (read_var mem "r")

let test_case_default () =
  let mem = run_src {|
    case 77 when 1 then r := 1 when 2 then r := 2 else r := 99 end
  |} in
  checki "default arm" 99 (read_var mem "r")

let test_case_no_default () =
  let mem = run_src "case 5 when 1 then r := 1 end r := r + 7" in
  checki "falls through" 7 (read_var mem "r")

let test_case_negative_label () =
  let mem = run_src "x := 0 - 3 case x when -3 then r := 1 else r := 2 end" in
  checki "negative label" 1 (read_var mem "r")

let test_case_scrutinee_once () =
  (* the scrutinee is evaluated exactly once: the lowering binds it to a
     temporary, so a self-modifying scrutinee cannot re-fire *)
  let mem = run_src {|
    array a[2]
    a[0] := 1
    case a[0] when 1 then a[0] := 5 r := 10 when 5 then r := 20 else r := 30 end
  |} in
  checki "first matching arm only" 10 (read_var mem "r")

let test_case_duplicate_label_rejected () =
  match parse "case x when 1 then skip when 1 then skip end" with
  | _ -> Alcotest.fail "expected type error"
  | exception Imp.Typecheck.Error _ -> ()

let test_case_roundtrip () =
  let p = parse "case x when 1 then r := 1 when 2 then r := 2 else r := 3 end" in
  let printed = Imp.Pretty.program_to_string p in
  let p2 = parse printed in
  check Alcotest.string "stable" printed (Imp.Pretty.program_to_string p2)

let test_case_in_proc () =
  let mem = run_src {|
    proc classify(v, out)
      case v when 0 then out := 10 when 1 then out := 11 else out := 12 end
    end
    a := 1
    call classify(a, r1)
    b := 9
    call classify(b, r2)
  |} in
  checki "arm via proc" 11 (read_var mem "r1");
  checki "default via proc" 12 (read_var mem "r2")

(* ------------------------------------------------------------------ *)
(* QCheck: value semantics properties                                 *)

let arb_small_int = QCheck.int_range (-50) 50

let prop_binop_total =
  QCheck.Test.make ~name:"integer binops are total" ~count:500
    (QCheck.triple arb_small_int arb_small_int
       (QCheck.oneofl
          Imp.Ast.[ Add; Sub; Mul; Div; Mod; Lt; Le; Gt; Ge; Eq; Ne ]))
    (fun (a, b, op) ->
      match Imp.Value.binop op (Imp.Value.Int a) (Imp.Value.Int b) with
      | Imp.Value.Int _ | Imp.Value.Bool _ -> true)

let prop_pretty_parse_roundtrip_expr =
  let rec gen_expr fuel st =
    if fuel <= 0 then Imp.Ast.Int (QCheck.Gen.int_range (-20) 20 st)
    else
      match QCheck.Gen.int_range 0 5 st with
      | 0 -> Imp.Ast.Int (QCheck.Gen.int_range (-20) 20 st)
      | 1 -> Imp.Ast.Unop (Imp.Ast.Neg, gen_expr (fuel - 1) st)
      | _ ->
          let op = QCheck.Gen.oneofl Imp.Ast.[ Add; Sub; Mul; Div; Mod ] st in
          Imp.Ast.Binop (op, gen_expr (fuel - 1) st, gen_expr (fuel - 1) st)
  in
  let arb =
    QCheck.make ~print:(fun e -> Imp.Pretty.expr_to_string e) (gen_expr 5)
  in
  QCheck.Test.make ~name:"pretty/parse round trip preserves evaluation"
    ~count:300 arb (fun e ->
      let printed = Imp.Pretty.expr_to_string e in
      let e2 = Imp.Parser.expr_of_string printed in
      let mem =
        Imp.Memory.create (Imp.Layout.of_program (Imp.Ast.program Imp.Ast.Skip))
      in
      Imp.Value.equal (Imp.Eval.eval_expr mem e) (Imp.Eval.eval_expr mem e2))

let prop_parser_total =
  (* random byte soup never crashes the front end with anything but its
     own documented exceptions *)
  QCheck.Test.make ~name:"parser is total (errors, not crashes)" ~count:500
    QCheck.(string_of_size (Gen.int_range 0 80))
    (fun s ->
      match Imp.Parser.program_of_string s with
      | _ -> true
      | exception Imp.Parser.Error _ -> true
      | exception Imp.Typecheck.Error _ -> true
      | exception Imp.Lexer.Error _ -> true)

let prop_program_roundtrip =
  (* pretty-print / reparse stability for random structured programs *)
  QCheck.Test.make ~name:"program pretty/parse round trip" ~count:100
    (QCheck.make
       ~print:(fun p -> Imp.Pretty.program_to_string p)
       (fun st ->
         let rand = Random.State.make [| QCheck.Gen.int st |] in
         Workloads.Random_gen.structured rand))
    (fun p ->
      let printed = Imp.Pretty.program_to_string p in
      let p2 = Imp.Parser.program_of_string printed in
      Imp.Pretty.program_to_string p2 = printed)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_binop_total;
      prop_pretty_parse_roundtrip_expr;
      prop_parser_total;
      prop_program_roundtrip;
    ]

let () =
  Alcotest.run "imp"
    [
      ( "lexer",
        [
          Alcotest.test_case "simple" `Quick test_lex_simple;
          Alcotest.test_case "comment" `Quick test_lex_comment;
          Alcotest.test_case "two-char ops" `Quick test_lex_two_char_ops;
          Alcotest.test_case "error offset" `Quick test_lex_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "left associativity" `Quick test_parse_assoc;
          Alcotest.test_case "parentheses" `Quick test_parse_paren;
          Alcotest.test_case "if/else" `Quick test_parse_if_else;
          Alcotest.test_case "if without else" `Quick test_parse_if_no_else;
          Alcotest.test_case "label and goto" `Quick test_parse_label_goto;
          Alcotest.test_case "conditional goto" `Quick test_parse_cond_goto;
          Alcotest.test_case "declarations" `Quick test_parse_decls;
          Alcotest.test_case "syntax errors" `Quick test_parse_error_messages;
          Alcotest.test_case "factory round trips" `Quick test_roundtrip_examples;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "rejects ill-typed" `Quick test_typecheck_rejects;
          Alcotest.test_case "accepts examples" `Quick test_typecheck_accepts;
        ] );
      ( "layout",
        [
          Alcotest.test_case "disjoint" `Quick test_layout_disjoint;
          Alcotest.test_case "equiv shares" `Quick test_layout_equiv;
          Alcotest.test_case "equiv transitive" `Quick test_layout_equiv_transitive;
          Alcotest.test_case "mayalias no storage" `Quick
            test_layout_mayalias_no_storage;
          Alcotest.test_case "array/scalar equiv" `Quick
            test_layout_array_equiv_scalar;
          Alcotest.test_case "index modulo" `Quick test_index_modulo;
          Alcotest.test_case "negative index modulo" `Quick
            test_index_negative_modulo;
        ] );
      ( "eval",
        [
          Alcotest.test_case "straight line" `Quick test_eval_straightline;
          Alcotest.test_case "if" `Quick test_eval_if;
          Alcotest.test_case "while sum" `Quick test_eval_while;
          Alcotest.test_case "gcd" `Quick test_eval_gcd;
          Alcotest.test_case "fib" `Quick test_eval_fib;
          Alcotest.test_case "running example" `Quick test_eval_running_example;
          Alcotest.test_case "unstructured" `Quick test_eval_unstructured;
          Alcotest.test_case "total division" `Quick test_eval_total_division;
          Alcotest.test_case "equiv write-through" `Quick
            test_eval_equiv_semantics;
          Alcotest.test_case "fuel exhaustion" `Quick test_eval_fuel;
          Alcotest.test_case "structured = flat" `Quick
            test_eval_structured_vs_flat;
          Alcotest.test_case "array store loop" `Quick test_array_store_loop;
          Alcotest.test_case "matrix multiply" `Quick test_matmul;
          Alcotest.test_case "bubble sort" `Quick test_bubble_sort;
          Alcotest.test_case "sieve" `Quick test_sieve;
          Alcotest.test_case "prefix sums" `Quick test_prefix_sum;
          Alcotest.test_case "array sum" `Quick test_array_sum;
        ] );
      ( "flat",
        [
          Alcotest.test_case "if shape" `Quick test_flatten_shapes;
          Alcotest.test_case "while shape" `Quick test_flatten_while;
          Alcotest.test_case "undefined label" `Quick test_flat_validate_undefined;
          Alcotest.test_case "duplicate label" `Quick test_flat_duplicate_label;
          Alcotest.test_case "variable collection" `Quick test_flat_vars;
        ] );
      ( "case statements",
        [
          Alcotest.test_case "matching arm" `Quick test_case_eval;
          Alcotest.test_case "default arm" `Quick test_case_default;
          Alcotest.test_case "no default" `Quick test_case_no_default;
          Alcotest.test_case "negative label" `Quick test_case_negative_label;
          Alcotest.test_case "scrutinee evaluated once" `Quick
            test_case_scrutinee_once;
          Alcotest.test_case "duplicate labels rejected" `Quick
            test_case_duplicate_label_rejected;
          Alcotest.test_case "round trip" `Quick test_case_roundtrip;
          Alcotest.test_case "inside procedures" `Quick test_case_in_proc;
        ] );
      ( "procedures",
        [
          Alcotest.test_case "parse" `Quick test_proc_parse;
          Alcotest.test_case "inline + eval" `Quick test_proc_inline_eval;
          Alcotest.test_case "aliased call" `Quick test_proc_aliased_call;
          Alcotest.test_case "label freshening" `Quick test_proc_label_freshening;
          Alcotest.test_case "recursion rejected" `Quick
            test_proc_recursion_rejected;
          Alcotest.test_case "mutual recursion rejected" `Quick
            test_proc_mutual_recursion_rejected;
          Alcotest.test_case "arity mismatch" `Quick test_proc_arity_mismatch;
          Alcotest.test_case "undefined procedure" `Quick test_proc_undefined;
          Alcotest.test_case "derived aliases (paper example)" `Quick
            test_proc_derived_aliases;
          Alcotest.test_case "call sites" `Quick test_proc_call_sites;
          Alcotest.test_case "instantiate" `Quick test_proc_instantiate;
        ] );
      ("properties", qcheck_cases);
    ]
