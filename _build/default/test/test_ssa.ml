(* Tests for SSA construction, dominance frontiers, the PDG, and the
   paper's claimed correspondence between dataflow merge placement and
   φ-placement (Sections 4 and 6.1). *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let cfg_of = Cfg.Builder.of_string

let random_cfg_arb =
  QCheck.make (fun st ->
      let rand = Random.State.make [| QCheck.Gen.int st |] in
      Workloads.Random_gen.random_cfg rand)

let random_structured_arb =
  QCheck.make
    ~print:(fun p -> Imp.Pretty.program_to_string p)
    (fun st ->
      let rand = Random.State.make [| QCheck.Gen.int st |] in
      Workloads.Random_gen.structured rand)

(* ------------------------------------------------------------------ *)
(* Dominance frontiers                                                *)

let test_df_diamond () =
  let g = cfg_of "x := 1 if x < 2 then y := 1 else y := 2 end z := 3" in
  let dom = Analysis.Dom.dominators_of g in
  let df = Ssa.Frontier.compute dom g in
  (* the join is in the frontier of both branch assignments *)
  let join =
    List.find (fun n -> Cfg.Core.kind g n = Cfg.Core.Join) (Cfg.Core.nodes g)
  in
  let branches =
    List.filter
      (fun n ->
        match Cfg.Core.kind g n with
        | Cfg.Core.Assign (Imp.Ast.Lvar "y", _) -> true
        | _ -> false)
      (Cfg.Core.nodes g)
  in
  List.iter
    (fun b -> checkb "join in DF(branch)" true (List.mem join df.(b)))
    branches

let prop_df_matches_definition =
  QCheck.Test.make ~name:"dominance frontier = definitional set" ~count:80
    random_cfg_arb (fun g ->
      let dom = Analysis.Dom.dominators_of g in
      let fast = Ssa.Frontier.compute dom g in
      let slow = Ssa.Frontier.compute_definitional dom g in
      Array.for_all2
        (fun a b -> List.sort compare a = List.sort compare b)
        fast slow)

(* ------------------------------------------------------------------ *)
(* SSA construction                                                   *)

(* The start->end convention edge makes [end] a join of every variable's
   initial version with its final one, so a φ at [end] is expected; the
   interesting φs are the interior ones. *)
let interior_phis g ssa x =
  List.filter (fun j -> j <> g.Cfg.Core.stop) (Ssa.Construct.phi_joins ssa x)

let test_ssa_diamond () =
  let g = cfg_of "x := 1 if x < 2 then y := 1 else y := 2 end z := y" in
  let ssa = Ssa.Construct.construct g in
  Ssa.Construct.verify ssa;
  checki "one interior phi for y" 1 (List.length (interior_phis g ssa "y"));
  checki "no interior phi for x" 0 (List.length (interior_phis g ssa "x"));
  (* plus the convention phi at end *)
  checki "end phi for y" 1
    (List.length
       (List.filter (fun j -> j = g.Cfg.Core.stop) (Ssa.Construct.phi_joins ssa "y")))

let test_ssa_loop () =
  let g = Cfg.Builder.of_program (Imp.Factory.running_example ()) in
  let ssa = Ssa.Construct.construct g in
  Ssa.Construct.verify ssa;
  (* the loop header join needs φs for both x and y *)
  checki "phi for x at header" 1 (List.length (interior_phis g ssa "x"));
  checki "phi for y at header" 1 (List.length (interior_phis g ssa "y"))

let test_ssa_versions_count () =
  let g = cfg_of "x := 1 x := x + 1 x := x * 2" in
  let ssa = Ssa.Construct.construct g in
  Ssa.Construct.verify ssa;
  checki "three statement defs of x" 3
    (List.length
       (List.filter
          (fun (_, v) -> v.Ssa.Construct.base = "x")
          ssa.Ssa.Construct.defs))

let test_ssa_array_whole_name () =
  let g = cfg_of "array a[4]; a[0] := 1 a[1] := a[0] + 1" in
  let ssa = Ssa.Construct.construct g in
  Ssa.Construct.verify ssa;
  (* each element store is a def of the whole array *)
  checki "two defs of a" 2
    (List.length
       (List.filter
          (fun (_, v) -> v.Ssa.Construct.base = "a")
          ssa.Ssa.Construct.defs))

let prop_ssa_invariants =
  QCheck.Test.make ~name:"SSA invariants on random unstructured CFGs"
    ~count:80 random_cfg_arb (fun g ->
      let ssa = Ssa.Construct.construct g in
      match Ssa.Construct.verify ssa with () -> true)

let prop_phi_iterated_frontier =
  QCheck.Test.make ~name:"phi joins = iterated dominance frontier" ~count:60
    random_cfg_arb (fun g ->
      let ssa = Ssa.Construct.construct g in
      let dom = Analysis.Dom.dominators_of g in
      let df = Ssa.Frontier.compute_definitional dom g in
      let vars =
        List.sort_uniq compare
          (List.concat_map (Cfg.Core.referenced_vars g) (Cfg.Core.nodes g))
      in
      List.for_all
        (fun x ->
          let sites =
            g.Cfg.Core.start
            :: List.filter
                 (fun n -> Ssa.Construct.def_of g n = Some x)
                 (Cfg.Core.nodes g)
          in
          let expected =
            Ssa.Frontier.iterated df sites |> List.sort compare
          in
          List.sort compare (Ssa.Construct.phi_joins ssa x) = expected)
        vars)

(* ------------------------------------------------------------------ *)
(* The merge/φ correspondence                                         *)

let merge_placement p =
  let g = Cfg.Builder.of_program p in
  let lp = Cfg.Loopify.transform g in
  let report = ref [] in
  (* the flattened variable set: includes case-lowering temporaries *)
  let vars = Imp.Flat.vars (Imp.Flat.flatten p) in
  let _ =
    Dflow.Optimized.translate ~merge_report:report lp ~vars
  in
  (!report, lp)

let prop_phi_implies_merge =
  (* Every SSA φ of the original CFG implies a token merge for the same
     variable in the optimized translation (at the corresponding join of
     the loopified graph).  The converse need not hold: switches multiply
     token sources without multiplying values. *)
  QCheck.Test.make ~name:"phi placement implies merge placement" ~count:60
    random_structured_arb (fun p ->
      let g = Cfg.Builder.of_program p in
      if Analysis.Alias.has_aliasing (Analysis.Alias.of_program p) then true
      else begin
        let ssa = Ssa.Construct.construct g in
        let merges, lp = merge_placement p in
        let vars = Imp.Flat.vars (Imp.Flat.flatten p) in
        (* map original joins to loopified-graph nodes: Loopify preserves
           the ids of original nodes (it only appends) *)
        ignore lp;
        List.for_all
          (fun x ->
            List.for_all
              (fun j ->
                (* a φ at a loop header turns into the loop entry's merge
                   of initial and back tokens; other φs must show up as a
                   token merge at the same join. *)
                let is_end = j = g.Cfg.Core.stop in
                let header_of_loop =
                  Array.exists
                    (fun (l : Cfg.Loopify.loop_info) ->
                      l.Cfg.Loopify.header = j
                      && List.mem x l.Cfg.Loopify.vars)
                    lp.Cfg.Loopify.loops
                in
                is_end || header_of_loop || List.mem (j, x) merges)
              (Ssa.Construct.phi_joins ssa x))
          vars
      end)

(* ------------------------------------------------------------------ *)
(* PDG                                                                *)

let test_pdg_flow_edges () =
  let g = cfg_of "x := 1 y := x + 1 z := x + y" in
  let pdg = Ssa.Pdg.build g in
  let assign_to v =
    List.find
      (fun n ->
        match Cfg.Core.kind g n with
        | Cfg.Core.Assign (Imp.Ast.Lvar w, _) -> w = v
        | _ -> false)
      (Cfg.Core.nodes g)
  in
  let deps = Ssa.Pdg.flow_deps_of pdg (assign_to "z") in
  checkb "z depends on x := 1" true (List.mem (assign_to "x", "x") deps);
  checkb "z depends on y := x+1" true (List.mem (assign_to "y", "y") deps)

let test_pdg_control_edges () =
  let g = cfg_of "x := 1 if x < 2 then y := 1 else y := 2 end" in
  let pdg = Ssa.Pdg.build g in
  let fork =
    List.find
      (fun n -> match Cfg.Core.kind g n with Cfg.Core.Fork _ -> true | _ -> false)
      (Cfg.Core.nodes g)
  in
  let ctl =
    List.filter (fun e -> e.Ssa.Pdg.src = fork) (Ssa.Pdg.control_edges pdg)
  in
  checki "two dependents" 2 (List.length ctl)

let test_pdg_phi_traced () =
  (* uses after a join see both reaching definitions *)
  let g = cfg_of "if w < 1 then y := 1 else y := 2 end z := y" in
  let pdg = Ssa.Pdg.build g in
  let z =
    List.find
      (fun n ->
        match Cfg.Core.kind g n with
        | Cfg.Core.Assign (Imp.Ast.Lvar "z", _) -> true
        | _ -> false)
      (Cfg.Core.nodes g)
  in
  let deps = Ssa.Pdg.flow_deps_of pdg z in
  checki "two reaching defs of y" 2
    (List.length (List.filter (fun (_, v) -> v = "y") deps))

let test_pdg_loop_carried () =
  let g = Cfg.Builder.of_program (Imp.Factory.running_example ()) in
  let pdg = Ssa.Pdg.build g in
  let x_assign =
    List.find
      (fun n ->
        match Cfg.Core.kind g n with
        | Cfg.Core.Assign (Imp.Ast.Lvar "x", _) -> true
        | _ -> false)
      (Cfg.Core.nodes g)
  in
  (* x := x + 1 depends on itself through the loop φ *)
  let deps = Ssa.Pdg.flow_deps_of pdg x_assign in
  checkb "loop-carried self-dependence" true
    (List.mem (x_assign, "x") deps)

let test_pdg_dot () =
  let g = cfg_of "x := 1 y := x" in
  let s = Ssa.Pdg.to_dot (Ssa.Pdg.build g) in
  checkb "digraph" true (String.sub s 0 7 = "digraph")

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_df_matches_definition;
      prop_ssa_invariants;
      prop_phi_iterated_frontier;
      prop_phi_implies_merge;
    ]

let () =
  Alcotest.run "ssa"
    [
      ( "frontier",
        [ Alcotest.test_case "diamond" `Quick test_df_diamond ] );
      ( "construction",
        [
          Alcotest.test_case "diamond phi" `Quick test_ssa_diamond;
          Alcotest.test_case "loop phi" `Quick test_ssa_loop;
          Alcotest.test_case "version counting" `Quick test_ssa_versions_count;
          Alcotest.test_case "arrays as whole names" `Quick
            test_ssa_array_whole_name;
        ] );
      ( "pdg",
        [
          Alcotest.test_case "flow edges" `Quick test_pdg_flow_edges;
          Alcotest.test_case "control edges" `Quick test_pdg_control_edges;
          Alcotest.test_case "phi-traced uses" `Quick test_pdg_phi_traced;
          Alcotest.test_case "loop-carried dependence" `Quick
            test_pdg_loop_carried;
          Alcotest.test_case "dot" `Quick test_pdg_dot;
        ] );
      ("properties", qcheck_cases);
    ]
