(* Tests for the Section 6 parallelizing transformations: memory
   elimination (value passing), read parallelization, Figure 14 array
   store parallelization, and I-structure placement. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let machine_of (c : Dflow.Driver.compiled) : Machine.Interp.program =
  { Machine.Interp.graph = c.Dflow.Driver.graph; layout = c.Dflow.Driver.layout }

let run ?config ?transforms spec p =
  let c = Dflow.Driver.compile ?transforms spec p in
  Dfg.Check.check c.Dflow.Driver.graph;
  (c, Machine.Interp.run_exn ?config (machine_of c))

let differential ?transforms spec p =
  let expected = Imp.Eval.run_program ~fuel:1_000_000 p in
  let _, r = run ?transforms spec p in
  Imp.Memory.equal expected r.Machine.Interp.memory

let vp = { Dflow.Driver.no_transforms with Dflow.Driver.value_passing = true }
let pr = { Dflow.Driver.no_transforms with Dflow.Driver.parallel_reads = true }
let ap = { Dflow.Driver.no_transforms with Dflow.Driver.array_parallel = true }
let is_ = { Dflow.Driver.no_transforms with Dflow.Driver.istructure = true }

let s2b = Dflow.Driver.Schema2 Dflow.Engine.Barrier
let s2p = Dflow.Driver.Schema2 Dflow.Engine.Pipelined
let s2ob = Dflow.Driver.Schema2_opt Dflow.Engine.Barrier
let s2op = Dflow.Driver.Schema2_opt Dflow.Engine.Pipelined

(* ------------------------------------------------------------------ *)
(* Eligibility analyses                                               *)

let test_value_eligible () =
  let p = Imp.Parser.program_of_string "array a[3]; equiv x y; x := 1 z := 2 a[0] := 3" in
  Alcotest.(check (list string))
    "only unaliased scalars" [ "z" ]
    (Dflow.Transforms.value_eligible p)

let test_async_candidates () =
  let p = Imp.Factory.array_store_loop () in
  let lp = Cfg.Loopify.transform (Cfg.Builder.of_program p) in
  let cands = Dflow.Transforms.async_candidates p lp in
  checki "one candidate" 1 (List.length cands);
  Alcotest.(check string) "array x" "x" (snd (List.hd cands))

let test_async_rejects_read () =
  (* x is read in the loop: Figure 14 does not apply. *)
  let p =
    Imp.Parser.program_of_string
      {| array x[12]
         s:
         i := i + 1
         x[i] := x[i] + 1
         if i < 10 goto s |}
  in
  let lp = Cfg.Loopify.transform (Cfg.Builder.of_program p) in
  checki "no candidates" 0 (List.length (Dflow.Transforms.async_candidates p lp))

let test_async_rejects_two_stores () =
  let p =
    Imp.Parser.program_of_string
      {| array x[12]
         s:
         i := i + 1
         x[i] := 1
         x[i + 1] := 2
         if i < 10 goto s |}
  in
  let lp = Cfg.Loopify.transform (Cfg.Builder.of_program p) in
  checki "no candidates" 0 (List.length (Dflow.Transforms.async_candidates p lp))

let test_istructure_candidates () =
  let p = Imp.Factory.array_sum_kernel () in
  let lp = Cfg.Loopify.transform (Cfg.Builder.of_program p) in
  Alcotest.(check (list string))
    "x is write-once" [ "x" ]
    (Dflow.Transforms.istructure_candidates p lp)

let test_istructure_rejects_nested () =
  (* nested loop restarts the induction variable: cells rewritten *)
  let p =
    Imp.Parser.program_of_string
      {| array x[8]
         j := 0
         while j < 2 do
           i := 0
           while i < 8 do
             x[i] := j
             i := i + 1
           end
           j := j + 1
         end |}
  in
  let lp = Cfg.Loopify.transform (Cfg.Builder.of_program p) in
  checki "no candidates" 0
    (List.length (Dflow.Transforms.istructure_candidates p lp))

(* ------------------------------------------------------------------ *)
(* Value passing: semantics                                           *)

let test_value_passing_examples () =
  List.iter
    (fun (name, mk) ->
      let p = mk () in
      if not (Analysis.Alias.has_aliasing (Analysis.Alias.of_program p)) then
        List.iter
          (fun spec ->
            match differential ~transforms:vp spec p with
            | true -> ()
            | false ->
                Alcotest.failf "%s: value passing changed semantics (%s)" name
                  (Dflow.Driver.spec_to_string spec)
            | exception Cfg.Intervals.Irreducible _ -> ())
          [ s2b; s2p; s2ob; s2op ])
    Imp.Factory.all

let test_value_passing_eliminates_memory () =
  (* Scalar-only program: the only remaining memory operations are the
     final write-backs (one store per variable, zero loads). *)
  let p = Imp.Factory.sum_kernel ~n:5 () in
  let c, r = run ~transforms:vp s2b p in
  let st = Dfg.Stats.of_graph c.Dflow.Driver.graph in
  checki "no loads" 0 st.Dfg.Stats.loads;
  checki "write-backs only" 2 st.Dfg.Stats.stores;
  (* i and s *)
  checki "memory ops executed" 2 r.Machine.Interp.memory_ops

let test_value_passing_shortens_critical_path () =
  let p = Imp.Factory.fib_kernel ~n:10 () in
  let config = Machine.Config.default in
  let _, plain = run ~config s2p p in
  let _, valued = run ~config ~transforms:vp s2p p in
  checkb "value passing is faster" true
    (valued.Machine.Interp.cycles < plain.Machine.Interp.cycles)

(* ------------------------------------------------------------------ *)
(* Parallel reads                                                     *)

let read_heavy () =
  Imp.Parser.program_of_string
    {| array a[8]
       a[0] := 3 a[1] := 1 a[2] := 4 a[3] := 1 a[4] := 5 a[5] := 9
       s := a[0] + a[1] + a[2] + a[3] + a[4] + a[5] |}

let test_parallel_reads_semantics () =
  List.iter
    (fun (name, mk) ->
      let p = mk () in
      let specs =
        if Analysis.Alias.has_aliasing (Analysis.Alias.of_program p) then
          [ Dflow.Driver.Schema1;
            Dflow.Driver.Schema3 (Dflow.Driver.Components, Dflow.Engine.Barrier) ]
        else [ Dflow.Driver.Schema1; s2b; s2ob ]
      in
      List.iter
        (fun spec ->
          match differential ~transforms:pr spec p with
          | true -> ()
          | false ->
              Alcotest.failf "%s: parallel reads changed semantics (%s)" name
                (Dflow.Driver.spec_to_string spec)
          | exception Cfg.Intervals.Irreducible _ -> ())
        specs)
    Imp.Factory.all

let test_parallel_reads_speedup () =
  (* Six reads of the same array in one statement: serialized they cost
     6 memory latencies on the access chain; parallel, one. *)
  let p = read_heavy () in
  let config = Machine.Config.default in
  let _, serial = run ~config s2b p in
  let _, par = run ~config ~transforms:pr s2b p in
  checkb "parallel reads shorten the path" true
    (par.Machine.Interp.cycles < serial.Machine.Interp.cycles);
  checki "same memory traffic" serial.Machine.Interp.memory_ops
    par.Machine.Interp.memory_ops

let test_parallel_reads_schema1 () =
  (* Under Schema 1 every read in a statement shares the single token:
     read parallelization helps even the sequential schema. *)
  let p = read_heavy () in
  let config = Machine.Config.default in
  let _, serial = run ~config Dflow.Driver.Schema1 p in
  let _, par = run ~config ~transforms:pr Dflow.Driver.Schema1 p in
  checkb "faster" true
    (par.Machine.Interp.cycles < serial.Machine.Interp.cycles)

(* ------------------------------------------------------------------ *)
(* Figure 14: array store parallelization                             *)

let test_array_parallel_semantics () =
  let p = Imp.Factory.array_store_loop ~n:10 () in
  checkb "barrier" true (differential ~transforms:ap s2b p);
  checkb "pipelined" true (differential ~transforms:ap s2p p);
  let both =
    { ap with Dflow.Driver.value_passing = true; parallel_reads = true }
  in
  checkb "with value passing" true (differential ~transforms:both s2p p)

let test_array_parallel_overlaps_stores () =
  (* With value passing on the scalars, the induction update is pure
     token traffic; overlapped stores then pipeline the memory latency
     across iterations. *)
  let slow_mem =
    {
      Machine.Config.default with
      Machine.Config.latencies = { alu = 1; memory = 24; routing = 1 };
    }
  in
  let p = Imp.Factory.array_store_loop ~n:16 () in
  let t = { vp with Dflow.Driver.parallel_reads = true } in
  let _, plain = run ~config:slow_mem ~transforms:t s2p p in
  let t' = { t with Dflow.Driver.array_parallel = true } in
  let _, overlapped = run ~config:slow_mem ~transforms:t' s2p p in
  checkb
    (Fmt.str "stores overlap (%d < %d cycles)" overlapped.Machine.Interp.cycles
       plain.Machine.Interp.cycles)
    true
    (overlapped.Machine.Interp.cycles < plain.Machine.Interp.cycles)

let test_array_parallel_random () =
  (* Array-heavy random programs keep their semantics under the
     transform (whether or not any loop qualifies). *)
  let rand = Random.State.make [| 421 |] in
  for _ = 1 to 30 do
    let config =
      { Workloads.Random_gen.default_config with num_arrays = 2; max_depth = 2 }
    in
    let p = Workloads.Random_gen.structured ~config rand in
    checkb "semantics preserved" true (differential ~transforms:ap s2p p)
  done

(* ------------------------------------------------------------------ *)
(* I-structures                                                       *)

let test_istructure_semantics () =
  let p = Imp.Factory.array_sum_kernel ~n:8 () in
  checkb "barrier" true (differential ~transforms:is_ s2b p);
  checkb "pipelined" true (differential ~transforms:is_ s2p p)

let test_istructure_deferred_reads_overlap () =
  (* The consumer loop's reads can issue before the producer loop's
     writes land; with high memory latency the I-structure version wins. *)
  let slow_mem =
    {
      Machine.Config.default with
      Machine.Config.latencies = { alu = 1; memory = 24; routing = 1 };
    }
  in
  let p = Imp.Factory.array_sum_kernel ~n:8 () in
  let t = { vp with Dflow.Driver.parallel_reads = true } in
  let _, plain = run ~config:slow_mem ~transforms:t s2p p in
  let t' = { t with Dflow.Driver.istructure = true } in
  let _, istr = run ~config:slow_mem ~transforms:t' s2p p in
  checkb
    (Fmt.str "I-structure overlaps producer/consumer (%d <= %d)"
       istr.Machine.Interp.cycles plain.Machine.Interp.cycles)
    true
    (istr.Machine.Interp.cycles < plain.Machine.Interp.cycles)

(* ------------------------------------------------------------------ *)
(* Random differential with every transform enabled                   *)

let prop_random_all_transforms =
  QCheck.Test.make ~name:"random programs with all transforms" ~count:50
    (QCheck.make
       ~print:(fun p -> Imp.Pretty.program_to_string p)
       (fun st ->
         let rand = Random.State.make [| QCheck.Gen.int st |] in
         Workloads.Random_gen.structured rand))
    (fun p ->
      List.for_all
        (fun spec ->
          differential ~transforms:Dflow.Driver.all_transforms spec p)
        [ s2b; s2p ]
      && List.for_all
           (fun spec -> differential ~transforms:vp spec p)
           [ s2ob; s2op ])

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_random_all_transforms ]

let () =
  Alcotest.run "transforms"
    [
      ( "eligibility",
        [
          Alcotest.test_case "value-eligible variables" `Quick test_value_eligible;
          Alcotest.test_case "async candidates" `Quick test_async_candidates;
          Alcotest.test_case "async rejects in-loop reads" `Quick
            test_async_rejects_read;
          Alcotest.test_case "async rejects conflicting stores" `Quick
            test_async_rejects_two_stores;
          Alcotest.test_case "I-structure candidates" `Quick
            test_istructure_candidates;
          Alcotest.test_case "I-structure rejects nested loops" `Quick
            test_istructure_rejects_nested;
        ] );
      ( "value passing",
        [
          Alcotest.test_case "semantics on all examples" `Quick
            test_value_passing_examples;
          Alcotest.test_case "eliminates interior memory ops" `Quick
            test_value_passing_eliminates_memory;
          Alcotest.test_case "shortens critical path" `Quick
            test_value_passing_shortens_critical_path;
        ] );
      ( "parallel reads",
        [
          Alcotest.test_case "semantics on all examples" `Quick
            test_parallel_reads_semantics;
          Alcotest.test_case "speedup on read runs" `Quick
            test_parallel_reads_speedup;
          Alcotest.test_case "helps schema 1 too" `Quick
            test_parallel_reads_schema1;
        ] );
      ( "array parallel (fig 14)",
        [
          Alcotest.test_case "semantics" `Quick test_array_parallel_semantics;
          Alcotest.test_case "stores overlap across iterations" `Quick
            test_array_parallel_overlaps_stores;
          Alcotest.test_case "random array programs" `Quick
            test_array_parallel_random;
        ] );
      ( "I-structures",
        [
          Alcotest.test_case "semantics" `Quick test_istructure_semantics;
          Alcotest.test_case "deferred reads overlap loops" `Quick
            test_istructure_deferred_reads_overlap;
        ] );
      ("properties", qcheck_cases);
    ]
