(* Experiment harness: regenerates every figure of the paper as an
   executable experiment (see DESIGN.md, experiment index E1-E14, and
   EXPERIMENTS.md for recorded results).

   The paper has no numeric tables; its figures are worked constructions
   with qualitative claims attached.  Each experiment below reproduces
   the construction, prints the measured static and dynamic metrics, and
   states the claim being checked.  Absolute cycle counts are properties
   of our ETS simulator (DESIGN.md, substitutions), but every comparison
   -- who is more parallel, what gets eliminated, where the tradeoffs lie
   -- is the paper's.

   Run with:  dune exec bench/main.exe            (all experiments)
              dune exec bench/main.exe -- E7 E10  (a selection)
              dune exec bench/main.exe -- quick   (skip the timing runs)
*)

let section id title =
  Fmt.pr "@.============================================================@.";
  Fmt.pr "%s  %s@." id title;
  Fmt.pr "============================================================@."

let claim what = Fmt.pr "claim: %s@.@." what

(* --- shared helpers -------------------------------------------------- *)

(* All compilation in the harness routes through the content-addressed
   cache: each (program, schema, transforms) pair is compiled exactly
   once per process however many experiments mention it. *)
let compile ?transforms spec p = Dflow.Memo.compile ?transforms spec p

let execute ?(config = Machine.Config.default) (c : Dflow.Driver.compiled) =
  Dfg.Check.check c.Dflow.Driver.graph;
  Machine.Interp.run_exn ~config
    { Machine.Interp.graph = c.Dflow.Driver.graph; layout = c.Dflow.Driver.layout }

let check_reference p (r : Machine.Interp.result) =
  let expected = Imp.Eval.run_program ~fuel:10_000_000 p in
  if not (Imp.Memory.equal expected r.Machine.Interp.memory) then
    failwith "experiment produced a store differing from the reference!"

let run_row ?config ?transforms name spec p =
  let c = compile ?transforms spec p in
  let r = execute ?config c in
  check_reference p r;
  let st = Dfg.Stats.of_graph c.Dflow.Driver.graph in
  Fmt.pr "  %-34s %7d %7d %8d %8.2f %5d %5d %6d@." name
    r.Machine.Interp.cycles r.Machine.Interp.firings
    r.Machine.Interp.memory_ops
    (Machine.Interp.avg_parallelism r)
    st.Dfg.Stats.switches st.Dfg.Stats.merges st.Dfg.Stats.synch_inputs;
  (r, st)

let header () =
  Fmt.pr "  %-34s %7s %7s %8s %8s %5s %5s %6s@." "configuration" "cycles"
    "ops" "mem-ops" "avg-par" "sw" "mrg" "syn-in"

let s1 = Dflow.Driver.Schema1
let s2b = Dflow.Driver.Schema2 Dflow.Engine.Barrier
let s2p = Dflow.Driver.Schema2 Dflow.Engine.Pipelined
let s2ob = Dflow.Driver.Schema2_opt Dflow.Engine.Barrier
let s2op = Dflow.Driver.Schema2_opt Dflow.Engine.Pipelined

(* ===================================================================== *)
(* E1 -- Figure 1: the running example's control-flow graph              *)

let e1 () =
  section "E1" "Figure 1: running-example control-flow graph";
  claim
    "the statement-level CFG has the paper's shape: start/end, one join \
     (the label l), two assignments, one fork; start is itself a fork via \
     the conventional start->end edge";
  let p = Imp.Factory.running_example () in
  let g = Cfg.Builder.of_program p in
  Cfg.Validate.check g;
  Fmt.pr "%a@." Cfg.Core.pp g;
  let count p_ = List.length (List.filter p_ (Cfg.Core.nodes g)) in
  Fmt.pr "nodes %d  edges %d  assigns %d  forks %d  joins %d@."
    (Cfg.Core.num_nodes g) (Cfg.Core.num_edges g)
    (count (fun n -> match Cfg.Core.kind g n with Cfg.Core.Assign _ -> true | _ -> false))
    (count (fun n -> match Cfg.Core.kind g n with Cfg.Core.Fork _ -> true | _ -> false))
    (count (fun n -> Cfg.Core.kind g n = Cfg.Core.Join));
  Fmt.pr "(DOT renderings: dune exec bin/df_compile.exe -- dot FILE --stage cfg)@."

(* ===================================================================== *)
(* E2 -- Figure 2: operator semantics                                    *)

let e2 () =
  section "E2" "Figure 2: switch / merge / synch operator semantics";
  claim
    "switch routes its data token by the predicate; merge forwards any \
     arrival; synch waits for all inputs (verified exhaustively in \
     test/test_machine.ml; here: one observable run each)";
  let module B = Dfg.Graph.Builder in
  let module N = Dfg.Node in
  let layout = Imp.Layout.of_program (Imp.Parser.program_of_string "r := 0") in
  let run g = Machine.Interp.run { Machine.Interp.graph = g; layout } in
  List.iter
    (fun dir ->
      let b = B.create () in
      let start = B.add b (N.Start 1) in
      let data = B.add b (N.Const (Imp.Value.Int 7)) in
      let pred = B.add b (N.Const (Imp.Value.Bool dir)) in
      let sw = B.add b N.Switch in
      let st = B.add b (N.Store { var = "r"; indexed = false; mem = N.Plain }) in
      let st2 = B.add b (N.Store { var = "r"; indexed = false; mem = N.Plain }) in
      let stop = B.add b (N.End 1) in
      B.connect b ~dummy:true (start, 0) (data, 0);
      B.connect b ~dummy:true (start, 0) (pred, 0);
      B.connect b (data, 0) (sw, 0);
      B.connect b (pred, 0) (sw, 1);
      B.connect b ~dummy:true (sw, 0) (st, 0);
      B.connect b (sw, 0) (st, 1);
      B.connect b ~dummy:true (sw, 1) (st2, 0);
      B.connect b (sw, 1) (st2, 1);
      B.connect b ~dummy:true (st, 0) (stop, 0);
      let r = run (B.finish b) in
      Fmt.pr "  switch on %-5b -> %s consumed the token (end fired: %b)@." dir
        (if dir then "true-output store" else "false-output store")
        r.Machine.Interp.completed)
    [ true; false ];
  Fmt.pr "  merge and synch: see the machine_tour example and machine tests@."

(* ===================================================================== *)
(* E3 -- Figures 3-5: Schema 1                                           *)

let e3 () =
  section "E3" "Figures 3-5: Schema 1, sequential semantics via one token";
  claim
    "statements execute one at a time (the single access token is the \
     program counter); only expression-level parallelism survives, so \
     average parallelism stays near or below 1 and cycles track the \
     sequential operation count";
  header ();
  List.iter
    (fun (name, p) -> ignore (run_row name s1 p))
    [
      ("running example (fig 1)", Imp.Factory.running_example ());
      ("independent straight line", Imp.Factory.independent_straightline ());
      ("dependent chain", Imp.Factory.dependent_chain ());
      ("gcd kernel", Imp.Factory.gcd_kernel ());
    ];
  let p = Imp.Factory.independent_straightline ~k:10 () in
  let r = execute (compile s1 p) in
  Fmt.pr "  peak parallelism under schema 1: %d (statements never overlap)@."
    r.Machine.Interp.peak_parallelism;
  (* parallelism profiles: firings per cycle, rendered as a bar chart *)
  let sparkline (profile : int array) =
    let glyphs = [| " "; "."; ":"; "|"; "#" |] in
    let buf = Buffer.create (Array.length profile) in
    Array.iter
      (fun v ->
        let i = min 4 v in
        Buffer.add_string buf glyphs.(i))
      profile;
    Buffer.contents buf
  in
  Fmt.pr "@.  parallelism profile (one column per cycle; ' '=0 '.'=1 ':'=2           '|'=3 '#'=4+):@.";
  List.iter
    (fun (name, spec) ->
      let r = execute ~config:Machine.Config.ideal (compile spec p) in
      Fmt.pr "  %-12s %s@." name (sparkline r.Machine.Interp.profile))
    [ ("schema1", s1); ("schema2", s2b); ("schema2-opt", s2ob) ]

(* ===================================================================== *)
(* E4 -- Figures 6-7: Schema 2                                           *)

let e4 () =
  section "E4" "Figures 6-7: Schema 2, one access token per variable";
  claim
    "independent memory operations overlap: on straight-line code over \
     disjoint variables Schema 2 shortens the critical path by roughly \
     the number of independent statements, and cannot help a dependence \
     chain";
  header ();
  let wide = Imp.Factory.independent_straightline ~k:8 () in
  let chain = Imp.Factory.dependent_chain ~k:8 () in
  let r1w, _ = run_row "schema1 / 8 independent" s1 wide in
  let r2w, _ = run_row "schema2 / 8 independent" s2b wide in
  let r1c, _ = run_row "schema1 / 8-deep chain" s1 chain in
  let r2c, _ = run_row "schema2 / 8-deep chain" s2b chain in
  Fmt.pr "  speedup on independent code: %.2fx;  on the chain: %.2fx@."
    (float_of_int r1w.Machine.Interp.cycles /. float_of_int r2w.Machine.Interp.cycles)
    (float_of_int r1c.Machine.Interp.cycles /. float_of_int r2c.Machine.Interp.cycles)

(* ===================================================================== *)
(* E5 -- Figure 8: loops need loop control                               *)

let e5 () =
  section "E5" "Figure 8: Schema 2 on a cycle without loop control";
  claim
    "without loop-entry/exit operators the graph is not a meaningful \
     dataflow computation: two same-tag tokens meet on one arc (detected \
     by the machine as a token collision); inserting loop control fixes \
     it under identical latencies";
  let p =
    Imp.Parser.program_of_string
      {| l:
         y := ((((x + 1) * 3 + x) * 3 + x) * 3 + x) * 3 + x
         x := x + 1
         if x < 5 goto l |}
  in
  let slow_alu =
    { Machine.Config.default with
      Machine.Config.latencies = { alu = 8; memory = 1; routing = 1 } }
  in
  let c = compile Dflow.Driver.Schema2_unsafe_no_loop_control p in
  (match
     Machine.Interp.run ~config:slow_alu
       { Machine.Interp.graph = c.Dflow.Driver.graph; layout = c.Dflow.Driver.layout }
   with
  | _ -> Fmt.pr "  UNEXPECTED: no collision detected@."
  | exception Machine.Interp.Token_collision w ->
      Fmt.pr "  without loop control: Token_collision at %s@." w);
  List.iter
    (fun (name, spec) ->
      let r = execute ~config:slow_alu (compile spec p) in
      check_reference p r;
      Fmt.pr "  with %-22s clean run, %d cycles, x=%d y=%d@." name
        r.Machine.Interp.cycles
        (Imp.Memory.read r.Machine.Interp.memory "x" 0)
        (Imp.Memory.read r.Machine.Interp.memory "y" 0))
    [ ("barrier loop control:", s2b); ("pipelined loop control:", s2p) ]

(* ===================================================================== *)
(* E6 -- Figure 9: redundant switches restrict parallelism               *)

let e6 () =
  section "E6" "Figure 9: eliminating a redundant switch unblocks access_x";
  claim
    "in the Figure 9 program x is untouched by the conditional; Schema 2 \
     still routes access_x through a switch, serializing the second x \
     assignment behind the predicate; the optimized construction lets it \
     bypass, strictly reducing switches";
  let p = Imp.Factory.bypass_example () in
  header ();
  let _, st2 = run_row "schema2 (switch for x at fork)" s2b p in
  let _, sto = run_row "schema2-opt (x bypasses)" s2ob p in
  Fmt.pr "  switches: %d -> %d;  nested variant: " st2.Dfg.Stats.switches
    sto.Dfg.Stats.switches;
  let pn = Imp.Factory.nested_bypass_example () in
  let cn2 = compile s2b pn and cno = compile s2ob pn in
  Fmt.pr "%d -> %d (both inner and outer eliminated)@."
    (Dfg.Stats.of_graph cn2.Dflow.Driver.graph).Dfg.Stats.switches
    (Dfg.Stats.of_graph cno.Dflow.Driver.graph).Dfg.Stats.switches

(* ===================================================================== *)
(* E7 -- Figure 10: switch placement = iterated control dependence       *)

let e7 () =
  section "E7" "Figure 10 / Theorem 1: worklist placement = CD+ = between";
  claim
    "the worklist algorithm computes exactly the definitional relation \
     (checked on random unstructured CFGs here and in the property \
     tests)";
  let rand = Random.State.make [| 2026 |] in
  let mismatches = ref 0 and graphs = ref 0 and forks = ref 0 in
  for _ = 1 to 120 do
    let g = Workloads.Random_gen.random_cfg rand in
    incr graphs;
    let vars =
      List.sort_uniq compare
        (List.concat_map (Cfg.Core.referenced_vars g) (Cfg.Core.nodes g))
    in
    if vars <> [] then begin
      let fast = Analysis.Switch_place.compute g ~vars in
      let slow = Analysis.Switch_place.compute_bruteforce g ~vars in
      List.iter
        (fun f ->
          if Cfg.Core.is_fork g f then begin
            incr forks;
            List.iter
              (fun x ->
                if
                  Analysis.Switch_place.needs_switch fast f x
                  <> Analysis.Switch_place.needs_switch slow f x
                then incr mismatches)
              vars
          end)
        (Cfg.Core.nodes g)
    end
  done;
  Fmt.pr "  %d random CFGs, %d forks checked, %d mismatches@." !graphs !forks
    !mismatches;
  if !mismatches > 0 then failwith "Theorem 1 violated!"

(* ===================================================================== *)
(* E8 -- Figure 11: the source-vector construction                       *)

let e8 () =
  section "E8" "Figure 11: source vectors wire a switch-minimal graph";
  claim
    "across all example programs the optimized construction produces \
     graphs with no more switches/merges than Schema 2, identical final \
     stores, and comparable or shorter critical paths";
  Fmt.pr "  %-28s %9s %9s %9s %9s %9s@." "program" "sw(2)" "sw(opt)" "mrg(2)"
    "mrg(opt)" "cyc-ratio";
  List.iter
    (fun (name, mk) ->
      let p = mk () in
      if not (Analysis.Alias.has_aliasing (Analysis.Alias.of_program p)) then
        match (compile s2b p, compile s2ob p) with
        | c2, co ->
            let st2 = Dfg.Stats.of_graph c2.Dflow.Driver.graph in
            let sto = Dfg.Stats.of_graph co.Dflow.Driver.graph in
            let r2 = execute c2 and ro = execute co in
            check_reference p ro;
            assert (sto.Dfg.Stats.switches <= st2.Dfg.Stats.switches);
            Fmt.pr "  %-28s %9d %9d %9d %9d %9.2f@." name st2.Dfg.Stats.switches
              sto.Dfg.Stats.switches st2.Dfg.Stats.merges sto.Dfg.Stats.merges
              (float_of_int ro.Machine.Interp.cycles
              /. float_of_int r2.Machine.Interp.cycles)
        | exception Cfg.Intervals.Irreducible _ ->
            Fmt.pr "  %-28s (irreducible)@." name)
    Imp.Factory.all

(* ===================================================================== *)
(* E9 -- Figures 12-13: aliasing and covers                              *)

let e9 () =
  section "E9" "Figures 12-13: Schema 3, covers of the alias structure";
  claim
    "the FORTRAN example's alias structure (x~z, y~z, x!~y) admits \
     covers trading parallelism for synchronisation: singleton maximizes \
     overlap, components minimize token collection; all covers preserve \
     the sequential store";
  let p = Imp.Factory.fortran_alias_example () in
  let alias = Analysis.Alias.of_program p in
  Fmt.pr "  @[<v 2>alias classes:@ %a@]@." Analysis.Alias.pp alias;
  header ();
  List.iter
    (fun (name, choice) ->
      ignore
        (run_row name (Dflow.Driver.Schema3 (choice, Dflow.Engine.Barrier)) p))
    [
      ("schema3 / singleton cover", Dflow.Driver.Singleton);
      ("schema3 / class cover", Dflow.Driver.Classes);
      ("schema3 / component cover", Dflow.Driver.Components);
    ];
  ignore (run_row "schema1 (fully sequential)" s1 p);
  (* dynamic tradeoff: chain alias structure p~q~r~s where p-work and
     s-work are independent; the singleton cover overlaps them (their
     access sets are disjoint), the component cover serializes them *)
  let chain_prog =
    Imp.Parser.program_of_string
      {| mayalias p q  mayalias q r  mayalias r s
         p := p + 1 p := p * 2 p := p + 3 p := p * 2 p := p + 5
         s := s + 1 s := s * 2 s := s + 3 s := s * 2 s := s + 5 |}
  in
  Fmt.pr "  chain-alias program (independent p-work and s-work):@.";
  List.iter
    (fun (name, choice) ->
      ignore
        (run_row name
           (Dflow.Driver.Schema3 (choice, Dflow.Engine.Barrier))
           chain_prog))
    [
      ("  singleton (p,s overlap)", Dflow.Driver.Singleton);
      ("  classes", Dflow.Driver.Classes);
      ("  components (serialized)", Dflow.Driver.Components);
    ];
  let chain =
    Analysis.Alias.of_pairs [ "p"; "q"; "r"; "s" ] ~equiv:[]
      ~may_alias:[ ("p", "q"); ("q", "r"); ("r", "s") ]
  in
  let vars = [ "p"; "q"; "r"; "s" ] in
  Fmt.pr "  chain p~q~r~s:  %-12s %9s %9s@." "cover" "sync-cost" "spurious";
  List.iter
    (fun (name, c) ->
      Fmt.pr "                  %-12s %9d %9d@." name
        (Analysis.Cover.synchronization_cost chain c vars)
        (Analysis.Cover.spurious_serialization chain c))
    [
      ("singleton", Analysis.Cover.singleton chain);
      ("classes", Analysis.Cover.classes chain);
      ("components", Analysis.Cover.components chain);
    ]

(* ===================================================================== *)
(* E10 -- Figure 14: array store parallelization                         *)

let e10 () =
  section "E10" "Figure 14: overlapping independent array stores";
  claim
    "subscript analysis proves the loop's stores hit distinct elements; \
     duplicating the access token into the next iteration and collecting \
     completions overlaps the stores, turning per-iteration memory \
     latency into pipelined throughput; I-structures additionally \
     overlap producer and consumer loops";
  let p = Imp.Factory.array_store_loop ~n:16 () in
  let slow_mem =
    { Machine.Config.default with
      Machine.Config.latencies = { alu = 1; memory = 24; routing = 1 } }
  in
  let base =
    { Dflow.Driver.no_transforms with
      Dflow.Driver.value_passing = true; parallel_reads = true }
  in
  header ();
  ignore (run_row ~config:slow_mem "schema2-pipelined" s2p p);
  ignore (run_row ~config:slow_mem ~transforms:base "  + value passing" s2p p);
  ignore
    (run_row ~config:slow_mem
       ~transforms:{ base with Dflow.Driver.array_parallel = true }
       "  + fig14 overlap" s2p p);
  let pc = Imp.Factory.array_sum_kernel ~n:12 () in
  Fmt.pr "  producer/consumer kernel:@.";
  ignore (run_row ~config:slow_mem ~transforms:base "  value passing only" s2p pc);
  ignore
    (run_row ~config:slow_mem
       ~transforms:{ base with Dflow.Driver.array_parallel = true }
       "  + fig14 overlap" s2p pc);
  ignore
    (run_row ~config:slow_mem
       ~transforms:{ base with Dflow.Driver.istructure = true }
       "  + I-structure memory" s2p pc)

(* ===================================================================== *)
(* E11 -- Section 6.1: elimination of memory operations                  *)

let e11 () =
  section "E11" "Section 6.1: values ride the tokens; memory ops vanish";
  claim
    "for unaliased scalars every interior load and store disappears \
     (only the final write-back remains), and the critical path drops \
     toward the data-dependence height";
  Fmt.pr "  %-24s %9s %9s %9s %9s %11s %11s@." "kernel" "mem(2opt)"
    "mem(val)" "cyc(2opt)" "cyc(val)" "tokens(2op)" "tokens(val)";
  List.iter
    (fun (name, p) ->
      let c = compile s2op p in
      let r = execute c in
      let cv =
        compile
          ~transforms:
            { Dflow.Driver.no_transforms with Dflow.Driver.value_passing = true }
          s2op p
      in
      let rv = execute cv in
      check_reference p rv;
      let traffic (x : Machine.Interp.result) =
        x.Machine.Interp.dummy_deliveries + x.Machine.Interp.value_deliveries
      in
      Fmt.pr "  %-24s %9d %9d %9d %9d %11d %11d@." name
        r.Machine.Interp.memory_ops rv.Machine.Interp.memory_ops
        r.Machine.Interp.cycles rv.Machine.Interp.cycles (traffic r)
        (traffic rv))
    [
      ("sum", Imp.Factory.sum_kernel ~n:10 ());
      ("fib", Imp.Factory.fib_kernel ~n:10 ());
      ("gcd", Imp.Factory.gcd_kernel ());
      ("running example", Imp.Factory.running_example ());
    ]

(* ===================================================================== *)
(* E12 -- Section 6.2: read parallelization                              *)

let e12 () =
  section "E12" "Section 6.2: maximal read runs execute in parallel";
  claim
    "a run of loads on one access token costs one memory latency instead \
     of one per load; reads of potentially aliased names parallelize \
     too (only writes need ordering)";
  let p =
    Imp.Parser.program_of_string
      {| array a[8]
         a[0] := 3 a[1] := 1 a[2] := 4 a[3] := 1 a[4] := 5 a[5] := 9
         s := a[0] + a[1] + a[2] + a[3] + a[4] + a[5] |}
  in
  let aliased =
    Imp.Parser.program_of_string
      {| mayalias x y
         mayalias y z
         x := 1 y := 2 z := 3
         s := x + y + z + x + y + z |}
  in
  let t = { Dflow.Driver.no_transforms with Dflow.Driver.parallel_reads = true } in
  header ();
  ignore (run_row "6-read statement, serial" s2b p);
  ignore (run_row ~transforms:t "6-read statement, parallel" s2b p);
  ignore (run_row "schema1 serial reads" s1 p);
  ignore (run_row ~transforms:t "schema1 parallel reads" s1 p);
  let s3 = Dflow.Driver.Schema3 (Dflow.Driver.Components, Dflow.Engine.Barrier) in
  ignore (run_row "aliased reads, serial" s3 aliased);
  ignore (run_row ~transforms:t "aliased reads, parallel" s3 aliased)

(* ===================================================================== *)
(* E13 -- Section 3: the O(E * V) size bound                             *)

let e13 () =
  section "E13" "Section 3: Schema 2 graph size is O(E x V)";
  claim
    "arcs grow linearly in E*V for Schema 2 (each CFG edge carries one \
     arc per variable); the optimized construction grows more slowly \
     because unused tokens bypass whole regions";
  Fmt.pr "  %-6s %6s %6s %10s %12s %14s@." "vars" "E" "ExV" "arcs(2)"
    "arcs(2)/ExV" "arcs(opt)";
  List.iter
    (fun k ->
      let body =
        String.concat "\n"
          (List.init k (fun i ->
               Fmt.str "if v%d < 5 then v%d := v%d + 1 else v%d := v%d - 1 end"
                 i i i i i))
      in
      let p = Imp.Parser.program_of_string body in
      let c2 = compile s2b p in
      let co = compile s2ob p in
      let e = Cfg.Core.num_edges c2.Dflow.Driver.cfg in
      let ev = e * k in
      Fmt.pr "  %-6d %6d %6d %10d %12.2f %14d@." k e ev
        (Dfg.Graph.num_arcs c2.Dflow.Driver.graph)
        (float_of_int (Dfg.Graph.num_arcs c2.Dflow.Driver.graph)
        /. float_of_int ev)
        (Dfg.Graph.num_arcs co.Dflow.Driver.graph))
    [ 2; 4; 8; 16; 24 ]

(* ===================================================================== *)
(* E14 -- ablations: loop control strategy and PE scaling                *)

let e14 () =
  section "E14" "Ablations: loop-control strategy; processing elements";
  claim
    "pipelined per-variable gateways dominate the barrier black box on \
     loops with unbalanced statement latencies; bounded PEs recover the \
     von Neumann regime (schema 1 is insensitive to PE count, schema \
     2-opt scales)";
  (* the slow statement alternates between iterations: the barrier pays
     the slow side every iteration; pipelined gateways let a's even-
     iteration work overlap b's odd-iteration work *)
  let p =
    Imp.Parser.program_of_string
      {| i := 0
         while i < 12 do
           if i % 2 == 0 then
             a := a + i * i * i * i * i * i
           else
             b := b + i * i * i * i * i * i
           end
           i := i + 1
         end |}
  in
  let slow_alu =
    { Machine.Config.default with
      Machine.Config.latencies = { alu = 6; memory = 2; routing = 1 } }
  in
  Fmt.pr "  loop control with an alternating bottleneck (alu = 6 cycles):@.";
  header ();
  ignore (run_row ~config:slow_alu "schema2 barrier" s2b p);
  ignore (run_row ~config:slow_alu "schema2 pipelined" s2p p);
  ignore (run_row ~config:slow_alu "schema2-opt barrier" s2ob p);
  ignore (run_row ~config:slow_alu "schema2-opt pipelined" s2op p);
  let wide = Imp.Factory.independent_straightline ~k:12 () in
  Fmt.pr "@.  PE sweep on 12 independent statements (cycles):@.";
  Fmt.pr "  %-14s" "PEs";
  List.iter
    (fun pes ->
      Fmt.pr " %7s" (match pes with None -> "inf" | Some p -> string_of_int p))
    [ Some 1; Some 2; Some 4; Some 8; None ];
  Fmt.pr "@.";
  List.iter
    (fun (name, spec) ->
      Fmt.pr "  %-14s" name;
      List.iter
        (fun pes ->
          let config = { Machine.Config.default with Machine.Config.pes } in
          let r = execute ~config (compile spec wide) in
          Fmt.pr " %7d" r.Machine.Interp.cycles)
        [ Some 1; Some 2; Some 4; Some 8; None ];
      Fmt.pr "@.")
    [ ("schema1", s1); ("schema2", s2b); ("schema2-opt", s2ob) ];
  (* memory bandwidth sweep: Schema 2's exposed parallelism is memory
     traffic; ports throttle it, and Section 6.1 value passing gives the
     parallelism back without touching memory at all *)
  Fmt.pr "@.  memory-port sweep on the same workload (cycles):@.";
  Fmt.pr "  %-24s" "memory ports";
  List.iter
    (fun mp -> Fmt.pr " %7s" (match mp with None -> "inf" | Some m -> string_of_int m))
    [ Some 1; Some 2; Some 4; None ];
  Fmt.pr "@.";
  List.iter
    (fun (name, spec, transforms) ->
      Fmt.pr "  %-24s" name;
      List.iter
        (fun memory_ports ->
          let config = { Machine.Config.default with Machine.Config.memory_ports } in
          let r = execute ~config (compile ~transforms spec wide) in
          Fmt.pr " %7d" r.Machine.Interp.cycles)
        [ Some 1; Some 2; Some 4; None ];
      Fmt.pr "@.")
    [
      ("schema2", s2b, Dflow.Driver.no_transforms);
      ( "schema2 + value passing",
        s2b,
        { Dflow.Driver.no_transforms with Dflow.Driver.value_passing = true } );
    ]

(* ===================================================================== *)
(* E15 -- machine resources: waiting-matching store and token overlap    *)

let e15 () =
  section "E15" "Machine resources: waiting-matching occupancy (frames)";
  claim
    "the explicit token store replaces associative waiting-matching with      frame slots; the peak number of live rendezvous entries (and of      overlapping iteration contexts) is the frame capacity a Monsoon-like      machine must provision -- pipelined loop control buys speed with      more concurrent frames";
  let p =
    Imp.Parser.program_of_string
      {| i := 0
         while i < 12 do
           a := a + i * i * i
           b := b + 1
           i := i + 1
         end |}
  in
  Fmt.pr "  %-28s %8s %12s %12s %10s@." "schema" "cycles" "peak-match"
    "peak-flight" "ctx-olap";
  List.iter
    (fun (name, spec, transforms) ->
      let c = compile ~transforms spec p in
      let tracer = Machine.Trace.create () in
      let r =
        Machine.Interp.run
          ~on_fire:(Machine.Trace.on_fire tracer)
          { Machine.Interp.graph = c.Dflow.Driver.graph;
            layout = c.Dflow.Driver.layout }
      in
      assert (r.Machine.Interp.completed && r.Machine.Interp.leftover_tokens = 0);
      check_reference p r;
      Fmt.pr "  %-28s %8d %12d %12d %10d@." name r.Machine.Interp.cycles
        r.Machine.Interp.peak_matching r.Machine.Interp.peak_in_flight
        (Machine.Trace.max_context_overlap tracer))
    [
      ("schema1", s1, Dflow.Driver.no_transforms);
      ("schema2 barrier", s2b, Dflow.Driver.no_transforms);
      ("schema2 pipelined", s2p, Dflow.Driver.no_transforms);
      ("schema2-opt pipelined", s2op, Dflow.Driver.no_transforms);
      ( "schema2-opt pipelined +6.1",
        s2op,
        { Dflow.Driver.no_transforms with Dflow.Driver.value_passing = true } );
    ]

(* ===================================================================== *)
(* E16 -- separate compilation of procedures (Section 5's origin story)  *)

let e16 () =
  section "E16" "Separate compilation: one Schema 3 graph, every call site";
  claim
    "the alias structure of a procedure derives from its call sites      (SUBROUTINE F(X,Y,Z) at F(A,B,A) and F(C,D,D): X~Z, Y~Z, never      X~Y); the body compiled once against that structure executes      correctly under every call site's storage binding, while Schema 2      (no alias structure) computes a wrong store under real aliasing";
  let src =
    {| proc f(fx, fy, fz)
         fx := 1
         fy := 2
         fz := fz + fx + fy
         fx := fy + fz
       end
       call f(a, b, a)
       call f(c, d, d)
       call f(u, v, w) |}
  in
  let p = Imp.Parser.program_of_string src in
  Fmt.pr "  derived pairs: %a@."
    Fmt.(list ~sep:comma (pair ~sep:(any "~") string string))
    (Imp.Proc.param_aliases p "f");
  let once = Imp.Proc.standalone p "f" in
  let compiled =
    compile (Dflow.Driver.Schema3 (Dflow.Driver.Singleton, Dflow.Engine.Barrier)) once
  in
  List.iter
    (fun args ->
      let inst = Imp.Proc.instantiate p "f" args in
      let layout = Imp.Layout.of_program inst in
      let expected = Imp.Eval.run_program inst in
      let r =
        Machine.Interp.run_exn
          { Machine.Interp.graph = compiled.Dflow.Driver.graph; layout }
      in
      Fmt.pr "  f(%-7s) one graph, this layout: %s (%d cycles)@."
        (String.concat "," args)
        (if Imp.Memory.equal expected r.Machine.Interp.memory then "ok"
         else "WRONG")
        r.Machine.Interp.cycles;
      assert (Imp.Memory.equal expected r.Machine.Interp.memory))
    (Imp.Proc.call_sites p "f");
  (* the Schema 2 counterexample *)
  let src2 =
    {| proc g(gx, gz)
         gx := ((((7 * 3) + 2) * 5) + 1) * 9
         b := gz
       end
       call g(a, a) |}
  in
  let p2 = Imp.Parser.program_of_string src2 in
  let once2 = { (Imp.Proc.standalone p2 "g") with Imp.Ast.may_alias = [] } in
  let wrong = compile (Dflow.Driver.Schema2 Dflow.Engine.Barrier) once2 in
  let inst2 = Imp.Proc.instantiate p2 "g" [ "a"; "a" ] in
  let layout2 = Imp.Layout.of_program inst2 in
  let expected2 = Imp.Eval.run_program inst2 in
  (match
     Machine.Interp.run
       { Machine.Interp.graph = wrong.Dflow.Driver.graph; layout = layout2 }
   with
  | r ->
      Fmt.pr "  schema2 on hidden aliasing: %s@."
        (if
           r.Machine.Interp.completed
           && Imp.Memory.equal expected2 r.Machine.Interp.memory
         then "accidentally right (unsound anyway)"
         else "wrong store, as the paper predicts")
  | exception Machine.Interp.Token_collision _ ->
      Fmt.pr "  schema2 on hidden aliasing: token collision@.")

(* ===================================================================== *)
(* E17 -- kernel suite: every example program under the main pipeline    *)

let e17 () =
  section "E17" "Kernel suite: all example programs, all main configurations";
  claim
    "across the whole kernel suite the ordering schema1 >= schema2-pipelined      >= schema2-opt-pipelined >= +section-6 holds for cycle counts, and      every configuration reproduces the sequential store";
  Fmt.pr "  %-28s %8s %8s %8s %8s %9s@." "kernel" "s1" "s2p" "s2op"
    "s2p+sec6" "speedup";
  List.iter
    (fun (name, mk) ->
      let p = mk () in
      if not (Analysis.Alias.has_aliasing (Analysis.Alias.of_program p)) then
        match compile s1 p with
        | exception Cfg.Intervals.Irreducible _ ->
            Fmt.pr "  %-28s (irreducible)@." name
        | c1 -> (
            match
              ( execute c1,
                execute (compile s2p p),
                execute (compile s2op p),
                execute
                  (compile
                     ~transforms:
                       { Dflow.Driver.no_transforms with
                         Dflow.Driver.value_passing = true;
                         parallel_reads = true;
                         array_parallel = true }
                     s2p p) )
            with
            | r1, r2, ro, rs ->
                check_reference p rs;
                Fmt.pr "  %-28s %8d %8d %8d %8d %8.1fx@." name
                  r1.Machine.Interp.cycles r2.Machine.Interp.cycles
                  ro.Machine.Interp.cycles rs.Machine.Interp.cycles
                  (float_of_int r1.Machine.Interp.cycles
                  /. float_of_int rs.Machine.Interp.cycles)
            | exception Cfg.Intervals.Irreducible _ ->
                Fmt.pr "  %-28s (irreducible)@." name))
    Imp.Factory.all

(* ===================================================================== *)
(* E18 -- optimizing on the dataflow IR                                  *)

let e18 () =
  section "E18" "The dataflow graph as an optimizing-compiler IR";
  claim
    "classical optimizations (constant folding, CSE, dead-node      elimination) run directly on the dataflow graph and reduce executed      operations without touching the memory-ordering structure -- the      paper's closing thesis about executable intermediate      representations";
  Fmt.pr "  %-24s %9s %9s %9s %9s@." "kernel" "ops" "ops(-O)" "cycles"
    "cycles(-O)";
  let extra =
    [
      ( "polynomial (redundant)",
        fun () ->
          Imp.Parser.program_of_string
            {| y := (x*x*x + 2*x*x + 7) * (x*x + 1) + (x*x*x + 2*x*x + 7) |} );
      ( "address arithmetic",
        fun () ->
          Imp.Parser.program_of_string
            {| array a[16]
               r := a[i * 4 + j] + a[i * 4 + j + 1] + a[i * 4 + j + 4] |} );
      ( "constant expressions",
        fun () ->
          Imp.Parser.program_of_string
            "x := 2 * 3 + 4 * 5 y := 2 * 3 - 1 z := x + 2 * 3" );
    ]
  in
  List.iter
    (fun (name, mk) ->
      let p = mk () in
      if not (Analysis.Alias.has_aliasing (Analysis.Alias.of_program p)) then
        match compile s2op p with
        | exception Cfg.Intervals.Irreducible _ -> ()
        | c ->
            let g = c.Dflow.Driver.graph in
            let g' = Dfg.Opt.run (Dfg.Simplify.run g) in
            Dfg.Check.check g';
            let run graph =
              Machine.Interp.run_exn
                { Machine.Interp.graph = graph; layout = c.Dflow.Driver.layout }
            in
            let r = run g and r' = run g' in
            check_reference p r';
            Fmt.pr "  %-24s %9d %9d %9d %9d@." name r.Machine.Interp.firings
              r'.Machine.Interp.firings r.Machine.Interp.cycles
              r'.Machine.Interp.cycles)
    (extra @ Imp.Factory.all)

(* ===================================================================== *)
(* Timing micro-benchmarks (bechamel)                                    *)

let bechamel_benches () =
  section "TIMING" "compiler-pass timings (bechamel, OLS ns/run)";
  let open Bechamel in
  let prog k =
    let body =
      String.concat "\n"
        (List.init k (fun i ->
             Fmt.str
               "c%d := 0 while c%d < 4 do if v%d < 5 then v%d := v%d + 1 end \
                c%d := c%d + 1 end"
               i i i i i i i))
    in
    Imp.Parser.program_of_string body
  in
  let p16 = prog 16 in
  let g16 = Cfg.Builder.of_program p16 in
  let lp16 = Cfg.Loopify.transform g16 in
  let vars16 = Imp.Ast.program_vars p16 in
  let src16 = Imp.Pretty.program_to_string p16 in
  let c16 = compile s2ob p16 in
  let tests =
    Test.make_grouped ~name:"passes"
      [
        Test.make ~name:"parse (16 loops)"
          (Staged.stage (fun () -> ignore (Imp.Parser.program_of_string src16)));
        Test.make ~name:"cfg build"
          (Staged.stage (fun () -> ignore (Cfg.Builder.of_program p16)));
        Test.make ~name:"interval analysis + loopify"
          (Staged.stage (fun () -> ignore (Cfg.Loopify.transform g16)));
        Test.make ~name:"postdominators"
          (Staged.stage (fun () -> ignore (Analysis.Dom.postdominators_of g16)));
        Test.make ~name:"switch placement (fig 10)"
          (Staged.stage (fun () ->
               ignore (Analysis.Switch_place.compute g16 ~vars:vars16)));
        Test.make ~name:"schema2 translation"
          (Staged.stage (fun () ->
               ignore (Dflow.Engine.schema2 lp16 ~vars:vars16)));
        Test.make ~name:"schema2-opt translation (fig 11)"
          (Staged.stage (fun () ->
               ignore (Dflow.Optimized.translate lp16 ~vars:vars16)));
        Test.make ~name:"ssa construction"
          (Staged.stage (fun () -> ignore (Ssa.Construct.construct g16)));
        Test.make ~name:"machine execution (schema2-opt)"
          (Staged.stage (fun () ->
               ignore
                 (Machine.Interp.run
                    {
                      Machine.Interp.graph = c16.Dflow.Driver.graph;
                      layout = c16.Dflow.Driver.layout;
                    })));
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Fmt.pr "  %-48s %12.0f ns/run@." name est
      | _ -> Fmt.pr "  %-48s (no estimate)@." name)
    rows

(* ===================================================================== *)
(* E20 -- BENCH_machine.json: the program x schema machine matrix        *)

(* The five columns of the matrix.  "schema2-opt" runs pipelined: it is
   the best sound no-aliasing configuration, which is what the Section 4
   optimization is for; "value-passing" adds the Section 6.1 transform on
   top of it, the configuration with the fewest memory round trips. *)
let bench_schemas =
  [
    ("schema1", s1, Dflow.Driver.no_transforms);
    ("schema2-barrier", s2b, Dflow.Driver.no_transforms);
    ("schema2-pipelined", s2p, Dflow.Driver.no_transforms);
    ("schema2-opt", s2op, Dflow.Driver.no_transforms);
    ( "value-passing",
      s2op,
      { Dflow.Driver.no_transforms with Dflow.Driver.value_passing = true } );
  ]

(* The scalability sweep (E21) runs on the schemas whose token supply can
   actually feed multiple PEs -- the barrier variant serialises loop
   iterations by construction, so sweeping it would only restate E6. *)
let mp_schemas = [ "schema1"; "schema2-pipelined"; "schema2-opt"; "value-passing" ]
let mp_pe_counts = [ 1; 2; 4; 8; 16 ]
let mp_placements = [ Machine.Placement.Hash; Machine.Placement.Affinity ]

(* The scaling sweep (E26) extends the same PE axis to hundreds of PEs
   -- one list, shared with E21 and the cross-matrix sweep above, so the
   two experiments can never drift apart on the common prefix. *)
let scale_pe_counts = mp_pe_counts @ [ 32; 64; 128; 256 ]
let scale_schema = "schema2-opt"
let scale_program = "stencil"

(* (net, placement, steal): the seed's uniform wire with the
   structure-blind hash as the baseline, then the full scaling stack --
   mesh interconnect + hierarchical placement -- with stealing isolated
   as its own curve. *)
let scale_configs =
  [
    ("uniform", Machine.Placement.Hash, false);
    ("mesh", Machine.Placement.Hier, false);
    ("mesh", Machine.Placement.Hier, true);
  ]

let scale_sweep ~reference (c : Dflow.Driver.compiled) =
  let prog =
    { Machine.Interp.graph = c.Dflow.Driver.graph; layout = c.Dflow.Driver.layout }
  in
  let tree = c.Dflow.Driver.ltree in
  List.concat_map
    (fun (net_name, placement, steal) ->
      let kind =
        match Sched.Topology.kind_of_string net_name with
        | Ok k -> k
        | Error msg -> failwith msg
      in
      let base = ref 0 in
      List.map
        (fun pes ->
          let topo =
            match kind with
            | Sched.Topology.Uniform -> None
            | k -> Some (Sched.Topology.make k ~pes)
          in
          let steal_spec = if steal then Some Sched.Steal.default else None in
          let r =
            Machine.Multiproc.run_exn ~tree ?topo ?steal:steal_spec ~placement
              ~pes prog
          in
          let det =
            r.Machine.Multiproc.completed
            && r.Machine.Multiproc.leftover_tokens = 0
            && Imp.Memory.equal reference r.Machine.Multiproc.memory
          in
          if pes = 1 then base := r.Machine.Multiproc.cycles;
          let cycles = r.Machine.Multiproc.cycles in
          {
            Machine.Profile.sc_pes = pes;
            sc_net = net_name;
            sc_placement = Machine.Placement.policy_to_string placement;
            sc_steal = steal;
            sc_cycles = cycles;
            sc_firings = r.Machine.Multiproc.firings;
            sc_fpc =
              float_of_int r.Machine.Multiproc.firings
              /. float_of_int (max 1 cycles);
            sc_speedup = float_of_int !base /. float_of_int (max 1 cycles);
            sc_net_messages = r.Machine.Multiproc.net_messages;
            sc_net_hops = r.Machine.Multiproc.net_hops;
            sc_steals = r.Machine.Multiproc.steals;
            sc_determinate = det;
          })
        scale_pe_counts)
    scale_configs

(* CI floor: the full scaling stack must buy real throughput -- stencil
   under schema2-opt at p=64 on the mesh (hier placement, stealing on)
   must beat the p=16 uniform-wire baseline on firings per cycle. *)
let scale_floor_hi = (64, "mesh", "hier", true)
let scale_floor_lo = (16, "uniform", "hash", false)

let bench_random_seeds = [ 11; 23; 47 ]

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let find_programs_dir () =
  List.find_opt Sys.file_exists
    [
      "examples/programs";
      "../examples/programs";
      "../../examples/programs";
      "../../../examples/programs";
    ]

(* The multiprocessor sweep for one compiled cell: every PE count x
   placement on the default network, each run differentially checked
   against the reference store.  [note] receives every cell for the
   cross-matrix summary scalars. *)
let mp_sweep ~note ~reference (c : Dflow.Driver.compiled) =
  let prog =
    { Machine.Interp.graph = c.Dflow.Driver.graph; layout = c.Dflow.Driver.layout }
  in
  List.concat_map
    (fun placement ->
      List.map
        (fun pes ->
          let cell =
            match Machine.Multiproc.run ~placement ~pes prog with
            | Ok r ->
                let det =
                  r.Machine.Multiproc.completed
                  && r.Machine.Multiproc.leftover_tokens = 0
                  && Imp.Memory.equal reference r.Machine.Multiproc.memory
                in
                let util = r.Machine.Multiproc.utilisation in
                {
                  Machine.Profile.mp_pes = pes;
                  mp_placement = Machine.Placement.policy_to_string placement;
                  mp_cycles = r.Machine.Multiproc.cycles;
                  mp_net_messages = r.Machine.Multiproc.net_messages;
                  mp_cut_traffic = r.Machine.Multiproc.cut_traffic;
                  mp_backpressure = r.Machine.Multiproc.backpressure;
                  mp_avg_utilisation =
                    (if Array.length util = 0 then 0.0
                     else
                       Array.fold_left ( +. ) 0.0 util
                       /. float_of_int (Array.length util));
                  mp_determinate = det;
                }
            | Error _ ->
                {
                  Machine.Profile.mp_pes = pes;
                  mp_placement = Machine.Placement.policy_to_string placement;
                  mp_cycles = 0;
                  mp_net_messages = 0;
                  mp_cut_traffic = 0.0;
                  mp_backpressure = 0;
                  mp_avg_utilisation = 0.0;
                  mp_determinate = false;
                }
          in
          note cell;
          cell)
        mp_pe_counts)
    mp_placements

(* The fault-tolerance sweep (E22): the best sound configuration
   (schema2-opt) at p=4 under seeded link faults and one seeded PE
   fail-stop, recovered by reliable transport + checkpoint/replay,
   across a range of checkpoint intervals.  The cost is measured
   against the fault-free run of the same cell.  Seed 7 matches the
   golden snapshots, so the death schedule is the audited one. *)
let recovery_intervals = [ 10; 25; 50; 100 ]
let recovery_fault_seed = 7
let recovery_schema = "schema2-opt"

(* CI ceiling: the stencil kernel must survive one PE death plus link
   faults at the default checkpoint cadence for under a quarter of the
   fault-free makespan (measured: ~3%; the margin absorbs placement or
   transport tuning, not a rollback livelock). *)
let recovery_overhead_ceiling = 0.25
let recovery_ceiling_interval = 25

let recovery_sweep ~note ~reference (c : Dflow.Driver.compiled) =
  let prog =
    { Machine.Interp.graph = c.Dflow.Driver.graph; layout = c.Dflow.Driver.layout }
  in
  let pes = 4 and placement = Machine.Placement.Affinity in
  let baseline = Machine.Multiproc.run_exn ~placement ~pes prog in
  let base = baseline.Machine.Multiproc.cycles in
  List.map
    (fun interval ->
      let faults =
        Machine.Fault.make
          (Machine.Fault.spec ~rate:0.01 ~classes:Machine.Fault.link_classes
             ~seed:recovery_fault_seed ())
      in
      let recovery =
        Machine.Recovery.spec ~interval
          ~deaths:
            (Machine.Recovery.seeded_deaths ~seed:recovery_fault_seed ~pes
               ~window:60)
          ()
      in
      let cell =
        match Machine.Multiproc.run ~placement ~pes ~faults ~recovery prog with
        | Ok r ->
            let recovered =
              r.Machine.Multiproc.completed
              && r.Machine.Multiproc.leftover_tokens = 0
              && Imp.Memory.equal reference r.Machine.Multiproc.memory
            in
            let m =
              match r.Machine.Multiproc.recovery with
              | Some m -> m
              | None -> Machine.Recovery.metrics_create ()
            in
            {
              Machine.Profile.rc_pes = pes;
              rc_placement = Machine.Placement.policy_to_string placement;
              rc_interval = interval;
              rc_cycles = r.Machine.Multiproc.cycles;
              rc_baseline_cycles = base;
              rc_overhead =
                (float_of_int r.Machine.Multiproc.cycles
                /. float_of_int (max 1 base))
                -. 1.0;
              rc_deaths = m.Machine.Recovery.m_deaths;
              rc_rollbacks = m.Machine.Recovery.m_rollbacks;
              rc_checkpoints = m.Machine.Recovery.m_checkpoints;
              rc_lost_cycles = m.Machine.Recovery.m_lost_cycles;
              rc_replayed_firings = m.Machine.Recovery.m_replayed_firings;
              rc_retransmits =
                (match r.Machine.Multiproc.transport with
                | Some s -> s.Machine.Network.r_retransmits
                | None -> 0);
              rc_recovered = recovered;
            }
        | Error _ ->
            {
              Machine.Profile.rc_pes = pes;
              rc_placement = Machine.Placement.policy_to_string placement;
              rc_interval = interval;
              rc_cycles = 0;
              rc_baseline_cycles = base;
              rc_overhead = 0.0;
              rc_deaths = 0;
              rc_rollbacks = 0;
              rc_checkpoints = 0;
              rc_lost_cycles = 0;
              rc_replayed_firings = 0;
              rc_retransmits = 0;
              rc_recovered = false;
            }
      in
      note cell;
      cell)
    recovery_intervals

(* The certificate-overhead sweep (E23): every certified cell runs
   twice per PE count — fractional-permission certificate attached,
   then stripped — and records the cycle ratio.  Certification is pure
   bookkeeping on token payloads, invisible to the scheduler, so the
   measured overhead is exactly 0.0; the cells keep that claim audited
   instead of asserted, and the CI ceiling below catches any future
   change that couples certification into timing. *)
let certificate_pe_counts = [ 1; 4 ]
let certificate_overhead_ceiling = 0.15
let certificate_ceiling_pes = 4

let certificate_sweep ~note (c : Dflow.Driver.compiled) =
  let g = c.Dflow.Driver.graph in
  match g.Dfg.Graph.cert with
  | None -> None (* uncertified translation: nothing to measure *)
  | Some saved ->
      let prog = { Machine.Interp.graph = g; layout = c.Dflow.Driver.layout } in
      let run_at pes =
        if pes = 1 then
          let r = Machine.Interp.run prog in
          ( r.Machine.Interp.cycles,
            r.Machine.Interp.completed,
            r.Machine.Interp.diagnosis )
        else
          match
            Machine.Multiproc.run ~placement:Machine.Placement.Affinity ~pes
              prog
          with
          | Ok r ->
              ( r.Machine.Multiproc.cycles,
                r.Machine.Multiproc.completed,
                r.Machine.Multiproc.diagnosis )
          | Error d -> (0, false, d)
      in
      let cells =
        List.map
          (fun pes ->
            let cycles, completed, diag = run_at pes in
            Dfg.Graph.set_cert g None;
            let stripped, _, _ = run_at pes in
            Dfg.Graph.set_cert g (Some saved);
            let elements, checks =
              match diag.Machine.Diagnosis.certified with
              | Some ec -> ec
              | None -> (0, 0)
            in
            let cell =
              {
                Machine.Profile.cc_pes = pes;
                cc_elements = elements;
                cc_checks = checks;
                cc_cycles = cycles;
                cc_stripped_cycles = stripped;
                cc_overhead =
                  (float_of_int cycles /. float_of_int (max 1 stripped)) -. 1.0;
                cc_clean =
                  completed && diag.Machine.Diagnosis.permission = [];
              }
            in
            note cell;
            cell)
          certificate_pe_counts
      in
      Some cells

(* The engine-throughput sweep (E24): the same compiled graph executed
   end to end under the reference interpreter and the packed engine, in
   service mode (sanitizer off, certificate stripped — identically for
   both engines), timed best-of-N wall clock.  The differential bar
   stays up: the packed run must reproduce the reference engine's final
   store and firing count bit for bit, or the cell fails validation.
   The CI floor below holds the packed engine to >= 10x on the stencil
   kernel — the whole point of compiling the graph to flat arrays. *)
let throughput_schema = "schema2-opt"
let throughput_floor = 10.0
let throughput_runs_reference = 40
let throughput_runs_packed = 200

(* The batch-service sweep (E25): the whole example-program oracle grid
   submitted as one batch of per-combo selfcheck jobs through the
   [df_compile serve] protocol, executed on a warm memoization cache at
   jobs = 1 and jobs = [service_jobs_parallel].  The CI floors: the two
   outputs must be byte-identical (the deterministic-pool guarantee),
   every job must succeed, the warm-cache hit rate must stay above 1/2,
   the multi-domain run must be at least 2x the serial one, and the
   batch must sustain a conservative jobs/sec rate (set well below the
   measured figure so only a real serialization regression trips it). *)
let service_jobs_parallel = 4
let service_speedup_floor = 2.0
let service_hit_rate_floor = 0.5
let service_jobs_per_sec_floor = 5.0

(* The availability sweep (E27): a fixed batch of compile-and-run jobs
   pushed serially through the supervised shard pool at several chaos
   rates.  Everything recorded is a deterministic function of the chaos
   plan — a pure hash of (seed, submission number, payload) — so the
   cells carry no timings and are byte-stable across machines.  The
   serial pass computing the expected reply bytes runs FIRST: it warms
   the memoization cache, which forked shards inherit, keeping per-job
   cost orders of magnitude under the deadline so the outcome counts
   cannot depend on machine speed.  CI floors: at the committed
   operating point (rate 0.05, 4 shards) availability stays >= 0.9 and
   at least one shard restart is actually observed (the supervisor was
   really exercised, not idling through a fault-free plan); at rate 0
   every job succeeds; and at every rate each successful reply is
   byte-identical to the serial path — one divergence fails the
   document. *)
let availability_chaos_seed = 7
let availability_shards = 4
let availability_deadline_ms = 1000
let availability_jobs = 160
let availability_rates = [ 0.0; 0.05; 0.1 ]
let availability_floor_rate = 0.05
let availability_success_floor = 0.9

(* distinct sources so memoization cannot collapse the batch to one
   compile, and an explicit id so the serial and sharded paths stamp
   replies identically *)
let availability_job i =
  Machine.Json.to_string
    (Machine.Json.Assoc
       [
         ("id", Machine.Json.Int i);
         ("op", Machine.Json.String "run");
         ( "source",
           Machine.Json.String
             (Fmt.str "x := %d y := x + %d z := y * y" i (1 + (i mod 7))) );
         ("schema", Machine.Json.String "2opt");
       ])

let availability_sweep () =
  let lines = List.init availability_jobs availability_job in
  let expected =
    Array.of_list
      (List.mapi
         (fun i l -> Machine.Json.to_string (Serve.Server.handle_line i l))
         lines)
  in
  List.map
    (fun rate ->
      let chaos =
        if rate > 0.0 then
          Some
            {
              Service.Supervisor.c_seed = availability_chaos_seed;
              c_rate = rate;
              c_stall_ms = (2 * availability_deadline_ms) + 500;
            }
        else None
      in
      let sup =
        Service.Supervisor.start
          ~config:
            {
              Service.Supervisor.default_config with
              shards = availability_shards;
              deadline_ms = availability_deadline_ms;
              chaos;
            }
          (fun id line ->
            Machine.Json.to_string (Serve.Server.handle_line id line))
      in
      let ok = ref 0 and crash = ref 0 and dead = ref 0 and over = ref 0 in
      let divergences = ref 0 in
      List.iteri
        (fun i line ->
          match Service.Supervisor.submit sup ~id:i line with
          | Service.Supervisor.Ok_line l ->
              incr ok;
              if l <> expected.(i) then incr divergences
          | Service.Supervisor.Shard_crash -> incr crash
          | Service.Supervisor.Deadline -> incr dead
          | Service.Supervisor.Overloaded | Service.Supervisor.Draining ->
              incr over)
        lines;
      let stats = Service.Supervisor.stats sup in
      Service.Supervisor.drain sup;
      {
        Machine.Profile.av_chaos_rate = rate;
        av_shards = availability_shards;
        av_deadline_ms = availability_deadline_ms;
        av_jobs = availability_jobs;
        av_ok = !ok;
        av_shard_crash = !crash;
        av_deadline = !dead;
        av_overloaded = !over;
        av_restarts = stats.Service.Supervisor.s_restarts;
        av_divergences = !divergences;
        av_success_rate = float_of_int !ok /. float_of_int availability_jobs;
      })
    availability_rates

(* Shared by the JSON path and the standalone E27 printer, so the two
   can never disagree about what counts as a failed sweep.  Raises
   [Failure] on a floor violation. *)
let availability_check (cells : Machine.Profile.availability_cell list) =
  List.iter
    (fun (c : Machine.Profile.availability_cell) ->
      if c.Machine.Profile.av_divergences > 0 then
        failwith
          (Fmt.str
             "E27: %d successful replies DIVERGED from the serial path at \
              chaos rate %.2f"
             c.Machine.Profile.av_divergences c.Machine.Profile.av_chaos_rate))
    cells;
  (match
     List.find_opt
       (fun (c : Machine.Profile.availability_cell) ->
         c.Machine.Profile.av_chaos_rate = availability_floor_rate)
       cells
   with
  | None -> failwith "E27: the committed operating-point cell is missing"
  | Some c ->
      if c.Machine.Profile.av_success_rate < availability_success_floor then
        failwith
          (Fmt.str
             "E27: success rate %.3f below the floor %.2f at chaos rate %.2f \
              with %d shards"
             c.Machine.Profile.av_success_rate availability_success_floor
             availability_floor_rate availability_shards);
      if c.Machine.Profile.av_restarts <= 0 then
        failwith
          (Fmt.str
             "E27: no shard restarts observed at chaos rate %.2f — the \
              supervisor was never exercised"
             availability_floor_rate));
  match
    List.find_opt
      (fun (c : Machine.Profile.availability_cell) ->
        c.Machine.Profile.av_chaos_rate = 0.0)
      cells
  with
  | Some c when c.Machine.Profile.av_ok <> c.Machine.Profile.av_jobs ->
      failwith
        (Fmt.str "E27: %d of %d fault-free jobs failed"
           (c.Machine.Profile.av_jobs - c.Machine.Profile.av_ok)
           c.Machine.Profile.av_jobs)
  | _ -> ()

(* best-of-N: the minimum observed wall time is the least-noise estimate
   of the true cost (noise is strictly additive) *)
let time_best ~runs f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to runs do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let throughput_sweep ~note (c : Dflow.Driver.compiled) =
  let g = c.Dflow.Driver.graph in
  let layout = c.Dflow.Driver.layout in
  let saved = g.Dfg.Graph.cert in
  Dfg.Graph.set_cert g None;
  let prog = { Machine.Interp.graph = g; layout } in
  let rref = Machine.Interp.run_exn prog in
  let code = Machine.Packed.compile_graph g in
  let cells =
    match Machine.Packed.run_report ~sanitize:false ~layout code with
    | Error _ ->
        [
          {
            Machine.Profile.tp_engine = "packed";
            tp_firings = 0;
            tp_runs = 0;
            tp_seconds = 0.0;
            tp_firings_per_sec = 0.0;
            tp_speedup = 0.0;
            tp_identical = false;
          };
        ]
    | Ok rpk ->
        let identical =
          rpk.Machine.Packed.completed
          && rpk.Machine.Packed.firings = rref.Machine.Interp.firings
          && Imp.Memory.equal rref.Machine.Interp.memory
               rpk.Machine.Packed.memory
        in
        let t_ref =
          time_best ~runs:throughput_runs_reference (fun () ->
              Machine.Interp.run_exn prog)
        in
        let t_pk =
          time_best ~runs:throughput_runs_packed (fun () ->
              Machine.Packed.run_report ~sanitize:false ~layout code)
        in
        let cell engine firings secs speedup identical =
          {
            Machine.Profile.tp_engine = engine;
            tp_firings = firings;
            tp_runs =
              (if engine = "packed" then throughput_runs_packed
               else throughput_runs_reference);
            tp_seconds = secs;
            tp_firings_per_sec = float_of_int firings /. secs;
            tp_speedup = speedup;
            tp_identical = identical;
          }
        in
        [
          cell "reference" rref.Machine.Interp.firings t_ref 1.0 true;
          cell "packed" rpk.Machine.Packed.firings t_pk (t_ref /. t_pk)
            identical;
        ]
  in
  Dfg.Graph.set_cert g saved;
  List.iter note cells;
  cells

(* One cell: compile, run traced, check against the reference
   interpreter.  Cells a schema cannot express are real results — the
   record says why instead of vanishing from the matrix. *)
let bench_cell ?mp_note ?recovery_note ?cert_note ?tp_note ~program:(pname, p)
    ~schema:(sname, spec, transforms) () =
  match compile ~transforms spec p with
  | exception Cfg.Intervals.Irreducible _ ->
      ( Machine.Profile.bench_record ~program:pname ~schema:sname
          ~status:"irreducible" (),
        None )
  | exception Dflow.Driver.Aliasing_unsupported _ ->
      ( Machine.Profile.bench_record ~program:pname ~schema:sname
          ~status:"unsupported-aliasing" (),
        None )
  | c ->
      let tracer = Machine.Trace.create () in
      let r =
        Machine.Interp.run ~on_fire:(Machine.Trace.on_fire tracer)
          {
            Machine.Interp.graph = c.Dflow.Driver.graph;
            layout = c.Dflow.Driver.layout;
          }
      in
      if not r.Machine.Interp.completed then
        ( Machine.Profile.bench_record ~program:pname ~schema:sname
            ~status:"stalled" (),
          None )
      else
        let reference = Imp.Eval.run_program ~fuel:10_000_000 p in
        let ok = Imp.Memory.equal reference r.Machine.Interp.memory in
        let stats = Dfg.Stats.of_graph c.Dflow.Driver.graph in
        let multiproc =
          match mp_note with
          | Some note when List.mem sname mp_schemas ->
              Some (mp_sweep ~note ~reference c)
          | _ -> None
        in
        let recovery =
          match recovery_note with
          | Some note when sname = recovery_schema ->
              Some (recovery_sweep ~note ~reference c)
          | _ -> None
        in
        let certificate =
          match cert_note with
          | Some note -> certificate_sweep ~note c
          | None -> None
        in
        let throughput =
          match tp_note with
          | Some note when sname = throughput_schema ->
              Some (throughput_sweep ~note c)
          | _ -> None
        in
        ( Machine.Profile.bench_record ~program:pname ~schema:sname ~status:"ok"
            ~stats ~result:r ~reference_ok:ok
            ~max_overlap:(Machine.Trace.max_context_overlap tracer) ?multiproc
            ?recovery ?certificate ?throughput (),
          Some (ok, Machine.Interp.avg_parallelism r) )

let bench_json ~out ~programs_dir () =
  let dir =
    match programs_dir with Some d -> Some d | None -> find_programs_dir ()
  in
  let examples =
    match dir with
    | None ->
        Fmt.epr
          "bench: cannot find examples/programs from %s (pass --programs DIR)@."
          (Sys.getcwd ());
        exit 2
    | Some d ->
        Sys.readdir d |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".imp")
        |> List.sort compare
        |> List.map (fun f ->
               ( Filename.chop_extension f,
                 Imp.Parser.program_of_string (read_file (Filename.concat d f))
               ))
  in
  let randoms =
    List.map
      (fun seed ->
        ( Fmt.str "random-%03d" seed,
          Workloads.Random_gen.structured (Random.State.make [| seed |]) ))
      bench_random_seeds
  in
  let programs = examples @ randoms in
  let example_names = List.map fst examples in
  let divergences = ref [] in
  let avg_par = Hashtbl.create 16 in
  (* (program, schema, placement, pes) -> (cycles, net messages); the
     feed for the summary scalars and the scalability floors *)
  let mp_table = Hashtbl.create 64 in
  let mp_diverged = ref false in
  (* (program, checkpoint interval) -> recovery cell; the feed for the
     E22 overhead ceiling *)
  let recovery_table = Hashtbl.create 16 in
  let recovery_failed = ref false in
  (* (program, schema, pes) -> certificate cell; the feed for the E23
     overhead ceiling *)
  let cert_table = Hashtbl.create 64 in
  let cert_failed = ref false in
  (* program -> packed throughput cell; the feed for the E24 speedup
     floor *)
  let tp_table = Hashtbl.create 16 in
  let tp_failed = ref false in
  let records =
    List.concat_map
      (fun ((pname, _) as program) ->
        List.map
          (fun ((sname, _, _) as schema) ->
            let mp_note =
              if List.mem pname example_names then
                Some
                  (fun (c : Machine.Profile.mp_cell) ->
                    if not c.Machine.Profile.mp_determinate then begin
                      mp_diverged := true;
                      Fmt.epr
                        "bench: %s under %s DIVERGED on the multiprocessor \
                         (%s, p=%d)@."
                        pname sname c.Machine.Profile.mp_placement
                        c.Machine.Profile.mp_pes
                    end;
                    Hashtbl.replace mp_table
                      ( pname,
                        sname,
                        c.Machine.Profile.mp_placement,
                        c.Machine.Profile.mp_pes )
                      ( c.Machine.Profile.mp_cycles,
                        c.Machine.Profile.mp_net_messages ))
              else None
            in
            let recovery_note =
              if List.mem pname example_names then
                Some
                  (fun (c : Machine.Profile.recovery_cell) ->
                    if not c.Machine.Profile.rc_recovered then begin
                      recovery_failed := true;
                      Fmt.epr
                        "bench: %s under %s FAILED to recover (checkpoint \
                         interval %d)@."
                        pname sname c.Machine.Profile.rc_interval
                    end;
                    Hashtbl.replace recovery_table
                      (pname, c.Machine.Profile.rc_interval)
                      c)
              else None
            in
            let cert_note =
              if List.mem pname example_names then
                Some
                  (fun (c : Machine.Profile.certificate_cell) ->
                    if not c.Machine.Profile.cc_clean then begin
                      cert_failed := true;
                      Fmt.epr
                        "bench: %s under %s certificate VIOLATED at p=%d@."
                        pname sname c.Machine.Profile.cc_pes
                    end;
                    Hashtbl.replace cert_table
                      (pname, sname, c.Machine.Profile.cc_pes)
                      c)
              else None
            in
            let tp_note =
              if List.mem pname example_names then
                Some
                  (fun (c : Machine.Profile.throughput_cell) ->
                    if not c.Machine.Profile.tp_identical then begin
                      tp_failed := true;
                      Fmt.epr
                        "bench: %s under %s engine %s DIVERGED from the \
                         reference engine@."
                        pname sname c.Machine.Profile.tp_engine
                    end;
                    if c.Machine.Profile.tp_engine = "packed" then
                      Hashtbl.replace tp_table pname c)
              else None
            in
            let record, dyn =
              bench_cell ?mp_note ?recovery_note ?cert_note ?tp_note ~program
                ~schema ()
            in
            (match dyn with
            | Some (ok, par) ->
                if not ok then divergences := (pname, sname) :: !divergences;
                Hashtbl.replace avg_par (pname, sname) par
            | None -> ());
            record)
          bench_schemas)
      programs
  in
  (* summary scalars over the whole matrix *)
  let best_cycles pname sname pes =
    List.filter_map
      (fun pl ->
        let pl = Machine.Placement.policy_to_string pl in
        Option.map fst (Hashtbl.find_opt mp_table (pname, sname, pl, pes)))
      mp_placements
    |> function
    | [] -> None
    | l -> Some (List.fold_left min max_int l)
  in
  let speedup_p8 =
    List.fold_left
      (fun acc pname ->
        List.fold_left
          (fun acc sname ->
            match (best_cycles pname sname 1, best_cycles pname sname 8) with
            | Some c1, Some c8 when c8 > 0 ->
                max acc (float_of_int c1 /. float_of_int c8)
            | _ -> acc)
          acc mp_schemas)
      0.0 example_names
  in
  let sum_messages placement =
    let pl = Machine.Placement.policy_to_string placement in
    Hashtbl.fold
      (fun (_, _, p, pes) (_, msgs) acc ->
        if p = pl && pes = 4 then acc + msgs else acc)
      mp_table 0
  in
  let hash_msgs = sum_messages Machine.Placement.Hash in
  let affinity_msgs = sum_messages Machine.Placement.Affinity in
  let cut_traffic_ratio =
    float_of_int affinity_msgs /. float_of_int (max 1 hash_msgs)
  in
  let summary =
    [
      ("speedup_p8", Machine.Json.Float speedup_p8);
      ("cut_traffic_ratio", Machine.Json.Float cut_traffic_ratio);
      ("multiproc_determinate", Machine.Json.Bool (not !mp_diverged));
    ]
  in
  (* the batch-service sweep (E25): one serve-protocol job per
     (example program, oracle combo), the grid the `selfcheck` command
     walks — first a warm pass to fill the memoization cache, then the
     identical batch timed at jobs = 1 and jobs = service_jobs_parallel
     on the warm cache.  Byte-equality of the two outputs is the
     determinism claim; the counter delta across the timed runs is the
     warm hit rate. *)
  (* the availability sweep (E27) forks worker shards, and the OCaml 5
     runtime refuses Unix.fork once any domain has ever been spawned —
     so it runs here, BEFORE the timed batches below bring up their
     Pool domains *)
  let availability_cells = availability_sweep () in
  let service_batch =
    List.concat_map
      (fun (_, p) ->
        let src = Imp.Pretty.program_to_string p in
        List.map
          (fun (c : Dflow.Oracle.combo) ->
            Machine.Json.to_string
              (Machine.Json.Assoc
                 [
                   ("op", Machine.Json.String "selfcheck-combo");
                   ("source", Machine.Json.String src);
                   ("combo", Machine.Json.String c.Dflow.Oracle.c_name);
                 ]))
          (Dflow.Oracle.combos_for p))
      examples
  in
  let service_n = List.length service_batch in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  ignore
    (Serve.Server.run_batch ~jobs:service_jobs_parallel service_batch);
  let cache_before = Dflow.Memo.stats () in
  let out1, secs1 =
    timed (fun () -> Serve.Server.run_batch ~jobs:1 service_batch)
  in
  let outp, secsp =
    timed (fun () ->
        Serve.Server.run_batch ~jobs:service_jobs_parallel service_batch)
  in
  let cache_delta =
    Service.Cache.diff ~after:(Dflow.Memo.stats ()) ~before:cache_before
  in
  let service_deterministic = out1 = outp in
  let service_clean =
    List.for_all
      (fun line ->
        match Machine.Json.member "ok" (Machine.Json.of_string line) with
        | Some (Machine.Json.Bool true) -> true
        | _ -> false)
      out1
  in
  let service_hit_rate = Service.Cache.hit_rate cache_delta in
  let service_speedup = secs1 /. secsp in
  let service_cells =
    List.map Machine.Profile.service_cell_json
      [
        {
          Machine.Profile.sv_jobs = 1;
          sv_batch = service_n;
          sv_seconds = secs1;
          sv_jobs_per_sec = float_of_int service_n /. secs1;
          sv_speedup = 1.0;
        };
        {
          Machine.Profile.sv_jobs = service_jobs_parallel;
          sv_batch = service_n;
          sv_seconds = secsp;
          sv_jobs_per_sec = float_of_int service_n /. secsp;
          sv_speedup = service_speedup;
        };
      ]
  in
  let service =
    [
      ("batch", Machine.Json.Int service_n);
      ("cache_hits", Machine.Json.Int cache_delta.Service.Cache.hits);
      ("cache_misses", Machine.Json.Int cache_delta.Service.Cache.misses);
      ("cache_evictions", Machine.Json.Int cache_delta.Service.Cache.evictions);
      ("hit_rate", Machine.Json.Float service_hit_rate);
      ("deterministic", Machine.Json.Bool service_deterministic);
      ("cells", Machine.Json.List service_cells);
      ( "availability",
        Machine.Json.Assoc
          [
            ("chaos_seed", Machine.Json.Int availability_chaos_seed);
            ( "cells",
              Machine.Json.List
                (List.map Machine.Profile.availability_cell_json
                   availability_cells) );
          ] );
    ]
  in
  (* the scaling sweep (E26): the scale program under the scale schema
     across the extended PE axis, uniform-wire baseline vs the mesh +
     hierarchical placement stack, stealing as its own curve *)
  let scale_cells =
    let p = List.assoc scale_program examples in
    let reference = Imp.Eval.run_program ~fuel:10_000_000 p in
    scale_sweep ~reference (compile s2op p)
  in
  let scale_determinate =
    List.for_all
      (fun (c : Machine.Profile.scale_cell) -> c.Machine.Profile.sc_determinate)
      scale_cells
  in
  let scale_fpc (pes, net, placement, steal) =
    List.find_opt
      (fun (c : Machine.Profile.scale_cell) ->
        c.Machine.Profile.sc_pes = pes
        && c.Machine.Profile.sc_net = net
        && c.Machine.Profile.sc_placement = placement
        && c.Machine.Profile.sc_steal = steal)
      scale_cells
    |> Option.map (fun (c : Machine.Profile.scale_cell) ->
           c.Machine.Profile.sc_fpc)
  in
  let scale =
    [
      ("program", Machine.Json.String scale_program);
      ("schema", Machine.Json.String scale_schema);
      ( "max_pes",
        Machine.Json.Int (List.fold_left max 1 scale_pe_counts) );
      ( "fpc_floor_lo",
        Machine.Json.Float
          (Option.value ~default:0.0 (scale_fpc scale_floor_lo)) );
      ( "fpc_floor_hi",
        Machine.Json.Float
          (Option.value ~default:0.0 (scale_fpc scale_floor_hi)) );
      ("determinate", Machine.Json.Bool scale_determinate);
      ( "cells",
        Machine.Json.List
          (List.map Machine.Profile.scale_cell_json scale_cells) );
    ]
  in
  let text =
    Machine.Json.to_string_pretty
      (Machine.Profile.bench_file ~summary ~service ~scale ~records ())
  in
  List.iter
    (fun (pname, sname) ->
      Fmt.epr "bench: %s under %s DIVERGED from the reference interpreter@."
        pname sname)
    !divergences;
  (* self-check: re-parse the exact text we are about to write and
     validate it against the shared schema (divergence is a validation
     error too, so CI fails on either) *)
  (match Machine.Profile.validate_bench (Machine.Json.of_string text) with
  | Ok () -> ()
  | Error msg ->
      Fmt.epr "bench: generated document failed validation: %s@." msg;
      exit 1);
  (* the headline claim of the paper's Section 5: pipelined loop control
     buys real parallelism over the single access token *)
  (match
     ( Hashtbl.find_opt avg_par ("stencil", "schema2-pipelined"),
       Hashtbl.find_opt avg_par ("stencil", "schema1") )
   with
  | Some p2, Some p1 when p2 > p1 ->
      Fmt.pr "stencil avg parallelism: schema2-pipelined %.2f > schema1 %.2f@."
        p2 p1
  | Some p2, Some p1 ->
      Fmt.epr
        "bench: expected schema2-pipelined to beat schema1 on stencil \
         (%.2f vs %.2f)@."
        p2 p1;
      exit 1
  | _ -> Fmt.epr "bench: warning: no stencil rows in this matrix@.");
  (* the scalability floors of E21: optimized loop control must keep
     scaling on the stencil where the single access token flattens, and
     the affinity placement must not generate more cross-PE traffic than
     the hash baseline *)
  (match (best_cycles "stencil" "schema2-opt" 4, best_cycles "stencil" "schema2-opt" 1)
   with
  | Some c4, Some c1 when c4 < c1 ->
      Fmt.pr "stencil schema2-opt: p=4 %d cycles < p=1 %d cycles (%.2fx)@." c4
        c1
        (float_of_int c1 /. float_of_int c4)
  | Some c4, Some c1 ->
      Fmt.epr
        "bench: stencil under schema2-opt failed to speed up at p=4 \
         (%d cycles vs %d at p=1)@."
        c4 c1;
      exit 1
  | _ -> Fmt.epr "bench: warning: no stencil multiproc cells in this matrix@.");
  if affinity_msgs > hash_msgs then begin
    Fmt.epr
      "bench: affinity placement produced MORE cross-PE traffic than hash \
       at p=4 (%d vs %d messages)@."
      affinity_msgs hash_msgs;
    exit 1
  end
  else
    Fmt.pr "cut traffic at p=4: affinity %d messages vs hash %d (ratio %.2f)@."
      affinity_msgs hash_msgs cut_traffic_ratio;
  if !mp_diverged then begin
    Fmt.epr "bench: multiprocessor determinacy divergence (see above)@.";
    exit 1
  end;
  (* the fault-tolerance floors of E22: every seeded faulty run must
     have recovered the reference store, and the stencil's recovery
     overhead at the default checkpoint cadence stays under the ceiling *)
  if !recovery_failed then begin
    Fmt.epr "bench: fault-tolerance sweep failed to recover (see above)@.";
    exit 1
  end;
  (match
     Hashtbl.find_opt recovery_table ("stencil", recovery_ceiling_interval)
   with
  | Some c ->
      let ov = c.Machine.Profile.rc_overhead in
      if ov > recovery_overhead_ceiling then begin
        Fmt.epr
          "bench: stencil recovery overhead %.2f exceeds the ceiling %.2f \
           (checkpoint interval %d)@."
          ov recovery_overhead_ceiling recovery_ceiling_interval;
        exit 1
      end
      else
        Fmt.pr
          "stencil recovery overhead at interval %d: %.2f of the fault-free \
           makespan (ceiling %.2f; %d death(s), %d rollback(s))@."
          recovery_ceiling_interval ov recovery_overhead_ceiling
          c.Machine.Profile.rc_deaths c.Machine.Profile.rc_rollbacks
  | None -> Fmt.epr "bench: warning: no stencil recovery cells in this matrix@.");
  (* the certificate floors of E23: every certified example run — at
     p=1 and p=4, under every certified schema — must carry a clean
     certificate, and attaching it must not cost cycles on the stencil
     at p=4 (measured: exactly 0; the ceiling tolerates 15% so only a
     real coupling of certification into scheduling trips it) *)
  if !cert_failed then begin
    Fmt.epr "bench: certificate sweep found standing violations (see above)@.";
    exit 1
  end;
  (match
     Hashtbl.find_opt cert_table
       ("stencil", recovery_schema, certificate_ceiling_pes)
   with
  | Some c ->
      let ov = c.Machine.Profile.cc_overhead in
      if ov > certificate_overhead_ceiling then begin
        Fmt.epr
          "bench: stencil certificate overhead %.2f exceeds the ceiling %.2f \
           at p=%d@."
          ov certificate_overhead_ceiling certificate_ceiling_pes;
        exit 1
      end
      else
        Fmt.pr
          "stencil certificate overhead at p=%d: %.2f (ceiling %.2f; %d \
           cover elements, %d ownership checks)@."
          certificate_ceiling_pes ov certificate_overhead_ceiling
          c.Machine.Profile.cc_elements c.Machine.Profile.cc_checks
  | None ->
      Fmt.epr "bench: warning: no stencil certificate cells in this matrix@.");
  (* the throughput floor of E24: the packed engine must be worth its
     complexity — at least 10x the reference interpreter's wall clock on
     the stencil kernel, with a bit-identical final store *)
  if !tp_failed then begin
    Fmt.epr "bench: engine throughput sweep diverged (see above)@.";
    exit 1
  end;
  (match Hashtbl.find_opt tp_table "stencil" with
  | Some c ->
      let sp = c.Machine.Profile.tp_speedup in
      if sp < throughput_floor then begin
        Fmt.epr
          "bench: packed engine only %.1fx the reference on stencil \
           (floor %.1fx)@."
          sp throughput_floor;
        exit 1
      end
      else
        Fmt.pr
          "stencil packed throughput: %.2e firings/sec, %.1fx the reference \
           engine (floor %.1fx)@."
          c.Machine.Profile.tp_firings_per_sec sp throughput_floor
  | None ->
      Fmt.epr "bench: warning: no stencil throughput cells in this matrix@.");
  (* the batch-service floors of E25: byte-identical output at any jobs
     setting, every job a success, a warm cache that actually hits, a
     real parallel speedup, and a sane absolute rate *)
  if not service_deterministic then begin
    Fmt.epr
      "bench: serve batch output DIFFERS between --jobs 1 and --jobs %d@."
      service_jobs_parallel;
    exit 1
  end;
  if not service_clean then begin
    Fmt.epr "bench: serve batch contains failing jobs (see the output)@.";
    exit 1
  end;
  if service_hit_rate < service_hit_rate_floor then begin
    Fmt.epr
      "bench: warm-cache hit rate %.2f below the floor %.2f (%d hits, %d \
       misses)@."
      service_hit_rate service_hit_rate_floor cache_delta.Service.Cache.hits
      cache_delta.Service.Cache.misses;
    exit 1
  end;
  (* the speedup floor needs hardware to speed up on: with fewer cores
     than the parallel cell uses, extra domains are pure overhead, so
     the floor is only enforced where it is physically meaningful
     (CI runners qualify; the measured figure is recorded either way) *)
  let service_can_scale =
    Service.Pool.default_jobs () >= service_jobs_parallel
  in
  if service_can_scale && service_speedup < service_speedup_floor then begin
    Fmt.epr
      "bench: serve batch at --jobs %d only %.2fx over --jobs 1 (floor \
       %.1fx; %.3fs vs %.3fs for %d jobs)@."
      service_jobs_parallel service_speedup service_speedup_floor secsp secs1
      service_n;
    exit 1
  end;
  if not service_can_scale then
    Fmt.epr
      "bench: warning: only %d core(s) available; serve speedup floor not \
       enforced (measured %.2fx at --jobs %d)@."
      (Service.Pool.default_jobs ())
      service_speedup service_jobs_parallel;
  let service_rate = float_of_int service_n /. min secs1 secsp in
  if service_rate < service_jobs_per_sec_floor then begin
    Fmt.epr
      "bench: serve batch sustained only %.1f jobs/sec (floor %.1f)@."
      service_rate service_jobs_per_sec_floor;
    exit 1
  end;
  Fmt.pr
    "serve batch: %d jobs, %.2fx at --jobs %d (floor %.1fx when >= %d \
     cores), %.1f jobs/sec (floor %.1f), warm hit rate %.2f (floor %.2f), \
     byte-identical output@."
    service_n service_speedup service_jobs_parallel service_speedup_floor
    service_jobs_parallel service_rate service_jobs_per_sec_floor
    service_hit_rate service_hit_rate_floor;
  (* the availability floors of E27: >= 0.9 success at the committed
     operating point with restarts actually observed, a clean fault-free
     cell, and zero divergences among successful replies *)
  (try availability_check availability_cells
   with Failure msg ->
     Fmt.epr "bench: %s@." msg;
     exit 1);
  (match
     List.find_opt
       (fun (c : Machine.Profile.availability_cell) ->
         c.Machine.Profile.av_chaos_rate = availability_floor_rate)
       availability_cells
   with
  | Some c ->
      Fmt.pr
        "availability at chaos %.2f: %.3f (floor %.2f; %d ok, %d crash, %d \
         deadline of %d jobs, %d restart(s), 0 divergences)@."
        availability_floor_rate c.Machine.Profile.av_success_rate
        availability_success_floor c.Machine.Profile.av_ok
        c.Machine.Profile.av_shard_crash c.Machine.Profile.av_deadline
        c.Machine.Profile.av_jobs c.Machine.Profile.av_restarts
  | None -> ());
  (* the scaling floors of E26: every topology/stealing cell must have
     reproduced the reference store, and the full scaling stack must buy
     real throughput over the baseline wire *)
  if not scale_determinate then begin
    Fmt.epr "bench: scaling sweep perturbed the store (see the cells)@.";
    exit 1
  end;
  (let pes_hi, net_hi, pl_hi, _ = scale_floor_hi
   and pes_lo, net_lo, pl_lo, _ = scale_floor_lo in
   match (scale_fpc scale_floor_hi, scale_fpc scale_floor_lo) with
   | Some hi, Some lo when hi > lo ->
       Fmt.pr
         "%s %s scaling: p=%d %s/%s+steal %.2f firings/cycle > p=%d %s/%s \
          %.2f@."
         scale_program scale_schema pes_hi net_hi pl_hi hi pes_lo net_lo pl_lo
         lo
   | Some hi, Some lo ->
       Fmt.epr
         "bench: %s at p=%d %s/%s+steal only %.2f firings/cycle, not above \
          the p=%d %s/%s baseline %.2f@."
         scale_program pes_hi net_hi pl_hi hi pes_lo net_lo pl_lo lo;
       exit 1
   | _ -> Fmt.epr "bench: warning: scaling floor cells missing@.");
  let oc = open_out out in
  output_string oc text;
  close_out oc;
  Fmt.pr
    "wrote %s: %d records (%d programs x %d schemas; multiproc sweep on %d \
     examples x %d schemas x p in {%s}; recovery sweep on %s at p=4 x \
     intervals {%s}; certificate sweep on every certified example cell x \
     p in {%s}; serve batch of %d combo jobs at jobs in {1,%d}; scaling \
     sweep on %s x %d configs x p up to %d; availability sweep of %d jobs \
     x chaos in {%s})@."
    out (List.length records) (List.length programs)
    (List.length bench_schemas) (List.length examples)
    (List.length mp_schemas)
    (String.concat "," (List.map string_of_int mp_pe_counts))
    recovery_schema
    (String.concat "," (List.map string_of_int recovery_intervals))
    (String.concat "," (List.map string_of_int certificate_pe_counts))
    service_n service_jobs_parallel scale_program
    (List.length scale_configs)
    (List.fold_left max 1 scale_pe_counts)
    availability_jobs
    (String.concat "," (List.map (Fmt.str "%.2f") availability_rates))

(* ===================================================================== *)
(* E21 -- multiprocessor scalability                                     *)

let e21 () =
  section "E21" "Multiprocessor scalability: schema x placement x PE count";
  claim
    "on the multi-PE machine the optimized loop control (schema 2-opt) and \
     value passing keep scaling with PE count where schema 1's single \
     access token flattens, and the affinity placement cuts cross-PE \
     traffic versus the hash baseline -- the fine-grain multiprocessor \
     argument the ETS design is for";
  match find_programs_dir () with
  | None -> Fmt.epr "  (skipped: examples/programs not found)@."
  | Some dir ->
      let p =
        Imp.Parser.program_of_string
          (read_file (Filename.concat dir "stencil.imp"))
      in
      let reference = Imp.Eval.run_program ~fuel:10_000_000 p in
      let pes_list = mp_pe_counts in
      Fmt.pr "  stencil, affinity placement, default network@.";
      Fmt.pr "  %-18s %8s %8s %8s %8s %8s %10s@." "schema" "p=1" "p=2" "p=4"
        "p=8" "p=16" "speedup@8";
      List.iter
        (fun (sname, spec, transforms) ->
          if List.mem sname mp_schemas then
            match compile ~transforms spec p with
            | exception Cfg.Intervals.Irreducible _
            | exception Dflow.Driver.Aliasing_unsupported _ ->
                Fmt.pr "  %-18s (not expressible)@." sname
            | c ->
                let prog =
                  {
                    Machine.Interp.graph = c.Dflow.Driver.graph;
                    layout = c.Dflow.Driver.layout;
                  }
                in
                let cycles =
                  List.map
                    (fun pes ->
                      let r =
                        Machine.Multiproc.run_exn
                          ~placement:Machine.Placement.Affinity ~pes prog
                      in
                      if
                        not
                          (Imp.Memory.equal reference r.Machine.Multiproc.memory)
                      then failwith "E21: multiprocessor store diverged!";
                      r.Machine.Multiproc.cycles)
                    pes_list
                in
                let c1 = List.nth cycles 0 and c8 = List.nth cycles 3 in
                Fmt.pr "  %-18s %8d %8d %8d %8d %8d %9.2fx@." sname
                  (List.nth cycles 0) (List.nth cycles 1) (List.nth cycles 2)
                  (List.nth cycles 3) (List.nth cycles 4)
                  (float_of_int c1 /. float_of_int (max 1 c8)))
        bench_schemas;
      Fmt.pr "@.  placement quality at p=4 (stencil, schema2-opt)@.";
      Fmt.pr "  %-12s %9s %9s %12s %12s@." "placement" "cut-arcs" "messages"
        "cut-traffic" "backpressure";
      let c = compile s2op p in
      let prog =
        {
          Machine.Interp.graph = c.Dflow.Driver.graph;
          layout = c.Dflow.Driver.layout;
        }
      in
      List.iter
        (fun placement ->
          let r = Machine.Multiproc.run_exn ~placement ~pes:4 prog in
          if not (Imp.Memory.equal reference r.Machine.Multiproc.memory) then
            failwith "E21: multiprocessor store diverged!";
          let st = r.Machine.Multiproc.placement_stats in
          Fmt.pr "  %-12s %9d %9d %11.1f%% %12d@."
            (Machine.Placement.policy_to_string placement)
            st.Machine.Placement.cut_arcs r.Machine.Multiproc.net_messages
            (100.0 *. r.Machine.Multiproc.cut_traffic)
            r.Machine.Multiproc.backpressure)
        [ Machine.Placement.Hash; Machine.Placement.Round_robin;
          Machine.Placement.Affinity ]

(* ===================================================================== *)
(* E22 -- fault tolerance: recovery overhead vs checkpoint interval      *)

let e22 () =
  section "E22" "Fault tolerance: recovery cost vs checkpoint cadence";
  claim
    "under seeded link faults and one PE fail-stop the machine recovers \
     the exact reference store (determinacy makes replay safe); the \
     makespan overhead trades checkpoint frequency against replay \
     distance -- tight intervals lose little progress per rollback, \
     loose ones checkpoint rarely but replay more";
  match find_programs_dir () with
  | None -> Fmt.epr "  (skipped: examples/programs not found)@."
  | Some dir ->
      let p =
        Imp.Parser.program_of_string
          (read_file (Filename.concat dir "stencil.imp"))
      in
      let reference = Imp.Eval.run_program ~fuel:10_000_000 p in
      let c = compile s2op p in
      Fmt.pr "  stencil, schema2-opt, p=4 affinity, seed %d (rate 0.01 link \
              faults + 1 fail-stop)@." recovery_fault_seed;
      Fmt.pr "  %-10s %8s %9s %8s %6s %6s %6s %8s %8s %6s@." "interval"
        "cycles" "overhead" "ckpts" "death" "rollbk" "lost" "replayed"
        "retrans" "store";
      let cells =
        recovery_sweep ~note:(fun _ -> ()) ~reference c
      in
      List.iter
        (fun (cell : Machine.Profile.recovery_cell) ->
          Fmt.pr "  %-10d %8d %8.1f%% %8d %6d %6d %6d %8d %8d %6s@."
            cell.Machine.Profile.rc_interval cell.Machine.Profile.rc_cycles
            (100.0 *. cell.Machine.Profile.rc_overhead)
            cell.Machine.Profile.rc_checkpoints
            cell.Machine.Profile.rc_deaths cell.Machine.Profile.rc_rollbacks
            cell.Machine.Profile.rc_lost_cycles
            cell.Machine.Profile.rc_replayed_firings
            cell.Machine.Profile.rc_retransmits
            (if cell.Machine.Profile.rc_recovered then "ok" else "WRONG"))
        cells;
      (match cells with
      | first :: _ ->
          Fmt.pr "  fault-free baseline: %d cycles@."
            first.Machine.Profile.rc_baseline_cycles
      | [] -> ());
      if
        List.exists
          (fun (c : Machine.Profile.recovery_cell) ->
            not c.Machine.Profile.rc_recovered)
          cells
      then failwith "E22: a faulty run failed to recover the reference store!";
      (* the other axis: fault rate at the default checkpoint cadence *)
      let prog =
        {
          Machine.Interp.graph = c.Dflow.Driver.graph;
          layout = c.Dflow.Driver.layout;
        }
      in
      let pes = 4 and placement = Machine.Placement.Affinity in
      let base =
        (Machine.Multiproc.run_exn ~placement ~pes prog).Machine.Multiproc.cycles
      in
      Fmt.pr "@.  fault-rate sweep at checkpoint interval %d:@."
        recovery_ceiling_interval;
      Fmt.pr "  %-10s %8s %9s %10s %8s %6s@." "rate" "cycles" "overhead"
        "wire-flts" "retrans" "store";
      List.iter
        (fun rate ->
          let faults =
            Machine.Fault.make
              (Machine.Fault.spec ~rate ~classes:Machine.Fault.link_classes
                 ~seed:recovery_fault_seed ())
          in
          let recovery =
            Machine.Recovery.spec ~interval:recovery_ceiling_interval
              ~deaths:
                (Machine.Recovery.seeded_deaths ~seed:recovery_fault_seed ~pes
                   ~window:60)
              ()
          in
          match Machine.Multiproc.run ~placement ~pes ~faults ~recovery prog with
          | Ok r ->
              let recovered =
                r.Machine.Multiproc.completed
                && r.Machine.Multiproc.leftover_tokens = 0
                && Imp.Memory.equal reference r.Machine.Multiproc.memory
              in
              let wire, retrans =
                match r.Machine.Multiproc.transport with
                | Some s ->
                    (s.Machine.Network.r_wire_faults,
                     s.Machine.Network.r_retransmits)
                | None -> (0, 0)
              in
              if not recovered then
                failwith "E22: a faulty run failed to recover!";
              Fmt.pr "  %-10.3f %8d %8.1f%% %10d %8d %6s@." rate
                r.Machine.Multiproc.cycles
                (100.0
                *. ((float_of_int r.Machine.Multiproc.cycles
                    /. float_of_int (max 1 base))
                   -. 1.0))
                wire retrans "ok"
          | Error d ->
              Fmt.epr "  rate %.3f: hard failure:@.%a@." rate
                Machine.Diagnosis.pp d;
              failwith "E22: a faulty run failed hard")
        [ 0.0; 0.005; 0.01; 0.02; 0.05 ]

(* ===================================================================== *)

(* ===================================================================== *)
(* E26 -- scaling to hundreds of PEs                                     *)

let e26 () =
  section "E26"
    "Scaling to hundreds of PEs: topology x hierarchical placement x \
     stealing";
  claim
    "with a per-hop interconnect cost the structure-blind baseline stops \
     scaling once messages cross the whole machine; carving the PE grid \
     along the program's loop hierarchy keeps traffic inside contiguous \
     sub-grids, and work stealing re-fills PEs the static placement left \
     idle -- all without perturbing a single store bit (the determinacy \
     argument is placement-independent)";
  match find_programs_dir () with
  | None -> Fmt.epr "  (skipped: examples/programs not found)@."
  | Some dir ->
      let p =
        Imp.Parser.program_of_string
          (read_file (Filename.concat dir (scale_program ^ ".imp")))
      in
      let reference = Imp.Eval.run_program ~fuel:10_000_000 p in
      let cells = scale_sweep ~reference (compile s2op p) in
      List.iter
        (fun (net_name, placement, steal) ->
          Fmt.pr "@.  %s, %s, %s placement, %s network%s@." scale_program
            scale_schema
            (Machine.Placement.policy_to_string placement)
            net_name
            (if steal then ", stealing on" else "");
          Fmt.pr "  %6s %8s %8s %9s %9s %9s %8s %7s %6s@." "pes" "cycles"
            "fir/cyc" "speedup" "messages" "hops" "avg-dist" "steals" "store";
          List.iter
            (fun (c : Machine.Profile.scale_cell) ->
              if
                c.Machine.Profile.sc_net = net_name
                && c.Machine.Profile.sc_placement
                   = Machine.Placement.policy_to_string placement
                && c.Machine.Profile.sc_steal = steal
              then
                Fmt.pr "  %6d %8d %8.2f %8.2fx %9d %9d %8.2f %7d %6s@."
                  c.Machine.Profile.sc_pes c.Machine.Profile.sc_cycles
                  c.Machine.Profile.sc_fpc c.Machine.Profile.sc_speedup
                  c.Machine.Profile.sc_net_messages
                  c.Machine.Profile.sc_net_hops
                  (float_of_int c.Machine.Profile.sc_net_hops
                  /. float_of_int (max 1 c.Machine.Profile.sc_net_messages))
                  c.Machine.Profile.sc_steals
                  (if c.Machine.Profile.sc_determinate then "ok" else "WRONG"))
            cells)
        scale_configs;
      if
        List.exists
          (fun (c : Machine.Profile.scale_cell) ->
            not c.Machine.Profile.sc_determinate)
          cells
      then failwith "E26: a scaled run perturbed the store!";
      let fpc (pes, net, placement, steal) =
        List.find_opt
          (fun (c : Machine.Profile.scale_cell) ->
            c.Machine.Profile.sc_pes = pes
            && c.Machine.Profile.sc_net = net
            && c.Machine.Profile.sc_placement = placement
            && c.Machine.Profile.sc_steal = steal)
          cells
        |> Option.map (fun (c : Machine.Profile.scale_cell) ->
               c.Machine.Profile.sc_fpc)
      in
      match (fpc scale_floor_hi, fpc scale_floor_lo) with
      | Some hi, Some lo when hi > lo ->
          Fmt.pr
            "@.  floor: p=64 mesh/hier+steal %.2f firings/cycle > p=16 \
             uniform/hash %.2f@."
            hi lo
      | Some hi, Some lo ->
          failwith
            (Fmt.str "E26: scaling floor failed (%.2f not above %.2f)" hi lo)
      | _ -> failwith "E26: scaling floor cells missing"

(* ===================================================================== *)
(* E27 -- availability under chaos                                        *)

let e27 () =
  section "E27"
    "Availability under chaos: supervised shards x seeded fault rate";
  claim
    "a compile job that crashes, stalls, or truncates takes down one \
     worker shard, never the service: the supervisor converts every fault \
     into a structured per-job error, respawns the shard under capped \
     backoff, and -- because execution is determinate -- every reply that \
     does come back is byte-identical to the serial fault-free path, at \
     any chaos rate";
  let cells = availability_sweep () in
  Fmt.pr "@.  %d jobs, %d shards, %dms deadline, chaos seed %d@."
    availability_jobs availability_shards availability_deadline_ms
    availability_chaos_seed;
  Fmt.pr "  %6s %6s %6s %9s %7s %9s %9s %8s@." "chaos" "ok" "crash" "deadline"
    "restart" "diverged" "success" "floor";
  List.iter
    (fun (c : Machine.Profile.availability_cell) ->
      Fmt.pr "  %6.2f %6d %6d %9d %7d %9d %8.3f %8s@."
        c.Machine.Profile.av_chaos_rate c.Machine.Profile.av_ok
        c.Machine.Profile.av_shard_crash c.Machine.Profile.av_deadline
        c.Machine.Profile.av_restarts c.Machine.Profile.av_divergences
        c.Machine.Profile.av_success_rate
        (if c.Machine.Profile.av_chaos_rate = availability_floor_rate then
           Fmt.str ">=%.2f" availability_success_floor
         else "-"))
    cells;
  availability_check cells;
  Fmt.pr
    "@.  floor: %.3f success at chaos %.2f (>= %.2f), restarts observed, \
     zero divergences@."
    (List.find
       (fun (c : Machine.Profile.availability_cell) ->
         c.Machine.Profile.av_chaos_rate = availability_floor_rate)
       cells)
      .Machine.Profile.av_success_rate availability_floor_rate
    availability_success_floor

let experiments =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("E17", e17); ("E18", e18); ("E21", e21); ("E22", e22); ("E26", e26);
    ("E27", e27);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec split_opt key acc = function
    | [] -> (None, List.rev acc)
    | k :: v :: rest when k = key -> (Some v, List.rev_append acc rest)
    | a :: rest -> split_opt key (a :: acc) rest
  in
  let json_out, args = split_opt "--json" [] args in
  match json_out with
  | Some out ->
      let programs_dir, args = split_opt "--programs" [] args in
      if args <> [] then begin
        Fmt.epr "bench: unexpected arguments with --json: %a@."
          Fmt.(list ~sep:sp string)
          args;
        exit 2
      end;
      bench_json ~out ~programs_dir ()
  | None ->
  if List.mem "--json" args then begin
    Fmt.epr "bench: --json needs an output path (e.g. --json BENCH_machine.json)@.";
    exit 2
  end;
  let quick = List.mem "quick" args in
  let selected = List.filter (fun a -> a <> "quick") args in
  let to_run =
    if selected = [] then experiments
    else List.filter (fun (id, _) -> List.mem id selected) experiments
  in
  List.iter (fun (_, f) -> f ()) to_run;
  if (not quick) && selected = [] then bechamel_benches ();
  Fmt.pr
    "@.all experiments completed; every executed store was checked against \
     the reference interpreter.@."
