(* Engine throughput (E24): end-to-end wall clock of the packed engine
   against the reference interpreter, per example program, measured with
   bechamel's OLS estimator (ns/run regressed over batched runs, which
   is far more robust than a stopwatch around a single execution).

   Both engines run in service mode — sanitizer off, certificate
   stripped — on the same compiled graph, so the comparison isolates the
   execution core.  Before timing anything the two engines are run once
   and their final stores compared: a divergence aborts the benchmark,
   because a fast wrong engine is not a result.

   Usage: dune exec bench/throughput.exe [-- --programs DIR] [--floor X]
   With [--floor X] the exit status enforces the CI claim: the packed
   engine must reach at least [X]x the reference on the stencil. *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let find_programs_dir () =
  List.find_opt Sys.file_exists
    [
      "examples/programs";
      "../examples/programs";
      "../../examples/programs";
      "../../../examples/programs";
    ]

let ols_ns tests =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Analyze.all ols instance raw

let () =
  let argv = Array.to_list Sys.argv in
  let programs_dir =
    let rec scan = function
      | "--programs" :: d :: _ -> Some d
      | _ :: rest -> scan rest
      | [] -> None
    in
    match scan argv with Some d -> Some d | None -> find_programs_dir ()
  in
  let floor_req =
    let rec scan = function
      | "--floor" :: x :: _ -> Some (float_of_string x)
      | _ :: rest -> scan rest
      | [] -> None
    in
    scan argv
  in
  let stencil_speedup = ref None in
  let dir =
    match programs_dir with
    | Some d -> d
    | None ->
        Fmt.epr
          "throughput: cannot find examples/programs from %s (pass \
           --programs DIR)@."
          (Sys.getcwd ());
        exit 2
  in
  let examples =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".imp")
    |> List.sort compare
    |> List.map (fun f ->
           ( Filename.chop_extension f,
             Imp.Parser.program_of_string (read_file (Filename.concat dir f))
           ))
  in
  Fmt.pr "== engine throughput (schema2-opt pipelined, service mode) ==@.";
  Fmt.pr "  %-12s %8s %14s %14s %16s %9s@." "program" "firings" "reference"
    "packed" "firings/sec" "speedup";
  List.iter
    (fun (pname, p) ->
      match
        Dflow.Driver.compile (Dflow.Driver.Schema2_opt Dflow.Engine.Pipelined)
          p
      with
      | exception Cfg.Intervals.Irreducible _ ->
          Fmt.pr "  %-12s (irreducible)@." pname
      | exception Dflow.Driver.Aliasing_unsupported _ ->
          Fmt.pr "  %-12s (aliasing: schema2-opt not applicable)@." pname
      | c ->
          let g = c.Dflow.Driver.graph in
          let layout = c.Dflow.Driver.layout in
          Dfg.Graph.set_cert g None;
          let prog = { Machine.Interp.graph = g; layout } in
          let rref = Machine.Interp.run_exn prog in
          let code = Machine.Packed.compile_graph g in
          let rpk =
            match Machine.Packed.run_report ~sanitize:false ~layout code with
            | Ok r -> r
            | Error d ->
                Fmt.epr "throughput: %s packed run failed:@.%a@." pname
                  Machine.Diagnosis.pp d;
                exit 1
          in
          if
            not
              (rpk.Machine.Packed.completed
              && rpk.Machine.Packed.firings = rref.Machine.Interp.firings
              && Imp.Memory.equal rref.Machine.Interp.memory
                   rpk.Machine.Packed.memory)
          then begin
            Fmt.epr
              "throughput: %s DIVERGED between engines — refusing to time a \
               wrong answer@."
              pname;
            exit 1
          end;
          let open Bechamel in
          let tests =
            Test.make_grouped ~name:pname
              [
                Test.make ~name:"reference"
                  (Staged.stage (fun () ->
                       ignore (Machine.Interp.run_exn prog)));
                Test.make ~name:"packed"
                  (Staged.stage (fun () ->
                       ignore
                         (Machine.Packed.run_report ~sanitize:false ~layout
                            code)));
              ]
          in
          let results = ols_ns tests in
          let est name =
            match Hashtbl.find_opt results (pname ^ "/" ^ name) with
            | Some o -> (
                match Analyze.OLS.estimates o with
                | Some [ e ] -> Some e
                | _ -> None)
            | None -> None
          in
          (match (est "reference", est "packed") with
          | Some tr, Some tp when tp > 0.0 ->
              let firings = rpk.Machine.Packed.firings in
              if pname = "stencil" then stencil_speedup := Some (tr /. tp);
              Fmt.pr "  %-12s %8d %11.0f ns %11.0f ns %16.3e %8.1fx@." pname
                firings tr tp
                (float_of_int firings /. (tp *. 1e-9))
                (tr /. tp)
          | _ -> Fmt.pr "  %-12s (no estimate)@." pname))
    examples;
  match floor_req with
  | None -> ()
  | Some floor -> (
      match !stencil_speedup with
      | Some sp when sp >= floor ->
          Fmt.pr "floor: stencil packed speedup %.1fx >= %.1fx@." sp floor
      | Some sp ->
          Fmt.epr "throughput: stencil packed speedup %.1fx BELOW the floor                    %.1fx@." sp floor;
          exit 1
      | None ->
          Fmt.epr "throughput: no stencil estimate — cannot check the floor@.";
          exit 1)
