(* df_compile: command-line front end to the control-flow -> dataflow
   translation pipeline.

   Subcommands:
     run      compile a program and execute it on the dataflow machine
     dot      emit DOT renderings of the CFG / loopified CFG / DFG / PDG
     analyze  print the analyses: loops, alias classes, switch placement
     compare  execute every schema and tabulate the metrics *)

open Cmdliner

(* --- shared argument parsing ---------------------------------------- *)

let read_program path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  Imp.Parser.program_of_string src

(* schema names are shared with the serve protocol's "schema" field *)
let spec_of_string = Serve.Server.spec_of_string

let schema_conv : Dflow.Driver.spec Arg.conv =
  let parse s = match spec_of_string s with Ok v -> `Ok v | Error e -> `Error e in
  ( (fun s -> parse s),
    fun ppf spec -> Fmt.string ppf (Dflow.Driver.spec_to_string spec) )

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"IMP source file")

let schema_arg =
  Arg.(
    value
    & opt schema_conv (Dflow.Driver.Schema2_opt Dflow.Engine.Barrier)
    & info [ "s"; "schema" ] ~docv:"SCHEMA"
        ~doc:
          "Translation schema: 1, 2, 2p, 2opt, 2optp, 3, 3s, 3c, fig8 \
           (schema 2 without loop control), or 3bad (schema 3 with \
           truncated access sets).")

let transforms_arg =
  Arg.(
    value & opt (list string) []
    & info [ "t"; "transforms" ] ~docv:"LIST"
        ~doc:
          "Section 6 transformations: any of value, reads, arrays, \
           istructures (comma separated).")

let transforms_of_list l =
  List.fold_left
    (fun acc s ->
      match s with
      | "value" -> { acc with Dflow.Driver.value_passing = true }
      | "reads" -> { acc with Dflow.Driver.parallel_reads = true }
      | "arrays" -> { acc with Dflow.Driver.array_parallel = true }
      | "istructures" -> { acc with Dflow.Driver.istructure = true }
      | other -> Fmt.failwith "unknown transform %S" other)
    Dflow.Driver.no_transforms l

let pes_arg =
  Arg.(
    value & opt (some int) None
    & info [ "p"; "pes" ] ~docv:"N"
        ~doc:"Number of processing elements (default: unbounded).")

let mem_latency_arg =
  Arg.(
    value & opt int 4
    & info [ "mem-latency" ] ~docv:"CYCLES"
        ~doc:"Split-phase memory latency in cycles.")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "O"; "optimize" ]
        ~doc:
          "Run the graph-level optimizer (constant folding, CSE, dead-node            elimination) and the Id-splicing simplifier on the dataflow            graph.")

let maybe_optimize opt g = if opt then Dfg.Opt.run (Dfg.Simplify.run g) else g

let config_of pes mem_latency =
  {
    Machine.Config.default with
    Machine.Config.pes;
    latencies = { Machine.Config.default_latencies with memory = mem_latency };
  }

let no_certify_arg =
  Arg.(
    value & flag
    & info [ "no-certify" ]
        ~doc:
          "Strip the fractional-permission certificate before executing: \
           no per-run translation validation, no certificate line in the \
           output, and certificate violations cannot fail the run.")

let certificate_line (d : Machine.Diagnosis.t) =
  match d.Machine.Diagnosis.certified with
  | None -> "none (uncertified translation)"
  | Some (elements, checks) ->
      if d.Machine.Diagnosis.permission = [] then
        Fmt.str "ok (%d element%s, %d ownership checks)" elements
          (if elements = 1 then "" else "s")
        checks
      else
        Fmt.str "VIOLATED (%d standing violation%s)"
          (List.length d.Machine.Diagnosis.permission)
          (if List.length d.Machine.Diagnosis.permission = 1 then "" else "s")

(* --- run ------------------------------------------------------------- *)

let fault_seed_arg =
  Arg.(
    value & opt (some int) None
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:
          "Inject a deterministic fault plan derived from SEED at the \
           machine's delivery and memory-issue boundaries; the diagnosis \
           reports every injection.")

let fault_rate_arg =
  Arg.(
    value & opt float 0.01
    & info [ "fault-rate" ] ~docv:"P"
        ~doc:"Per-event fault injection probability (with --fault-seed).")

let fault_classes_arg =
  Arg.(
    value & opt string "all"
    & info [ "fault-classes" ] ~docv:"LIST"
        ~doc:
          "Fault classes to draw from: any of drop, dup, flip, delay, \
           stall, reorder, or all (comma separated).")

let engine_arg =
  Arg.(
    value & opt string "reference"
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution core: $(b,reference) (event-driven interpreter) or \
           $(b,packed) (compiled flat-array engine with an explicit token \
           store).  Both produce bit-identical final stores.")

(** @raise on an unknown name: prints the valid engines and exits 2. *)
let engine_of_flag (s : string) : Machine.Config.engine =
  try Machine.Config.engine_of_string s
  with Failure msg ->
    Fmt.epr "df_compile: %s@." msg;
    exit 2

let run_cmd file schema transforms pes mem_latency verbose trace optimize
    fault_seed fault_rate fault_classes no_certify engine =
  let p = read_program file in
  let transforms = transforms_of_list transforms in
  let compiled = Dflow.Driver.compile ~transforms schema p in
  let graph = maybe_optimize optimize compiled.Dflow.Driver.graph in
  Dfg.Check.check graph;
  if no_certify then Dfg.Graph.set_cert graph None;
  let config =
    { (config_of pes mem_latency) with
      Machine.Config.engine = engine_of_flag engine }
  in
  let tracer = Machine.Trace.create () in
  let on_fire = if trace then Some (Machine.Trace.on_fire tracer) else None in
  let faults =
    Option.map
      (fun seed ->
        let classes =
          try Machine.Fault.classes_of_string fault_classes
          with Failure msg ->
            Fmt.epr "df_compile: %s@." msg;
            exit 2
        in
        Machine.Fault.make
          (Machine.Fault.spec ~seed ~rate:fault_rate ~classes ()))
      fault_seed
  in
  let result =
    match
      Machine.Interp.run_report ~config ?faults ?on_fire
        { Machine.Interp.graph = graph; layout = compiled.Dflow.Driver.layout }
    with
    | Ok r -> r
    | Error d ->
        Fmt.epr "execution failed:@.%a@." Machine.Diagnosis.pp d;
        exit 1
  in
  if not (Machine.Diagnosis.is_clean result.Machine.Interp.diagnosis) then
    Fmt.pr "== diagnosis ==@.%a@." Machine.Diagnosis.pp
      result.Machine.Interp.diagnosis;
  if not result.Machine.Interp.completed then begin
    Fmt.epr "dataflow execution did not complete (see diagnosis above)@.";
    exit 1
  end;
  Fmt.pr "== final store ==@.%a@." Imp.Memory.pp result.Machine.Interp.memory;
  Fmt.pr "== execution ==@.";
  Fmt.pr "schema           %s@." (Dflow.Driver.spec_to_string schema);
  Fmt.pr "cycles           %d@." result.Machine.Interp.cycles;
  Fmt.pr "operations       %d@." result.Machine.Interp.firings;
  Fmt.pr "memory ops       %d@." result.Machine.Interp.memory_ops;
  Fmt.pr "avg parallelism  %.2f@." (Machine.Interp.avg_parallelism result);
  Fmt.pr "peak parallelism %d@." result.Machine.Interp.peak_parallelism;
  Fmt.pr "peak matching    %d entries@." result.Machine.Interp.peak_matching;
  Fmt.pr "op breakdown     %a@."
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any ":") string int))
    result.Machine.Interp.firings_by_kind;
  Fmt.pr "certificate      %s@."
    (certificate_line result.Machine.Interp.diagnosis);
  if trace then begin
    Fmt.pr "== timeline (first 60 cycles) ==@.";
    Fmt.pr "%a" (Machine.Trace.pp_timeline ~max_cycles:60) tracer;
    Fmt.pr "== firings per iteration context ==@.";
    Fmt.pr "%a" Machine.Trace.pp_per_context tracer;
    Fmt.pr "max overlapping contexts: %d@."
      (Machine.Trace.max_context_overlap tracer)
  end;
  if verbose then begin
    Fmt.pr "== static graph ==@.%a@." Dfg.Stats.pp (Dfg.Stats.of_graph graph);
    let reference = Imp.Eval.run_program ~fuel:10_000_000 p in
    if Imp.Memory.equal reference result.Machine.Interp.memory then
      Fmt.pr "reference check  ok@."
    else Fmt.pr "reference check  MISMATCH@."
  end

let run_term =
  Term.(
    const run_cmd $ file_arg $ schema_arg $ transforms_arg $ pes_arg
    $ mem_latency_arg
    $ Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print graph statistics and check against the reference interpreter.")
    $ Arg.(value & flag & info [ "trace" ] ~doc:"Print an execution timeline and per-context firing counts.")
    $ optimize_arg $ fault_seed_arg $ fault_rate_arg $ fault_classes_arg
    $ no_certify_arg $ engine_arg)

(* --- profile: critical path, curves, Chrome trace -------------------- *)

let profile_cmd file schema transforms pes mem_latency optimize trace_out
    summary_json limit =
  let p = read_program file in
  let transforms = transforms_of_list transforms in
  let compiled = Dflow.Driver.compile ~transforms schema p in
  let graph = maybe_optimize optimize compiled.Dflow.Driver.graph in
  Dfg.Check.check graph;
  let config = config_of pes mem_latency in
  let tracer = Machine.Trace.create ~limit () in
  let result =
    match
      Machine.Interp.run_report ~config
        ~on_fire:(Machine.Trace.on_fire tracer)
        { Machine.Interp.graph = graph; layout = compiled.Dflow.Driver.layout }
    with
    | Ok r -> r
    | Error d ->
        Fmt.epr "execution failed:@.%a@." Machine.Diagnosis.pp d;
        exit 1
  in
  let profile = Machine.Profile.make ~graph ~trace:tracer result in
  let out =
    match trace_out with
    | Some path -> path
    | None -> Filename.remove_extension (Filename.basename file) ^ ".trace.json"
  in
  let chrome = Machine.Profile.chrome_trace ~config ~graph tracer in
  let oc = open_out out in
  output_string oc (Machine.Json.to_string chrome);
  output_char oc '\n';
  close_out oc;
  if summary_json then
    Fmt.pr "%s" (Machine.Json.to_string_pretty (Machine.Profile.summary_json profile))
  else begin
    Fmt.pr "== profile (%s, %s) ==@." file (Dflow.Driver.spec_to_string schema);
    Fmt.pr "%a" Machine.Profile.pp profile
  end;
  Fmt.epr "chrome trace written to %s (load it in chrome://tracing or \
           ui.perfetto.dev)@." out;
  let reference = Imp.Eval.run_program ~fuel:10_000_000 p in
  if not (Imp.Memory.equal reference result.Machine.Interp.memory) then begin
    Fmt.epr "profile run DIVERGED from the reference interpreter@.";
    exit 1
  end

let profile_term =
  Term.(
    const profile_cmd $ file_arg $ schema_arg $ transforms_arg $ pes_arg
    $ mem_latency_arg $ optimize_arg
    $ Arg.(
        value & opt (some string) None
        & info [ "trace-out" ] ~docv:"PATH"
            ~doc:
              "Where to write the Chrome trace_event JSON (default: \
               <FILE>.trace.json in the current directory).")
    $ Arg.(
        value & flag
        & info [ "json" ]
            ~doc:"Print the profile summary as JSON instead of text.")
    $ Arg.(
        value & opt int 100_000
        & info [ "limit" ] ~docv:"N"
            ~doc:
              "Trace recorder capacity; runs longer than N firings are \
               truncated (and say so)."))

(* --- simulate: the multiprocessor machine ----------------------------- *)

let placement_conv : Machine.Placement.policy Arg.conv =
  ( (fun s ->
      match Machine.Placement.policy_of_string s with
      | Ok p -> `Ok p
      | Error e -> `Error e),
    fun ppf p -> Fmt.string ppf (Machine.Placement.policy_to_string p) )

let simulate_cmd file schema transforms optimize mp_pes placement net_kind
    steal net_latency net_bandwidth net_queue modules mem_latency trace_out
    fault_seed fault_rate fault_classes recover no_certify engine =
  (* usage errors first, same contract as --engine / --jobs: exit 2 with
     a message naming the flag and the valid values *)
  if mp_pes < 1 then begin
    Fmt.epr "df_compile: --pes must be at least 1 (got %d)@." mp_pes;
    exit 2
  end;
  let topo_kind =
    match Sched.Topology.kind_of_string net_kind with
    | Ok k -> k
    | Error msg ->
        Fmt.epr "df_compile: %s@." msg;
        exit 2
  in
  (* the packed engine models the idealised single-hop interconnect and
     static placement only; fail fast rather than silently ignore the
     scheduling flags until the packed x network marriage lands *)
  (match engine_of_flag engine with
  | Machine.Config.Packed
    when topo_kind <> Sched.Topology.Uniform || steal
         || placement = Machine.Placement.Hier ->
      Fmt.epr
        "df_compile: --engine packed is single-PE idealised: --net \
         mesh/torus/cube, --steal and --placement hier need --engine \
         reference@.";
      exit 2
  | _ -> ());
  let p = read_program file in
  let transforms = transforms_of_list transforms in
  let compiled = Dflow.Driver.compile ~transforms schema p in
  let graph = maybe_optimize optimize compiled.Dflow.Driver.graph in
  Dfg.Check.check graph;
  if no_certify then Dfg.Graph.set_cert graph None;
  let config =
    { (config_of None mem_latency) with
      Machine.Config.engine = engine_of_flag engine }
  in
  let faults =
    Option.map
      (fun seed ->
        let classes =
          try Machine.Fault.classes_of_string fault_classes
          with Failure msg ->
            Fmt.epr "df_compile: %s@." msg;
            exit 2
        in
        Machine.Fault.make
          (Machine.Fault.spec ~seed ~rate:fault_rate ~classes ()))
      fault_seed
  in
  let recovery =
    if not recover then None
    else
      let deaths =
        match fault_seed with
        | Some seed ->
            Machine.Recovery.seeded_deaths ~seed ~pes:mp_pes ~window:60
        | None -> []
      in
      Some (Machine.Recovery.spec ~deaths ())
  in
  let net =
    {
      Machine.Network.latency = net_latency;
      bandwidth = net_bandwidth;
      queue_capacity = net_queue;
      modules;
    }
  in
  let events = ref [] in
  let on_fire cycle node ctx ~pe =
    if trace_out <> None then
      events := (cycle, node.Dfg.Node.id, ctx, pe) :: !events
  in
  let topo =
    match topo_kind with
    | Sched.Topology.Uniform -> None
    | k -> Some (Sched.Topology.make k ~pes:mp_pes)
  in
  let steal_spec = if steal then Some Sched.Steal.default else None in
  let tree = compiled.Dflow.Driver.ltree in
  let r =
    match
      Machine.Multiproc.run ~config ~net ~placement ~tree ?topo
        ?steal:steal_spec ~on_fire ?faults ?recovery ~pes:mp_pes
        { Machine.Interp.graph; layout = compiled.Dflow.Driver.layout }
    with
    | Ok r -> r
    | Error d ->
        Fmt.epr "simulation failed:@.%a@." Machine.Diagnosis.pp d;
        exit 1
  in
  if not r.Machine.Multiproc.completed then begin
    Fmt.epr "simulation did not complete:@.%a@." Machine.Diagnosis.pp
      r.Machine.Multiproc.diagnosis;
    exit 1
  end;
  Fmt.pr "== final store ==@.%a@." Imp.Memory.pp r.Machine.Multiproc.memory;
  Fmt.pr "== multiprocessor (%d PEs, %s placement) ==@." mp_pes
    (Machine.Placement.policy_to_string placement);
  Fmt.pr "schema           %s@." (Dflow.Driver.spec_to_string schema);
  Fmt.pr "cycles           %d@." r.Machine.Multiproc.cycles;
  Fmt.pr "operations       %d@." r.Machine.Multiproc.firings;
  Fmt.pr "memory ops       %d (%d local, %d remote)@."
    r.Machine.Multiproc.memory_ops r.Machine.Multiproc.mem_local
    r.Machine.Multiproc.mem_remote;
  Fmt.pr "placement        %a@." Machine.Placement.pp_stats
    r.Machine.Multiproc.placement_stats;
  (match placement with
  | Machine.Placement.Hier ->
      Fmt.pr "hierarchy        %a@." Sched.Hplace.pp_stats
        (Machine.Placement.hier_stats ~tree ?topo ~pes:mp_pes graph)
  | _ -> ());
  (match topo with
  | Some tp ->
      Fmt.pr "topology         %s, %d link hops crossed@."
        (Sched.Topology.describe tp) r.Machine.Multiproc.net_hops
  | None -> ());
  if steal then
    Fmt.pr "stealing         %d ready firings moved@."
      r.Machine.Multiproc.steals;
  Fmt.pr "network          %d messages (%d local deliveries), cut traffic \
          %.1f%%@."
    r.Machine.Multiproc.net_messages r.Machine.Multiproc.local_deliveries
    (100.0 *. r.Machine.Multiproc.cut_traffic);
  Fmt.pr "backpressure     %d stalled enqueues, peak queue %d@."
    r.Machine.Multiproc.backpressure r.Machine.Multiproc.peak_queue;
  Fmt.pr "certificate      %s@."
    (certificate_line r.Machine.Multiproc.diagnosis);
  (match (r.Machine.Multiproc.transport, r.Machine.Multiproc.recovery) with
  | None, None -> ()
  | transport, recovery ->
      Fmt.pr "== fault tolerance ==@.";
      (match transport with
      | None -> ()
      | Some st ->
          Fmt.pr
            "transport        %d sends, %d retransmits, %d dup drops, %d \
             wire faults, %d losses@."
            st.Machine.Network.r_sends st.Machine.Network.r_retransmits
            st.Machine.Network.r_dups_dropped st.Machine.Network.r_wire_faults
            st.Machine.Network.r_losses);
      (match recovery with
      | None -> ()
      | Some m ->
          Fmt.pr
            "recovery         recovered: %d death(s), %d rollback(s), %d \
             checkpoint(s), %d lost cycles, %d replayed firings@."
            m.Machine.Recovery.m_deaths m.Machine.Recovery.m_rollbacks
            m.Machine.Recovery.m_checkpoints m.Machine.Recovery.m_lost_cycles
            m.Machine.Recovery.m_replayed_firings));
  Array.iteri
    (fun pe u ->
      Fmt.pr "pe %-2d            %5d firings, %4.1f%% busy@." pe
        r.Machine.Multiproc.per_pe_firings.(pe)
        (100.0 *. u))
    r.Machine.Multiproc.utilisation;
  (match trace_out with
  | None -> ()
  | Some out ->
      let chrome =
        Machine.Profile.chrome_trace_pes ~config ~graph (List.rev !events)
      in
      let oc = open_out out in
      output_string oc (Machine.Json.to_string chrome);
      output_char oc '\n';
      close_out oc;
      Fmt.epr "chrome trace written to %s (one track per PE; load it in \
               chrome://tracing or ui.perfetto.dev)@." out);
  let reference = Imp.Eval.run_program ~fuel:10_000_000 p in
  if Imp.Memory.equal reference r.Machine.Multiproc.memory then
    Fmt.pr "reference check  ok@."
  else begin
    Fmt.epr "reference check  MISMATCH@.";
    exit 1
  end;
  (* even a run that completed and matched the reference is rejected when
     the sanitizer or the permission certificate reported violations in
     report-only mode: a lucky store is not a certified store *)
  let diag = r.Machine.Multiproc.diagnosis in
  if
    diag.Machine.Diagnosis.sanitizer <> []
    || diag.Machine.Diagnosis.permission <> []
  then begin
    Fmt.epr "== diagnosis ==@.%a@." Machine.Diagnosis.pp diag;
    Fmt.epr
      "simulation rejected: %d sanitizer violation(s), %d permission \
       violation(s) (run with --no-certify to waive certification)@."
      (List.length diag.Machine.Diagnosis.sanitizer)
      (List.length diag.Machine.Diagnosis.permission);
    exit 1
  end

let simulate_term =
  Term.(
    const simulate_cmd $ file_arg $ schema_arg $ transforms_arg $ optimize_arg
    $ Arg.(
        value & opt int 4
        & info [ "p"; "pes" ] ~docv:"N"
            ~doc:"Number of processing elements.")
    $ Arg.(
        value
        & opt placement_conv Machine.Placement.Affinity
        & info [ "placement" ] ~docv:"POLICY"
            ~doc:
              "Node-to-PE placement: hash, rr, affinity, or hier \
               (loop-region sub-grids refined by affinity clusters).")
    $ Arg.(
        value & opt string "uniform"
        & info [ "net" ] ~docv:"TOPOLOGY"
            ~doc:
              "Interconnect topology: $(b,uniform) (single hop, the \
               default), $(b,mesh), $(b,torus) or $(b,cube); messages pay \
               the pipelined cost net-latency + hops - 1 under \
               dimension-ordered routing.")
    $ Arg.(
        value & flag
        & info [ "steal" ]
            ~doc:
              "Work stealing of ready firings with affinity hysteresis \
               (deterministic; the final store is unchanged).")
    $ Arg.(
        value & opt int Machine.Network.default.Machine.Network.latency
        & info [ "net-latency" ] ~docv:"CYCLES"
            ~doc:
              "Interconnect injection latency in cycles (each extra hop \
               adds one cycle).")
    $ Arg.(
        value & opt int Machine.Network.default.Machine.Network.bandwidth
        & info [ "net-bandwidth" ] ~docv:"MSGS"
            ~doc:"Messages each PE may inject per cycle.")
    $ Arg.(
        value
        & opt (some int) Machine.Network.default.Machine.Network.queue_capacity
        & info [ "net-queue" ] ~docv:"N"
            ~doc:
              "Injection queue capacity per PE (enqueues beyond it count \
               as backpressure).")
    $ Arg.(
        value & opt (some int) None
        & info [ "modules" ] ~docv:"N"
            ~doc:"Interleaved memory modules (default: one per PE).")
    $ mem_latency_arg
    $ Arg.(
        value & opt (some string) None
        & info [ "trace-out" ] ~docv:"PATH"
            ~doc:
              "Write a Chrome trace_event JSON with one track per PE.")
    $ fault_seed_arg $ fault_rate_arg $ fault_classes_arg
    $ Arg.(
        value & flag
        & info [ "recover" ]
            ~doc:
              "Enable checkpoint/replay recovery: epoch snapshots, plus — \
               with --fault-seed — one seeded PE fail-stop whose nodes are \
               remapped over the survivors and replayed.")
    $ no_certify_arg $ engine_arg)

(* --- dot ------------------------------------------------------------- *)

let dot_cmd file schema transforms stage =
  let p = read_program file in
  match stage with
  | "cfg" -> Fmt.pr "%s" (Cfg.Dot.to_string (Cfg.Builder.of_program p))
  | "loopified" ->
      let lp = Cfg.Loopify.transform (Cfg.Builder.of_program p) in
      Fmt.pr "%s" (Cfg.Dot.to_string lp.Cfg.Loopify.graph)
  | "pdg" -> Fmt.pr "%s" (Ssa.Pdg.to_dot (Ssa.Pdg.build (Cfg.Builder.of_program p)))
  | "dfg" ->
      let transforms = transforms_of_list transforms in
      let compiled = Dflow.Driver.compile ~transforms schema p in
      Fmt.pr "%s" (Dfg.Dot.to_string compiled.Dflow.Driver.graph)
  | other -> Fmt.failwith "unknown stage %S (cfg|loopified|dfg|pdg)" other

let dot_term =
  Term.(
    const dot_cmd $ file_arg $ schema_arg $ transforms_arg
    $ Arg.(
        value & opt string "dfg"
        & info [ "stage" ] ~docv:"STAGE" ~doc:"cfg, loopified, dfg or pdg."))

(* --- emit / exec: the textual dataflow IR ----------------------------- *)

let emit_cmd file schema transforms optimize =
  let p = read_program file in
  let transforms = transforms_of_list transforms in
  let compiled = Dflow.Driver.compile ~transforms schema p in
  let graph = maybe_optimize optimize compiled.Dflow.Driver.graph in
  Dfg.Check.check graph;
  print_string (Dfg.Text.print graph)

let emit_term =
  Term.(const emit_cmd $ file_arg $ schema_arg $ transforms_arg $ optimize_arg)

let exec_cmd graph_file program_file pes mem_latency =
  (* the graph comes from the textual IR; the source program supplies
     the memory layout (and the reference semantics to check against) *)
  let g = Dfg.Text.read graph_file in
  Dfg.Check.check g;
  let p = read_program program_file in
  let layout = Imp.Layout.of_program p in
  let config = config_of pes mem_latency in
  let r = Machine.Interp.run_exn ~config { Machine.Interp.graph = g; layout } in
  Fmt.pr "== final store ==@.%a@." Imp.Memory.pp r.Machine.Interp.memory;
  Fmt.pr "cycles %d, operations %d@." r.Machine.Interp.cycles
    r.Machine.Interp.firings;
  let reference = Imp.Eval.run_program ~fuel:10_000_000 p in
  Fmt.pr "reference check: %s@."
    (if Imp.Memory.equal reference r.Machine.Interp.memory then "ok"
     else "MISMATCH")

let exec_term =
  Term.(
    const exec_cmd
    $ Arg.(
        required & pos 0 (some file) None
        & info [] ~docv:"GRAPH" ~doc:"Textual dataflow graph (.dfg)")
    $ Arg.(
        required & pos 1 (some file) None
        & info [] ~docv:"PROGRAM" ~doc:"IMP source supplying the memory layout")
    $ pes_arg $ mem_latency_arg)

let check_cmd graph_file =
  let g = Dfg.Text.read graph_file in
  Dfg.Check.check g;
  Fmt.pr "%s: well-formed@.%a@." graph_file Dfg.Stats.pp (Dfg.Stats.of_graph g)

let check_term =
  Term.(
    const check_cmd
    $ Arg.(
        required & pos 0 (some file) None
        & info [] ~docv:"GRAPH" ~doc:"Textual dataflow graph (.dfg)"))

(* --- analyze --------------------------------------------------------- *)

let analyze_cmd file =
  let p = read_program file in
  let g = Cfg.Builder.of_program p in
  let vars = Imp.Ast.program_vars p in
  Fmt.pr "== control-flow graph ==@.%a@." Cfg.Core.pp g;
  (* alias structure *)
  let alias = Analysis.Alias.of_program p in
  if Analysis.Alias.has_aliasing alias then begin
    Fmt.pr "== alias classes ==@.";
    Fmt.pr "@[<v>%a@]@." Analysis.Alias.pp alias;
    List.iter
      (fun (name, c) ->
        Fmt.pr "cover %-11s %a  (sync cost %d, spurious serializations %d)@."
          name Analysis.Cover.pp c
          (Analysis.Cover.synchronization_cost alias c vars)
          (Analysis.Cover.spurious_serialization alias c))
      [
        ("singleton", Analysis.Cover.singleton alias);
        ("classes", Analysis.Cover.classes alias);
        ("components", Analysis.Cover.components alias);
      ]
  end;
  (* loops *)
  (match Cfg.Loopify.transform g with
  | lp ->
      Array.iter
        (fun (l : Cfg.Loopify.loop_info) ->
          Fmt.pr
            "loop %d: header %d, entry %d, exits [%a], %d body nodes, vars \
             {%a}%a@."
            l.Cfg.Loopify.id l.Cfg.Loopify.header l.Cfg.Loopify.entry
            Fmt.(list ~sep:comma int)
            l.Cfg.Loopify.exits
            (List.length l.Cfg.Loopify.body)
            Fmt.(list ~sep:comma string)
            l.Cfg.Loopify.vars
            (fun ppf -> function
              | Some par -> Fmt.pf ppf ", inside loop %d" par
              | None -> ())
            l.Cfg.Loopify.parent)
        lp.Cfg.Loopify.loops;
      (* switch placement on the loopified graph *)
      let sp =
        Analysis.Switch_place.compute lp.Cfg.Loopify.graph ~vars
      in
      Fmt.pr "== switch placement (fork, variables) ==@.";
      List.iter
        (fun f ->
          if Cfg.Core.is_fork lp.Cfg.Loopify.graph f && f <> lp.Cfg.Loopify.graph.Cfg.Core.start
          then
            let needed =
              List.filter (fun x -> Analysis.Switch_place.needs_switch sp f x) vars
            in
            Fmt.pr "fork %d: {%a}@." f Fmt.(list ~sep:comma string) needed)
        (Cfg.Core.nodes lp.Cfg.Loopify.graph);
      (* Figure 14 / I-structure opportunities *)
      let async = Dflow.Transforms.async_candidates p lp in
      List.iter
        (fun (l, x) -> Fmt.pr "fig14: loop %d, array %s parallelizable@." l x)
        async;
      List.iter
        (fun x -> Fmt.pr "write-once array: %s (I-structure eligible)@." x)
        (Dflow.Transforms.istructure_candidates p lp)
  | exception Cfg.Intervals.Irreducible m ->
      Fmt.pr "irreducible control flow: %s@." m);
  (* SSA summary *)
  let ssa = Ssa.Construct.construct g in
  Fmt.pr "== SSA ==@.@[<v>%a@]@." Ssa.Construct.pp ssa

let analyze_term = Term.(const analyze_cmd $ file_arg)

(* --- compare --------------------------------------------------------- *)

let compare_cmd file pes mem_latency =
  let p = read_program file in
  let config = config_of pes mem_latency in
  let aliasing = Analysis.Alias.has_aliasing (Analysis.Alias.of_program p) in
  let specs =
    if aliasing then
      Dflow.Driver.
        [
          (Schema1, no_transforms);
          (Schema3 (Singleton, Dflow.Engine.Barrier), no_transforms);
          (Schema3 (Classes, Dflow.Engine.Barrier), no_transforms);
          (Schema3 (Components, Dflow.Engine.Barrier), no_transforms);
        ]
    else
      Dflow.Driver.
        [
          (Schema1, no_transforms);
          (Schema2 Dflow.Engine.Barrier, no_transforms);
          (Schema2 Dflow.Engine.Pipelined, no_transforms);
          (Schema2_opt Dflow.Engine.Barrier, no_transforms);
          (Schema2_opt Dflow.Engine.Pipelined, no_transforms);
          (Schema2_opt Dflow.Engine.Pipelined, all_transforms);
        ]
  in
  Fmt.pr "%-28s %8s %8s %8s %9s %8s@." "schema" "cycles" "ops" "mem-ops"
    "avg-par" "switches";
  List.iter
    (fun (spec, transforms) ->
      match Dflow.Driver.compile ~transforms spec p with
      | compiled ->
          let r =
            Machine.Interp.run_exn ~config
              {
                Machine.Interp.graph = compiled.Dflow.Driver.graph;
                layout = compiled.Dflow.Driver.layout;
              }
          in
          let st = Dfg.Stats.of_graph compiled.Dflow.Driver.graph in
          let name =
            Dflow.Driver.spec_to_string spec
            ^ if transforms = Dflow.Driver.no_transforms then "" else "+sec6"
          in
          Fmt.pr "%-28s %8d %8d %8d %9.2f %8d@." name r.Machine.Interp.cycles
            r.Machine.Interp.firings r.Machine.Interp.memory_ops
            (Machine.Interp.avg_parallelism r)
            st.Dfg.Stats.switches
      | exception Cfg.Intervals.Irreducible _ ->
          Fmt.pr "%-28s %s@."
            (Dflow.Driver.spec_to_string spec)
            "(irreducible: unsupported)")
    specs

let compare_term = Term.(const compare_cmd $ file_arg $ pes_arg $ mem_latency_arg)

(* --- selfcheck: the differential schema oracle ----------------------- *)

(* --- serve: the batched, memoized, domain-parallel job server -------- *)

let jobs_arg =
  Arg.(
    value & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the batch (default: the machine's \
           recommended domain count).  Results are emitted in submission \
           order and are byte-identical at every N.")

(** Mirrors [engine_of_flag]: an out-of-range value prints a usage
    message and exits 2. *)
let jobs_of_flag (jobs : int option) : int =
  match jobs with
  | None -> Service.Pool.default_jobs ()
  | Some n when n >= 1 -> n
  | Some n ->
      Fmt.epr "df_compile: --jobs must be at least 1 (got %d)@." n;
      exit 2

(* socket-mode flags (see Serve.Socket); all are also validated here so
   a bad value is a usage error (exit 2), matching --engine / --jobs *)

let socket_arg =
  Arg.(
    value & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Listen on a Unix-domain socket at $(docv) instead of serving \
           stdin.  Jobs run on supervised worker subprocess shards.")

let tcp_arg =
  Arg.(
    value & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT"
        ~doc:"Listen on 127.0.0.1:$(docv) instead of serving stdin.")

let shards_arg =
  Arg.(
    value & opt int 4
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Worker subprocess shards for socket mode (a crashed or stalled \
           shard is restarted with capped exponential backoff).")

let deadline_ms_arg =
  Arg.(
    value & opt int 0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-job wall-clock deadline in socket mode; a job that blows it \
           gets a \"deadline\" error and its shard is killed and restarted. \
           0 (the default) disables the deadline.")

let max_queue_arg =
  Arg.(
    value & opt int 64
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Admission control for socket mode: jobs allowed to wait beyond \
           the running shards; past that the job is rejected with an \
           \"overloaded\" error instead of buffering without bound.")

let max_line_bytes_arg =
  Arg.(
    value & opt int Service.Framing.default_max_line_bytes
    & info [ "max-line-bytes" ] ~docv:"N"
        ~doc:
          "Per-line byte budget (stdin and socket): an oversized or \
           unterminated line costs bounded memory and yields a per-job \
           error result.")

let chaos_seed_arg =
  Arg.(
    value & opt (some int) None
    & info [ "chaos-seed" ] ~docv:"SEED"
        ~doc:
          "Enable seeded chaos injection in socket mode: under \
           --chaos-rate, jobs are deterministically assigned shard kills, \
           stalls past the deadline, or truncated responses.")

let chaos_rate_arg =
  Arg.(
    value & opt float 0.05
    & info [ "chaos-rate" ] ~docv:"P"
        ~doc:"Fraction of jobs faulted under --chaos-seed (within [0,1]).")

let usage_error fmt =
  Fmt.kstr
    (fun m ->
      Fmt.epr "df_compile: %s@." m;
      exit 2)
    fmt

let serve_cmd jobs socket tcp shards deadline_ms max_queue max_line_bytes
    chaos_seed chaos_rate =
  if shards < 1 then usage_error "--shards must be at least 1 (got %d)" shards;
  if deadline_ms < 0 then
    usage_error "--deadline-ms must be >= 0 (got %d)" deadline_ms;
  if max_queue < 0 then
    usage_error "--max-queue must be >= 0 (got %d)" max_queue;
  if max_line_bytes < 1 then
    usage_error "--max-line-bytes must be at least 1 (got %d)" max_line_bytes;
  if chaos_rate < 0.0 || chaos_rate > 1.0 then
    usage_error "--chaos-rate must be within [0, 1] (got %g)" chaos_rate;
  let endpoint =
    match (socket, tcp) with
    | Some _, Some _ -> usage_error "--socket and --tcp are mutually exclusive"
    | Some path, None -> Some (Serve.Socket.Unix_path path)
    | None, Some port ->
        if port < 1 || port > 65535 then
          usage_error "--tcp port must be within [1, 65535] (got %d)" port;
        Some (Serve.Socket.Tcp port)
    | None, None -> None
  in
  match endpoint with
  | None ->
      if chaos_seed <> None then
        usage_error "--chaos-seed requires socket mode (--socket or --tcp)";
      Serve.Server.serve ~jobs:(jobs_of_flag jobs) ~max_line_bytes stdin stdout
  | Some endpoint ->
      let chaos =
        match chaos_seed with
        | None -> None
        | Some seed ->
            Some
              {
                Service.Supervisor.c_seed = seed;
                c_rate = chaos_rate;
                (* stall comfortably past the deadline so stalls are
                   classified as deadline kills, yet bounded when the
                   deadline is off *)
                c_stall_ms =
                  (if deadline_ms > 0 then (2 * deadline_ms) + 500 else 400);
              }
      in
      Serve.Socket.listen endpoint
        {
          Serve.Socket.shards;
          deadline_ms;
          max_queue;
          max_line_bytes;
          chaos;
        }

let serve_term =
  Term.(
    const serve_cmd $ jobs_arg $ socket_arg $ tcp_arg $ shards_arg
    $ deadline_ms_arg $ max_queue_arg $ max_line_bytes_arg $ chaos_seed_arg
    $ chaos_rate_arg)

(* --- client: submit a batch to a socket server ----------------------- *)

let retries_arg =
  Arg.(
    value & opt int 5
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry budget per job: connect failures, dropped connections, \
           and \"overloaded\"/\"shard-crash\" results are retried with \
           doubling backoff (determinacy makes blind retry sound).")

let backoff_ms_arg =
  Arg.(
    value & opt int 50
    & info [ "backoff-ms" ] ~docv:"MS" ~doc:"Initial retry backoff.")

let client_cmd socket tcp retries backoff_ms =
  if retries < 0 then usage_error "--retries must be >= 0 (got %d)" retries;
  if backoff_ms < 1 then
    usage_error "--backoff-ms must be at least 1 (got %d)" backoff_ms;
  let endpoint =
    match (socket, tcp) with
    | Some _, Some _ -> usage_error "--socket and --tcp are mutually exclusive"
    | Some path, None -> Serve.Socket.Unix_path path
    | None, Some port ->
        if port < 1 || port > 65535 then
          usage_error "--tcp port must be within [1, 65535] (got %d)" port;
        Serve.Socket.Tcp port
    | None, None -> usage_error "client needs --socket PATH or --tcp PORT"
  in
  exit (Serve.Socket.client ~retries ~backoff_ms endpoint stdin stdout)

let client_term =
  Term.(const client_cmd $ socket_arg $ tcp_arg $ retries_arg $ backoff_ms_arg)

let selfcheck_cmd seed count broken certify_only jobs =
  (* certificate-only validation exercises the aliasing side too: the
     bad-cover variant is a no-op on alias-free programs, so the
     generator must be allowed to produce aliased ones *)
  let gen =
    if certify_only then
      Some
        {
          Workloads.Random_gen.default_config with
          Workloads.Random_gen.allow_alias = true;
        }
    else None
  in
  let report =
    Dflow.Oracle.selfcheck ?gen ~seed ~count ~certify_only
      ~include_broken:broken ~jobs:(jobs_of_flag jobs) ()
  in
  Fmt.pr "%a@." Dflow.Oracle.pp_report report;
  if report.Dflow.Oracle.r_divergences <> [] then begin
    Fmt.epr "selfcheck FAILED: %d %s under sound schemas@."
      (List.length report.Dflow.Oracle.r_divergences)
      (if certify_only then "false certificate rejection(s)"
       else "reference divergence(s)");
    exit 1
  end;
  if broken && report.Dflow.Oracle.r_broken_caught = [] then begin
    Fmt.epr
      "selfcheck FAILED: the deliberately broken schema produced no \
       divergence — the oracle has lost its teeth (try more programs)@.";
    exit 1
  end;
  if broken && certify_only then begin
    (* the certificate alone — no reference store, no collision detection
       — must catch BOTH seeded miscompilations *)
    let caught =
      List.map
        (fun d -> d.Dflow.Oracle.dv_combo)
        report.Dflow.Oracle.r_broken_caught
    in
    let has prefix =
      List.exists
        (fun n ->
          String.length n >= String.length prefix
          && String.sub n 0 (String.length prefix) = prefix)
        caught
    in
    List.iter
      (fun variant ->
        if not (has variant) then begin
          Fmt.epr
            "selfcheck FAILED: the permission certificate alone did not \
             catch %s (try more programs)@."
            variant;
          exit 1
        end)
      [ "schema2-no-loop-control"; "schema3-bad-cover" ]
  end;
  Fmt.pr "selfcheck ok@."

let selfcheck_term =
  Term.(
    const selfcheck_cmd
    $ Arg.(
        value & opt int 42
        & info [ "seed" ] ~docv:"N" ~doc:"Random program generator seed.")
    $ Arg.(
        value & opt int 50
        & info [ "count" ] ~docv:"M" ~doc:"Number of random programs to validate.")
    $ Arg.(
        value & flag
        & info [ "broken" ]
            ~doc:
              "Also run the deliberately broken schema variants (Schema 2 \
               without loop control; Schema 3 with truncated access sets) \
               and require the oracle to catch them with shrunk minimal \
               reproducers.")
    $ Arg.(
        value & flag
        & info [ "certify-only" ]
            ~doc:
              "Validate with the fractional-permission certificate ALONE: \
               collision detection off, reference store not compared. With \
               --broken, both unsound variants must still be caught. The \
               program generator is allowed to produce aliased programs so \
               the bad-cover variant is exercised.")
    $ jobs_arg)

(* --- command assembly ------------------------------------------------ *)

let cmds =
  [
    Cmd.v
      (Cmd.info "run" ~doc:"Compile and execute on the dataflow machine")
      run_term;
    Cmd.v
      (Cmd.info "profile"
         ~doc:
           "Compile, execute, and profile: firing histograms, parallelism \
            and matching-store curves, the dynamic critical path against \
            the static one, and a Chrome trace_event JSON export")
      profile_term;
    Cmd.v
      (Cmd.info "simulate"
         ~doc:
           "Execute on the multiprocessor ETS machine: partitioned over N \
            processing elements joined by a latency/bandwidth-modelled \
            interconnect with interleaved memory modules")
      simulate_term;
    Cmd.v (Cmd.info "dot" ~doc:"Emit DOT renderings") dot_term;
    Cmd.v
      (Cmd.info "emit" ~doc:"Emit the textual dataflow IR (.dfg)")
      emit_term;
    Cmd.v
      (Cmd.info "exec"
         ~doc:"Execute a textual dataflow IR file against a program's layout")
      exec_term;
    Cmd.v
      (Cmd.info "check" ~doc:"Validate a textual dataflow IR file")
      check_term;
    Cmd.v (Cmd.info "analyze" ~doc:"Print analyses") analyze_term;
    Cmd.v (Cmd.info "compare" ~doc:"Tabulate every schema") compare_term;
    Cmd.v
      (Cmd.info "selfcheck"
         ~doc:
           "Differential schema oracle: validate every schema x transform \
            combination against the reference interpreter on seeded random \
            programs, shrinking any divergence to a minimal reproducer")
      selfcheck_term;
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Persistent batch service: read line-delimited JSON job \
            requests (compile / run / simulate / selfcheck-combo / stats) \
            on stdin, execute them on a fixed pool of worker domains with \
            content-hashed memoization of the compilation pipeline, and \
            write one JSON result line per job in submission order.  With \
            --socket/--tcp, listen on a socket instead and run jobs on \
            supervised, crash-isolated worker subprocess shards with \
            per-job deadlines, admission control and graceful drain on \
            SIGTERM/SIGINT")
      serve_term;
    Cmd.v
      (Cmd.info "client"
         ~doc:
           "Submit a batch of line-delimited JSON jobs from stdin to a \
            `serve --socket/--tcp` server, retrying transient failures \
            (connect errors, \"overloaded\", \"shard-crash\") with \
            capped exponential backoff; one result line per job on \
            stdout, in input order")
      client_term;
  ]

let () =
  (* accept the flag spelling too: `df_compile --selfcheck ...` *)
  let argv =
    Array.map (fun a -> if a = "--selfcheck" then "selfcheck" else a) Sys.argv
  in
  let info =
    Cmd.info "df_compile" ~version:"1.0"
      ~doc:"Translate imperative programs to dataflow graphs (Beck, Johnson & Pingali 1990)"
  in
  exit (Cmd.eval ~argv (Cmd.group info cmds))
