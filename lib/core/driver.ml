(** One-call compilation pipeline: IMP program -> dataflow graph.

    Handles lowering, CFG construction, loop-control insertion, alias
    structure and cover selection, and schema dispatch.  The result also
    carries the memory layout the graph was compiled against, which is
    everything the machine needs to execute it. *)

type cover_choice =
  | Singleton  (** maximal parallelism *)
  | Classes  (** the alias-class cover *)
  | Components  (** minimal synchronisation *)

type spec =
  | Schema1  (** single access token; sequential statements *)
  | Schema2 of Engine.loop_control
      (** per-variable tokens; requires an alias-free program *)
  | Schema2_unsafe_no_loop_control
      (** Schema 2 without loop control: reproduces the Figure 8
          pathology on cyclic programs; for experiments only *)
  | Schema3 of cover_choice * Engine.loop_control
      (** per-cover-element tokens; sound under aliasing *)
  | Schema3_unsafe_bad_cover
      (** Schema 3 over the singleton cover with every access set
          truncated to its first element: an aliased program's stores
          proceed without the permission of the other elements they
          conflict with.  The store ordering the cover was meant to
          enforce is silently gone — only the per-run certificate
          notices.  For experiments only. *)
  | Schema2_opt of Engine.loop_control
      (** Section 4's direct construction without redundant switches *)

let spec_to_string = function
  | Schema1 -> "schema1"
  | Schema2 Engine.Barrier -> "schema2"
  | Schema2 Engine.Pipelined -> "schema2-pipelined"
  | Schema2_unsafe_no_loop_control -> "schema2-no-loop-control"
  | Schema3_unsafe_bad_cover -> "schema3-bad-cover"
  | Schema3 (cover, lc) ->
      Fmt.str "schema3-%s%s"
        (match cover with
        | Singleton -> "singleton"
        | Classes -> "classes"
        | Components -> "components")
        (match lc with Engine.Barrier -> "" | Engine.Pipelined -> "-pipelined")
  | Schema2_opt Engine.Barrier -> "schema2-opt"
  | Schema2_opt Engine.Pipelined -> "schema2-opt-pipelined"

exception Aliasing_unsupported of string
(** Raised when Schema 2 is requested for a program whose alias structure
    relates distinct names (Section 3 assumes aliasing away). *)

(** Section 6 transformations, applied where the eligibility analyses of
    {!Transforms} prove them sound.  Support matrix: [parallel_reads]
    composes with every schema; [value_passing] with Schemas 2 and 2-opt;
    [array_parallel] and [istructure] with Schema 2 (the
    track-everything engine). *)
type transforms = {
  value_passing : bool;  (** Section 6.1: scalars ride their tokens *)
  parallel_reads : bool;  (** Section 6.2: read runs execute in parallel *)
  array_parallel : bool;  (** Section 6.3 / Figure 14: overlapped stores *)
  istructure : bool;  (** Section 6.3: write-once arrays in I-structures *)
}

let no_transforms =
  {
    value_passing = false;
    parallel_reads = false;
    array_parallel = false;
    istructure = false;
  }

let all_transforms =
  {
    value_passing = true;
    parallel_reads = true;
    array_parallel = true;
    istructure = false;
    (* I-structures stay opt-in: legal IMP programs may read cells that
       are never written (initially zero), which would defer forever *)
  }

type compiled = {
  graph : Dfg.Graph.t;
  layout : Imp.Layout.t;
  cfg : Cfg.Core.t;  (** the translated CFG (loopified when applicable) *)
  spec : spec;
  ltree : (int * int option) list;
      (** loop-nesting forest [(loop id, parent)] matching the graph's
          gateway ids; [] when the program has no loops or the
          decomposition was unavailable *)
}

(** The schema-independent front end: everything the pipeline computes
    before schema dispatch, bundled so a cache (or a client compiling
    the same program under several schemas) pays for it once.  The loop
    decomposition is eagerly attempted and its outcome captured — not a
    [Lazy.t], which is unsafe to force from several domains — so a
    shared front never raises on construction and Schema 1 still
    accepts irreducible graphs. *)
type front = {
  f_program : Imp.Ast.program;
  f_layout : Imp.Layout.t;
  f_cfg : Cfg.Core.t;  (** as built (node-split if requested) *)
  f_vars : string list;  (** flattened-program token universe *)
  f_alias : Analysis.Alias.t;
  f_loops : (Cfg.Loopify.t, exn) result;
      (** interval/loop decomposition, or the [Irreducible] it raised *)
}

(** [cover_of choice alias] materialises the chosen cover. *)
let cover_of (choice : cover_choice) (alias : Analysis.Alias.t) :
    Analysis.Cover.t =
  match choice with
  | Singleton -> Analysis.Cover.singleton alias
  | Classes -> Analysis.Cover.classes alias
  | Components -> Analysis.Cover.components alias

(* The fractional-permission certificate: the token-universe names plus,
   per memory operation, the TRUE access set of its variable.  Crucially
   this is recomputed from the token map (hence from the alias/cover
   analysis), never read off the graph's own token wiring — a graph whose
   wiring under-collects cannot vouch for itself. *)
let make_cert (tokens : Token_map.t) (g : Dfg.Graph.t) : Dfg.Graph.cert =
  let require = Array.make (Dfg.Graph.num_nodes g) [] in
  for n = 0 to Dfg.Graph.num_nodes g - 1 do
    match Dfg.Graph.kind g n with
    | Dfg.Node.Load { var; _ } | Dfg.Node.Store { var; _ } ->
        require.(n) <- tokens.Token_map.access_set var
    | _ -> ()
  done;
  {
    Dfg.Graph.cert_elements = Array.copy tokens.Token_map.names;
    cert_require = require;
  }

(* Attach the certificate to a freshly translated graph.  [None] (leave
   the graph uncertified) when the translation used value passing,
   Figure 14 array overlap or I-structures: those transforms retire or
   copy access tokens outside the circulation discipline the certificate
   accounts for. *)
let certify (tokens : Token_map.t) (c : compiled) : compiled =
  Dfg.Graph.set_cert c.graph (Some (make_cert tokens c.graph));
  c

(** [front ?split_irreducible p] runs the schema-independent stages:
    typecheck, layout, CFG construction (optionally node-split until
    reducible), flattened-variable collection, alias analysis, and the
    interval/loop decomposition.
    @raise Imp.Typecheck.Error on ill-typed programs. *)
let front ?(split_irreducible = false) (p : Imp.Ast.program) : front =
  Imp.Typecheck.check_program p;
  let layout = Imp.Layout.of_program p in
  let g = Cfg.Builder.of_program p in
  (* The paper's footnote-5 recourse for irreducible graphs: copy code
     until interval analysis succeeds. *)
  let g =
    if split_irreducible && not (Cfg.Intervals.reducible g) then
      Cfg.Split.make_reducible g
    else g
  in
  (* token universes must cover the flattened program's variables
     (procedure locals, case-lowering temporaries) *)
  let vars = Imp.Flat.vars (Imp.Flat.flatten p) in
  let alias = Analysis.Alias.of_program p in
  let loops = try Ok (Cfg.Loopify.transform g) with e -> Error e in
  {
    f_program = p;
    f_layout = layout;
    f_cfg = g;
    f_vars = vars;
    f_alias = alias;
    f_loops = loops;
  }

(** [compile_front ?transforms fr spec] dispatches a front end to a
    schema.  Exceptions as for {!compile}. *)
let compile_front ?(transforms = no_transforms) (fr : front) (spec : spec) :
    compiled =
  let p = fr.f_program in
  let layout = fr.f_layout in
  let g = fr.f_cfg in
  let vars = fr.f_vars in
  let alias = fr.f_alias in
  let loopify () =
    match fr.f_loops with Ok lp -> lp | Error e -> raise e
  in
  (* the loop-nesting forest rides on every compiled graph so placement
     can cluster at loop granularity without re-running the front end *)
  let ltree =
    match fr.f_loops with
    | Ok lp ->
        Array.to_list
          (Array.map
             (fun (li : Cfg.Loopify.loop_info) ->
               (li.Cfg.Loopify.id, li.Cfg.Loopify.parent))
             lp.Cfg.Loopify.loops)
    | Error _ -> []
  in
  let check_no_alias () =
    if Analysis.Alias.has_aliasing alias then
      raise
        (Aliasing_unsupported
           "Schema 2 assumes alias-free programs; use Schema 3")
  in
  let base_mode =
    {
      Statement.default_mode with
      Statement.parallel_reads = transforms.parallel_reads;
    }
  in
  let value_vars_of lp =
    if transforms.value_passing then
      let eligible = Transforms.value_eligible p in
      (* async/I-structure arrays are never value variables (they are
         arrays); no conflict possible *)
      ignore lp;
      eligible
    else []
  in
  match spec with
  | Schema1 ->
      certify Token_map.single
        { graph = Engine.schema1 ~mode:base_mode g; layout; cfg = g; spec; ltree }
  | Schema2_unsafe_no_loop_control ->
      check_no_alias ();
      (* the certificate is attached to the broken translation too: the
         requirement metadata is true even when the wiring is not, which
         is exactly what lets the checker catch the Figure 8 pathology *)
      certify
        (Token_map.per_variable vars)
        {
          graph =
            Engine.translate ~mode:base_mode
              ~tokens:(Token_map.per_variable vars) g;
          layout;
          cfg = g;
          spec;
          ltree;
        }
  | Schema2 lc ->
      check_no_alias ();
      let lp = loopify () in
      let value_vars = value_vars_of lp in
      let async_arrays =
        if transforms.array_parallel then Transforms.async_candidates p lp
        else []
      in
      let istructs =
        if transforms.istructure then Transforms.istructure_candidates p lp
        else []
      in
      (* an array handled by I-structures needs no Figure 14 machinery *)
      let async_arrays =
        List.filter (fun (_, x) -> not (List.mem x istructs)) async_arrays
      in
      let mode =
        {
          base_mode with
          Statement.value_vars = (fun x -> List.mem x value_vars);
          Statement.istructure = (fun x -> List.mem x istructs);
        }
      in
      let tokens = Token_map.per_variable vars in
      let value_tokens =
        List.map
          (fun x -> (List.hd (tokens.Token_map.access_set x), x))
          value_vars
      in
      let c =
        {
          graph =
            Engine.translate ~loop_control:lc ~mode ~value_tokens ~async_arrays
              ~tokens ~loops:lp lp.Cfg.Loopify.graph;
          layout;
          cfg = lp.Cfg.Loopify.graph;
          spec;
          ltree;
        }
      in
      (* certified only when no token leaves the circulation discipline:
         no value passing, no Figure 14 overlap, no I-structures
         (effective lists, not requested flags) *)
      if value_tokens = [] && async_arrays = [] && istructs = [] then
        certify tokens c
      else c
  | Schema3 (choice, lc) ->
      let lp = loopify () in
      let cover = cover_of choice alias in
      certify
        (Token_map.of_cover alias cover)
        {
          graph =
            Engine.schema3 ~loop_control:lc ~mode:base_mode lp ~alias ~cover;
          layout;
          cfg = lp.Cfg.Loopify.graph;
          spec;
          ltree;
        }
  | Schema3_unsafe_bad_cover ->
      let lp = loopify () in
      let cover = cover_of Singleton alias in
      let tokens = Token_map.of_cover alias cover in
      (* the seeded miscompilation: wire every memory operation to collect
         only the FIRST element of its access set.  Alias-free programs
         are unaffected (singleton access sets); on aliased programs the
         store ordering between related names silently disappears.  The
         certificate is built from the untruncated map. *)
      let bad =
        {
          tokens with
          Token_map.access_set =
            (fun x -> [ List.hd (tokens.Token_map.access_set x) ]);
        }
      in
      certify tokens
        {
          graph =
            Engine.translate ~loop_control:Engine.Barrier ~mode:base_mode
              ~tokens:bad ~loops:lp lp.Cfg.Loopify.graph;
          layout;
          cfg = lp.Cfg.Loopify.graph;
          spec;
          ltree;
        }
  | Schema2_opt lc ->
      check_no_alias ();
      let lp = loopify () in
      let value_vars = value_vars_of lp in
      let c =
        {
          graph =
            Optimized.translate ~loop_control:lc ~mode:base_mode ~value_vars lp
              ~vars;
          layout;
          cfg = lp.Cfg.Loopify.graph;
          spec;
          ltree;
        }
      in
      if value_vars = [] then certify (Token_map.per_variable vars) c else c

(** [compile ?transforms ?split_irreducible spec p] compiles program [p]
    under [spec]: {!front} then {!compile_front}.
    @raise Aliasing_unsupported for Schema 2 on aliased programs.
    @raise Cfg.Intervals.Irreducible on irreducible control flow under
    Schemas 2/3 unless [split_irreducible] is set (Schema 1 accepts any
    CFG); with [split_irreducible], node splitting (code copying,
    {!Cfg.Split}) makes the graph reducible first. *)
let compile ?transforms ?split_irreducible (spec : spec)
    (p : Imp.Ast.program) : compiled =
  compile_front ?transforms (front ?split_irreducible p) spec

(** [compile_string ?transforms spec src] parses and compiles. *)
let compile_string ?transforms ?split_irreducible (spec : spec) (src : string)
    : compiled =
  compile ?transforms ?split_irreducible spec
    (Imp.Parser.program_of_string src)
