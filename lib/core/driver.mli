(** One-call compilation pipeline: IMP program -> dataflow graph.

    Bundles lowering, CFG construction, optional node splitting for
    irreducible graphs, loop-control insertion, alias structure and
    cover selection, transformation eligibility, and schema dispatch.
    The result carries the memory layout the graph was compiled against
    — everything {!Machine.Interp} needs to execute it. *)

type cover_choice =
  | Singleton  (** maximal parallelism *)
  | Classes  (** the alias-class cover *)
  | Components  (** minimal synchronisation *)

type spec =
  | Schema1  (** single access token; sequential statements *)
  | Schema2 of Engine.loop_control
      (** per-variable tokens; requires an alias-free program *)
  | Schema2_unsafe_no_loop_control
      (** Schema 2 without loop control: reproduces the Figure 8
          pathology on cyclic programs; for experiments only *)
  | Schema3 of cover_choice * Engine.loop_control
      (** per-cover-element tokens; sound under aliasing *)
  | Schema3_unsafe_bad_cover
      (** Schema 3 over the singleton cover with every access set
          truncated to its first element: on aliased programs the store
          ordering between related names silently disappears — only the
          per-run certificate notices.  For experiments only. *)
  | Schema2_opt of Engine.loop_control
      (** Section 4's direct construction without redundant switches *)

val spec_to_string : spec -> string

exception Aliasing_unsupported of string
(** Schema 2 was requested for a program whose alias structure relates
    distinct names (Section 3 assumes aliasing away). *)

(** Section 6 transformations, applied where {!Transforms} proves them
    sound.  Support matrix: [parallel_reads] composes with every schema;
    [value_passing] with Schemas 2 and 2-opt; [array_parallel] and
    [istructure] with Schema 2. *)
type transforms = {
  value_passing : bool;  (** 6.1: scalars ride their tokens *)
  parallel_reads : bool;  (** 6.2: read runs execute in parallel *)
  array_parallel : bool;  (** 6.3 / Figure 14: overlapped stores *)
  istructure : bool;  (** 6.3: write-once arrays in I-structures *)
}

val no_transforms : transforms

(** Everything except I-structures, which stay opt-in (legal IMP
    programs may read never-written cells, which would defer forever). *)
val all_transforms : transforms

type compiled = {
  graph : Dfg.Graph.t;
  layout : Imp.Layout.t;
  cfg : Cfg.Core.t;  (** the translated CFG (loopified when applicable) *)
  spec : spec;
  ltree : (int * int option) list;
      (** loop-nesting forest [(loop id, parent)] matching the graph's
          gateway ids — what {!Machine.Placement.Hier} clusters on; []
          when the program has no loops or the decomposition failed *)
}

(** The schema-independent front end: typecheck, layout, CFG (optionally
    node-split), flattened-variable universe, alias analysis, and the
    interval/loop decomposition.  The decomposition is attempted eagerly
    with its outcome captured (no [Lazy.t] — unsafe across domains), so
    a front can be computed once, cached, and dispatched to any number
    of schemas: Schema 1 ignores a failed decomposition, the others
    re-raise it at dispatch exactly as {!compile} always has. *)
type front = {
  f_program : Imp.Ast.program;
  f_layout : Imp.Layout.t;
  f_cfg : Cfg.Core.t;  (** as built (node-split if requested) *)
  f_vars : string list;  (** flattened-program token universe *)
  f_alias : Analysis.Alias.t;
  f_loops : (Cfg.Loopify.t, exn) result;
}

(** [front ?split_irreducible p] runs the schema-independent stages.
    @raise Imp.Typecheck.Error on ill-typed programs. *)
val front : ?split_irreducible:bool -> Imp.Ast.program -> front

(** [compile_front ?transforms fr spec] dispatches a front end to a
    schema.  Exceptions as for {!compile}. *)
val compile_front : ?transforms:transforms -> front -> spec -> compiled

(** [cover_of choice alias] materialises the chosen cover. *)
val cover_of : cover_choice -> Analysis.Alias.t -> Analysis.Cover.t

(** [compile ?transforms ?split_irreducible spec p] compiles [p].
    @raise Aliasing_unsupported for Schema 2 on aliased programs.
    @raise Cfg.Intervals.Irreducible on irreducible control flow under
    Schemas 2/3 unless [split_irreducible] makes the graph reducible by
    node splitting first ({!Cfg.Split}); Schema 1 accepts any CFG.
    @raise Imp.Typecheck.Error on ill-typed programs. *)
val compile :
  ?transforms:transforms ->
  ?split_irreducible:bool ->
  spec ->
  Imp.Ast.program ->
  compiled

(** [compile_string ?transforms ?split_irreducible spec src] parses and
    compiles. *)
val compile_string :
  ?transforms:transforms ->
  ?split_irreducible:bool ->
  spec ->
  string ->
  compiled
