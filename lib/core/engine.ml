(** The track-everything translation engine: Schemas 1, 2 and 3, plus the
    Section 6 parallelizing transformations.

    Under these schemas every access token follows the full control path:
    forks switch {e all} tokens, joins merge all tokens, loop entries and
    exits manage all tokens (paper, Sections 2.3, 3 and 5).  The schemas
    differ only in the token universe ({!Token_map}):

    - {!Token_map.single}       -> Schema 1,
    - {!Token_map.per_variable} -> Schema 2,
    - {!Token_map.of_cover}     -> Schema 3.

    Cyclic graphs must be loop-controlled first ({!Cfg.Loopify}); passing
    a cyclic graph without loop information produces the Figure 8
    pathology -- a graph whose execution violates the single-token-per-arc
    discipline, which the machine then detects.  Loop control comes in two
    strategies: [Barrier] implements the paper's black-box contract (the
    complete token set enters and leaves each loop-control node together);
    [Pipelined] gives each token its own gateway, allowing a variable's
    token to advance to the next iteration as soon as its own operations
    and the loop predicate allow.

    Section 6 hooks:
    - [mode] is passed to the statement compiler (value passing, parallel
      reads, I-structures);
    - [value_tokens] lists (token, variable) pairs whose token carries the
      variable's value: the engine emits a [Const 0] prologue (variables
      start at zero) and a write-back store epilogue so the final memory
      is observable;
    - [async_arrays] lists (loop, array) pairs proven store-independent
      (Fig. 14): the array's store detaches from its token, and a fresh
      {e completion token} per pair circulates with the loop, synchronised
      with each iteration's store; the array's token is released from the
      loop exit only once all stores have completed. *)

type loop_control =
  | Barrier  (** one arity-k gateway per loop: iteration-boundary barrier *)
  | Pipelined  (** k arity-1 gateways: tokens advance independently *)

module B = Dfg.Graph.Builder

type seg =
  | S_start of int  (** the Start node *)
  | S_end of int  (** the End node *)
  | S_chain of Statement.chain
  | S_fork of Statement.fork_chain
  | S_join of Statement.terminal array  (** per token: the merge node port *)
  | S_entry of {
      e_initial : Statement.terminal array;
      e_back : Statement.terminal array;
      e_outs : Statement.terminal array;
    }
  | S_exit of {
      x_ins : Statement.terminal array;
      x_outs : Statement.terminal array;
    }

exception Unsupported of string

let translate ?(loop_control = Barrier) ?(mode = Statement.default_mode)
    ?(value_tokens : (int * string) list = [])
    ?(async_arrays : (int * string) list = []) ~(tokens : Token_map.t)
    ?(loops : Cfg.Loopify.t option) (g : Cfg.Core.t) : Dfg.Graph.t =
  (* Extend the universe with one completion token per async pair. *)
  let base_k = Token_map.arity tokens in
  let tokens =
    if async_arrays = [] then tokens
    else
      {
        tokens with
        Token_map.names =
          Array.append tokens.Token_map.names
            (Array.of_list
               (List.map
                  (fun (l, x) -> Fmt.str "completion_%s_loop%d" x l)
                  async_arrays));
      }
  in
  let comp_index =
    let table = List.mapi (fun j lx -> (lx, base_k + j)) async_arrays in
    fun lx -> List.assoc lx table
  in
  let k = Token_map.arity tokens in
  let b = B.create () in
  let all_tokens = Token_map.all tokens in
  let in_body l n =
    match loops with
    | Some t -> t.Cfg.Loopify.in_body.(l).(n)
    | None -> raise (Unsupported "loop-control node without loop information")
  in
  let nn = Cfg.Core.num_nodes g in
  (* Build every node's internal segment. *)
  let segs =
    Array.init nn (fun v ->
        match Cfg.Core.kind g v with
        | Cfg.Core.Start -> S_start (B.add b (Dfg.Node.Start k))
        | Cfg.Core.End -> S_end (B.add b (Dfg.Node.End k))
        | Cfg.Core.Assign (lv, e) -> (
            (* Is this the independent array store of an async pair? *)
            let marked =
              match (lv, loops) with
              | Imp.Ast.Lindex (x, _), Some lp ->
                  List.find_opt
                    (fun (l, ax) ->
                      ax = x && lp.Cfg.Loopify.in_body.(l).(v))
                    async_arrays
              | _ -> None
            in
            match marked with
            | None -> S_chain (Statement.assign b ~tokens ~mode lv e)
            | Some (l, x) ->
                let mode' =
                  { mode with Statement.async_stores = (fun y -> y = x) }
                in
                let chain = Statement.assign b ~tokens ~mode:mode' lv e in
                (* Figure 14(b/c): the store's completion synchronises
                   with the circulating completion token. *)
                let completion = List.assoc x chain.Statement.async in
                let s = B.add b ~label:"store completed" (Dfg.Node.Synch 2) in
                B.connect b ~dummy:true completion (s, 1);
                let comp = comp_index (l, x) in
                chain.Statement.entries.(comp) <-
                  chain.Statement.entries.(comp) @ [ (s, 0) ];
                chain.Statement.exits.(comp) <- Some (s, 0);
                S_chain chain)
        | Cfg.Core.Fork p ->
            S_fork (Statement.fork b ~tokens ~mode ~switched:all_tokens p)
        | Cfg.Core.Join ->
            S_join
              (Array.init k (fun _ ->
                   let m = B.add b Dfg.Node.Merge in
                   (m, 0)))
        | Cfg.Core.Loop_entry l -> (
            match loop_control with
            | Barrier ->
                let n =
                  B.add b
                    ~label:(Fmt.str "loop-entry %d (barrier)" l)
                    (Dfg.Node.Loop_entry { loop = l; arity = k })
                in
                S_entry
                  {
                    e_initial = Array.init k (fun i -> (n, i));
                    e_back = Array.init k (fun i -> (n, k + i));
                    e_outs = Array.init k (fun i -> (n, i));
                  }
            | Pipelined ->
                let gates =
                  Array.init k (fun i ->
                      B.add b
                        ~label:
                          (Fmt.str "loop-entry %d (%s)" l
                             (Token_map.name tokens i))
                        (Dfg.Node.Loop_entry { loop = l; arity = 1 }))
                in
                S_entry
                  {
                    e_initial = Array.map (fun n -> (n, 0)) gates;
                    e_back = Array.map (fun n -> (n, 1)) gates;
                    e_outs = Array.map (fun n -> (n, 0)) gates;
                  })
        | Cfg.Core.Loop_exit l ->
            let mk_exit () =
              match loop_control with
              | Barrier ->
                  let n =
                    B.add b
                      ~label:(Fmt.str "loop-exit %d (barrier)" l)
                      (Dfg.Node.Loop_exit { loop = l; arity = k })
                  in
                  ( Array.init k (fun i -> (n, i)),
                    Array.init k (fun i -> (n, i)) )
              | Pipelined ->
                  let gates =
                    Array.init k (fun i ->
                        B.add b
                          ~label:
                            (Fmt.str "loop-exit %d (%s)" l
                               (Token_map.name tokens i))
                          (Dfg.Node.Loop_exit { loop = l; arity = 1 }))
                  in
                  ( Array.map (fun n -> (n, 0)) gates,
                    Array.map (fun n -> (n, 0)) gates )
            in
            let x_ins, x_outs = mk_exit () in
            (* Release an async array's token only when every store has
               completed: synch it with the completion token at the loop
               boundary. *)
            List.iter
              (fun (al, ax) ->
                if al = l then begin
                  let comp = comp_index (al, ax) in
                  let xtau =
                    match tokens.Token_map.access_set ax with
                    | [ tau ] -> tau
                    | _ ->
                        raise
                          (Unsupported
                             "async arrays need a private access token")
                  in
                  let s =
                    B.add b ~label:(Fmt.str "all stores of %s done" ax)
                      (Dfg.Node.Synch 2)
                  in
                  B.connect b ~dummy:true x_outs.(xtau) (s, 0);
                  B.connect b ~dummy:true x_outs.(comp) (s, 1);
                  x_outs.(xtau) <- (s, 0);
                  x_outs.(comp) <- (s, 0)
                end)
              async_arrays;
            S_exit { x_ins; x_outs })
  in
  (* Value-passing prologue: the initial token of a value variable is its
     initial value, 0, triggered by the start token. *)
  let start_term = Array.make k None in
  (match segs.(g.Cfg.Core.start) with
  | S_start n ->
      List.iter
        (fun (tau, x) ->
          let c =
            B.add b
              ~label:(Fmt.str "initial %s" x)
              (Dfg.Node.Const (Imp.Value.Int 0))
          in
          B.connect b ~dummy:true (n, tau) (c, 0);
          start_term.(tau) <- Some (c, 0))
        value_tokens
  | _ -> assert false);
  (* Resolve the output terminal of (node, out-direction, token),
     following pass-throughs backwards. *)
  let rec resolve (u : int) (dir : bool) (tau : int) : Statement.terminal =
    match segs.(u) with
    | S_start n -> (
        match start_term.(tau) with Some t -> t | None -> (n, tau))
    | S_end _ -> invalid_arg "resolve: End has no outputs"
    | S_join ports ->
        let m, _ = ports.(tau) in
        (m, 0)
    | S_entry e -> e.e_outs.(tau)
    | S_exit x -> x.x_outs.(tau)
    | S_fork f -> (
        match f.Statement.f_outs.(tau) with
        | Statement.F_switched (t, fl) -> if dir then t else fl
        | Statement.F_straight _ | Statement.F_pass ->
            (* everywhere-mode forks switch every token *)
            assert false)
    | S_chain c -> (
        match c.Statement.exits.(tau) with
        | Some t -> t
        | None -> resolve_through_preds u tau)
  and resolve_through_preds u tau =
    match Cfg.Core.pred g u with
    | [ (p, d) ] -> resolve p d tau
    | _ ->
        invalid_arg
          (Fmt.str "pass-through node %d has %d predecessors" u
             (List.length (Cfg.Core.pred g u)))
  in
  (* Feed a list of source terminals into a set of input ports: a single
     source fans out directly; several sources are funnelled through a
     merge first.  [ports] receive token [tau]'s permission (labelled
     arcs); [untagged] ports (constant triggers) are activated by the
     same token but carry none. *)
  let feed (tau : int) (sources : Statement.terminal list)
      ?(untagged = []) (ports : Statement.terminal list) : unit =
    if ports <> [] || untagged <> [] then begin
      let src =
        match sources with
        | [] -> invalid_arg "feed: no sources"
        | [ s ] -> s
        | many ->
            let m = B.add b Dfg.Node.Merge in
            List.iter
              (fun s -> B.connect b ~dummy:true ~tokens:[ tau ] s (m, 0))
              many;
            (m, 0)
      in
      List.iter (fun p -> B.connect b ~dummy:true ~tokens:[ tau ] src p) ports;
      List.iter (fun p -> B.connect b ~dummy:true src p) untagged
    end
  in
  (* Wire every node's inputs from its predecessors. *)
  for v = 0 to nn - 1 do
    let preds = Cfg.Core.pred g v in
    let sources_for tau (ps : (int * bool) list) =
      List.map (fun (u, d) -> resolve u d tau) ps
    in
    match segs.(v) with
    | S_start _ -> ()
    | S_end n ->
        (* the conventional start->end edge (start's false direction)
           carries no tokens: Start emits only along true *)
        let preds =
          List.filter
            (fun (u, d) -> not (u = g.Cfg.Core.start && d = false))
            preds
        in
        List.iter
          (fun tau ->
            let sources = sources_for tau preds in
            match List.assoc_opt tau value_tokens with
            | Some x ->
                (* value-passing epilogue: write the final value back so
                   the store is observable *)
                let st =
                  B.add b
                    ~label:(Fmt.str "writeback %s" x)
                    (Dfg.Node.Store
                       { var = x; indexed = false; mem = Dfg.Node.Plain })
                in
                let src =
                  match sources with
                  | [ s ] -> s
                  | many ->
                      let m = B.add b Dfg.Node.Merge in
                      List.iter
                        (fun s -> B.connect b ~dummy:true s (m, 0))
                        many;
                      (m, 0)
                in
                (* the value token is both the access permission and the
                   value: Section 6.1's collapse of the two roles *)
                B.connect b ~dummy:true src (st, 0);
                B.connect b src (st, 1);
                B.connect b ~dummy:true (st, 0) (n, tau)
            | None -> feed tau sources [ (n, tau) ])
          all_tokens
    | S_join ports ->
        List.iter
          (fun tau ->
            (* merges accept several arcs on their single port directly *)
            List.iter
              (fun s -> B.connect b ~dummy:true ~tokens:[ tau ] s ports.(tau))
              (sources_for tau preds))
          all_tokens
    | S_chain c ->
        List.iter
          (fun tau ->
            if
              c.Statement.entries.(tau) <> []
              || c.Statement.untagged.(tau) <> []
            then
              feed tau (sources_for tau preds)
                ~untagged:c.Statement.untagged.(tau)
                c.Statement.entries.(tau))
          all_tokens
    | S_fork f ->
        List.iter
          (fun tau ->
            if
              f.Statement.f_entries.(tau) <> []
              || f.Statement.f_untagged.(tau) <> []
            then
              feed tau (sources_for tau preds)
                ~untagged:f.Statement.f_untagged.(tau)
                f.Statement.f_entries.(tau))
          all_tokens
    | S_entry e ->
        let l =
          match Cfg.Core.kind g v with
          | Cfg.Core.Loop_entry l -> l
          | _ -> assert false
        in
        let initial_preds, back_preds =
          List.partition (fun (u, _) -> not (in_body l u)) preds
        in
        List.iter
          (fun tau ->
            feed tau (sources_for tau initial_preds) [ e.e_initial.(tau) ];
            feed tau (sources_for tau back_preds) [ e.e_back.(tau) ])
          all_tokens
    | S_exit x ->
        List.iter
          (fun tau -> feed tau (sources_for tau preds) [ x.x_ins.(tau) ])
          all_tokens
  done;
  B.finish b

(** [schema1 g] -- Figure 3's translation: one access token sequencing
    everything.  Works on the plain (non-loopified) CFG: sequential
    execution needs no loop control. *)
let schema1 ?mode (g : Cfg.Core.t) : Dfg.Graph.t =
  translate ?mode ~tokens:Token_map.single g

(** [schema2 ?loop_control lp] -- Figure 6's translation over a loopified
    CFG, one token per variable.  Assumes no aliasing (paper, Section 3);
    use {!schema3} otherwise. *)
let schema2 ?loop_control ?mode ?value_tokens ?async_arrays
    (lp : Cfg.Loopify.t) ~(vars : string list) : Dfg.Graph.t =
  translate ?loop_control ?mode ?value_tokens ?async_arrays
    ~tokens:(Token_map.per_variable vars) ~loops:lp lp.Cfg.Loopify.graph

(** [schema3 ?loop_control lp ~alias ~cover] -- Figure 12's translation:
    one token per cover element, operations collect their access sets. *)
let schema3 ?loop_control ?mode (lp : Cfg.Loopify.t)
    ~(alias : Analysis.Alias.t) ~(cover : Analysis.Cover.t) : Dfg.Graph.t =
  translate ?loop_control ?mode ~tokens:(Token_map.of_cover alias cover)
    ~loops:lp lp.Cfg.Loopify.graph
