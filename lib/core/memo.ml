(* Process-global pipeline memoization (see the interface).

   Capacities are sized above the working set of every in-repo client
   (oracle matrix, bench grid, serve batches): eviction churn between
   lookups of the same key would both waste work and make the hit/miss
   counters scheduling-dependent, so we only want it as a backstop
   against unbounded shrink-loop populations. *)

let fronts : Driver.front Service.Cache.t =
  Service.Cache.create ~capacity:1024 ()

let graphs : Driver.compiled Service.Cache.t =
  Service.Cache.create ~capacity:2048 ()

let refs : Imp.Memory.t Service.Cache.t =
  Service.Cache.create ~capacity:1024 ()

(* Parsed programs keyed by raw source text, so repeated serve jobs on
   the same source skip the parser too.  Shares the fronts cache's
   counters conceptually but needs its own value type. *)
let parses : Imp.Ast.program Service.Cache.t =
  Service.Cache.create ~capacity:1024 ()

(* The AST's content identity: a structural serialization.  Marshal is
   deterministic for a given structure, and a miss from unequal sharing
   costs one recompile while a textual canonicalisation would cost a
   pretty-print plus the roundtrip assumption. *)
let program_material (p : Imp.Ast.program) : string = Marshal.to_string p []

let transforms_material (t : Driver.transforms) : string =
  Printf.sprintf "v%br%ba%bi%b" t.Driver.value_passing
    t.Driver.parallel_reads t.Driver.array_parallel t.Driver.istructure

let front ?(split_irreducible = false) (p : Imp.Ast.program) : Driver.front =
  let key =
    Service.Hash.key
      [ "front"; program_material p; string_of_bool split_irreducible ]
  in
  Service.Cache.find_or_compute fronts ~key (fun () ->
      Driver.front ~split_irreducible p)

let parse_source (src : string) : Imp.Ast.program =
  let key = Service.Hash.key [ "src"; src ] in
  Service.Cache.find_or_compute parses ~key (fun () ->
      Imp.Parser.program_of_string src)

let front_of_source ?split_irreducible (src : string) : Driver.front =
  front ?split_irreducible (parse_source src)

let compile ?(transforms = Driver.no_transforms) ?(optimize = false)
    ?(split_irreducible = false) (spec : Driver.spec) (p : Imp.Ast.program) :
    Driver.compiled =
  let key =
    Service.Hash.key
      [
        "compiled";
        program_material p;
        Driver.spec_to_string spec;
        transforms_material transforms;
        string_of_bool optimize;
        string_of_bool split_irreducible;
      ]
  in
  Service.Cache.find_or_compute graphs ~key (fun () ->
      let fr = front ~split_irreducible p in
      let c = Driver.compile_front ~transforms fr spec in
      if optimize then
        { c with Driver.graph = Dfg.Opt.run (Dfg.Simplify.run c.Driver.graph) }
      else c)

let compile_source ?transforms ?optimize ?split_irreducible
    (spec : Driver.spec) (src : string) : Driver.compiled =
  compile ?transforms ?optimize ?split_irreducible spec (parse_source src)

let reference ?(fuel = 1_000_000) (p : Imp.Ast.program) : Imp.Memory.t =
  let key =
    Service.Hash.key [ "reference"; program_material p; string_of_int fuel ]
  in
  let m =
    Service.Cache.find_or_compute refs ~key (fun () ->
        Imp.Eval.run_program ~fuel p)
  in
  Imp.Memory.copy m

let stats () : Service.Cache.stats =
  Service.Cache.add
    (Service.Cache.add (Service.Cache.stats fronts) (Service.Cache.stats graphs))
    (Service.Cache.add (Service.Cache.stats refs) (Service.Cache.stats parses))

let reset () =
  Service.Cache.reset fronts;
  Service.Cache.reset graphs;
  Service.Cache.reset refs;
  Service.Cache.reset parses
