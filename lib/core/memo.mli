(** Process-global memoization of the compilation pipeline.

    Three content-addressed, single-flight caches ({!Service.Cache})
    sit under the oracle, the bench harness, and the job server:

    - {b fronts}: program -> {!Driver.front} (typecheck, layout, CFG,
      alias analysis, interval/loop decomposition).  Compiling one
      program under the oracle's 20+ schema combos pays for the front
      end once.
    - {b compiled}: (program, spec, transforms, optimize) ->
      {!Driver.compiled}.  Per-schema translation runs once; every
      subsequent execution of the same combo reuses the graph.
    - {b reference}: (program, fuel) -> the reference interpreter's
      final store.  Every combo of a program compares against the same
      store; evaluating it per combo was pure waste.

    Keys are {!Service.Hash} digests of the raw content ([Marshal]ed
    AST for programs, raw text for sources — whitespace or comment
    edits deliberately produce distinct keys; see {!Service.Hash}).
    Exceptions ([Irreducible], [Aliasing_unsupported], typecheck
    errors, reference out-of-fuel) are cached and re-raised, so callers
    observe exactly the uncached behaviour.

    Shared results are {b read-only by contract}: execution never
    mutates a graph, and the only mutator in the tree
    ([Dfg.Graph.set_cert], used by [--no-certify] and the bench
    strip/restore sweeps) must not be applied to a graph obtained here
    unless the caller restores it before anyone else can look. *)

val front : ?split_irreducible:bool -> Imp.Ast.program -> Driver.front
(** Memoized {!Driver.front}. *)

val parse_source : string -> Imp.Ast.program
(** Memoized parse, keyed by the raw source text.  Raises whatever the
    parser raises on syntax errors (cached, like every failure). *)

val front_of_source : ?split_irreducible:bool -> string -> Driver.front
(** Parse (raw-text key) then memoized front. *)

val compile :
  ?transforms:Driver.transforms ->
  ?optimize:bool ->
  ?split_irreducible:bool ->
  Driver.spec ->
  Imp.Ast.program ->
  Driver.compiled
(** Memoized {!Driver.compile}; with [optimize] the
    simplify+optimize passes are folded into the cached artifact. *)

val compile_source :
  ?transforms:Driver.transforms ->
  ?optimize:bool ->
  ?split_irreducible:bool ->
  Driver.spec ->
  string ->
  Driver.compiled
(** [compile] from source text (raw-text front key). *)

val reference : ?fuel:int -> Imp.Ast.program -> Imp.Memory.t
(** Memoized reference-interpreter run ([fuel] defaults to 1_000_000,
    the oracle's budget).  Returns a private copy of the cached store —
    callers may mutate their copy freely.
    @raise Imp.Eval.Out_of_fuel as the uncached evaluator would. *)

val stats : unit -> Service.Cache.stats
(** Aggregated counters across the three caches. *)

val reset : unit -> unit
(** Drop all cached artifacts and zero the counters (tests). *)
