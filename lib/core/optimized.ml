(** The optimized direct construction (paper, Section 4.2): a dataflow
    graph with no redundant switches, built from switch-placement
    information (Figure 10) and source vectors (Figure 11).

    Differences from the track-everything {!Engine}:

    - a fork gets a switch for [access_x] only when some node referencing
      [x] lies between the fork and its immediate postdominator
      (Theorem 1: iff the fork is in CD⁺ of such a node);
    - joins get a merge for [access_x] only when the source vector has
      more than one element -- a single-source join is no operator at all;
    - access tokens bypass entire loops that do not need them: loop entry
      and exit nodes manage only the loop's variable set.

    The loop variable set is a least fixpoint, not just the syntactically
    referenced variables: if a fork {e inside} the loop needs a switch for
    [x] (possible with multi-exit loops, where a post-loop consumer is
    control dependent on an in-loop fork), then [x]'s token participates
    in the iteration and must be context-managed by the loop's entry and
    exits.  The paper's presentation leaves this implicit in the
    loop-control black boxes; the fixpoint below makes it explicit. *)

module B = Dfg.Graph.Builder

type source = int * bool
(** CFG-level token source: (node, out-direction). *)

(** [loop_var_sets lp ~vars] computes the per-loop managed-variable
    fixpoint described above.  Returns the sets plus the final switch
    placement computed against them. *)
let loop_var_sets (lp : Cfg.Loopify.t) ~(vars : string list) :
    string list array * Analysis.Switch_place.t =
  let g = lp.Cfg.Loopify.graph in
  let nloops = Array.length lp.Cfg.Loopify.loops in
  let varset =
    Array.init nloops (fun l -> lp.Cfg.Loopify.loops.(l).Cfg.Loopify.vars)
  in
  let refs n =
    match Cfg.Core.kind g n with
    | Cfg.Core.Loop_entry l | Cfg.Core.Loop_exit l -> varset.(l)
    | _ -> Cfg.Core.referenced_vars g n
  in
  let placement = ref (Analysis.Switch_place.compute ~refs g ~vars) in
  let changed = ref true in
  while !changed do
    changed := false;
    (* 1. close under body references (nested entries/exits included) *)
    for l = 0 to nloops - 1 do
      let s =
        List.concat_map refs lp.Cfg.Loopify.loops.(l).Cfg.Loopify.body
        |> List.sort_uniq compare
      in
      if s <> varset.(l) then begin
        varset.(l) <- s;
        changed := true
      end
    done;
    (* 2. recompute placement against the current reference map *)
    placement := Analysis.Switch_place.compute ~refs g ~vars;
    (* 3. variables switched at an in-body fork must be loop-managed *)
    for l = 0 to nloops - 1 do
      let extra =
        List.concat_map
          (fun n ->
            if Cfg.Core.is_fork g n then
              List.filter
                (fun x -> Analysis.Switch_place.needs_switch !placement n x)
                vars
            else [])
          lp.Cfg.Loopify.loops.(l).Cfg.Loopify.body
      in
      let s = List.sort_uniq compare (extra @ varset.(l)) in
      if s <> varset.(l) then begin
        varset.(l) <- s;
        changed := true
      end
    done
  done;
  (varset, !placement)

(* Topological order of the loopified CFG ignoring back edges (edges from
   a loop body into that loop's entry). *)
let forward_topo (lp : Cfg.Loopify.t) : int list =
  let g = lp.Cfg.Loopify.graph in
  let nn = Cfg.Core.num_nodes g in
  let is_back u v =
    match Cfg.Core.kind g v with
    | Cfg.Core.Loop_entry l -> lp.Cfg.Loopify.in_body.(l).(u)
    | _ -> false
  in
  let indeg = Array.make nn 0 in
  for u = 0 to nn - 1 do
    List.iter
      (fun e ->
        if not (is_back u e.Cfg.Core.dst) then
          indeg.(e.Cfg.Core.dst) <- indeg.(e.Cfg.Core.dst) + 1)
      (Cfg.Core.succ g u)
  done;
  let q = Queue.create () in
  Queue.add g.Cfg.Core.start q;
  let out = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    out := u :: !out;
    incr seen;
    List.iter
      (fun e ->
        let v = e.Cfg.Core.dst in
        if not (is_back u v) then begin
          indeg.(v) <- indeg.(v) - 1;
          if indeg.(v) = 0 then Queue.add v q
        end)
      (Cfg.Core.succ g u)
  done;
  if !seen <> nn then
    invalid_arg "Optimized.forward_topo: graph not reducible after loopify";
  List.rev !out

(** [translate ?loop_control lp ~vars] builds the optimized dataflow
    graph for the loopified CFG [lp] with one access token per variable
    (the Section 4 construction; aliasing-free programs). *)
let translate ?(loop_control = Engine.Barrier) ?(mode = Statement.default_mode)
    ?(value_vars : string list = [])
    ?(merge_report : (int * string) list ref option) (lp : Cfg.Loopify.t)
    ~(vars : string list) : Dfg.Graph.t =
  let g = lp.Cfg.Loopify.graph in
  let vars = List.sort_uniq compare vars in
  if vars = [] then
    (* degenerate variable-free program: fall back to a single token *)
    Engine.translate ~loop_control ~tokens:Token_map.single ~loops:lp g
  else
  let mode =
    { mode with Statement.value_vars = (fun x -> List.mem x value_vars) }
  in
  let tokens = Token_map.per_variable vars in
  let nvars = Token_map.arity tokens in
  let var_index =
    let h = Hashtbl.create 16 in
    List.iteri (fun i x -> Hashtbl.replace h x i) vars;
    fun x -> Hashtbl.find h x
  in
  let varset, placement = loop_var_sets lp ~vars in
  let b = B.create () in
  let nn = Cfg.Core.num_nodes g in
  (* source vectors and back-edge source vectors *)
  let sv : source list array array = Array.make_matrix nn nvars [] in
  let svback : source list array array = Array.make_matrix nn nvars [] in
  let add_source arr n x (s : source) =
    let i = var_index x in
    if not (List.mem s arr.(n).(i)) then arr.(n).(i) <- arr.(n).(i) @ [ s ]
  in
  let union_sources arr n x (ss : source list) =
    List.iter (add_source arr n x) ss
  in
  let is_back u v =
    match Cfg.Core.kind g v with
    | Cfg.Core.Loop_entry l -> lp.Cfg.Loopify.in_body.(l).(u)
    | _ -> false
  in
  (* CFG-level source -> DFG terminal; filled as nodes are built *)
  let out_term : (int * string * bool, Statement.terminal) Hashtbl.t =
    Hashtbl.create 64
  in
  let term_of x ((m, d) : source) : Statement.terminal =
    match Hashtbl.find_opt out_term (m, x, d) with
    | Some t -> t
    | None ->
        invalid_arg
          (Fmt.str "no terminal for access_%s at node %d dir %b" x m d)
  in
  (* Feed sources into input ports (merge when several sources).
     [ports] receive the variable's token permission; [untagged] ports
     (constant triggers) are activated without it. *)
  let feed x (sources : source list) ?(untagged = [])
      (ports : Statement.terminal list) : unit =
    if ports <> [] || untagged <> [] then begin
      let tau = var_index x in
      let src =
        match sources with
        | [] ->
            invalid_arg (Fmt.str "no sources for access_%s" x)
        | [ s ] -> term_of x s
        | many ->
            let m = B.add b ~label:(Fmt.str "merge %s" x) Dfg.Node.Merge in
            List.iter
              (fun s ->
                B.connect b ~dummy:true ~tokens:[ tau ] (term_of x s) (m, 0))
              many;
            (m, 0)
      in
      List.iter (fun p -> B.connect b ~dummy:true ~tokens:[ tau ] src p) ports;
      List.iter (fun p -> B.connect b ~dummy:true src p) untagged
    end
  in
  (* propagate [srcs] for x to successor S of N along direction d *)
  let propagate n x srcs =
    List.iter
      (fun e ->
        let s = e.Cfg.Core.dst in
        if is_back n s then union_sources svback s x srcs
        else union_sources sv s x srcs)
      (Cfg.Core.succ g n)
  in
  let propagate_dir n dir x srcs =
    List.iter
      (fun e ->
        if e.Cfg.Core.dir = dir then begin
          let s = e.Cfg.Core.dst in
          if is_back n s then union_sources svback s x srcs
          else union_sources sv s x srcs
        end)
      (Cfg.Core.succ g n)
  in
  (* deferred wiring of loop-entry back ports, done after the pass *)
  let deferred_back : (int * string * Statement.terminal) list ref = ref [] in
  let order = forward_topo lp in
  let end_node = ref (-1) in
  List.iter
    (fun n ->
      match Cfg.Core.kind g n with
      | Cfg.Core.Start ->
          let s = B.add b (Dfg.Node.Start nvars) in
          List.iteri
            (fun i x ->
              if List.mem x value_vars then begin
                (* value-passing prologue: the initial token carries the
                   variable's initial value, 0 *)
                let c =
                  B.add b
                    ~label:(Fmt.str "initial %s" x)
                    (Dfg.Node.Const (Imp.Value.Int 0))
                in
                B.connect b ~dummy:true (s, i) (c, 0);
                Hashtbl.replace out_term (n, x, true) (c, 0)
              end
              else Hashtbl.replace out_term (n, x, true) (s, i))
            vars;
          (* start's true successor gets start as source for every
             variable; the conventional start->end edge carries nothing *)
          List.iter (fun x -> propagate_dir n true x [ (n, true) ]) vars
      | Cfg.Core.End ->
          let e = B.add b (Dfg.Node.End nvars) in
          end_node := e;
          List.iteri
            (fun i x ->
              if List.mem x value_vars then begin
                (* value-passing epilogue: write the final value back *)
                let st =
                  B.add b
                    ~label:(Fmt.str "writeback %s" x)
                    (Dfg.Node.Store
                       { var = x; indexed = false; mem = Dfg.Node.Plain })
                in
                let src =
                  match sv.(n).(var_index x) with
                  | [ s ] -> term_of x s
                  | many ->
                      let m = B.add b Dfg.Node.Merge in
                      List.iter
                        (fun s ->
                          B.connect b ~dummy:true (term_of x s) (m, 0))
                        many;
                      (m, 0)
                in
                B.connect b ~dummy:true src (st, 0);
                B.connect b src (st, 1);
                B.connect b ~dummy:true (st, 0) (e, i)
              end
              else feed x sv.(n).(var_index x) [ (e, i) ])
            vars
      | Cfg.Core.Assign (lv, rhs) ->
          let chain = Statement.assign b ~tokens ~mode lv rhs in
          List.iter
            (fun x ->
              let i = var_index x in
              if
                chain.Statement.entries.(i) <> []
                || chain.Statement.untagged.(i) <> []
              then begin
                feed x sv.(n).(i)
                  ~untagged:chain.Statement.untagged.(i)
                  chain.Statement.entries.(i);
                match chain.Statement.exits.(i) with
                | Some t ->
                    Hashtbl.replace out_term (n, x, true) t;
                    propagate n x [ (n, true) ]
                | None ->
                    (* detached operations took a copy; the token itself
                       passes through *)
                    propagate n x sv.(n).(i)
              end
              else propagate n x sv.(n).(i))
            vars
      | Cfg.Core.Fork p ->
          let cd = placement.Analysis.Switch_place.cdeps in
          let pdom = cd.Analysis.Control_dep.pdom in
          let ipdom = Analysis.Dom.idom pdom n in
          let switched =
            List.filter
              (fun x -> Analysis.Switch_place.needs_switch placement n x)
              vars
          in
          let switched_idx = List.map var_index switched in
          if switched = [] then
            (* a fork that switches nothing is dead for dataflow purposes
               (e.g. both branches reach the same join): no predicate is
               evaluated, and every token skips to the postdominator *)
            List.iter
              (fun x ->
                if is_back n ipdom then
                  union_sources svback ipdom x sv.(n).(var_index x)
                else union_sources sv ipdom x sv.(n).(var_index x))
              vars
          else begin
          let fc =
            Statement.fork b ~tokens ~mode ~switched:switched_idx p
          in
          List.iter
            (fun x ->
              let i = var_index x in
              if
                fc.Statement.f_entries.(i) <> []
                || fc.Statement.f_untagged.(i) <> []
              then
                feed x sv.(n).(i)
                  ~untagged:fc.Statement.f_untagged.(i)
                  fc.Statement.f_entries.(i);
              match fc.Statement.f_outs.(i) with
              | Statement.F_switched (t, f) ->
                  Hashtbl.replace out_term (n, x, true) t;
                  Hashtbl.replace out_term (n, x, false) f;
                  propagate_dir n true x [ (n, true) ];
                  propagate_dir n false x [ (n, false) ]
              | Statement.F_straight t ->
                  (* read by the predicate but not switched: flows
                     directly to the immediate postdominator *)
                  Hashtbl.replace out_term (n, x, true) t;
                  if is_back n ipdom then
                    union_sources svback ipdom x [ (n, true) ]
                  else union_sources sv ipdom x [ (n, true) ]
              | Statement.F_pass ->
                  (* untouched: sources skip to the postdominator *)
                  if is_back n ipdom then
                    union_sources svback ipdom x sv.(n).(i)
                  else union_sources sv ipdom x sv.(n).(i))
            vars
          end
      | Cfg.Core.Join ->
          List.iter
            (fun x ->
              let i = var_index x in
              match sv.(n).(i) with
              | [] -> ()
              | [ s ] -> propagate n x [ s ]  (* no operator *)
              | many ->
                  (match merge_report with
                  | Some r -> r := (n, x) :: !r
                  | None -> ());
                  let m =
                    B.add b ~label:(Fmt.str "merge %s" x) Dfg.Node.Merge
                  in
                  List.iter
                    (fun s ->
                      B.connect b ~dummy:true ~tokens:[ i ] (term_of x s)
                        (m, 0))
                    many;
                  Hashtbl.replace out_term (n, x, true) (m, 0);
                  propagate n x [ (n, true) ])
            vars
      | Cfg.Core.Loop_entry l ->
          let managed = varset.(l) in
          let k = List.length managed in
          let ports =
            match loop_control with
            | Engine.Barrier ->
                let nd =
                  B.add b
                    ~label:(Fmt.str "loop-entry %d (barrier)" l)
                    (Dfg.Node.Loop_entry { loop = l; arity = k })
                in
                List.mapi
                  (fun j x -> (x, (nd, j), (nd, k + j), (nd, j)))
                  managed
            | Engine.Pipelined ->
                List.map
                  (fun x ->
                    let nd =
                      B.add b
                        ~label:(Fmt.str "loop-entry %d (%s)" l x)
                        (Dfg.Node.Loop_entry { loop = l; arity = 1 })
                    in
                    (x, (nd, 0), (nd, 1), (nd, 0)))
                  managed
          in
          List.iter
            (fun (x, initial_port, back_port, out) ->
              feed x sv.(n).(var_index x) [ initial_port ];
              deferred_back := (n, x, back_port) :: !deferred_back;
              Hashtbl.replace out_term (n, x, true) out;
              propagate n x [ (n, true) ])
            ports;
          (* unmanaged variables bypass the loop *)
          List.iter
            (fun x ->
              if not (List.mem x managed) then
                propagate n x sv.(n).(var_index x))
            vars
      | Cfg.Core.Loop_exit l ->
          let managed = varset.(l) in
          let k = List.length managed in
          let ports =
            match loop_control with
            | Engine.Barrier ->
                let nd =
                  B.add b
                    ~label:(Fmt.str "loop-exit %d (barrier)" l)
                    (Dfg.Node.Loop_exit { loop = l; arity = k })
                in
                List.mapi (fun j x -> (x, (nd, j), (nd, j))) managed
            | Engine.Pipelined ->
                List.map
                  (fun x ->
                    let nd =
                      B.add b
                        ~label:(Fmt.str "loop-exit %d (%s)" l x)
                        (Dfg.Node.Loop_exit { loop = l; arity = 1 })
                    in
                    (x, (nd, 0), (nd, 0)))
                  managed
          in
          List.iter
            (fun (x, in_port, out) ->
              feed x sv.(n).(var_index x) [ in_port ];
              Hashtbl.replace out_term (n, x, true) out;
              propagate n x [ (n, true) ])
            ports;
          List.iter
            (fun x ->
              if not (List.mem x managed) then
                propagate n x sv.(n).(var_index x))
            vars)
    order;
  (* wire the loop-entry back ports now that every body node is built *)
  List.iter
    (fun (n, x, port) -> feed x svback.(n).(var_index x) [ port ])
    !deferred_back;
  B.finish b
