(** The differential schema oracle (see the interface).  Compile under
    every applicable schema × transform × cover combination, execute on
    the ETS machine, compare against the reference interpreter, and
    shrink any divergence to a minimal reproducer. *)

module Iter = QCheck.Iter

type combo = {
  c_spec : Driver.spec;
  c_transforms : Driver.transforms;
  c_name : string;
  c_broken : bool;
  c_multiproc : (Machine.Placement.policy * int * Machine.Network.config) option;
  c_faulty : bool;
  c_engine : Machine.Config.engine;
  c_topo : Sched.Topology.kind option;
  c_steal : bool;
}

let transforms_suffix (t : Driver.transforms) : string =
  String.concat ""
    (List.filter_map
       (fun (on, name) -> if on then Some ("+" ^ name) else None)
       [
         (t.Driver.value_passing, "value");
         (t.Driver.parallel_reads, "reads");
         (t.Driver.array_parallel, "arrays");
         (t.Driver.istructure, "istructures");
       ])

let combo ?(broken = false) ?multiproc ?(faulty = false) ?topo
    ?(steal = false) ?(engine = Machine.Config.Reference) spec transforms =
  let mp_suffix =
    match multiproc with
    | None -> ""
    | Some (policy, pes, net) ->
        Fmt.str "@p%d-%s%s%s%s%s" pes
          (Machine.Placement.policy_to_string policy)
          (if net = Machine.Network.fast then "-fast" else "")
          (match topo with
          | None -> ""
          | Some k -> "-" ^ Sched.Topology.kind_to_string k)
          (if steal then "+steal" else "")
          (if faulty then "+faults+recover" else "")
  in
  {
    c_spec = spec;
    c_transforms = transforms;
    c_name =
      Driver.spec_to_string spec ^ transforms_suffix transforms ^ mp_suffix
      ^ (match engine with
        | Machine.Config.Reference -> ""
        | Machine.Config.Packed -> "+packed");
    c_broken = broken;
    c_multiproc = multiproc;
    c_faulty = faulty;
    c_engine = engine;
    c_topo = topo;
    c_steal = steal;
  }

let combos_for ?(include_broken = false) (p : Imp.Ast.program) : combo list =
  let aliasing = Analysis.Alias.has_aliasing (Analysis.Alias.of_program p) in
  let t0 = Driver.no_transforms in
  let reads = { t0 with Driver.parallel_reads = true } in
  let value = { t0 with Driver.value_passing = true } in
  let arrays = { t0 with Driver.array_parallel = true } in
  let open Driver in
  let base = [ combo Schema1 t0; combo Schema1 reads ] in
  let s3 =
    [
      combo (Schema3 (Singleton, Engine.Barrier)) t0;
      combo (Schema3 (Classes, Engine.Barrier)) t0;
      combo (Schema3 (Components, Engine.Barrier)) t0;
      combo (Schema3 (Singleton, Engine.Pipelined)) t0;
      combo (Schema3 (Components, Engine.Pipelined)) reads;
    ]
  in
  let s2 =
    if aliasing then []
    else
      [
        combo (Schema2 Engine.Barrier) t0;
        combo (Schema2 Engine.Pipelined) t0;
        combo (Schema2_opt Engine.Barrier) t0;
        combo (Schema2_opt Engine.Pipelined) t0;
        combo (Schema2 Engine.Pipelined) value;
        combo (Schema2 Engine.Pipelined) reads;
        combo (Schema2 Engine.Pipelined) arrays;
        combo (Schema2 Engine.Pipelined) all_transforms;
        combo (Schema2_opt Engine.Pipelined)
          { t0 with Driver.value_passing = true; parallel_reads = true };
      ]
  in
  let broken =
    (* two seeded miscompilations: Figure 8 (loop control omitted;
       alias-free programs only — Schema 2 territory) and the truncated
       cover (meaningful only where aliasing exists to be missed) *)
    (if include_broken && not aliasing then
       [ combo ~broken:true Schema2_unsafe_no_loop_control t0 ]
     else [])
    @
    if include_broken && aliasing then
      [ combo ~broken:true Schema3_unsafe_bad_cover t0 ]
    else []
  in
  (* the multiprocessor tier: the same differential bar — final store
     equal to the reference — with nodes partitioned over PEs and tokens
     crossing a modelled interconnect.  Two placements, two network
     configurations, and the aliasing side covered through Schema 3. *)
  let mp =
    let deflt = Machine.Network.default and fast = Machine.Network.fast in
    [
      combo ~multiproc:(Machine.Placement.Hash, 2, deflt) Schema1 t0;
      combo
        ~multiproc:(Machine.Placement.Affinity, 4, deflt)
        (Schema3 (Classes, Engine.Barrier))
        t0;
    ]
    @
    if aliasing then []
    else
      [
        combo
          ~multiproc:(Machine.Placement.Affinity, 4, deflt)
          (Schema2_opt Engine.Pipelined) t0;
        combo
          ~multiproc:(Machine.Placement.Round_robin, 3, fast)
          (Schema2 Engine.Pipelined) value;
      ]
  in
  (* faulty multiprocessor points: seeded link faults and one seeded PE
     fail-stop under reliable transport + checkpoint/replay — the
     recovered store must still equal the reference, zero divergences.
     Schema 3 keeps the aliasing side covered here too. *)
  let mp_faulty =
    let deflt = Machine.Network.default in
    [
      combo ~faulty:true
        ~multiproc:(Machine.Placement.Hash, 2, deflt)
        (Schema3 (Classes, Engine.Barrier))
        t0;
    ]
    @
    if aliasing then []
    else
      [
        combo ~faulty:true
          ~multiproc:(Machine.Placement.Affinity, 4, deflt)
          (Schema2_opt Engine.Pipelined) t0;
      ]
  in
  (* the scheduling tier: topology-aware interconnects, hierarchical
     placement and work stealing at a PE count the static grid never
     reaches — the differential bar is unchanged, which is precisely
     the determinacy-under-stealing claim.  Schema 3 keeps the aliasing
     side covered. *)
  let mp_sched =
    let deflt = Machine.Network.default in
    [
      combo
        ~multiproc:(Machine.Placement.Hash, 16, deflt)
        ~topo:Sched.Topology.Mesh ~steal:true
        (Schema3 (Classes, Engine.Barrier))
        t0;
    ]
    @
    if aliasing then []
    else
      [
        combo
          ~multiproc:(Machine.Placement.Hier, 16, deflt)
          ~topo:Sched.Topology.Mesh ~steal:true (Schema2_opt Engine.Pipelined)
          t0;
        combo
          ~multiproc:(Machine.Placement.Hier, 8, deflt)
          ~topo:Sched.Topology.Torus (Schema2 Engine.Pipelined) t0;
      ]
  in
  (* the packed-engine tier: the same differential bar again on the
     compiled core — bit-identical final stores are exactly what the
     packed engine promises.  Fault injection stays reference-only, so
     no faulty packed points *)
  let packed =
    let deflt = Machine.Network.default in
    let pk = combo ~engine:Machine.Config.Packed in
    [ pk Schema1 t0; pk (Schema3 (Classes, Engine.Barrier)) t0 ]
    @ (if aliasing then []
       else
         [
           pk (Schema2 Engine.Pipelined) t0;
           pk (Schema2_opt Engine.Pipelined) all_transforms;
         ])
    @ [
        combo ~engine:Machine.Config.Packed
          ~multiproc:(Machine.Placement.Hash, 2, deflt)
          Schema1 t0;
      ]
    @
    if aliasing then []
    else
      [
        combo ~engine:Machine.Config.Packed
          ~multiproc:(Machine.Placement.Affinity, 4, deflt)
          (Schema2_opt Engine.Pipelined) t0;
      ]
  in
  base @ s2 @ s3 @ mp @ mp_faulty @ mp_sched @ packed @ broken

type status =
  | Agree
  | Skip of string
  | Fail of string

(* A modest cycle bound: generated structured programs finish orders of
   magnitude below it, while a broken schema's pile-up or livelock is
   cut off quickly. *)
let default_machine =
  { Machine.Config.default with Machine.Config.max_cycles = 200_000 }

let run_combo ?(machine = default_machine) ?(certify_only = false) (c : combo)
    (p : Imp.Ast.program) : status =
  (* certify-only mode: collision detection off, reference comparison
     off — a Fail means the fractional-permission certificate ALONE
     rejected the run.  This is the mode that proves the checker needs
     no ground truth to catch a miscompilation. *)
  let machine = { machine with Machine.Config.engine = c.c_engine } in
  let machine =
    if certify_only then
      { machine with Machine.Config.detect_collisions = false }
    else machine
  in
  (* both the reference store and the compiled graph come from the
     process-global memo: a program's 20+ combos (and any number of
     shrink probes) evaluate the reference once and run the front end /
     per-schema translation once per distinct (spec, transforms) *)
  match Memo.reference ~fuel:1_000_000 p with
  | exception Imp.Eval.Out_of_fuel -> Skip "reference out of fuel"
  | reference -> (
      match Memo.compile ~transforms:c.c_transforms c.c_spec p with
      | exception Cfg.Intervals.Irreducible m -> Skip ("irreducible: " ^ m)
      | exception Driver.Aliasing_unsupported m -> Skip ("aliasing: " ^ m)
      | exception exn -> Fail ("compile: " ^ Printexc.to_string exn)
      | compiled -> (
          match Dfg.Check.check compiled.Driver.graph with
          | exception Dfg.Check.Invalid m -> Fail ("ill-formed graph: " ^ m)
          | () -> (
              let prog =
                {
                  Machine.Interp.graph = compiled.Driver.graph;
                  layout = compiled.Driver.layout;
                }
              in
              let perm_fail (diag : Machine.Diagnosis.t) =
                match diag.Machine.Diagnosis.permission with
                | [] -> None
                | v :: _ ->
                    Some
                      ("permission: "
                      ^ Machine.Permission.violation_to_string v)
              in
              let finish (diag : Machine.Diagnosis.t)
                  (memory : Imp.Memory.t) =
                if certify_only then
                  match perm_fail diag with Some m -> Fail m | None -> Agree
                else if
                  diag.Machine.Diagnosis.verdict <> Machine.Diagnosis.Clean
                then
                  Fail
                    (Machine.Diagnosis.verdict_to_string
                       diag.Machine.Diagnosis.verdict)
                else
                  match perm_fail diag with
                  | Some m -> Fail m
                  | None ->
                      if not (Imp.Memory.equal reference memory) then
                        Fail
                          (Fmt.str
                             "store mismatch@.reference:@.%a@.machine:@.%a"
                             Imp.Memory.pp reference Imp.Memory.pp memory)
                      else Agree
              in
              let hard_fail (d : Machine.Diagnosis.t) =
                if certify_only then
                  match perm_fail d with Some m -> Fail m | None -> Agree
                else
                  Fail
                    (Machine.Diagnosis.verdict_to_string
                       d.Machine.Diagnosis.verdict)
              in
              match c.c_multiproc with
              | None -> (
                  match Machine.Interp.run_report ~config:machine prog with
                  | exception exn ->
                      Fail ("machine: " ^ Printexc.to_string exn)
                  | Error d -> hard_fail d
                  | Ok r ->
                      finish r.Machine.Interp.diagnosis
                        r.Machine.Interp.memory)
              | Some (placement, pes, net) -> (
                  (* faulty points derive their whole fault schedule from
                     the program text, so any divergence replays *)
                  let faults, recovery =
                    if not c.c_faulty then (None, None)
                    else
                      let seed =
                        1
                        + (Hashtbl.hash (Imp.Pretty.program_to_string p)
                          land 0xFFFF)
                      in
                      ( Some
                          (Machine.Fault.make
                             (Machine.Fault.spec ~seed ~rate:0.01
                                ~classes:Machine.Fault.link_classes ())),
                        Some
                          (Machine.Recovery.spec
                             ~deaths:
                               (Machine.Recovery.seeded_deaths ~seed ~pes
                                  ~window:60)
                             ()) )
                  in
                  let topo =
                    Option.map
                      (fun k -> Sched.Topology.make k ~pes)
                      c.c_topo
                  in
                  let steal =
                    if c.c_steal then Some Sched.Steal.default else None
                  in
                  match
                    Machine.Multiproc.run ~config:machine ~net ~placement
                      ~tree:compiled.Driver.ltree ?topo ?steal ?faults
                      ?recovery ~pes prog
                  with
                  | exception exn ->
                      Fail ("multiproc: " ^ Printexc.to_string exn)
                  | Error d -> hard_fail d
                  | Ok r ->
                      finish r.Machine.Multiproc.diagnosis
                        r.Machine.Multiproc.memory))))

let check_program ?machine ?certify_only ?include_broken
    (p : Imp.Ast.program) : (string * status) list =
  List.map
    (fun c -> (c.c_name, run_combo ?machine ?certify_only c p))
    (combos_for ?include_broken p)

(* --- shrinking ------------------------------------------------------- *)

open Imp.Ast

let ( <+> ) = Iter.( <+> )

let is_bool_op = function
  | Lt | Le | Gt | Ge | Eq | Ne | And | Or -> true
  | Add | Sub | Mul | Div | Mod -> false

let rec shrink_expr (e : expr) : expr Iter.t =
  match e with
  | Int 0 | Bool false -> Iter.empty
  | Int n -> Iter.map (fun m -> Int m) (QCheck.Shrink.int n)
  | Bool true -> Iter.return (Bool false)
  | Var _ -> Iter.return (Int 0)
  | Index (x, e1) ->
      Iter.return (Int 0) <+> Iter.return e1
      <+> Iter.map (fun e' -> Index (x, e')) (shrink_expr e1)
  | Binop (op, a, b) ->
      (if is_bool_op op then Iter.of_list [ Bool false; Bool true ]
       else Iter.of_list [ Int 0; a; b ])
      <+> (if op = And || op = Or then Iter.of_list [ a; b ] else Iter.empty)
      <+> Iter.map (fun a' -> Binop (op, a', b)) (shrink_expr a)
      <+> Iter.map (fun b' -> Binop (op, a, b')) (shrink_expr b)
  | Unop (Neg, a) ->
      Iter.of_list [ Int 0; a ]
      <+> Iter.map (fun a' -> Unop (Neg, a')) (shrink_expr a)
  | Unop (Not, a) ->
      Iter.of_list [ Bool false; Bool true ]
      <+> Iter.map (fun a' -> Unop (Not, a')) (shrink_expr a)

let rec shrink_stmt (s : stmt) : stmt Iter.t =
  match s with
  | Skip -> Iter.empty
  | Label _ | Goto _ | Cond_goto _ | Call _ -> Iter.return Skip
  | Assign (lv, e) ->
      Iter.return Skip
      <+> (match lv with
          | Lvar _ -> Iter.empty
          | Lindex (x, i) ->
              Iter.return (Assign (Lvar x, e))
              <+> Iter.map (fun i' -> Assign (Lindex (x, i'), e)) (shrink_expr i))
      <+> Iter.map (fun e' -> Assign (lv, e')) (shrink_expr e)
  | Seq (a, b) ->
      Iter.of_list [ a; b ]
      <+> Iter.map (fun a' -> Seq (a', b)) (shrink_stmt a)
      <+> Iter.map (fun b' -> Seq (a, b')) (shrink_stmt b)
  | If (e, a, b) ->
      Iter.of_list [ a; b ]
      <+> Iter.map (fun a' -> If (e, a', b)) (shrink_stmt a)
      <+> Iter.map (fun b' -> If (e, a, b')) (shrink_stmt b)
      <+> Iter.map (fun e' -> If (e', a, b)) (shrink_expr e)
  | While (e, a) ->
      Iter.return Skip
      <+> Iter.map (fun a' -> While (e, a')) (shrink_stmt a)
      <+> Iter.map (fun e' -> While (e', a)) (shrink_expr e)
  | Case (e, arms, default) ->
      Iter.of_list (default :: List.map snd arms)
      <+> Iter.of_list
            (List.mapi
               (fun i _ ->
                 Case (e, List.filteri (fun j _ -> j <> i) arms, default))
               arms)
      <+> Iter.map (fun e' -> Case (e', arms, default)) (shrink_expr e)
      <+> Iter.map (fun d' -> Case (e, arms, d')) (shrink_stmt default)

let rec strip_calls = function
  | Call _ -> Skip
  | Seq (a, b) -> Seq (strip_calls a, strip_calls b)
  | If (e, a, b) -> If (e, strip_calls a, strip_calls b)
  | While (e, a) -> While (e, strip_calls a)
  | Case (e, arms, d) ->
      Case (e, List.map (fun (k, s) -> (k, strip_calls s)) arms, strip_calls d)
  | s -> s

let shrink_program (p : program) : program Iter.t =
  let decls =
    (if p.procs <> [] then
       Iter.return { p with procs = []; body = strip_calls p.body }
     else Iter.empty)
    <+> (if p.equiv <> [] then Iter.return { p with equiv = [] } else Iter.empty)
    <+> (if p.may_alias <> [] then Iter.return { p with may_alias = [] }
         else Iter.empty)
    <+>
    let used = stmt_vars_acc p.body [] in
    let used =
      List.fold_left (fun acc pr -> stmt_vars_acc pr.pbody acc) used p.procs
    in
    Iter.of_list
      (List.filter_map
         (fun (x, _) ->
           if List.mem x used then None
           else
             Some
               { p with arrays = List.filter (fun (y, _) -> y <> x) p.arrays })
         p.arrays)
  in
  decls <+> Iter.map (fun b -> { p with body = b }) (shrink_stmt p.body)

let well_typed (p : program) : bool =
  match Imp.Typecheck.check_program p with
  | () -> true
  | exception _ -> false

let minimize (fails : program -> bool) (p0 : program) : program * int =
  let steps = ref 0 in
  let rec go p budget =
    if budget <= 0 then p
    else
      match
        Iter.find (fun q -> well_typed q && fails q) (shrink_program p)
      with
      | Some q ->
          incr steps;
          go q (budget - 1)
      | None -> p
  in
  let minimal = go p0 400 in
  (minimal, !steps)

(* --- selfcheck ------------------------------------------------------- *)

type divergence = {
  dv_index : int;
  dv_combo : string;
  dv_reason : string;
  dv_program : Imp.Ast.program;
  dv_shrunk : Imp.Ast.program;
  dv_steps : int;
}

type report = {
  r_seed : int;
  r_count : int;
  r_agreements : int;
  r_skips : int;
  r_matrix : (string * int) list;
  r_divergences : divergence list;
  r_broken_caught : divergence list;
}

let selfcheck ?(gen = Workloads.Random_gen.default_config) ?machine
    ?certify_only ?(include_broken = false) ?(max_shrunk = 3) ?(jobs = 1)
    ~seed ~count () : report =
  let rand = Random.State.make [| seed |] in
  let agreements = ref 0 in
  let skips = ref 0 in
  let matrix : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let matrix_order = ref [] in
  let divergences = ref [] in
  let broken_caught = ref [] in
  let bump name =
    if not (Hashtbl.mem matrix name) then
      matrix_order := name :: !matrix_order;
    Hashtbl.replace matrix name
      (1 + (try Hashtbl.find matrix name with Not_found -> 0))
  in
  (* The whole (program x combo) grid is materialised up front — random
     generation stays a single sequential draw from [rand] — and then
     submitted as one batch to the domain pool.  run_combo is pure
     modulo the single-flight memo, so statuses are independent of
     scheduling; folding them back in submission order makes the report
     (matrix order, shrink budget consumption) identical at any [jobs],
     including the sequential jobs=1 of the original loop. *)
  let grid =
    Array.concat
      (List.init count (fun index ->
           let p = Workloads.Random_gen.structured ~config:gen rand in
           Array.of_list
             (List.map (fun c -> (index, p, c)) (combos_for ~include_broken p))))
  in
  let statuses =
    Service.Pool.map ~jobs
      (fun (_, p, c) -> run_combo ?machine ?certify_only c p)
      grid
  in
  Array.iteri
    (fun i st ->
      let index, p, c = grid.(i) in
      let st =
        match st with Ok st -> st | Error f -> Service.Pool.reraise f
      in
      match st with
      | Agree ->
          bump c.c_name;
          incr agreements
      | Skip _ -> incr skips
      | Fail reason ->
          bump c.c_name;
          let bucket = if c.c_broken then broken_caught else divergences in
          (* shrinking stays sequential, after the parallel phase: it
             consumes the bounded per-bucket budget in grid order *)
          let shrunk, steps =
            if List.length !bucket < max_shrunk then
              minimize
                (fun q ->
                  match run_combo ?machine ?certify_only c q with
                  | Fail _ -> true
                  | Agree | Skip _ -> false)
                p
            else (p, 0)
          in
          bucket :=
            {
              dv_index = index;
              dv_combo = c.c_name;
              dv_reason = reason;
              dv_program = p;
              dv_shrunk = shrunk;
              dv_steps = steps;
            }
            :: !bucket)
    statuses;
  {
    r_seed = seed;
    r_count = count;
    r_agreements = !agreements;
    r_skips = !skips;
    r_matrix =
      List.rev_map
        (fun name -> (name, Hashtbl.find matrix name))
        !matrix_order;
    r_divergences = List.rev !divergences;
    r_broken_caught = List.rev !broken_caught;
  }

let pp_divergence ppf (d : divergence) =
  Fmt.pf ppf "program %d under %s: %s@." d.dv_index d.dv_combo d.dv_reason;
  Fmt.pf ppf "minimal reproducer (%d shrink steps, size %d -> %d):@."
    d.dv_steps
    (Imp.Ast.stmt_size d.dv_program.Imp.Ast.body)
    (Imp.Ast.stmt_size d.dv_shrunk.Imp.Ast.body);
  Fmt.pf ppf "%s@." (Imp.Pretty.program_to_string d.dv_shrunk)

let pp_report ppf (r : report) =
  Fmt.pf ppf "selfcheck: seed %d, %d programs@." r.r_seed r.r_count;
  Fmt.pf ppf "schema-agreement matrix (combo -> programs exercised):@.";
  List.iter
    (fun (name, n) -> Fmt.pf ppf "  %-36s %4d@." name n)
    r.r_matrix;
  Fmt.pf ppf "%d agreements, %d skips, %d divergences, %d broken-schema catches@."
    r.r_agreements r.r_skips
    (List.length r.r_divergences)
    (List.length r.r_broken_caught);
  List.iter
    (fun d -> Fmt.pf ppf "@.DIVERGENCE: %a" pp_divergence d)
    r.r_divergences;
  List.iter
    (fun d -> Fmt.pf ppf "@.broken schema caught: %a" pp_divergence d)
    r.r_broken_caught
