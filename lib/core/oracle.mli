(** The differential schema oracle: translation validation at scale.

    The paper's soundness claim is that every applicable translation
    schema (1, 2, 2-opt, 3 with each cover, plus the Section 6
    transforms) produces a graph whose machine execution reproduces the
    reference interpreter's final store.  The oracle checks that claim
    mechanically: it compiles a program under {e every} applicable
    schema × transform × cover combination, runs each on the ETS
    machine, checks {!Dfg.Check} invariants, and compares stores against
    {!Imp.Eval}.  On a divergence it shrinks the failing program to a
    minimal reproducer (greedy first-improvement over a structural
    shrinker, QCheck-style).

    [selfcheck] drives this over seeded random programs
    ({!Workloads.Random_gen.structured}) — the randomized tier of the
    test suite and the [df_compile selfcheck] subcommand.  Deliberately
    broken schema variants (Schema 2 without loop control — the Figure 8
    pathology) can be included to prove the oracle actually catches
    unsound translations. *)

(** One point of the validation matrix. *)
type combo = {
  c_spec : Driver.spec;
  c_transforms : Driver.transforms;
  c_name : string;
      (** e.g. ["schema2-pipelined+value+reads"] or
          ["schema2-opt-pipelined\@p4-affinity"] for a multiprocessor
          point *)
  c_broken : bool;  (** a deliberately unsound variant: failures expected *)
  c_multiproc : (Machine.Placement.policy * int * Machine.Network.config) option;
      (** [Some (policy, pes, net)] executes on {!Machine.Multiproc}
          instead of the single-PE machine — same differential bar *)
  c_faulty : bool;
      (** multiprocessor point executed under seeded link faults plus
          one seeded PE fail-stop, with reliable transport and
          checkpoint/replay recovery on: the recovered run must still
          verdict [Clean] and match the reference store exactly *)
  c_engine : Machine.Config.engine;
      (** execution core for this point; [Packed] points carry a
          ["+packed"] name suffix and hold the compiled engine to the
          same differential bar *)
  c_topo : Sched.Topology.kind option;
      (** interconnect topology for a multiprocessor point (["-mesh"]
          etc. in the name); [None] is the uniform wire *)
  c_steal : bool;
      (** multiprocessor point executed with work stealing on
          (["+steal"] suffix): the moved firings must not perturb the
          final store *)
}

(** [combos_for ?include_broken p] — every combination applicable to
    [p]: Schema 1 and Schema 3 (all covers) always; Schema 2 / 2-opt
    families with their transform sets when [p] is alias-free; a
    multiprocessor tier (two placements, two network configurations,
    Schema 3 covering the aliasing side); faulty multiprocessor points
    (link faults plus one PE fail-stop, recovery on — zero divergences
    expected); when asked for, the broken variants —
    [Schema2_unsafe_no_loop_control] on alias-free programs and
    [Schema3_unsafe_bad_cover] on aliased ones. *)
val combos_for : ?include_broken:bool -> Imp.Ast.program -> combo list

(** Outcome of one combo on one program. *)
type status =
  | Agree  (** compiled, ran cleanly, store matches the reference *)
  | Skip of string  (** combo not applicable (irreducible, aliasing) *)
  | Fail of string  (** divergence: mismatch, unclean run, or crash *)

(** [run_combo ?machine ?certify_only combo p] compiles and executes one
    combination and compares against the reference store.  A clean run
    with standing permission-certificate violations is a [Fail] — a
    certified run must also be a correctly certified run.  With
    [certify_only] the differential bar is removed entirely: collision
    detection is off, the reference store is not compared, and [Fail]
    means the fractional-permission certificate alone rejected the run.
    Never raises. *)
val run_combo :
  ?machine:Machine.Config.t ->
  ?certify_only:bool ->
  combo ->
  Imp.Ast.program ->
  status

(** [check_program ?machine ?certify_only ?include_broken p] — all
    combos on one program; returns [(combo name, status)] in combo
    order. *)
val check_program :
  ?machine:Machine.Config.t ->
  ?certify_only:bool ->
  ?include_broken:bool ->
  Imp.Ast.program ->
  (string * status) list

(** Structural program shrinker: statement deletion/hoisting, arm and
    branch selection, expression simplification, declaration dropping.
    Candidates may be ill-typed; consumers filter with {!minimize}'s
    type guard. *)
val shrink_program : Imp.Ast.program -> Imp.Ast.program QCheck.Iter.t

(** [minimize fails p] greedily shrinks [p] while [fails] holds (only
    well-typed candidates are offered to [fails]); returns the minimal
    failing program found and the number of successful shrink steps. *)
val minimize :
  (Imp.Ast.program -> bool) -> Imp.Ast.program -> Imp.Ast.program * int

(** One shrunk divergence found by {!selfcheck}. *)
type divergence = {
  dv_index : int;  (** which generated program (0-based) *)
  dv_combo : string;
  dv_reason : string;
  dv_program : Imp.Ast.program;  (** as generated *)
  dv_shrunk : Imp.Ast.program;  (** minimal reproducer *)
  dv_steps : int;  (** successful shrink steps *)
}

type report = {
  r_seed : int;
  r_count : int;  (** programs requested *)
  r_agreements : int;  (** combo runs that agreed with the reference *)
  r_skips : int;
  r_matrix : (string * int) list;
      (** combo name -> programs on which it was exercised (agree or
          fail), in combo order: the schema-agreement matrix *)
  r_divergences : divergence list;  (** failures of sound combos *)
  r_broken_caught : divergence list;
      (** failures of deliberately broken combos — expected; their
          presence proves the oracle has teeth *)
}

(** [selfcheck ~seed ~count ()] generates [count] random structured
    programs from [seed] and validates each against every applicable
    combo.  The whole (program x combo) grid is submitted as one batch
    to a {!Service.Pool} of [jobs] domains (default 1); statuses are
    folded back in submission order, so the report is identical at any
    [jobs] setting.  Every divergence is shrunk to a minimal reproducer
    (the first [max_shrunk] per category; later ones are recorded
    unshrunk).  Deterministic: same seed, same report. *)
val selfcheck :
  ?gen:Workloads.Random_gen.config ->
  ?machine:Machine.Config.t ->
  ?certify_only:bool ->
  ?include_broken:bool ->
  ?max_shrunk:int ->
  ?jobs:int ->
  seed:int ->
  count:int ->
  unit ->
  report

val pp_divergence : Format.formatter -> divergence -> unit
val pp_report : Format.formatter -> report -> unit
