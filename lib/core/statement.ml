(** Per-statement dataflow segments: the read blocks, expression graphs,
    store and switch wiring of Figures 3–4, 6–7 and 12–13, generalised
    over the token universe and over the Section 6 parallelizing
    transformations.

    A statement's segment is built inside a {!Dfg.Graph.Builder}; what the
    caller gets back is, for every token index,

    - the {e entry ports} the incoming access token must be delivered to
      (several ports: the incoming arc fans out, e.g. to a read block, to
      the triggers of constants in the expression, to each read of a
      parallel read block), and
    - the {e exit terminal} the token leaves from once the statement's
      memory operations have completed,

    or neither, when the token is not involved and flows past the
    statement unchanged.  A token may also have entry ports but no exit
    (asynchronous operations take a {e copy} of the token; the token
    itself passes through, Section 6.3 / Figure 14).

    Baseline operation order within a statement: scalar reads first, then
    array reads innermost-first in occurrence order, then the store;
    access-token chains follow that order, so value dependencies always
    point forward along the chain and the segment cannot deadlock.

    Transformations ({!mode}):
    - [value_vars] (Section 6.1): the variable's token carries its value;
      loads vanish (the token {e is} the value), stores re-emit the token
      carrying the new value.  Sound for unaliased scalars whose access
      set is a private singleton token.
    - [parallel_reads] (Section 6.2): reads become copies of the token
      collected by a synch at the next write or statement exit, so any
      run of reads proceeds in parallel -- even reads of aliased names.
    - [async_stores] (Section 6.3): the store takes a copy of the token
      and its completion terminal is handed back to the caller, which
      builds Figure 14's cross-iteration synchronisation.
    - [istructure]: operations on the named arrays use I-structure
      memory and detach from token ordering entirely (deferred reads
      provide the ordering). *)

type terminal = int * int
(** (node id, output or input port index), depending on position *)

module B = Dfg.Graph.Builder

type mode = {
  value_vars : string -> bool;
  parallel_reads : bool;
  async_stores : string -> bool;
  istructure : string -> bool;
}

let default_mode =
  {
    value_vars = (fun _ -> false);
    parallel_reads = false;
    async_stores = (fun _ -> false);
    istructure = (fun _ -> false);
  }

type chain = {
  entries : terminal list array;  (** per token: input ports to feed *)
  untagged : terminal list array;
      (** per token: input ports fed by the same incoming token but
          carrying no permission (constant triggers): the token merely
          {e activates} them, its permission does not flow there *)
  exits : terminal option array;  (** per token: output terminal *)
  async : (string * terminal) list;
      (** async store completions: (variable, completion terminal) *)
}

(* State threaded while building one statement. *)
type state = {
  b : B.t;
  tokens : Token_map.t;
  mode : mode;
  entries : terminal list array;
  untagged_entries : terminal list array;  (** trigger ports per token *)
  base : terminal option array;  (** last barrier terminal per token *)
  pending : terminal list array;  (** read completions since the barrier *)
  mutable trigger_ports : terminal list;
  mutable scalar_loads : (string * terminal) list;  (** memoised values *)
  mutable reads_in_order : string list;
  mutable async : (string * terminal) list;
}

let new_state b tokens mode : state =
  let k = Token_map.arity tokens in
  {
    b;
    tokens;
    mode;
    entries = Array.make k [];
    untagged_entries = Array.make k [];
    base = Array.make k None;
    pending = Array.make k [];
    trigger_ports = [];
    scalar_loads = [];
    reads_in_order = [];
    async = [];
  }

let mem_of (st : state) (x : string) : Dfg.Node.mem_kind =
  if st.mode.istructure x then Dfg.Node.I_structure else Dfg.Node.Plain

(* Collapse pending read completions of [tau] into a single terminal and
   make it the new base.  None = the token is still at the entry. *)
let collapse (st : state) (tau : int) : terminal option =
  match st.pending.(tau) with
  | [] -> st.base.(tau)
  | [ t ] ->
      st.pending.(tau) <- [];
      st.base.(tau) <- Some t;
      Some t
  | ts ->
      let s = B.add st.b (Dfg.Node.Synch (List.length ts)) in
      List.iteri (fun i t -> B.connect st.b ~dummy:true ~tokens:[ tau ] t (s, i)) ts;
      st.pending.(tau) <- [];
      st.base.(tau) <- Some (s, 0);
      Some (s, 0)

(* Feed [port] with a COPY of tau's token (fan-out off the base, or off
   the statement entry).  Pending reads are not collected. *)
let copy_feed (st : state) (tau : int) (port : terminal) : unit =
  match st.base.(tau) with
  | Some t -> B.connect st.b ~dummy:true ~tokens:[ tau ] t port
  | None -> st.entries.(tau) <- st.entries.(tau) @ [ port ]

(* Feed [port] with the COLLECTED token of tau (synch over pending
   reads). *)
let barrier_feed (st : state) (tau : int) (port : terminal) : unit =
  match collapse st tau with
  | Some t -> B.connect st.b ~dummy:true ~tokens:[ tau ] t port
  | None -> st.entries.(tau) <- st.entries.(tau) @ [ port ]

(* Thread a memory operation on [var] through the token machinery.
   [kind] decides the discipline:
   - [`Read]: sequential mode advances the base past the op; parallel
     mode takes a copy and pends the completion;
   - [`Write]: collects pending reads, advances the base;
   - [`Async]: takes a copy, records the completion for the caller;
   - [`Detached]: takes a copy, drops the completion (I-structures). *)
let thread_op (st : state) (var : string)
    (kind : [ `Read | `Write | `Async | `Detached ]) ~(access_in : terminal)
    ~(access_out : terminal) : unit =
  let aset = st.tokens.Token_map.access_set var in
  let feed_each feed1 =
    match aset with
    | [ tau ] -> feed1 tau access_in
    | taus ->
        let s = B.add st.b (Dfg.Node.Synch (List.length taus)) in
        List.iteri (fun j tau -> feed1 tau (s, j)) taus;
        B.connect st.b ~dummy:true ~tokens:taus (s, 0) access_in
  in
  match kind with
  | `Read when st.mode.parallel_reads ->
      feed_each (copy_feed st);
      List.iter
        (fun tau -> st.pending.(tau) <- st.pending.(tau) @ [ access_out ])
        aset
  | `Read | `Write ->
      feed_each (barrier_feed st);
      List.iter (fun tau -> st.base.(tau) <- Some access_out) aset
  | `Async ->
      feed_each (copy_feed st);
      st.async <- (var, access_out) :: st.async
  | `Detached -> feed_each (copy_feed st)

(* The value of a value-passing variable: its token.  Materialise an Id
   at the entry when the token has not yet been seen. *)
let value_token (st : state) (x : string) : terminal =
  let tau =
    match st.tokens.Token_map.access_set x with
    | [ tau ] -> tau
    | _ -> invalid_arg ("value variable with non-singleton access set: " ^ x)
  in
  match st.base.(tau) with
  | Some t -> t
  | None ->
      let id = B.add st.b ~label:(Fmt.str "value %s" x) Dfg.Node.Id in
      st.entries.(tau) <- st.entries.(tau) @ [ (id, 0) ];
      st.base.(tau) <- Some (id, 0);
      (id, 0)

(* One scalar load per distinct variable; re-reads fan out the value. *)
let scalar_read (st : state) (x : string) : terminal =
  match List.assoc_opt x st.scalar_loads with
  | Some t -> t
  | None ->
      let t =
        if st.mode.value_vars x then value_token st x
        else begin
          let n =
            B.add st.b
              (Dfg.Node.Load { var = x; indexed = false; mem = mem_of st x })
          in
          let op_kind = if st.mode.istructure x then `Detached else `Read in
          thread_op st x op_kind ~access_in:(n, 0) ~access_out:(n, 1);
          (n, 0)
        end
      in
      st.scalar_loads <- (x, t) :: st.scalar_loads;
      if not (List.mem x st.reads_in_order) then
        st.reads_in_order <- st.reads_in_order @ [ x ];
      t

(* Compile an expression to a value terminal.  Array reads create their
   load at the point the subscript value is available (post-order), which
   also fixes their position on the access-token chain. *)
let rec compile_expr (st : state) (e : Imp.Ast.expr) : terminal =
  match e with
  | Imp.Ast.Int n ->
      let c = B.add st.b (Dfg.Node.Const (Imp.Value.Int n)) in
      st.trigger_ports <- (c, 0) :: st.trigger_ports;
      (c, 0)
  | Imp.Ast.Bool v ->
      let c = B.add st.b (Dfg.Node.Const (Imp.Value.Bool v)) in
      st.trigger_ports <- (c, 0) :: st.trigger_ports;
      (c, 0)
  | Imp.Ast.Var x -> scalar_read st x
  | Imp.Ast.Index (a, idx) ->
      let idx_v = compile_expr st idx in
      let n =
        B.add st.b (Dfg.Node.Load { var = a; indexed = true; mem = mem_of st a })
      in
      if not (List.mem a st.reads_in_order) then
        st.reads_in_order <- st.reads_in_order @ [ a ];
      B.connect st.b idx_v (n, 1);
      let op_kind = if st.mode.istructure a then `Detached else `Read in
      thread_op st a op_kind ~access_in:(n, 0) ~access_out:(n, 1);
      (n, 0)
  | Imp.Ast.Binop (op, l, r) ->
      let lv = compile_expr st l in
      let rv = compile_expr st r in
      let n = B.add st.b (Dfg.Node.Binop op) in
      B.connect st.b lv (n, 0);
      B.connect st.b rv (n, 1);
      (n, 0)
  | Imp.Ast.Unop (op, a) ->
      let av = compile_expr st a in
      let n = B.add st.b (Dfg.Node.Unop op) in
      B.connect st.b av (n, 0);
      (n, 0)

(* Attach pending constant triggers to the entry fan-out of [tau]:
   triggers fire off the statement's incoming token, so they join the
   entry fan-out rather than the op chain. *)
let attach_triggers (st : state) (tau : int) : unit =
  List.iter
    (fun port ->
      st.untagged_entries.(tau) <- st.untagged_entries.(tau) @ [ port ])
    (List.rev st.trigger_ports);
  st.trigger_ports <- []

(* Collect outstanding pending reads into exit terminals. *)
let finish_chain (st : state) : chain =
  let k = Token_map.arity st.tokens in
  let exits =
    Array.init k (fun tau ->
        match st.pending.(tau) with [] -> st.base.(tau) | _ -> collapse st tau)
  in
  {
    entries = st.entries;
    untagged = st.untagged_entries;
    exits;
    async = List.rev st.async;
  }

(* Perform the store of an assignment. *)
let do_store (st : state) (lv : Imp.Ast.lvalue) (value : terminal) : unit =
  match lv with
  | Imp.Ast.Lvar x when st.mode.value_vars x ->
      let tau = List.hd (st.tokens.Token_map.access_set x) in
      (match st.base.(tau) with
      | Some _ -> ()  (* old value token already consumed/fanned by reads *)
      | None ->
          (* the dead old-value token arrives from the predecessor and
             must be absorbed *)
          let s = B.add st.b ~label:(Fmt.str "sink %s" x) Dfg.Node.Sink in
          st.entries.(tau) <- st.entries.(tau) @ [ (s, 0) ]);
      st.base.(tau) <- Some value
  | Imp.Ast.Lvar x ->
      let n =
        B.add st.b (Dfg.Node.Store { var = x; indexed = false; mem = mem_of st x })
      in
      B.connect st.b value (n, 1);
      let op_kind =
        if st.mode.istructure x then `Detached
        else if st.mode.async_stores x then `Async
        else `Write
      in
      thread_op st x op_kind ~access_in:(n, 0) ~access_out:(n, 0)
  | Imp.Ast.Lindex (a, idx) ->
      let idx_v = compile_expr st idx in
      let n =
        B.add st.b (Dfg.Node.Store { var = a; indexed = true; mem = mem_of st a })
      in
      B.connect st.b value (n, 1);
      B.connect st.b idx_v (n, 2);
      let op_kind =
        if st.mode.istructure a then `Detached
        else if st.mode.async_stores a then `Async
        else `Write
      in
      thread_op st a op_kind ~access_in:(n, 0) ~access_out:(n, 0)

(** [assign b ~tokens ~mode lv e] builds the segment of [lv := e]. *)
let assign (b : B.t) ~(tokens : Token_map.t) ?(mode = default_mode)
    (lv : Imp.Ast.lvalue) (e : Imp.Ast.expr) : chain =
  let st = new_state b tokens mode in
  let value = compile_expr st e in
  do_store st lv value;
  let written = match lv with Imp.Ast.Lvar x | Imp.Ast.Lindex (x, _) -> x in
  attach_triggers st (List.hd (tokens.Token_map.access_set written));
  finish_chain st

type fork_out =
  | F_pass  (** token untouched by the fork *)
  | F_switched of terminal * terminal  (** (true-exit, false-exit) *)
  | F_straight of terminal
      (** read by the predicate but not switched: single exit (only under
          the optimized construction, where it flows to the fork's
          immediate postdominator) *)

type fork_chain = {
  f_entries : terminal list array;
  f_untagged : terminal list array;  (** trigger ports, no permission *)
  f_outs : fork_out array;
}

(** [fork b ~tokens ~mode ~switched pred] builds a fork segment:
    predicate reads and evaluation, plus one switch per token index in
    [switched].  Under Schemas 1–3 every token is switched; under the
    optimized construction only those the placement analysis demands. *)
let fork (b : B.t) ~(tokens : Token_map.t) ?(mode = default_mode)
    ~(switched : int list) (pred : Imp.Ast.expr) : fork_chain =
  let st = new_state b tokens mode in
  let pred_v = compile_expr st pred in
  (* Constant triggers: prefer a token the predicate reads; otherwise any
     switched token's entry fan-out. *)
  if st.trigger_ports <> [] then begin
    let tau =
      match st.reads_in_order with
      | v :: _ -> List.hd (tokens.Token_map.access_set v)
      | [] -> (
          match switched with
          | tau :: _ -> tau
          | [] ->
              invalid_arg
                "Statement.fork: constant predicate with nothing to switch")
    in
    attach_triggers st tau
  end;
  let outs = Array.make (Token_map.arity tokens) F_pass in
  List.iter
    (fun tau ->
      let sw = B.add b Dfg.Node.Switch in
      barrier_feed st tau (sw, 0);
      B.connect b pred_v (sw, 1);
      st.base.(tau) <- None;
      (* consumed by the switch *)
      outs.(tau) <- F_switched ((sw, 0), (sw, 1)))
    switched;
  (* Tokens read but not switched leave straight (their pending reads, if
     any, collapse into the exit). *)
  Array.iteri
    (fun tau _ ->
      match outs.(tau) with
      | F_pass -> (
          match collapse st tau with
          | Some t -> outs.(tau) <- F_straight t
          | None -> ())
      | F_switched _ | F_straight _ -> ())
    outs;
  { f_entries = st.entries; f_untagged = st.untagged_entries; f_outs = outs }
