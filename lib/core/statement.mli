(** Per-statement dataflow segments: the read blocks, expression graphs,
    store and switch wiring of Figures 3–4, 6–7 and 12–13, generalised
    over the token universe and the Section 6 transformations.

    A segment is built inside a {!Dfg.Graph.Builder}; the caller receives,
    for every token index, the {e entry ports} the incoming access token
    must be delivered to (the incoming arc fans out to all of them) and
    the {e exit terminal} the token leaves from, or neither when the
    token passes the statement untouched.  A token may also have entry
    ports but no exit: asynchronous operations take a {e copy} of the
    token and the token itself passes through (Figure 14).

    Memory-operation order within a statement — scalar reads, then array
    reads innermost-first, then the store — makes value dependencies
    point forward along every access-token chain, so segments cannot
    deadlock. *)

type terminal = int * int
(** (node id, port index) — an output port when used as a source, an
    input port when used as a destination. *)

(** Section 6 transformation switches, consulted per variable. *)
type mode = {
  value_vars : string -> bool;
      (** 6.1: the variable's token carries its value; loads vanish,
          stores re-emit the token with the new value.  Sound for
          unaliased scalars with a private singleton token. *)
  parallel_reads : bool;
      (** 6.2: reads take token copies collected by a synch at the next
          write or statement exit, so read runs execute in parallel. *)
  async_stores : string -> bool;
      (** 6.3/Figure 14: the store takes a token copy; its completion
          terminal is reported in {!chain.async} for the engine's
          cross-iteration synchronisation. *)
  istructure : string -> bool;
      (** the named arrays live in I-structure memory; their operations
          detach from token ordering (deferred reads order instead). *)
}

(** Everything off: the plain Figures 3–7 and 12–13 translation. *)
val default_mode : mode

type chain = {
  entries : terminal list array;  (** per token: input ports to feed *)
  untagged : terminal list array;
      (** per token: input ports fed by the same incoming token but
          carrying no permission (constant triggers) *)
  exits : terminal option array;  (** per token: output terminal *)
  async : (string * terminal) list;
      (** async store completions: (variable, completion terminal) *)
}

(** [assign b ~tokens ?mode lv e] builds the segment of [lv := e]. *)
val assign :
  Dfg.Graph.Builder.t ->
  tokens:Token_map.t ->
  ?mode:mode ->
  Imp.Ast.lvalue ->
  Imp.Ast.expr ->
  chain

type fork_out =
  | F_pass  (** token untouched by the fork *)
  | F_switched of terminal * terminal  (** (true-exit, false-exit) *)
  | F_straight of terminal
      (** read by the predicate but not switched: single exit (under the
          optimized construction it flows to the fork's immediate
          postdominator) *)

type fork_chain = {
  f_entries : terminal list array;
  f_untagged : terminal list array;  (** trigger ports, no permission *)
  f_outs : fork_out array;
}

(** [fork b ~tokens ?mode ~switched pred] builds a fork segment:
    predicate reads and evaluation plus one switch per token index in
    [switched].  Under Schemas 1–3 every token is switched; under the
    optimized construction only those switch placement demands.
    @raise Invalid_argument for a constant predicate with an empty
    [switched] list (a dead test; callers skip such forks). *)
val fork :
  Dfg.Graph.Builder.t ->
  tokens:Token_map.t ->
  ?mode:mode ->
  switched:int list ->
  Imp.Ast.expr ->
  fork_chain
