(** Dataflow graphs: nodes, arcs, and an imperative builder.

    An arc connects an output port to an input port.  Several arcs may
    leave the same output port (fan-out duplicates the token); several
    arcs may enter the same input port only on [Merge] nodes.  Dotted
    access-token arcs vs. value arcs (the paper's drawing convention) are
    distinguished by the [dummy] flag, which is purely informational --
    the machine treats all tokens alike. *)

type port = { node : int; index : int }

type arc = {
  src : port;
  dst : port;
  dummy : bool;  (** carries a dummy (access) token; drawn dotted *)
  tokens : int list;
      (** token-universe elements whose permission flows along this arc;
          [[]] on value, predicate and trigger arcs *)
}

(** Certificate metadata for dynamic translation validation: the token
    universe's element names plus, per node, the elements a memory
    operation must hold permission for.  Computed by the translation
    driver from the {e true} alias/cover analysis, independent of the
    (possibly deliberately broken) token wiring of the graph itself. *)
type cert = {
  cert_elements : string array;  (** cover-element (token) names *)
  cert_require : int list array;
      (** per node: element indices a load/store on that node must hold;
          [[]] for non-memory nodes *)
}

type t = {
  nodes : Node.t array;
  arcs : arc array;
  outs : arc list array array;  (** [outs.(n).(p)] = arcs leaving port p of n *)
  ins : arc list array array;  (** [ins.(n).(p)] = arcs entering port p of n *)
  start : int;
  stop : int;
  mutable cert : cert option;
      (** certificate metadata, attached after {!Builder.finish} by the
          driver; [None] = this run cannot be certified *)
}

let num_nodes (g : t) = Array.length g.nodes
let num_arcs (g : t) = Array.length g.arcs
let node (g : t) (i : int) : Node.t = g.nodes.(i)
let kind (g : t) (i : int) : Node.kind = g.nodes.(i).Node.kind

(** [outgoing g n p] is the arcs leaving output port [p] of node [n]. *)
let outgoing (g : t) (n : int) (p : int) : arc list = g.outs.(n).(p)

(** [incoming g n p] is the arcs entering input port [p] of node [n]. *)
let incoming (g : t) (n : int) (p : int) : arc list = g.ins.(n).(p)

(** Imperative builder. *)
module Builder = struct
  type graph = t

  type t = {
    mutable rev_nodes : Node.t list;
    mutable count : int;
    mutable rev_arcs : arc list;
  }

  let create () : t = { rev_nodes = []; count = 0; rev_arcs = [] }

  (** [add b kind] creates a node and returns its id. *)
  let add (b : t) ?(label = "") (kind : Node.kind) : int =
    let id = b.count in
    b.count <- id + 1;
    let label = if label = "" then Node.kind_to_string kind else label in
    b.rev_nodes <- { Node.id; kind; label } :: b.rev_nodes;
    id

  (** [connect b ~dummy ~tokens (n1, p1) (n2, p2)] adds an arc from
      output port [p1] of [n1] to input port [p2] of [n2].  [tokens]
      labels the arc with the token-universe elements whose permission
      it carries (empty for value/predicate/trigger arcs). *)
  let connect (b : t) ?(dummy = false) ?(tokens = []) ((n1, p1) : int * int)
      ((n2, p2) : int * int) : unit =
    b.rev_arcs <-
      {
        src = { node = n1; index = p1 };
        dst = { node = n2; index = p2 };
        dummy;
        tokens;
      }
      :: b.rev_arcs

  exception Ill_formed of string

  (** [finish b] freezes the builder into a graph, checking arities and
      wiring.
      @raise Ill_formed if a port is out of range, a non-merge input port
      has other than exactly one arc, or start/end are not unique. *)
  let finish (b : t) : graph =
    let nodes =
      Array.of_list (List.rev b.rev_nodes)
    in
    Array.iteri
      (fun i n -> if n.Node.id <> i then raise (Ill_formed "node id mismatch"))
      nodes;
    let nn = Array.length nodes in
    let arcs = Array.of_list (List.rev b.rev_arcs) in
    let outs =
      Array.init nn (fun i ->
          Array.make (max 1 (Node.out_arity nodes.(i).Node.kind)) [])
    in
    let ins =
      Array.init nn (fun i ->
          Array.make (max 1 (Node.in_arity nodes.(i).Node.kind)) [])
    in
    Array.iter
      (fun a ->
        let check_port what { node = n; index = p } arity_of =
          if n < 0 || n >= nn then
            raise (Ill_formed (Fmt.str "%s node %d out of range" what n));
          let ar = arity_of nodes.(n).Node.kind in
          if p < 0 || p >= ar then
            raise
              (Ill_formed
                 (Fmt.str "%s port %d of node %d (%s, arity %d) out of range"
                    what p n nodes.(n).Node.label ar))
        in
        check_port "source" a.src Node.out_arity;
        check_port "destination" a.dst Node.in_arity;
        outs.(a.src.node).(a.src.index) <- a :: outs.(a.src.node).(a.src.index);
        ins.(a.dst.node).(a.dst.index) <- a :: ins.(a.dst.node).(a.dst.index))
      arcs;
    (* every non-merge input port: exactly one arc; merge: at least one *)
    Array.iteri
      (fun i n ->
        let arity = Node.in_arity n.Node.kind in
        for p = 0 to arity - 1 do
          let k = List.length ins.(i).(p) in
          match n.Node.kind with
          | Node.Merge ->
              if k < 1 then
                raise
                  (Ill_formed (Fmt.str "merge %d has no incoming arcs" i))
          | _ ->
              if k <> 1 then
                raise
                  (Ill_formed
                     (Fmt.str "input port %d of node %d (%s) has %d arcs" p i
                        n.Node.label k))
        done)
      nodes;
    let find_unique pred what =
      match
        Array.to_list nodes
        |> List.filter (fun n -> pred n.Node.kind)
        |> List.map (fun n -> n.Node.id)
      with
      | [ i ] -> i
      | l -> raise (Ill_formed (Fmt.str "%d %s nodes" (List.length l) what))
    in
    let start =
      find_unique (function Node.Start _ -> true | _ -> false) "start"
    in
    let stop = find_unique (function Node.End _ -> true | _ -> false) "end" in
    { nodes; arcs; outs; ins; start; stop; cert = None }
end

(** [set_cert g c] attaches certificate metadata (driver-side). *)
let set_cert (g : t) (c : cert option) : unit = g.cert <- c

(** [remap_cert c remap n] — the certificate after a rebuild pass that
    renumbered nodes: [remap.(old)] is the new id or [-1] if dropped
    (rebuild passes only drop pure value nodes, whose requirement is
    empty), [n] the new node count. *)
let remap_cert (c : cert) (remap : int array) (n : int) : cert =
  let require = Array.make n [] in
  Array.iteri
    (fun old nw -> if nw >= 0 then require.(nw) <- c.cert_require.(old))
    remap;
  { c with cert_require = require }

(** [iter_nodes g f] applies [f] to every node. *)
let iter_nodes (g : t) (f : Node.t -> unit) : unit = Array.iter f g.nodes

(** [count g p] counts nodes whose kind satisfies [p]. *)
let count (g : t) (p : Node.kind -> bool) : int =
  Array.fold_left
    (fun acc n -> if p n.Node.kind then acc + 1 else acc)
    0 g.nodes
