(** Dataflow graphs: nodes, arcs, and an imperative builder.

    An arc connects an output port to an input port.  Several arcs may
    leave one output port (fan-out duplicates the token); several arcs
    may enter one input port only on [Merge] nodes.  The [dummy] flag
    marks access-token arcs (the paper's dotted lines); it is
    informational — the machine treats all tokens alike. *)

type port = { node : int; index : int }

type arc = {
  src : port;
  dst : port;
  dummy : bool;  (** carries a dummy (access) token; drawn dashed *)
  tokens : int list;
      (** token-universe elements whose permission flows along this arc;
          [[]] on value, predicate and trigger arcs *)
}

(** Certificate metadata for dynamic translation validation (see
    {!Machine.Permission}): element names of the token universe plus the
    per-node access sets a memory operation must hold full (store) or
    partial (load) permission for.  Computed by the driver from the true
    alias/cover analysis — deliberately independent of the token wiring
    of the graph, so a mistranslated graph cannot vouch for itself. *)
type cert = {
  cert_elements : string array;  (** cover-element (token) names *)
  cert_require : int list array;
      (** per node: required element indices; [[]] for non-memory nodes *)
}

type t = {
  nodes : Node.t array;
  arcs : arc array;
  outs : arc list array array;  (** [outs.(n).(p)] — arcs leaving port p *)
  ins : arc list array array;  (** [ins.(n).(p)] — arcs entering port p *)
  start : int;
  stop : int;
  mutable cert : cert option;
      (** attached after {!Builder.finish} by the driver; [None] = the
          run cannot be certified *)
}

val num_nodes : t -> int
val num_arcs : t -> int
val node : t -> int -> Node.t
val kind : t -> int -> Node.kind
val outgoing : t -> int -> int -> arc list
val incoming : t -> int -> int -> arc list

(** Imperative builder; freeze with {!Builder.finish}. *)
module Builder : sig
  type graph = t
  type t

  val create : unit -> t

  (** [add b kind] creates a node and returns its id.  [label] defaults
      to the kind's rendering. *)
  val add : t -> ?label:string -> Node.kind -> int

  (** [connect b ~dummy ~tokens (n1, p1) (n2, p2)] — an arc from output
      port [p1] of [n1] to input port [p2] of [n2]; [tokens] labels the
      arc with the elements whose permission it carries. *)
  val connect : t -> ?dummy:bool -> ?tokens:int list -> int * int -> int * int -> unit

  exception Ill_formed of string

  (** Freeze into a graph, checking port ranges, the one-arc-per-input
      discipline (merges excepted) and start/end uniqueness.
      @raise Ill_formed on a violation. *)
  val finish : t -> graph
end

val iter_nodes : t -> (Node.t -> unit) -> unit

(** [set_cert g c] attaches certificate metadata (driver-side). *)
val set_cert : t -> cert option -> unit

(** [remap_cert c remap n] — the certificate after a rebuild pass:
    [remap.(old)] is the new node id ([-1] if dropped), [n] the new node
    count. *)
val remap_cert : cert -> int array -> int -> cert

(** [count g p] — nodes whose kind satisfies [p]. *)
val count : t -> (Node.kind -> bool) -> int
