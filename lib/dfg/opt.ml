(** Optimization passes over dataflow graphs.

    The paper's closing claim is that dataflow graphs can serve as the
    intermediate representation of an optimizing compiler.  This module
    backs the claim with three classical optimizations performed
    {e directly on the graph}:

    - {b constant folding}: an ALU operator whose operands are constants
      becomes a constant (triggered by one of the folded constants'
      triggers, preserving once-per-activation firing);
    - {b common subexpression elimination}: pure operators of identical
      kind fed from identical source ports compute identical values in
      every context and are merged;
    - {b dead node elimination}: pure operators whose outputs feed
      nothing are removed (their input tokens were fan-out copies).

    All three are semantics-preserving on translated graphs (differential
    tests).  Their scope is per-activation value computation: the
    translator already reads each variable once per statement, so wins
    come from repeated subexpressions and constant arithmetic within
    statements.  Memory operations, switches, merges, synchs and loop
    gateways are structural and never moved. *)

(* A graph under edit: nodes alive or dead, arcs rewritten through a
   source substitution. *)
type edit = {
  g : Graph.t;
  alive : bool array;
  replace : (Graph.port, Graph.port) Hashtbl.t;
      (** output-port substitution applied to arc sources *)
}

let rec resolve (e : edit) (p : Graph.port) : Graph.port =
  match Hashtbl.find_opt e.replace p with
  | Some q -> resolve e q
  | None -> p

(* Current source port feeding input port [i] of node [n]. *)
let input_source (e : edit) (n : int) (i : int) : Graph.port option =
  match Graph.incoming e.g n i with
  | [ a ] -> Some (resolve e a.Graph.src)
  | _ -> None

let const_of (e : edit) (folded : (int, Imp.Value.t) Hashtbl.t)
    (p : Graph.port) : Imp.Value.t option =
  if p.Graph.index = 0 && e.alive.(p.Graph.node) then
    match Hashtbl.find_opt folded p.Graph.node with
    | Some v -> Some v  (* cascaded folds *)
    | None -> (
        match Graph.kind e.g p.Graph.node with
        | Node.Const v -> Some v
        | _ -> None)
  else None

(* One constant-folding sweep; returns true if anything changed.  A
   folded operator is re-labelled as a Const in a fresh rebuild, so we
   record fold decisions and apply them during reconstruction. *)
let fold_decisions (e : edit) (folded : (int, Imp.Value.t) Hashtbl.t) : bool =
  let changed = ref false in
  for n = 0 to Graph.num_nodes e.g - 1 do
    if e.alive.(n) && not (Hashtbl.mem folded n) then begin
      match Graph.kind e.g n with
      | Node.Binop op -> (
          match (input_source e n 0, input_source e n 1) with
          | Some p0, Some p1 -> (
              match (const_of e folded p0, const_of e folded p1) with
              | Some v0, Some v1 -> (
                  match Imp.Value.binop op v0 v1 with
                  | v ->
                      Hashtbl.replace folded n v;
                      changed := true
                  | exception Imp.Value.Type_error _ -> ())
              | _ -> ())
          | _ -> ())
      | Node.Unop op -> (
          match input_source e n 0 with
          | Some p0 -> (
              match const_of e folded p0 with
              | Some v0 -> (
                  match Imp.Value.unop op v0 with
                  | v ->
                      Hashtbl.replace folded n v;
                      changed := true
                  | exception Imp.Value.Type_error _ -> ())
              | None -> ())
          | None -> ())
      | _ -> ()
    end
  done;
  !changed

(* CSE: two pure operators with the same kind and the same (resolved)
   input sources are merged; the later one's output is substituted by
   the earlier one's. *)
let cse_pass (e : edit) (folded : (int, Imp.Value.t) Hashtbl.t) : bool =
  let changed = ref false in
  let seen : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let pure_key n =
    let kind =
      match Hashtbl.find_opt folded n with
      | Some v -> Node.Const v
      | None -> Graph.kind e.g n
    in
    match kind with
    | Node.Binop _ | Node.Unop _ | Node.Const _ | Node.Id ->
        let ins =
          List.init
            (Node.in_arity (Graph.kind e.g n))
            (fun i ->
              match input_source e n i with
              | Some p -> Fmt.str "%d.%d" p.Graph.node p.Graph.index
              | None -> "?")
        in
        Some (Fmt.str "%s|%s" (Node.kind_to_string kind) (String.concat "," ins))
    | _ -> None
  in
  for n = 0 to Graph.num_nodes e.g - 1 do
    if e.alive.(n) then
      match pure_key n with
      | Some key -> (
          match Hashtbl.find_opt seen key with
          | Some m when m <> n ->
              (* merge n into m *)
              Hashtbl.replace e.replace
                { Graph.node = n; Graph.index = 0 }
                { Graph.node = m; Graph.index = 0 };
              e.alive.(n) <- false;
              changed := true
          | Some _ -> ()
          | None -> Hashtbl.replace seen key n)
      | None -> ()
  done;
  !changed

(* Dead pure nodes: no live arc resolves to any of their output ports.
   Operand arcs into folded nodes do not count as consumption (only the
   chosen trigger survives the rebuild); the trigger source is always a
   statement entry fan-out that also feeds other consumers, or a live
   constant handled by the cascade. *)
let dead_pass (e : edit) (folded : (int, Imp.Value.t) Hashtbl.t) : bool =
  let changed = ref false in
  let resolved_used : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun a ->
      let dst = a.Graph.dst.Graph.node in
      (* arcs into live, unfolded nodes consume; arcs into folded nodes
         consume only as potential triggers, which resolve transitively
         to live nodes during rebuild -- treat them as consuming so
         trigger chains stay alive *)
      (* operand arcs into folded nodes do not consume: the rebuild
         derives the trigger by walking through dead operand chains *)
      if e.alive.(dst) && not (Hashtbl.mem folded dst) then begin
        let src = resolve e a.Graph.src in
        Hashtbl.replace resolved_used src.Graph.node ()
      end)
    e.g.Graph.arcs;
  for n = 0 to Graph.num_nodes e.g - 1 do
    if e.alive.(n) then
      match Graph.kind e.g n with
      | Node.Const _ | Node.Binop _ | Node.Unop _ | Node.Id ->
          if not (Hashtbl.mem resolved_used n) then begin
            e.alive.(n) <- false;
            changed := true
          end
      | _ -> ()
  done;
  !changed

(** [run g] applies folding, CSE and dead-node elimination to a fixpoint
    and rebuilds the graph. *)
let run (g : Graph.t) : Graph.t =
  let e = { g; alive = Array.make (Graph.num_nodes g) true; replace = Hashtbl.create 16 } in
  let folded : (int, Imp.Value.t) Hashtbl.t = Hashtbl.create 16 in
  let continue_ = ref true in
  while !continue_ do
    let c1 = fold_decisions e folded in
    let c2 = cse_pass e folded in
    let c3 = dead_pass e folded in
    continue_ := c1 || c2 || c3
  done;
  if Array.for_all Fun.id e.alive && Hashtbl.length folded = 0 then g
  else begin
    (* rebuild *)
    let n = Graph.num_nodes g in
    let remap = Array.make n (-1) in
    let next = ref 0 in
    for i = 0 to n - 1 do
      if e.alive.(i) then begin
        remap.(i) <- !next;
        incr next
      end
    done;
    let b = Graph.Builder.create () in
    for i = 0 to n - 1 do
      if e.alive.(i) then begin
        let node = Graph.node g i in
        let kind, label =
          match Hashtbl.find_opt folded i with
          | Some v ->
              (Node.Const v, Fmt.str "folded %s" (Imp.Value.to_string v))
          | None -> (node.Node.kind, node.Node.label)
        in
        ignore (Graph.Builder.add b ~label kind)
      end
    done;
    (* arcs: keep arcs into live nodes; re-source through substitutions;
       drop VALUE inputs of folded nodes (a folded constant keeps only
       its trigger = its first input's source as trigger).  A folded
       node's in-arity changes from 2/1 to 1 (the trigger). *)
    let trigger_done = Array.make n false in
    Array.iter
      (fun a ->
        let dst = a.Graph.dst.Graph.node in
        if e.alive.(dst) then begin
          let src = resolve e a.Graph.src in
          if e.alive.(src.Graph.node) then
            match Hashtbl.find_opt folded dst with
            | Some _ ->
                (* the folded constant needs exactly one trigger; derive
                   it from the trigger of a constant operand (itself
                   possibly dead), else from the first incoming arc *)
                if not trigger_done.(dst) then begin
                  trigger_done.(dst) <- true;
                  (* find the transitive trigger: walk back through dead
                     const operands to a live source *)
                  let rec trigger_of (p : Graph.port) : Graph.port option =
                    if e.alive.(p.Graph.node) then Some p
                    else
                      match Graph.incoming e.g p.Graph.node 0 with
                      | [ a' ] -> trigger_of (resolve e a'.Graph.src)
                      | _ -> None
                  in
                  match trigger_of src with
                  | Some t ->
                      Graph.Builder.connect b ~dummy:a.Graph.dummy
                        (remap.(t.Graph.node), t.Graph.index)
                        (remap.(dst), 0)
                  | None -> ()
                end
            | None ->
                Graph.Builder.connect b ~dummy:a.Graph.dummy
                  ~tokens:a.Graph.tokens
                  (remap.(src.Graph.node), src.Graph.index)
                  (remap.(dst), a.Graph.dst.Graph.index)
          else begin
            (* source folded away entirely: can only be the operand of a
               folded node (already handled) or a dead chain *)
            match Hashtbl.find_opt folded dst with
            | Some _ when not trigger_done.(dst) -> (
                trigger_done.(dst) <- true;
                let rec trigger_of (p : Graph.port) : Graph.port option =
                  if e.alive.(p.Graph.node) then Some p
                  else
                    match Graph.incoming e.g p.Graph.node 0 with
                    | [ a' ] -> trigger_of (resolve e a'.Graph.src)
                    | _ -> None
                in
                match trigger_of src with
                | Some t ->
                    Graph.Builder.connect b ~dummy:true
                      (remap.(t.Graph.node), t.Graph.index)
                      (remap.(dst), 0)
                | None -> ())
            | _ -> ()
          end
        end)
      g.Graph.arcs;
    let out = Graph.Builder.finish b in
    (* permission labels live on structural arcs, which this pass never
       rewrites; the certificate only needs its node ids renumbered *)
    Option.iter
      (fun c ->
        Graph.set_cert out (Some (Graph.remap_cert c remap (Graph.num_nodes out))))
      g.Graph.cert;
    out
  end
