(** Peephole simplification of dataflow graphs.

    The translation introduces [Id] nodes as materialised fan-out points
    (value-passing entries).  After wiring, each [Id] can be spliced: its
    single input source feeds its consumers directly.  Also drops
    [Merge] nodes with a single incoming arc (no actual merging) and any
    node left without consumers transitively (cannot occur in translated
    graphs, but keeps the pass total).  Semantics-preserving; saves one
    routing cycle per spliced node. *)

(** [run g] returns the simplified graph.  Idempotent. *)
let run (g : Graph.t) : Graph.t =
  let n = Graph.num_nodes g in
  let splice = Array.make n false in
  for i = 0 to n - 1 do
    match Graph.kind g i with
    | Node.Id -> splice.(i) <- true
    | Node.Merge -> if List.length (Graph.incoming g i 0) = 1 then splice.(i) <- true
    | _ -> ()
  done;
  if not (Array.exists Fun.id splice) then g
  else begin
    (* resolve a source port through spliced nodes, unioning the dummy
       flag and permission labels of the chain *)
    let rec resolve (p : Graph.port) : Graph.port * bool * int list =
      if splice.(p.Graph.node) then
        match Graph.incoming g p.Graph.node 0 with
        | [ a ] ->
            let src, d, toks = resolve a.Graph.src in
            (src, d || a.Graph.dummy,
             List.sort_uniq compare (toks @ a.Graph.tokens))
        | _ -> assert false
      else (p, false, [])
    in
    let remap = Array.make n (-1) in
    let next = ref 0 in
    for i = 0 to n - 1 do
      if not splice.(i) then begin
        remap.(i) <- !next;
        incr next
      end
    done;
    let b = Graph.Builder.create () in
    for i = 0 to n - 1 do
      if not splice.(i) then begin
        let node = Graph.node g i in
        let id = Graph.Builder.add b ~label:node.Node.label node.Node.kind in
        assert (id = remap.(i))
      end
    done;
    Array.iter
      (fun a ->
        (* keep arcs whose destination survives; re-source through
           spliced chains *)
        if not splice.(a.Graph.dst.Graph.node) then begin
          let src, extra_dummy, extra_tokens = resolve a.Graph.src in
          if not splice.(src.Graph.node) then
            Graph.Builder.connect b
              ~dummy:(a.Graph.dummy || extra_dummy)
              ~tokens:(List.sort_uniq compare (a.Graph.tokens @ extra_tokens))
              (remap.(src.Graph.node), src.Graph.index)
              (remap.(a.Graph.dst.Graph.node), a.Graph.dst.Graph.index)
        end)
      g.Graph.arcs;
    let out = Graph.Builder.finish b in
    Option.iter
      (fun c ->
        Graph.set_cert out (Some (Graph.remap_cert c remap (Graph.num_nodes out))))
      g.Graph.cert;
    out
  end
