(** Static statistics of dataflow graphs: the quantities the paper's
    qualitative claims are about (graph size O(E·V), switch counts before
    and after the Section 4 optimization, synchronisation inputs under
    covers). *)

type t = {
  nodes : int;
  arcs : int;
  switches : int;
  merges : int;
  synchs : int;
  synch_inputs : int;  (** total synchronisation fan-in *)
  loads : int;
  stores : int;
  alu : int;  (** binops + unops + consts + ids *)
  loop_controls : int;
  dummy_arcs : int;
  critical_path : int;
      (** longest acyclic operator chain from Start (nodes counted, loop
          back arcs cut): the single-iteration critical path the machine
          cannot beat; the dynamic critical path reported by
          {!Machine.Interp} additionally unrolls loop iterations *)
}

(* Longest node-count path from [start] over forward arcs.  The graphs
   are cyclic (loop control); arcs closing a cycle — gray targets during
   the DFS — contribute length 0, which cuts every back arc exactly
   once and keeps the measure well-defined on arbitrary graphs. *)
let longest_path (g : Graph.t) : int =
  let nn = Graph.num_nodes g in
  let memo = Array.make nn (-1) in
  let on_stack = Array.make nn false in
  let rec visit n =
    if memo.(n) >= 0 then memo.(n)
    else if on_stack.(n) then 0
    else begin
      on_stack.(n) <- true;
      let best = ref 0 in
      Array.iter
        (List.iter (fun a ->
             let d = visit a.Graph.dst.Graph.node in
             if d > !best then best := d))
        g.Graph.outs.(n);
      on_stack.(n) <- false;
      memo.(n) <- 1 + !best;
      1 + !best
    end
  in
  visit g.Graph.start

let of_graph (g : Graph.t) : t =
  let count p = Graph.count g p in
  let synch_inputs =
    Array.fold_left
      (fun acc n ->
        match n.Node.kind with Node.Synch k -> acc + k | _ -> acc)
      0 g.Graph.nodes
  in
  {
    nodes = Graph.num_nodes g;
    arcs = Graph.num_arcs g;
    switches = count (function Node.Switch -> true | _ -> false);
    merges = count (function Node.Merge -> true | _ -> false);
    synchs = count (function Node.Synch _ -> true | _ -> false);
    synch_inputs;
    loads = count (function Node.Load _ -> true | _ -> false);
    stores = count (function Node.Store _ -> true | _ -> false);
    alu =
      count (function
        | Node.Binop _ | Node.Unop _ | Node.Const _ | Node.Id | Node.Sink -> true
        | _ -> false);
    loop_controls =
      count (function Node.Loop_entry _ | Node.Loop_exit _ -> true | _ -> false);
    dummy_arcs =
      Array.fold_left
        (fun acc a -> if a.Graph.dummy then acc + 1 else acc)
        0 g.Graph.arcs;
    critical_path = longest_path g;
  }

let pp ppf (s : t) =
  Fmt.pf ppf
    "nodes=%d arcs=%d switches=%d merges=%d synchs=%d(synch-in=%d) loads=%d \
     stores=%d alu=%d loop-ctl=%d dummy-arcs=%d crit-path=%d"
    s.nodes s.arcs s.switches s.merges s.synchs s.synch_inputs s.loads
    s.stores s.alu s.loop_controls s.dummy_arcs s.critical_path

let to_string (s : t) = Fmt.str "%a" pp s
