(** Static statistics of dataflow graphs: the quantities the paper's
    qualitative claims are about — graph size O(E·V), switch counts
    before/after the Section 4 optimization, synchronisation inputs
    under covers. *)

type t = {
  nodes : int;
  arcs : int;
  switches : int;
  merges : int;
  synchs : int;
  synch_inputs : int;  (** total synchronisation fan-in *)
  loads : int;
  stores : int;
  alu : int;  (** binops + unops + consts + ids + sinks *)
  loop_controls : int;
  dummy_arcs : int;
  critical_path : int;
      (** longest acyclic operator chain from Start (nodes counted, loop
          back arcs cut): the single-iteration static critical path, for
          comparison with the machine's dynamic critical path *)
}

val of_graph : Graph.t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
