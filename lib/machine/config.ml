(** Machine configuration: processing-element count and operation
    latencies.

    The simulator is cycle-driven: a firing starts in some cycle and its
    output tokens are delivered [latency] cycles later.  With [pes = None]
    every enabled operation starts immediately (idealised dataflow: the
    finish time is the graph's critical path under the latency model);
    with [pes = Some p] at most [p] operations start per cycle, modelling
    a [p]-processor Monsoon-like configuration.  Memory operations are
    split-phase: they occupy a PE only in their issue cycle and complete
    [memory] cycles later without blocking the pipeline. *)

type latencies = {
  alu : int;  (** arithmetic, comparisons, constants, identity *)
  memory : int;  (** split-phase load/store round trip *)
  routing : int;  (** switch, merge, synch, loop control, start/end *)
}

let default_latencies = { alu = 1; memory = 4; routing = 1 }

(** Unit latencies: every operation takes one cycle.  Under this model
    the unbounded-PE cycle count is exactly the dataflow graph's critical
    path length in operators, the paper's abstract parallelism measure. *)
let unit_latencies = { alu = 1; memory = 1; routing = 1 }

(** Ready-queue discipline when PEs are bounded.  Execution results are
    identical under both (the graphs are determinate); only timing
    changes.  The determinacy property is part of the test suite. *)
type policy =
  | Fifo  (** oldest enabled operation first (default) *)
  | Lifo  (** newest enabled operation first (depth-first-ish) *)

(** Which execution core runs the graph.  [Reference] is the
    map-and-list interpreter this module always had — the differential
    oracle's ground machine.  [Packed] is the compiled engine
    ({!Packed}): the graph is lowered once to flat instruction arrays
    and tokens rendezvous in preallocated per-context frames with
    presence bits, driven by an event-driven ready wheel.  Determinate
    graphs produce bit-identical final stores under both; the packed
    engine's observability is coarser (no per-cycle curves, no dynamic
    critical path) and fault injection stays a reference-engine
    feature. *)
type engine =
  | Reference
  | Packed

let engine_to_string = function Reference -> "reference" | Packed -> "packed"
let valid_engine_names = "reference, packed"

(** @raise Failure on an unknown name, listing the valid engines. *)
let engine_of_string (s : string) : engine =
  match String.lowercase_ascii (String.trim s) with
  | "reference" | "ref" -> Reference
  | "packed" -> Packed
  | other ->
      Fmt.failwith "unknown engine %S (valid engines: %s)" other
        valid_engine_names

type t = {
  pes : int option;  (** [None] = unbounded parallelism *)
  memory_ports : int option;
      (** at most this many memory operations may issue per cycle
          ([None] = unbounded): a simple memory-bandwidth model *)
  latencies : latencies;
  policy : policy;
  max_cycles : int;  (** safety bound; exceeded = divergence *)
  detect_collisions : bool;
      (** raise on two tokens meeting at the same (node, context, port) --
          the single-token-per-arc discipline of explicit token store
          machines.  Disabling it lets experiments demonstrate the
          Figure 8 pile-up. *)
  max_matching : int option;
      (** bounded waiting-matching store capacity ([None] = unbounded).
          A delivery that would open an entry beyond the bound is
          throttled to the next cycle instead of crashing; sustained
          overflow shows up as pressure in the diagnosis (and ultimately
          as divergence), modelling a finite ETS frame memory that
          degrades gracefully. *)
  engine : engine;
      (** execution core; [Reference] unless explicitly switched.  The
          packed engine interprets [max_matching] at frame granularity
          (simultaneously live contexts) rather than per (node, context)
          entry. *)
}

let default =
  {
    pes = None;
    memory_ports = None;
    latencies = default_latencies;
    policy = Fifo;
    max_cycles = 2_000_000;
    detect_collisions = true;
    max_matching = None;
    engine = Reference;
  }

(** [ideal] -- unbounded PEs, unit latencies: pure critical-path
    measurement. *)
let ideal = { default with latencies = unit_latencies }

(** [bounded p] -- [p] processing elements, default latencies. *)
let bounded (p : int) = { default with pes = Some p }

let latency (t : t) (kind : Dfg.Node.kind) : int =
  match kind with
  | Dfg.Node.Binop _ | Dfg.Node.Unop _ | Dfg.Node.Const _ | Dfg.Node.Id
  | Dfg.Node.Sink ->
      t.latencies.alu
  | Dfg.Node.Load _ | Dfg.Node.Store _ -> t.latencies.memory
  | Dfg.Node.Switch | Dfg.Node.Merge | Dfg.Node.Synch _
  | Dfg.Node.Loop_entry _ | Dfg.Node.Loop_exit _ | Dfg.Node.Start _
  | Dfg.Node.End _ ->
      t.latencies.routing
