(** Machine configuration: processing-element count, operation latencies
    and scheduling policy.

    The simulator is cycle-driven: a firing starts in some cycle and its
    output tokens are delivered [latency] cycles later.  With
    [pes = None] every enabled operation starts immediately (idealised
    dataflow: the finish time is the graph's critical path under the
    latency model); with [pes = Some p] at most [p] operations start per
    cycle.  Memory operations are split-phase: they occupy a PE only in
    their issue cycle and complete [memory] cycles later without blocking
    the pipeline. *)

type latencies = {
  alu : int;  (** arithmetic, comparisons, constants, identity, sink *)
  memory : int;  (** split-phase load/store round trip *)
  routing : int;  (** switch, merge, synch, loop control, start/end *)
}

val default_latencies : latencies

(** Unit latencies: every operation takes one cycle; the unbounded-PE
    cycle count is then exactly the graph's critical path length in
    operators, the paper's abstract parallelism measure. *)
val unit_latencies : latencies

(** Ready-queue discipline when PEs are bounded.  Execution results are
    identical under both (the translated graphs are determinate); only
    timing changes. *)
type policy =
  | Fifo  (** oldest enabled operation first (default) *)
  | Lifo  (** newest enabled operation first *)

(** Which execution core runs the graph.  [Reference] is the original
    map-and-list interpreter — the differential oracle's ground machine.
    [Packed] is the compiled engine ({!Packed}): flat instruction
    arrays, preallocated per-context frames with presence bits, and an
    event-driven ready wheel.  Determinate graphs produce bit-identical
    final stores under both engines; packed observability is coarser
    (no per-cycle curves or dynamic critical path) and fault injection
    remains a reference-engine feature. *)
type engine =
  | Reference
  | Packed

val engine_to_string : engine -> string

(** The valid names accepted by {!engine_of_string}, for error
    messages and CLI docs. *)
val valid_engine_names : string

(** Accepts ["reference"]/["ref"] and ["packed"].
    @raise Failure on anything else, listing the valid engines. *)
val engine_of_string : string -> engine

type t = {
  pes : int option;  (** [None] = unbounded parallelism *)
  memory_ports : int option;
      (** at most this many memory operations may issue per cycle
          ([None] = unbounded): a simple memory-bandwidth model *)
  latencies : latencies;
  policy : policy;
  max_cycles : int;  (** safety bound; exceeded = divergence *)
  detect_collisions : bool;
      (** raise on two tokens meeting at the same (node, context, port) —
          the single-token-per-arc discipline of explicit token store
          machines.  Disabling it lets experiments demonstrate the
          Figure 8 pile-up silently corrupting execution instead. *)
  max_matching : int option;
      (** bounded waiting-matching store capacity ([None] = unbounded).
          Deliveries that would overflow are throttled to the next cycle
          and counted as pressure in the diagnosis rather than crashing
          — a finite ETS frame memory that degrades gracefully.  The
          packed engine reads the bound at frame granularity:
          simultaneously live iteration contexts instead of (node,
          context) entries. *)
  engine : engine;  (** execution core; [Reference] by default *)
}

(** Unbounded PEs, default latencies, FIFO, collision detection on. *)
val default : t

(** Unbounded PEs with unit latencies: pure critical-path measurement. *)
val ideal : t

(** [bounded p] — [p] processing elements, default latencies. *)
val bounded : int -> t

(** [latency t kind] is the cycle cost of one firing of [kind]. *)
val latency : t -> Dfg.Node.kind -> int
