(** Structured post-mortems of dataflow execution (see the interface).
    Construction happens inside {!Interp}; this module owns the types
    and the rendering. *)

type blocked = {
  b_node : int;
  b_label : string;
  b_ctx : Context.t;
  b_present : int list;
  b_missing : int list;
  b_pe : int option;
}

type pressure = {
  capacity : int option;
  peak : int;
  throttled : int;
  spilled : int;
}

type net_pressure = {
  net_messages : int;
  net_backpressure : int;
  net_peak_queue : int;
  net_peak_in_flight : int;
}

type verdict =
  | Clean
  | Deadlock
  | Leftover of int
  | Collision of string
  | Double_write of string
  | Diverged of int
  | Corrupted of string

type t = {
  verdict : verdict;
  cycles : int;
  leftover_tokens : int;
  blocked : blocked list;
  deferred_reads : (int * int) list;
  tokens_by_context : (Context.t * int) list;
  waiting_by_pe : (int * int) list;
  pressure : pressure;
  network : net_pressure option;
  faults : Fault.event list;
  sanitizer : Sanitize.violation list;
  permission : Permission.violation list;
  certified : (int * int) option;
      (** (elements, ownership checks) when the run carried a
          fractional-permission certificate; [None] = not certified *)
}

let is_clean (d : t) =
  d.verdict = Clean && d.faults = [] && d.sanitizer = [] && d.permission = []

let verdict_to_string = function
  | Clean -> "clean"
  | Deadlock -> "deadlock (End never fired)"
  | Leftover n -> Fmt.str "completed with %d leftover tokens" n
  | Collision m -> Fmt.str "token collision: %s" m
  | Double_write m -> Fmt.str "I-structure double write: %s" m
  | Diverged bound -> Fmt.str "diverged (exceeded %d cycles)" bound
  | Corrupted m -> Fmt.str "corrupted (sanitizer): %s" m

let pp_blocked ppf (b : blocked) =
  (match b.b_pe with
  | Some pe -> Fmt.pf ppf "[pe %d] " pe
  | None -> ());
  Fmt.pf ppf "node %d (%s) ctx %s: have ports {%a}, missing {%a}" b.b_node
    b.b_label
    (Context.to_string b.b_ctx)
    Fmt.(list ~sep:comma int)
    b.b_present
    Fmt.(list ~sep:comma int)
    b.b_missing

let pp ppf (d : t) =
  Fmt.pf ppf "verdict: %s@." (verdict_to_string d.verdict);
  Fmt.pf ppf "cycles reached: %d, leftover tokens: %d@." d.cycles
    d.leftover_tokens;
  (match d.pressure.capacity with
  | Some cap ->
      Fmt.pf ppf
        "matching store: peak %d of capacity %d, %d deliveries throttled, %d \
         spilled over capacity@."
        d.pressure.peak cap d.pressure.throttled d.pressure.spilled
  | None ->
      if d.pressure.peak > 0 then
        Fmt.pf ppf "matching store: peak %d entries (unbounded)@."
          d.pressure.peak);
  (match d.network with
  | Some n ->
      Fmt.pf ppf
        "network: %d cross-PE messages, %d backpressured enqueues, peak \
         queue %d, peak in flight %d@."
        n.net_messages n.net_backpressure n.net_peak_queue n.net_peak_in_flight
  | None -> ());
  if d.blocked <> [] then begin
    Fmt.pf ppf "blocked frontier (%d partial matches):@."
      (List.length d.blocked);
    List.iteri
      (fun i b -> if i < 20 then Fmt.pf ppf "  %a@." pp_blocked b)
      d.blocked;
    if List.length d.blocked > 20 then
      Fmt.pf ppf "  ... and %d more@." (List.length d.blocked - 20)
  end;
  if d.deferred_reads <> [] then begin
    Fmt.pf ppf "deferred I-structure reads:@.";
    List.iter
      (fun (addr, n) -> Fmt.pf ppf "  address %d: %d reader(s)@." addr n)
      d.deferred_reads
  end;
  if d.tokens_by_context <> [] then begin
    Fmt.pf ppf "waiting tokens per context:@.";
    List.iteri
      (fun i (ctx, n) ->
        if i < 10 then Fmt.pf ppf "  %-16s %d@." (Context.to_string ctx) n)
      d.tokens_by_context
  end;
  if d.waiting_by_pe <> [] then begin
    Fmt.pf ppf "waiting tokens per PE:@.";
    List.iter
      (fun (pe, n) -> Fmt.pf ppf "  pe %-3d %d@." pe n)
      d.waiting_by_pe
  end;
  if d.sanitizer <> [] then begin
    Fmt.pf ppf "sanitizer violations (%d):@." (List.length d.sanitizer);
    List.iteri
      (fun i v -> if i < 20 then Fmt.pf ppf "  %a@." Sanitize.pp_violation v)
      d.sanitizer
  end;
  if d.permission <> [] then begin
    Fmt.pf ppf "permission violations (%d):@." (List.length d.permission);
    List.iteri
      (fun i v ->
        if i < 20 then Fmt.pf ppf "  %a@." Permission.pp_violation v)
      d.permission;
    if List.length d.permission > 20 then
      Fmt.pf ppf "  ... and %d more@." (List.length d.permission - 20)
  end;
  if d.faults <> [] then begin
    Fmt.pf ppf "injected faults (%d):@." (List.length d.faults);
    List.iteri
      (fun i e -> if i < 20 then Fmt.pf ppf "  %a@." Fault.pp_event e)
      d.faults;
    if List.length d.faults > 20 then
      Fmt.pf ppf "  ... and %d more@." (List.length d.faults - 20)
  end

let to_string (d : t) = Fmt.str "%a" pp d
