(** Structured post-mortems of dataflow execution.

    Every run of {!Interp} — clean, deadlocked, collided or diverged —
    yields a diagnosis: a verdict plus the machine state needed to
    understand it.  On a stall this is the waiting-matching store's
    partial matches (the frontier of operators blocked on missing
    inputs), per-context token counts and any deferred I-structure
    reads; on matching-store pressure it is the capacity model's
    throttle statistics; with fault injection enabled it carries the
    fault log, so no injected corruption can pass silently. *)

(** One operator with a partial match: some input ports filled, some
    still waiting.  This is the stall frontier — the nodes that would
    fire next if the missing tokens arrived. *)
type blocked = {
  b_node : int;
  b_label : string;  (** the node's rendering, e.g. ["load x"] *)
  b_ctx : Context.t;
  b_present : int list;  (** input ports holding a token *)
  b_missing : int list;  (** input ports still empty *)
  b_pe : int option;
      (** PE whose matching store holds the partial match; [None] on
          single-PE runs *)
}

(** Waiting-matching store pressure under the bounded-capacity model
    ({!Config.max_matching}). *)
type pressure = {
  capacity : int option;  (** [None] = unbounded store *)
  peak : int;  (** most simultaneous entries observed *)
  throttled : int;
      (** deliveries postponed because the store was at capacity *)
  spilled : int;
      (** deliveries admitted over capacity to break a stagnant cycle in
          which every pending delivery was throttled (the overflow
          mechanism that keeps the bounded store livelock-free) *)
}

(** Interconnect pressure of a multiprocessor run ({!Multiproc}); absent
    on single-PE runs.  Backpressured enqueues are counted, never
    dropped — a finite injection queue slows the machine down, it does
    not lose tokens. *)
type net_pressure = {
  net_messages : int;  (** tokens that crossed between PEs *)
  net_backpressure : int;
      (** enqueues that found the finite injection queue already full *)
  net_peak_queue : int;  (** deepest single injection queue observed *)
  net_peak_in_flight : int;  (** most messages queued + flying at once *)
}

type verdict =
  | Clean  (** End fired, no tokens left *)
  | Deadlock  (** quiescent but End never fired: tokens starved *)
  | Leftover of int  (** End fired with that many unconsumed tokens *)
  | Collision of string  (** single-token-per-arc discipline violated *)
  | Double_write of string  (** I-structure cell written twice *)
  | Diverged of int  (** the cycle bound that was exceeded *)
  | Corrupted of string
      (** the sanitizer found an invariant violation recovery could not
          (or was not allowed to) roll back *)

type t = {
  verdict : verdict;
  cycles : int;  (** last cycle reached *)
  leftover_tokens : int;
  blocked : blocked list;  (** stall frontier, largest contexts first *)
  deferred_reads : (int * int) list;  (** address, waiting readers *)
  tokens_by_context : (Context.t * int) list;
      (** waiting tokens per iteration context, descending *)
  waiting_by_pe : (int * int) list;
      (** waiting tokens per PE (multiprocessor runs; [] on single-PE) —
          a dead or backpressured PE shows up as the one hoarding
          partial matches *)
  pressure : pressure;
  network : net_pressure option;  (** [Some] only for multiprocessor runs *)
  faults : Fault.event list;  (** injected faults, in injection order *)
  sanitizer : Sanitize.violation list;
      (** token-conservation violations still standing at the end *)
  permission : Permission.violation list;
      (** fractional-permission certificate violations still standing;
          always [] when the run carried no certificate *)
  certified : (int * int) option;
      (** (elements, ownership checks) when the run carried a
          fractional-permission certificate; [None] = not certified *)
}

(** [is_clean d] — verdict is {!Clean}, no faults were injected and
    neither the sanitizer nor the permission certificate found
    anything. *)
val is_clean : t -> bool

val verdict_to_string : verdict -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
