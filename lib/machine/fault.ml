(** Deterministic fault injection: every decision is a pure hash of
    (seed, event index), so a seed fully determines the fault plan.  See
    the interface for the detection story per fault class. *)

type fault =
  | Drop
  | Duplicate
  | Bit_flip of int
  | Delay of int
  | Port_stall of int
  | Reorder of int
  | Pe_death

let fault_to_string = function
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Bit_flip b -> Fmt.str "bit-flip(%d)" b
  | Delay d -> Fmt.str "delay(%d)" d
  | Port_stall c -> Fmt.str "port-stall(%d)" c
  | Reorder d -> Fmt.str "reorder(%d)" d
  | Pe_death -> "pe-death"

type classes = {
  drop : bool;
  duplicate : bool;
  bit_flip : bool;
  delay : bool;
  port_stall : bool;
  reorder : bool;
}

let no_classes =
  { drop = false; duplicate = false; bit_flip = false; delay = false;
    port_stall = false; reorder = false }

let all_classes =
  { drop = true; duplicate = true; bit_flip = true; delay = true;
    port_stall = true; reorder = true }

(** Link-level classes only: what the reliable transport masks.  No
    bit-flips (unmasked corruption) and no port stalls (a memory-side
    fault). *)
let link_classes =
  { no_classes with drop = true; duplicate = true; delay = true;
    reorder = true }

let valid_class_names =
  "drop, dup|duplicate, flip|bitflip|bit-flip, delay, stall|port-stall, \
   reorder, all"

let classes_of_string (s : string) : classes =
  String.split_on_char ',' s
  |> List.fold_left
       (fun acc name ->
         match String.trim name with
         | "" -> acc
         | "all" -> all_classes
         | "drop" -> { acc with drop = true }
         | "dup" | "duplicate" -> { acc with duplicate = true }
         | "flip" | "bitflip" | "bit-flip" -> { acc with bit_flip = true }
         | "delay" -> { acc with delay = true }
         | "stall" | "port-stall" -> { acc with port_stall = true }
         | "reorder" -> { acc with reorder = true }
         | other ->
             Fmt.failwith "unknown fault class %S (valid classes: %s)" other
               valid_class_names)
       no_classes

type spec = {
  seed : int;
  rate : float;
  classes : classes;
  max_faults : int;
}

let spec ?(rate = 0.01) ?(classes = all_classes) ?(max_faults = max_int) ~seed
    () =
  { seed; rate; classes; max_faults }

type event = {
  ev_index : int;
  ev_cycle : int;
  ev_node : int;
  ev_fault : fault;
}

let pp_event ppf (e : event) =
  Fmt.pf ppf "event %d @@cycle %d node %d: %s" e.ev_index e.ev_cycle e.ev_node
    (fault_to_string e.ev_fault)

type plan = {
  p_spec : spec;
  mutable deliveries : int;  (* delivery events consulted so far *)
  mutable issues : int;  (* memory-issue events consulted so far *)
  mutable links : int;  (* link (wire) events consulted so far *)
  mutable injected : int;
  mutable log : event list;  (* newest first *)
}

let make (s : spec) : plan =
  { p_spec = s; deliveries = 0; issues = 0; links = 0; injected = 0; log = [] }

let seed (p : plan) = p.p_spec.seed
let events (p : plan) = List.rev p.log

type action = Pass | Act of fault

(* A small avalanche mixer (murmur3 finalizer constants): decision [i]
   is a pure function of (seed, stream, i) and stable across runs and
   OCaml versions. *)
let mix (seed : int) (stream : int) (i : int) : int =
  let h = ref (seed lxor (stream * 0x9E3779B1) lxor (i * 0x85EBCA6B)) in
  h := !h lxor (!h lsr 16);
  h := !h * 0x85EBCA6B land max_int;
  h := !h lxor (!h lsr 13);
  h := !h * 0xC2B2AE35 land max_int;
  h := !h lxor (!h lsr 16);
  !h land max_int

let fires (s : spec) (h : int) : bool =
  float_of_int (h mod 1_000_000) < s.rate *. 1_000_000.

(* Delivery-boundary classes enabled in the spec, in a fixed order. *)
let delivery_menu (c : classes) : (int -> fault) list =
  List.filter_map
    (fun x -> x)
    [
      (if c.drop then Some (fun _ -> Drop) else None);
      (if c.duplicate then Some (fun _ -> Duplicate) else None);
      (if c.bit_flip then Some (fun h -> Bit_flip (h mod 62)) else None);
      (if c.delay then Some (fun h -> Delay (1 + (h mod 7))) else None);
    ]

let decision (s : spec) (i : int) : action =
  let menu = delivery_menu s.classes in
  if menu = [] then Pass
  else
    let h = mix s.seed 1 i in
    if not (fires s h) then Pass
    else
      let h' = mix s.seed 2 i in
      Act ((List.nth menu (h' mod List.length menu)) (mix s.seed 3 i))

let record (p : plan) ~index ~cycle ~node (f : fault) =
  p.injected <- p.injected + 1;
  p.log <-
    { ev_index = index; ev_cycle = cycle; ev_node = node; ev_fault = f }
    :: p.log

let on_delivery (p : plan) ~cycle ~node ~value:_ : action =
  let i = p.deliveries in
  p.deliveries <- i + 1;
  if p.injected >= p.p_spec.max_faults then Pass
  else
    match decision p.p_spec i with
    | Pass -> Pass
    | Act f ->
        record p ~index:i ~cycle ~node f;
        Act f

(* Wire-boundary classes enabled in the spec, in a fixed order.  These
   are the faults a lossy inter-PE link can exhibit: the reliable
   transport masks drop/duplicate/delay/reorder; a bit flip corrupts the
   payload in a way sequence numbers cannot see (no checksums), so it is
   the sanitizer's problem. *)
let link_menu (c : classes) : (int -> fault) list =
  List.filter_map
    (fun x -> x)
    [
      (if c.drop then Some (fun _ -> Drop) else None);
      (if c.duplicate then Some (fun _ -> Duplicate) else None);
      (if c.delay then Some (fun h -> Delay (1 + (h mod 7))) else None);
      (if c.reorder then Some (fun h -> Reorder (1 + (h mod 3))) else None);
      (if c.bit_flip then Some (fun h -> Bit_flip (h mod 62)) else None);
    ]

let link_decision (s : spec) (i : int) : action =
  let menu = link_menu s.classes in
  if menu = [] then Pass
  else
    let h = mix s.seed 6 i in
    if not (fires s h) then Pass
    else
      let h' = mix s.seed 7 i in
      Act ((List.nth menu (h' mod List.length menu)) (mix s.seed 8 i))

let on_link (p : plan) ~cycle ~dst : action =
  let i = p.links in
  p.links <- i + 1;
  if p.injected >= p.p_spec.max_faults then Pass
  else
    match link_decision p.p_spec i with
    | Pass -> Pass
    | Act f ->
        record p ~index:i ~cycle ~node:dst f;
        Act f

let record_death (p : plan) ~cycle ~pe =
  p.log <-
    { ev_index = p.links; ev_cycle = cycle; ev_node = pe; ev_fault = Pe_death }
    :: p.log

let on_memory_issue (p : plan) ~cycle ~node : bool =
  let i = p.issues in
  p.issues <- i + 1;
  if (not p.p_spec.classes.port_stall) || p.injected >= p.p_spec.max_faults
  then false
  else
    let h = mix p.p_spec.seed 4 i in
    if fires p.p_spec h then begin
      record p ~index:i ~cycle ~node
        (Port_stall (1 + (mix p.p_spec.seed 5 i mod 3)));
      true
    end
    else false

let flip_value (bit : int) (v : Imp.Value.t) : Imp.Value.t =
  match v with
  | Imp.Value.Int n -> Imp.Value.Int (n lxor (1 lsl (bit mod 62)))
  | Imp.Value.Bool b -> Imp.Value.Bool (not b)
