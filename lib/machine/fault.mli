(** Deterministic fault injection for the ETS machine.

    A fault plan is a pure function of a seed: decision [i] depends only
    on [(seed, i)], never on wall-clock time or global random state, so
    the same seed on the same program and configuration reproduces the
    same faults, the same detections and the same diagnosis — the
    property the robustness tests rely on.

    Faults are injected at the two boundaries the machine exposes:

    - {e token delivery} (every token scheduled onto an arc): the token
      can be dropped, duplicated, bit-flipped or delayed;
    - {e memory issue} (every load/store leaving the ready queue): the
      memory port can stall, bouncing the operation to a later cycle.

    Each corruption class maps to a detection mechanism rather than a
    silently wrong store: duplicates trip the single-token-per-arc
    check ({!Interp.Token_collision}), drops starve the graph and are
    reported by the stall diagnosis ({!Diagnosis.t}'s blocked frontier),
    delays and port stalls perturb timing only (determinacy keeps the
    store intact), and bit-flips are recorded in the fault log carried
    by the diagnosis so a downstream store comparison can attribute the
    corruption. *)

type fault =
  | Drop  (** the token never arrives *)
  | Duplicate  (** the token arrives twice in the same cycle *)
  | Bit_flip of int  (** payload corrupted: bit [i] of an Int flipped,
                         Bools negated *)
  | Delay of int  (** delivery postponed by that many cycles *)
  | Port_stall of int
      (** the memory port refuses issue; the operation retries *)
  | Reorder of int
      (** wire fault: the frame is held back that many cycles so later
          traffic on the link overtakes it *)
  | Pe_death  (** fail-stop: the PE stops executing (see {!Recovery}) *)

val fault_to_string : fault -> string

(** Which fault classes the plan may draw from. *)
type classes = {
  drop : bool;
  duplicate : bool;
  bit_flip : bool;
  delay : bool;
  port_stall : bool;
  reorder : bool;
}

val no_classes : classes
val all_classes : classes

(** The classes a lossy inter-PE link exhibits and the reliable
    transport masks: drop, duplicate, delay, reorder — no bit flips
    (unmasked payload corruption) and no port stalls. *)
val link_classes : classes

(** [classes_of_string "drop,dup,flip,delay,stall,reorder"] (or "all").
    @raise Failure on an unknown class name; the message lists the valid
    class names. *)
val classes_of_string : string -> classes

type spec = {
  seed : int;
  rate : float;  (** per-event injection probability in [0, 1] *)
  classes : classes;
  max_faults : int;  (** total injections are capped at this many *)
}

val spec :
  ?rate:float -> ?classes:classes -> ?max_faults:int -> seed:int -> unit -> spec

(** One injected fault, as it actually happened during a run. *)
type event = {
  ev_index : int;  (** delivery (or memory-issue) sequence number *)
  ev_cycle : int;  (** cycle the event was scheduled for *)
  ev_node : int;  (** destination node (delivery) or issuing node (stall) *)
  ev_fault : fault;
}

val pp_event : Format.formatter -> event -> unit

(** A live plan: the spec plus the log of injections performed so far.
    Plans are single-use — make a fresh one per run. *)
type plan

val make : spec -> plan
val seed : plan -> int

(** Faults injected so far, in injection order. *)
val events : plan -> event list

(** What the machine should do with one token delivery. *)
type action = Pass | Act of fault

(** [on_delivery plan ~cycle ~node ~value] decides the fate of the next
    token delivery and logs any injection.  Only delivery classes (drop,
    duplicate, bit-flip, delay) are drawn here. *)
val on_delivery : plan -> cycle:int -> node:int -> value:Imp.Value.t -> action

(** [on_memory_issue plan ~cycle ~node] decides whether the next memory
    issue is refused by a stalled port (and logs it). *)
val on_memory_issue : plan -> cycle:int -> node:int -> bool

(** [on_link plan ~cycle ~dst] decides the fate of the next frame put on
    the inter-PE wire (and logs any injection, with [ev_node] carrying
    the {e destination PE}).  Draws from the link classes of the spec
    (drop, duplicate, delay, reorder, bit-flip); a fresh decision stream,
    independent of the delivery and memory-issue streams. *)
val on_link : plan -> cycle:int -> dst:int -> action

(** [record_death plan ~cycle ~pe] logs a fail-stop PE death (scheduled
    by {!Recovery}, not drawn per-event) so the diagnosis carries it. *)
val record_death : plan -> cycle:int -> pe:int -> unit

(** [flip_value bit v] — the corrupted payload: Ints get [bit] flipped
    (modulo the int width), Bools are negated. *)
val flip_value : int -> Imp.Value.t -> Imp.Value.t

(** [decision spec i] — the pure decision function underlying
    {!on_delivery}: what the plan will do to delivery event [i].  Exposed
    so tests can enumerate a plan without running the machine. *)
val decision : spec -> int -> action

(** [link_decision spec i] — likewise for {!on_link}: what the plan will
    do to wire event [i]. *)
val link_decision : spec -> int -> action

(** [mix seed stream i] — the avalanche hash every decision stream draws
    from: a pure function of its arguments, stable across runs and OCaml
    versions.  Exposed so other seeded schedules (e.g. {!Recovery}'s
    fail-stop plan) stay on the same deterministic footing. *)
val mix : int -> int -> int -> int
