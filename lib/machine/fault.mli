(** Deterministic fault injection for the ETS machine.

    A fault plan is a pure function of a seed: decision [i] depends only
    on [(seed, i)], never on wall-clock time or global random state, so
    the same seed on the same program and configuration reproduces the
    same faults, the same detections and the same diagnosis — the
    property the robustness tests rely on.

    Faults are injected at the two boundaries the machine exposes:

    - {e token delivery} (every token scheduled onto an arc): the token
      can be dropped, duplicated, bit-flipped or delayed;
    - {e memory issue} (every load/store leaving the ready queue): the
      memory port can stall, bouncing the operation to a later cycle.

    Each corruption class maps to a detection mechanism rather than a
    silently wrong store: duplicates trip the single-token-per-arc
    check ({!Interp.Token_collision}), drops starve the graph and are
    reported by the stall diagnosis ({!Diagnosis.t}'s blocked frontier),
    delays and port stalls perturb timing only (determinacy keeps the
    store intact), and bit-flips are recorded in the fault log carried
    by the diagnosis so a downstream store comparison can attribute the
    corruption. *)

type fault =
  | Drop  (** the token never arrives *)
  | Duplicate  (** the token arrives twice in the same cycle *)
  | Bit_flip of int  (** payload corrupted: bit [i] of an Int flipped,
                         Bools negated *)
  | Delay of int  (** delivery postponed by that many cycles *)
  | Port_stall of int
      (** the memory port refuses issue; the operation retries *)

val fault_to_string : fault -> string

(** Which fault classes the plan may draw from. *)
type classes = {
  drop : bool;
  duplicate : bool;
  bit_flip : bool;
  delay : bool;
  port_stall : bool;
}

val no_classes : classes
val all_classes : classes

(** [classes_of_string "drop,dup,flip,delay,stall"] (or "all").
    @raise Failure on an unknown class name. *)
val classes_of_string : string -> classes

type spec = {
  seed : int;
  rate : float;  (** per-event injection probability in [0, 1] *)
  classes : classes;
  max_faults : int;  (** total injections are capped at this many *)
}

val spec :
  ?rate:float -> ?classes:classes -> ?max_faults:int -> seed:int -> unit -> spec

(** One injected fault, as it actually happened during a run. *)
type event = {
  ev_index : int;  (** delivery (or memory-issue) sequence number *)
  ev_cycle : int;  (** cycle the event was scheduled for *)
  ev_node : int;  (** destination node (delivery) or issuing node (stall) *)
  ev_fault : fault;
}

val pp_event : Format.formatter -> event -> unit

(** A live plan: the spec plus the log of injections performed so far.
    Plans are single-use — make a fresh one per run. *)
type plan

val make : spec -> plan
val seed : plan -> int

(** Faults injected so far, in injection order. *)
val events : plan -> event list

(** What the machine should do with one token delivery. *)
type action = Pass | Act of fault

(** [on_delivery plan ~cycle ~node ~value] decides the fate of the next
    token delivery and logs any injection.  Only delivery classes (drop,
    duplicate, bit-flip, delay) are drawn here. *)
val on_delivery : plan -> cycle:int -> node:int -> value:Imp.Value.t -> action

(** [on_memory_issue plan ~cycle ~node] decides whether the next memory
    issue is refused by a stalled port (and logs it). *)
val on_memory_issue : plan -> cycle:int -> node:int -> bool

(** [flip_value bit v] — the corrupted payload: Ints get [bit] flipped
    (modulo the int width), Bools are negated. *)
val flip_value : int -> Imp.Value.t -> Imp.Value.t

(** [decision spec i] — the pure decision function underlying
    {!on_delivery}: what the plan will do to delivery event [i].  Exposed
    so tests can enumerate a plan without running the machine. *)
val decision : spec -> int -> action
