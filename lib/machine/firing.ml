(** The dataflow firing rule shared by {!Interp} and {!Multiproc} (see
    the interface).  Extracted from the single-PE interpreter so the
    multiprocessor composes the same operator semantics with its own
    transport instead of forking them. *)

let dummy_value = Imp.Value.Int 0

let family (k : Dfg.Node.kind) : string =
  match k with
  | Dfg.Node.Start _ -> "start"
  | Dfg.Node.End _ -> "end"
  | Dfg.Node.Const _ -> "const"
  | Dfg.Node.Binop _ | Dfg.Node.Unop _ -> "alu"
  | Dfg.Node.Id -> "id"
  | Dfg.Node.Sink -> "sink"
  | Dfg.Node.Load _ -> "load"
  | Dfg.Node.Store _ -> "store"
  | Dfg.Node.Switch -> "switch"
  | Dfg.Node.Merge -> "merge"
  | Dfg.Node.Synch _ -> "synch"
  | Dfg.Node.Loop_entry _ -> "loop-entry"
  | Dfg.Node.Loop_exit _ -> "loop-exit"

type 'meta env = {
  graph : Dfg.Graph.t;
  layout : Imp.Layout.t;
  memory : Imp.Memory.t;
  present : bool array;
  deferred : (int, (int * Context.t * 'meta) list) Hashtbl.t;
}

let make_env ~graph ~layout memory =
  {
    graph;
    layout;
    memory;
    present = Array.make (max 1 layout.Imp.Layout.words) false;
    deferred = Hashtbl.create 16;
  }

let deferred_count (env : 'meta env) =
  Hashtbl.fold (fun _ ws acc -> acc + List.length ws) env.deferred 0

let deferred_reads (env : 'meta env) =
  Hashtbl.fold
    (fun addr ws acc -> (addr, List.length ws) :: acc)
    env.deferred []
  |> List.sort compare

let address (env : 'meta env) (kind : Dfg.Node.kind)
    (inputs : Imp.Value.t array) : int =
  match kind with
  | Dfg.Node.Load { var; indexed; _ } ->
      if indexed then Imp.Layout.addr env.layout var (Imp.Value.to_int inputs.(1))
      else Imp.Layout.addr env.layout var 0
  | Dfg.Node.Store { var; indexed; _ } ->
      if indexed then Imp.Layout.addr env.layout var (Imp.Value.to_int inputs.(2))
      else Imp.Layout.addr env.layout var 0
  | _ -> assert false

let execute (env : 'meta env)
    ~(emit :
       node:int -> port:int -> ctx:Context.t -> meta:'meta -> Imp.Value.t -> unit)
    ~(meta : 'meta) ~(meta_max : 'meta -> 'meta -> 'meta)
    ~(on_complete : unit -> unit) ~(double_write : string -> unit) ~node
    ~(ctx : Context.t) ~(inputs : Imp.Value.t array) : unit =
  let kind = Dfg.Graph.kind env.graph node in
  let out port v = emit ~node ~port ~ctx ~meta v in
  let out_ctx ctx' port v = emit ~node ~port ~ctx:ctx' ~meta v in
  match kind with
  | Dfg.Node.Start k ->
      for i = 0 to k - 1 do
        out i dummy_value
      done
  | Dfg.Node.End _ -> on_complete ()
  | Dfg.Node.Const v -> out 0 v
  | Dfg.Node.Binop op -> out 0 (Imp.Value.binop op inputs.(0) inputs.(1))
  | Dfg.Node.Unop op -> out 0 (Imp.Value.unop op inputs.(0))
  | Dfg.Node.Id -> out 0 inputs.(0)
  | Dfg.Node.Sink -> ()
  | Dfg.Node.Load { mem; _ } -> (
      let a = address env kind inputs in
      match mem with
      | Dfg.Node.Plain ->
          out 0 (Imp.Value.Int (Imp.Memory.read_addr env.memory a));
          out 1 dummy_value
      | Dfg.Node.I_structure ->
          if env.present.(a) then begin
            out 0 (Imp.Value.Int (Imp.Memory.read_addr env.memory a));
            out 1 dummy_value
          end
          else
            (* deferred read: completes when the cell is written *)
            Hashtbl.replace env.deferred a
              ((node, ctx, meta)
              :: (try Hashtbl.find env.deferred a with Not_found -> [])))
  | Dfg.Node.Store { mem; _ } -> (
      let a = address env kind inputs in
      let v = Imp.Value.to_int inputs.(1) in
      match mem with
      | Dfg.Node.Plain ->
          Imp.Memory.write_addr env.memory a v;
          out 0 dummy_value
      | Dfg.Node.I_structure ->
          if env.present.(a) then
            double_write
              (Fmt.str "I-structure cell %d written twice (node %d)" a node);
          Imp.Memory.write_addr env.memory a v;
          env.present.(a) <- true;
          out 0 dummy_value;
          (* wake deferred readers: the completed split-phase read emits
             from the load's own output ports, bypassing rendezvous --
             exactly as a real I-fetch response *)
          (match Hashtbl.find_opt env.deferred a with
          | Some waiters ->
              Hashtbl.remove env.deferred a;
              List.iter
                (fun (rn, rctx, rmeta) ->
                  let wmeta = meta_max rmeta meta in
                  emit ~node:rn ~port:0 ~ctx:rctx ~meta:wmeta (Imp.Value.Int v);
                  emit ~node:rn ~port:1 ~ctx:rctx ~meta:wmeta dummy_value)
                waiters
          | None -> ()))
  | Dfg.Node.Switch ->
      let data = inputs.(0) and pred = inputs.(1) in
      if Imp.Value.to_bool pred then out 0 data else out 1 data
  | Dfg.Node.Merge -> out 0 inputs.(0)
  | Dfg.Node.Synch _ -> out 0 dummy_value
  | Dfg.Node.Loop_entry { arity; _ } ->
      (* group encoded by input array length (see {!Matching.deliver}) *)
      if Array.length inputs = arity then
        (* initial entry: open iteration 0 *)
        let ctx' = Context.enter ctx in
        for i = 0 to arity - 1 do
          out_ctx ctx' i inputs.(i)
        done
      else
        (* back edge: advance the iteration tag *)
        let ctx' = Context.next ctx in
        for i = 0 to arity - 1 do
          out_ctx ctx' i inputs.(i)
        done
  | Dfg.Node.Loop_exit { arity; _ } ->
      let ctx' = Context.leave ctx in
      for i = 0 to arity - 1 do
        out_ctx ctx' i inputs.(i)
      done
