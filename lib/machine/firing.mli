(** The dataflow firing rule: what one operator execution does, shared
    by the single-PE interpreter ({!Interp}) and the multiprocessor
    stepper ({!Multiproc}).

    The rule is parametrised over a ['meta] provenance type carried on
    every emitted token: the single-PE machine threads (depth, firing
    index) pairs through it for dynamic critical-path accounting; the
    multiprocessor uses [unit].  Timing, scheduling, fan-out and token
    transport stay with the caller — [execute] only decides {e which}
    output ports emit {e which} values (and in which context), and
    performs the split-phase memory side effects. *)

(** The value carried by dummy (access) tokens. *)
val dummy_value : Imp.Value.t

(** The operator family of a node kind ("alu", "load", "switch", ...):
    the trace-event category and the key of
    {!Interp.result.firings_by_kind}. *)
val family : Dfg.Node.kind -> string

(** Shared split-phase memory state: the store, I-structure presence
    bits, and deferred I-structure readers keyed by address.  Each
    deferred reader is (load node, context, meta). *)
type 'meta env = {
  graph : Dfg.Graph.t;
  layout : Imp.Layout.t;
  memory : Imp.Memory.t;
  present : bool array;
  deferred : (int, (int * Context.t * 'meta) list) Hashtbl.t;
}

val make_env : graph:Dfg.Graph.t -> layout:Imp.Layout.t -> Imp.Memory.t -> 'meta env

(** Deferred readers still parked, total and per address (sorted). *)
val deferred_count : 'meta env -> int
val deferred_reads : 'meta env -> (int * int) list

(** [address env kind inputs] — the memory address a [Load]/[Store]
    firing with these inputs touches (used by the multiprocessor to
    route the access to its owning memory module).
    @raise Assert_failure on non-memory kinds. *)
val address : 'meta env -> Dfg.Node.kind -> Imp.Value.t array -> int

(** [execute env ~emit ~meta ~meta_max ~on_complete ~double_write ~node
    ~ctx ~inputs] performs one firing of [node] in context [ctx] on the
    consumed [inputs] (as produced by {!Matching.deliver} — for
    [Loop_entry] the group is encoded in the array length).

    Every output token goes through [emit]; ordinary emissions carry
    [meta], and a deferred I-structure read completed by a store carries
    [meta_max reader_meta meta] (the completed split-phase read depends
    on both the parked load and the store that satisfied it).
    [on_complete] runs when the [End] operator fires.  [double_write]
    receives the message of a second write to an I-structure cell and
    {e must raise}. *)
val execute :
  'meta env ->
  emit:
    (node:int -> port:int -> ctx:Context.t -> meta:'meta -> Imp.Value.t -> unit) ->
  meta:'meta ->
  meta_max:('meta -> 'meta -> 'meta) ->
  on_complete:(unit -> unit) ->
  double_write:(string -> unit) ->
  node:int ->
  ctx:Context.t ->
  inputs:Imp.Value.t array ->
  unit
