(** The explicit-token-store dataflow machine simulator.

    This is the Monsoon stand-in (see DESIGN.md, substitutions): a
    cycle-driven interpreter of {!Dfg.Graph.t} implementing

    - the dataflow firing rule: an operator executes when tokens are
      present on its required inputs;
    - waiting-matching by (node, context): tokens of different loop
      iterations carry different tags and rendezvous separately, as in
      tagged-token / ETS frames;
    - the single-token-per-arc discipline: delivering a second token to
      an occupied (node, context, port) slot raises {!Token_collision} --
      this is precisely what goes wrong in Figure 8 when loop-control
      nodes are omitted;
    - split-phase, multiply-writable memory (the paper's Section 2.2
      extension of the dataflow model) plus I-structure memory with
      deferred reads;
    - unbounded or [p]-bounded processing elements with configurable
      latencies and an optionally bounded waiting-matching store (see
      {!Config});
    - deterministic fault injection at the delivery and memory-issue
      boundaries ({!Fault}), with every run summarised by a structured
      {!Diagnosis.t}.

    Execution is deterministic: the ready queue is FIFO and all graphs
    produced by the translation schemas are determinate (merges receive
    at most one token per context). *)

exception Token_collision of string
(** Two tokens met at the same (node, context, input port): the graph is
    not a meaningful (ETS) dataflow computation. *)

exception Double_write of string
(** A second write to an I-structure cell. *)

exception Divergence of string
(** [max_cycles] exceeded. *)

type program = {
  graph : Dfg.Graph.t;
  layout : Imp.Layout.t;
}

type result = {
  memory : Imp.Memory.t;  (** final store *)
  cycles : int;  (** makespan (last completion cycle) *)
  firings : int;  (** total operator executions *)
  memory_ops : int;  (** loads + stores executed *)
  dummy_deliveries : int;
      (** tokens delivered along dummy (access) arcs: pure
          synchronisation traffic *)
  value_deliveries : int;  (** tokens delivered along value arcs *)
  profile : int array;  (** firings started per cycle *)
  peak_parallelism : int;
  completed : bool;  (** the End operator fired *)
  leftover_tokens : int;  (** unconsumed tokens at quiescence *)
  peak_matching : int;
      (** maximum simultaneous entries in the waiting-matching store --
          the frame-memory capacity a Monsoon-like machine would need *)
  peak_in_flight : int;
      (** maximum tokens travelling between operators at once *)
  firings_by_kind : (string * int) list;
      (** executions per operator family (loads, stores, switches, ...),
          sorted descending *)
  matching_throttled : int;
      (** deliveries postponed because the bounded matching store was at
          capacity ({!Config.max_matching}) *)
  in_flight_curve : int array;
      (** per cycle, tokens travelling between operators at the end of
          the cycle (the curve whose maximum is [peak_in_flight]) *)
  matching_curve : int array;
      (** per cycle, occupied waiting-matching entries at the end of the
          cycle (the curve whose maximum is [peak_matching]) *)
  critical_path : int;
      (** dynamic critical path: the longest dependence chain of firings
          actually executed (each firing's depth is one more than the
          deepest firing that produced one of its input tokens).  Under
          {!Config.ideal} this equals [cycles]; under other latency
          models it is the latency-independent chain length. *)
  critical_chain : (int * Context.t) list;
      (** one maximal dependence chain, source to sink, as
          (node id, context) pairs — [List.length critical_chain =
          critical_path] *)
  diagnosis : Diagnosis.t;
      (** the structured post-mortem: verdict, stall frontier, pressure
          and fault log *)
}

(** Average operator-level parallelism: firings per active cycle. *)
let avg_parallelism (r : result) : float =
  if r.cycles <= 0 then float_of_int r.firings
  else float_of_int r.firings /. float_of_int r.cycles

type delivery = {
  d_node : int;
  d_port : int;
  d_ctx : Context.t;
  d_value : Imp.Value.t;
  d_depth : int;  (** firing depth of the producer (chain length so far) *)
  d_src : int;  (** firing-log index of the producer, [-1] for none *)
  d_bag : Permission.bag;  (** fractional permissions riding the token *)
}

(* A waiting token: its value plus the provenance needed for dynamic
   critical-path accounting and the permission fractions it carries. *)
type slot = {
  s_value : Imp.Value.t;
  s_depth : int;
  s_src : int;
  s_bag : Permission.bag;
}

type firing = {
  f_node : int;
  f_ctx : Context.t;
  f_inputs : Imp.Value.t array;
  f_in_depth : int;  (** max depth over the consumed input tokens *)
  f_pred : int;  (** firing-log index of the deepest producer, [-1] *)
  f_bags : Permission.bag list;  (** permission bags of the consumed tokens *)
}

let dummy_value = Firing.dummy_value

exception Abort of Diagnosis.t
(* Internal: carries the structured post-mortem out of the machine loop;
   [run] re-raises the legacy exception matching the verdict. *)

(* Packed-engine path: compile the graph once and run it on the explicit
   token store ({!Packed}), then translate the packed result into the
   reference result shape.  The per-cycle curves and the dynamic
   critical path are observability the packed engine deliberately does
   not collect; they come back empty. *)
let run_packed ~(config : Config.t)
    ?(on_fire : (int -> Dfg.Node.t -> Context.t -> unit) option)
    (p : program) : (result, Diagnosis.t) Stdlib.result =
  let code = Packed.compile_graph p.graph in
  let on_fire =
    Option.map
      (fun cb t node ctx ~pe:_ -> cb t (Dfg.Graph.node p.graph node) ctx)
      on_fire
  in
  match Packed.run_report ~config ?on_fire ~layout:p.layout code with
  | Error d -> Error d
  | Ok r ->
      Ok
        {
          memory = r.Packed.memory;
          cycles = r.Packed.cycles;
          firings = r.Packed.firings;
          memory_ops = r.Packed.memory_ops;
          dummy_deliveries = r.Packed.dummy_deliveries;
          value_deliveries = r.Packed.value_deliveries;
          profile = [||];
          peak_parallelism = r.Packed.peak_parallelism;
          completed = r.Packed.completed;
          leftover_tokens = r.Packed.leftover_tokens;
          peak_matching = r.Packed.peak_frames;
          peak_in_flight = r.Packed.peak_in_flight;
          firings_by_kind = r.Packed.firings_by_kind;
          matching_throttled = r.Packed.throttled;
          in_flight_curve = [||];
          matching_curve = [||];
          critical_path = 0;
          critical_chain = [];
          diagnosis = r.Packed.diagnosis;
        }

(** [run_report ?config ?faults ?on_fire program] executes [program] to
    quiescence on a fresh zeroed memory.  [Ok r] means the machine
    reached quiescence ([r.diagnosis] still distinguishes clean runs
    from deadlocks and leftovers); [Error d] is a hard failure
    (collision, double write, divergence) with the full machine state at
    the point of failure.
    @raise Imp.Value.Type_error on ill-typed graphs (never for graphs
    produced by the translation schemas from type-checked programs). *)
let run_report ?(config = Config.default) ?(faults : Fault.plan option)
    ?(on_fire : (int -> Dfg.Node.t -> Context.t -> unit) option)
    (p : program) : (result, Diagnosis.t) Stdlib.result =
  match (config.Config.engine, faults) with
  | Config.Packed, None -> run_packed ~config ?on_fire p
  | (Config.Packed | Config.Reference), _ ->
  (* fault injection is a reference-engine feature: a faulty run under
     [engine = Packed] silently uses the reference machine *)
  let g = p.graph in
  let memory = Imp.Memory.create p.layout in
  (* token-conservation sanitizer, report-only on the single-PE path:
     violations observed during the run land in the diagnosis *)
  let san = Sanitize.create g in
  let violations : Sanitize.violation list ref = ref [] in
  (* fractional-permission certificate, active only when the translation
     attached its cover metadata; like the sanitizer it is report-only
     here -- violations land in the diagnosis *)
  let perm =
    match g.Dfg.Graph.cert with
    | Some c -> Some (Permission.create g c)
    | None -> None
  in
  (* split-phase memory state (store, I-structure presence, deferred
     readers); the 'meta on deferred readers is the (depth, log index)
     provenance for critical-path accounting *)
  let env : (int * int) Firing.env =
    Firing.make_env ~graph:g ~layout:p.layout memory
  in
  (* waiting-matching store *)
  let wait : slot Matching.store = Matching.create () in
  (* schedule *)
  let deliveries : (int, delivery list) Hashtbl.t = Hashtbl.create 64 in
  let pending = ref 0 in
  let ready : firing Queue.t = Queue.create () in
  let firings = ref 0 in
  let memory_ops = ref 0 in
  let peak_matching = ref 0 in
  let peak_in_flight = ref 0 in
  let dummy_deliveries = ref 0 in
  let value_deliveries = ref 0 in
  let throttled = ref 0 in
  (* stagnation spill: when a whole cycle makes no progress because every
     pending delivery was throttled by the bounded matching store, admit
     one delivery over capacity next cycle so the machine cannot
     livelock (the frame-store overflow recourse) *)
  let spilled = ref 0 in
  let spill = ref false in
  let progressed = ref false in
  let throttled_this_cycle = ref 0 in
  let by_kind : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let completed = ref false in
  let profile = ref [] in
  let in_flight_curve = ref [] in
  let matching_curve = ref [] in
  (* firing log for dynamic critical-path reconstruction: one entry per
     firing, in firing order: (node, ctx, depth, predecessor index) *)
  let fire_log : (int * Context.t * int * int) list ref = ref [] in
  let fire_count = ref 0 in
  let last_cycle = ref 0 in
  let t = ref 0 in
  (* --- structured post-mortem ---------------------------------------- *)
  let leftover_count () =
    Matching.leftover [ wait ] + Firing.deferred_count env
  in
  let diagnose (verdict : Diagnosis.verdict) : Diagnosis.t =
    let blocked =
      Matching.partial_matches [ wait ]
      |> List.map (fun (n, ctx, present, missing) ->
             {
               Diagnosis.b_node = n;
               b_label = (Dfg.Graph.node g n).Dfg.Node.label;
               b_ctx = ctx;
               b_present = present;
               b_missing = missing;
               b_pe = None;
             })
    in
    {
      Diagnosis.verdict;
      cycles = !t;
      leftover_tokens = leftover_count ();
      blocked;
      deferred_reads = Firing.deferred_reads env;
      tokens_by_context = Matching.tokens_by_context [ wait ];
      waiting_by_pe = [];
      pressure =
        {
          Diagnosis.capacity = config.Config.max_matching;
          peak = !peak_matching;
          throttled = !throttled;
          spilled = !spilled;
        };
      network = None;
      faults = (match faults with Some pl -> Fault.events pl | None -> []);
      sanitizer = List.rev !violations;
      permission =
        (match perm with Some p -> Permission.violations p | None -> []);
      certified =
        (match perm with
        | Some p -> Some (Permission.elements p, Permission.checks p)
        | None -> None);
    }
  in
  let abort verdict = raise (Abort (diagnose verdict)) in
  (* --- token transport ------------------------------------------------ *)
  let schedule_delivery t d =
    incr pending;
    if !pending > !peak_in_flight then peak_in_flight := !pending;
    Hashtbl.replace deliveries t
      (d :: (try Hashtbl.find deliveries t with Not_found -> []))
  in
  (* Emit a token along one arc.  This is the delivery boundary where the
     fault plan may drop, duplicate, corrupt or delay individual tokens.
     [depth]/[src] carry the producing firing's chain depth and log index
     onto the token; [bag] is the permission fraction it transports (a
     dropped token destroys its bag, a duplicated one duplicates it --
     exactly what the quiescence account then reports). *)
  let emit_arc t_done (a : Dfg.Graph.arc) ctx value ~depth ~src ~bag =
    let dst = a.Dfg.Graph.dst.Dfg.Graph.node in
    let when_, value, copies =
      match faults with
      | None -> (t_done, value, 1)
      | Some plan -> (
          match Fault.on_delivery plan ~cycle:t_done ~node:dst ~value with
          | Fault.Pass -> (t_done, value, 1)
          | Fault.Act Fault.Drop -> (t_done, value, 0)
          | Fault.Act Fault.Duplicate -> (t_done, value, 2)
          | Fault.Act (Fault.Bit_flip b) -> (t_done, Fault.flip_value b value, 1)
          | Fault.Act (Fault.Delay d) | Fault.Act (Fault.Reorder d) ->
              (t_done + d, value, 1)
          | Fault.Act (Fault.Port_stall _) | Fault.Act Fault.Pe_death ->
              (t_done, value, 1))
    in
    for _ = 1 to copies do
      if a.Dfg.Graph.dummy then incr dummy_deliveries
      else incr value_deliveries;
      schedule_delivery when_
        {
          d_node = dst;
          d_port = a.Dfg.Graph.dst.Dfg.Graph.index;
          d_ctx = ctx;
          d_value = value;
          d_depth = depth;
          d_src = src;
          d_bag = bag;
        }
    done
  in
  let deliver t (d : delivery) =
    let kind = Dfg.Graph.kind g d.d_node in
    match kind with
    | Dfg.Node.Merge ->
        (* no matching: forward immediately as its own firing *)
        Queue.add
          {
            f_node = d.d_node;
            f_ctx = d.d_ctx;
            f_inputs = [| d.d_value |];
            f_in_depth = d.d_depth;
            f_pred = d.d_src;
            f_bags = [ d.d_bag ];
          }
          ready
    | _ -> (
        let key = (d.d_node, d.d_ctx) in
        let at_capacity =
          match config.Config.max_matching with
          | Some cap ->
              Matching.entries wait >= cap && not (Hashtbl.mem wait key)
          | None -> false
        in
        if at_capacity && not !spill then begin
          (* bounded frame memory: postpone the rendezvous instead of
             crashing, and account for the pressure *)
          incr throttled;
          incr throttled_this_cycle;
          schedule_delivery (t + 1) d
        end
        else begin
          if at_capacity then begin
            (* the one-per-stagnant-cycle overflow admission *)
            spill := false;
            incr spilled
          end;
          progressed := true;
          Sanitize.on_delivery san ~node:d.d_node ~port:d.d_port;
          match
            Matching.deliver ~kind
              ~detect_collisions:config.Config.detect_collisions
              ~pad:
                {
                  s_value = dummy_value;
                  s_depth = 0;
                  s_src = -1;
                  s_bag = Permission.empty_bag;
                }
              ~on_insert:(fun () ->
                if Matching.entries wait > !peak_matching then
                  peak_matching := Matching.entries wait)
              wait ~node:d.d_node ~ctx:d.d_ctx ~port:d.d_port
              {
                s_value = d.d_value;
                s_depth = d.d_depth;
                s_src = d.d_src;
                s_bag = d.d_bag;
              }
          with
          | Matching.Collision ->
              abort
                (Diagnosis.Collision
                   (Fmt.str "node %d (%s) port %d ctx %s" d.d_node
                      (Dfg.Graph.node g d.d_node).Dfg.Node.label d.d_port
                      (Context.to_string d.d_ctx)))
          | Matching.Wait -> ()
          | Matching.Fire slots ->
              (* the consumed inputs carry the deepest producer forward
                 for dynamic critical-path accounting *)
              let in_depth = ref 0 and pred = ref (-1) in
              Array.iter
                (fun s ->
                  if s.s_depth > !in_depth then begin
                    in_depth := s.s_depth;
                    pred := s.s_src
                  end)
                slots;
              Queue.add
                {
                  f_node = d.d_node;
                  f_ctx = d.d_ctx;
                  f_inputs = Array.map (fun s -> s.s_value) slots;
                  f_in_depth = !in_depth;
                  f_pred = !pred;
                  f_bags =
                    Array.to_list (Array.map (fun s -> s.s_bag) slots);
                }
                ready
        end)
  in
  let execute t (f : firing) =
    let n = Dfg.Graph.node g f.f_node in
    let kind = n.Dfg.Node.kind in
    incr firings;
    let family = Firing.family kind in
    Hashtbl.replace by_kind family
      (1 + (try Hashtbl.find by_kind family with Not_found -> 0));
    if Dfg.Node.is_memory_op kind then incr memory_ops;
    (match on_fire with Some cb -> cb t n f.f_ctx | None -> ());
    (match
       Sanitize.on_fire san ~node:f.f_node ~ctx:f.f_ctx
         ~group:(Array.length f.f_inputs)
     with
    | Some v -> violations := v :: !violations
    | None -> ());
    let t_done = t + Config.latency config kind in
    if t_done > !last_cycle then last_cycle := t_done;
    (* chain accounting: this firing extends the deepest input chain *)
    let depth = f.f_in_depth + 1 in
    let my_id = !fire_count in
    incr fire_count;
    fire_log := (f.f_node, f.f_ctx, depth, f.f_pred) :: !fire_log;
    (* certificate: join the consumed bags and assert the cover
       requirement before the operator's effect *)
    let held =
      match perm with
      | Some p -> fst (Permission.on_fire p ~node:f.f_node ~ctx:f.f_ctx f.f_bags)
      | None -> Permission.empty_bag
    in
    (* the shared firing rule, instantiated with (depth, log index)
       provenance so tokens carry the dynamic critical path.  Emissions
       are buffered so the held permission can be split over the actual
       deliveries; the replay below preserves the original per-arc order,
       keeping fault draws and scheduling bit-identical. *)
    let buffered : (int * int * Context.t * int * int * Imp.Value.t) list ref =
      ref []
    in
    Firing.execute env
      ~emit:(fun ~node ~port ~ctx ~meta:(d, s) v ->
        buffered := (node, port, ctx, d, s, v) :: !buffered)
      ~meta:(depth, my_id)
      ~meta_max:(fun (d1, s1) (d2, s2) ->
        if d1 >= d2 then (d1, s1) else (d2, s2))
      ~on_complete:(fun () -> completed := true)
      ~double_write:(fun msg -> abort (Diagnosis.Double_write msg))
      ~node:f.f_node ~ctx:f.f_ctx ~inputs:f.f_inputs;
    (* one entry per prospective delivery, in emission then arc order;
       only the firing node's own arcs carry its permission (deferred
       I-structure wakeups emit from the reader's node and carry none) *)
    let flat =
      List.concat_map
        (fun ((node, port, _, _, _, _) as em) ->
          List.map (fun a -> (em, a)) (Dfg.Graph.outgoing g node port))
        (List.rev !buffered)
    in
    let bags =
      match perm with
      | None -> Array.make (List.length flat) Permission.empty_bag
      | Some p ->
          let labels =
            Array.of_list
              (List.map
                 (fun ((node, _, _, _, _, _), a) ->
                   if node = f.f_node then a.Dfg.Graph.tokens else [])
                 flat)
          in
          fst (Permission.split p ~node:f.f_node ~held labels)
    in
    List.iteri
      (fun i ((_, _, ctx, d, s, v), a) ->
        emit_arc t_done a ctx v ~depth:d ~src:s ~bag:bags.(i))
      flat
  in
  (* Deferred-read wakeups performed inside [execute] bypass [deliver]'s
     collision checks by emitting from the load's own output ports --
     exactly as a real split-phase I-fetch responds. *)
  (* boot: fire Start at cycle 0 *)
  Queue.add
    {
      f_node = g.Dfg.Graph.start;
      f_ctx = Context.toplevel;
      f_inputs = [||];
      f_in_depth = 0;
      f_pred = -1;
      (* Start mints the full permission of every cover element *)
      f_bags =
        (match perm with Some p -> [ Permission.mint p ] | None -> []);
    }
    ready;
  (* LIFO policy: enabled firings are moved onto a stack every cycle, so
     the most recently enabled operation starts first *)
  let lifo : firing Stack.t = Stack.create () in
  let absorb_ready () =
    match config.Config.policy with
    | Config.Fifo -> ()
    | Config.Lifo ->
        while not (Queue.is_empty ready) do
          Stack.push (Queue.pop ready) lifo
        done
  in
  let pop_next () =
    match config.Config.policy with
    | Config.Fifo -> Queue.pop ready
    | Config.Lifo -> Stack.pop lifo
  in
  let ready_length () =
    Queue.length ready
    + match config.Config.policy with
      | Config.Fifo -> 0
      | Config.Lifo -> Stack.length lifo
  in
  try
    let finished = ref false in
    while not !finished do
      if !t > config.Config.max_cycles then
        abort (Diagnosis.Diverged config.Config.max_cycles);
      (* 1. deliver tokens scheduled for this cycle *)
      (match Hashtbl.find_opt deliveries !t with
      | Some ds ->
          Hashtbl.remove deliveries !t;
          List.iter
            (fun d ->
              decr pending;
              deliver !t d)
            (List.rev ds)
      | None -> ());
      (* 2. start up to [pes] firings *)
      absorb_ready ();
      let budget =
        match config.Config.pes with
        | None -> ready_length ()
        | Some p -> min p (ready_length ())
      in
      let started = ref 0 in
      let mem_issued = ref 0 in
      let deferred_mem : firing list ref = ref [] in
      while !started < budget do
        let f = pop_next () in
        let is_mem = Dfg.Node.is_memory_op (Dfg.Graph.kind g f.f_node) in
        let port_free =
          match config.Config.memory_ports with
          | None -> true
          | Some k -> (not is_mem) || !mem_issued < max 1 k
        in
        (* the memory-issue boundary: an injected port stall refuses the
           issue this cycle; the operation retries like a busy port *)
        let port_stalled =
          is_mem
          &&
          match faults with
          | Some plan -> Fault.on_memory_issue plan ~cycle:!t ~node:f.f_node
          | None -> false
        in
        if port_free && not port_stalled then begin
          if is_mem then incr mem_issued;
          execute !t f;
          progressed := true;
          incr started
        end
        else begin
          (* out of memory ports this cycle: retry next cycle *)
          deferred_mem := f :: !deferred_mem;
          incr started
        end
      done;
      List.iter (fun f -> Queue.add f ready) (List.rev !deferred_mem);
      profile := (!started - List.length !deferred_mem) :: !profile;
      (* occupancy curves, sampled at the end of every cycle *)
      in_flight_curve := !pending :: !in_flight_curve;
      matching_curve := Hashtbl.length wait :: !matching_curve;
      (* 3. stagnation test: all throttle, no progress -> spill next cycle *)
      if !throttled_this_cycle > 0 && not !progressed then spill := true;
      throttled_this_cycle := 0;
      progressed := false;
      (* 4. quiescence test *)
      if ready_length () = 0 && !pending = 0 then finished := true else incr t
    done;
    let leftover = leftover_count () in
    List.iter
      (fun v -> violations := v :: !violations)
      (Sanitize.at_quiescence san ~leftover:(Matching.leftover [ wait ]));
    (match perm with
    | Some p -> ignore (Permission.at_quiescence p : Permission.violation list)
    | None -> ());
    let verdict =
      if not !completed then Diagnosis.Deadlock
      else if leftover <> 0 then Diagnosis.Leftover leftover
      else Diagnosis.Clean
    in
    let profile = Array.of_list (List.rev !profile) in
    (* dynamic critical path: deepest firing, chain walked back through
       the logged predecessor indices *)
    let log = Array.of_list (List.rev !fire_log) in
    let critical_path =
      Array.fold_left (fun m (_, _, d, _) -> max m d) 0 log
    in
    let critical_chain =
      let best = ref (-1) in
      Array.iteri
        (fun i (_, _, d, _) ->
          if !best = -1 && d = critical_path then best := i)
        log;
      let rec walk i acc =
        if i < 0 then acc
        else
          let n, ctx, _, pred = log.(i) in
          walk pred ((n, ctx) :: acc)
      in
      if !best < 0 then [] else walk !best []
    in
    Ok
      {
        memory;
        cycles = !last_cycle;
        firings = !firings;
        memory_ops = !memory_ops;
        dummy_deliveries = !dummy_deliveries;
        value_deliveries = !value_deliveries;
        profile;
        peak_parallelism = Array.fold_left max 0 profile;
        completed = !completed;
        leftover_tokens = leftover;
        peak_matching = !peak_matching;
        peak_in_flight = !peak_in_flight;
        firings_by_kind =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_kind []
          |> List.sort (fun (_, a) (_, b) -> compare b a);
        matching_throttled = !throttled;
        in_flight_curve = Array.of_list (List.rev !in_flight_curve);
        matching_curve = Array.of_list (List.rev !matching_curve);
        critical_path;
        critical_chain;
        diagnosis = diagnose verdict;
      }
  with Abort d -> Error d

(** [run ?config ?faults ?on_fire program] executes [program] to
    quiescence and returns the result record; hard failures raise the
    legacy exceptions, now carrying the full diagnosis dump.
    @raise Token_collision / Double_write / Divergence as documented. *)
let run ?config ?faults ?on_fire (p : program) : result =
  match run_report ?config ?faults ?on_fire p with
  | Ok r -> r
  | Error d -> (
      let dump detail = Fmt.str "%s@.%s" detail (Diagnosis.to_string d) in
      match d.Diagnosis.verdict with
      | Diagnosis.Collision m -> raise (Token_collision (dump m))
      | Diagnosis.Double_write m -> raise (Double_write (dump m))
      | Diagnosis.Diverged bound ->
          raise (Divergence (dump (Fmt.str "exceeded %d cycles" bound)))
      | Diagnosis.Clean | Diagnosis.Deadlock | Diagnosis.Leftover _
      | Diagnosis.Corrupted _ ->
          assert false)

(** [run_exn ?config p] runs and additionally checks clean completion:
    End fired, no leftover tokens.  The [Failure] message carries the
    structured diagnosis: blocked frontier, per-context token counts,
    matching-store pressure and any injected faults.
    @raise Failure otherwise. *)
let run_exn ?config ?faults (p : program) : result =
  let r = run ?config ?faults p in
  if not r.completed then
    failwith
      (Fmt.str "dataflow execution deadlocked (%d leftover tokens)@.%s"
         r.leftover_tokens
         (Diagnosis.to_string r.diagnosis));
  if r.leftover_tokens <> 0 then
    failwith
      (Fmt.str "%d tokens left at quiescence (End fired: %b)@.%s"
         r.leftover_tokens r.completed
         (Diagnosis.to_string r.diagnosis));
  r
