(** The explicit-token-store dataflow machine simulator — the Monsoon
    stand-in (DESIGN.md, substitutions).

    A cycle-driven interpreter of {!Dfg.Graph.t} implementing the
    dataflow firing rule, waiting-matching by (node, context), the
    single-token-per-arc discipline (violations raise
    {!Token_collision} — this is how Figure 8's pathology is observed),
    split-phase multiply-writable memory plus I-structures with deferred
    reads, and unbounded or bounded processing elements and
    waiting-matching store (see {!Config}).

    Robustness layer: a seeded {!Fault.plan} can be injected at the
    delivery and memory-issue boundaries, and every run — clean or not —
    is summarised by a structured {!Diagnosis.t} (verdict, blocked
    frontier, matching-store pressure, fault log).

    Execution is deterministic: the ready queue policy is fixed and all
    graphs produced by the translation schemas are determinate. *)

exception Token_collision of string
(** Two tokens met at the same (node, context, input port): the graph is
    not a meaningful (ETS) dataflow computation.  The message carries
    the full diagnosis dump. *)

exception Double_write of string
(** A second write to an I-structure cell. *)

exception Divergence of string
(** [max_cycles] exceeded; the message carries the full diagnosis dump
    (blocked frontier, token counts, pressure). *)

type program = {
  graph : Dfg.Graph.t;
  layout : Imp.Layout.t;  (** variable-to-address map the graph assumes *)
}

type result = {
  memory : Imp.Memory.t;  (** final store *)
  cycles : int;  (** makespan (last completion cycle) *)
  firings : int;  (** total operator executions *)
  memory_ops : int;  (** loads + stores executed *)
  dummy_deliveries : int;
      (** tokens delivered along dummy (access) arcs: pure
          synchronisation traffic *)
  value_deliveries : int;  (** tokens delivered along value arcs *)
  profile : int array;  (** firings started per cycle *)
  peak_parallelism : int;
  completed : bool;  (** the End operator fired *)
  leftover_tokens : int;  (** unconsumed tokens at quiescence *)
  peak_matching : int;
      (** maximum simultaneous entries in the waiting-matching store —
          the frame-memory capacity a Monsoon-like machine would need *)
  peak_in_flight : int;
      (** maximum tokens travelling between operators at once *)
  firings_by_kind : (string * int) list;
      (** executions per operator family (loads, stores, switches, ...),
          sorted descending *)
  matching_throttled : int;
      (** deliveries postponed because the bounded matching store was at
          capacity ({!Config.max_matching}) *)
  in_flight_curve : int array;
      (** per cycle, tokens travelling between operators at the end of
          the cycle; its maximum is [peak_in_flight] *)
  matching_curve : int array;
      (** per cycle, occupied waiting-matching entries at the end of the
          cycle; its maximum is [peak_matching] *)
  critical_path : int;
      (** dynamic critical path: length (in firings) of the longest
          dependence chain actually executed.  Equals [cycles] under
          {!Config.ideal}; latency-independent otherwise. *)
  critical_chain : (int * Context.t) list;
      (** one maximal chain, source to sink, as (node id, context);
          its length is [critical_path] *)
  diagnosis : Diagnosis.t;
      (** structured post-mortem: verdict, stall frontier, pressure and
          fault log *)
}

(** Average operator-level parallelism: firings per cycle of makespan. *)
val avg_parallelism : result -> float

(** [run_report ?config ?faults ?on_fire program] executes [program] to
    quiescence on a fresh zeroed memory.  [Ok r] means the machine
    reached quiescence — inspect [r.diagnosis] to distinguish clean
    completion from deadlock or leftover tokens; [Error d] is a hard
    failure (collision, double write, divergence) with the machine state
    at the failure point.  Never raises the legacy exceptions. *)
val run_report :
  ?config:Config.t ->
  ?faults:Fault.plan ->
  ?on_fire:(int -> Dfg.Node.t -> Context.t -> unit) ->
  program ->
  (result, Diagnosis.t) Stdlib.result

(** [run ?config ?faults ?on_fire program] executes [program] to
    quiescence.  [on_fire] observes every firing (cycle, node, context)
    — the hook used by tracing.  [faults] injects a deterministic fault
    plan at the delivery and memory-issue boundaries.
    @raise Token_collision / Double_write / Divergence as documented. *)
val run :
  ?config:Config.t ->
  ?faults:Fault.plan ->
  ?on_fire:(int -> Dfg.Node.t -> Context.t -> unit) ->
  program ->
  result

(** [run_exn ?config ?faults p] runs and additionally checks clean
    completion: the End operator fired and no tokens were left behind.
    @raise Failure otherwise, with the diagnosis (blocked frontier,
    leftover and unfired-End details) in the message. *)
val run_exn : ?config:Config.t -> ?faults:Fault.plan -> program -> result
