(** A minimal JSON tree with a printer and a parser.

    The repository deliberately avoids external dependencies beyond the
    toolchain it was seeded with, so the profiling exporters
    ({!Profile}) and the benchmark harness carry their own JSON support:
    enough of RFC 8259 to emit Chrome [trace_event] files and
    [BENCH_*.json] records, and to re-read them for validation.
    Integers are kept distinct from floats so cycle counts survive a
    round trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ---------------------------------------------------------------- *)
(* printing                                                         *)

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Fmt.str "%.1f" f
  else Fmt.str "%.12g" f

let rec write buf (j : t) =
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        l;
      Buffer.add_char buf ']'
  | Assoc kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string (j : t) : string =
  let buf = Buffer.create 1024 in
  write buf j;
  Buffer.contents buf

(* Pretty printer: two-space indentation, one key or element per line
   for containers -- the layout committed BENCH files use so diffs stay
   reviewable. *)
let rec write_pretty buf indent (j : t) =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match j with
  | Null | Bool _ | Int _ | Float _ | String _ -> write buf j
  | List [] -> Buffer.add_string buf "[]"
  | List l ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          write_pretty buf (indent + 2) x)
        l;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
  | Assoc [] -> Buffer.add_string buf "{}"
  | Assoc kvs ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          write_pretty buf (indent + 2) v)
        kvs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'

let to_string_pretty (j : t) : string =
  let buf = Buffer.create 4096 in
  write_pretty buf 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let pp ppf j = Fmt.string ppf (to_string j)

(* ---------------------------------------------------------------- *)
(* parsing                                                          *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error c msg =
  raise (Parse_error (Fmt.str "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Fmt.str "expected %c" ch)

let parse_literal c lit value =
  let n = String.length lit in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = lit
  then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Fmt.str "expected %s" lit)

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then error c "bad \\u escape";
            let hex = String.sub c.src c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error c "bad \\u escape"
            in
            (* BMP only; encode as UTF-8 *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf
                (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> error c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek c with Some ch when is_num_char ch -> true | _ -> false
  do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error c (Fmt.str "bad number %S" s))

let rec parse_value c : t =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some 'n' -> parse_literal c "null" Null
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some '"' -> String (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [] in
        let rec go () =
          items := parse_value c :: !items;
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; go ()
          | Some ']' -> advance c
          | _ -> error c "expected , or ]"
        in
        go ();
        List (List.rev !items)
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Assoc []
      end
      else begin
        let items = ref [] in
        let rec go () =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          items := (k, v) :: !items;
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; go ()
          | Some '}' -> advance c
          | _ -> error c "expected , or }"
        in
        go ();
        Assoc (List.rev !items)
      end
  | Some _ -> parse_number c

let of_string (s : string) : t =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then error c "trailing garbage";
  v

(* ---------------------------------------------------------------- *)
(* accessors                                                        *)

let member (key : string) (j : t) : t option =
  match j with Assoc kvs -> List.assoc_opt key kvs | _ -> None

let to_list_opt = function List l -> Some l | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
