(** A minimal JSON tree (printer + parser), carried in-tree so the
    profiling exporters and benchmark harness need no external
    dependency.  Integers and floats are distinct constructors so cycle
    counts round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(** Compact single-line rendering (what Chrome's [trace_event] loader
    reads). *)
val to_string : t -> string

(** Two-space-indented rendering with a trailing newline, for committed
    artifacts whose diffs should stay reviewable. *)
val to_string_pretty : t -> string

val pp : Format.formatter -> t -> unit

exception Parse_error of string

(** [of_string s] parses [s].
    @raise Parse_error on malformed input (with the failing offset). *)
val of_string : string -> t

(** [member k j] — the value under key [k] if [j] is an object. *)
val member : string -> t -> t option

val to_list_opt : t -> t list option
val to_int_opt : t -> int option

(** Accepts both [Int] and [Float]. *)
val to_float_opt : t -> float option

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
