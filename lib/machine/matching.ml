(** The waiting-matching store shared by {!Interp} and {!Multiproc}
    (see the interface).  The slot type is polymorphic so each machine
    attaches its own per-token metadata. *)

type 'slot store = (int * Context.t, 'slot option array) Hashtbl.t

let create () : 'slot store = Hashtbl.create 64
let entries : 'slot store -> int = Hashtbl.length

(* Enabledness given a slot array and node kind: loop entries match on
   complete groups (initial ports 0..arity-1 or back ports
   arity..2*arity-1), everything else on all ports. *)
let full (slots : 'slot option array) a b =
  let ok = ref true in
  for i = a to b do
    if slots.(i) = None then ok := false
  done;
  !ok

let enabled (kind : Dfg.Node.kind) (slots : 'slot option array) : bool =
  match kind with
  | Dfg.Node.Loop_entry { arity; _ } ->
      full slots 0 (arity - 1) || full slots arity ((2 * arity) - 1)
  | _ -> Array.for_all (fun s -> s <> None) slots

type 'slot outcome =
  | Collision
  | Wait
  | Fire of 'slot array

let deliver ~(kind : Dfg.Node.kind) ~detect_collisions ~(pad : 'slot)
    ?(on_insert = fun () -> ()) (store : 'slot store) ~node ~ctx ~port
    (slot : 'slot) : 'slot outcome =
  let key = (node, ctx) in
  let slots =
    match Hashtbl.find_opt store key with
    | Some s -> s
    | None ->
        let s = Array.make (max 1 (Dfg.Node.in_arity kind)) None in
        Hashtbl.replace store key s;
        s
  in
  match slots.(port) with
  | Some _ when detect_collisions -> Collision
  | _ ->
      slots.(port) <- Some slot;
      on_insert ();
      if not (enabled kind slots) then Wait
      else begin
        (* consume: for loop entries, only the full group *)
        let inputs =
          match kind with
          | Dfg.Node.Loop_entry { arity; _ } ->
              if full slots 0 (arity - 1) then begin
                let ins = Array.init arity (fun i -> Option.get slots.(i)) in
                for i = 0 to arity - 1 do
                  slots.(i) <- None
                done;
                (* which group fired is encoded in the array length:
                   arity -> initial; arity+1 (trailing pad) -> back *)
                ins
              end
              else begin
                let ins =
                  Array.init (arity + 1) (fun i ->
                      if i < arity then Option.get slots.(arity + i) else pad)
                in
                for i = arity to (2 * arity) - 1 do
                  slots.(i) <- None
                done;
                ins
              end
          | _ ->
              let ins =
                Array.init (Array.length slots) (fun i ->
                    Option.get slots.(i))
              in
              Array.fill slots 0 (Array.length slots) None;
              ins
        in
        (* drop empty slot arrays to keep the leftover count honest *)
        if Array.for_all (fun s -> s = None) slots then Hashtbl.remove store key;
        Fire inputs
      end

let occupied slots =
  Array.fold_left (fun a s -> if s = None then a else a + 1) 0 slots

let leftover (stores : 'slot store list) : int =
  List.fold_left
    (fun acc store ->
      Hashtbl.fold (fun _ slots a -> a + occupied slots) store acc)
    0 stores

let partial_matches (stores : 'slot store list) :
    (int * Context.t * int list * int list) list =
  List.concat_map
    (fun store ->
      Hashtbl.fold
        (fun (n, ctx) slots acc ->
          let present, missing =
            Array.to_seqi slots
            |> Seq.fold_left
                 (fun (h, m) (i, s) ->
                   match s with Some _ -> (i :: h, m) | None -> (h, i :: m))
                 ([], [])
          in
          if present = [] then acc
          else (n, ctx, List.rev present, List.rev missing) :: acc)
        store [])
    stores
  |> List.sort (fun (a, b, _, _) (c, d, _, _) -> compare (a, b) (c, d))

let tokens_by_context (stores : 'slot store list) : (Context.t * int) list =
  List.fold_left
    (fun acc store ->
      Hashtbl.fold
        (fun (_, ctx) slots acc ->
          let n = occupied slots in
          if n = 0 then acc
          else
            match List.assoc_opt ctx acc with
            | Some m -> (ctx, m + n) :: List.remove_assoc ctx acc
            | None -> (ctx, n) :: acc)
        store acc)
    [] stores
  |> List.sort (fun (_, a) (_, b) -> compare b a)
