(** The waiting-matching store: token rendezvous by (node, context).

    This is the ETS frame memory shared by the single-PE interpreter
    ({!Interp}) and the multiprocessor stepper ({!Multiproc}) — each PE
    of a multiprocessor owns one store over the nodes placed on it.  The
    store is polymorphic in the slot type so each machine can attach its
    own per-token metadata (the single-PE machine carries critical-path
    provenance; the multiprocessor carries bare values).

    Matching follows the single-token-per-arc discipline: delivering a
    token to an occupied (node, context, port) slot is a collision.
    [Loop_entry] nodes match on token {e groups}: either the initial
    group (ports [0..arity-1]) or the back-edge group
    (ports [arity..2*arity-1]) enables the node, never a mixture. *)

type 'slot store = (int * Context.t, 'slot option array) Hashtbl.t

val create : unit -> 'slot store

(** Occupied (node, context) entries — the frame count a Monsoon-like
    machine would charge against its frame memory. *)
val entries : 'slot store -> int

(** The outcome of one token delivery. *)
type 'slot outcome =
  | Collision
      (** the slot already held a token (only with collision detection
          on; the offending token is {e not} written) *)
  | Wait  (** stored; the node is not yet enabled *)
  | Fire of 'slot array
      (** the node fired: the consumed input slots.  For [Loop_entry]
        the group is encoded in the array length — [arity] slots mean
        the initial group, [arity + 1] (the last being the caller's
        [pad]) mean the back-edge group.  {!Firing.execute} decodes
        this. *)

(** [deliver ~kind ~detect_collisions ~pad ?on_insert store ~node ~ctx
    ~port slot] performs one rendezvous step.  [on_insert] runs after
    the token is written but before any consumption — the point where
    the single-PE machine samples peak occupancy.  [pad] fills the
    sentinel slot of a back-edge group. *)
val deliver :
  kind:Dfg.Node.kind ->
  detect_collisions:bool ->
  pad:'slot ->
  ?on_insert:(unit -> unit) ->
  'slot store ->
  node:int ->
  ctx:Context.t ->
  port:int ->
  'slot ->
  'slot outcome

(** Unconsumed tokens across a set of stores (for the leftover count at
    quiescence). *)
val leftover : 'slot store list -> int

(** Partial matches across a set of stores, sorted by (node, context):
    (node, context, ports holding a token, ports still empty).  The raw
    material of {!Diagnosis.blocked}. *)
val partial_matches :
  'slot store list -> (int * Context.t * int list * int list) list

(** Waiting tokens per iteration context, descending by count. *)
val tokens_by_context : 'slot store list -> (Context.t * int) list
