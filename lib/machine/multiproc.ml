(** The multiprocessor ETS machine (see the interface): per-PE matching
    stores, ready queues and ALUs composed with the {!Network}
    interconnect under a {!Placement}.  The operator semantics are
    {!Firing.execute} — the same rule the single-PE {!Interp} runs —
    instantiated with [unit] token metadata: the multiprocessor measures
    communication, not critical paths. *)

type result = {
  memory : Imp.Memory.t;
  cycles : int;
  firings : int;
  memory_ops : int;
  completed : bool;
  leftover_tokens : int;
  peak_matching : int;
  per_pe_firings : int array;
  per_pe_busy : int array;
  utilisation : float array;
  per_pe_curve : int array array;
  local_deliveries : int;
  net_messages : int;
  cut_traffic : float;
  mem_local : int;
  mem_remote : int;
  backpressure : int;
  peak_queue : int;
  net_occupancy : int array;
  placement : Placement.t;
  placement_stats : Placement.stats;
  diagnosis : Diagnosis.t;
}

(* A token in transit to one input port; values only — the slot type of
   the per-PE matching stores is bare [Imp.Value.t]. *)
type delivery = {
  m_node : int;
  m_port : int;
  m_ctx : Context.t;
  m_value : Imp.Value.t;
}

type firing = {
  x_node : int;
  x_ctx : Context.t;
  x_inputs : Imp.Value.t array;
}

exception Abort of Diagnosis.t

let run ?(config = Config.default) ?(net = Network.default)
    ?(placement = Placement.Hash) ?(issue_width = 1)
    ?(on_fire : (int -> Dfg.Node.t -> Context.t -> pe:int -> unit) option)
    ~pes (p : Interp.program) : (result, Diagnosis.t) Stdlib.result =
  if pes < 1 then invalid_arg "Multiproc.run: pes must be >= 1";
  let g = p.Interp.graph in
  let pcount = pes in
  let place = Placement.compute placement ~pes:pcount g in
  let pstats = Placement.stats g place in
  let memory = Imp.Memory.create p.Interp.layout in
  let env : unit Firing.env =
    Firing.make_env ~graph:g ~layout:p.Interp.layout memory
  in
  (* per-PE machine state *)
  let wait : Imp.Value.t Matching.store array =
    Array.init pcount (fun _ -> Matching.create ())
  in
  let ready : firing Queue.t array =
    Array.init pcount (fun _ -> Queue.create ())
  in
  let lifo : firing Stack.t array =
    Array.init pcount (fun _ -> Stack.create ())
  in
  (* transport: same-PE tokens bypass the network on a local schedule;
     cross-PE tokens are scheduled into their source PE's injection
     queue at the producing firing's completion cycle *)
  let locals : (int, delivery list) Hashtbl.t = Hashtbl.create 64 in
  let local_pending = ref 0 in
  let to_inject : (int, (int * int * delivery) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let inject_pending = ref 0 in
  let network : delivery Network.t = Network.create ~config:net ~pes:pcount () in
  (* counters *)
  let firings = ref 0 in
  let memory_ops = ref 0 in
  let per_pe_firings = Array.make pcount 0 in
  let per_pe_busy = Array.make pcount 0 in
  let per_pe_curve = Array.make pcount [] in
  let local_deliveries = ref 0 in
  let mem_local = ref 0 in
  let mem_remote = ref 0 in
  let peak_matching = ref 0 in
  let net_occupancy = ref [] in
  let completed = ref false in
  let last_cycle = ref 0 in
  let t = ref 0 in
  let leftover_count () =
    Matching.leftover (Array.to_list wait) + Firing.deferred_count env
  in
  let diagnose (verdict : Diagnosis.verdict) : Diagnosis.t =
    let stores = Array.to_list wait in
    let st = Network.stats network in
    {
      Diagnosis.verdict;
      cycles = !t;
      leftover_tokens = leftover_count ();
      blocked =
        Matching.partial_matches stores
        |> List.map (fun (n, ctx, present, missing) ->
               {
                 Diagnosis.b_node = n;
                 b_label = (Dfg.Graph.node g n).Dfg.Node.label;
                 b_ctx = ctx;
                 b_present = present;
                 b_missing = missing;
               });
      deferred_reads = Firing.deferred_reads env;
      tokens_by_context = Matching.tokens_by_context stores;
      pressure =
        {
          Diagnosis.capacity = None;
          peak = !peak_matching;
          throttled = 0;
          spilled = 0;
        };
      network =
        Some
          {
            Diagnosis.net_messages = st.Network.s_messages;
            net_backpressure = st.Network.s_backpressure;
            net_peak_queue = st.Network.s_peak_queue;
            net_peak_in_flight = st.Network.s_peak_in_flight;
          };
      faults = [];
    }
  in
  let abort verdict = raise (Abort (diagnose verdict)) in
  let schedule_local at d =
    incr local_pending;
    Hashtbl.replace locals at
      (d :: (try Hashtbl.find locals at with Not_found -> []))
  in
  let schedule_inject at src dst d =
    incr inject_pending;
    Hashtbl.replace to_inject at
      ((src, dst, d) :: (try Hashtbl.find to_inject at with Not_found -> []))
  in
  let deliver (d : delivery) =
    let kind = Dfg.Graph.kind g d.m_node in
    let pe = place.Placement.assign.(d.m_node) in
    match kind with
    | Dfg.Node.Merge ->
        (* no matching: forward immediately as its own firing *)
        Queue.add
          { x_node = d.m_node; x_ctx = d.m_ctx; x_inputs = [| d.m_value |] }
          ready.(pe)
    | _ -> (
        match
          Matching.deliver ~kind
            ~detect_collisions:config.Config.detect_collisions
            ~pad:Firing.dummy_value wait.(pe) ~node:d.m_node ~ctx:d.m_ctx
            ~port:d.m_port d.m_value
        with
        | Matching.Collision ->
            abort
              (Diagnosis.Collision
                 (Fmt.str "node %d (%s) port %d ctx %s (PE %d)" d.m_node
                    (Dfg.Graph.node g d.m_node).Dfg.Node.label d.m_port
                    (Context.to_string d.m_ctx)
                    pe))
        | Matching.Wait -> ()
        | Matching.Fire inputs ->
            Queue.add
              { x_node = d.m_node; x_ctx = d.m_ctx; x_inputs = inputs }
              ready.(pe))
  in
  let execute pe (f : firing) =
    let n = Dfg.Graph.node g f.x_node in
    let kind = n.Dfg.Node.kind in
    incr firings;
    per_pe_firings.(pe) <- per_pe_firings.(pe) + 1;
    (match on_fire with Some cb -> cb !t n f.x_ctx ~pe | None -> ());
    let lat = Config.latency config kind in
    (* Interleaved memory: an access whose owning module hangs off a
       different PE pays the request/response round trip — but only on
       the loaded value.  The request itself is fire-and-forget in
       access-chain order (that is what split-phase means), so the
       chain's successor token and a store's ordering token leave at
       pipeline speed; serialising whole round trips onto the
       per-variable chains would deny the machine the latency tolerance
       dataflow exists to provide. *)
    let mem_penalty =
      if Dfg.Node.is_memory_op kind then begin
        incr memory_ops;
        let addr = Firing.address env kind f.x_inputs in
        if Network.home_pe net ~pes:pcount ~addr = pe then begin
          incr mem_local;
          0
        end
        else begin
          incr mem_remote;
          2 * max 1 net.Network.latency
        end
      end
      else 0
    in
    let t_done = !t + lat in
    let value_done = t_done + mem_penalty in
    if value_done > !last_cycle then last_cycle := value_done;
    let is_load = match kind with Dfg.Node.Load _ -> true | _ -> false in
    Firing.execute env
      ~emit:(fun ~node ~port ~ctx ~meta:() v ->
        (* emissions route from the PE of the emitting node: a deferred
           I-structure read completed by a remote store answers from the
           parked load's PE, not the store's *)
        let t_done =
          if is_load && node = f.x_node && port = 0 then value_done else t_done
        in
        let src_pe = place.Placement.assign.(node) in
        List.iter
          (fun (a : Dfg.Graph.arc) ->
            let dstn = a.Dfg.Graph.dst.Dfg.Graph.node in
            let d =
              {
                m_node = dstn;
                m_port = a.Dfg.Graph.dst.Dfg.Graph.index;
                m_ctx = ctx;
                m_value = v;
              }
            in
            if place.Placement.assign.(dstn) = src_pe then begin
              incr local_deliveries;
              schedule_local t_done d
            end
            else schedule_inject t_done src_pe place.Placement.assign.(dstn) d)
          (Dfg.Graph.outgoing g node port))
      ~meta:() ~meta_max:(fun () () -> ())
      ~on_complete:(fun () -> completed := true)
      ~double_write:(fun msg -> abort (Diagnosis.Double_write msg))
      ~node:f.x_node ~ctx:f.x_ctx ~inputs:f.x_inputs
  in
  (* boot: fire Start on its home PE at cycle 0 *)
  Queue.add
    { x_node = g.Dfg.Graph.start; x_ctx = Context.toplevel; x_inputs = [||] }
    ready.(place.Placement.assign.(g.Dfg.Graph.start));
  let absorb_ready pe =
    match config.Config.policy with
    | Config.Fifo -> ()
    | Config.Lifo ->
        while not (Queue.is_empty ready.(pe)) do
          Stack.push (Queue.pop ready.(pe)) lifo.(pe)
        done
  in
  let pop_next pe =
    match config.Config.policy with
    | Config.Fifo -> Queue.pop ready.(pe)
    | Config.Lifo -> Stack.pop lifo.(pe)
  in
  let ready_length pe =
    Queue.length ready.(pe)
    +
    match config.Config.policy with
    | Config.Fifo -> 0
    | Config.Lifo -> Stack.length lifo.(pe)
  in
  let all_idle () =
    let idle = ref true in
    for pe = 0 to pcount - 1 do
      if ready_length pe > 0 then idle := false
    done;
    !idle && !local_pending = 0 && !inject_pending = 0
    && Network.in_transit network = 0
  in
  try
    let finished = ref false in
    while not !finished do
      if !t > config.Config.max_cycles then
        abort (Diagnosis.Diverged config.Config.max_cycles);
      (* 1. network arrivals rendezvous at their destination PE *)
      List.iter (fun (_dst, d) -> deliver d) (Network.arrivals network ~now:!t);
      (* 2. same-PE deliveries scheduled for this cycle *)
      (match Hashtbl.find_opt locals !t with
      | Some ds ->
          Hashtbl.remove locals !t;
          List.iter
            (fun d ->
              decr local_pending;
              deliver d)
            (List.rev ds)
      | None -> ());
      (* 3. completed firings' cross-PE tokens enter injection queues *)
      (match Hashtbl.find_opt to_inject !t with
      | Some ms ->
          Hashtbl.remove to_inject !t;
          List.iter
            (fun (src, dst, d) ->
              decr inject_pending;
              Network.inject network ~src ~dst d)
            (List.rev ms)
      | None -> ());
      (* 4. every PE issues up to [issue_width] enabled firings *)
      for pe = 0 to pcount - 1 do
        absorb_ready pe;
        let budget = min issue_width (ready_length pe) in
        for _ = 1 to budget do
          execute pe (pop_next pe)
        done;
        per_pe_curve.(pe) <- budget :: per_pe_curve.(pe);
        if budget > 0 then per_pe_busy.(pe) <- per_pe_busy.(pe) + 1
      done;
      (* 5. the interconnect moves bandwidth-limited messages into flight *)
      Network.step network ~now:!t;
      (* end-of-cycle sampling *)
      net_occupancy := Network.in_transit network :: !net_occupancy;
      let waiting = Array.fold_left (fun a w -> a + Matching.entries w) 0 wait in
      if waiting > !peak_matching then peak_matching := waiting;
      (* quiescence *)
      if all_idle () then finished := true else incr t
    done;
    let leftover = leftover_count () in
    let verdict =
      if not !completed then Diagnosis.Deadlock
      else if leftover <> 0 then Diagnosis.Leftover leftover
      else Diagnosis.Clean
    in
    let st = Network.stats network in
    let total_cycles = !t + 1 in
    let nm = st.Network.s_messages in
    Ok
      {
        memory;
        cycles = !last_cycle;
        firings = !firings;
        memory_ops = !memory_ops;
        completed = !completed;
        leftover_tokens = leftover;
        peak_matching = !peak_matching;
        per_pe_firings;
        per_pe_busy;
        utilisation =
          Array.map
            (fun b -> float_of_int b /. float_of_int (max 1 total_cycles))
            per_pe_busy;
        per_pe_curve =
          Array.map (fun c -> Array.of_list (List.rev c)) per_pe_curve;
        local_deliveries = !local_deliveries;
        net_messages = nm;
        cut_traffic =
          (if nm + !local_deliveries = 0 then 0.0
           else float_of_int nm /. float_of_int (nm + !local_deliveries));
        mem_local = !mem_local;
        mem_remote = !mem_remote;
        backpressure = st.Network.s_backpressure;
        peak_queue = st.Network.s_peak_queue;
        net_occupancy = Array.of_list (List.rev !net_occupancy);
        placement = place;
        placement_stats = pstats;
        diagnosis = diagnose verdict;
      }
  with Abort d -> Error d

let run_exn ?config ?net ?placement ?issue_width ?on_fire ~pes p : result =
  match run ?config ?net ?placement ?issue_width ?on_fire ~pes p with
  | Error d ->
      failwith
        (Fmt.str "multiproc execution failed@.%s" (Diagnosis.to_string d))
  | Ok r ->
      if not r.completed then
        failwith
          (Fmt.str "multiproc execution deadlocked (%d leftover tokens)@.%s"
             r.leftover_tokens
             (Diagnosis.to_string r.diagnosis));
      if r.leftover_tokens <> 0 then
        failwith
          (Fmt.str "multiproc: %d tokens left at quiescence@.%s"
             r.leftover_tokens
             (Diagnosis.to_string r.diagnosis));
      r
