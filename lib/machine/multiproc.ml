(** The multiprocessor ETS machine (see the interface): per-PE matching
    stores, ready queues and ALUs composed with the {!Network}
    interconnect under a {!Placement}.  The operator semantics are
    {!Firing.execute} — the same rule the single-PE {!Interp} runs —
    instantiated with [unit] token metadata: the multiprocessor measures
    communication, not critical paths.

    With [?faults] or [?recovery] the machine switches from the raw wire
    to the {!Network} reliable transport, runs the {!Sanitize} invariant
    checker, and (when [?recovery] is given) takes epoch checkpoints it
    can replay from after a PE fail-stop or a sanitizer violation.  The
    fault-free path is untouched: same transport, same timing, same
    counters as before. *)

type result = {
  memory : Imp.Memory.t;
  cycles : int;
  firings : int;
  memory_ops : int;
  completed : bool;
  leftover_tokens : int;
  peak_matching : int;
  per_pe_firings : int array;
  per_pe_busy : int array;
  utilisation : float array;
  per_pe_curve : int array array;
  local_deliveries : int;
  net_messages : int;
  cut_traffic : float;
  mem_local : int;
  mem_remote : int;
  backpressure : int;
  peak_queue : int;
  net_hops : int;
  steals : int;
  net_occupancy : int array;
  placement : Placement.t;
  placement_stats : Placement.stats;
  transport : Network.rt_stats option;
  recovery : Recovery.metrics option;
  diagnosis : Diagnosis.t;
}

(* A token in transit to one input port: its value plus the permission
   fractions riding it — the slot type of the per-PE matching stores is
   the (value, bag) pair. *)
type delivery = {
  m_node : int;
  m_port : int;
  m_ctx : Context.t;
  m_value : Imp.Value.t;
  m_bag : Permission.bag;
}

type firing = {
  x_node : int;
  x_ctx : Context.t;
  x_inputs : Imp.Value.t array;
  x_bags : Permission.bag list;  (** permission bags of the consumed tokens *)
}

exception Abort of Diagnosis.t

(* Internal: unwinds a partially executed cycle back to the recovery
   loop, which restores the last epoch.  Everything stateful is rebuilt
   from the snapshot, so aborting mid-cycle is safe. *)
exception Rollback

(* An epoch checkpoint: a consistent cut of the whole machine taken at
   the end of a cycle.  Matching stores and ready queues are kept in
   their per-PE buckets but restore re-buckets them through the current
   placement, so a snapshot taken before a death replays cleanly onto
   the survivors.  Undelivered transport payloads are captured as
   (src, dst, payload) — delivered-but-unacked frames are excluded,
   their effect is already inside the snapshot's receiver state. *)
type slot = Imp.Value.t * Permission.bag

type snapshot = {
  sp_wait : (int * Context.t, slot option array) Hashtbl.t array;
  sp_ready : firing Queue.t array;
  sp_lifo : firing Stack.t array;
  sp_locals : (int, delivery list) Hashtbl.t;
  sp_local_pending : int;
  sp_to_inject : (int, (int * int * delivery) list) Hashtbl.t;
  sp_inject_pending : int;
  sp_cells : int array;
  sp_present : bool array;
  sp_deferred : (int, (int * Context.t * unit) list) Hashtbl.t;
  sp_undelivered : (int * int * delivery) list;
  sp_completed : bool;
  sp_firings : int;
  sp_san : Sanitize.snap option;
  sp_perm : Permission.snap option;
}

let copy_store (s : slot Matching.store) :
    (int * Context.t, slot option array) Hashtbl.t =
  let c = Hashtbl.create (max 16 (Hashtbl.length s)) in
  Hashtbl.iter (fun k arr -> Hashtbl.replace c k (Array.copy arr)) s;
  c

let run ?(config = Config.default) ?(net = Network.default)
    ?(placement = Placement.Hash) ?(tree = []) ?(topo : Sched.Topology.t option)
    ?(steal : Sched.Steal.spec option) ?(issue_width = 1)
    ?(on_fire : (int -> Dfg.Node.t -> Context.t -> pe:int -> unit) option)
    ?(faults : Fault.plan option) ?(recovery : Recovery.spec option) ~pes
    (p : Interp.program) : (result, Diagnosis.t) Stdlib.result =
  if pes < 1 then invalid_arg "Multiproc.run: pes must be >= 1";
  match (config.Config.engine, faults, recovery, topo, steal) with
  | Config.Packed, None, None, None, None ->
      (* the compiled token store with the idealised interconnect: every
         cross-PE token pays the network's hop latency, partitioned by
         the same placement.  Fault injection and fail-stop recovery
         stay reference-engine features (the fall-through below). *)
      let g = p.Interp.graph in
      let code = Packed.compile_graph g in
      let place = Placement.compute placement ~pes g in
      let on_fire =
        Option.map
          (fun cb t node ctx ~pe -> cb t (Dfg.Graph.node g node) ctx ~pe)
          on_fire
      in
      (* parity with the reference multiprocessor: the sanitizer only
         runs when faults or recovery are requested, i.e. never here *)
      (match
         Packed.run_report ~config
           ~multiproc:(place, issue_width, net.Network.latency)
           ~sanitize:false ?on_fire ~layout:p.Interp.layout code
       with
      | Error d -> Error d
      | Ok r ->
          let cycles = r.Packed.cycles in
          let utilisation =
            Array.map
              (fun busy ->
                if cycles <= 0 then 0.0
                else float_of_int busy /. float_of_int cycles)
              r.Packed.per_pe_busy
          in
          let deliveries = r.Packed.local_deliveries + r.Packed.net_messages in
          Ok
            {
              memory = r.Packed.memory;
              cycles;
              firings = r.Packed.firings;
              memory_ops = r.Packed.memory_ops;
              completed = r.Packed.completed;
              leftover_tokens = r.Packed.leftover_tokens;
              peak_matching = r.Packed.peak_frames;
              per_pe_firings = r.Packed.per_pe_firings;
              per_pe_busy = r.Packed.per_pe_busy;
              utilisation;
              per_pe_curve = Array.make pes [||];
              local_deliveries = r.Packed.local_deliveries;
              net_messages = r.Packed.net_messages;
              cut_traffic =
                (if deliveries = 0 then 0.0
                 else
                   float_of_int r.Packed.net_messages
                   /. float_of_int deliveries);
              (* the packed engine does not model memory homes: every
                 access is served where it issues *)
              mem_local = r.Packed.memory_ops;
              mem_remote = 0;
              backpressure = 0;
              peak_queue = 0;
              net_hops = r.Packed.net_messages;
              steals = 0;
              net_occupancy = [||];
              placement = place;
              placement_stats = Placement.stats g place;
              transport = None;
              recovery = None;
              diagnosis = r.Packed.diagnosis;
            })
  | _ ->
  let g = p.Interp.graph in
  let pcount = pes in
  let place = ref (Placement.compute ~tree ?topo placement ~pes:pcount g) in
  (* per-hop distances under the topology; the constant 1 (no topology)
     is the seed's uniform wire, bit for bit *)
  let hops_fn =
    match topo with
    | Some tp -> Sched.Routing.hops tp
    | None -> fun _ _ -> 1
  in
  let memory = Imp.Memory.create p.Interp.layout in
  let env : unit Firing.env =
    Firing.make_env ~graph:g ~layout:p.Interp.layout memory
  in
  (* fractional-permission certificate, active only when the translation
     attached its cover metadata; violations mirror sanitizer handling:
     bounded rollback under recovery, structured report otherwise *)
  let perm =
    match g.Dfg.Graph.cert with
    | Some c -> Some (Permission.create g c)
    | None -> None
  in
  (* per-PE machine state *)
  let wait : slot Matching.store array =
    Array.init pcount (fun _ -> Matching.create ())
  in
  let ready : firing Queue.t array =
    Array.init pcount (fun _ -> Queue.create ())
  in
  let lifo : firing Stack.t array =
    Array.init pcount (fun _ -> Stack.create ())
  in
  (* transport: same-PE tokens bypass the network on a local schedule;
     cross-PE tokens are scheduled into their source PE's injection
     queue at the producing firing's completion cycle *)
  let locals : (int, delivery list) Hashtbl.t = Hashtbl.create 64 in
  let local_pending = ref 0 in
  let to_inject : (int, (int * int * delivery) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let inject_pending = ref 0 in
  (* fault tolerance switches the machine from the raw wire to the
     reliable transport; the fault-free path keeps the raw network and
     its exact timing *)
  let ft = faults <> None || recovery <> None in
  let network : delivery Network.t =
    Network.create ~config:net ~hops:hops_fn ~pes:pcount ()
  in
  let make_rt () : delivery Network.rt =
    Network.rt_create ~config:net ~hops:hops_fn
      ?fault:
        (Option.map
           (fun plan -> fun ~cycle ~dst -> Fault.on_link plan ~cycle ~dst)
           faults)
      ~corrupt:(fun b d -> { d with m_value = Fault.flip_value b d.m_value })
      ~pes:pcount ()
  in
  let rt : delivery Network.rt option ref =
    ref (if ft then Some (make_rt ()) else None)
  in
  let san = if ft then Some (Sanitize.create g) else None in
  let alive = Array.make pcount true in
  let subst = ref (Array.init pcount (fun i -> i)) in
  let journal : snapshot Recovery.journal = Recovery.journal_create () in
  let metrics = Recovery.metrics_create () in
  let san_rollbacks = ref 0 in
  let pending_deaths =
    ref (match recovery with Some rs -> rs.Recovery.deaths | None -> [])
  in
  let standing_violations : Sanitize.violation list ref = ref [] in
  (* counters *)
  let firings = ref 0 in
  let memory_ops = ref 0 in
  let per_pe_firings = Array.make pcount 0 in
  let per_pe_busy = Array.make pcount 0 in
  let per_pe_curve = Array.make pcount [] in
  let local_deliveries = ref 0 in
  let mem_local = ref 0 in
  let mem_remote = ref 0 in
  let steals = ref 0 in
  (* consecutive cycles each PE has sat with an empty ready queue —
     the stealing hysteresis clock *)
  let idle_ctr = Array.make pcount 0 in
  let peak_matching = ref 0 in
  let net_occupancy = ref [] in
  let completed = ref false in
  let last_cycle = ref 0 in
  let t = ref 0 in
  let net_inject ~src ~dst d =
    match !rt with
    | Some r -> Network.rt_send r ~now:!t ~src ~dst d
    | None -> Network.inject network ~src ~dst d
  in
  let net_arrivals () =
    match !rt with
    | Some r -> Network.rt_arrivals r ~now:!t
    | None -> Network.arrivals network ~now:!t
  in
  let net_step () =
    match !rt with
    | Some r -> Network.rt_step r ~now:!t
    | None -> Network.step network ~now:!t
  in
  let net_pending () =
    match !rt with
    | Some r -> Network.rt_pending r
    | None -> Network.in_transit network
  in
  let wire_stats () =
    match !rt with
    | Some r -> Network.rt_wire_stats r
    | None -> Network.stats network
  in
  let leftover_count () =
    Matching.leftover (Array.to_list wait) + Firing.deferred_count env
  in
  let diagnose (verdict : Diagnosis.verdict) : Diagnosis.t =
    let st = wire_stats () in
    let blocked =
      List.concat
        (List.init pcount (fun pe ->
             Matching.partial_matches [ wait.(pe) ]
             |> List.map (fun (n, ctx, present, missing) ->
                    {
                      Diagnosis.b_node = n;
                      b_label = (Dfg.Graph.node g n).Dfg.Node.label;
                      b_ctx = ctx;
                      b_present = present;
                      b_missing = missing;
                      b_pe = Some pe;
                    })))
    in
    {
      Diagnosis.verdict;
      cycles = !t;
      leftover_tokens = leftover_count ();
      blocked;
      deferred_reads = Firing.deferred_reads env;
      tokens_by_context = Matching.tokens_by_context (Array.to_list wait);
      waiting_by_pe =
        Array.to_list
          (Array.mapi (fun pe w -> (pe, Matching.leftover [ w ])) wait)
        |> List.filter (fun (_, n) -> n <> 0);
      pressure =
        {
          Diagnosis.capacity = None;
          peak = !peak_matching;
          throttled = 0;
          spilled = 0;
        };
      network =
        Some
          {
            Diagnosis.net_messages = st.Network.s_messages;
            net_backpressure = st.Network.s_backpressure;
            net_peak_queue = st.Network.s_peak_queue;
            net_peak_in_flight = st.Network.s_peak_in_flight;
          };
      faults = (match faults with Some pl -> Fault.events pl | None -> []);
      sanitizer = !standing_violations;
      permission =
        (match perm with Some p -> Permission.violations p | None -> []);
      certified =
        (match perm with
        | Some p -> Some (Permission.elements p, Permission.checks p)
        | None -> None);
    }
  in
  let abort verdict = raise (Abort (diagnose verdict)) in
  let schedule_local at d =
    incr local_pending;
    Hashtbl.replace locals at
      (d :: (try Hashtbl.find locals at with Not_found -> []))
  in
  let schedule_inject at src dst d =
    incr inject_pending;
    Hashtbl.replace to_inject at
      ((src, dst, d) :: (try Hashtbl.find to_inject at with Not_found -> []))
  in
  let deliver (d : delivery) =
    let kind = Dfg.Graph.kind g d.m_node in
    let pe = (!place).Placement.assign.(d.m_node) in
    (match san with
    | Some s -> Sanitize.on_delivery s ~node:d.m_node ~port:d.m_port
    | None -> ());
    match kind with
    | Dfg.Node.Merge ->
        (* no matching: forward immediately as its own firing *)
        Queue.add
          {
            x_node = d.m_node;
            x_ctx = d.m_ctx;
            x_inputs = [| d.m_value |];
            x_bags = [ d.m_bag ];
          }
          ready.(pe)
    | _ -> (
        match
          Matching.deliver ~kind
            ~detect_collisions:config.Config.detect_collisions
            ~pad:(Firing.dummy_value, Permission.empty_bag)
            wait.(pe) ~node:d.m_node ~ctx:d.m_ctx ~port:d.m_port
            (d.m_value, d.m_bag)
        with
        | Matching.Collision ->
            abort
              (Diagnosis.Collision
                 (Fmt.str "node %d (%s) port %d ctx %s (PE %d)" d.m_node
                    (Dfg.Graph.node g d.m_node).Dfg.Node.label d.m_port
                    (Context.to_string d.m_ctx)
                    pe))
        | Matching.Wait -> ()
        | Matching.Fire slots ->
            Queue.add
              {
                x_node = d.m_node;
                x_ctx = d.m_ctx;
                x_inputs = Array.map fst slots;
                x_bags = Array.to_list (Array.map snd slots);
              }
              ready.(pe))
  in
  (* Can a sanitizer violation be rolled back right now? *)
  let can_roll_back () =
    match recovery with
    | Some rs ->
        !san_rollbacks < rs.Recovery.max_rollbacks
        && Recovery.last journal <> None
    | None -> false
  in
  let execute pe (f : firing) =
    let n = Dfg.Graph.node g f.x_node in
    let kind = n.Dfg.Node.kind in
    incr firings;
    per_pe_firings.(pe) <- per_pe_firings.(pe) + 1;
    (match on_fire with Some cb -> cb !t n f.x_ctx ~pe | None -> ());
    (match san with
    | Some s -> (
        match
          Sanitize.on_fire s ~node:f.x_node ~ctx:f.x_ctx
            ~group:(Array.length f.x_inputs)
        with
        | Some v ->
            if can_roll_back () then begin
              incr san_rollbacks;
              raise Rollback
            end
            else begin
              standing_violations := !standing_violations @ [ v ];
              abort (Diagnosis.Corrupted (Sanitize.violation_to_string v))
            end
        | None -> ())
    | None -> ());
    (* certificate: join the consumed bags and assert the cover
       requirement; a violation rolls back like a sanitizer hit when an
       epoch is available, otherwise the run stops with the report *)
    let held =
      match perm with
      | Some p -> (
          match Permission.on_fire p ~node:f.x_node ~ctx:f.x_ctx f.x_bags with
          | held, [] -> held
          | _, v :: _ ->
              if can_roll_back () then begin
                incr san_rollbacks;
                raise Rollback
              end
              else
                abort (Diagnosis.Corrupted (Permission.violation_to_string v)))
      | None -> Permission.empty_bag
    in
    let lat = Config.latency config kind in
    (* Interleaved memory: an access whose owning module hangs off a
       different PE pays the request/response round trip — but only on
       the loaded value.  The request itself is fire-and-forget in
       access-chain order (that is what split-phase means), so the
       chain's successor token and a store's ordering token leave at
       pipeline speed; serialising whole round trips onto the
       per-variable chains would deny the machine the latency tolerance
       dataflow exists to provide.  A module homed on a dead PE is
       served by that PE's substitute. *)
    let mem_penalty =
      if Dfg.Node.is_memory_op kind then begin
        incr memory_ops;
        let addr = Firing.address env kind f.x_inputs in
        let home = (!subst).(Network.home_pe net ~pes:pcount ~addr) in
        if home = pe then begin
          incr mem_local;
          0
        end
        else begin
          incr mem_remote;
          (* request/response round trip at pipelined per-hop cost; one
             hop (no topology) is the seed's flat remote penalty *)
          2 * max 1 (net.Network.latency + max 1 (hops_fn pe home) - 1)
        end
      end
      else 0
    in
    let t_done = !t + lat in
    let value_done = t_done + mem_penalty in
    if value_done > !last_cycle then last_cycle := value_done;
    let is_load = match kind with Dfg.Node.Load _ -> true | _ -> false in
    (* emissions are buffered so the held permission can be split over
       the actual deliveries; the replay below preserves the original
       per-arc order, keeping routing and timing bit-identical *)
    let buffered : (int * int * Context.t * Imp.Value.t) list ref = ref [] in
    Firing.execute env
      ~emit:(fun ~node ~port ~ctx ~meta:() v ->
        buffered := (node, port, ctx, v) :: !buffered)
      ~meta:() ~meta_max:(fun () () -> ())
      ~on_complete:(fun () -> completed := true)
      ~double_write:(fun msg -> abort (Diagnosis.Double_write msg))
      ~node:f.x_node ~ctx:f.x_ctx ~inputs:f.x_inputs;
    (* one entry per prospective delivery, in emission then arc order;
       only the firing node's own arcs carry its permission (deferred
       I-structure wakeups emit from the reader's node and carry none) *)
    let flat =
      List.concat_map
        (fun ((node, port, _, _) as em) ->
          List.map (fun a -> (em, a)) (Dfg.Graph.outgoing g node port))
        (List.rev !buffered)
    in
    let bags =
      match perm with
      | None -> Array.make (List.length flat) Permission.empty_bag
      | Some p ->
          let labels =
            Array.of_list
              (List.map
                 (fun ((node, _, _, _), a) ->
                   if node = f.x_node then a.Dfg.Graph.tokens else [])
                 flat)
          in
          fst (Permission.split p ~node:f.x_node ~held labels)
    in
    List.iteri
      (fun i ((node, port, ctx, v), (a : Dfg.Graph.arc)) ->
        (* emissions route from the PE of the emitting node: a deferred
           I-structure read completed by a remote store answers from the
           parked load's PE, not the store's.  The firing node's own
           emissions leave from the PE actually EXECUTING it — equal to
           its placed PE except for a stolen firing, which emits from
           the thief *)
        let t_done =
          if is_load && node = f.x_node && port = 0 then value_done else t_done
        in
        let src_pe =
          if node = f.x_node then pe else (!place).Placement.assign.(node)
        in
        let dstn = a.Dfg.Graph.dst.Dfg.Graph.node in
        let d =
          {
            m_node = dstn;
            m_port = a.Dfg.Graph.dst.Dfg.Graph.index;
            m_ctx = ctx;
            m_value = v;
            m_bag = bags.(i);
          }
        in
        if (!place).Placement.assign.(dstn) = src_pe then begin
          incr local_deliveries;
          schedule_local t_done d
        end
        else schedule_inject t_done src_pe (!place).Placement.assign.(dstn) d)
      flat
  in
  (* --- checkpoint / restore ------------------------------------------- *)
  let take_snapshot () : snapshot =
    {
      sp_wait = Array.map copy_store wait;
      sp_ready = Array.map Queue.copy ready;
      sp_lifo = Array.map Stack.copy lifo;
      sp_locals = Hashtbl.copy locals;
      sp_local_pending = !local_pending;
      sp_to_inject = Hashtbl.copy to_inject;
      sp_inject_pending = !inject_pending;
      sp_cells = Array.copy memory.Imp.Memory.cells;
      sp_present = Array.copy env.Firing.present;
      sp_deferred = Hashtbl.copy env.Firing.deferred;
      sp_undelivered =
        (match !rt with Some r -> Network.rt_undelivered r | None -> []);
      sp_completed = !completed;
      sp_firings = !firings;
      sp_san = Option.map Sanitize.snapshot san;
      sp_perm = Option.map Permission.snapshot perm;
    }
  in
  (* Restore the last epoch and resume after the failover penalty.  Time
     is monotonic: the cycles between the epoch and the failure are lost
     (and charged), never rewound — pending schedules are rebased onto
     the resume cycle, and matching/ready state is re-bucketed through
     the current (possibly remapped) placement. *)
  let do_restore (rs : Recovery.spec) =
    let c, sp =
      match Recovery.last journal with Some x -> x | None -> assert false
    in
    metrics.Recovery.m_rollbacks <- metrics.Recovery.m_rollbacks + 1;
    metrics.Recovery.m_lost_cycles <-
      metrics.Recovery.m_lost_cycles + (!t - c) + rs.Recovery.failover;
    metrics.Recovery.m_replayed_firings <-
      metrics.Recovery.m_replayed_firings + (!firings - sp.sp_firings);
    let resume = !t + rs.Recovery.failover + 1 in
    let delta = resume - (c + 1) in
    (* matching stores and ready queues, re-bucketed by current assign *)
    for pe = 0 to pcount - 1 do
      wait.(pe) <- Matching.create ();
      ready.(pe) <- Queue.create ();
      lifo.(pe) <- Stack.create ()
    done;
    Array.iter
      (fun store ->
        Hashtbl.iter
          (fun ((node, _) as key) arr ->
            Hashtbl.replace wait.((!place).Placement.assign.(node)) key
              (Array.copy arr))
          store)
      sp.sp_wait;
    let requeue (f : firing) =
      Queue.add f ready.((!place).Placement.assign.(f.x_node))
    in
    Array.iter (fun q -> Queue.iter requeue q) sp.sp_ready;
    Array.iter
      (fun s ->
        (* stack snapshots iterate top-first; re-add bottom-first so the
           replay order matches the original enabling order *)
        let l = ref [] in
        Stack.iter (fun f -> l := f :: !l) s;
        List.iter requeue !l)
      sp.sp_lifo;
    (* pending schedules, rebased onto the resume cycle *)
    Hashtbl.reset locals;
    Hashtbl.iter
      (fun k v -> Hashtbl.replace locals (k + delta) v)
      sp.sp_locals;
    local_pending := sp.sp_local_pending;
    Hashtbl.reset to_inject;
    Hashtbl.iter
      (fun k v ->
        Hashtbl.replace to_inject (k + delta)
          (List.map
             (fun (src, dst, d) -> ((!subst).(src), (!subst).(dst), d))
             v))
      sp.sp_to_inject;
    inject_pending := sp.sp_inject_pending;
    (* memory and split-phase state *)
    Array.blit sp.sp_cells 0 memory.Imp.Memory.cells 0
      (Array.length sp.sp_cells);
    Array.blit sp.sp_present 0 env.Firing.present 0
      (Array.length sp.sp_present);
    Hashtbl.reset env.Firing.deferred;
    Hashtbl.iter
      (fun k v -> Hashtbl.replace env.Firing.deferred k v)
      sp.sp_deferred;
    (* fresh transport; resend everything undelivered at the epoch, from
       the substitutes of any dead sources *)
    rt := Some (make_rt ());
    let r = match !rt with Some r -> r | None -> assert false in
    List.iter
      (fun (src, dst, d) ->
        Network.rt_send r ~now:resume ~src:((!subst).(src))
          ~dst:((!subst).(dst)) d)
      sp.sp_undelivered;
    completed := sp.sp_completed;
    (match (san, sp.sp_san) with
    | Some s, Some snap -> Sanitize.restore s snap
    | _ -> ());
    (* replayed firings must re-earn their permissions, not double-count *)
    (match (perm, sp.sp_perm) with
    | Some p, Some snap -> Permission.restore p snap
    | _ -> ());
    t := resume;
    Array.fill idle_ctr 0 pcount 0;
    if resume > !last_cycle then last_cycle := resume
  in
  (* boot: fire Start on its home PE at cycle 0; Start mints the full
     permission of every cover element *)
  Queue.add
    {
      x_node = g.Dfg.Graph.start;
      x_ctx = Context.toplevel;
      x_inputs = [||];
      x_bags = (match perm with Some p -> [ Permission.mint p ] | None -> []);
    }
    ready.((!place).Placement.assign.(g.Dfg.Graph.start));
  (* epoch 0: with recovery enabled even a death before the first
     periodic checkpoint replays from the boot state *)
  let next_checkpoint =
    match recovery with
    | Some rs ->
        Recovery.record journal ~cycle:(-1) (take_snapshot ());
        metrics.Recovery.m_checkpoints <- 1;
        ref rs.Recovery.interval
    | None -> ref max_int
  in
  let absorb_ready pe =
    match config.Config.policy with
    | Config.Fifo -> ()
    | Config.Lifo ->
        while not (Queue.is_empty ready.(pe)) do
          Stack.push (Queue.pop ready.(pe)) lifo.(pe)
        done
  in
  let pop_next pe =
    match config.Config.policy with
    | Config.Fifo -> Queue.pop ready.(pe)
    | Config.Lifo -> Stack.pop lifo.(pe)
  in
  let ready_length pe =
    Queue.length ready.(pe)
    +
    match config.Config.policy with
    | Config.Fifo -> 0
    | Config.Lifo -> Stack.length lifo.(pe)
  in
  let all_idle () =
    let idle = ref true in
    for pe = 0 to pcount - 1 do
      if ready_length pe > 0 then idle := false
    done;
    !idle && !local_pending = 0 && !inject_pending = 0 && net_pending () = 0
  in
  (* one scheduled fail-stop, if due this cycle: mark the PE dead, remap
     its nodes over the survivors, and report that a restore is needed *)
  let process_death () =
    match !pending_deaths with
    | (dc, dpe) :: rest when dc <= !t ->
        pending_deaths := rest;
        if pcount > 1 && dpe >= 0 && dpe < pcount && alive.(dpe) then begin
          alive.(dpe) <- false;
          (match faults with
          | Some pl -> Fault.record_death pl ~cycle:!t ~pe:dpe
          | None -> ());
          metrics.Recovery.m_deaths <- metrics.Recovery.m_deaths + 1;
          subst := Recovery.substitute ~pes:pcount ~alive;
          place := Recovery.remap !place ~alive;
          true
        end
        else false
    | _ -> false
  in
  try
    let finished = ref false in
    while not !finished do
      if !t > config.Config.max_cycles then
        abort (Diagnosis.Diverged config.Config.max_cycles);
      match recovery with
      | Some rs when process_death () -> do_restore rs
      | _ -> (
          try
            (* 1. network arrivals rendezvous at their destination PE *)
            List.iter (fun (_dst, d) -> deliver d) (net_arrivals ());
            (* 2. same-PE deliveries scheduled for this cycle *)
            (match Hashtbl.find_opt locals !t with
            | Some ds ->
                Hashtbl.remove locals !t;
                List.iter
                  (fun d ->
                    decr local_pending;
                    deliver d)
                  (List.rev ds)
            | None -> ());
            (* 3. completed firings' cross-PE tokens enter injection queues *)
            (match Hashtbl.find_opt to_inject !t with
            | Some ms ->
                Hashtbl.remove to_inject !t;
                List.iter
                  (fun (src, dst, d) ->
                    decr inject_pending;
                    net_inject ~src ~dst d)
                  (List.rev ms)
            | None -> ());
            (* 4a. work stealing: a PE idle past the hysteresis takes the
               enabled firing its closest eligible victim would run LAST.
               Only ready (fully matched) firings move — tokens are
               location-independent, so the theft changes where and when
               the firing executes, never what it computes; the final
               store is the determinacy grid's invariant. *)
            (match steal with
            | Some spec ->
                for pe = 0 to pcount - 1 do
                  if alive.(pe) then
                    if ready_length pe > 0 then idle_ctr.(pe) <- 0
                    else begin
                      idle_ctr.(pe) <- idle_ctr.(pe) + 1;
                      if idle_ctr.(pe) >= spec.Sched.Steal.hysteresis then
                        let tp =
                          match topo with
                          | Some tp -> tp
                          | None ->
                              Sched.Topology.make Sched.Topology.Uniform
                                ~pes:pcount
                        in
                        match
                          Sched.Steal.victim tp spec ~thief:pe
                            ~queue_len:(fun v ->
                              if alive.(v) then ready_length v else 0)
                        with
                        | None -> ()
                        | Some v ->
                            (* the victim's last-to-run: back of its FIFO
                               under Fifo; bottom of its stack (else front
                               of its feed queue, which absorb reverses)
                               under Lifo *)
                            let stolen =
                              if Stack.length lifo.(v) > 0 then begin
                                let l = ref [] in
                                Stack.iter (fun f -> l := f :: !l) lifo.(v);
                                match !l with
                                | bottom :: rest ->
                                    Stack.clear lifo.(v);
                                    List.iter
                                      (fun f -> Stack.push f lifo.(v))
                                      rest;
                                    Some bottom
                                | [] -> None
                              end
                              else
                                match config.Config.policy with
                                | Config.Lifo when Queue.length ready.(v) > 0
                                  ->
                                    Some (Queue.pop ready.(v))
                                | _ ->
                                    let n = Queue.length ready.(v) in
                                    if n = 0 then None
                                    else begin
                                      let last = ref None in
                                      for _ = 1 to n do
                                        let f = Queue.pop ready.(v) in
                                        (match !last with
                                        | Some prev -> Queue.add prev ready.(v)
                                        | None -> ());
                                        last := Some f
                                      done;
                                      !last
                                    end
                            in
                            (match stolen with
                            | Some f ->
                                Queue.add f ready.(pe);
                                incr steals;
                                idle_ctr.(pe) <- 0
                            | None -> ())
                    end
                done
            | None -> ());
            (* 4. every live PE issues up to [issue_width] enabled firings *)
            for pe = 0 to pcount - 1 do
              if alive.(pe) then begin
                absorb_ready pe;
                let budget = min issue_width (ready_length pe) in
                for _ = 1 to budget do
                  execute pe (pop_next pe)
                done;
                per_pe_curve.(pe) <- budget :: per_pe_curve.(pe);
                if budget > 0 then per_pe_busy.(pe) <- per_pe_busy.(pe) + 1
              end
              else per_pe_curve.(pe) <- 0 :: per_pe_curve.(pe)
            done;
            (* 5. the interconnect moves bandwidth-limited messages into
               flight (plus retransmits and held frames under faults) *)
            net_step ();
            (* end-of-cycle sampling *)
            net_occupancy := net_pending () :: !net_occupancy;
            let waiting =
              Array.fold_left (fun a w -> a + Matching.entries w) 0 wait
            in
            if waiting > !peak_matching then peak_matching := waiting;
            (* epoch checkpoint *)
            (match recovery with
            | Some rs when !t >= !next_checkpoint ->
                Recovery.record journal ~cycle:!t (take_snapshot ());
                metrics.Recovery.m_checkpoints <-
                  metrics.Recovery.m_checkpoints + 1;
                next_checkpoint := !t + rs.Recovery.interval
            | _ -> ());
            (* quiescence *)
            if all_idle () then begin
              let leftover = leftover_count () in
              let san_vs =
                match san with
                | Some s ->
                    let by_pe =
                      Array.to_list
                        (Array.mapi
                           (fun pe w -> (pe, Matching.leftover [ w ]))
                           wait)
                    in
                    Sanitize.at_quiescence s ~by_pe
                      ~leftover:(Matching.leftover (Array.to_list wait))
                | None -> []
              in
              (* the certificate's global account: every element retired
                 exactly 1 *)
              let perm_vs =
                match perm with
                | Some p -> Permission.at_quiescence p
                | None -> []
              in
              let bad =
                san_vs <> [] || perm_vs <> []
                || (san <> None && ((not !completed) || leftover <> 0))
              in
              if bad && can_roll_back () then begin
                (* quiesced corrupted, starved or leaky: the fault plan is
                   stateful, so a replay draws fresh wire decisions and
                   the transient does not repeat *)
                incr san_rollbacks;
                raise Rollback
              end
              else begin
                standing_violations := san_vs;
                finished := true
              end
            end
            else incr t
          with Rollback -> (
            match recovery with
            | Some rs -> do_restore rs
            | None -> assert false))
    done;
    let leftover = leftover_count () in
    let verdict =
      match !standing_violations with
      | v :: _ -> Diagnosis.Corrupted (Sanitize.violation_to_string v)
      | [] -> (
          match perm with
          | Some p when Permission.violations p <> [] ->
              Diagnosis.Corrupted
                (Permission.violation_to_string
                   (List.hd (Permission.violations p)))
          | _ ->
              if not !completed then Diagnosis.Deadlock
              else if leftover <> 0 then Diagnosis.Leftover leftover
              else Diagnosis.Clean)
    in
    let st = wire_stats () in
    let total_cycles = !t + 1 in
    let payloads =
      match !rt with
      | Some r -> (Network.rt_stats r).Network.r_sends
      | None -> st.Network.s_messages
    in
    Ok
      {
        memory;
        cycles = !last_cycle;
        firings = !firings;
        memory_ops = !memory_ops;
        completed = !completed;
        leftover_tokens = leftover;
        peak_matching = !peak_matching;
        per_pe_firings;
        per_pe_busy;
        utilisation =
          Array.map
            (fun b -> float_of_int b /. float_of_int (max 1 total_cycles))
            per_pe_busy;
        per_pe_curve =
          Array.map (fun c -> Array.of_list (List.rev c)) per_pe_curve;
        local_deliveries = !local_deliveries;
        net_messages = payloads;
        cut_traffic =
          (if payloads + !local_deliveries = 0 then 0.0
           else
             float_of_int payloads
             /. float_of_int (payloads + !local_deliveries));
        mem_local = !mem_local;
        mem_remote = !mem_remote;
        backpressure = st.Network.s_backpressure;
        peak_queue = st.Network.s_peak_queue;
        net_hops = st.Network.s_hops;
        steals = !steals;
        net_occupancy = Array.of_list (List.rev !net_occupancy);
        placement = !place;
        placement_stats = Placement.stats g !place;
        transport = Option.map Network.rt_stats !rt;
        recovery = (match recovery with Some _ -> Some metrics | None -> None);
        diagnosis = diagnose verdict;
      }
  with Abort d -> Error d

let run_exn ?config ?net ?placement ?tree ?topo ?steal ?issue_width ?on_fire
    ?faults ?recovery ~pes p : result =
  match
    run ?config ?net ?placement ?tree ?topo ?steal ?issue_width ?on_fire
      ?faults ?recovery ~pes p
  with
  | Error d ->
      failwith
        (Fmt.str "multiproc execution failed@.%s" (Diagnosis.to_string d))
  | Ok r ->
      if not r.completed then
        failwith
          (Fmt.str "multiproc execution deadlocked (%d leftover tokens)@.%s"
             r.leftover_tokens
             (Diagnosis.to_string r.diagnosis));
      if r.leftover_tokens <> 0 then
        failwith
          (Fmt.str "multiproc: %d tokens left at quiescence@.%s"
             r.leftover_tokens
             (Diagnosis.to_string r.diagnosis));
      r
