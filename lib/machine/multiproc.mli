(** The multiprocessor ETS machine: [p] processing elements — each with
    its own waiting-matching store, ready queue and ALU — joined by a
    {!Network} interconnect, with nodes distributed by a {!Placement}
    policy.  This is the Monsoon floor plan the single-PE {!Interp}
    stands in for: same firing rule (both machines run {!Firing} over
    {!Matching}), different transport.

    Each cycle: network arrivals and same-PE deliveries rendezvous in
    their PE's matching store; every PE issues up to [issue_width]
    enabled firings (FIFO or LIFO per {!Config.policy}); output tokens
    bound for co-resident consumers are scheduled locally while
    cross-PE tokens enter the injection queue; the network moves
    bandwidth-limited messages into flight.  Memory is interleaved
    across modules ({!Network.home_pe}): a load from a non-owning PE
    pays a request/response round trip of [2 * latency] extra cycles on
    its value output — requests themselves are fire-and-forget in
    access-chain order, so stores and the chain's successor token never
    wait on the round trip (split-phase access).

    Determinacy: the final store does not depend on [pes], placement or
    network configuration.  The translation schemas' access tokens
    already serialise every pair of conflicting memory operations, so
    however transport reorders independent firings, conflicting ones
    stay ordered — the property the differential suite checks against
    the reference interpreter and the single-PE machine.

    Of {!Config.t} the multiprocessor honours [latencies], [policy],
    [max_cycles] and [detect_collisions]; [pes], [memory_ports] and
    [max_matching] are single-machine notions superseded by [~pes],
    the module interleaving and per-PE stores.

    {b Fault tolerance.}  Passing [?faults] and/or [?recovery] switches
    the machine from the raw wire to the {!Network} reliable transport
    (sequence numbers, receiver dedup, ack/retransmit with backoff) and
    runs the {!Sanitize} token-conservation checker.  [?faults] injects
    seeded wire faults via {!Fault.on_link}.  [?recovery] adds epoch
    checkpoints of the whole machine — matching stores, ready queues,
    undelivered transport payloads, memory and split-phase state,
    sanitizer counters — plus a schedule of PE fail-stops: on a death
    the dead PE's nodes are remapped over the survivors
    ({!Recovery.remap}) and the last epoch is replayed.  Time is
    monotonic across rollbacks: lost cycles and the failover penalty
    show up in the makespan, and the cost is accounted in
    [result.recovery].  Determinacy is what makes replay safe — any
    arrival order yields the same final store, so resuming from a
    consistent cut with different timing (and one PE fewer) converges on
    the reference store.  Without these options the machine's behaviour
    and timing are bit-identical to the fault-free original. *)

type result = {
  memory : Imp.Memory.t;  (** final store *)
  cycles : int;  (** makespan (last completion cycle) *)
  firings : int;
  memory_ops : int;
  completed : bool;  (** the End operator fired *)
  leftover_tokens : int;
  peak_matching : int;
      (** peak total matching-store entries, summed over PEs (sampled
          per cycle) *)
  per_pe_firings : int array;
  per_pe_busy : int array;  (** cycles in which the PE issued a firing *)
  utilisation : float array;  (** per PE, busy cycles / total cycles *)
  per_pe_curve : int array array;  (** firings started per cycle, per PE *)
  local_deliveries : int;  (** tokens that bypassed the network *)
  net_messages : int;  (** tokens that crossed between PEs *)
  cut_traffic : float;
      (** [net_messages / (net_messages + local_deliveries)]: the
          dynamic cost of the placement's cut *)
  mem_local : int;  (** memory accesses served by the issuing PE's module *)
  mem_remote : int;  (** accesses that paid the remote round trip *)
  backpressure : int;  (** enqueues that found a full injection queue *)
  peak_queue : int;
  net_hops : int;
      (** total links crossed by network messages; equals the message
          count on the uniform wire, more under a topology *)
  steals : int;  (** ready firings moved by work stealing *)
  net_occupancy : int array;
      (** per cycle, messages queued + in flight at end of cycle *)
  placement : Placement.t;
      (** the placement in force at the end — remapped if a PE died *)
  placement_stats : Placement.stats;
  transport : Network.rt_stats option;
      (** reliable-transport counters; [Some] iff faults/recovery on *)
  recovery : Recovery.metrics option;
      (** checkpoint/rollback cost accounting; [Some] iff recovery on *)
  diagnosis : Diagnosis.t;  (** [diagnosis.network] is always [Some _] *)
}

(** [run ?config ?net ?placement ?issue_width ?on_fire ~pes program] —
    execute to quiescence on a fresh zeroed memory.  [on_fire] receives
    (cycle, node, context, pe) for every firing, in deterministic
    order — the feed for per-PE Chrome-trace tracks.
    [Ok r] is quiescence (see [r.diagnosis] for deadlock/leftover);
    [Error d] is a hard failure (collision, double write, divergence).

    [?topo] charges every message [latency * hops] under a
    {!Sched.Topology} with dimension-ordered routing, and scales the
    remote-memory round trip by the same distance; omitted, the wire is
    the seed's uniform single hop, bit for bit.  [?tree] is the
    loop-nesting forest consumed by the {!Placement.Hier} policy.
    [?steal] turns on deterministic work stealing of ready firings
    ({!Sched.Steal}): timing and traffic change, the final store never
    does — stolen firings emit from the thief, rendezvous stays at the
    consumer's placed PE. *)
val run :
  ?config:Config.t ->
  ?net:Network.config ->
  ?placement:Placement.policy ->
  ?tree:(int * int option) list ->
  ?topo:Sched.Topology.t ->
  ?steal:Sched.Steal.spec ->
  ?issue_width:int ->
  ?on_fire:(int -> Dfg.Node.t -> Context.t -> pe:int -> unit) ->
  ?faults:Fault.plan ->
  ?recovery:Recovery.spec ->
  pes:int ->
  Interp.program ->
  (result, Diagnosis.t) Stdlib.result

(** Like {!run} but additionally requires clean completion: End fired
    and no leftover tokens.
    @raise Failure otherwise, with the diagnosis in the message. *)
val run_exn :
  ?config:Config.t ->
  ?net:Network.config ->
  ?placement:Placement.policy ->
  ?tree:(int * int option) list ->
  ?topo:Sched.Topology.t ->
  ?steal:Sched.Steal.spec ->
  ?issue_width:int ->
  ?on_fire:(int -> Dfg.Node.t -> Context.t -> pe:int -> unit) ->
  ?faults:Fault.plan ->
  ?recovery:Recovery.spec ->
  pes:int ->
  Interp.program ->
  result
