(** Cycle-driven token interconnect (see the interface). *)

type config = {
  latency : int;
  bandwidth : int;
  queue_capacity : int option;
  modules : int option;
}

let default =
  { latency = 2; bandwidth = 2; queue_capacity = Some 8; modules = None }

let fast =
  { latency = 1; bandwidth = max_int; queue_capacity = None; modules = None }

let home_pe (c : config) ~pes ~addr =
  let m = match c.modules with Some m -> max 1 m | None -> max 1 pes in
  addr mod m mod max 1 pes

type 'msg t = {
  cfg : config;
  hops : int -> int -> int;
      (** links crossed src -> dst; the constant 1 reproduces the seed's
          uniform-latency wire bit for bit *)
  queues : (int * 'msg) Queue.t array;  (** per-PE: (dst, msg) *)
  flight : (int, (int * 'msg) list) Hashtbl.t;
      (** arrival cycle -> reversed (dst, msg) list *)
  mutable flying : int;
  mutable messages : int;
  mutable hop_sum : int;
  mutable backpressure : int;
  mutable peak_queue : int;
  mutable peak_in_flight : int;
}

let create ?(config = default) ?(hops = fun _ _ -> 1) ~pes () =
  {
    cfg = config;
    hops;
    queues = Array.init (max 1 pes) (fun _ -> Queue.create ());
    flight = Hashtbl.create 64;
    flying = 0;
    messages = 0;
    hop_sum = 0;
    backpressure = 0;
    peak_queue = 0;
    peak_in_flight = 0;
  }

let queued t = Array.fold_left (fun a q -> a + Queue.length q) 0 t.queues
let in_transit t = t.flying + queued t

let note_peaks t =
  let it = in_transit t in
  if it > t.peak_in_flight then t.peak_in_flight <- it

let inject t ~src ~dst msg =
  (match t.cfg.queue_capacity with
  | Some cap when Queue.length t.queues.(src) >= cap ->
      (* full queue: count the stall, never drop the token *)
      t.backpressure <- t.backpressure + 1
  | _ -> ());
  Queue.add (dst, msg) t.queues.(src);
  t.messages <- t.messages + 1;
  let ql = Queue.length t.queues.(src) in
  if ql > t.peak_queue then t.peak_queue <- ql;
  note_peaks t

let step t ~now =
  Array.iteri
    (fun src q ->
      let budget = min t.cfg.bandwidth (Queue.length q) in
      for _ = 1 to budget do
        let (dst, _) as m = Queue.pop q in
        (* pipelined (wormhole) per-hop charge under the topology: the
           head pays the injection latency once, then one cycle per
           additional link; one hop (the default) reduces to the seed's
           uniform [latency] *)
        let h = max 1 (t.hops src dst) in
        t.hop_sum <- t.hop_sum + h;
        let at = now + max 1 (t.cfg.latency + h - 1) in
        Hashtbl.replace t.flight at
          (m :: (try Hashtbl.find t.flight at with Not_found -> []));
        t.flying <- t.flying + 1
      done)
    t.queues;
  note_peaks t

let arrivals t ~now =
  match Hashtbl.find_opt t.flight now with
  | Some l ->
      Hashtbl.remove t.flight now;
      t.flying <- t.flying - List.length l;
      List.rev l
  | None -> []

type stats = {
  s_messages : int;
  s_hops : int;
  s_backpressure : int;
  s_peak_queue : int;
  s_peak_in_flight : int;
}

let stats t =
  {
    s_messages = t.messages;
    s_hops = t.hop_sum;
    s_backpressure = t.backpressure;
    s_peak_queue = t.peak_queue;
    s_peak_in_flight = t.peak_in_flight;
  }

(* ------------------------------------------------------------------ *)
(* Reliable transport: exactly-once delivery over an at-least-once    *)
(* wire.  Every payload gets a per-channel sequence number; the       *)
(* receiver acks each data frame and drops duplicates it has already  *)
(* delivered; the sender retransmits on timeout with exponential      *)
(* backoff up to a budget.  Wire faults (drop / duplicate / delay /   *)
(* reorder / bit-flip) are applied per frame by the [fault] hook —    *)
(* acks ride the same lossy wire and are just as faultable.           *)
(* ------------------------------------------------------------------ *)

type 'msg frame =
  | Data of { d_seq : int; d_src : int; d_payload : 'msg }
  | Ack of { a_seq : int; a_src : int; a_dst : int }
      (** acknowledges data frame [(a_src, a_dst, a_seq)]; routed on the
          wire back to PE [a_src] *)

type 'msg pending = {
  q_payload : 'msg;
  mutable q_deadline : int;
  mutable q_rto : int;
  mutable q_tries : int;
}

type 'msg rt = {
  rt_net : 'msg frame t;
  rt_fault : (cycle:int -> dst:int -> Fault.action) option;
  rt_corrupt : (int -> 'msg -> 'msg) option;
  rt_budget : int;
  rt_rto0 : int;
  rt_seq : (int * int, int) Hashtbl.t;  (** (src, dst) -> next seq *)
  rt_unacked : (int * int * int, 'msg pending) Hashtbl.t;
      (** (src, dst, seq) -> awaiting ack *)
  rt_delivered : (int * int * int, unit) Hashtbl.t;
      (** receiver-side dedup: data frames already handed up *)
  rt_held : (int, (int * int * 'msg frame) list) Hashtbl.t;
      (** release cycle -> reversed (src, dst, frame): delayed/reordered *)
  mutable rt_held_n : int;
  mutable rt_sends : int;
  mutable rt_retransmits : int;
  mutable rt_dups_dropped : int;
  mutable rt_acks : int;
  mutable rt_wire_faults : int;
  mutable rt_losses : int;
}

let rt_create ?(config = default) ?hops ?fault ?corrupt ?(budget = 16) ~pes ()
    =
  {
    rt_net = create ~config ?hops ~pes ();
    rt_fault = fault;
    rt_corrupt = corrupt;
    rt_budget = budget;
    rt_rto0 = (4 * max 1 config.latency) + 2;
    rt_seq = Hashtbl.create 16;
    rt_unacked = Hashtbl.create 64;
    rt_delivered = Hashtbl.create 256;
    rt_held = Hashtbl.create 16;
    rt_held_n = 0;
    rt_sends = 0;
    rt_retransmits = 0;
    rt_dups_dropped = 0;
    rt_acks = 0;
    rt_wire_faults = 0;
    rt_losses = 0;
  }

(* One frame onto the wire, through the fault hook.  Drop loses the
   frame (the retransmit timer recovers data; a lost ack just provokes a
   retransmit the receiver dedups); Duplicate injects twice; Delay and
   Reorder hold the frame back so later traffic overtakes it; Bit_flip
   corrupts a data payload in a way sequence numbers cannot see. *)
let put_on_wire rt ~now ~src ~dst frame =
  let go f = inject rt.rt_net ~src ~dst f in
  match rt.rt_fault with
  | None -> go frame
  | Some hook -> (
      match hook ~cycle:now ~dst with
      | Fault.Pass -> go frame
      | Fault.Act f -> (
          rt.rt_wire_faults <- rt.rt_wire_faults + 1;
          match f with
          | Fault.Drop -> ()
          | Fault.Duplicate ->
              go frame;
              go frame
          | Fault.Delay d | Fault.Reorder d ->
              let at = now + max 1 d in
              Hashtbl.replace rt.rt_held at
                ((src, dst, frame)
                :: (try Hashtbl.find rt.rt_held at with Not_found -> []));
              rt.rt_held_n <- rt.rt_held_n + 1
          | Fault.Bit_flip b -> (
              match (frame, rt.rt_corrupt) with
              | Data d, Some c ->
                  go (Data { d with d_payload = c b d.d_payload })
              | _ -> go frame)
          | Fault.Port_stall _ | Fault.Pe_death -> go frame))

let rt_send rt ~now ~src ~dst msg =
  let ch = (src, dst) in
  let seq = try Hashtbl.find rt.rt_seq ch with Not_found -> 0 in
  Hashtbl.replace rt.rt_seq ch (seq + 1);
  Hashtbl.replace rt.rt_unacked (src, dst, seq)
    {
      q_payload = msg;
      q_deadline = now + rt.rt_rto0;
      q_rto = rt.rt_rto0;
      q_tries = 1;
    };
  rt.rt_sends <- rt.rt_sends + 1;
  put_on_wire rt ~now ~src ~dst (Data { d_seq = seq; d_src = src; d_payload = msg })

let rt_arrivals rt ~now =
  arrivals rt.rt_net ~now
  |> List.filter_map (fun (pe, frame) ->
         match frame with
         | Ack { a_seq; a_src; a_dst } ->
             Hashtbl.remove rt.rt_unacked (a_src, a_dst, a_seq);
             None
         | Data { d_seq; d_src; d_payload } ->
             (* always re-ack: the sender may be retransmitting because
                our previous ack was lost *)
             rt.rt_acks <- rt.rt_acks + 1;
             put_on_wire rt ~now ~src:pe ~dst:d_src
               (Ack { a_seq = d_seq; a_src = d_src; a_dst = pe });
             if Hashtbl.mem rt.rt_delivered (d_src, pe, d_seq) then begin
               rt.rt_dups_dropped <- rt.rt_dups_dropped + 1;
               None
             end
             else begin
               Hashtbl.replace rt.rt_delivered (d_src, pe, d_seq) ();
               Some (pe, d_payload)
             end)

let rt_step rt ~now =
  (* release frames a Delay/Reorder fault held back until this cycle *)
  (match Hashtbl.find_opt rt.rt_held now with
  | Some l ->
      Hashtbl.remove rt.rt_held now;
      rt.rt_held_n <- rt.rt_held_n - List.length l;
      List.iter
        (fun (src, dst, frame) -> inject rt.rt_net ~src ~dst frame)
        (List.rev l)
  | None -> ());
  (* retransmit timers, in sorted channel order for determinism *)
  let due =
    Hashtbl.fold
      (fun key p acc -> if p.q_deadline <= now then key :: acc else acc)
      rt.rt_unacked []
    |> List.sort compare
  in
  List.iter
    (fun ((src, dst, seq) as key) ->
      let p = Hashtbl.find rt.rt_unacked key in
      if p.q_tries >= rt.rt_budget then begin
        (* budget exhausted: give up.  If the receiver never saw the
           frame this is a genuine token loss — the machine quiesces
           into a diagnosable deadlock instead of spinning forever. *)
        Hashtbl.remove rt.rt_unacked key;
        if not (Hashtbl.mem rt.rt_delivered (src, dst, seq)) then
          rt.rt_losses <- rt.rt_losses + 1
      end
      else begin
        p.q_tries <- p.q_tries + 1;
        (* exponential backoff with a ceiling: uncapped doubling over a
           full budget would stretch past any reasonable cycle bound *)
        p.q_rto <- min (p.q_rto * 2) (8 * rt.rt_rto0);
        p.q_deadline <- now + p.q_rto;
        rt.rt_retransmits <- rt.rt_retransmits + 1;
        put_on_wire rt ~now ~src ~dst
          (Data { d_seq = seq; d_src = src; d_payload = p.q_payload })
      end)
    due;
  step rt.rt_net ~now

let rt_pending rt =
  in_transit rt.rt_net + rt.rt_held_n + Hashtbl.length rt.rt_unacked

(* Checkpoint view: payloads sent but not yet handed to the receiver —
   exactly what a restore must resend.  A delivered-but-unacked frame is
   excluded: its effect is already inside the checkpointed receiver
   state, and the fresh transport made at restore has an empty dedup
   set, so resending it would double-deliver.  Sorted by (src, dst, seq)
   for determinism. *)
let rt_undelivered rt =
  Hashtbl.fold
    (fun ((src, dst, _) as key) p acc ->
      if Hashtbl.mem rt.rt_delivered key then acc
      else (key, (src, dst, p.q_payload)) :: acc)
    rt.rt_unacked []
  |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
  |> List.map snd

type rt_stats = {
  r_sends : int;
  r_retransmits : int;
  r_dups_dropped : int;
  r_acks : int;
  r_wire_faults : int;
  r_losses : int;
}

let rt_stats rt =
  {
    r_sends = rt.rt_sends;
    r_retransmits = rt.rt_retransmits;
    r_dups_dropped = rt.rt_dups_dropped;
    r_acks = rt.rt_acks;
    r_wire_faults = rt.rt_wire_faults;
    r_losses = rt.rt_losses;
  }

let rt_wire_stats rt = stats rt.rt_net
