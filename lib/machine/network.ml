(** Cycle-driven token interconnect (see the interface). *)

type config = {
  latency : int;
  bandwidth : int;
  queue_capacity : int option;
  modules : int option;
}

let default =
  { latency = 2; bandwidth = 2; queue_capacity = Some 8; modules = None }

let fast =
  { latency = 1; bandwidth = max_int; queue_capacity = None; modules = None }

let home_pe (c : config) ~pes ~addr =
  let m = match c.modules with Some m -> max 1 m | None -> max 1 pes in
  addr mod m mod max 1 pes

type 'msg t = {
  cfg : config;
  queues : (int * 'msg) Queue.t array;  (** per-PE: (dst, msg) *)
  flight : (int, (int * 'msg) list) Hashtbl.t;
      (** arrival cycle -> reversed (dst, msg) list *)
  mutable flying : int;
  mutable messages : int;
  mutable backpressure : int;
  mutable peak_queue : int;
  mutable peak_in_flight : int;
}

let create ?(config = default) ~pes () =
  {
    cfg = config;
    queues = Array.init (max 1 pes) (fun _ -> Queue.create ());
    flight = Hashtbl.create 64;
    flying = 0;
    messages = 0;
    backpressure = 0;
    peak_queue = 0;
    peak_in_flight = 0;
  }

let queued t = Array.fold_left (fun a q -> a + Queue.length q) 0 t.queues
let in_transit t = t.flying + queued t

let note_peaks t =
  let it = in_transit t in
  if it > t.peak_in_flight then t.peak_in_flight <- it

let inject t ~src ~dst msg =
  (match t.cfg.queue_capacity with
  | Some cap when Queue.length t.queues.(src) >= cap ->
      (* full queue: count the stall, never drop the token *)
      t.backpressure <- t.backpressure + 1
  | _ -> ());
  Queue.add (dst, msg) t.queues.(src);
  t.messages <- t.messages + 1;
  let ql = Queue.length t.queues.(src) in
  if ql > t.peak_queue then t.peak_queue <- ql;
  note_peaks t

let step t ~now =
  let at = now + max 1 t.cfg.latency in
  Array.iter
    (fun q ->
      let budget = min t.cfg.bandwidth (Queue.length q) in
      for _ = 1 to budget do
        let m = Queue.pop q in
        Hashtbl.replace t.flight at
          (m :: (try Hashtbl.find t.flight at with Not_found -> []));
        t.flying <- t.flying + 1
      done)
    t.queues;
  note_peaks t

let arrivals t ~now =
  match Hashtbl.find_opt t.flight now with
  | Some l ->
      Hashtbl.remove t.flight now;
      t.flying <- t.flying - List.length l;
      List.rev l
  | None -> []

type stats = {
  s_messages : int;
  s_backpressure : int;
  s_peak_queue : int;
  s_peak_in_flight : int;
}

let stats t =
  {
    s_messages = t.messages;
    s_backpressure = t.backpressure;
    s_peak_queue = t.peak_queue;
    s_peak_in_flight = t.peak_in_flight;
  }
