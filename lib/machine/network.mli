(** The token interconnect of the multiprocessor machine: a cycle-driven
    model of per-link latency and bandwidth joining PEs and interleaved
    memory modules.

    Tokens whose producer and consumer live on the same PE bypass the
    network entirely.  A token crossing PEs enters its source PE's
    injection queue; each cycle every PE drains at most [bandwidth]
    messages from its queue into flight, and a message in flight arrives
    [latency] cycles later.  Injection queues may be finite
    ([queue_capacity]): an enqueue that finds the queue full is {e
    counted as backpressure} — never dropped — so a saturated network
    shows up as pressure in {!Diagnosis} and longer makespans, not lost
    tokens.

    Memory is interleaved across [modules] (default: one per PE);
    {!home_pe} maps an address to the PE owning its module.  A load
    issued from a different PE pays the request/response round trip of
    [2 * latency] extra cycles on its {e value} output only — requests
    travel in access-chain order and are fire-and-forget, so the chain's
    successor token leaves at pipeline speed (split-phase access). *)

type config = {
  latency : int;  (** cycles a message spends in flight between PEs *)
  bandwidth : int;  (** messages each PE may inject per cycle *)
  queue_capacity : int option;
      (** finite injection queue bound; [None] = unbounded *)
  modules : int option;
      (** interleaved memory modules; [None] = one per PE *)
}

(** latency 2, bandwidth 2, queue capacity 8, one module per PE. *)
val default : config

(** An idealised interconnect: latency 1, unbounded bandwidth and
    queues — placement still matters, contention does not. *)
val fast : config

(** [home_pe config ~pes ~addr] — the PE owning the memory module that
    address [addr] interleaves onto (module [addr mod modules], modules
    distributed round-robin over PEs). *)
val home_pe : config -> pes:int -> addr:int -> int

type 'msg t

val create : ?config:config -> pes:int -> unit -> 'msg t

(** [inject t ~src ~dst msg] — enqueue a message on PE [src]'s injection
    queue bound for PE [dst].  Counts backpressure when the queue is
    already at capacity (the message still enters the queue). *)
val inject : 'msg t -> src:int -> dst:int -> 'msg -> unit

(** [step t ~now] — end-of-cycle transport: each PE moves up to
    [bandwidth] queued messages into flight, arriving at
    [now + latency]. *)
val step : 'msg t -> now:int -> unit

(** [arrivals t ~now] — messages arriving this cycle, as (dst, msg) in
    deterministic injection order; removes them from the network. *)
val arrivals : 'msg t -> now:int -> (int * 'msg) list

(** Messages currently queued or in flight (0 = network quiescent). *)
val in_transit : 'msg t -> int

type stats = {
  s_messages : int;  (** total messages injected *)
  s_backpressure : int;  (** enqueues that found a full queue *)
  s_peak_queue : int;  (** deepest single injection queue observed *)
  s_peak_in_flight : int;  (** most messages queued + flying at once *)
}

val stats : 'msg t -> stats
