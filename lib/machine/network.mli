(** The token interconnect of the multiprocessor machine: a cycle-driven
    model of per-link latency and bandwidth joining PEs and interleaved
    memory modules.

    Tokens whose producer and consumer live on the same PE bypass the
    network entirely.  A token crossing PEs enters its source PE's
    injection queue; each cycle every PE drains at most [bandwidth]
    messages from its queue into flight, and a message in flight arrives
    [latency] cycles later.  Injection queues may be finite
    ([queue_capacity]): an enqueue that finds the queue full is {e
    counted as backpressure} — never dropped — so a saturated network
    shows up as pressure in {!Diagnosis} and longer makespans, not lost
    tokens.

    Memory is interleaved across [modules] (default: one per PE);
    {!home_pe} maps an address to the PE owning its module.  A load
    issued from a different PE pays the request/response round trip of
    [2 * latency] extra cycles on its {e value} output only — requests
    travel in access-chain order and are fire-and-forget, so the chain's
    successor token leaves at pipeline speed (split-phase access). *)

type config = {
  latency : int;  (** cycles a message spends in flight between PEs *)
  bandwidth : int;  (** messages each PE may inject per cycle *)
  queue_capacity : int option;
      (** finite injection queue bound; [None] = unbounded *)
  modules : int option;
      (** interleaved memory modules; [None] = one per PE *)
}

(** latency 2, bandwidth 2, queue capacity 8, one module per PE. *)
val default : config

(** An idealised interconnect: latency 1, unbounded bandwidth and
    queues — placement still matters, contention does not. *)
val fast : config

(** [home_pe config ~pes ~addr] — the PE owning the memory module that
    address [addr] interleaves onto (module [addr mod modules], modules
    distributed round-robin over PEs). *)
val home_pe : config -> pes:int -> addr:int -> int

type 'msg t

(** [create ?config ?hops ~pes ()] — a fresh wire.  [hops src dst]
    gives the links a message crosses under the interconnect topology
    (typically [Sched.Routing.hops] of a {!Sched.Topology.t}); a
    message's flight time is the pipelined (wormhole) cost
    [latency + hops - 1] — the head pays the injection latency once,
    then one cycle per additional link.  The default, constant 1, is
    the seed's uniform-latency wire — every cycle count is
    bit-identical to it. *)
val create :
  ?config:config -> ?hops:(int -> int -> int) -> pes:int -> unit -> 'msg t

(** [inject t ~src ~dst msg] — enqueue a message on PE [src]'s injection
    queue bound for PE [dst].  Counts backpressure when the queue is
    already at capacity (the message still enters the queue). *)
val inject : 'msg t -> src:int -> dst:int -> 'msg -> unit

(** [step t ~now] — end-of-cycle transport: each PE moves up to
    [bandwidth] queued messages into flight, arriving at
    [now + latency + hops - 1]. *)
val step : 'msg t -> now:int -> unit

(** [arrivals t ~now] — messages arriving this cycle, as (dst, msg) in
    deterministic injection order; removes them from the network. *)
val arrivals : 'msg t -> now:int -> (int * 'msg) list

(** Messages currently queued or in flight (0 = network quiescent). *)
val in_transit : 'msg t -> int

type stats = {
  s_messages : int;  (** total messages injected *)
  s_hops : int;  (** total links crossed by launched messages *)
  s_backpressure : int;  (** enqueues that found a full queue *)
  s_peak_queue : int;  (** deepest single injection queue observed *)
  s_peak_in_flight : int;  (** most messages queued + flying at once *)
}

val stats : 'msg t -> stats

(** {1 Reliable transport}

    Exactly-once delivery over an at-least-once wire.  Each payload
    crossing a (src, dst) channel carries a per-channel sequence number;
    the receiver acks every data frame and silently drops sequence
    numbers it has already delivered; the sender retransmits unacked
    frames on timeout (initial RTO [4*latency + 2]) with exponential
    backoff, giving up after [budget] attempts — a genuine loss then
    surfaces as a counted token loss and a diagnosable deadlock rather
    than a livelock.

    Wire faults are applied {e per frame} by the [fault] hook (one
    decision per frame put on the wire, acks included): drop loses the
    frame, duplicate injects it twice, delay/reorder hold it back so
    later traffic overtakes it, and a bit flip rewrites a data payload
    through the [corrupt] callback — sequence numbers cannot see payload
    corruption (there are no checksums), which is the
    {!Sanitize} invariant checker's job. *)

type 'msg rt

(** [rt_create ?config ?fault ?corrupt ?budget ~pes ()] — a reliable
    transport over a fresh raw wire.  [fault] decides each frame's fate
    (typically {!Fault.on_link} of a plan); [corrupt] applies a bit flip
    to a payload; [budget] caps retransmit attempts per frame
    (default 16). *)
val rt_create :
  ?config:config ->
  ?hops:(int -> int -> int) ->
  ?fault:(cycle:int -> dst:int -> Fault.action) ->
  ?corrupt:(int -> 'msg -> 'msg) ->
  ?budget:int ->
  pes:int ->
  unit ->
  'msg rt

(** [rt_send rt ~now ~src ~dst msg] — sequence, record for retransmit,
    and put a data frame on the wire. *)
val rt_send : 'msg rt -> now:int -> src:int -> dst:int -> 'msg -> unit

(** [rt_arrivals rt ~now] — payloads delivered this cycle, deduped, in
    deterministic order; acks (and re-acks of duplicates) are sent as a
    side effect. *)
val rt_arrivals : 'msg rt -> now:int -> (int * 'msg) list

(** [rt_step rt ~now] — end-of-cycle transport: release frames held by
    delay/reorder faults, retransmit frames past their deadline (sorted
    channel order), then step the raw wire. *)
val rt_step : 'msg rt -> now:int -> unit

(** Frames queued, flying, held or awaiting ack (0 = transport
    quiescent; replaces {!in_transit} in the machine's idle check). *)
val rt_pending : 'msg rt -> int

(** [rt_undelivered rt] — (src, dst, payload) of every frame sent but
    not yet handed to its receiver, sorted by channel and sequence
    number: what a checkpoint must capture and a restore must resend.
    Delivered-but-unacked frames are excluded — their effect is already
    in the checkpointed receiver state. *)
val rt_undelivered : 'msg rt -> (int * int * 'msg) list

type rt_stats = {
  r_sends : int;  (** distinct payloads sent *)
  r_retransmits : int;  (** timeout-driven resends *)
  r_dups_dropped : int;  (** receiver-side dedup hits *)
  r_acks : int;  (** ack frames sent *)
  r_wire_faults : int;  (** frames the fault hook acted on *)
  r_losses : int;  (** frames abandoned undelivered (budget exhausted) *)
}

val rt_stats : 'msg rt -> rt_stats

(** Raw wire counters underneath the reliable layer (retransmits and
    acks inflate [s_messages] relative to payloads). *)
val rt_wire_stats : 'msg rt -> stats
