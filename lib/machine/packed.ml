(** The packed explicit-token-store execution core (see the interface).

    [compile_graph] lowers a {!Dfg.Graph.t} once into flat instruction
    arrays — int opcode, matching arity, frame offset, flattened
    destination (node, port) pairs — and [run_report] executes the
    compiled code with a real explicit token store: operand slots and
    presence stamps live in preallocated per-context frames recycled
    through a free list, and the schedule is an event-driven ready
    wheel, so idle PEs and empty cycles cost nothing.

    The operator semantics are shared with the reference machines: the
    hot ALU/routing opcodes are specialised inline, everything with a
    side effect (start, end, loads, stores and their deferred
    I-structure reads) goes through {!Firing.execute}.  Determinacy of
    the translated graphs is what makes the split sound — the final
    store does not depend on scheduling — and the differential suite
    (test/test_packed.ml) holds the engine to bit-identical stores
    against the reference interpreter. *)

(* ------------------------------------------------------------------ *)
(* Instruction encoding                                               *)

let op_start = 0
let op_end = 1
let op_const = 2
let op_binop = 3
let op_unop = 4
let op_id = 5
let op_sink = 6
let op_load = 7
let op_store = 8
let op_switch = 9
let op_merge = 10
let op_synch = 11
let op_loop_entry = 12
let op_loop_exit = 13

(* family names per opcode; Binop and Unop share "alu" like
   {!Firing.family} *)
let op_family =
  [|
    "start"; "end"; "const"; "alu"; "alu"; "id"; "sink"; "load"; "store";
    "switch"; "merge"; "synch"; "loop-entry"; "loop-exit";
  |]

let opcode_of_kind : Dfg.Node.kind -> int = function
  | Dfg.Node.Start _ -> op_start
  | Dfg.Node.End _ -> op_end
  | Dfg.Node.Const _ -> op_const
  | Dfg.Node.Binop _ -> op_binop
  | Dfg.Node.Unop _ -> op_unop
  | Dfg.Node.Id -> op_id
  | Dfg.Node.Sink -> op_sink
  | Dfg.Node.Load _ -> op_load
  | Dfg.Node.Store _ -> op_store
  | Dfg.Node.Switch -> op_switch
  | Dfg.Node.Merge -> op_merge
  | Dfg.Node.Synch _ -> op_synch
  | Dfg.Node.Loop_entry _ -> op_loop_entry
  | Dfg.Node.Loop_exit _ -> op_loop_exit

(* A per-context activation frame: operand values and permission bags
   indexed by the node's frame offset plus input port, with generation
   stamps for presence so a recycled frame needs no clearing.  [f_need]
   counts the inputs a node still waits for ([f_need_back] for a loop
   gateway's back-edge group); the lazily stamped counters re-arm after
   every fire, so a node can rendezvous repeatedly in one context
   exactly as the reference matching store allows. *)
type frame = {
  f_vals : Imp.Value.t array;
  f_bags : Permission.bag array;
  f_stamp : int array;  (** slot holds a token iff [= f_gen] *)
  f_need : int array;
  f_nstamp : int array;
  f_need_back : int array;
  f_bstamp : int array;
  mutable f_gen : int;
  mutable f_occ : int;  (** tokens currently held *)
}

(* the drained-frame sentinel: a context id maps here when no frame is
   allocated for it, so the hot-path test is one physical comparison *)
let nil_frame =
  {
    f_vals = [||];
    f_bags = [||];
    f_stamp = [||];
    f_need = [||];
    f_nstamp = [||];
    f_need_back = [||];
    f_bstamp = [||];
    f_gen = 0;
    f_occ = 0;
  }

type code = {
  g : Dfg.Graph.t;
  n : int;
  opcode : int array;
  kinds : Dfg.Node.kind array;  (** payload access (const values, ops) *)
  in_ar : int array;  (** matching arity; 0 for merges (never matched) *)
  loop_ar : int array;  (** gateway group arity; 0 elsewhere *)
  is_mem : bool array;
  frame_off : int array;  (** operand-slot base within a frame *)
  slots : int;  (** operand slots per frame (sum of matching arities) *)
  (* flattened fan-out: the arcs leaving port [p] of node [v] are
     dst_*.(j) for j in [dest_base.(port_base.(v) + p)
                         .. dest_base.(port_base.(v) + p + 1) - 1] *)
  port_base : int array;
  dest_base : int array;
  dst_node : int array;
  dst_port : int array;
  dst_dummy : bool array;
  dst_tokens : int list array;
  start : int;
  (* recycled activation frames, shared across runs of this code (the
     engine is single-threaded); a frame's generation stamp makes any
     stale contents invisible to the next run *)
  mutable pool : frame list;
}

let graph (c : code) = c.g
let instructions (c : code) = c.n
let frame_slots (c : code) = c.slots

let compile_graph (g : Dfg.Graph.t) : code =
  let n = Dfg.Graph.num_nodes g in
  let opcode = Array.make n 0 in
  let kinds = Array.make n Dfg.Node.Id in
  let in_ar = Array.make n 0 in
  let loop_ar = Array.make n 0 in
  let is_mem = Array.make n false in
  let frame_off = Array.make n 0 in
  let out_ar = Array.make n 0 in
  let slots = ref 0 in
  for v = 0 to n - 1 do
    let k = Dfg.Graph.kind g v in
    let op = opcode_of_kind k in
    opcode.(v) <- op;
    kinds.(v) <- k;
    is_mem.(v) <- Dfg.Node.is_memory_op k;
    out_ar.(v) <- Dfg.Node.out_arity k;
    (match k with
    | Dfg.Node.Loop_entry { arity; _ } -> loop_ar.(v) <- arity
    | _ -> ());
    frame_off.(v) <- !slots;
    if op <> op_merge then begin
      in_ar.(v) <- Dfg.Node.in_arity k;
      slots := !slots + in_ar.(v)
    end
  done;
  (* flatten the fan-out lists; arc order within a port is preserved so
     the certified permission split sees the same delivery order as the
     reference engine *)
  let port_base = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    port_base.(v + 1) <- port_base.(v) + out_ar.(v)
  done;
  let total_ports = port_base.(n) in
  let dest_base = Array.make (total_ports + 1) 0 in
  let total = ref 0 in
  for v = 0 to n - 1 do
    for p = 0 to out_ar.(v) - 1 do
      dest_base.(port_base.(v) + p) <- !total;
      total := !total + List.length (Dfg.Graph.outgoing g v p)
    done
  done;
  dest_base.(total_ports) <- !total;
  let dst_node = Array.make (max 1 !total) 0 in
  let dst_port = Array.make (max 1 !total) 0 in
  let dst_dummy = Array.make (max 1 !total) false in
  let dst_tokens = Array.make (max 1 !total) [] in
  for v = 0 to n - 1 do
    for p = 0 to out_ar.(v) - 1 do
      List.iteri
        (fun i (a : Dfg.Graph.arc) ->
          let j = dest_base.(port_base.(v) + p) + i in
          dst_node.(j) <- a.Dfg.Graph.dst.Dfg.Graph.node;
          dst_port.(j) <- a.Dfg.Graph.dst.Dfg.Graph.index;
          dst_dummy.(j) <- a.Dfg.Graph.dummy;
          dst_tokens.(j) <- a.Dfg.Graph.tokens)
        (Dfg.Graph.outgoing g v p)
    done
  done;
  {
    g;
    n;
    opcode;
    kinds;
    in_ar;
    loop_ar;
    is_mem;
    frame_off;
    slots = !slots;
    port_base;
    dest_base;
    dst_node;
    dst_port;
    dst_dummy;
    dst_tokens;
    start = g.Dfg.Graph.start;
    pool = [];
  }

(* ------------------------------------------------------------------ *)
(* Runtime state                                                      *)

let dummy_value = Firing.dummy_value

(* unchecked array indexing for the per-token hot path; every index is
   bounded by the compiled layout (node < n, slot < slots, cid < nctx) *)
external ( .!() ) : 'a array -> int -> 'a = "%array_unsafe_get"
external ( .!()<- ) : 'a array -> int -> 'a -> unit = "%array_unsafe_set"

(* One ready-wheel bucket: a reusable growable vector of in-flight
   deliveries held as parallel arrays, so scheduling a token allocates
   nothing.  A token's context rides along both as its interned id
   (the frame key) and as the structural context (for observers). *)
type bucket = {
  mutable b_node : int array;
  mutable b_port : int array;
  mutable b_cid : int array;
  mutable b_ctx : Context.t array;
  mutable b_val : Imp.Value.t array;
  mutable b_bag : Permission.bag array;
  mutable b_len : int;
}

let fresh_bucket n =
  {
    b_node = Array.make n 0;
    b_port = Array.make n 0;
    b_cid = Array.make n 0;
    b_ctx = Array.make n Context.toplevel;
    b_val = Array.make n dummy_value;
    b_bag = Array.make n Permission.empty_bag;
    b_len = 0;
  }

let bucket_push (b : bucket) node port cid ctx v bag =
  let k = b.b_len in
  if k = Array.length b.b_node then begin
    let n = max 16 (2 * k) in
    let grow src zero =
      let a = Array.make n zero in
      Array.blit src 0 a 0 k;
      a
    in
    b.b_node <- grow b.b_node 0;
    b.b_port <- grow b.b_port 0;
    b.b_cid <- grow b.b_cid 0;
    b.b_ctx <- grow b.b_ctx Context.toplevel;
    b.b_val <- grow b.b_val dummy_value;
    b.b_bag <- grow b.b_bag Permission.empty_bag
  end;
  b.b_node.!(k) <- node;
  b.b_port.!(k) <- port;
  b.b_cid.!(k) <- cid;
  b.b_ctx.!(k) <- ctx;
  b.b_val.!(k) <- v;
  b.b_bag.!(k) <- bag;
  b.b_len <- k + 1

type firing = {
  fr_node : int;
  fr_cid : int;
  fr_ctx : Context.t;
  fr_inputs : Imp.Value.t array;
  fr_bags : Permission.bag list;  (** [[]] on uncertified runs *)
}

type result = {
  memory : Imp.Memory.t;
  cycles : int;
  firings : int;
  memory_ops : int;
  dummy_deliveries : int;
  value_deliveries : int;
  peak_parallelism : int;
  completed : bool;
  leftover_tokens : int;
  peak_frames : int;  (** most simultaneously live context frames *)
  peak_in_flight : int;
  firings_by_kind : (string * int) list;
  throttled : int;  (** deliveries postponed by the frame-store bound *)
  spilled : int;
  per_pe_firings : int array;
  per_pe_busy : int array;
  local_deliveries : int;
  net_messages : int;
  diagnosis : Diagnosis.t;
}

exception Abort of Diagnosis.t

let run_report ?(config = Config.default)
    ?(multiproc : (Placement.t * int * int) option) ?(sanitize = true)
    ?(on_fire : (int -> int -> Context.t -> pe:int -> unit) option)
    ~(layout : Imp.Layout.t) (c : code) :
    (result, Diagnosis.t) Stdlib.result =
  let g = c.g in
  let memory = Imp.Memory.create layout in
  let env : unit Firing.env = Firing.make_env ~graph:g ~layout memory in
  let san = if sanitize then Some (Sanitize.create g) else None in
  let violations : Sanitize.violation list ref = ref [] in
  let perm =
    match g.Dfg.Graph.cert with
    | Some cert -> Some (Permission.create g cert)
    | None -> None
  in
  (* topology: single-PE mode uses [config.pes]/[memory_ports]; the
     multiprocessor mode partitions instructions by the placement and
     charges [hop] extra cycles on every cross-PE token *)
  let assign, pes, issue_width, hop, cap =
    match multiproc with
    | None -> (None, 1, 0, 0, config.Config.max_matching)
    | Some (place, iw, hop) ->
        (Some place.Placement.assign, place.Placement.pes, iw, hop, None)
  in
  let multi = multiproc <> None in
  (* the frame bound as a plain int: max_int means unbounded *)
  let capk = match cap with Some k -> k | None -> max_int in
  let direct =
    (not multi)
    && config.Config.pes = None
    && config.Config.memory_ports = None
    && config.Config.policy = Config.Fifo
    &&
    let l = config.Config.latencies in
    l.Config.alu >= 1 && l.Config.memory >= 1 && l.Config.routing >= 1
  in
  let pe_of v = match assign with None -> 0 | Some a -> a.(v) in
  (* Contexts are interned to dense ids at the one place they are
     minted — gateway firings — so the per-token path indexes flat
     arrays and never hashes or structurally compares a context list.
     Frames live in an id-indexed array, recycled through a free list:
     a context's slot points at [nil_frame] whenever it holds no
     tokens. *)
  let ctx_ids : (Context.t, int) Hashtbl.t = Hashtbl.create 64 in
  let ctx_of_id = ref (Array.make 64 Context.toplevel) in
  let frames = ref (Array.make 64 nil_frame) in
  let nctx = ref 0 in
  (* frame pool handed across runs of this code *)
  let free : frame list ref = ref c.pool in
  c.pool <- [];
  let gen = ref 1 in
  let live = ref 0 in
  (* frames holding at least one token *)
  let peak_frames = ref 0 in
  let intern ctx =
    match Hashtbl.find_opt ctx_ids ctx with
    | Some i -> i
    | None ->
        let i = !nctx in
        incr nctx;
        if i >= Array.length !ctx_of_id then begin
          let a = Array.make (2 * i) Context.toplevel in
          Array.blit !ctx_of_id 0 a 0 i;
          ctx_of_id := a;
          let b = Array.make (2 * i) nil_frame in
          Array.blit !frames 0 b 0 i;
          frames := b
        end;
        !ctx_of_id.(i) <- ctx;
        Hashtbl.add ctx_ids ctx i;
        i
  in
  let fresh_frame () =
    {
      f_vals = Array.make (max 1 c.slots) dummy_value;
      f_bags = Array.make (max 1 c.slots) Permission.empty_bag;
      f_stamp = Array.make (max 1 c.slots) 0;
      f_need = Array.make c.n 0;
      f_nstamp = Array.make c.n 0;
      f_need_back = Array.make c.n 0;
      f_bstamp = Array.make c.n 0;
      f_gen = 0;
      f_occ = 0;
    }
  in
  let acquire cid =
    let f =
      match !free with
      | f :: tl ->
          free := tl;
          f
      | [] -> fresh_frame ()
    in
    incr gen;
    f.f_gen <- !gen;
    f.f_occ <- 0;
    !frames.(cid) <- f;
    f
  in
  (* a drained frame goes straight back to the pool; in-flight tokens
     address it by context id, so a later arrival re-acquires cleanly *)
  let release cid (f : frame) =
    !frames.(cid) <- nil_frame;
    free := f :: !free;
    decr live
  in
  (* hand every frame back to the code's pool on the way out (stale
     contents are invisible behind the generation stamp) *)
  let repool () =
    for i = 0 to !nctx - 1 do
      let f = !frames.(i) in
      if f != nil_frame then free := f :: !free
    done;
    c.pool <- !free
  in
  (* the ready wheel: schedule offsets are bounded by the largest
     operation latency plus the network hop plus the one-cycle throttle
     retry, so a power-of-two wheel just above that can never wrap *)
  let wheel_size =
    let l = config.Config.latencies in
    let m = max l.Config.alu (max l.Config.memory l.Config.routing) + hop + 2 in
    let rec pow2 w = if w >= m then w else pow2 (2 * w) in
    pow2 8
  in
  let mask = wheel_size - 1 in
  let wheel =
    Array.init wheel_size (fun _ -> fresh_bucket 16)
  in
  let pending = ref 0 in
  let peak_in_flight = ref 0 in
  (* per-PE ready queues (FIFO), with LIFO absorption stacks *)
  let ready : firing Queue.t array = Array.init pes (fun _ -> Queue.create ()) in
  let lifo : firing Stack.t array = Array.init pes (fun _ -> Stack.create ()) in
  (* counters *)
  let firings = ref 0 in
  let memory_ops = ref 0 in
  let op_counts = Array.make (Array.length op_family) 0 in
  let dummy_deliveries = ref 0 in
  let value_deliveries = ref 0 in
  let local_deliveries = ref 0 in
  let net_messages = ref 0 in
  let per_pe_firings = Array.make pes 0 in
  let per_pe_busy = Array.make pes 0 in
  let peak_parallelism = ref 0 in
  let throttled = ref 0 in
  let throttled_this_cycle = ref 0 in
  let spilled = ref 0 in
  let spill = ref false in
  let progressed = ref false in
  let completed = ref false in
  let last_cycle = ref 0 in
  let t = ref 0 in
  (* --- structured post-mortem ------------------------------------- *)
  let frame_tokens () =
    let acc = ref 0 in
    for i = 0 to !nctx - 1 do
      acc := !acc + !frames.(i).f_occ
    done;
    !acc
  in
  let leftover_count () = frame_tokens () + Firing.deferred_count env in
  let diagnose (verdict : Diagnosis.verdict) : Diagnosis.t =
    let fold_frames k init =
      let acc = ref init in
      for i = 0 to !nctx - 1 do
        let f = !frames.(i) in
        if f != nil_frame && f.f_occ > 0 then
          acc := k !ctx_of_id.(i) f !acc
      done;
      !acc
    in
    let blocked =
      fold_frames
        (fun ctx f acc ->
          let rec nodes v acc =
            if v < 0 then acc
            else
              let base = c.frame_off.(v) in
              let ar = c.in_ar.(v) in
              let present = ref [] and missing = ref [] in
              for p = ar - 1 downto 0 do
                if f.f_stamp.(base + p) = f.f_gen then present := p :: !present
                else missing := p :: !missing
              done;
              if !present = [] then nodes (v - 1) acc
              else
                nodes (v - 1)
                  ({
                     Diagnosis.b_node = v;
                     b_label = (Dfg.Graph.node g v).Dfg.Node.label;
                     b_ctx = ctx;
                     b_present = !present;
                     b_missing = !missing;
                     b_pe = (if multi then Some (pe_of v) else None);
                   }
                  :: acc)
          in
          nodes (c.n - 1) acc)
        []
      |> List.sort (fun a b ->
             compare
               (a.Diagnosis.b_node, a.Diagnosis.b_ctx)
               (b.Diagnosis.b_node, b.Diagnosis.b_ctx))
    in
    let tokens_by_context =
      fold_frames (fun ctx f acc -> (ctx, f.f_occ) :: acc) []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    let waiting_by_pe =
      if not multi then []
      else begin
        let per = Array.make pes 0 in
        List.iter
          (fun (b : Diagnosis.blocked) ->
            match b.Diagnosis.b_pe with
            | Some pe ->
                per.(pe) <- per.(pe) + List.length b.Diagnosis.b_present
            | None -> ())
          blocked;
        Array.to_list (Array.mapi (fun pe n -> (pe, n)) per)
        |> List.filter (fun (_, n) -> n <> 0)
      end
    in
    {
      Diagnosis.verdict;
      cycles = !t;
      leftover_tokens = leftover_count ();
      blocked;
      deferred_reads = Firing.deferred_reads env;
      tokens_by_context;
      waiting_by_pe;
      pressure =
        {
          Diagnosis.capacity = cap;
          peak = !peak_frames;
          throttled = !throttled;
          spilled = !spilled;
        };
      network =
        (if multi then
           Some
             {
               Diagnosis.net_messages = !net_messages;
               net_backpressure = 0;
               net_peak_queue = 0;
               net_peak_in_flight = 0;
             }
         else None);
      faults = [];
      sanitizer = List.rev !violations;
      permission =
        (match perm with Some p -> Permission.violations p | None -> []);
      certified =
        (match perm with
        | Some p -> Some (Permission.elements p, Permission.checks p)
        | None -> None);
    }
  in
  let abort verdict = raise (Abort (diagnose verdict)) in
  (* --- token transport --------------------------------------------- *)
  let schedule at node port cid ctx v bag =
    incr pending;
    if !pending > !peak_in_flight then peak_in_flight := !pending;
    bucket_push wheel.(at land mask) node port cid ctx v bag
  in
  (* deliver the value emitted at (node, port) to every destination of
     that port; [src_pe] decides locality and the hop charge *)
  let emit_port ~src_pe ~t_done node port cid ctx v bag =
    let pb = c.port_base.!(node) + port in
    let base = c.dest_base.!(pb) in
    let stop = c.dest_base.!(pb + 1) in
    for j = base to stop - 1 do
      if c.dst_dummy.!(j) then incr dummy_deliveries
      else incr value_deliveries;
      let at =
        if multi then begin
          let dpe = pe_of c.dst_node.!(j) in
          if dpe = src_pe then begin
            incr local_deliveries;
            t_done
          end
          else begin
            incr net_messages;
            t_done + hop
          end
        end
        else t_done
      in
      schedule at c.dst_node.!(j) c.dst_port.!(j) cid ctx v bag
    done
  in
  (* --- waiting-matching in frames ---------------------------------- *)
  let enqueue_fire node (fr : firing) = Queue.add fr ready.(pe_of node) in
  (* gather a completed rendezvous: ports [p0, p0+count) of [node],
     consumed (stamps cleared, occupancy released).  [extra_pad] appends
     the trailing pad slot that encodes a gateway's back-edge group. *)
  (* in direct mode a firing's input array dies inside the delivery
     that produced it, so one scratch array per arity is reused across
     the whole run; queued firings still get a fresh array (the record
     outlives the delivery) *)
  let scratch = Array.make 33 [||] in
  let take_inputs n =
    if (not direct) || n > 32 then Array.make n dummy_value
    else begin
      let a = scratch.(n) in
      if Array.length a = n then a
      else begin
        let a = Array.make n dummy_value in
        scratch.(n) <- a;
        a
      end
    end
  in
  let gather cid (f : frame) node p0 count ~extra_pad =
    let base = c.frame_off.!(node) + p0 in
    let inputs = take_inputs (count + if extra_pad then 1 else 0) in
    Array.blit f.f_vals base inputs 0 count;
    if extra_pad then inputs.(count) <- dummy_value;
    let bags =
      match perm with
      | None -> []
      | Some _ ->
          let rec take i acc =
            if i < 0 then acc
            else
              take (i - 1)
                ((if i < count then f.f_bags.(base + i)
                  else Permission.empty_bag)
                :: acc)
          in
          take (count - 1 + if extra_pad then 1 else 0) []
    in
    for i = 0 to count - 1 do
      f.f_stamp.!(base + i) <- 0;
      (* release the value and bag so the frame pool does not retain
         dead heap structure across contexts *)
      f.f_vals.!(base + i) <- dummy_value;
      f.f_bags.!(base + i) <- Permission.empty_bag
    done;
    f.f_occ <- f.f_occ - count;
    if f.f_occ = 0 then release cid f;
    (inputs, bags)
  in
  (* --- firing execution -------------------------------------------- *)
  let on_complete () = completed := true in
  let double_write msg = abort (Diagnosis.Double_write msg) in
  (* certified path: buffer the emissions so the held permission can be
     split over the actual deliveries in emission-then-arc order,
     matching the reference engine's split bit for bit *)
  (* contexts minted by a firing (gateway transitions, deferred
     wakeups) are interned where they first appear; the common case is
     the firing's own context, one physical comparison *)
  let cid_of fcid fctx ctx = if ctx == fctx then fcid else intern ctx in
  (* one preallocated emit callback for the uncertified {!Firing.execute}
     fallback: the per-firing coordinates ride in refs, so a memory op
     allocates no closure *)
  let cur_pe = ref 0 in
  let cur_t_done = ref 0 in
  let cur_cid = ref 0 in
  let cur_ctx = ref Context.toplevel in
  let emit_shared ~node ~port ~ctx ~meta:() v =
    emit_port ~src_pe:!cur_pe ~t_done:!cur_t_done node port
      (cid_of !cur_cid !cur_ctx ctx) ctx v Permission.empty_bag
  in
  let ebuf : (int * int * Context.t * Imp.Value.t) list ref = ref [] in
  let exec_cert pm t_done src_pe node fcid fctx inputs fbags =
    let held = fst (Permission.on_fire pm ~node ~ctx:fctx fbags) in
    ebuf := [];
    Firing.execute env
      ~emit:(fun ~node ~port ~ctx ~meta:() v ->
        ebuf := (node, port, ctx, v) :: !ebuf)
      ~meta:() ~meta_max:(fun () () -> ()) ~on_complete ~double_write ~node
      ~ctx:fctx ~inputs;
    let emissions = List.rev !ebuf in
    let labels =
      List.concat_map
        (fun (en, ep, _, _) ->
          let base = c.dest_base.(c.port_base.(en) + ep) in
          let stop = c.dest_base.(c.port_base.(en) + ep + 1) in
          List.init (stop - base) (fun j ->
              if en = node then c.dst_tokens.(base + j) else []))
        emissions
      |> Array.of_list
    in
    let bags = fst (Permission.split pm ~node ~held labels) in
    let k = ref 0 in
    List.iter
      (fun (en, ep, ectx, ev) ->
        let base = c.dest_base.(c.port_base.(en) + ep) in
        let stop = c.dest_base.(c.port_base.(en) + ep + 1) in
        for j = base to stop - 1 do
          if c.dst_dummy.(j) then incr dummy_deliveries
          else incr value_deliveries;
          let at =
            if multi then begin
              let dpe = pe_of c.dst_node.(j) in
              if dpe = src_pe then begin
                incr local_deliveries;
                t_done
              end
              else begin
                incr net_messages;
                t_done + hop
              end
            end
            else t_done
          in
          schedule at c.dst_node.(j) c.dst_port.(j) (cid_of fcid fctx ectx)
            ectx ev bags.(!k);
          incr k
        done)
      emissions
  in
  (* per-node ALU closures, compiled once: [Imp.Value.binop] allocates
     its dispatch closures on every call, which the firing loop cannot
     afford *)
  let binop_fn =
    Array.map
      (fun k ->
        match k with
        | Dfg.Node.Binop op ->
            let open Imp.Value in
            (match op with
            | Imp.Ast.Add -> fun a b -> Int (to_int a + to_int b)
            | Imp.Ast.Sub -> fun a b -> Int (to_int a - to_int b)
            | Imp.Ast.Mul -> fun a b -> Int (to_int a * to_int b)
            | Imp.Ast.Div ->
                fun a b ->
                  let y = to_int b in
                  Int (if y = 0 then 0 else to_int a / y)
            | Imp.Ast.Mod ->
                fun a b ->
                  let y = to_int b in
                  Int (if y = 0 then 0 else to_int a mod y)
            | Imp.Ast.Lt -> fun a b -> Bool (to_int a < to_int b)
            | Imp.Ast.Le -> fun a b -> Bool (to_int a <= to_int b)
            | Imp.Ast.Gt -> fun a b -> Bool (to_int a > to_int b)
            | Imp.Ast.Ge -> fun a b -> Bool (to_int a >= to_int b)
            | Imp.Ast.Eq -> fun a b -> Bool (to_int a = to_int b)
            | Imp.Ast.Ne -> fun a b -> Bool (to_int a <> to_int b)
            | Imp.Ast.And -> fun a b -> Bool (to_bool a && to_bool b)
            | Imp.Ast.Or -> fun a b -> Bool (to_bool a || to_bool b))
        | _ -> fun _ _ -> assert false)
      c.kinds
  in
  (* per-node memory addressing, resolved once against this run's
     layout so the hot path never consults the name table *)
  let mem_plain = Array.make c.n false in
  let mem_indexed = Array.make c.n false in
  let mem_base = Array.make c.n 0 in
  let mem_ext = Array.make c.n 1 in
  Array.iteri
    (fun v k ->
      match k with
      | Dfg.Node.Load { var; indexed; mem } | Dfg.Node.Store { var; indexed; mem }
        ->
          mem_plain.(v) <- mem = Dfg.Node.Plain;
          mem_indexed.(v) <- indexed;
          mem_base.(v) <- Imp.Layout.base_of layout var;
          mem_ext.(v) <- Imp.Layout.extent_of layout var
      | _ -> ())
    c.kinds;
  let mem_addr node i =
    let e = mem_ext.!(node) in
    mem_base.!(node) + (((i mod e) + e) mod e)
  in
  let exec_fast t_done src_pe node cid ctx inputs =
    let nobag = Permission.empty_bag in
    let op = c.opcode.!(node) in
    if op = op_binop then
      emit_port ~src_pe ~t_done node 0 cid ctx
        (binop_fn.!(node) inputs.(0) inputs.(1))
        nobag
    else if op = op_const then
      match c.kinds.(node) with
      | Dfg.Node.Const v -> emit_port ~src_pe ~t_done node 0 cid ctx v nobag
      | _ -> assert false
    else if op = op_id || op = op_merge then
      emit_port ~src_pe ~t_done node 0 cid ctx inputs.(0) nobag
    else if op = op_switch then begin
      if Imp.Value.to_bool inputs.(1) then
        emit_port ~src_pe ~t_done node 0 cid ctx inputs.(0) nobag
      else emit_port ~src_pe ~t_done node 1 cid ctx inputs.(0) nobag
    end
    else if op = op_synch then
      emit_port ~src_pe ~t_done node 0 cid ctx dummy_value nobag
    else if op = op_unop then
      match c.kinds.(node) with
      | Dfg.Node.Unop uop ->
          emit_port ~src_pe ~t_done node 0 cid ctx
            (Imp.Value.unop uop inputs.(0))
            nobag
      | _ -> assert false
    else if op = op_sink then ()
    else if op = op_load && mem_plain.!(node) then begin
      let i = if mem_indexed.!(node) then Imp.Value.to_int inputs.(1) else 0 in
      emit_port ~src_pe ~t_done node 0 cid ctx
        (Imp.Value.Int (Imp.Memory.read_addr env.Firing.memory (mem_addr node i)))
        nobag;
      emit_port ~src_pe ~t_done node 1 cid ctx dummy_value nobag
    end
    else if op = op_store && mem_plain.!(node) then begin
      let i = if mem_indexed.!(node) then Imp.Value.to_int inputs.(2) else 0 in
      Imp.Memory.write_addr env.Firing.memory (mem_addr node i)
        (Imp.Value.to_int inputs.(1));
      emit_port ~src_pe ~t_done node 0 cid ctx dummy_value nobag
    end
    else if op = op_loop_entry then begin
      let a = c.loop_ar.(node) in
      let ctx' =
        if Array.length inputs = a then Context.enter ctx else Context.next ctx
      in
      let cid' = intern ctx' in
      for i = 0 to a - 1 do
        emit_port ~src_pe ~t_done node i cid' ctx' inputs.(i) nobag
      done
    end
    else if op = op_loop_exit then begin
      let ctx' = Context.leave ctx in
      let cid' = intern ctx' in
      for i = 0 to Array.length inputs - 1 do
        emit_port ~src_pe ~t_done node i cid' ctx' inputs.(i) nobag
      done
    end
    else
      (* start, end, loads, stores (and their deferred I-structure
         wakeups, which emit from the reader's own ports) share the
         reference firing rule *)
      begin
        cur_pe := src_pe;
        cur_t_done := t_done;
        cur_cid := cid;
        cur_ctx := ctx;
        Firing.execute env ~emit:emit_shared ~meta:()
          ~meta_max:(fun () () -> ()) ~on_complete ~double_write ~node ~ctx
          ~inputs
      end
  in
  (* per-node latency, resolved once against this run's config *)
  let lat = Array.init c.n (fun v -> Config.latency config c.kinds.(v)) in
  let count_fire t pe node ctx group =
    incr firings;
    let op = c.opcode.!(node) in
    op_counts.!(op) <- op_counts.!(op) + 1;
    if c.is_mem.!(node) then incr memory_ops;
    per_pe_firings.!(pe) <- per_pe_firings.!(pe) + 1;
    (match on_fire with Some cb -> cb t node ctx ~pe | None -> ());
    match san with
    | Some s -> (
        match Sanitize.on_fire s ~node ~ctx ~group with
        | Some v -> violations := v :: !violations
        | None -> ())
    | None -> ()
  in
  let exec t pe node cid ctx inputs bags =
    count_fire t pe node ctx (Array.length inputs);
    let t_done = t + lat.!(node) in
    if t_done > !last_cycle then last_cycle := t_done;
    match perm with
    | Some pm -> exec_cert pm t_done pe node cid ctx inputs bags
    | None -> exec_fast t_done pe node cid ctx inputs
  in
  (* monadic fast path: merges and single-input operators fire straight
     from the delivery; the routing opcodes skip the input array *)
  let exec1 t pe node cid ctx v bag =
    match perm with
    | Some _ ->
        exec t pe node cid ctx [| v |] [ bag ]
    | None ->
        count_fire t pe node ctx 1;
        let t_done = t + lat.!(node) in
        if t_done > !last_cycle then last_cycle := t_done;
        let op = c.opcode.!(node) in
        if op = op_id || op = op_merge then
          emit_port ~src_pe:pe ~t_done node 0 cid ctx v Permission.empty_bag
        else if op = op_unop then
          match c.kinds.(node) with
          | Dfg.Node.Unop uop ->
              emit_port ~src_pe:pe ~t_done node 0 cid ctx
                (Imp.Value.unop uop v) Permission.empty_bag
          | _ -> assert false
        else if op = op_synch then
          emit_port ~src_pe:pe ~t_done node 0 cid ctx dummy_value
            Permission.empty_bag
        else if op = op_sink then ()
        else exec_fast t_done pe node cid ctx [| v |]
  in
  (* direct mode: with one unbounded PE, no memory-port limit and FIFO
     scheduling, every enabled firing issues in the cycle it matched, so
     the ready queue is an identity step — execute straight from the
     delivery instead (all latencies >= 1, so emissions never land back
     in the bucket being drained) *)
  let fire t node cid ctx inputs bags =
    if direct then exec t 0 node cid ctx inputs bags
    else
      enqueue_fire node
        {
          fr_node = node;
          fr_cid = cid;
          fr_ctx = ctx;
          fr_inputs = inputs;
          fr_bags = bags;
        }
  in
  (* --- token delivery and waiting-matching -------------------------- *)
  let deliver t node port cid ctx v bag =
    let op = c.opcode.!(node) in
    if op = op_merge || c.in_ar.!(node) = 1 then begin
      (* no rendezvous needed: a merge fires on every delivery, and a
         single token is already a complete match for a monadic
         operator — neither touches a frame (nor the capacity bound,
         which counts waiting matches) *)
      progressed := true;
      (match san with
      | Some s when op <> op_merge -> Sanitize.on_delivery s ~node ~port
      | _ -> ());
      if direct then exec1 t 0 node cid ctx v bag
      else
        enqueue_fire node
          {
            fr_node = node;
            fr_cid = cid;
            fr_ctx = ctx;
            fr_inputs = [| v |];
            fr_bags = (match perm with None -> [] | Some _ -> [ bag ]);
          }
    end
    else begin
      let existing = !frames.!(cid) in
      let is_new = existing == nil_frame in
      let at_capacity = is_new && !live >= capk in
      if at_capacity && not !spill then begin
        (* bounded frame store: postpone the rendezvous instead of
           crashing, and account for the pressure *)
        incr throttled;
        incr throttled_this_cycle;
        schedule (t + 1) node port cid ctx v bag
      end
      else begin
        if at_capacity then begin
          (* the one-per-stagnant-cycle overflow admission *)
          spill := false;
          incr spilled
        end;
        progressed := true;
        (match san with
        | Some s -> Sanitize.on_delivery s ~node ~port
        | None -> ());
        let f = if is_new then acquire cid else existing in
        let slot = c.frame_off.!(node) + port in
        if f.f_stamp.!(slot) = f.f_gen then begin
          (* presence bit already set: the single-token-per-arc
             discipline is violated *)
          if config.Config.detect_collisions then
            abort
              (Diagnosis.Collision
                 (Fmt.str "node %d (%s) port %d ctx %s" node
                    (Dfg.Graph.node g node).Dfg.Node.label port
                    (Context.to_string ctx)));
          (* undetected: the late token overwrites the slot, exactly the
             Figure 8 pile-up the sanitizer then reports as Double_fire *)
          f.f_vals.!(slot) <- v;
          f.f_bags.!(slot) <- bag
        end
        else begin
          f.f_stamp.!(slot) <- f.f_gen;
          f.f_vals.!(slot) <- v;
          f.f_bags.!(slot) <- bag;
          f.f_occ <- f.f_occ + 1;
          if f.f_occ = 1 then begin
            incr live;
            if !live > !peak_frames then peak_frames := !live
          end;
          let la = c.loop_ar.!(node) in
          if la = 0 then begin
            if f.f_nstamp.!(node) <> f.f_gen then begin
              f.f_nstamp.!(node) <- f.f_gen;
              f.f_need.!(node) <- c.in_ar.!(node)
            end;
            f.f_need.!(node) <- f.f_need.!(node) - 1;
            if f.f_need.!(node) = 0 then begin
              f.f_nstamp.!(node) <- 0;
              let inputs, bags =
                gather cid f node 0 c.in_ar.!(node) ~extra_pad:false
              in
              fire t node cid ctx inputs bags
            end
          end
          else if port < la then begin
            (* gateway initial group: ports 0..arity-1 *)
            if f.f_nstamp.!(node) <> f.f_gen then begin
              f.f_nstamp.!(node) <- f.f_gen;
              f.f_need.!(node) <- la
            end;
            f.f_need.!(node) <- f.f_need.!(node) - 1;
            if f.f_need.!(node) = 0 then begin
              f.f_nstamp.!(node) <- 0;
              let inputs, bags = gather cid f node 0 la ~extra_pad:false in
              fire t node cid ctx inputs bags
            end
          end
          else begin
            (* gateway back-edge group: ports arity..2*arity-1; the
               fired group is encoded by the input-array length (arity+1
               with a trailing pad), as {!Matching.deliver} does *)
            if f.f_bstamp.!(node) <> f.f_gen then begin
              f.f_bstamp.!(node) <- f.f_gen;
              f.f_need_back.!(node) <- la
            end;
            f.f_need_back.!(node) <- f.f_need_back.!(node) - 1;
            if f.f_need_back.!(node) = 0 then begin
              f.f_bstamp.!(node) <- 0;
              let inputs, bags = gather cid f node la la ~extra_pad:true in
              fire t node cid ctx inputs bags
            end
          end
        end
      end
    end
  in
  (* boot: fire Start at cycle 0.  In direct mode the ready queue would
     otherwise stay empty for the whole run, so the main loop can skip
     the issue machinery entirely *)
  let boot_bags =
    match perm with Some p -> [ Permission.mint p ] | None -> []
  in
  if direct then exec 0 0 c.start (intern Context.toplevel) Context.toplevel
      [||] boot_bags
  else
    Queue.add
      {
        fr_node = c.start;
        fr_cid = intern Context.toplevel;
        fr_ctx = Context.toplevel;
        fr_inputs = [||];
        fr_bags = boot_bags;
      }
      ready.(pe_of c.start);
  let absorb pe =
    match config.Config.policy with
    | Config.Fifo -> ()
    | Config.Lifo ->
        while not (Queue.is_empty ready.(pe)) do
          Stack.push (Queue.pop ready.(pe)) lifo.(pe)
        done
  in
  let pop_next pe =
    match config.Config.policy with
    | Config.Fifo -> Queue.pop ready.(pe)
    | Config.Lifo -> Stack.pop lifo.(pe)
  in
  let ready_length pe =
    Queue.length ready.(pe)
    +
    match config.Config.policy with
    | Config.Fifo -> 0
    | Config.Lifo -> Stack.length lifo.(pe)
  in
  let any_ready () =
    let rec go pe = pe < pes && (ready_length pe > 0 || go (pe + 1)) in
    go 0
  in
  (* per-PE firing counts at cycle start: the deltas drive the busy and
     peak-parallelism statistics for both the direct and queued modes *)
  let prev_fired = Array.make pes 0 in
  try
    let finished = ref false in
    while not !finished do
      if !t > config.Config.max_cycles then
        abort (Diagnosis.Diverged config.Config.max_cycles);
      Array.blit per_pe_firings 0 prev_fired 0 pes;
      (* 1. deliver the tokens scheduled for this cycle (in direct mode
         completed matches execute inline here) *)
      let b = wheel.(!t land mask) in
      let count = b.b_len in
      (* reset before processing: a throttled delivery re-schedules into
         the (t+1) bucket, never back into this one *)
      b.b_len <- 0;
      for i = 0 to count - 1 do
        decr pending;
        deliver !t b.b_node.!(i) b.b_port.!(i) b.b_cid.!(i) b.b_ctx.!(i)
          b.b_val.!(i) b.b_bag.!(i);
        (* release the heap references held by the drained slots *)
        b.b_ctx.!(i) <- Context.toplevel;
        b.b_val.!(i) <- dummy_value;
        b.b_bag.!(i) <- Permission.empty_bag
      done;
      (* 2. every PE issues enabled firings (in direct mode completed
         matches already executed during delivery and the queue is
         empty) *)
      if not direct then
      for pe = 0 to pes - 1 do
        absorb pe;
        let budget =
          if multi then min issue_width (ready_length pe)
          else
            match config.Config.pes with
            | None -> ready_length pe
            | Some p -> min p (ready_length pe)
        in
        let started = ref 0 in
        let mem_issued = ref 0 in
        let deferred_mem : firing list ref = ref [] in
        while !started < budget do
          let f = pop_next pe in
          let port_free =
            multi
            ||
            match config.Config.memory_ports with
            | None -> true
            | Some k -> (not c.is_mem.(f.fr_node)) || !mem_issued < max 1 k
          in
          if port_free then begin
            if c.is_mem.(f.fr_node) then incr mem_issued;
            exec !t pe f.fr_node f.fr_cid f.fr_ctx f.fr_inputs f.fr_bags;
            progressed := true;
            incr started
          end
          else begin
            (* out of memory ports this cycle: retry next cycle *)
            deferred_mem := f :: !deferred_mem;
            incr started
          end
        done;
        List.iter (fun f -> Queue.add f ready.(pe)) (List.rev !deferred_mem)
      done;
      let fired_total = ref 0 in
      for pe = 0 to pes - 1 do
        let d = per_pe_firings.(pe) - prev_fired.(pe) in
        if d > 0 then per_pe_busy.(pe) <- per_pe_busy.(pe) + 1;
        fired_total := !fired_total + d
      done;
      if !fired_total > !peak_parallelism then peak_parallelism := !fired_total;
      (* 3. stagnation: every delivery throttled, nothing fired ->
         admit one over capacity next cycle *)
      if !throttled_this_cycle > 0 && not !progressed then spill := true;
      throttled_this_cycle := 0;
      progressed := false;
      (* 4. quiescence / event-driven skip to the next scheduled cycle *)
      if (not (any_ready ())) && !pending = 0 then finished := true
      else if any_ready () then incr t
      else begin
        (* nothing enabled: jump straight to the next delivery cycle *)
        let j = ref 1 in
        while wheel.((!t + !j) land mask).b_len = 0 do incr j done;
        t := !t + !j
      end
    done;
    let leftover = leftover_count () in
    (match san with
    | Some s ->
        List.iter
          (fun v -> violations := v :: !violations)
          (Sanitize.at_quiescence s ~leftover:(frame_tokens ()))
    | None -> ());
    (match perm with
    | Some p -> ignore (Permission.at_quiescence p : Permission.violation list)
    | None -> ());
    let verdict =
      if not !completed then Diagnosis.Deadlock
      else if leftover <> 0 then Diagnosis.Leftover leftover
      else Diagnosis.Clean
    in
    let firings_by_kind =
      let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
      Array.iteri
        (fun op n ->
          if n > 0 then
            Hashtbl.replace tbl op_family.(op)
              (n + (try Hashtbl.find tbl op_family.(op) with Not_found -> 0)))
        op_counts;
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    let diagnosis = diagnose verdict in
    repool ();
    Ok
      {
        memory;
        cycles = !last_cycle;
        firings = !firings;
        memory_ops = !memory_ops;
        dummy_deliveries = !dummy_deliveries;
        value_deliveries = !value_deliveries;
        peak_parallelism = !peak_parallelism;
        completed = !completed;
        leftover_tokens = leftover;
        peak_frames = !peak_frames;
        peak_in_flight = !peak_in_flight;
        firings_by_kind;
        throttled = !throttled;
        spilled = !spilled;
        per_pe_firings;
        per_pe_busy;
        local_deliveries = !local_deliveries;
        net_messages = !net_messages;
        diagnosis;
      }
  with Abort d ->
    repool ();
    Error d
