(** Packed explicit-token-store execution core.

    The reference machines ({!Interp}, {!Multiproc}) walk functional
    structures — maps keyed by (node, context), association lists,
    per-cycle replay lists — on every token.  This module is the
    compiled alternative, the move Monsoon made for the paper's
    abstract ETS machine: {!compile_graph} lowers a {!Dfg.Graph.t}
    {e once} into flat instruction arrays (int opcode, matching arity,
    frame offset, flattened destination node/port pairs), and
    {!run_report} executes the compiled code over a real explicit token
    store — operand slots and generation-stamped presence bits in
    preallocated per-context frames recycled through a free list — with
    an event-driven ready wheel, so idle PEs and empty cycles cost
    nothing.

    Why this is safe to use: the translated graphs are determinate, so
    the final store and the certificate verdict are independent of
    scheduling.  The differential suite (test/test_packed.ml) and the
    oracle's packed combos hold this engine to bit-identical final
    stores and identical [Diagnosis.certified] verdicts against the
    reference interpreter on randomized programs.

    Observability is deliberately coarser than the reference engine's:
    no per-cycle parallelism/matching curves, no dynamic critical path,
    and no fault injection (callers fall back to the reference engine
    for those).  Firing counts, cycle counts, pressure statistics, the
    sanitizer, and the fractional-permission certificate are all still
    live. *)

(** A graph compiled to flat instruction arrays.  Compile once, run
    many times. *)
type code

val compile_graph : Dfg.Graph.t -> code

val graph : code -> Dfg.Graph.t
val instructions : code -> int

(** Operand slots in one per-context frame (the sum of matching
    arities; merges take no slots — they never rendezvous). *)
val frame_slots : code -> int

type result = {
  memory : Imp.Memory.t;
  cycles : int;
  firings : int;
  memory_ops : int;
  dummy_deliveries : int;
  value_deliveries : int;
  peak_parallelism : int;
  completed : bool;
  leftover_tokens : int;
  peak_frames : int;  (** most simultaneously live context frames *)
  peak_in_flight : int;
  firings_by_kind : (string * int) list;
  throttled : int;  (** deliveries postponed by the frame-store bound *)
  spilled : int;  (** over-capacity admissions breaking stagnation *)
  per_pe_firings : int array;
  per_pe_busy : int array;
  local_deliveries : int;
  net_messages : int;
  diagnosis : Diagnosis.t;
}

(** [run_report ~layout code] executes compiled [code].

    Single-PE mode (no [multiproc]): honours [config.pes],
    [config.memory_ports], the scheduling policy, and interprets
    [config.max_matching] as a bound on simultaneously live context
    frames — at capacity, deliveries needing a new frame are throttled
    to the next cycle (with the same stagnation-spill escape as the
    reference engine) and reported as {!Diagnosis.pressure}, never a
    crash.

    Multiprocessor mode ([multiproc = Some (placement, issue_width,
    hop)]): instructions are partitioned by the placement's assignment,
    each PE issues at most [issue_width] firings per cycle, and a token
    crossing PEs is charged [hop] extra cycles and counted in
    [net_messages].  This is the idealised interconnect (no finite
    queues or memory homes); the reference {!Multiproc} remains the
    detailed model.

    [sanitize] (default true) runs the token-conservation sanitizer.
    [on_fire cycle node ctx ~pe] observes every firing.  The
    permission certificate is checked whenever the graph carries one.

    Returns [Error diagnosis] on collision, double write, or
    divergence, like the reference engine's report. *)
val run_report :
  ?config:Config.t ->
  ?multiproc:Placement.t * int * int ->
  ?sanitize:bool ->
  ?on_fire:(int -> int -> Context.t -> pe:int -> unit) ->
  layout:Imp.Layout.t ->
  code ->
  (result, Diagnosis.t) Stdlib.result
