(** Dynamic fractional-permission certificates (see the interface). *)

(* Exact rationals on native ints, normalized (den > 0, gcd = 1).  The
   fractions a run manipulates come from repeated halving/fan-out and
   rejoining, so denominators stay tiny; the [guard] bound turns a
   pathological blow-up into an explicit certificate failure instead of
   silent wrap-around. *)
module Frac = struct
  type t = { num : int; den : int }

  exception Overflow

  let guard = 1 lsl 40

  let rec gcd a b = if b = 0 then a else gcd b (a mod b)

  let mk num den =
    if den = 0 then invalid_arg "Frac.mk: zero denominator";
    let s = if den < 0 then -1 else 1 in
    let num = s * num and den = s * den in
    if num = 0 then { num = 0; den = 1 }
    else begin
      let g = gcd (abs num) den in
      let num = num / g and den = den / g in
      if abs num > guard || den > guard then raise Overflow;
      { num; den }
    end

  let zero = { num = 0; den = 1 }
  let one = { num = 1; den = 1 }
  let is_zero f = f.num = 0
  let is_one f = f.num = 1 && f.den = 1
  let positive f = f.num > 0
  let add a b = mk ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
  let div_int a k = mk a.num (a.den * k)

  (* a > 1? *)
  let gt_one a = a.num > a.den

  let to_string f =
    if f.den = 1 then string_of_int f.num else Fmt.str "%d/%d" f.num f.den
end

type frac = Frac.t

(* A permission bag: element index -> positive fraction, sorted by
   element, zero entries absent.  Bags ride token payloads; almost all
   tokens carry a singleton bag or none, so an assoc list wins over any
   heavier structure. *)
type bag = (int * frac) list

let empty_bag : bag = []

let join (a : bag) (b : bag) : bag =
  let rec go a b =
    match (a, b) with
    | [], r | r, [] -> r
    | (e1, f1) :: t1, (e2, f2) :: t2 ->
        if e1 < e2 then (e1, f1) :: go t1 b
        else if e2 < e1 then (e2, f2) :: go a t2
        else
          let f = Frac.add f1 f2 in
          if Frac.is_zero f then go t1 t2 else (e1, f) :: go t1 t2
  in
  go a b

let join_all (bags : bag list) : bag = List.fold_left join empty_bag bags

let find (b : bag) (e : int) : frac =
  match List.assoc_opt e b with Some f -> f | None -> Frac.zero

let bag_to_string (names : string array) (b : bag) : string =
  if b = [] then "{}"
  else
    Fmt.str "{%s}"
      (String.concat ", "
         (List.map
            (fun (e, f) -> Fmt.str "%s:%s" names.(e) (Frac.to_string f))
            b))

type violation =
  | Missing of {
      p_node : int;
      p_label : string;
      p_ctx : Context.t;
      p_elem : string;
      p_need : string;  (** "all of it" for stores, "a fraction" for loads *)
      p_held : string;
    }
  | Lost of { p_node : int; p_label : string; p_elem : string; p_frac : string }
  | Unretired of { p_elem : string; p_retired : string }

let violation_to_string = function
  | Missing { p_node; p_label; p_ctx; p_elem; p_need; p_held } ->
      Fmt.str
        "permission violation: %s (node %d) at ctx %s needs %s of %s, holds %s"
        p_label p_node (Context.to_string p_ctx) p_need p_elem p_held
  | Lost { p_node; p_label; p_elem; p_frac } ->
      Fmt.str "permission lost: %s of %s destroyed at %s (node %d)" p_frac
        p_elem p_label p_node
  | Unretired { p_elem; p_retired } ->
      Fmt.str "certificate incomplete: %s retired %s of 1 at quiescence" p_elem
        p_retired

let pp_violation ppf v = Fmt.string ppf (violation_to_string v)

type t = {
  graph : Dfg.Graph.t;
  cert : Dfg.Graph.cert;
  mutable retired : frac array;  (** per element, accumulated at End *)
  mutable violations : violation list;  (** reverse order *)
  mutable checks : int;  (** memory-op ownership assertions performed *)
}

let create (graph : Dfg.Graph.t) (cert : Dfg.Graph.cert) : t =
  {
    graph;
    cert;
    retired = Array.make (Array.length cert.Dfg.Graph.cert_elements) Frac.zero;
    violations = [];
    checks = 0;
  }

let elements (t : t) = Array.length t.cert.Dfg.Graph.cert_elements
let checks (t : t) = t.checks
let violations (t : t) = List.rev t.violations
let record (t : t) (v : violation) = t.violations <- v :: t.violations

(** The initial bag: full permission for every element, held by the
    Start firing. *)
let mint (t : t) : bag =
  List.init (elements t) (fun e -> (e, Frac.one))

(* The ownership assertion of one firing: join the consumed bags and,
   for memory operations, check the certificate's requirement — a store
   must own each required element outright, a load must hold a positive
   fraction of it (and never more than the whole). *)
let on_fire (t : t) ~(node : int) ~(ctx : Context.t) (bags : bag list) :
    bag * violation list =
  let held = try join_all bags with Frac.Overflow -> [] in
  let names = t.cert.Dfg.Graph.cert_elements in
  let fresh = ref [] in
  (match t.cert.Dfg.Graph.cert_require.(node) with
  | [] -> ()
  | required ->
      let label = (Dfg.Graph.node t.graph node).Dfg.Node.label in
      let is_store =
        match Dfg.Graph.kind t.graph node with
        | Dfg.Node.Store _ -> true
        | _ -> false
      in
      List.iter
        (fun e ->
          t.checks <- t.checks + 1;
          let h = find held e in
          let ok =
            if is_store then Frac.is_one h
            else Frac.positive h && not (Frac.gt_one h)
          in
          if not ok then
            fresh :=
              Missing
                {
                  p_node = node;
                  p_label = label;
                  p_ctx = ctx;
                  p_elem = names.(e);
                  p_need = (if is_store then "all" else "a fraction");
                  p_held = Frac.to_string h;
                }
              :: !fresh)
        required);
  let fresh = List.rev !fresh in
  List.iter (record t) fresh;
  (held, fresh)

(* Distribute the firing's held bag over its actual emissions:
   [labels.(i)] is the token-label set of delivery [i]; each element's
   fraction splits equally over the deliveries labelled with it.  At
   [End] the whole bag retires instead.  Any positive fraction with no
   labelled delivery (and no End) has been destroyed — a Lost
   violation. *)
let split (t : t) ~(node : int) ~(held : bag) (labels : int list array) :
    bag array * violation list =
  let n = Array.length labels in
  let out = Array.make n empty_bag in
  if held = [] then (out, [])
  else begin
    let is_end =
      match Dfg.Graph.kind t.graph node with
      | Dfg.Node.End _ -> true
      | _ -> false
    in
    let fresh = ref [] in
    List.iter
      (fun (e, f) ->
        let takers = ref 0 in
        Array.iter (fun ls -> if List.mem e ls then incr takers) labels;
        if !takers > 0 then begin
          let share =
            try Frac.div_int f !takers with Frac.Overflow -> Frac.zero
          in
          if not (Frac.is_zero share) then
            Array.iteri
              (fun i ls ->
                if List.mem e ls then out.(i) <- join out.(i) [ (e, share) ])
              labels
        end
        else if is_end then
          t.retired.(e) <- (try Frac.add t.retired.(e) f with Frac.Overflow -> t.retired.(e))
        else
          fresh :=
            Lost
              {
                p_node = node;
                p_label = (Dfg.Graph.node t.graph node).Dfg.Node.label;
                p_elem = t.cert.Dfg.Graph.cert_elements.(e);
                p_frac = Frac.to_string f;
              }
            :: !fresh)
      held;
    let fresh = List.rev !fresh in
    List.iter (record t) fresh;
    (out, fresh)
  end

(* The global account, checkable only once the machine is quiet: every
   element's permission must have retired in full at End — exactly 1.
   Undershoot means permission was dropped or is stuck in a matching
   store (a collision overwrite, a leak); overshoot means it was
   duplicated somewhere along the way. *)
let at_quiescence (t : t) : violation list =
  let vs = ref [] in
  Array.iteri
    (fun e r ->
      if not (Frac.is_one r) then
        vs :=
          Unretired
            {
              p_elem = t.cert.Dfg.Graph.cert_elements.(e);
              p_retired = Frac.to_string r;
            }
          :: !vs)
    t.retired;
  let vs = List.rev !vs in
  List.iter (record t) vs;
  vs

(* Checkpoint support: certificate memory must roll back with the
   machine so replayed firings re-earn (not double-count) their
   permissions. *)
type snap = {
  sn_retired : frac array;
  sn_violations : violation list;
  sn_checks : int;
}

let snapshot (t : t) : snap =
  {
    sn_retired = Array.copy t.retired;
    sn_violations = t.violations;
    sn_checks = t.checks;
  }

let restore (t : t) (s : snap) : unit =
  t.retired <- Array.copy s.sn_retired;
  t.violations <- s.sn_violations;
  t.checks <- s.sn_checks
