(** Dynamic fractional-permission certificates: per-run translation
    validation in the WaveCert style.

    A translated graph circulates access tokens to serialise memory
    operations; the {e certificate} checks, during execution, that the
    circulation actually enforces the paper's cover discipline.  Each
    cover element starts as one unit of permission, minted by the Start
    firing.  Permission rides token payloads: fan-out splits an
    element's fraction equally over the arcs labelled with it
    ({!Dfg.Graph.arc.tokens}), synchs and merges rejoin the pieces, and
    every memory operation asserts ownership against the {e true} access
    sets recorded in {!Dfg.Graph.cert} — a store must own its elements
    outright (fraction exactly 1), a read must hold a positive fraction.
    At End the permissions retire; quiescence checks each element
    retired exactly 1.

    Because the requirement metadata comes from the alias/cover analysis
    and not from the graph's own token wiring, a mistranslated graph
    cannot vouch for itself: Schema 2 without loop control lets a
    colliding token overwrite another's payload, destroying permission
    that the quiescence account then finds missing; a deliberately
    truncated access set reaches its store without the aliased element's
    permission and fails the ownership assertion outright.

    This subsumes token conservation: the sanitizer counts tokens, the
    certificate tracks {e which right} each token carries.  Certificate
    state snapshots and restores with recovery epochs, so replayed
    firings re-earn their permissions instead of double-counting. *)

(** Exact rationals (normalized, native ints).  A pathological
    denominator blow-up raises {!Frac.Overflow} internally and is
    absorbed as a certificate failure, never silent wrap-around. *)
module Frac : sig
  type t

  exception Overflow

  val zero : t
  val one : t
  val is_zero : t -> bool
  val is_one : t -> bool
  val positive : t -> bool
  val add : t -> t -> t
  val div_int : t -> int -> t
  val to_string : t -> string
end

type frac = Frac.t

type bag = (int * frac) list
(** element index -> positive fraction; sorted, no zeros.  The payload
    a token carries. *)

val empty_bag : bag
val join : bag -> bag -> bag
val join_all : bag list -> bag
val bag_to_string : string array -> bag -> string

type violation =
  | Missing of {
      p_node : int;
      p_label : string;
      p_ctx : Context.t;
      p_elem : string;
      p_need : string;
      p_held : string;
    }  (** a memory operation fired without the required permission *)
  | Lost of { p_node : int; p_label : string; p_elem : string; p_frac : string }
      (** positive permission reached a firing with no labelled outgoing
          delivery to carry it (and the node is not End) *)
  | Unretired of { p_elem : string; p_retired : string }
      (** at quiescence the element's retired total differs from 1:
          permission was destroyed (< 1) or duplicated (> 1) *)

val violation_to_string : violation -> string
val pp_violation : Format.formatter -> violation -> unit

type t

val create : Dfg.Graph.t -> Dfg.Graph.cert -> t
val elements : t -> int
val checks : t -> int

(** All violations recorded so far, in detection order. *)
val violations : t -> violation list

(** The Start firing's bag: full permission for every element. *)
val mint : t -> bag

(** [on_fire t ~node ~ctx bags] — join the consumed input bags and
    assert the certificate requirement if [node] is a memory operation.
    Returns the held bag and any fresh violations (also recorded). *)
val on_fire :
  t -> node:int -> ctx:Context.t -> bag list -> bag * violation list

(** [split t ~node ~held labels] — distribute [held] over the firing's
    actual deliveries: delivery [i] carries [labels.(i)]; each element
    splits equally over the deliveries labelled with it.  At End the
    bag retires instead.  Returns per-delivery bags and fresh Lost
    violations (also recorded). *)
val split :
  t -> node:int -> held:bag -> int list array -> bag array * violation list

(** The quiescence account: every element retired exactly 1.  Records
    and returns the discrepancies. *)
val at_quiescence : t -> violation list

(** {1 Checkpoint support} *)

type snap

val snapshot : t -> snap
val restore : t -> snap -> unit
