(** Static node-to-PE placement policies (see the interface). *)

type policy = Hash | Round_robin | Affinity | Hier

let policy_to_string = function
  | Hash -> "hash"
  | Round_robin -> "round-robin"
  | Affinity -> "affinity"
  | Hier -> "hier"

let policy_of_string = function
  | "hash" -> Ok Hash
  | "rr" | "round-robin" | "roundrobin" -> Ok Round_robin
  | "affinity" -> Ok Affinity
  | "hier" | "hierarchical" -> Ok Hier
  | s ->
      Error
        (Fmt.str "unknown placement policy %S (hash | rr | affinity | hier)"
           s)

let all_policies = [ Hash; Round_robin; Affinity; Hier ]

type t = {
  pes : int;
  policy : policy;
  assign : int array;
}

let pe_of t n = t.assign.(n)

(* Knuth multiplicative hash of the node id: the ETS-style frame hash —
   uniform, structure-blind.  The PE index comes from the HIGH bits of
   the 32-bit product (fixed-point multiply by p); the low bits are
   useless here because 0x9E3779B1 = 1 (mod 16), which would make
   [product mod p] the identity for every power-of-two p up to 16. *)
let hash_pe p n = ((n * 0x9E3779B1 land 0xFFFFFFFF) * p) lsr 32

(* Affinity clustering lives in Sched.Cluster (shared with the
   hierarchical placer); the roots are bit-identical to the seed's
   in-module union-find. *)
let affinity_roots = Sched.Cluster.roots

let default_topo pes = Sched.Topology.make Sched.Topology.Uniform ~pes

let compute ?(tree = []) ?topo policy ~pes (g : Dfg.Graph.t) : t =
  let n = Dfg.Graph.num_nodes g in
  let p = max 1 pes in
  let assign = Array.make n 0 in
  (match policy with
  | Hash -> Array.iteri (fun i _ -> assign.(i) <- hash_pe p i) assign
  | Round_robin -> Array.iteri (fun i _ -> assign.(i) <- i mod p) assign
  | Affinity ->
      let roots = affinity_roots g in
      (* bin-pack largest-first onto the least-loaded PE; ties break on
         the lower root / lower PE index so the placement is a pure
         function of the graph *)
      let clusters = Sched.Cluster.sizes roots in
      let load = Array.make p 0 in
      let cluster_pe : (int, int) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (r, s) ->
          let best = ref 0 in
          for pe = 1 to p - 1 do
            if load.(pe) < load.(!best) then best := pe
          done;
          Hashtbl.replace cluster_pe r !best;
          load.(!best) <- load.(!best) + s)
        clusters;
      Array.iteri
        (fun i r -> assign.(i) <- Hashtbl.find cluster_pe r)
        roots
  | Hier ->
      let topo = match topo with Some t -> t | None -> default_topo p in
      let h = Sched.Hplace.compute ~tree ~topo ~pes:p g in
      Array.blit h.Sched.Hplace.assign 0 assign 0 n);
  { pes = p; policy; assign }

let hier_stats ?(tree = []) ?topo ~pes (g : Dfg.Graph.t) =
  let p = max 1 pes in
  let topo = match topo with Some t -> t | None -> default_topo p in
  (Sched.Hplace.compute ~tree ~topo ~pes:p g).Sched.Hplace.stats

type stats = {
  cut_arcs : int;
  total_arcs : int;
  cut_fraction : float;
  per_pe_nodes : int array;
  balance : float;
}

let stats (g : Dfg.Graph.t) (t : t) : stats =
  let cut = ref 0 in
  Array.iter
    (fun (a : Dfg.Graph.arc) ->
      if
        t.assign.(a.Dfg.Graph.src.Dfg.Graph.node)
        <> t.assign.(a.Dfg.Graph.dst.Dfg.Graph.node)
      then incr cut)
    g.Dfg.Graph.arcs;
  let total = Dfg.Graph.num_arcs g in
  let per_pe = Array.make t.pes 0 in
  Array.iter (fun pe -> per_pe.(pe) <- per_pe.(pe) + 1) t.assign;
  let n = Dfg.Graph.num_nodes g in
  let ideal = float_of_int n /. float_of_int t.pes in
  {
    cut_arcs = !cut;
    total_arcs = total;
    cut_fraction =
      (if total = 0 then 0.0 else float_of_int !cut /. float_of_int total);
    per_pe_nodes = per_pe;
    balance =
      (if n = 0 then 1.0
       else float_of_int (Array.fold_left max 0 per_pe) /. ideal);
  }

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "cut %d/%d arcs (%.1f%%), balance %.2f, nodes per PE [%a]"
    s.cut_arcs s.total_arcs (100.0 *. s.cut_fraction) s.balance
    Fmt.(array ~sep:(any " ") int)
    s.per_pe_nodes
