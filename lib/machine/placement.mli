(** Static placement of dataflow-graph nodes onto processing elements.

    A multiprocessor run fixes one [t] up front: every node lives on
    exactly one PE, tokens between co-resident nodes bypass the network,
    and every arc whose endpoints live on different PEs is a {e cut}
    arc paid for in interconnect traffic.  Three policies:

    - {!Hash} — an ETS-style node-id hash, the Monsoon baseline: spread
      work uniformly, ignore structure entirely;
    - {!Round_robin} — node id modulo [p]: adjacent ids (which the
      translation schemas allocate roughly per statement) often land on
      different PEs, a deliberately communication-hostile strawman;
    - {!Affinity} — cluster each variable's access-token chain (all
      memory operations on one variable plus the switches/merges gating
      its token) and each statement's expression tree, then bin-pack
      clusters largest-first onto the least-loaded PE: minimise cut
      arcs while keeping the load balanced;
    - {!Hier} — hierarchical: carve the PE space into contiguous
      sub-grids, one per top-level loop region (sized by node count),
      then bin-pack each region's affinity clusters into its own
      sub-grid ({!Sched.Hplace}).  With no loop tree available the
      placement degrades to flat affinity packing.

    All policies are deterministic functions of the graph, so placements
    are reproducible and cut/balance statistics are static quantities
    comparable across policies without running the machine. *)

type policy = Hash | Round_robin | Affinity | Hier

val policy_to_string : policy -> string

(** Accepts ["hash"], ["rr"]/["round-robin"], ["affinity"], ["hier"]. *)
val policy_of_string : string -> (policy, string) result

val all_policies : policy list

type t = {
  pes : int;
  policy : policy;
  assign : int array;  (** node id -> PE, [0 <= assign.(n) < pes] *)
}

(** The PE a node lives on. *)
val pe_of : t -> int -> int

(** [compute ?tree ?topo policy ~pes g] — deterministic placement of
    [g]'s nodes onto [max 1 pes] PEs.  [tree] is the loop-nesting
    forest [(loop id, parent)] and [topo] the interconnect shape; both
    matter only to {!Hier} (regions and hop statistics) and default to
    no tree / uniform. *)
val compute :
  ?tree:(int * int option) list ->
  ?topo:Sched.Topology.t ->
  policy ->
  pes:int ->
  Dfg.Graph.t ->
  t

(** The hierarchical placer's own per-level report for the latest
    {!Hier} computation on this graph, recomputed on demand. *)
val hier_stats :
  ?tree:(int * int option) list ->
  ?topo:Sched.Topology.t ->
  pes:int ->
  Dfg.Graph.t ->
  Sched.Hplace.level_stats

(** Static placement quality: cut arcs (endpoints on different PEs) and
    load balance (largest PE population relative to the ideal [n/p]). *)
type stats = {
  cut_arcs : int;
  total_arcs : int;
  cut_fraction : float;  (** [cut_arcs / total_arcs], 0 when no arcs *)
  per_pe_nodes : int array;
  balance : float;
      (** [max per_pe_nodes / (nodes / pes)]; 1.0 is perfect balance,
          [pes] is everything on one PE *)
}

val stats : Dfg.Graph.t -> t -> stats
val pp_stats : Format.formatter -> stats -> unit
