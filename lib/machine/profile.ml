(** Machine observability: post-run profiles over the interpreter's
    [on_fire] hook and {!Interp.result}, with exporters.

    A {!t} bundles everything a perf investigation needs: the per-node
    firing histogram, the per-cycle parallelism / token-in-flight /
    matching-store-occupancy curves, the context-overlap summary (how
    many loop iterations genuinely ran at once), and the dynamic
    critical path — the longest dependence chain the machine actually
    executed — next to the static single-iteration critical path from
    {!Dfg.Stats} for comparison.

    Exporters: {!chrome_trace} renders a recorded {!Trace.t} as Chrome
    [trace_event] JSON (open in [chrome://tracing] or Perfetto; one
    track per access-token variable, one per concurrent ALU lane), and
    {!summary_json} emits the compact record the benchmark harness
    aggregates into [BENCH_machine.json]. *)

type node_firings = {
  nf_node : int;
  nf_label : string;
  nf_family : string;
  nf_count : int;
}

type t = {
  cycles : int;
  firings : int;
  avg_parallelism : float;
  peak_parallelism : int;
  parallelism_curve : int array;  (** firings started per cycle *)
  in_flight_curve : int array;
  matching_curve : int array;
  peak_matching : int;
  node_firings : node_firings list;  (** descending firing count *)
  overlap : int array;  (** distinct contexts firing, per cycle *)
  max_overlap : int;
  per_context : (Context.t * int) list;
  dynamic_critical_path : int;
  critical_chain : (int * Context.t) list;
  static_critical_path : int;
  dropped_events : int;
      (** trace-recorder truncation: nonzero means the histogram,
          overlap and per-context views cover only a prefix *)
}

let family (k : Dfg.Node.kind) : string =
  match k with
  | Dfg.Node.Start _ -> "start"
  | Dfg.Node.End _ -> "end"
  | Dfg.Node.Const _ -> "const"
  | Dfg.Node.Binop _ | Dfg.Node.Unop _ -> "alu"
  | Dfg.Node.Id -> "id"
  | Dfg.Node.Sink -> "sink"
  | Dfg.Node.Load _ -> "load"
  | Dfg.Node.Store _ -> "store"
  | Dfg.Node.Switch -> "switch"
  | Dfg.Node.Merge -> "merge"
  | Dfg.Node.Synch _ -> "synch"
  | Dfg.Node.Loop_entry _ -> "loop-entry"
  | Dfg.Node.Loop_exit _ -> "loop-exit"

let make ~(graph : Dfg.Graph.t) ~(trace : Trace.t) (r : Interp.result) : t =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      Hashtbl.replace counts e.Trace.node
        (1 + (try Hashtbl.find counts e.Trace.node with Not_found -> 0)))
    (Trace.events trace);
  let node_firings =
    Hashtbl.fold
      (fun n c acc ->
        let node = Dfg.Graph.node graph n in
        {
          nf_node = n;
          nf_label = node.Dfg.Node.label;
          nf_family = family node.Dfg.Node.kind;
          nf_count = c;
        }
        :: acc)
      counts []
    |> List.sort (fun a b ->
           compare (b.nf_count, a.nf_node) (a.nf_count, b.nf_node))
  in
  let st = Dfg.Stats.of_graph graph in
  {
    cycles = r.Interp.cycles;
    firings = r.Interp.firings;
    avg_parallelism = Interp.avg_parallelism r;
    peak_parallelism = r.Interp.peak_parallelism;
    parallelism_curve = r.Interp.profile;
    in_flight_curve = r.Interp.in_flight_curve;
    matching_curve = r.Interp.matching_curve;
    peak_matching = r.Interp.peak_matching;
    node_firings;
    overlap = Trace.overlap trace;
    max_overlap = Trace.max_context_overlap trace;
    per_context = Trace.per_context trace;
    dynamic_critical_path = r.Interp.critical_path;
    critical_chain = r.Interp.critical_chain;
    static_critical_path = st.Dfg.Stats.critical_path;
    dropped_events = Trace.dropped trace;
  }

(* ---------------------------------------------------------------- *)
(* Chrome trace_event export                                        *)

(* Track assignment: memory operations and per-variable loop gateways
   land on one track per variable (the access-token/alias-class view);
   control operators share a "control" track; everything else (the ALU
   population) is spread greedily over "alu-<i>" lanes so simultaneous
   firings render side by side instead of stacking. *)
let track_of (g : Dfg.Graph.t) (n : int) : [ `Var of string | `Control | `Alu ]
    =
  match Dfg.Graph.kind g n with
  | Dfg.Node.Load { var; _ } | Dfg.Node.Store { var; _ } -> `Var var
  | Dfg.Node.Start _ | Dfg.Node.End _ | Dfg.Node.Switch | Dfg.Node.Merge
  | Dfg.Node.Synch _ | Dfg.Node.Loop_entry _ | Dfg.Node.Loop_exit _ ->
      `Control
  | Dfg.Node.Const _ | Dfg.Node.Binop _ | Dfg.Node.Unop _ | Dfg.Node.Id
  | Dfg.Node.Sink ->
      `Alu

let max_alu_lanes = 32

let chrome_trace ?(config = Config.default) ~(graph : Dfg.Graph.t)
    (trace : Trace.t) : Json.t =
  (* stable cycle order: the recorder stores events in firing order,
     which is already nondecreasing in cycle; sort defensively anyway *)
  let events =
    List.stable_sort
      (fun (a : Trace.event) (b : Trace.event) ->
        compare a.Trace.cycle b.Trace.cycle)
      (Trace.events trace)
  in
  (* tid table: name -> id, in order of first appearance *)
  let tids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let tid_names = ref [] in
  let tid_of name =
    match Hashtbl.find_opt tids name with
    | Some i -> i
    | None ->
        let i = Hashtbl.length tids in
        Hashtbl.add tids name i;
        tid_names := (i, name) :: !tid_names;
        i
  in
  (* greedy ALU lane assignment by lane free-time *)
  let lane_free = Array.make max_alu_lanes 0 in
  let alu_lane ts dur =
    let chosen = ref 0 in
    (try
       for i = 0 to max_alu_lanes - 1 do
         if lane_free.(i) <= ts then begin
           chosen := i;
           raise Exit
         end
       done;
       (* all lanes busy: reuse the one freeing earliest *)
       let best = ref 0 in
       for i = 1 to max_alu_lanes - 1 do
         if lane_free.(i) < lane_free.(!best) then best := i
       done;
       chosen := !best
     with Exit -> ());
    lane_free.(!chosen) <- max lane_free.(!chosen) ts + dur;
    !chosen
  in
  let trace_events =
    List.map
      (fun (e : Trace.event) ->
        let kind = Dfg.Graph.kind graph e.Trace.node in
        let dur = Config.latency config kind in
        let track =
          match track_of graph e.Trace.node with
          | `Var v -> "access " ^ v
          | `Control -> "control"
          | `Alu -> Fmt.str "alu-%d" (alu_lane e.Trace.cycle dur)
        in
        Json.Assoc
          [
            ("name", Json.String e.Trace.label);
            ("cat", Json.String (family kind));
            ("ph", Json.String "X");
            ("ts", Json.Int e.Trace.cycle);
            ("dur", Json.Int dur);
            ("pid", Json.Int 1);
            ("tid", Json.Int (tid_of track));
            ( "args",
              Json.Assoc
                [
                  ("node", Json.Int e.Trace.node);
                  ("ctx", Json.String (Context.to_string e.Trace.ctx));
                ] );
          ])
      events
  in
  let metadata =
    List.rev_map
      (fun (i, name) ->
        Json.Assoc
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int i);
            ("args", Json.Assoc [ ("name", Json.String name) ]);
          ])
      !tid_names
  in
  Json.Assoc
    [
      ("traceEvents", Json.List (metadata @ trace_events));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Assoc
          [
            ("generator", Json.String "df_compile profile");
            ("clock", Json.String "machine cycles (1 cycle = 1 us)");
            ("droppedEvents", Json.Int (Trace.dropped trace));
          ] );
    ]

(* Per-PE tracks for a multiprocessor run: one lane per processing
   element, fed by Multiproc's on_fire (cycle, node, ctx, pe).  The
   single-PE exporter groups by operator family; here the interesting
   axis is which PE did the work, so the placement's load balance and
   the network-induced idle gaps are visible at a glance. *)
let chrome_trace_pes ?(config = Config.default) ~(graph : Dfg.Graph.t)
    (events : (int * int * Context.t * int) list) : Json.t =
  let events =
    List.stable_sort (fun (c1, _, _, _) (c2, _, _, _) -> compare c1 c2) events
  in
  let max_pe = List.fold_left (fun m (_, _, _, pe) -> max m pe) 0 events in
  let trace_events =
    List.map
      (fun (cycle, node, ctx, pe) ->
        let kind = Dfg.Graph.kind graph node in
        let label = (Dfg.Graph.node graph node).Dfg.Node.label in
        Json.Assoc
          [
            ("name", Json.String label);
            ("cat", Json.String (family kind));
            ("ph", Json.String "X");
            ("ts", Json.Int cycle);
            ("dur", Json.Int (Config.latency config kind));
            ("pid", Json.Int 1);
            ("tid", Json.Int pe);
            ( "args",
              Json.Assoc
                [
                  ("node", Json.Int node);
                  ("ctx", Json.String (Context.to_string ctx));
                  ("pe", Json.Int pe);
                ] );
          ])
      events
  in
  let metadata =
    List.init (max_pe + 1) (fun pe ->
        Json.Assoc
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int pe);
            ("args", Json.Assoc [ ("name", Json.String (Fmt.str "pe-%d" pe)) ]);
          ])
  in
  Json.Assoc
    [
      ("traceEvents", Json.List (metadata @ trace_events));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Assoc
          [
            ("generator", Json.String "df_compile simulate");
            ("clock", Json.String "machine cycles (1 cycle = 1 us)");
          ] );
    ]

(* ---------------------------------------------------------------- *)
(* summary record                                                   *)

let int_curve a = Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a))

let summary_json (p : t) : Json.t =
  Json.Assoc
    [
      ("cycles", Json.Int p.cycles);
      ("firings", Json.Int p.firings);
      ("avg_parallelism", Json.Float p.avg_parallelism);
      ("peak_parallelism", Json.Int p.peak_parallelism);
      ("peak_matching", Json.Int p.peak_matching);
      ("critical_path_dynamic", Json.Int p.dynamic_critical_path);
      ("critical_path_static", Json.Int p.static_critical_path);
      ("max_context_overlap", Json.Int p.max_overlap);
      ("dropped_events", Json.Int p.dropped_events);
      ("parallelism_curve", int_curve p.parallelism_curve);
      ("in_flight_curve", int_curve p.in_flight_curve);
      ("matching_curve", int_curve p.matching_curve);
      ("overlap_curve", int_curve p.overlap);
      ( "node_firings",
        Json.List
          (List.map
             (fun nf ->
               Json.Assoc
                 [
                   ("node", Json.Int nf.nf_node);
                   ("label", Json.String nf.nf_label);
                   ("family", Json.String nf.nf_family);
                   ("count", Json.Int nf.nf_count);
                 ])
             p.node_firings) );
      ( "critical_chain",
        Json.List
          (List.map
             (fun (n, ctx) ->
               Json.Assoc
                 [
                   ("node", Json.Int n);
                   ("ctx", Json.String (Context.to_string ctx));
                 ])
             p.critical_chain) );
    ]

(* ---------------------------------------------------------------- *)
(* human-readable rendering                                         *)

let sparkline (a : int array) : string =
  let glyphs = [| " "; "."; ":"; "|"; "#" |] in
  let buf = Buffer.create (Array.length a) in
  Array.iter (fun v -> Buffer.add_string buf glyphs.(min 4 (max 0 v))) a;
  Buffer.contents buf

(* Downsample a curve to [w] columns (max over each bucket) so long runs
   still fit a terminal line. *)
let resample (a : int array) (w : int) : int array =
  let n = Array.length a in
  if n <= w then a
  else
    Array.init w (fun i ->
        let lo = i * n / w and hi = ((i + 1) * n / w) - 1 in
        let m = ref 0 in
        for j = lo to max lo hi do
          m := max !m a.(j)
        done;
        !m)

let pp ppf (p : t) =
  Fmt.pf ppf "cycles            %d@." p.cycles;
  Fmt.pf ppf "firings           %d@." p.firings;
  Fmt.pf ppf "avg parallelism   %.2f@." p.avg_parallelism;
  Fmt.pf ppf "peak parallelism  %d@." p.peak_parallelism;
  Fmt.pf ppf "peak matching     %d entries@." p.peak_matching;
  Fmt.pf ppf "critical path     dynamic %d firings, static %d operators@."
    p.dynamic_critical_path p.static_critical_path;
  Fmt.pf ppf "context overlap   max %d simultaneous iteration contexts@."
    p.max_overlap;
  if p.dropped_events > 0 then
    Fmt.pf ppf
      "TRUNCATED         %d events dropped by the recorder; histogram, \
       overlap and context views cover a prefix@."
      p.dropped_events;
  let w = 72 in
  Fmt.pf ppf "parallelism       |%s|@." (sparkline (resample p.parallelism_curve w));
  Fmt.pf ppf "tokens in flight  |%s|@." (sparkline (resample p.in_flight_curve w));
  Fmt.pf ppf "matching store    |%s|@." (sparkline (resample p.matching_curve w));
  Fmt.pf ppf "context overlap   |%s|@." (sparkline (resample p.overlap w));
  Fmt.pf ppf "   (one column ~ %d cycle(s); ' '=0 '.'=1 ':'=2 '|'=3 '#'=4+)@."
    (max 1 ((Array.length p.parallelism_curve + w - 1) / w));
  Fmt.pf ppf "hottest operators:@.";
  List.iteri
    (fun i nf ->
      if i < 12 then
        Fmt.pf ppf "  %6d  %-10s %s (node %d)@." nf.nf_count nf.nf_family
          nf.nf_label nf.nf_node)
    p.node_firings;
  Fmt.pf ppf "critical chain (%d firings):@." (List.length p.critical_chain);
  let chain = p.critical_chain in
  let shown = 16 in
  List.iteri
    (fun i (n, ctx) ->
      if i < shown then
        Fmt.pf ppf "  node %d%s@." n
          (if Context.depth ctx = 0 then "" else " " ^ Context.to_string ctx))
    chain;
  if List.length chain > shown then
    Fmt.pf ppf "  ... (%d more)@." (List.length chain - shown)

(* ---------------------------------------------------------------- *)
(* benchmark records (shared by bench/main.ml and the tests)        *)

let bench_schema_version = 8

type mp_cell = {
  mp_pes : int;
  mp_placement : string;
  mp_cycles : int;
  mp_net_messages : int;
  mp_cut_traffic : float;
  mp_backpressure : int;
  mp_avg_utilisation : float;
  mp_determinate : bool;
}

let mp_cell_json (c : mp_cell) : Json.t =
  Json.Assoc
    [
      ("pes", Json.Int c.mp_pes);
      ("placement", Json.String c.mp_placement);
      ("cycles", Json.Int c.mp_cycles);
      ("net_messages", Json.Int c.mp_net_messages);
      ("cut_traffic", Json.Float c.mp_cut_traffic);
      ("backpressure", Json.Int c.mp_backpressure);
      ("avg_utilisation", Json.Float c.mp_avg_utilisation);
      ("determinate", Json.Bool c.mp_determinate);
    ]

type recovery_cell = {
  rc_pes : int;
  rc_placement : string;
  rc_interval : int;
  rc_cycles : int;
  rc_baseline_cycles : int;
  rc_overhead : float;
  rc_deaths : int;
  rc_rollbacks : int;
  rc_checkpoints : int;
  rc_lost_cycles : int;
  rc_replayed_firings : int;
  rc_retransmits : int;
  rc_recovered : bool;
}

let recovery_cell_json (c : recovery_cell) : Json.t =
  Json.Assoc
    [
      ("pes", Json.Int c.rc_pes);
      ("placement", Json.String c.rc_placement);
      ("checkpoint_interval", Json.Int c.rc_interval);
      ("cycles", Json.Int c.rc_cycles);
      ("baseline_cycles", Json.Int c.rc_baseline_cycles);
      ("overhead", Json.Float c.rc_overhead);
      ("deaths", Json.Int c.rc_deaths);
      ("rollbacks", Json.Int c.rc_rollbacks);
      ("checkpoints", Json.Int c.rc_checkpoints);
      ("lost_cycles", Json.Int c.rc_lost_cycles);
      ("replayed_firings", Json.Int c.rc_replayed_firings);
      ("retransmits", Json.Int c.rc_retransmits);
      ("recovered", Json.Bool c.rc_recovered);
    ]

type certificate_cell = {
  cc_pes : int;
  cc_elements : int;
  cc_checks : int;
  cc_cycles : int;
  cc_stripped_cycles : int;
  cc_overhead : float;
  cc_clean : bool;
}

let certificate_cell_json (c : certificate_cell) : Json.t =
  Json.Assoc
    [
      ("pes", Json.Int c.cc_pes);
      ("elements", Json.Int c.cc_elements);
      ("ownership_checks", Json.Int c.cc_checks);
      ("cycles", Json.Int c.cc_cycles);
      ("stripped_cycles", Json.Int c.cc_stripped_cycles);
      ("overhead", Json.Float c.cc_overhead);
      ("certified_clean", Json.Bool c.cc_clean);
    ]

type throughput_cell = {
  tp_engine : string;
  tp_firings : int;
  tp_runs : int;
  tp_seconds : float;
  tp_firings_per_sec : float;
  tp_speedup : float;
  tp_identical : bool;
}

let throughput_cell_json (c : throughput_cell) : Json.t =
  Json.Assoc
    [
      ("engine", Json.String c.tp_engine);
      ("firings", Json.Int c.tp_firings);
      ("runs", Json.Int c.tp_runs);
      ("seconds_per_run", Json.Float c.tp_seconds);
      ("firings_per_sec", Json.Float c.tp_firings_per_sec);
      ("speedup", Json.Float c.tp_speedup);
      ("identical_store", Json.Bool c.tp_identical);
    ]

let bench_record ~(program : string) ~(schema : string) ~(status : string)
    ?(stats : Dfg.Stats.t option) ?(result : Interp.result option)
    ?(reference_ok : bool option) ?(max_overlap : int option)
    ?(multiproc : mp_cell list option)
    ?(recovery : recovery_cell list option)
    ?(certificate : certificate_cell list option)
    ?(throughput : throughput_cell list option) () : Json.t =
  let base =
    [
      ("program", Json.String program);
      ("schema", Json.String schema);
      ("status", Json.String status);
    ]
  in
  let static =
    match stats with
    | None -> []
    | Some st ->
        [
          ("nodes", Json.Int st.Dfg.Stats.nodes);
          ("arcs", Json.Int st.Dfg.Stats.arcs);
          ("switches", Json.Int st.Dfg.Stats.switches);
          ("merges", Json.Int st.Dfg.Stats.merges);
          ("critical_path_static", Json.Int st.Dfg.Stats.critical_path);
        ]
  in
  let dynamic =
    match result with
    | None -> []
    | Some r ->
        [
          ("cycles", Json.Int r.Interp.cycles);
          ("firings", Json.Int r.Interp.firings);
          ("memory_ops", Json.Int r.Interp.memory_ops);
          ("avg_parallelism", Json.Float (Interp.avg_parallelism r));
          ("peak_parallelism", Json.Int r.Interp.peak_parallelism);
          ("peak_matching", Json.Int r.Interp.peak_matching);
          ("critical_path_dynamic", Json.Int r.Interp.critical_path);
          ("switch_firings", Json.Int
             (try List.assoc "switch" r.Interp.firings_by_kind
              with Not_found -> 0));
        ]
  in
  let extra =
    (match max_overlap with
    | Some m -> [ ("max_context_overlap", Json.Int m) ]
    | None -> [])
    @ (match reference_ok with
      | Some b -> [ ("reference_ok", Json.Bool b) ]
      | None -> [])
    @ (match multiproc with
      | Some cells -> [ ("multiproc", Json.List (List.map mp_cell_json cells)) ]
      | None -> [])
    @ (match recovery with
      | Some cells ->
          [ ("recovery", Json.List (List.map recovery_cell_json cells)) ]
      | None -> [])
    @ (match certificate with
      | Some cells ->
          [ ("certificate", Json.List (List.map certificate_cell_json cells)) ]
      | None -> [])
    @
    match throughput with
    | Some cells ->
        [ ("throughput", Json.List (List.map throughput_cell_json cells)) ]
    | None -> []
  in
  Json.Assoc (base @ static @ dynamic @ extra)

(* One timed point of the batch-service sweep: the oracle grid pushed
   through [df_compile serve] at a given domain count. *)
type service_cell = {
  sv_jobs : int;
  sv_batch : int;  (** jobs in the batch *)
  sv_seconds : float;
  sv_jobs_per_sec : float;
  sv_speedup : float;  (** vs the [jobs = 1] cell (1.0 there) *)
}

let service_cell_json (c : service_cell) : Json.t =
  Json.Assoc
    [
      ("jobs", Json.Int c.sv_jobs);
      ("batch", Json.Int c.sv_batch);
      ("seconds", Json.Float c.sv_seconds);
      ("jobs_per_sec", Json.Float c.sv_jobs_per_sec);
      ("speedup", Json.Float c.sv_speedup);
    ]

(* One point of the availability sweep (E27): a batch pushed through the
   supervised shard service at one chaos rate.  Every field is a count
   of deterministic outcomes (the chaos plan is a pure hash of the seed
   and submission order), so the cells carry no timings and are
   bit-stable across runs and machines. *)
type availability_cell = {
  av_chaos_rate : float;
  av_shards : int;
  av_deadline_ms : int;
  av_jobs : int;
  av_ok : int;
  av_shard_crash : int;
  av_deadline : int;
  av_overloaded : int;
  av_restarts : int;
  av_divergences : int;
      (** successful results that differ from the serial stdin path —
          must be 0, enforced by validation *)
  av_success_rate : float;
}

let availability_cell_json (c : availability_cell) : Json.t =
  Json.Assoc
    [
      ("chaos_rate", Json.Float c.av_chaos_rate);
      ("shards", Json.Int c.av_shards);
      ("deadline_ms", Json.Int c.av_deadline_ms);
      ("jobs", Json.Int c.av_jobs);
      ("ok", Json.Int c.av_ok);
      ("shard_crash", Json.Int c.av_shard_crash);
      ("deadline", Json.Int c.av_deadline);
      ("overloaded", Json.Int c.av_overloaded);
      ("restarts", Json.Int c.av_restarts);
      ("divergences", Json.Int c.av_divergences);
      ("success_rate", Json.Float c.av_success_rate);
    ]

(* One point of the scaling sweep (E26): a topology x placement x
   stealing configuration of one compiled program at one PE count. *)
type scale_cell = {
  sc_pes : int;
  sc_net : string;  (** "uniform" | "mesh" | "torus" | "cube" *)
  sc_placement : string;
  sc_steal : bool;
  sc_cycles : int;
  sc_firings : int;
  sc_fpc : float;  (** firings per cycle, the throughput figure *)
  sc_speedup : float;  (** vs the p=1 cell of the same configuration *)
  sc_net_messages : int;
  sc_net_hops : int;  (** link traversals: messages weighted by distance *)
  sc_steals : int;
  sc_determinate : bool;
}

let scale_cell_json (c : scale_cell) : Json.t =
  Json.Assoc
    [
      ("pes", Json.Int c.sc_pes);
      ("net", Json.String c.sc_net);
      ("placement", Json.String c.sc_placement);
      ("steal", Json.Bool c.sc_steal);
      ("cycles", Json.Int c.sc_cycles);
      ("firings", Json.Int c.sc_firings);
      ("firings_per_cycle", Json.Float c.sc_fpc);
      ("speedup", Json.Float c.sc_speedup);
      ("net_messages", Json.Int c.sc_net_messages);
      ("net_hops", Json.Int c.sc_net_hops);
      ("steals", Json.Int c.sc_steals);
      ("determinate", Json.Bool c.sc_determinate);
    ]

let bench_file ?(summary : (string * Json.t) list option)
    ?(service : (string * Json.t) list option)
    ?(scale : (string * Json.t) list option) ~(records : Json.t list) () :
    Json.t =
  Json.Assoc
    ([
       ( "meta",
         Json.Assoc
           [
             ("schema_version", Json.Int bench_schema_version);
             ("generator", Json.String "bench/main.exe --json");
             ("unit", Json.String "machine cycles");
           ] );
     ]
    @ (match summary with
      | Some s -> [ ("multiproc_summary", Json.Assoc s) ]
      | None -> [])
    @ (match service with
      | Some s -> [ ("service", Json.Assoc s) ]
      | None -> [])
    @ (match scale with
      | Some s -> [ ("scale", Json.Assoc s) ]
      | None -> [])
    @ [ ("records", Json.List records) ])

(* Schema validation for the whole BENCH document: used by the harness
   before writing (fail fast) and by the test layer on the committed
   artifact. *)
let validate_bench (j : Json.t) : (unit, string) result =
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  let req what o = match o with Some v -> Ok v | None -> Error what in
  let* meta = req "missing meta" (Json.member "meta" j) in
  let* version =
    req "meta.schema_version not an int"
      (Option.bind (Json.member "schema_version" meta) Json.to_int_opt)
  in
  let* () =
    if version = bench_schema_version then Ok ()
    else Error (Fmt.str "schema_version %d (expected %d)" version
                  bench_schema_version)
  in
  let* records =
    req "records not a list"
      (Option.bind (Json.member "records" j) Json.to_list_opt)
  in
  let* () = if records = [] then Error "no records" else Ok () in
  (* the multiproc summary scalars are optional (a matrix-less run emits
     none) but when present they must be well-typed and the determinacy
     bit must hold — a divergent matrix is a validation failure *)
  let* () =
    match Json.member "multiproc_summary" j with
    | None -> Ok ()
    | Some s ->
        let* _ =
          req "multiproc_summary.speedup_p8 not a number"
            (Option.bind (Json.member "speedup_p8" s) Json.to_float_opt)
        in
        let* _ =
          req "multiproc_summary.cut_traffic_ratio not a number"
            (Option.bind (Json.member "cut_traffic_ratio" s) Json.to_float_opt)
        in
        let* det =
          req "multiproc_summary.multiproc_determinate not a bool"
            (Option.bind
               (Json.member "multiproc_determinate" s)
               Json.to_bool_opt)
        in
        if det then Ok ()
        else Error "multiproc_summary: determinacy divergence in the matrix"
  in
  (* the batch-service section is optional (a matrix-less run emits
     none) but when present the cells must be well-typed, the cache
     counters consistent, and the byte-determinism bit must hold — a
     batch whose output depends on the jobs setting is a validation
     failure *)
  let* () =
    match Json.member "service" j with
    | None -> Ok ()
    | Some s ->
        let int key = Option.bind (Json.member key s) Json.to_int_opt in
        let need_nonneg key =
          match int key with
          | Some v when v >= 0 -> Ok ()
          | Some _ -> Error (Fmt.str "service: negative %s" key)
          | None -> Error (Fmt.str "service: missing int %s" key)
        in
        let* () = need_nonneg "cache_hits" in
        let* () = need_nonneg "cache_misses" in
        let* () = need_nonneg "cache_evictions" in
        let* _ =
          req "service: missing hit_rate"
            (Option.bind (Json.member "hit_rate" s) Json.to_float_opt)
        in
        let* det =
          req "service: missing deterministic"
            (Option.bind (Json.member "deterministic" s) Json.to_bool_opt)
        in
        let* () =
          if det then Ok ()
          else Error "service: batch output depends on the jobs setting"
        in
        let* cells =
          req "service: missing cells"
            (Option.bind (Json.member "cells" s) Json.to_list_opt)
        in
        let* () = if cells = [] then Error "service: no cells" else Ok () in
        let check_cell k c =
          let where what = Fmt.str "service cell %d: %s" k what in
          let int key = Option.bind (Json.member key c) Json.to_int_opt in
          let flt key = Option.bind (Json.member key c) Json.to_float_opt in
          let* jobs = req (where "missing jobs") (int "jobs") in
          let* () = if jobs >= 1 then Ok () else Error (where "jobs < 1") in
          let* batch = req (where "missing batch") (int "batch") in
          let* () = if batch >= 1 then Ok () else Error (where "batch < 1") in
          let* secs = req (where "missing seconds") (flt "seconds") in
          let* () =
            if secs > 0.0 then Ok ()
            else Error (where "non-positive seconds")
          in
          let* rate = req (where "missing jobs_per_sec") (flt "jobs_per_sec") in
          let* () =
            if rate > 0.0 then Ok ()
            else Error (where "non-positive jobs_per_sec")
          in
          let* sp = req (where "missing speedup") (flt "speedup") in
          if sp > 0.0 then Ok () else Error (where "non-positive speedup")
        in
        let rec cells_ok k = function
          | [] -> Ok ()
          | c :: rest ->
              let* () = check_cell k c in
              cells_ok (k + 1) rest
        in
        let* () = cells_ok 0 cells in
        (* the availability sweep (E27) is optional, but when present
           the outcome counts must partition the batch and every
           successful result must have matched the serial stdin path —
           a divergence under chaos is a validation failure *)
        (match Json.member "availability" s with
        | None -> Ok ()
        | Some a ->
            let* av_cells =
              req "availability: missing cells"
                (Option.bind (Json.member "cells" a) Json.to_list_opt)
            in
            let* () =
              if av_cells = [] then Error "availability: no cells" else Ok ()
            in
            let check_av k c =
              let where what = Fmt.str "availability cell %d: %s" k what in
              let int key = Option.bind (Json.member key c) Json.to_int_opt in
              let flt key = Option.bind (Json.member key c) Json.to_float_opt in
              let* rate = req (where "missing chaos_rate") (flt "chaos_rate") in
              let* () =
                if rate >= 0.0 && rate <= 1.0 then Ok ()
                else Error (where "chaos_rate outside [0,1]")
              in
              let* shards = req (where "missing shards") (int "shards") in
              let* () =
                if shards >= 1 then Ok () else Error (where "shards < 1")
              in
              let* jobs = req (where "missing jobs") (int "jobs") in
              let* () = if jobs >= 1 then Ok () else Error (where "jobs < 1") in
              let* ok = req (where "missing ok") (int "ok") in
              let* crash =
                req (where "missing shard_crash") (int "shard_crash")
              in
              let* dead = req (where "missing deadline") (int "deadline") in
              let* over = req (where "missing overloaded") (int "overloaded") in
              let* () =
                if ok + crash + dead + over = jobs then Ok ()
                else Error (where "outcome counts do not partition the batch")
              in
              let* restarts = req (where "missing restarts") (int "restarts") in
              let* () =
                if restarts >= 0 then Ok ()
                else Error (where "negative restarts")
              in
              let* rate' =
                req (where "missing success_rate") (flt "success_rate")
              in
              let* () =
                if Float.abs (rate' -. (float_of_int ok /. float_of_int jobs))
                   < 1e-9
                then Ok ()
                else Error (where "success_rate inconsistent with ok/jobs")
              in
              let* div =
                req (where "missing divergences") (int "divergences")
              in
              if div = 0 then Ok ()
              else
                Error (where "successful results diverged from the serial path")
            in
            let rec avs_ok k = function
              | [] -> Ok ()
              | c :: rest ->
                  let* () = check_av k c in
                  avs_ok (k + 1) rest
            in
            avs_ok 0 av_cells)
  in
  (* the scaling section is optional but when present every cell must be
     well-typed and determinate — a topology or stealing configuration
     that perturbed the store is a validation failure *)
  let* () =
    match Json.member "scale" j with
    | None -> Ok ()
    | Some s ->
        let* _ =
          req "scale: missing program"
            (Option.bind (Json.member "program" s) Json.to_string_opt)
        in
        let* _ =
          req "scale: missing schema"
            (Option.bind (Json.member "schema" s) Json.to_string_opt)
        in
        let* cells =
          req "scale: missing cells"
            (Option.bind (Json.member "cells" s) Json.to_list_opt)
        in
        let* () = if cells = [] then Error "scale: no cells" else Ok () in
        let check_cell k c =
          let where what = Fmt.str "scale cell %d: %s" k what in
          let int key = Option.bind (Json.member key c) Json.to_int_opt in
          let* pes = req (where "missing pes") (int "pes") in
          let* () = if pes >= 1 then Ok () else Error (where "pes < 1") in
          let* _ =
            req (where "missing net")
              (Option.bind (Json.member "net" c) Json.to_string_opt)
          in
          let* _ =
            req (where "missing placement")
              (Option.bind (Json.member "placement" c) Json.to_string_opt)
          in
          let* cyc = req (where "missing cycles") (int "cycles") in
          let* () =
            if cyc >= 0 then Ok () else Error (where "negative cycles")
          in
          let* fpc =
            req (where "missing firings_per_cycle")
              (Option.bind (Json.member "firings_per_cycle" c)
                 Json.to_float_opt)
          in
          let* () =
            if fpc >= 0.0 then Ok ()
            else Error (where "negative firings_per_cycle")
          in
          let* hops = req (where "missing net_hops") (int "net_hops") in
          let* msgs = req (where "missing net_messages") (int "net_messages") in
          let* () =
            if hops >= msgs then Ok ()
            else Error (where "fewer link hops than messages")
          in
          let* det =
            req (where "missing determinate")
              (Option.bind (Json.member "determinate" c) Json.to_bool_opt)
          in
          if det then Ok () else Error (where "determinacy divergence")
        in
        let rec cells_ok k = function
          | [] -> Ok ()
          | c :: rest ->
              let* () = check_cell k c in
              cells_ok (k + 1) rest
        in
        cells_ok 0 cells
  in
  let check_mp_cell i program k c =
    let int key = Option.bind (Json.member key c) Json.to_int_opt in
    let where what =
      Fmt.str "record %d (%s): multiproc cell %d: %s" i program k what
    in
    let* pes = req (where "missing pes") (int "pes") in
    let* () = if pes >= 1 then Ok () else Error (where "pes < 1") in
    let* _ =
      req (where "missing placement")
        (Option.bind (Json.member "placement" c) Json.to_string_opt)
    in
    let* cyc = req (where "missing cycles") (int "cycles") in
    let* () = if cyc >= 0 then Ok () else Error (where "negative cycles") in
    let* det =
      req (where "missing determinate")
        (Option.bind (Json.member "determinate" c) Json.to_bool_opt)
    in
    if det then Ok () else Error (where "determinacy divergence")
  in
  (* recovery cells: well-typed cost accounting and a successful
     recovery — a faulty run that failed to reproduce the reference
     store is a validation failure, same bar as determinacy *)
  let check_recovery_cell i program k c =
    let where what =
      Fmt.str "record %d (%s): recovery cell %d: %s" i program k what
    in
    let int key = Option.bind (Json.member key c) Json.to_int_opt in
    let need_int key =
      match int key with
      | Some v when v >= 0 -> Ok ()
      | Some _ -> Error (where ("negative " ^ key))
      | None -> Error (where ("missing int " ^ key))
    in
    let* pes = req (where "missing pes") (int "pes") in
    let* () = if pes >= 1 then Ok () else Error (where "pes < 1") in
    let* _ =
      req (where "missing placement")
        (Option.bind (Json.member "placement" c) Json.to_string_opt)
    in
    let* iv = req (where "missing checkpoint_interval")
        (int "checkpoint_interval") in
    let* () =
      if iv >= 1 then Ok () else Error (where "checkpoint_interval < 1")
    in
    let* () = need_int "cycles" in
    let* () = need_int "baseline_cycles" in
    let* _ =
      req (where "missing overhead")
        (Option.bind (Json.member "overhead" c) Json.to_float_opt)
    in
    let* () = need_int "deaths" in
    let* () = need_int "rollbacks" in
    let* () = need_int "checkpoints" in
    let* () = need_int "lost_cycles" in
    let* () = need_int "replayed_firings" in
    let* () = need_int "retransmits" in
    let* rec_ok =
      req (where "missing recovered")
        (Option.bind (Json.member "recovered" c) Json.to_bool_opt)
    in
    if rec_ok then Ok () else Error (where "recovery failed")
  in
  (* certificate cells: well-typed accounting and a clean certification
     — a certified run with standing permission violations, or a
     certificate that checked nothing on a run with memory traffic, is a
     validation failure *)
  let check_certificate_cell i program k c =
    let where what =
      Fmt.str "record %d (%s): certificate cell %d: %s" i program k what
    in
    let int key = Option.bind (Json.member key c) Json.to_int_opt in
    let* pes = req (where "missing pes") (int "pes") in
    let* () = if pes >= 1 then Ok () else Error (where "pes < 1") in
    let* elems = req (where "missing elements") (int "elements") in
    let* () = if elems >= 1 then Ok () else Error (where "elements < 1") in
    let* checks = req (where "missing ownership_checks")
        (int "ownership_checks") in
    let* () =
      if checks >= 0 then Ok () else Error (where "negative ownership_checks")
    in
    let* cyc = req (where "missing cycles") (int "cycles") in
    let* () = if cyc >= 0 then Ok () else Error (where "negative cycles") in
    let* stripped = req (where "missing stripped_cycles")
        (int "stripped_cycles") in
    let* () =
      if stripped >= 0 then Ok ()
      else Error (where "negative stripped_cycles")
    in
    let* _ =
      req (where "missing overhead")
        (Option.bind (Json.member "overhead" c) Json.to_float_opt)
    in
    let* clean =
      req (where "missing certified_clean")
        (Option.bind (Json.member "certified_clean" c) Json.to_bool_opt)
    in
    if clean then Ok () else Error (where "certificate violation")
  in
  (* throughput cells: wall-clock engine comparison — an engine whose
     final store diverged from the reference, or a non-positive rate, is
     a validation failure *)
  let check_throughput_cell i program k c =
    let where what =
      Fmt.str "record %d (%s): throughput cell %d: %s" i program k what
    in
    let int key = Option.bind (Json.member key c) Json.to_int_opt in
    let flt key = Option.bind (Json.member key c) Json.to_float_opt in
    let* _ =
      req (where "missing engine")
        (Option.bind (Json.member "engine" c) Json.to_string_opt)
    in
    let* firings = req (where "missing firings") (int "firings") in
    let* () = if firings >= 1 then Ok () else Error (where "firings < 1") in
    let* runs = req (where "missing runs") (int "runs") in
    let* () = if runs >= 1 then Ok () else Error (where "runs < 1") in
    let* secs = req (where "missing seconds_per_run") (flt "seconds_per_run") in
    let* () =
      if secs > 0.0 then Ok ()
      else Error (where "non-positive seconds_per_run")
    in
    let* rate = req (where "missing firings_per_sec") (flt "firings_per_sec") in
    let* () =
      if rate > 0.0 then Ok ()
      else Error (where "non-positive firings_per_sec")
    in
    let* _ = req (where "missing speedup") (flt "speedup") in
    let* same =
      req (where "missing identical_store")
        (Option.bind (Json.member "identical_store" c) Json.to_bool_opt)
    in
    if same then Ok () else Error (where "store divergence between engines")
  in
  let check_record i r =
    let str k = Option.bind (Json.member k r) Json.to_string_opt in
    let int k = Option.bind (Json.member k r) Json.to_int_opt in
    let flt k = Option.bind (Json.member k r) Json.to_float_opt in
    let bool k = Option.bind (Json.member k r) Json.to_bool_opt in
    let* program = req (Fmt.str "record %d: missing program" i) (str "program") in
    let* _ = req (Fmt.str "record %d: missing schema" i) (str "schema") in
    let* status = req (Fmt.str "record %d: missing status" i) (str "status") in
    if status <> "ok" then Ok ()
    else begin
      let need_int k =
        match int k with
        | Some v when v >= 0 -> Ok ()
        | Some _ -> Error (Fmt.str "record %d (%s): negative %s" i program k)
        | None -> Error (Fmt.str "record %d (%s): missing int %s" i program k)
      in
      let* () = need_int "nodes" in
      let* () = need_int "arcs" in
      let* () = need_int "switches" in
      let* () = need_int "merges" in
      let* () = need_int "cycles" in
      let* () = need_int "firings" in
      let* () = need_int "memory_ops" in
      let* () = need_int "peak_parallelism" in
      let* () = need_int "peak_matching" in
      let* () = need_int "critical_path_dynamic" in
      let* () = need_int "critical_path_static" in
      let* () = need_int "max_context_overlap" in
      let* _ =
        req (Fmt.str "record %d (%s): missing avg_parallelism" i program)
          (flt "avg_parallelism")
      in
      let* ref_ok =
        req (Fmt.str "record %d (%s): missing reference_ok" i program)
          (bool "reference_ok")
      in
      let* () =
        if ref_ok then Ok ()
        else Error (Fmt.str "record %d (%s): reference divergence" i program)
      in
      let* () =
        match Json.member "multiproc" r with
        | None -> Ok ()
        | Some mp ->
            let* cells =
              req
                (Fmt.str "record %d (%s): multiproc not a list" i program)
                (Json.to_list_opt mp)
            in
            let rec cells_ok k = function
              | [] -> Ok ()
              | c :: rest ->
                  let* () = check_mp_cell i program k c in
                  cells_ok (k + 1) rest
            in
            cells_ok 0 cells
      in
      let* () =
        match Json.member "recovery" r with
        | None -> Ok ()
        | Some rc ->
            let* cells =
              req
                (Fmt.str "record %d (%s): recovery not a list" i program)
                (Json.to_list_opt rc)
            in
            let rec cells_ok k = function
              | [] -> Ok ()
              | c :: rest ->
                  let* () = check_recovery_cell i program k c in
                  cells_ok (k + 1) rest
            in
            cells_ok 0 cells
      in
      let* () =
        match Json.member "certificate" r with
        | None -> Ok ()
        | Some cc ->
            let* cells =
              req
                (Fmt.str "record %d (%s): certificate not a list" i program)
                (Json.to_list_opt cc)
            in
            let rec cells_ok k = function
              | [] -> Ok ()
              | c :: rest ->
                  let* () = check_certificate_cell i program k c in
                  cells_ok (k + 1) rest
            in
            cells_ok 0 cells
      in
      match Json.member "throughput" r with
      | None -> Ok ()
      | Some tp ->
          let* cells =
            req
              (Fmt.str "record %d (%s): throughput not a list" i program)
              (Json.to_list_opt tp)
          in
          let rec cells_ok k = function
            | [] -> Ok ()
            | c :: rest ->
                let* () = check_throughput_cell i program k c in
                cells_ok (k + 1) rest
          in
          cells_ok 0 cells
    end
  in
  let rec go i = function
    | [] -> Ok ()
    | r :: rest ->
        let* () = check_record i r in
        go (i + 1) rest
  in
  go 0 records
