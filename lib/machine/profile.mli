(** Machine observability: post-run profiles computed from the
    interpreter's [on_fire] hook (a recorded {!Trace.t}) and the
    {!Interp.result}, plus exporters — Chrome [trace_event] JSON and the
    compact summary records aggregated into [BENCH_machine.json]. *)

type node_firings = {
  nf_node : int;
  nf_label : string;
  nf_family : string;  (** operator family: "alu", "load", "switch", ... *)
  nf_count : int;
}

type t = {
  cycles : int;
  firings : int;
  avg_parallelism : float;
  peak_parallelism : int;
  parallelism_curve : int array;  (** firings started per cycle *)
  in_flight_curve : int array;  (** tokens between operators, per cycle *)
  matching_curve : int array;  (** waiting-matching occupancy, per cycle *)
  peak_matching : int;
  node_firings : node_firings list;  (** descending firing count *)
  overlap : int array;  (** distinct iteration contexts firing, per cycle *)
  max_overlap : int;
  per_context : (Context.t * int) list;
  dynamic_critical_path : int;
      (** longest dependence chain actually executed, in firings *)
  critical_chain : (int * Context.t) list;
  static_critical_path : int;
      (** single-iteration operator chain from {!Dfg.Stats} *)
  dropped_events : int;
      (** trace truncation: nonzero means histogram/overlap/context
          views cover only a prefix of the run *)
}

(** The operator family of a node kind (the [cat] of its trace events
    and the key of {!Interp.result.firings_by_kind}). *)
val family : Dfg.Node.kind -> string

(** [make ~graph ~trace result] assembles the profile of one run.
    [trace] must come from the same run as [result] (pass
    [Trace.on_fire] to the interpreter). *)
val make : graph:Dfg.Graph.t -> trace:Trace.t -> Interp.result -> t

(** [chrome_trace ?config ~graph trace] — the run as Chrome
    [trace_event] JSON ([ph:"X"] duration events; ts = cycle, dur =
    the configured latency).  Tracks: one per access-token variable
    ("access x"), one shared "control" track (switches, merges, synchs,
    loop control), and greedy "alu-<i>" lanes so simultaneous ALU
    firings render side by side.  Load the output in [chrome://tracing]
    or {{:https://ui.perfetto.dev}Perfetto}. *)
val chrome_trace : ?config:Config.t -> graph:Dfg.Graph.t -> Trace.t -> Json.t

(** [chrome_trace_pes ?config ~graph events] — a multiprocessor run as
    Chrome [trace_event] JSON with one track per processing element.
    [events] are (cycle, node, context, pe) in deterministic firing
    order, exactly what {!Multiproc.run}'s [on_fire] hook yields; the
    per-PE lanes make the placement's load balance and network-induced
    idle gaps directly visible. *)
val chrome_trace_pes :
  ?config:Config.t ->
  graph:Dfg.Graph.t ->
  (int * int * Context.t * int) list ->
  Json.t

(** Compact JSON rendering of a profile (curves included). *)
val summary_json : t -> Json.t

(** [sparkline curve] — one glyph per sample
    ([' '=0 '.'=1 ':'=2 '|'=3 '#'=4+]). *)
val sparkline : int array -> string

(** [resample curve w] — downsample to at most [w] columns, taking the
    max over each bucket, so long runs fit a terminal line. *)
val resample : int array -> int -> int array

(** Terminal rendering: headline metrics, sparkline curves, hottest
    operators, and the critical chain; says so explicitly when the
    recorder dropped events. *)
val pp : Format.formatter -> t -> unit

(** {1 Benchmark records}

    The [BENCH_machine.json] vocabulary, shared by [bench/main.exe] and
    the test layer so the schema cannot drift between writer and
    checker. *)

val bench_schema_version : int

(** One point of the multiprocessor scalability matrix attached to a
    (program, schema) record: cycle count and network traffic at a given
    PE count and placement, plus whether the run reproduced the
    reference store. *)
type mp_cell = {
  mp_pes : int;
  mp_placement : string;  (** {!Placement.policy_to_string} *)
  mp_cycles : int;
  mp_net_messages : int;  (** tokens that crossed PEs *)
  mp_cut_traffic : float;  (** cross-PE fraction of all deliveries *)
  mp_backpressure : int;
  mp_avg_utilisation : float;  (** mean per-PE busy fraction *)
  mp_determinate : bool;  (** final store equals the reference *)
}

(** One point of the fault-tolerance sweep attached to a (program,
    schema) record: a faulty multiprocessor run (seeded link faults plus
    one PE fail-stop) under reliable transport and checkpoint/replay,
    with its cost relative to the fault-free baseline at the same PE
    count and placement. *)
type recovery_cell = {
  rc_pes : int;
  rc_placement : string;  (** {!Placement.policy_to_string} *)
  rc_interval : int;  (** checkpoint interval, cycles *)
  rc_cycles : int;  (** faulty + recovered makespan *)
  rc_baseline_cycles : int;  (** fault-free makespan, same cell *)
  rc_overhead : float;  (** [cycles / baseline - 1] *)
  rc_deaths : int;
  rc_rollbacks : int;  (** restores (death- or sanitizer-driven) *)
  rc_checkpoints : int;
  rc_lost_cycles : int;  (** progress discarded by rollbacks *)
  rc_replayed_firings : int;
  rc_retransmits : int;  (** transport timeout-driven resends *)
  rc_recovered : bool;
      (** clean completion and the final store equals the reference *)
}

(** One point of the certificate-overhead sweep (E23): the same graph
    executed with its fractional-permission certificate attached and
    with it stripped, at the same PE count.  Certification is pure
    bookkeeping on token payloads — it never changes scheduling — so
    [cc_overhead] (cycles ratio, certified / stripped - 1) is exactly
    [0.0]; the cell exists to keep that claim measured rather than
    asserted. *)
type certificate_cell = {
  cc_pes : int;  (** 1 = the single-PE machine *)
  cc_elements : int;  (** cover elements (tokens) tracked *)
  cc_checks : int;  (** ownership assertions during the run *)
  cc_cycles : int;  (** certified makespan *)
  cc_stripped_cycles : int;  (** same graph, certificate removed *)
  cc_overhead : float;  (** [cycles / stripped_cycles - 1] *)
  cc_clean : bool;  (** run completed with zero standing violations *)
}

(** One point of the engine-throughput comparison (E24): the same
    compiled graph executed end-to-end under an execution engine, timed
    over [tp_runs] repetitions.  [tp_speedup] is relative to the
    [reference] cell of the same record (so the reference cell carries
    [1.0]); [tp_identical] asserts the engine reproduced the reference
    engine's final store bit for bit. *)
type throughput_cell = {
  tp_engine : string;  (** {!Config.engine_to_string} *)
  tp_firings : int;  (** firings per run (identical across engines) *)
  tp_runs : int;  (** timed repetitions *)
  tp_seconds : float;  (** best-of wall-clock seconds per run *)
  tp_firings_per_sec : float;  (** [tp_firings / tp_seconds] *)
  tp_speedup : float;  (** reference seconds / this engine's seconds *)
  tp_identical : bool;  (** final store equals the reference engine's *)
}

(** One matrix cell.  [status] is ["ok"], ["unsupported-aliasing"] or
    ["irreducible"]; static and dynamic metrics accompany ["ok"] cells,
    [multiproc] carries the scalability sweep when one was run,
    [recovery] the fault-tolerance sweep, [certificate] the
    certificate-overhead sweep, and [throughput] the engine
    wall-clock comparison. *)
val bench_record :
  program:string ->
  schema:string ->
  status:string ->
  ?stats:Dfg.Stats.t ->
  ?result:Interp.result ->
  ?reference_ok:bool ->
  ?max_overlap:int ->
  ?multiproc:mp_cell list ->
  ?recovery:recovery_cell list ->
  ?certificate:certificate_cell list ->
  ?throughput:throughput_cell list ->
  unit ->
  Json.t

(** One timed point of the batch-service sweep (E25): the oracle's
    (program × combo) grid submitted as one batch to
    [df_compile serve] at a given domain count.  [sv_speedup] is
    relative to the [sv_jobs = 1] cell of the same section (so that
    cell carries [1.0]). *)
type service_cell = {
  sv_jobs : int;  (** worker domains *)
  sv_batch : int;  (** jobs in the batch *)
  sv_seconds : float;  (** best-of wall-clock seconds for the batch *)
  sv_jobs_per_sec : float;  (** [sv_batch / sv_seconds] *)
  sv_speedup : float;  (** jobs=1 seconds / this cell's seconds *)
}

val service_cell_json : service_cell -> Json.t

(** One point of the availability sweep (E27): a batch of jobs pushed
    through the supervised socket service at a given chaos rate, with
    per-outcome counts.  No timings — every field is a deterministic
    function of the chaos plan, so the cell is byte-stable across
    machines.  [av_divergences] counts successful results whose bytes
    differ from the serial stdin path; {!validate_bench} requires it to
    be zero. *)
type availability_cell = {
  av_chaos_rate : float;  (** injected fault probability, [0, 1] *)
  av_shards : int;  (** worker subprocesses *)
  av_deadline_ms : int;  (** per-job deadline (0 = off) *)
  av_jobs : int;  (** batch size *)
  av_ok : int;
  av_shard_crash : int;
  av_deadline : int;
  av_overloaded : int;
  av_restarts : int;  (** shard respawns observed during the batch *)
  av_divergences : int;  (** successes differing from the serial path *)
  av_success_rate : float;  (** [av_ok / av_jobs] *)
}

val availability_cell_json : availability_cell -> Json.t

(** One point of the scaling sweep (E26): a topology x placement x
    stealing configuration of one compiled program at one PE count.
    [sc_net_hops] counts link traversals — each message weighted by its
    routing distance — so [sc_net_hops / sc_net_messages] is the mean
    communication distance of the configuration. *)
type scale_cell = {
  sc_pes : int;
  sc_net : string;  (** "uniform" | "mesh" | "torus" | "cube" *)
  sc_placement : string;
  sc_steal : bool;
  sc_cycles : int;
  sc_firings : int;
  sc_fpc : float;  (** firings per cycle, the throughput figure *)
  sc_speedup : float;  (** vs the p=1 cell of the same configuration *)
  sc_net_messages : int;
  sc_net_hops : int;
  sc_steals : int;
  sc_determinate : bool;
}

val scale_cell_json : scale_cell -> Json.t

(** The whole document: meta header, optional [multiproc_summary]
    scalars (e.g. [speedup_p8], [cut_traffic_ratio],
    [multiproc_determinate]), optional [service] section (cache
    counters, [deterministic] byte-stability bit, the timed
    {!service_cell}s under ["cells"], and an optional ["availability"]
    block holding {!availability_cell}s from the E27 chaos sweep),
    optional [scale] section (the
    E26 topology sweep: program, schema, and {!scale_cell}s under
    ["cells"]) and the records. *)
val bench_file :
  ?summary:(string * Json.t) list ->
  ?service:(string * Json.t) list ->
  ?scale:(string * Json.t) list ->
  records:Json.t list ->
  unit ->
  Json.t

(** Structural validation of a BENCH document: meta version, required
    fields per ["ok"] record, [reference_ok = true] everywhere, every
    multiproc cell [determinate], every recovery cell [recovered] with
    well-typed cost accounting, every certificate cell
    [certified_clean] with well-typed overhead accounting, every
    throughput cell with a positive rate and [identical_store], when
    the summary block is present — well-typed scalars with
    [multiproc_determinate = true] — and when the [service] section is
    present: well-typed cache counters and cells with
    [deterministic = true] (byte-identical batch output at every jobs
    setting) plus, if an ["availability"] block is attached, cells whose
    outcome counts partition the batch and carry zero divergences, and
    when the [scale] section is present: well-typed cells
    each [determinate] with at least one link hop per message.  Any
    divergence is a validation error. *)
val validate_bench : Json.t -> (unit, string) result
